package hybriddelay

import (
	"math"
	"testing"
)

// TestFacadeTableI exercises the re-exported core API end to end.
func TestFacadeTableI(t *testing.T) {
	p := TableI()
	d, err := p.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ToPs(d)-28.03) > 0.05 {
		t.Errorf("TableI fall(0) = %.2f ps, want ~28.03", ToPs(d))
	}
	r, err := p.RisingDelay(0, VNGround)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ToPs(r)-55.0) > 0.05 {
		t.Errorf("TableI rise(0) = %.2f ps, want ~55.0", ToPs(r))
	}
	if Ps(1) != 1e-12 {
		t.Error("unit helpers broken")
	}
	s := DefaultSupply()
	if s.VDD != 0.8 {
		t.Error("supply broken")
	}
}

// TestFacadePipeline runs the complete public workflow: build the golden
// bench, measure, parametrize, and query the fitted model.
func TestFacadePipeline(t *testing.T) {
	bp := DefaultBenchParams()
	bp.MaxStep = 8e-12
	bench, err := NewBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	target, err := MeasureCharacteristic(bench)
	if err != nil {
		t.Fatal(err)
	}
	if AutoDMin(target) <= 0 {
		t.Error("expected a positive auto pure delay for the calibrated bench")
	}
	p, rep, err := FitCharacteristic(target, bp.Supply, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged && rep.Cost > 0.1 {
		t.Errorf("fit did not converge: %+v", rep)
	}
	// Fitted model reproduces the golden falling MIS dip.
	d0, err := p.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(d0-target.FallZero) / target.FallZero; rel > 0.05 {
		t.Errorf("fitted fall(0) off by %.1f%%", 100*rel)
	}
}

// TestFacadeChannels: trace generation and the hybrid channel through
// the public API.
func TestFacadeChannels(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 4 {
		t.Fatal("PaperConfigs wrong")
	}
	cfg := cfgs[0]
	cfg.Transitions = 20
	traces, err := GenerateTraces(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatal("expected 2 input traces")
	}
	p := TableI()
	out, err := ApplyNOR(p, traces[0], traces[1], 1e-6, p.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
	if DeviationArea(out, out, 0, 1e-6) != 0 {
		t.Error("self deviation nonzero")
	}
}
