package hybriddelay

// Interleaved dense-vs-sparse solver comparison on the cold golden
// workloads: the gate-level Fig. 7 pipeline, the flattened c17
// composed golden, and the 4-bit ripple-carry adder. Each iteration
// times one dense pass and one sparse pass back to back on the same
// machine, so the reported speedup_x (dense seconds / sparse seconds)
// is immune to machine drift between separate benchmark invocations.
// These rows feed the CI bench-smoke job's BENCH_sparse.json artifact.

import (
	"testing"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
)

// BenchmarkSparseSpeedupGate interleaves the cold gate-level pipeline
// (every golden transient re-simulated) under both solver modes. The
// gate bench's MNA system is small (n = 8), where the sparse kernel's
// skip-list replay has little structure to exploit; the win here comes
// mostly from the frozen linear stamps.
func BenchmarkSparseSpeedupGate(b *testing.B) {
	pd := nor.DefaultParams()
	pd.MaxStep = 8e-12
	ps := pd
	ps.Solver = spice.SparseFast

	mkRunner := func(p nor.Params) *eval.Runner {
		bench, err := gate.NOR2.NewBench(p)
		if err != nil {
			b.Fatal(err)
		}
		meas, err := bench.Measure()
		if err != nil {
			b.Fatal(err)
		}
		models, err := gate.NOR2.BuildModels(meas, p.Supply, 20e-12)
		if err != nil {
			b.Fatal(err)
		}
		return eval.NewGateRunner(bench, models, &eval.Options{Workers: parallelBenchWorkers})
	}
	dense, sparse := mkRunner(pd), mkRunner(ps)
	configs := gen.PaperConfigs()
	for i := range configs {
		configs[i].Transitions /= 4
	}
	seeds := []int64{1, 2}

	var dSecs, sSecs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := dense.Run(configs, seeds); err != nil {
			b.Fatal(err)
		}
		dSecs += time.Since(start).Seconds()
		start = time.Now()
		if _, err := sparse.Run(configs, seeds); err != nil {
			b.Fatal(err)
		}
		sSecs += time.Since(start).Seconds()
	}
	b.StopTimer()
	b.ReportMetric(dSecs/sSecs, "speedup_x")
}

// BenchmarkSparseSpeedupCircuit interleaves one cold composed golden
// transient of the flattened c17 bench under both solver modes — the
// circuit-level system is large enough (tens of unknowns) that the
// O(n³) dense elimination dominates and the structural kernel pays off.
func BenchmarkSparseSpeedupCircuit(b *testing.B) {
	pd := nor.DefaultParams()
	pd.MaxStep = 8e-12
	ps := pd
	ps.Solver = spice.SparseFast

	nl := netlist.C17("c17")
	mkBench := func(p nor.Params) *netlist.Bench {
		bench, err := netlist.NewBench(nl, p)
		if err != nil {
			b.Fatal(err)
		}
		return bench
	}
	dense, sparse := mkBench(pd), mkBench(ps)
	cfg := circuitBenchConfig()
	cfg.Inputs = len(nl.Inputs)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	until := gen.Horizon(inputs, 600e-12)

	var dSecs, sSecs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := dense.Golden(inputs, until); err != nil {
			b.Fatal(err)
		}
		dSecs += time.Since(start).Seconds()
		start = time.Now()
		if _, err := sparse.Golden(inputs, until); err != nil {
			b.Fatal(err)
		}
		sSecs += time.Since(start).Seconds()
	}
	b.StopTimer()
	b.ReportMetric(dSecs/sSecs, "speedup_x")
	st := sparse.SolverStats()
	b.ReportMetric(float64(st.SparseFallbacks), "sparse_fallbacks")
}

// BenchmarkSparseSpeedupAdder interleaves one cold composed golden of
// the 4-bit NAND-only ripple-carry adder (36 gates, the largest
// shipped netlist class below rca16) under both solver modes. The
// flattened MNA system is wide enough for the supernodal blocked
// kernel to matter, and the deep carry chain keeps every stage
// electrically active across the transient.
func BenchmarkSparseSpeedupAdder(b *testing.B) {
	pd := nor.DefaultParams()
	pd.MaxStep = 8e-12
	ps := pd
	ps.Solver = spice.SparseFast

	nl, err := netlist.RippleCarryAdder("rca4", 4)
	if err != nil {
		b.Fatal(err)
	}
	mkBench := func(p nor.Params) *netlist.Bench {
		bench, err := netlist.NewBench(nl, p)
		if err != nil {
			b.Fatal(err)
		}
		return bench
	}
	dense, sparse := mkBench(pd), mkBench(ps)
	cfg := circuitBenchConfig()
	cfg.Inputs = len(nl.Inputs)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	until := gen.Horizon(inputs, 600e-12)

	var dSecs, sSecs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := dense.Golden(inputs, until); err != nil {
			b.Fatal(err)
		}
		dSecs += time.Since(start).Seconds()
		start = time.Now()
		if _, err := sparse.Golden(inputs, until); err != nil {
			b.Fatal(err)
		}
		sSecs += time.Since(start).Seconds()
	}
	b.StopTimer()
	b.ReportMetric(dSecs/sSecs, "speedup_x")
	st := sparse.SolverStats()
	b.ReportMetric(float64(st.SparseFallbacks), "sparse_fallbacks")
	b.ReportMetric(float64(st.Supernodes), "supernodes")
}
