package hybriddelay

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the golden simulator's integration scheme, the integrator step bound,
// the tail-weighted parametrization, and the NAND duality extension.
// Each reports the quantity the choice affects as a benchmark metric.

import (
	"testing"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/waveform"
)

// BenchmarkAblationIntegrationMethod compares trapezoidal against
// backward-Euler integration in the golden bench at the same step bound:
// the reported metric is the shift of the falling SIS delay caused by
// the first-order method's numerical damping (trapezoidal is the default
// because this shift is pure integration error).
func BenchmarkAblationIntegrationMethod(b *testing.B) {
	delay := func(method spice.IntegrationMethod, maxStep float64) float64 {
		p := nor.DefaultParams()
		p.MaxStep = maxStep
		p.Method = method
		bench, err := nor.New(p)
		if err != nil {
			b.Fatal(err)
		}
		d, err := bench.FallingDelay(0)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	var trap, be, ref float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trap = delay(spice.Trapezoidal, 8e-12)
		be = delay(spice.BackwardEuler, 8e-12)
		ref = delay(spice.Trapezoidal, 1e-12)
	}
	b.ReportMetric((trap-ref)/1e-15, "trap_err_fs")
	b.ReportMetric((be-ref)/1e-15, "be_err_fs")
}

// BenchmarkAblationFitWeights compares the uniform least-squares fit
// against the paper-mimicking tail-weighted fit: the metric is the
// rise(+inf) SIS error of each variant in ps (tail weighting trades the
// unreachable Delta=0 rising point for SIS accuracy).
func BenchmarkAblationFitWeights(b *testing.B) {
	_, target, _ := setupGolden(b)
	supply := waveform.DefaultSupply()
	var uniformErr, tailErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, repU, err := hybrid.FitCharacteristic(target, supply, &hybrid.FitOptions{DMin: -1})
		if err != nil {
			b.Fatal(err)
		}
		_, repT, err := hybrid.FitCharacteristic(target, supply, &hybrid.FitOptions{
			DMin: -1, Weights: []float64{3, 1, 3, 3, 1, 3},
		})
		if err != nil {
			b.Fatal(err)
		}
		uniformErr = waveform.ToPs(repU.Achieved.RiseMinusInf - target.RiseMinusInf)
		tailErr = waveform.ToPs(repT.Achieved.RiseMinusInf - target.RiseMinusInf)
	}
	b.ReportMetric(uniformErr, "uniform_riseinf_err_ps")
	b.ReportMetric(tailErr, "tail_riseinf_err_ps")
}

// BenchmarkAblationScanDensity probes the trajectory crossing search:
// the falling delay must be invariant under the scan density (Brent
// polishing dominates the accuracy), and the metric reports the query
// cost.
func BenchmarkAblationScanDensity(b *testing.B) {
	p := hybrid.TableI()
	var d float64
	for i := 0; i < b.N; i++ {
		var err error
		d, err = p.FallingDelay(7e-12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(waveform.ToPs(d), "delay_ps")
}

// BenchmarkNANDDelayQuery measures the duality-mapped NAND delay query
// (the extension's cost is one parameter mirror on top of the NOR path).
func BenchmarkNANDDelayQuery(b *testing.B) {
	n := hybrid.NANDFromDual(hybrid.TableI())
	for i := 0; i < b.N; i++ {
		if _, err := n.FallingDelay(10e-12, n.Supply.VDD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNANDGoldenSweep measures the analog NAND bench (the
// validation substrate of the duality extension).
func BenchmarkNANDGoldenSweep(b *testing.B) {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	bench, err := nor.NewNAND(p)
	if err != nil {
		b.Fatal(err)
	}
	var c nor.CharacteristicDelays
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err = bench.Characteristic()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(c.RiseZero-c.RiseMinusInf)/c.RiseMinusInf, "nand_risedip_%")
}
