package hybriddelay

// Cold-vs-warm Session cost of a repeated-operating-point workload.
// Every evaluation pays a fixed per-call preparation cost — bench
// construction, characteristic measurement, model fitting — before its
// first unit; the Session's parametrization cache pays it once per
// operating point and serves every later job from memory.
// BenchmarkSessionWarm evaluates on one long-lived Session (preparation
// served from cache) and reports speedup_x against the cold baseline
// (a fresh Session per call, re-measuring every time), alongside
// cold_ms and warm_ms. Both paths use a private golden cache per call,
// so the speedup isolates the parametrization memoization. The numbers
// land in BENCH_session.json in CI.

import (
	"context"
	"sync"
	"testing"
	"time"

	"hybriddelay/internal/gen"
)

// sessionBenchJob returns the repeated-operating-point workload: the
// default gate at the calibrated operating point, two small
// configurations over two seeds. A fresh private golden cache per call
// keeps golden-transient memoization out of the measurement.
func sessionBenchJob() GateJob {
	mk := func(mode gen.Mode, mu, sigma float64) TraceConfig {
		return TraceConfig{Mu: mu, Sigma: sigma, Mode: mode, Inputs: 2,
			Transitions: 12, Start: 200e-12}
	}
	return GateJob{
		Gate:    "nor2",
		Configs: []TraceConfig{mk(gen.Local, 200e-12, 100e-12), mk(gen.Global, 500e-12, 250e-12)},
		Seeds:   []int64{1, 2},
		Cache:   NewGoldenCache(),
	}
}

// evaluateSessionJob runs the workload once on the given session.
func evaluateSessionJob(b *testing.B, s *Session) {
	b.Helper()
	job := sessionBenchJob()
	if _, err := s.Evaluate(context.Background(), job); err != nil {
		b.Fatal(err)
	}
}

// coldSessionBaseline measures one cold call (fresh Session, full
// preparation) once per process.
var coldSessionBaseline struct {
	once sync.Once
	secs float64
}

func coldSessionSecs(b *testing.B) float64 {
	b.Helper()
	coldSessionBaseline.once.Do(func() {
		start := time.Now()
		evaluateSessionJob(b, NewSession(SessionOptions{Workers: 2}))
		coldSessionBaseline.secs = time.Since(start).Seconds()
	})
	return coldSessionBaseline.secs
}

// BenchmarkSessionCold pays the full preparation chain every iteration
// — the pre-Session per-call fixed cost.
func BenchmarkSessionCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evaluateSessionJob(b, NewSession(SessionOptions{Workers: 2}))
	}
}

// BenchmarkSessionWarm serves the preparation from the long-lived
// Session's parametrization cache and reports the cold/warm speedup.
func BenchmarkSessionWarm(b *testing.B) {
	cold := coldSessionSecs(b)
	s := NewSession(SessionOptions{Workers: 2})
	evaluateSessionJob(b, s) // warm the parametrization cache
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		evaluateSessionJob(b, s)
	}
	warm := time.Since(start).Seconds() / float64(b.N)
	b.ReportMetric(cold*1e3, "cold_ms")
	b.ReportMetric(warm*1e3, "warm_ms")
	if warm > 0 {
		b.ReportMetric(cold/warm, "speedup_x")
	}
	if st := s.ParamCache().Stats(); st.Misses != 1 {
		b.Fatalf("warm session re-prepared: param stats %+v", st)
	}
}
