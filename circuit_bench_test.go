package hybriddelay

// Circuit-level evaluation benchmarks: the composed-golden pipeline
// over the NOR + inverter-chain netlist, cold (every golden transient
// simulated) and warm (golden trace sets served from the shared
// cache). These feed the CI benchmark smoke job's BENCH_circuit.json
// artifact, so the circuit pipeline's perf trajectory is tracked
// across PRs.

import (
	"sync"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
)

// circuitBenchState prepares the shared chain netlist and a fixed
// (measurement-free) model set once per process: the benchmarks track
// evaluation cost, not parametrization cost.
var circuitBenchState struct {
	once sync.Once
	nl   *netlist.Netlist
	ms   netlist.ModelSet
	p    nor.Params
	err  error
}

func circuitBenchSetup(b *testing.B) (*netlist.Netlist, netlist.ModelSet, nor.Params) {
	s := &circuitBenchState
	s.once.Do(func() {
		s.nl, s.err = netlist.InverterChain("bench-chain", 3)
		if s.err != nil {
			return
		}
		s.p = nor.DefaultParams()
		s.p.MaxStep = 8e-12
		hm := hybrid.TableI()
		hm0 := hm
		hm0.DMin = 0
		var arcs inertial.NORArcs
		if arcs, s.err = inertial.NORArcsFromSIS(40e-12, 38e-12, 53e-12, 56e-12); s.err != nil {
			return
		}
		var exp idm.Exp
		if exp, s.err = idm.ExpFromSIS(54.5e-12, 39e-12, 20e-12); s.err != nil {
			return
		}
		s.ms = netlist.ModelSet{"nor2": {
			Gate:     gate.NOR2,
			Inertial: arcs.Arcs(),
			Exp:      exp,
			HM:       gate.NOR2Model{P: hm},
			HMNoDMin: gate.NOR2Model{P: hm0},
			Supply:   hm.Supply,
		}}
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.nl, s.ms, s.p
}

func circuitBenchConfig() gen.Config {
	cfg := gen.PaperConfigs()[0]
	cfg.Transitions = 30
	return cfg
}

// BenchmarkEvaluateCircuitChain measures the cold circuit pipeline:
// every iteration simulates the composed golden transients.
func BenchmarkEvaluateCircuitChain(b *testing.B) {
	nl, ms, p := circuitBenchSetup(b)
	cfg := circuitBenchConfig()
	seeds := []int64{1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.EvaluateCircuit(nl, p, ms, cfg, seeds, &eval.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		ev := 0
		for _, net := range res.Nets {
			ev += res.GoldenEv[net]
		}
		b.ReportMetric(float64(ev), "golden_ev")
	}
}

// BenchmarkEvaluateCircuitCached measures the warm steady state: the
// golden trace sets come from the shared cache, so the iteration cost
// is the model side of the circuit pipeline.
func BenchmarkEvaluateCircuitCached(b *testing.B) {
	nl, ms, p := circuitBenchSetup(b)
	cfg := circuitBenchConfig()
	seeds := []int64{1, 2}
	cache := eval.NewGoldenCache()
	if _, err := eval.EvaluateCircuit(nl, p, ms, cfg, seeds, &eval.Options{Workers: 4, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvaluateCircuit(nl, p, ms, cfg, seeds, &eval.Options{Workers: 4, Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
	st := cache.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
}

// BenchmarkComposedGoldenC17 measures one composed transient of the
// reconvergent c17 circuit — the raw analog cost of circuit-level
// golden generation.
func BenchmarkComposedGoldenC17(b *testing.B) {
	_, _, p := circuitBenchSetup(b)
	nl := netlist.C17("c17")
	bench, err := netlist.NewBench(nl, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := circuitBenchConfig()
	cfg.Inputs = len(nl.Inputs)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	until := gen.Horizon(inputs, 600e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Golden(inputs, until); err != nil {
			b.Fatal(err)
		}
	}
}
