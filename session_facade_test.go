package hybriddelay

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/sweep"
)

// The legacy facade entry points are thin wrappers over the default
// Session. These property tests pin the redesign's compatibility
// contract: for every workload shape the wrapper's output is
// bit-identical (reflect.DeepEqual on results, byte equality on
// encoded reports) to the pre-redesign pipeline composition it
// replaced, across several configurations and seed lists.

// fastFacadeParams returns coarse-step bench parameters for quick
// analog property runs.
func fastFacadeParams() BenchParams {
	p := DefaultBenchParams()
	p.MaxStep = 8e-12
	return p
}

// facadeModels prepares a NOR2 bench and model set at the fast
// operating point.
func facadeModels(t *testing.T) (*Bench, Models) {
	t.Helper()
	b, err := NewBench(fastFacadeParams())
	if err != nil {
		t.Fatal(err)
	}
	target, err := MeasureCharacteristic(b)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModels(target, b.P.Supply, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	return b, m
}

// propertyConfigs returns the waveform configurations the properties
// quantify over: both stimulus flavours at small sizes.
func propertyConfigs(inputs int) []TraceConfig {
	mk := func(mode gen.Mode, mu, sigma float64, n int) TraceConfig {
		return TraceConfig{Mu: mu, Sigma: sigma, Mode: mode, Inputs: inputs,
			Transitions: n, Start: 200e-12}
	}
	return []TraceConfig{
		mk(gen.Local, 200e-12, 100e-12, 8),
		mk(gen.Global, 500e-12, 250e-12, 10),
	}
}

func TestEvaluateParallelDelegatesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog property in -short mode")
	}
	bench, m := facadeModels(t)
	seeds := []int64{1, 2}
	for _, cfg := range propertyConfigs(2) {
		// Pre-redesign path: the serial per-seed composition the parallel
		// entry point has been bit-identical to since PR 1.
		want, err := eval.EvaluateBench(&gate.NOR2Bench{B: bench}, m, cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateParallel(bench, m, cfg, seeds, &EvalOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: EvaluateParallel diverged from the pre-redesign pipeline:\n got %+v\nwant %+v",
				cfg.Name(), got, want)
		}
	}
}

func TestEvaluateGateDelegatesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog property in -short mode")
	}
	p := fastFacadeParams()
	for _, name := range []string{"nor2", "nand2"} {
		g, ok := LookupGate(name)
		if !ok {
			t.Fatalf("gate %s not registered", name)
		}
		bench, err := g.NewBench(p)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := bench.Measure()
		if err != nil {
			t.Fatal(err)
		}
		m, err := g.BuildModels(meas, p.Supply, 20e-12)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range propertyConfigs(g.Arity())[:1] {
			want, err := eval.EvaluateBench(bench, m, cfg, []int64{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvaluateGate(bench, m, cfg, []int64{1, 2})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s %s: EvaluateGate diverged from the pre-redesign pipeline:\n got %+v\nwant %+v",
					name, cfg.Name(), got, want)
			}
		}
	}
}

func TestEvaluateCircuitDelegatesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog property in -short mode")
	}
	nl, err := BuiltinNetlist("nor-invchain")
	if err != nil {
		t.Fatal(err)
	}
	p := fastFacadeParams()
	ms, err := BuildNetlistModels(nl, p, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2}
	for _, cfg := range propertyConfigs(len(nl.Inputs))[:1] {
		want, err := eval.EvaluateCircuit(nl, p, ms, cfg, seeds, &eval.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateCircuit(nl, p, ms, cfg, seeds, &EvalOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: EvaluateCircuit diverged from the pre-redesign pipeline:\n got %+v\nwant %+v",
				cfg.Name(), got, want)
		}
	}
}

func TestRunSweepDelegatesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog property in -short mode")
	}
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	spec := SweepSpec{
		Gates:    []string{"nor2", "nand2"},
		VDDScale: []float64{1, 0.95},
		Stimuli: []SweepStimulus{
			{Mode: StimulusLocal, Mu: 200e-12, Sigma: 100e-12, Transitions: 8},
		},
		Seeds: []int64{1, 2},
		Bench: &p,
	}
	encode := func(rep *SweepReport) (string, string) {
		t.Helper()
		rep.ClearTimings()
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	want, err := sweep.RunSweep(spec, &sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweep(spec, &SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gj, gc := encode(got)
	wj, wc := encode(want)
	if gj != wj {
		t.Errorf("RunSweep JSON report diverged from the pre-redesign engine:\n--- facade ---\n%s\n--- direct ---\n%s", gj, wj)
	}
	if gc != wc {
		t.Errorf("RunSweep CSV report diverged from the pre-redesign engine:\n--- facade ---\n%s\n--- direct ---\n%s", gc, wc)
	}
	// Re-running the facade sweep hits the default session's
	// parametrization cache (no re-measurement) and still encodes
	// byte-identically.
	again, err := RunSweep(spec, &SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	aj, ac := encode(again)
	if aj != gj || ac != gc {
		t.Error("warm facade sweep (parametrization served from cache) is not byte-identical to the cold run")
	}
}

func TestFacadeSessionSurface(t *testing.T) {
	s := NewSession(SessionOptions{Workers: 2})
	if s.GoldenCache() == nil || s.ParamCache() == nil {
		t.Fatal("session did not create its caches")
	}
	if st := s.GoldenCache().Stats(); st != (CacheStats{}) {
		t.Errorf("fresh golden cache stats = %+v", st)
	}
	if st := s.ParamCache().Stats(); st != (ParamCacheStats{}) {
		t.Errorf("fresh param cache stats = %+v", st)
	}
	if DefaultSession() == nil || DefaultSession() != DefaultSession() {
		t.Error("DefaultSession is not a stable process-wide instance")
	}
	if _, err := s.Evaluate(context.Background(), CircuitJob{}); err == nil {
		t.Error("invalid job accepted through the facade surface")
	}
	// The netlist helper types still round-trip through session jobs.
	var job Job = SweepJob{}
	if _, ok := job.(SweepJob); !ok {
		t.Error("job interface lost the concrete type")
	}
	_ = netlist.ModelSet{} // facade alias target stays importable
}

// TestFacadeGoldenStoreRoundTrip: a Session with a persistent store
// mounted through the facade warm-starts a later Session from disk —
// the second run's result is bit-identical and its golden traces come
// from the store, not fresh transient solves.
func TestFacadeGoldenStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("analog property in -short mode")
	}
	dir := t.TempDir()
	cfg := propertyConfigs(2)[0]
	p := fastFacadeParams()
	job := GateJob{Gate: "nor2", Params: &p,
		Configs: []TraceConfig{cfg}, Seeds: []int64{1}, Workers: 2}

	st, err := OpenGoldenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSession(SessionOptions{Workers: 2, Store: st})
	want, err := cold.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenGoldenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := NewSession(SessionOptions{Workers: 2, Store: st2})
	got, err := warm.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Gate, want.Gate) {
		t.Errorf("store-warmed run diverged:\n got %+v\nwant %+v", got.Gate, want.Gate)
	}
	var stats GoldenStoreStats = st2.Stats()
	if stats.Hits == 0 {
		t.Errorf("warm run hit the disk store 0 times (stats %+v)", stats)
	}
	if stats.Misses != 0 || stats.Writes != 0 {
		t.Errorf("warm run was not fully served from disk: %+v", stats)
	}
}

// TestFacadeReexportExercise keeps the thin re-export wrappers covered:
// constructing each aliased engine piece through the facade must stay
// working even though the heavy paths are tested against the internals.
func TestFacadeReexportExercise(t *testing.T) {
	if NewParamCache() == nil {
		t.Fatal("NewParamCache returned nil")
	}
	if len(Gates()) < 3 {
		t.Errorf("Gates() = %v, want the registered registry", Gates())
	}
	if DefaultGate().Name() != "nor2" {
		t.Errorf("DefaultGate = %q", DefaultGate().Name())
	}
	b, err := NewBench(fastFacadeParams())
	if err != nil {
		t.Fatal(err)
	}
	m := Models{}
	if r := NewEvalRunner(b, m, nil); r == nil {
		t.Error("NewEvalRunner returned nil")
	}
	g, _ := LookupGate("nand2")
	gb, err := g.NewBench(fastFacadeParams())
	if err != nil {
		t.Fatal(err)
	}
	if r := NewGateEvalRunner(gb, m, &EvalOptions{Workers: 2}); r == nil {
		t.Error("NewGateEvalRunner returned nil")
	}
	nl, err := BuiltinNetlist("nor-invchain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCircuitBench(nl, fastFacadeParams()); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator()
	ms := NetlistModels{}
	if _, err := ElaborateNetlist(nl, sim, nil, WireNetlistModel(ms, ModelInertial)); err == nil {
		t.Error("elaboration with an empty model set must fail")
	}
}
