package hybriddelay

// Serial-vs-parallel wall time of the Fig. 7 accuracy pipeline (the
// repo's hottest path). BenchmarkEvaluateParallel reports speedup_x, the
// ratio of serial Evaluate wall time to the 4-worker runner's per-
// iteration time on the same configs and seeds, so the speedup
// trajectory is tracked across PRs; the Cached variant measures the
// steady state of a warm golden-trace cache (golden transients skipped
// entirely). speedup_x scales with the core count — on a single-core
// machine it sits near 1.

import (
	"sync"
	"testing"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
)

const parallelBenchWorkers = 4

// fig7ParallelSetup returns the shared golden bench and the paper
// configurations at the same reduced size BenchmarkFig7Accuracy uses.
func fig7ParallelSetup(b *testing.B) (*nor.Bench, eval.Models, []gen.Config, []int64) {
	bench, _, models := setupGolden(b)
	configs := gen.PaperConfigs()
	for i := range configs {
		configs[i].Transitions /= 4 // keep a single iteration in the ~1 s range
	}
	return bench, models, configs, []int64{1, 2, 3, 4}
}

// serialBaseline measures one serial pass over all configs once per
// process, for the speedup metrics.
var serialBaselineState struct {
	once sync.Once
	secs float64
	err  error
}

func serialBaseline(b *testing.B) float64 {
	bench, models, configs, seeds := fig7ParallelSetup(b)
	serialBaselineState.once.Do(func() {
		start := time.Now()
		for _, cfg := range configs {
			if _, err := eval.Evaluate(bench, models, cfg, seeds); err != nil {
				serialBaselineState.err = err
				return
			}
		}
		serialBaselineState.secs = time.Since(start).Seconds()
	})
	if serialBaselineState.err != nil {
		b.Fatal(serialBaselineState.err)
	}
	return serialBaselineState.secs
}

// BenchmarkEvaluateSerial is the reference: the serial pipeline over the
// Fig. 7 configs.
func BenchmarkEvaluateSerial(b *testing.B) {
	bench, models, configs, seeds := fig7ParallelSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			if _, err := eval.Evaluate(bench, models, cfg, seeds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateParallel runs the same work on the 4-worker runner
// (cold cache each iteration: every golden transient is re-simulated,
// so speedup comes purely from the worker pool).
func BenchmarkEvaluateParallel(b *testing.B) {
	bench, models, configs, seeds := fig7ParallelSetup(b)
	serial := serialBaseline(b)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(bench, models, &eval.Options{Workers: parallelBenchWorkers})
		if _, err := r.Run(configs, seeds); err != nil {
			b.Fatal(err)
		}
	}
	perIter := time.Since(start).Seconds() / float64(b.N)
	b.StopTimer()
	b.ReportMetric(serial/perIter, "speedup_x")
	b.ReportMetric(parallelBenchWorkers, "workers")
}

// gateBenchSetup builds the generic-pipeline inputs for one registered
// gate: bench, measured models and the reduced paper configs at the
// gate's arity.
func gateBenchSetup(b *testing.B, name string) (gate.Bench, eval.Models, []gen.Config, []int64) {
	b.Helper()
	g, ok := gate.Lookup(name)
	if !ok {
		b.Fatalf("gate %q not registered", name)
	}
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	bench, err := g.NewBench(p)
	if err != nil {
		b.Fatal(err)
	}
	meas, err := bench.Measure()
	if err != nil {
		b.Fatal(err)
	}
	models, err := g.BuildModels(meas, p.Supply, 20e-12)
	if err != nil {
		b.Fatal(err)
	}
	configs := gen.PaperConfigs()
	for i := range configs {
		configs[i].Inputs = g.Arity()
		configs[i].Transitions /= 4
	}
	return bench, models, configs, []int64{1, 2, 3, 4}
}

// BenchmarkEvalParallel tracks the generic registry-driven pipeline with
// a per-gate dimension, so the perf trajectory of the hot path is
// recorded for every gate the evaluation supports, not just the default.
func BenchmarkEvalParallel(b *testing.B) {
	for _, name := range []string{"nor2", "nand2"} {
		b.Run(name, func(b *testing.B) {
			bench, models, configs, seeds := gateBenchSetup(b, name)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				r := eval.NewGateRunner(bench, models, &eval.Options{Workers: parallelBenchWorkers})
				if _, err := r.Run(configs, seeds); err != nil {
					b.Fatal(err)
				}
			}
			perIter := time.Since(start).Seconds() / float64(b.N)
			b.StopTimer()
			b.ReportMetric(float64(len(configs)*len(seeds))/perIter, "units_per_s")
			b.ReportMetric(parallelBenchWorkers, "workers")
		})
	}
}

// BenchmarkEvaluateParallelCached measures the warm-cache steady state:
// the golden traces are memoized, so each iteration only reruns the
// digital models and the merge.
func BenchmarkEvaluateParallelCached(b *testing.B) {
	bench, models, configs, seeds := fig7ParallelSetup(b)
	serial := serialBaseline(b)
	cache := eval.NewGoldenCache()
	r := eval.NewRunner(bench, models, &eval.Options{Workers: parallelBenchWorkers, Cache: cache})
	if _, err := r.Run(configs, seeds); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(configs, seeds); err != nil {
			b.Fatal(err)
		}
	}
	perIter := time.Since(start).Seconds() / float64(b.N)
	b.StopTimer()
	b.ReportMetric(serial/perIter, "speedup_x")
	st := cache.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
}
