package hybriddelay

// The sparse-solver accuracy gate: `sparse-fast` is documented as
// numerically equivalent, not bit-identical, to the default
// `dense-exact` mode — this test pins down what "equivalent" means for
// the quantity the whole pipeline is about. Every digitized golden
// transition (the delay observable) must agree between the two modes
// to within 1e-12 s, on every registered gate and on the composed c17
// netlist.

import (
	"math"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
)

// solverDelayTol is the accuracy gate: the largest admissible per-event
// delay deviation between the dense and sparse golden traces.
const solverDelayTol = 1e-12 // [s]

// maxEventDeviation requires both digitized traces to carry the same
// transition sequence and returns the largest per-event time deviation.
func maxEventDeviation(t *testing.T, label string, dense, sparse trace.Trace) float64 {
	t.Helper()
	if dense.Initial != sparse.Initial {
		t.Fatalf("%s: initial value %v dense, %v sparse", label, dense.Initial, sparse.Initial)
	}
	if len(dense.Events) != len(sparse.Events) {
		t.Fatalf("%s: %d transitions dense, %d sparse", label, len(dense.Events), len(sparse.Events))
	}
	maxDev := 0.0
	for i := range dense.Events {
		if dense.Events[i].Value != sparse.Events[i].Value {
			t.Fatalf("%s: transition %d flips to %v dense, %v sparse",
				label, i, dense.Events[i].Value, sparse.Events[i].Value)
		}
		if d := math.Abs(dense.Events[i].Time - sparse.Events[i].Time); d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}

// solverGateParams is the shared operating point of the gate tests.
func solverGateParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// TestSparseSolverAccuracyGates runs random stimuli through the golden
// bench of every registered gate under both solver modes and asserts
// the per-seed delay deviation stays under the gate.
func TestSparseSolverAccuracyGates(t *testing.T) {
	if testing.Short() {
		t.Skip("analog transients; skipped in -short mode")
	}
	seeds := []int64{1, 2}
	for _, name := range gate.Names() {
		g, ok := gate.Lookup(name)
		if !ok {
			t.Fatalf("registered gate %q not found", name)
		}
		t.Run(name, func(t *testing.T) {
			p := solverGateParams()
			denseBench, err := g.NewBench(p)
			if err != nil {
				t.Fatal(err)
			}
			ps := p
			ps.Solver = spice.SparseFast
			sparseBench, err := g.NewBench(ps)
			if err != nil {
				t.Fatal(err)
			}
			cfg := gen.PaperConfigs()[0]
			cfg.Inputs = g.Arity()
			cfg.Transitions = 24
			for _, seed := range seeds {
				inputs, err := gen.Traces(cfg, seed)
				if err != nil {
					t.Fatal(err)
				}
				until := gen.Horizon(inputs, 600e-12)
				gd, err := denseBench.Golden(inputs, until)
				if err != nil {
					t.Fatalf("seed %d: dense golden: %v", seed, err)
				}
				gs, err := sparseBench.Golden(inputs, until)
				if err != nil {
					t.Fatalf("seed %d: sparse golden: %v", seed, err)
				}
				label := cfg.Name()
				if dev := maxEventDeviation(t, label, gd, gs); dev > solverDelayTol {
					t.Errorf("seed %d: delay deviation %.3g s exceeds %.0e s", seed, dev, solverDelayTol)
				}
			}
		})
	}
}

// netlistAccuracy runs a composed netlist's golden under both solver
// modes and asserts every recorded net's transitions agree to within
// the gate.
func netlistAccuracy(t *testing.T, nl *netlist.Netlist, transitions int, seeds []int64) {
	t.Helper()
	p := solverGateParams()
	denseBench, err := netlist.NewBench(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	ps := p
	ps.Solver = spice.SparseFast
	sparseBench, err := netlist.NewBench(nl, ps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.PaperConfigs()[0]
	cfg.Inputs = len(nl.Inputs)
	cfg.Transitions = transitions
	for _, seed := range seeds {
		inputs, err := gen.Traces(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		until := gen.Horizon(inputs, 600e-12)
		gd, err := denseBench.Golden(inputs, until)
		if err != nil {
			t.Fatalf("seed %d: dense golden: %v", seed, err)
		}
		gs, err := sparseBench.Golden(inputs, until)
		if err != nil {
			t.Fatalf("seed %d: sparse golden: %v", seed, err)
		}
		for _, net := range nl.Recorded() {
			label := nl.Name + " net " + net
			if dev := maxEventDeviation(t, label, gd[net], gs[net]); dev > solverDelayTol {
				t.Errorf("seed %d: %s: delay deviation %.3g s exceeds %.0e s", seed, label, dev, solverDelayTol)
			}
		}
	}
}

// TestSparseSolverAccuracyC17 is the reconvergent composed-circuit
// accuracy gate.
func TestSparseSolverAccuracyC17(t *testing.T) {
	if testing.Short() {
		t.Skip("analog transients; skipped in -short mode")
	}
	netlistAccuracy(t, netlist.C17("c17"), 20, []int64{1, 2})
}

// TestSparseSolverAccuracyAdder runs the accuracy gate on the 2-bit
// ripple-carry adder: a deeper carry-chain topology (18 NAND2 gates)
// whose MNA system actually merges supernodes, so the blocked sparse
// kernel is on the path being gated.
func TestSparseSolverAccuracyAdder(t *testing.T) {
	if testing.Short() {
		t.Skip("analog transients; skipped in -short mode")
	}
	nl, err := netlist.RippleCarryAdder("rca2", 2)
	if err != nil {
		t.Fatal(err)
	}
	netlistAccuracy(t, nl, 12, []int64{1})
}
