module hybriddelay

go 1.24
