package session

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// fastParams returns coarse-step bench parameters for quick analog
// test runs.
func fastParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// testConfig returns a small evaluation configuration for n inputs.
func testConfig(inputs, transitions int) gen.Config {
	return gen.Config{
		Mu:          200 * waveform.Pico,
		Sigma:       100 * waveform.Pico,
		Mode:        gen.Local,
		Inputs:      inputs,
		Transitions: transitions,
		Start:       200 * waveform.Pico,
	}
}

// testSweepSpec returns a one-gate, two-stimulus grid at the fast
// operating point (vdd/load scale 1, so it shares the gate jobs'
// parametrization key).
func testSweepSpec(transitions int) sweep.Spec {
	p := fastParams()
	return sweep.Spec{
		Gates: []string{"nor2"},
		Stimuli: []sweep.Stimulus{
			{Mode: gen.Local, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: transitions},
			{Mode: gen.Global, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: transitions},
		},
		Seeds: []int64{1, 2},
		Bench: &p,
	}
}

func TestSessionGateJobMatchesLegacyRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	bench, err := gate.NOR2.NewBench(p)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := bench.Measure()
	if err != nil {
		t.Fatal(err)
	}
	models, err := gate.NOR2.BuildModels(meas, p.Supply, DefaultExpDMin)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 10)
	seeds := []int64{1, 2}

	want, err := eval.EvaluateBench(bench, models, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 4})
	res, err := s.Evaluate(context.Background(), GateJob{
		Models: &models, Params: &p,
		Configs: []gen.Config{cfg}, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindGate || len(res.Gate) != 1 {
		t.Fatalf("result shape: kind=%s rows=%d", res.Kind, len(res.Gate))
	}
	if !reflect.DeepEqual(res.Gate[0], want) {
		t.Errorf("session result differs from legacy serial evaluation:\n got %+v\nwant %+v", res.Gate[0], want)
	}
	if res.Models == nil || res.Models.Gate.Name() != "nor2" {
		t.Error("result does not carry the evaluated model set")
	}
}

func TestSessionGateJobPreparesOnceAndCachesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	s := New(Options{Workers: 2})
	job := GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 8)}, Seeds: []int64{1, 2},
	}
	first, err := s.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Stats.Params; st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cold job param stats %+v, want exactly one prepared point", st)
	}
	if st := first.Stats.Golden; st.Misses != 2 || st.Hits != 0 {
		t.Errorf("cold job golden stats %+v, want 2 misses (one per seed)", st)
	}
	again, err := s.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st := again.Stats.Params; st.Misses != 1 || st.Hits != 1 {
		t.Errorf("warm job param stats %+v, want a hit and no new miss", st)
	}
	if st := again.Stats.Golden; st.Misses != 2 || st.Hits != 2 {
		t.Errorf("warm job golden stats %+v, want every golden served from cache", st)
	}
	if !reflect.DeepEqual(first.Gate, again.Gate) {
		t.Error("warm evaluation differs from cold")
	}
}

func TestSessionCircuitJobMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	nl, err := netlist.Builtin("nor-invchain")
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	cfg := testConfig(len(nl.Inputs), 8)
	seeds := []int64{1, 2}

	ms, err := netlist.BuildModelSet(nl, p, DefaultExpDMin)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.EvaluateCircuit(nl, p, ms, cfg, seeds, &eval.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 2})
	res, err := s.Evaluate(context.Background(), CircuitJob{
		Netlist: nl, Params: &p, Config: cfg, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindCircuit || res.Circuit == nil {
		t.Fatalf("result shape: kind=%s circuit=%v", res.Kind, res.Circuit)
	}
	if !reflect.DeepEqual(*res.Circuit, want) {
		t.Errorf("session circuit result differs from legacy:\n got %+v\nwant %+v", *res.Circuit, want)
	}
}

func TestSessionSweepJobMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := testSweepSpec(8)
	encode := func(rep *sweep.Report) string {
		t.Helper()
		rep.ClearTimings()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want, err := sweep.RunSweep(spec, &sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{Workers: 4})
	// A private golden cache per job mirrors the legacy call's private
	// cache, keeping the report's cache statistics comparable.
	res, err := s.Evaluate(context.Background(), SweepJob{Spec: spec, Cache: eval.NewGoldenCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindSweep || res.Sweep == nil {
		t.Fatalf("result shape: kind=%s sweep=%v", res.Kind, res.Sweep)
	}
	if got, exp := encode(res.Sweep), encode(want); got != exp {
		t.Errorf("session sweep report differs from legacy:\n--- session ---\n%s\n--- legacy ---\n%s", got, exp)
	}
}

// TestSessionMixedJobsConcurrent is the acceptance test of the unified
// engine: one Session evaluates a gate job, a circuit job and a sweep
// simultaneously (under -race), produces byte-identical reports to
// serial execution, and serves the operating point all three workloads
// share from one parametrization — the cache records exactly one
// preparation and a hit for each reuse.
func TestSessionMixedJobsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	nl, err := netlist.Builtin("nor-invchain")
	if err != nil {
		t.Fatal(err)
	}
	gateJob := GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 8)}, Seeds: []int64{1, 2},
	}
	circuitJob := CircuitJob{
		Netlist: nl, Params: &p, Config: testConfig(len(nl.Inputs), 8), Seeds: []int64{1, 2},
	}
	// Sweep jobs get a private golden cache so the report's cache rows
	// cannot depend on what the sibling jobs put into the shared cache
	// first — the byte-identity assertion needs schedule-independent
	// reports. The parametrization cache stays shared: reuse there is
	// invisible to report bytes (preparation is deterministic).
	run := func(s *Session, concurrent bool) (gateRows []eval.RunResult, circ eval.CircuitResult, sweepJSON string) {
		t.Helper()
		sweepJob := SweepJob{Spec: testSweepSpec(8), Cache: eval.NewGoldenCache()}
		var gres, cres, sres *Result
		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, 3)
			wg.Add(3)
			go func() { defer wg.Done(); gres, errs[0] = s.Evaluate(context.Background(), gateJob) }()
			go func() { defer wg.Done(); cres, errs[1] = s.Evaluate(context.Background(), circuitJob) }()
			go func() { defer wg.Done(); sres, errs[2] = s.Evaluate(context.Background(), sweepJob) }()
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			var err error
			if gres, err = s.Evaluate(context.Background(), gateJob); err != nil {
				t.Fatal(err)
			}
			if cres, err = s.Evaluate(context.Background(), circuitJob); err != nil {
				t.Fatal(err)
			}
			if sres, err = s.Evaluate(context.Background(), sweepJob); err != nil {
				t.Fatal(err)
			}
		}
		sres.Sweep.ClearTimings()
		var buf bytes.Buffer
		if err := sres.Sweep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return gres.Gate, *cres.Circuit, buf.String()
	}

	serial := New(Options{Workers: 2})
	wantGate, wantCirc, wantSweep := run(serial, false)

	mixed := New(Options{Workers: 4})
	gotGate, gotCirc, gotSweep := run(mixed, true)

	if !reflect.DeepEqual(gotGate, wantGate) {
		t.Errorf("concurrent gate rows differ from serial:\n got %+v\nwant %+v", gotGate, wantGate)
	}
	if !reflect.DeepEqual(gotCirc, wantCirc) {
		t.Errorf("concurrent circuit result differs from serial:\n got %+v\nwant %+v", gotCirc, wantCirc)
	}
	if gotSweep != wantSweep {
		t.Errorf("concurrent sweep report differs from serial:\n--- concurrent ---\n%s\n--- serial ---\n%s", gotSweep, wantSweep)
	}

	// All three workloads run nor2 at the same (params, expDMin) point:
	// one preparation, two cache hits — no re-measurement, no re-fit.
	st := mixed.ParamCache().Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Errorf("mixed-session param stats %+v, want exactly one prepared operating point", st)
	}
	if st.Hits < 2 {
		t.Errorf("mixed-session param stats %+v, want >= 2 hits (circuit and sweep reuse)", st)
	}
}

func TestSessionCancellation(t *testing.T) {
	s := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := fastParams()
	if _, err := s.Evaluate(ctx, GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 8)}, Seeds: []int64{1},
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled gate job returned %v, want context.Canceled", err)
	}
	if _, err := s.Evaluate(ctx, SweepJob{Spec: testSweepSpec(4)}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep job returned %v, want context.Canceled", err)
	}
	nl, err := netlist.Builtin("nor-invchain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(ctx, CircuitJob{
		Netlist: nl, Params: &p, Config: testConfig(2, 8), Seeds: []int64{1},
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled circuit job returned %v, want context.Canceled", err)
	}
}

func TestSessionJobValidation(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if _, err := s.Evaluate(ctx, nil); err == nil {
		t.Error("nil job accepted")
	}
	if _, err := s.Evaluate(ctx, GateJob{Gate: "xor7", Configs: []gen.Config{testConfig(2, 4)}, Seeds: []int64{1}}); err == nil {
		t.Error("unknown gate accepted")
	}
	if _, err := s.Evaluate(ctx, CircuitJob{}); err == nil {
		t.Error("nil netlist accepted")
	}
	if _, err := s.Evaluate(ctx, SweepJob{}); err == nil {
		t.Error("empty sweep spec accepted")
	}
	if _, err := s.Evaluate(ctx, GateJob{Models: &gate.Models{}}); err == nil {
		t.Error("models without a gate accepted")
	}
}

func TestSessionProgressStream(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	s := New(Options{Workers: 2})
	var mu sync.Mutex
	var events []Progress
	_, err := s.Evaluate(context.Background(), GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 8)}, Seeds: []int64{1, 2},
		Progress: func(pr Progress) {
			mu.Lock()
			events = append(events, pr)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2 (one per unit)", len(events))
	}
	for _, ev := range events {
		if ev.Kind != KindGate || ev.Phase != PhaseEval || ev.Total != 2 || ev.Scenario != -1 {
			t.Errorf("unexpected progress event %+v", ev)
		}
	}
	if events[len(events)-1].Completed != 2 {
		t.Errorf("last event completed=%d, want 2", events[len(events)-1].Completed)
	}
}

func TestSessionAccessorsAndDefaults(t *testing.T) {
	golden := eval.NewGoldenCache()
	params := eval.NewParamCache()
	s := New(Options{Workers: 3, Golden: golden, Params: params})
	if s.GoldenCache() != golden || s.ParamCache() != params {
		t.Error("session did not adopt the seeded caches")
	}
	if got := s.workersFor(0); got != 3 {
		t.Errorf("workersFor(0) = %d, want the session budget 3", got)
	}
	if got := s.workersFor(7); got != 7 {
		t.Errorf("workersFor(7) = %d, want the override", got)
	}
	if expDMinOr(0) != DefaultExpDMin || expDMinOr(5e-12) != 5e-12 {
		t.Error("expDMinOr resolution wrong")
	}
	p := fastParams()
	if s.paramsOr(&p) != p || s.paramsOr(nil) != nor.DefaultParams() {
		t.Error("paramsOr resolution wrong")
	}
	sparse := New(Options{Solver: spice.SparseFast})
	if got := sparse.paramsOr(nil).Solver; got != spice.SparseFast {
		t.Errorf("paramsOr(nil) on a sparse session has Solver %v, want sparse-fast", got)
	}
	if got := sparse.paramsOr(&p).Solver; got != spice.DenseExact {
		t.Errorf("explicit params must keep their own Solver, got %v", got)
	}
	kinds := []struct {
		job  Job
		want Kind
	}{
		{GateJob{}, KindGate}, {CircuitJob{}, KindCircuit}, {SweepJob{}, KindSweep},
	}
	for _, k := range kinds {
		if k.job.kind() != k.want {
			t.Errorf("%T kind = %s, want %s", k.job, k.job.kind(), k.want)
		}
	}
	// A defaulted session builds its own caches.
	d := New(Options{})
	if d.GoldenCache() == nil || d.ParamCache() == nil || d.workers < 1 {
		t.Error("defaulted session is missing resources")
	}
}

// TestSessionGoldenCacheControls pins the per-job golden-cache
// resolution: NoCache evaluates without memoization (nothing stored,
// zero stats), a Cache override accrues (and reports) on the override
// instead of the session cache.
func TestSessionGoldenCacheControls(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	s := New(Options{Workers: 2})
	job := GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 8)}, Seeds: []int64{1},
	}

	nc := job
	nc.NoCache = true
	res, err := s.Evaluate(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Golden != (eval.CacheStats{}) {
		t.Errorf("NoCache job reported golden stats %+v, want zero", res.Stats.Golden)
	}
	if st := s.GoldenCache().Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Errorf("NoCache job touched the session cache: %+v", st)
	}

	private := eval.NewGoldenCache()
	ov := job
	ov.Cache = private
	res, err = s.Evaluate(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	if st := private.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Errorf("override cache stats %+v, want the job's one golden run", st)
	}
	if res.Stats.Golden != private.Stats() {
		t.Errorf("result stats %+v do not describe the override cache %+v", res.Stats.Golden, private.Stats())
	}
	if st := s.GoldenCache().Stats(); st.Entries != 0 {
		t.Errorf("override job leaked into the session cache: %+v", st)
	}
}

// TestSessionSolverStatsSurface: a job's Result must carry the MNA
// solver traffic of the transients it triggered — the operating-point
// measurement plus the golden runs.
func TestSessionSolverStatsSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	s := New(Options{Workers: 2})
	res, err := s.Evaluate(context.Background(), GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 6)},
		Seeds:   []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Solver
	if st.Steps == 0 || st.Iterations == 0 || st.Factorizations == 0 {
		t.Fatalf("solver stats %+v, want nonzero traffic from measurement and golden runs", st)
	}
	if st.SparseFactorizations != 0 {
		t.Errorf("dense job reports sparse factorizations: %+v", st)
	}

	// A second job on the warm session sees a cumulative, not smaller,
	// picture.
	res2, err := s.Evaluate(context.Background(), GateJob{
		Gate: "nor2", Params: &p,
		Configs: []gen.Config{testConfig(2, 6)},
		Seeds:   []int64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Solver.Steps < st.Steps {
		t.Errorf("solver stats went backwards across jobs: %+v then %+v", st, res2.Stats.Solver)
	}
}

// TestSessionSparseDefault: a session constructed with Solver:
// SparseFast runs default-parameter jobs through the sparse kernel and
// reports its traffic.
func TestSessionSparseDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	s := New(Options{Workers: 2, Solver: spice.SparseFast})
	ps := fastParams()
	ps.Solver = spice.SparseFast
	res, err := s.Evaluate(context.Background(), GateJob{
		Gate: "nor2", Params: &ps,
		Configs: []gen.Config{testConfig(2, 6)},
		Seeds:   []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Solver
	if st.SparseFactorizations == 0 || st.LinearReuses == 0 {
		t.Fatalf("sparse session solver stats %+v, want sparse kernel traffic", st)
	}
}

// TestSessionWarmPoolSymbolicSharing pins the acceptance criterion of
// the process-wide symbolic cache: a sparse job fanned over a worker
// pool runs at most one Markowitz pilot per distinct topology — every
// pooled clone adopts the shared analysis as a hit — and a warm repeat
// adds no analyses at all.
func TestSessionWarmPoolSymbolicSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	s := New(Options{Workers: 4, Solver: spice.SparseFast})
	ps := fastParams()
	ps.Solver = spice.SparseFast
	job := GateJob{
		Gate: "nor2", Params: &ps,
		Configs: []gen.Config{testConfig(2, 6)},
		Seeds:   []int64{1, 2, 3},
	}
	res, err := s.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Solver
	if st.SymbolicMisses > 1 {
		t.Fatalf("warm pool ran %d symbolic analyses for one topology (stats %+v)", st.SymbolicMisses, st)
	}
	if st.SymbolicMisses+st.SymbolicHits == 0 {
		t.Fatalf("sparse job never consulted the symbolic cache: %+v", st)
	}

	job.Seeds = []int64{4}
	res2, err := s.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := res2.Stats.Solver; st2.SymbolicMisses > 1 {
		t.Fatalf("warm repeat re-analyzed: %d misses (stats %+v)", st2.SymbolicMisses, st2)
	}
	if snap := s.Snapshot(); snap.Symbolic.Hits == 0 && snap.Symbolic.Misses == 0 {
		t.Errorf("session snapshot reports no shared symbolic-cache traffic: %+v", snap.Symbolic)
	}
}

// TestSessionCacheLimits: the session options plumb the memory bounds
// into both caches.
func TestSessionCacheLimits(t *testing.T) {
	s := New(Options{GoldenBudget: 3, ParamLimit: 1})
	for seed := int64(1); seed <= 3; seed++ {
		key := eval.GoldenKey{Gate: "limit-test", Seed: seed}
		if _, err := s.GoldenCache().GetOrCompute(key, func() (trace.Trace, error) {
			return trace.New(false, []trace.Event{{Time: 1e-12, Value: true}}), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.GoldenCache().Stats()
	if st.Evictions == 0 {
		t.Errorf("golden cache stats %+v, want evictions under a 10-cost budget", st)
	}
}
