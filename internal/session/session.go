// Package session unifies the evaluation entry points of the accuracy
// study behind one long-lived, concurrency-safe engine. The paper's
// pipeline is a single flow — golden simulation, model parametrization,
// trace comparison — but PRs 1–4 grew one entry-point family per
// workload (gate evaluation, circuit evaluation, scenario sweeps), each
// threading its own worker count, golden cache and freshly re-fitted
// models. A Session owns those resources once:
//
//   - the bounded worker budget every workload schedules on,
//   - the shared golden-trace cache (eval.GoldenCache), and
//   - the shared parametrization cache (eval.ParamCache) memoizing
//     Gate.NewBench → Measure → BuildModels per operating point,
//
// so repeated and mixed workloads at the same operating point never
// re-simulate a golden transient or re-fit a model set. All workloads
// are values submitted through one door — Session.Evaluate(ctx, job)
// with a GateJob, CircuitJob or SweepJob — returning a uniform Result
// (per-config / per-net / per-scenario rows plus cache and timing
// stats) and reporting through a single Progress stream. Cancellation
// via the context is plumbed down to the unit workers: a cancelled job
// stops claiming units and aborts in-flight units at their next stage
// boundary.
//
// The legacy facade entry points (EvaluateParallel, EvaluateGate,
// EvaluateCircuit, RunSweep) remain supported as thin wrappers over a
// process-wide default Session, with bit-identical results.
package session

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/la/sparse"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// DefaultExpDMin is the exp channel's empirical pure delay used when a
// job does not override it (paper: 20 ps) — the same default the sweep
// engine and the CLI apply.
const DefaultExpDMin = 20 * waveform.Pico

// Options configures a Session.
type Options struct {
	// Workers bounds the worker pool each job schedules on. Zero or
	// negative selects runtime.GOMAXPROCS(0); individual jobs may
	// override per submission.
	Workers int

	// Solver selects the session's default MNA solver mode
	// (spice.DenseExact or spice.SparseFast). It applies to jobs that do
	// not supply bench parameters of their own; explicit job parameters
	// carry their own Solver field. The mode is part of every cache and
	// store key, so mixed-mode sessions never share golden traces or
	// operating points across modes.
	Solver spice.SolverMode

	// GoldenBudget, when positive, bounds the golden cache's memory: the
	// total eviction cost (stored trace transitions) completed entries
	// may hold before cost-based LRU eviction kicks in. Zero keeps the
	// cache unbounded. Applied to a shared cache passed via Golden too.
	GoldenBudget int64

	// ParamLimit, when positive, bounds the number of operating points
	// the parametrization cache retains (LRU). Zero keeps it unbounded.
	// Applied to a shared cache passed via Params too.
	ParamLimit int

	// BaseParams overrides the bench parameters jobs fall back to when
	// they carry none of their own: the session's operating point. Nil
	// selects nor.DefaultParams() under the session's Solver mode; a
	// non-nil value is used verbatim (its own Solver field included).
	// A server built on the session uses this to pin the operating
	// point all tenants share.
	BaseParams *nor.Params

	// Golden, when non-nil, seeds the session with an existing
	// golden-trace cache (e.g. to share one cache between sessions).
	// Nil creates a private cache owned by the session.
	Golden *eval.GoldenCache

	// Params, when non-nil, seeds the session with an existing
	// parametrization cache. Nil creates a private cache.
	Params *eval.ParamCache

	// Store, when non-nil, mounts a persistent on-disk tier (e.g.
	// *store.Store) below the session's golden cache: in-memory misses
	// are served from disk when a prior process already solved them, and
	// freshly computed traces spill to disk in the background, so
	// fig7/sweep/circuit runs warm-start across process restarts. The
	// store is attached to the session's golden cache, including a
	// shared cache passed via Golden. The caller keeps ownership and
	// must Close the store after the session's last use.
	Store eval.PersistentStore
}

// Session is the long-lived evaluation engine: one value owns the
// worker budget, the golden-trace cache and the parametrization cache,
// and every workload — single-gate accuracy runs, circuit-level runs,
// scenario sweeps — is submitted through Evaluate. A Session is safe
// for concurrent use; concurrent jobs share the caches (including
// in-flight singleflight deduplication) but each schedules its units on
// its own bounded pool.
type Session struct {
	workers int
	solver  spice.SolverMode
	base    *nor.Params
	golden  *eval.GoldenCache
	params  *eval.ParamCache
	store   eval.PersistentStore
}

// New builds a Session. opt zero value selects all defaults.
func New(opt Options) *Session {
	s := &Session{workers: opt.Workers, solver: opt.Solver, base: opt.BaseParams, golden: opt.Golden, params: opt.Params, store: opt.Store}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.golden == nil {
		s.golden = eval.NewGoldenCache()
	}
	if s.params == nil {
		s.params = eval.NewParamCache()
	}
	if opt.Store != nil {
		s.golden.SetStore(opt.Store)
	}
	if opt.GoldenBudget > 0 {
		s.golden.SetLimit(opt.GoldenBudget)
	}
	if opt.ParamLimit > 0 {
		s.params.SetLimit(opt.ParamLimit)
	}
	return s
}

// GoldenCache returns the session's shared golden-trace cache.
func (s *Session) GoldenCache() *eval.GoldenCache { return s.golden }

// ParamCache returns the session's shared parametrization cache.
func (s *Session) ParamCache() *eval.ParamCache { return s.params }

// Workers returns the session's default worker budget.
func (s *Session) Workers() int { return s.workers }

// Close drains the session's durable state: when a persistent store is
// mounted and supports flushing (store.Store does), every golden trace
// still queued on its write-behind path is written out before Close
// returns. The session stays usable afterwards — Close is a flush
// point, not a teardown — and the caller keeps ownership of the store
// itself (see Options.Store). A server shutdown or a short-lived CLI
// run calls Close so freshly computed traces cannot be dropped.
func (s *Session) Close() error {
	if f, ok := s.store.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// Snapshot is a point-in-time view of the session's shared resources,
// for operational surfaces (the serve mode's /metrics endpoint). All
// counters are session-lifetime values.
type Snapshot struct {
	Golden   eval.CacheStats   `json:"golden"`   // shared golden-trace cache
	Params   eval.ParamStats   `json:"params"`   // parametrization cache
	Solver   spice.SolverStats `json:"solver"`   // aggregate over cached operating points
	Symbolic sparse.CacheStats `json:"symbolic"` // process-wide symbolic-factorization cache
	Workers  int               `json:"workers"`  // default worker budget
}

// Snapshot captures the session's cache and solver counters. The
// solver picture aggregates the pooled benches of every operating
// point in the parametrization cache (idle instances only — between
// jobs the pools are fully idle, so a quiescent snapshot sees every
// transient those sources ever ran).
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		Golden:   s.golden.Stats(),
		Params:   s.params.Stats(),
		Solver:   s.params.SolverStats(),
		Symbolic: spice.SharedSymbolicCache().Stats(),
		Workers:  s.workers,
	}
}

// Kind names a job (and result) flavour.
type Kind string

// The three workload flavours a Session evaluates.
const (
	KindGate    Kind = "gate"
	KindCircuit Kind = "circuit"
	KindSweep   Kind = "sweep"
)

// Phase names reported through Progress, shared with the sweep engine.
const (
	PhasePrepare = sweep.PhasePrepare // operating-point preparation steps
	PhaseEval    = sweep.PhaseEval    // (config/scenario, seed) evaluation units
)

// Progress is the session's single progress stream: one event per
// completed step of any job flavour. Calls to a job's Progress callback
// are serialized; steps may complete in any order.
type Progress struct {
	Kind      Kind       // submitting job's flavour
	Phase     string     // PhasePrepare or PhaseEval
	Config    gen.Config // evaluated configuration (gate and circuit units)
	Scenario  int        // scenario index (sweep units; -1 otherwise)
	Seed      int64      // seed of the completed unit (eval phase)
	Completed int        // steps of this phase finished so far
	Total     int        // total steps of this phase
	Err       error      // the step's error, if any
}

// Job is a workload value submitted to Session.Evaluate: a GateJob,
// CircuitJob or SweepJob.
type Job interface {
	kind() Kind
}

// GateJob evaluates the Fig. 7 accuracy pipeline for one gate at one
// operating point over one or more waveform configurations. The zero
// value of every optional field selects a default: the registry's
// default gate, the calibrated bench parameters, DefaultExpDMin, the
// session's worker budget. When Models (and optionally Bench) are set
// the job skips the parametrization cache and evaluates exactly the
// given model set — this is how the legacy entry points, which receive
// pre-built models, submit their work.
type GateJob struct {
	// Gate is the registry name ("nor2", "nand2", "nor3"); empty
	// selects the default gate. Ignored when Models is set.
	Gate string
	// Params overrides the bench parameters; nil selects
	// nor.DefaultParams().
	Params *nor.Params
	// Bench, when non-nil, seeds the golden bench pool with an existing
	// instance instead of constructing one (its gate and parameters take
	// precedence over Gate/Params).
	Bench gate.Bench
	// Models, when non-nil, is evaluated as-is; nil prepares (or reuses)
	// the operating point through the session's parametrization cache.
	Models *gate.Models
	// Configs lists the waveform configurations; each is evaluated over
	// Seeds and reported as one Result row.
	Configs []gen.Config
	// Seeds lists the repetitions per configuration.
	Seeds []int64
	// ExpDMin overrides the exp channel's empirical pure delay;
	// 0 selects DefaultExpDMin. Ignored when Models is set.
	ExpDMin float64
	// Cache overrides the session's golden cache for this job; nil
	// shares the session cache.
	Cache *eval.GoldenCache
	// NoCache evaluates without golden-trace memoization entirely —
	// for workloads whose (config, seed) units never repeat, where
	// caching would only grow memory without ever hitting. Overrides
	// Cache.
	NoCache bool
	// Workers overrides the session's worker budget for this job.
	Workers int
	// Progress, when non-nil, receives the job's progress events.
	Progress func(Progress)
}

func (GateJob) kind() Kind { return KindGate }

// CircuitJob evaluates the circuit-level accuracy pipeline for one
// netlist at one operating point under one waveform configuration.
// Zero-value optional fields select defaults as in GateJob; the member
// gates' model sets are prepared through (or served from) the session's
// parametrization cache unless Models is set.
type CircuitJob struct {
	// Netlist is the evaluated circuit. Required.
	Netlist *netlist.Netlist
	// Params overrides the bench parameters; nil selects
	// nor.DefaultParams().
	Params *nor.Params
	// Models, when non-nil, is used as-is; nil prepares one model set
	// per distinct member gate through the parametrization cache.
	Models netlist.ModelSet
	// Config is the waveform configuration driving the primary inputs.
	Config gen.Config
	// Seeds lists the repetitions.
	Seeds []int64
	// ExpDMin overrides the exp channel's pure delay; 0 selects
	// DefaultExpDMin. Ignored when Models is set.
	ExpDMin float64
	// Cache overrides the session's golden cache for this job; nil
	// shares the session cache.
	Cache *eval.GoldenCache
	// NoCache evaluates without golden-trace memoization entirely;
	// see GateJob.NoCache. Overrides Cache.
	NoCache bool
	// Workers overrides the session's worker budget for this job.
	Workers int
	// Progress, when non-nil, receives the job's progress events.
	Progress func(Progress)
}

func (CircuitJob) kind() Kind { return KindCircuit }

// SweepJob evaluates a declarative scenario grid. The sweep shares the
// session's caches: golden traces memoize across the grid and across
// jobs, and operating points prepared by earlier jobs (or sweeps) are
// not re-measured.
type SweepJob struct {
	// Spec is the scenario grid. Required.
	Spec sweep.Spec
	// Cache overrides the session's golden cache for this job (the
	// legacy RunSweep wrapper uses a private cache per call so its
	// report's cache statistics stay those of one run). Nil shares the
	// session cache.
	Cache *eval.GoldenCache
	// Workers overrides the session's worker budget for this job.
	Workers int
	// Progress, when non-nil, receives the job's progress events.
	Progress func(Progress)
}

func (SweepJob) kind() Kind { return KindSweep }

// Stats reports a job's resource picture: snapshots of the cache
// counters taken when the job finished, and the job's wall time.
// Golden describes the golden cache the job actually used — the
// session's shared cache, or the job's Cache override (zero when the
// job opted out with NoCache); Params always describes the session's
// shared parametrization cache. Snapshots are cache-lifetime values,
// not per-job deltas — a warm session shows the accumulated
// effectiveness.
type Stats struct {
	Golden      eval.CacheStats // snapshot of the golden cache the job used
	Params      eval.ParamStats // parametrization cache snapshot
	WallSeconds float64         // job wall time
	// Solver aggregates the MNA solver traffic visible at job end: the
	// job's own bench pools plus the cumulative counters of every
	// operating point in the session's parametrization cache (their
	// measurement transients and all golden runs they served). Like the
	// cache snapshots, this is a cache-lifetime picture, not a per-job
	// delta.
	Solver spice.SolverStats
}

// Result is the uniform outcome of Session.Evaluate: exactly one of
// the per-flavour payloads is populated (matching Kind), plus the
// cache and timing stats every flavour shares.
type Result struct {
	Kind Kind

	// Gate holds one merged row per GateJob configuration, in input
	// order.
	Gate []eval.RunResult
	// Models is the model set a GateJob evaluated (prepared or passed
	// in), for callers that report fit parameters.
	Models *gate.Models

	// Circuit holds a CircuitJob's per-net accuracy rows.
	Circuit *eval.CircuitResult

	// Sweep holds a SweepJob's report.
	Sweep *sweep.Report

	Stats Stats
}

// Evaluate runs one job to completion on the session's resources.
// It is safe to call concurrently; ctx cancels the job (no new units
// claimed, in-flight units stop at their next stage boundary).
func (s *Session) Evaluate(ctx context.Context, job Job) (*Result, error) {
	start := time.Now()
	var (
		res *Result
		err error
	)
	switch j := job.(type) {
	case GateJob:
		j.Progress = serializeProgress(j.Progress)
		res, err = s.evaluateGate(ctx, j)
	case CircuitJob:
		j.Progress = serializeProgress(j.Progress)
		res, err = s.evaluateCircuit(ctx, j)
	case SweepJob:
		j.Progress = serializeProgress(j.Progress)
		res, err = s.evaluateSweep(ctx, j)
	case nil:
		return nil, fmt.Errorf("session: nil job")
	default:
		return nil, fmt.Errorf("session: unknown job type %T", job)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Params = s.params.Stats()
	res.Stats.Solver.Add(s.params.SolverStats())
	res.Stats.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// serializeProgress wraps a job's Progress callback in a per-job mutex
// so events are delivered one at a time, making the delivery guarantee
// documented on Progress independent of which engine (or pool) runs the
// job. Within one phase the Completed counter is then strictly
// increasing as observed by the callback — which is what lets the serve
// mode's SSE stream assign deterministic per-job sequence numbers.
func serializeProgress(fn func(Progress)) func(Progress) {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		fn(p)
	}
}

// goldenFor resolves the golden cache a job uses: its override, the
// session's shared cache, or none (NoCache).
func (s *Session) goldenFor(override *eval.GoldenCache, noCache bool) *eval.GoldenCache {
	if noCache {
		return nil
	}
	if override != nil {
		return override
	}
	return s.golden
}

// workersFor resolves a job's effective worker budget.
func (s *Session) workersFor(override int) int {
	if override > 0 {
		return override
	}
	return s.workers
}

// expDMinOr resolves a job's exp-channel pure delay.
func expDMinOr(v float64) float64 {
	if v > 0 {
		return v
	}
	return DefaultExpDMin
}

// paramsOr resolves a job's bench parameters: explicit parameters are
// used as-is (their Solver field included); nil selects the session's
// base operating point — Options.BaseParams when set, else the
// calibrated defaults under the session's default solver mode.
func (s *Session) paramsOr(p *nor.Params) nor.Params {
	if p != nil {
		return *p
	}
	if s.base != nil {
		return *s.base
	}
	d := nor.DefaultParams()
	d.Solver = s.solver
	return d
}

// gateProgress adapts the eval runner's progress events onto the
// session stream.
func gateProgress(kind Kind, fn func(Progress)) func(eval.Progress) {
	if fn == nil {
		return nil
	}
	return func(p eval.Progress) {
		fn(Progress{
			Kind: kind, Phase: PhaseEval, Config: p.Config, Scenario: -1,
			Seed: p.Seed, Completed: p.Completed, Total: p.Total, Err: p.Err,
		})
	}
}

// evaluateGate resolves the operating point (from the job or the
// parametrization cache), composes the pooled and cached golden source
// and fans the (config, seed) units across the job's worker budget.
func (s *Session) evaluateGate(ctx context.Context, j GateJob) (*Result, error) {
	var (
		models  gate.Models
		src     eval.GoldenSource
		params  nor.Params
		ownPool *eval.BenchSource // job-private pool outside the param cache
	)
	switch {
	case j.Models != nil:
		models = *j.Models
		if models.Gate == nil {
			return nil, fmt.Errorf("session: GateJob.Models.Gate is unset (build models through a registered gate)")
		}
		if j.Bench != nil {
			params = j.Bench.Params()
			ownPool = eval.NewGateBenchSource(j.Bench)
		} else {
			params = s.paramsOr(j.Params)
			bench, err := models.Gate.NewBench(params)
			if err != nil {
				return nil, fmt.Errorf("session: gate %s: bench: %w", models.Gate.Name(), err)
			}
			ownPool = eval.NewGateBenchSource(bench)
		}
		src = ownPool
	case j.Bench != nil:
		// A bench without models: prepare the bench's own operating
		// point through the cache (the bench still seeds nothing — the
		// cached point pools its own instances).
		op, err := s.params.OperatingPoint(ctx, j.Bench.Gate(), j.Bench.Params(), expDMinOr(j.ExpDMin))
		if err != nil {
			return nil, err
		}
		models, src, params = op.Models, op.Golden, j.Bench.Params()
	default:
		g, err := gate.Find(j.Gate)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		params = s.paramsOr(j.Params)
		op, err := s.params.OperatingPoint(ctx, g, params, expDMinOr(j.ExpDMin))
		if err != nil {
			return nil, err
		}
		models, src = op.Models, op.Golden
	}
	cache := s.goldenFor(j.Cache, j.NoCache)
	if cache != nil {
		src = eval.CachedSource{Gate: models.Gate.Name(), Bench: params, Cache: cache, Src: src}
	}
	runner := eval.NewSourceRunner(src, models, &eval.Options{
		Workers:  s.workersFor(j.Workers),
		Progress: gateProgress(KindGate, j.Progress),
	})
	rows, err := runner.RunContext(ctx, j.Configs, j.Seeds)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: KindGate, Gate: rows, Models: &models}
	if cache != nil {
		res.Stats.Golden = cache.Stats()
	}
	if ownPool != nil {
		// A job-private pool is not part of the parametrization cache's
		// aggregate, so its traffic is added here.
		res.Stats.Solver = ownPool.SolverStats()
	}
	return res, nil
}

// modelSetFor assembles a netlist's per-gate model sets from the
// parametrization cache: one prepared operating point per distinct
// member gate.
func (s *Session) modelSetFor(ctx context.Context, nl *netlist.Netlist, p nor.Params, expDMin float64) (netlist.ModelSet, error) {
	ms := netlist.ModelSet{}
	for _, inst := range nl.Instances {
		g, err := gate.Find(inst.Gate)
		if err != nil {
			return nil, fmt.Errorf("session: netlist instance %q: %w", inst.Name, err)
		}
		if _, ok := ms[g.Name()]; ok {
			continue
		}
		op, err := s.params.OperatingPoint(ctx, g, p, expDMin)
		if err != nil {
			return nil, err
		}
		ms[g.Name()] = op.Models
	}
	return ms, nil
}

// evaluateCircuit validates the netlist, resolves the member-gate model
// sets (from the job or the parametrization cache) and runs the
// circuit pipeline on the job's worker budget against the session's
// golden cache.
func (s *Session) evaluateCircuit(ctx context.Context, j CircuitJob) (*Result, error) {
	if j.Netlist == nil {
		return nil, fmt.Errorf("session: CircuitJob.Netlist is nil")
	}
	if err := j.Netlist.Validate(); err != nil {
		return nil, err
	}
	p := s.paramsOr(j.Params)
	ms := j.Models
	if ms == nil {
		var err error
		if ms, err = s.modelSetFor(ctx, j.Netlist, p, expDMinOr(j.ExpDMin)); err != nil {
			return nil, err
		}
	}
	cache := s.goldenFor(j.Cache, j.NoCache)
	res, err := eval.EvaluateCircuitContext(ctx, j.Netlist, p, ms, j.Config, j.Seeds, &eval.Options{
		Workers:  s.workersFor(j.Workers),
		Cache:    cache, // nil (NoCache) evaluates uncached
		Progress: gateProgress(KindCircuit, j.Progress),
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Kind: KindCircuit, Circuit: &res}
	if cache != nil {
		out.Stats.Golden = cache.Stats()
	}
	// The run's composed-bench pool is job-private; the shared-cache
	// aggregate is added by Evaluate.
	out.Stats.Solver = res.Solver
	return out, nil
}

// evaluateSweep runs the scenario grid on the job's worker budget; the
// session's parametrization cache serves operating points prepared by
// any earlier job, and the golden cache (unless overridden) memoizes
// across the grid and across jobs.
func (s *Session) evaluateSweep(ctx context.Context, j SweepJob) (*Result, error) {
	cache := j.Cache
	if cache == nil {
		cache = s.golden
	}
	if j.Spec.Bench == nil {
		// A spec without explicit bench parameters inherits the session's
		// default solver mode, like the other job flavours.
		p := s.paramsOr(nil)
		j.Spec.Bench = &p
	}
	var progress func(sweep.Progress)
	if j.Progress != nil {
		fn := j.Progress
		progress = func(p sweep.Progress) {
			fn(Progress{
				Kind: KindSweep, Phase: p.Phase, Scenario: p.Scenario,
				Seed: p.Seed, Completed: p.Completed, Total: p.Total, Err: p.Err,
			})
		}
	}
	rep, err := sweep.RunSweepContext(ctx, j.Spec, &sweep.Options{
		Workers:  s.workersFor(j.Workers),
		Cache:    cache,
		Params:   s.params,
		Progress: progress,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Kind: KindSweep, Sweep: rep, Stats: Stats{Golden: cache.Stats()}}, nil
}
