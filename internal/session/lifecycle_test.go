package session

import (
	"context"
	"testing"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/store"
)

// TestSessionCloseFlushesStore exercises the write-behind drain path
// end to end at the session layer: a job computes golden traces that
// spill to the persistent store in the background, Session.Close
// flushes them before the process "exits", and a second session over a
// reopened store serves the same job warm from disk — with zero new
// transient solves beyond the parametrization measurements.
func TestSessionCloseFlushesStore(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	dir := t.TempDir()
	p := fastParams()
	job := GateJob{Params: &p, Configs: []gen.Config{testConfig(2, 2)}, Seeds: []int64{1, 2}}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s1 := New(Options{Store: st})
	cold, err := s1.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatalf("cold Evaluate: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Session.Close: %v", err)
	}
	// After Close every background write must have landed: the store's
	// own counter is the ground truth (Flush waits for the writer, not
	// just the queue).
	if w := st.Stats().Writes; w == 0 {
		t.Fatalf("no store writes landed after Session.Close; stats=%+v", st.Stats())
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	s2 := New(Options{Store: st2})
	warm, err := s2.Evaluate(context.Background(), job)
	if err != nil {
		t.Fatalf("warm Evaluate: %v", err)
	}
	if warm.Stats.Golden.DiskHits == 0 {
		t.Fatalf("reopened store served no disk hits; golden stats %+v, store stats %+v",
			warm.Stats.Golden, st2.Stats())
	}
	if st2.Stats().Misses != 0 {
		t.Errorf("warm run missed on disk: store stats %+v", st2.Stats())
	}
	if len(warm.Gate) != len(cold.Gate) {
		t.Fatalf("row count changed across restart: %d vs %d", len(warm.Gate), len(cold.Gate))
	}
	for i := range warm.Gate {
		for model, area := range warm.Gate[i].Area {
			if got := cold.Gate[i].Area[model]; area != got {
				t.Errorf("row %d model %s: warm area %g != cold %g", i, model, area, got)
			}
		}
	}
}

// TestSessionCloseWithoutStore ensures Close is a no-op (and safe) on a
// session with no persistent tier.
func TestSessionCloseWithoutStore(t *testing.T) {
	if err := New(Options{}).Close(); err != nil {
		t.Fatalf("Close without store: %v", err)
	}
}

// TestSessionProgressSerializedMonotonic pins the serialized-delivery
// guarantee: Progress callbacks run one at a time and the eval-phase
// Completed counter increases strictly by one as observed inside the
// callback, even with many pooled workers finishing units
// concurrently. The callback mutates shared state without any locking
// of its own — under -race this fails loudly if delivery is not
// serialized.
func TestSessionProgressSerializedMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	p.Solver = spice.SparseFast
	var (
		last  int // eval-phase Completed as last observed; no mutex on purpose
		total int
		bad   []string
	)
	job := GateJob{
		Params:  &p,
		Configs: []gen.Config{testConfig(2, 2), testConfig(2, 3)},
		Seeds:   []int64{1, 2, 3},
		Workers: 8,
		Progress: func(pr Progress) {
			if pr.Phase != PhaseEval {
				return
			}
			if pr.Completed != last+1 {
				bad = append(bad, "completed jumped")
			}
			last = pr.Completed
			total = pr.Total
		},
	}
	if _, err := New(Options{}).Evaluate(context.Background(), job); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(bad) != 0 {
		t.Fatalf("non-monotonic progress delivery: %d violations", len(bad))
	}
	if last != total || total != 6 {
		t.Fatalf("final progress %d/%d, want 6/6", last, total)
	}
}
