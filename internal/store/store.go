// Package store persists digitized golden traces on disk, content-
// addressed by their eval.GoldenKey. It is the bottom tier of the
// golden-cache hierarchy: the in-memory GoldenCache serves repeats
// within a process, the store serves them across processes — a warm
// store lets fig7/sweep/circuit runs start with zero transient solves.
//
// Layout (under the root passed to Open):
//
//	VERSION               format stamp ("hdgs-v1\n"); mismatch refuses Open
//	objects/<hh>/<hash>   one entry per golden run, hh = first hash byte
//	tmp/                  staging area for atomic writes
//
// The address <hash> is the SHA-256 of a canonical key string that
// spells out every GoldenKey field (gate name, seed, every bench and
// config parameter with exact hex-float encoding) plus the entry kind,
// so any parameter change — however small — addresses a different
// entry. Entries are self-describing: a magic/version header, the kind,
// the full canonical key echoed back, the payload, and a CRC-32 of
// everything before it. A checksum, key-echo or header mismatch (torn
// write, corruption, hash collision) makes the entry a counted miss;
// the cache recomputes and overwrites it.
//
// Writes are atomic (temp file + rename) and asynchronous: Save/SaveSet
// enqueue to a single writer goroutine, so the solver hot path never
// waits on disk. Flush drains the queue; Close flushes and stops the
// writer. All methods are safe for concurrent use.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
)

const (
	magic   = "HDGS" // HybridDelay Golden Store
	version = 1

	kindTrace = byte(1) // single digitized trace (gate golden)
	kindSet   = byte(2) // trace set (composed circuit golden)

	versionStamp = "hdgs-v1\n"
)

// Stats counts store traffic since Open.
type Stats struct {
	Hits        int64 // loads served from a valid entry
	Misses      int64 // loads with no entry on disk
	Corrupt     int64 // loads rejected by header/checksum/key verification
	Writes      int64 // entries written successfully
	WriteErrors int64 // background writes that failed
}

// Store is an on-disk content-addressed golden-trace store. It
// implements eval.PersistentStore.
type Store struct {
	dir string

	mu     sync.Mutex
	closed bool
	stats  Stats

	queue      chan writeReq
	writerDone chan struct{}
}

type writeReq struct {
	path string
	data []byte
	done chan struct{} // non-nil: flush token, no write
}

// Open creates or opens a store rooted at dir. A store written by an
// incompatible format version refuses to open (delete the directory to
// rebuild it).
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"", "objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	vpath := filepath.Join(dir, "VERSION")
	if b, err := os.ReadFile(vpath); err == nil {
		if string(b) != versionStamp {
			return nil, fmt.Errorf("store: %s holds incompatible format %q (want %q)", dir, string(b), versionStamp)
		}
	} else if os.IsNotExist(err) {
		if err := writeAtomic(dir, vpath, []byte(versionStamp)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:        dir,
		queue:      make(chan writeReq, 128),
		writerDone: make(chan struct{}),
	}
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters. Pending background
// writes are not yet counted; call Flush first for exact totals.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// writer is the single background goroutine performing all disk writes.
func (s *Store) writer() {
	for req := range s.queue {
		if req.done != nil {
			close(req.done)
			continue
		}
		err := writeAtomic(s.dir, req.path, req.data)
		s.mu.Lock()
		if err != nil {
			s.stats.WriteErrors++
		} else {
			s.stats.Writes++
		}
		s.mu.Unlock()
	}
	close(s.writerDone)
}

// writeAtomic stages data in the store's tmp directory and renames it
// into place, so readers never observe a partially written entry.
func writeAtomic(root, path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Join(root, "tmp"), "put-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// enqueue hands a request to the writer, failing after Close.
func (s *Store) enqueue(req writeReq) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	s.mu.Unlock()
	s.queue <- req
	return nil
}

// Flush blocks until every previously enqueued write has landed.
func (s *Store) Flush() error {
	done := make(chan struct{})
	if err := s.enqueue(writeReq{done: done}); err != nil {
		return err
	}
	<-done
	return nil
}

// Close flushes pending writes and stops the writer. The store must not
// be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	<-s.writerDone
	return nil
}

// ---------------------------------------------------------------------
// Content addressing

// hx encodes a float64 exactly (hex mantissa/exponent round-trip), so
// the canonical key never loses precision to decimal formatting.
func hx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func mosString(b *bytes.Buffer, tag string, m spice.MOSParams) {
	fmt.Fprintf(b, "%s=%t,%s,%s,%s,%s,%s,%s,%s\n", tag,
		m.PMOS, hx(m.VT0), hx(m.K), hx(m.Lambda), hx(m.Cgs), hx(m.Cgd), hx(m.Cdb), hx(m.Gmin))
}

// keyString renders the canonical, versioned content key of one golden
// run. Every field of eval.GoldenKey (and of the structs inside it) is
// spelled out explicitly: adding a field to any of those structs must
// extend this encoding, which the schema-drift guard test enforces.
func keyString(kind byte, k eval.GoldenKey) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "hdgs/%d kind=%d\ngate=%s\nseed=%d\n", version, kind, k.Gate, k.Seed)
	p := k.Bench
	fmt.Fprintf(&b, "supply=%s,%s\n", hx(p.Supply.VDD), hx(p.Supply.Vth))
	mosString(&b, "t1", p.T1)
	mosString(&b, "t2", p.T2)
	mosString(&b, "t3", p.T3)
	mosString(&b, "t4", p.T4)
	fmt.Fprintf(&b, "cn=%s\nco=%s\nrise=%s\nmaxstep=%s\nltetol=%s\nmethod=%d\nsolver=%d\nsparsepivot=%s\n",
		hx(p.CN), hx(p.CO), hx(p.InputRise), hx(p.MaxStep), hx(p.LTETol), int(p.Method), int(p.Solver), hx(p.SparsePivotRel))
	c := k.Config
	fmt.Fprintf(&b, "mu=%s\nsigma=%s\nmode=%d\ninputs=%d\ntransitions=%d\nstart=%s\nmingap=%s\n",
		hx(c.Mu), hx(c.Sigma), int(c.Mode), c.Inputs, c.Transitions, hx(c.Start), hx(c.MinGap))
	return b.String()
}

// path maps a canonical key string to its object file.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, "objects", h[:2], h)
}

// Compile-time guards that the canonical encoding covers the key
// structs; the drift test in store_test.go asserts the field counts.
var (
	_                      = gen.Config{}
	_ eval.PersistentStore = (*Store)(nil)
)

// ---------------------------------------------------------------------
// On-disk object format

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putF64(b *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.Write(tmp[:])
}

// encodeObject frames a payload: magic, version, kind, the canonical
// key echoed in full, the payload, and a trailing CRC-32 (IEEE) of
// everything before it.
func encodeObject(kind byte, key string, payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(key) + len(payload) + 32)
	b.WriteString(magic)
	b.WriteByte(version)
	b.WriteByte(kind)
	putU32(&b, uint32(len(key)))
	b.WriteString(key)
	putU32(&b, uint32(len(payload)))
	b.Write(payload)
	putU32(&b, crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// decodeObject verifies the frame and returns the payload.
func decodeObject(data []byte, kind byte, key string) ([]byte, error) {
	r := reader{data: data}
	if string(r.bytes(4)) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	if v := r.u8(); v != version {
		return nil, fmt.Errorf("store: entry version %d (want %d)", v, version)
	}
	if k := r.u8(); k != kind {
		return nil, fmt.Errorf("store: entry kind %d (want %d)", k, kind)
	}
	if got := string(r.bytes(int(r.u32()))); got != key {
		return nil, fmt.Errorf("store: key mismatch (hash collision or truncated entry)")
	}
	payload := r.bytes(int(r.u32()))
	sumPos := r.pos
	if r.failed || sumPos+4 != len(data) {
		return nil, fmt.Errorf("store: truncated entry")
	}
	want := binary.LittleEndian.Uint32(data[sumPos:])
	if crc32.ChecksumIEEE(data[:sumPos]) != want {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}

// reader is a bounds-checked byte cursor; any overrun flips failed and
// every later read returns zero values.
type reader struct {
	data   []byte
	pos    int
	failed bool
}

func (r *reader) bytes(n int) []byte {
	if r.failed || n < 0 || r.pos+n > len(r.data) {
		r.failed = true
		return nil
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) f64() float64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func encodeTrace(b *bytes.Buffer, tr trace.Trace) {
	if tr.Initial {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	putU32(b, uint32(len(tr.Events)))
	for _, e := range tr.Events {
		putF64(b, e.Time)
		if e.Value {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
}

func decodeTrace(r *reader) (trace.Trace, error) {
	var tr trace.Trace
	tr.Initial = r.u8() != 0
	n := int(r.u32())
	if r.failed || n < 0 || n > (len(r.data)-r.pos)/9 {
		return tr, fmt.Errorf("store: invalid event count")
	}
	if n > 0 {
		tr.Events = make([]trace.Event, n)
		for i := range tr.Events {
			tr.Events[i] = trace.Event{Time: r.f64(), Value: r.u8() != 0}
		}
	}
	if r.failed {
		return tr, fmt.Errorf("store: truncated trace")
	}
	return tr, nil
}

// ---------------------------------------------------------------------
// eval.PersistentStore

// load reads and verifies one object; the bool reports presence.
func (s *Store) load(kind byte, k eval.GoldenKey) ([]byte, bool) {
	key := keyString(kind, k)
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, err := decodeObject(data, kind, key)
	if err != nil {
		// Torn write or corruption: a counted soft miss; the cache
		// recomputes and the rewrite replaces the bad entry.
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// Load implements eval.PersistentStore for single traces.
func (s *Store) Load(k eval.GoldenKey) (trace.Trace, bool, error) {
	payload, ok := s.load(kindTrace, k)
	if !ok {
		return trace.Trace{}, false, nil
	}
	r := &reader{data: payload}
	tr, err := decodeTrace(r)
	if err != nil || r.pos != len(payload) {
		s.mu.Lock()
		s.stats.Hits--
		s.stats.Corrupt++
		s.mu.Unlock()
		return trace.Trace{}, false, nil
	}
	return tr, true, nil
}

// Save implements eval.PersistentStore for single traces. The write is
// asynchronous; use Flush to wait for it.
func (s *Store) Save(k eval.GoldenKey, tr trace.Trace) error {
	key := keyString(kindTrace, k)
	var payload bytes.Buffer
	encodeTrace(&payload, tr)
	return s.enqueue(writeReq{path: s.path(key), data: encodeObject(kindTrace, key, payload.Bytes())})
}

// LoadSet implements eval.PersistentStore for circuit trace sets.
func (s *Store) LoadSet(k eval.GoldenKey) (map[string]trace.Trace, bool, error) {
	payload, ok := s.load(kindSet, k)
	if !ok {
		return nil, false, nil
	}
	r := &reader{data: payload}
	n := int(r.u32())
	if r.failed || n < 0 || n > len(payload) {
		n = -1
	}
	out := make(map[string]trace.Trace, max(n, 0))
	for i := 0; i < n; i++ {
		name := string(r.bytes(int(r.u32())))
		tr, err := decodeTrace(r)
		if err != nil {
			n = -1
			break
		}
		out[name] = tr
	}
	if n < 0 || r.failed || r.pos != len(payload) {
		s.mu.Lock()
		s.stats.Hits--
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, false, nil
	}
	return out, true, nil
}

// SaveSet implements eval.PersistentStore for circuit trace sets. Nets
// are serialized in sorted-name order, so identical sets encode to
// identical bytes.
func (s *Store) SaveSet(k eval.GoldenKey, set map[string]trace.Trace) error {
	key := keyString(kindSet, k)
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	var payload bytes.Buffer
	putU32(&payload, uint32(len(names)))
	for _, name := range names {
		putU32(&payload, uint32(len(name)))
		payload.WriteString(name)
		encodeTrace(&payload, set[name])
	}
	return s.enqueue(writeReq{path: s.path(key), data: encodeObject(kindSet, key, payload.Bytes())})
}
