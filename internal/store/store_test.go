package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

func testKey(seed int64) eval.GoldenKey {
	cfg := gen.PaperConfigs()[0]
	return eval.GoldenKey{Gate: "nor2", Bench: nor.DefaultParams(), Config: cfg, Seed: seed}
}

func testTrace() trace.Trace {
	return trace.New(true, []trace.Event{
		{Time: 1.25e-10, Value: false},
		{Time: 3.5e-10, Value: true},
		{Time: 7.125e-10, Value: false},
	})
}

func testSet() map[string]trace.Trace {
	return map[string]trace.Trace{
		"out22": testTrace(),
		"out23": trace.New(false, []trace.Event{{Time: 2e-10, Value: true}}),
		"empty": trace.New(true, nil),
	}
}

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTripTrace(t *testing.T) {
	s := openTest(t)
	k := testKey(1)
	want := testTrace()
	if _, ok, err := s.Load(k); ok || err != nil {
		t.Fatalf("empty store: Load = %v, %v; want miss", ok, err)
	}
	if err := s.Save(k, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(k)
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v; want hit", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the trace: %+v != %+v", got, want)
	}
	// An empty trace (no events) round-trips too.
	empty := trace.New(false, nil)
	k2 := testKey(2)
	if err := s.Save(k2, empty); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	got, ok, _ = s.Load(k2)
	if !ok || got.Initial != false || len(got.Events) != 0 {
		t.Errorf("empty-trace round trip = %+v, ok=%v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 2 writes", st)
	}
}

func TestRoundTripSet(t *testing.T) {
	s := openTest(t)
	k := testKey(3)
	want := testSet()
	if _, ok, _ := s.LoadSet(k); ok {
		t.Fatal("empty store served a set")
	}
	if err := s.SaveSet(k, want); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	got, ok, err := s.LoadSet(k)
	if err != nil || !ok {
		t.Fatalf("LoadSet = %v, %v; want hit", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("set round trip changed the traces:\n got %+v\nwant %+v", got, want)
	}
}

// TestKindAndKeySeparation: a trace entry never answers a set lookup
// for the same key, and nearby keys (different seed, different gate, a
// one-ULP parameter change) address different entries.
func TestKindAndKeySeparation(t *testing.T) {
	s := openTest(t)
	k := testKey(1)
	if err := s.Save(k, testTrace()); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if _, ok, _ := s.LoadSet(k); ok {
		t.Error("set lookup served by a trace entry")
	}
	if _, ok, _ := s.Load(testKey(2)); ok {
		t.Error("seed 2 served by seed 1's entry")
	}
	kg := k
	kg.Gate = "nand2"
	if _, ok, _ := s.Load(kg); ok {
		t.Error("nand2 served by nor2's entry")
	}
	kp := k
	kp.Bench.CO = math.Nextafter(kp.Bench.CO, math.Inf(1))
	if _, ok, _ := s.Load(kp); ok {
		t.Error("one-ULP parameter change served by the old entry")
	}
}

func TestReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	want := testTrace()
	if err := s.Save(k, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Load(k)
	if err != nil || !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("reopened Load = %+v, %v, %v; want the saved trace", got, ok, err)
	}
}

// objectFiles lists the object paths currently in the store.
func objectFiles(t *testing.T, s *Store) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(filepath.Join(s.dir, "objects"), func(p string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			out = append(out, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorruptionIsASoftMiss: a flipped byte anywhere in an entry makes
// the load a counted miss (never a wrong trace), and a rewrite heals
// the entry.
func TestCorruptionIsASoftMiss(t *testing.T) {
	s := openTest(t)
	k := testKey(1)
	if err := s.Save(k, testTrace()); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	files := objectFiles(t, s)
	if len(files) != 1 {
		t.Fatalf("%d object files, want 1", len(files))
	}
	orig, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at a few positions spanning header, key, payload
	// and checksum.
	for _, pos := range []int{0, 5, 10, len(orig) / 2, len(orig) - 2} {
		bad := append([]byte(nil), orig...)
		bad[pos] ^= 0x40
		if err := os.WriteFile(files[0], bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Load(k); ok || err != nil {
			t.Errorf("corrupt byte %d: Load = %v, %v; want soft miss", pos, ok, err)
		}
	}
	// Truncations (torn writes) are rejected the same way.
	for _, n := range []int{1, 6, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(files[0], orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Load(k); ok || err != nil {
			t.Errorf("truncated to %d: Load = %v, %v; want soft miss", n, ok, err)
		}
	}
	if st := s.Stats(); st.Corrupt == 0 {
		t.Error("corrupt loads not counted")
	}
	// The cache's recompute-and-save heals the entry.
	if err := s.Save(k, testTrace()); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	got, ok, _ := s.Load(k)
	if !ok || !reflect.DeepEqual(got, testTrace()) {
		t.Error("rewrite did not heal the corrupt entry")
	}
}

func TestVersionMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("hdgs-v999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "incompatible format") {
		t.Errorf("Open on foreign version = %v, want incompatible-format error", err)
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := s.Save(testKey(1), testTrace()); err == nil {
		t.Error("Save after Close succeeded")
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush after Close succeeded")
	}
}

// TestSchemaDriftGuard pins the field counts of every struct the
// canonical key encoding spells out. Adding a field to any of them
// changes golden identity, so it MUST be added to keyString (and this
// count) — otherwise two benches differing only in the new field would
// share a store entry.
//
// This is the runtime backstop for hybridlint's keycomplete analyzer
// (internal/analysis, CI's lint-invariants job), which statically
// proves that every exported field of nor.Params /
// spice.TransientOptions / sparse.Options is referenced by each key
// builder. The two are deliberately redundant: the analyzer catches a
// field that never reaches keyString, this count catches drift in
// structs the analyzer has no rule for (MOSParams, Supply, GoldenKey,
// gen.Config) and any rename-and-readd the name-based check would miss.
func TestSchemaDriftGuard(t *testing.T) {
	for _, c := range []struct {
		name string
		v    interface{}
		want int
	}{
		{"eval.GoldenKey", eval.GoldenKey{}, 4},
		{"nor.Params", nor.Params{}, 13},
		{"waveform.Supply", waveform.Supply{}, 2},
		{"spice.MOSParams", spice.MOSParams{}, 8},
		{"gen.Config", gen.Config{}, 7},
	} {
		if got := reflect.TypeOf(c.v).NumField(); got != c.want {
			t.Errorf("%s has %d fields, keyString encodes %d — extend the canonical key encoding "+
				"(and bump the store version if the new field changes golden identity)",
				c.name, got, c.want)
		}
	}
}

// failingSource panics when asked to compute: it stands in for the
// analog solver in tests that assert a warm store serves everything.
type failingSource struct{ t *testing.T }

func (f failingSource) compute() (trace.Trace, error) {
	f.t.Fatal("golden recomputed despite a warm store")
	return trace.Trace{}, fmt.Errorf("unreachable")
}

// TestWarmStoreServesFreshCache: the acceptance property of the
// persistent tier — a process restart (modelled by a brand-new
// GoldenCache over the same store) performs zero golden computations
// for keys the previous run persisted.
func TestWarmStoreServesFreshCache(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(42)
	want := testTrace()
	wantSet := testSet()

	cold := eval.NewGoldenCache()
	cold.SetStore(st)
	got, err := cold.GetOrCompute(k, func() (trace.Trace, error) { return want, nil })
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("cold compute = %+v, %v", got, err)
	}
	ks := testKey(43)
	gotSet, _, err := cold.GetOrComputeSet(ks, func() (map[string]trace.Trace, error) { return wantSet, nil })
	if err != nil || !reflect.DeepEqual(gotSet, wantSet) {
		t.Fatalf("cold set compute = %+v, %v", gotSet, err)
	}
	if err := st.Close(); err != nil { // flush + simulate process exit
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := eval.NewGoldenCache()
	warm.SetStore(st2)
	fail := failingSource{t: t}
	got, err = warm.GetOrCompute(k, fail.compute)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("warm load = %+v, %v", got, err)
	}
	gotSet, _, err = warm.GetOrComputeSet(ks, func() (map[string]trace.Trace, error) {
		t.Fatal("set golden recomputed despite a warm store")
		return nil, nil
	})
	if err != nil || !reflect.DeepEqual(gotSet, wantSet) {
		t.Fatalf("warm set load = %+v, %v", gotSet, err)
	}
	cs := warm.Stats()
	if cs.DiskHits != 2 {
		t.Errorf("cache disk hits = %d, want 2", cs.DiskHits)
	}
	if cs.Hits != 0 {
		t.Errorf("cache memory hits = %d, want 0 on a fresh cache", cs.Hits)
	}
	// Second lookup in the same process is a memory hit, not a second
	// disk read.
	before := st2.Stats().Hits
	if _, err := warm.GetOrCompute(k, fail.compute); err != nil {
		t.Fatal(err)
	}
	if after := st2.Stats().Hits; after != before {
		t.Errorf("repeat lookup went to disk (%d -> %d store hits)", before, after)
	}
}

func BenchmarkStoreSave(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := testTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Save(testKey(int64(i)), tr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.Flush()
}

func BenchmarkStoreLoad(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	k := testKey(1)
	if err := s.Save(k, testTrace()); err != nil {
		b.Fatal(err)
	}
	s.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Load(k); !ok || err != nil {
			b.Fatal("miss")
		}
	}
}
