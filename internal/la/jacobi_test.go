package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, -1)
	m.Set(1, 1, -5)
	m.Set(2, 2, -3)
	e, err := JacobiEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), e.Lambda...)
	want := map[float64]bool{-1: false, -5: false, -3: false}
	for _, l := range got {
		for w := range want {
			if math.Abs(l-w) < 1e-12 {
				want[w] = true
			}
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("eigenvalue %g missing from %v", w, got)
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 5)
	if _, err := JacobiEigen(m, 0); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := JacobiEigen(NewMatrix(2, 3), 0); err == nil {
		t.Error("non-square matrix accepted")
	}
}

// TestJacobiReconstruction: S = V diag(L) V^T and V orthonormal, for
// random symmetric matrices up to 8x8.
func TestJacobiReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		s := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		e, err := JacobiEigen(s, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Orthonormality.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += e.V.At(i, a) * e.V.At(i, b)
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("trial %d: V not orthonormal (%d,%d): %g", trial, a, b, dot)
				}
			}
		}
		// Reconstruction.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rec := 0.0
				for k := 0; k < n; k++ {
					rec += e.V.At(i, k) * e.Lambda[k] * e.V.At(j, k)
				}
				if math.Abs(rec-s.At(i, j)) > 1e-8*(1+math.Abs(s.At(i, j))) {
					t.Fatalf("trial %d: reconstruction (%d,%d): %g vs %g", trial, i, j, rec, s.At(i, j))
				}
			}
		}
	}
}

// TestJacobiMatches2x2: agreement with the closed-form 2x2 eigensolver
// on symmetric inputs.
func TestJacobiMatches2x2(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		m2 := Mat2{a, b, b, c}
		e2, err := EigenDecompose2(m2)
		if err != nil {
			continue
		}
		m := NewMatrix(2, 2)
		m.Set(0, 0, a)
		m.Set(0, 1, b)
		m.Set(1, 0, b)
		m.Set(1, 1, c)
		ej, err := JacobiEigen(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		l1, l2 := ej.Lambda[0], ej.Lambda[1]
		if l1 < l2 {
			l1, l2 = l2, l1
		}
		if math.Abs(l1-e2.Lambda1) > 1e-10*(1+math.Abs(l1)) ||
			math.Abs(l2-e2.Lambda2) > 1e-10*(1+math.Abs(l2)) {
			t.Fatalf("trial %d: jacobi (%g, %g) vs closed form (%g, %g)",
				trial, l1, l2, e2.Lambda1, e2.Lambda2)
		}
	}
}
