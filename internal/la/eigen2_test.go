package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVec2Ops(t *testing.T) {
	v := Vec2{1, 2}
	w := Vec2{3, -1}
	if got := v.Add(w); got != (Vec2{4, 1}) {
		t.Errorf("Add = %+v", got)
	}
	if got := v.Sub(w); got != (Vec2{-2, 3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := v.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := v.Norm(); !almostEq(got, math.Sqrt(5), 1e-15) {
		t.Errorf("Norm = %g", got)
	}
}

func TestMat2Ops(t *testing.T) {
	m := Mat2{1, 2, 3, 4}
	n := Mat2{0, 1, 1, 0}
	if got := m.Mul(n); got != (Mat2{2, 1, 4, 3}) {
		t.Errorf("Mul = %+v", got)
	}
	if got := m.Det(); got != -2 {
		t.Errorf("Det = %g", got)
	}
	if got := m.Trace(); got != 5 {
		t.Errorf("Trace = %g", got)
	}
	if got := m.MulVec(Vec2{1, 1}); got != (Vec2{3, 7}) {
		t.Errorf("MulVec = %+v", got)
	}
	x, err := m.Solve(Vec2{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x.X, 1, 1e-12) || !almostEq(x.Y, 2, 1e-12) {
		t.Errorf("Solve = %+v, want (1, 2)", x)
	}
	if _, err := (Mat2{1, 2, 2, 4}).Solve(Vec2{1, 1}); err == nil {
		t.Error("expected singular error")
	}
}

func TestEigenDiagonal(t *testing.T) {
	m := Mat2{-2, 0, 0, -5}
	e, err := EigenDecompose2(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Lambda1, -2, 1e-14) || !almostEq(e.Lambda2, -5, 1e-14) {
		t.Errorf("eigenvalues (%g, %g), want (-2, -5)", e.Lambda1, e.Lambda2)
	}
}

func TestEigenComplexRejected(t *testing.T) {
	// Rotation matrix has complex eigenvalues.
	if _, err := EigenDecompose2(Mat2{0, -1, 1, 0}); err == nil {
		t.Error("expected complex-eigenvalue error")
	}
}

func TestEigenScaledIdentity(t *testing.T) {
	e, err := EigenDecompose2(Mat2{-3, 0, 0, -3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Defective {
		t.Error("scaled identity reported defective")
	}
	if !almostEq(e.Lambda1, -3, 1e-14) {
		t.Errorf("lambda = %g", e.Lambda1)
	}
}

func TestEigenDefective(t *testing.T) {
	// Jordan block [[-1, 1], [0, -1]].
	e, err := EigenDecompose2(Mat2{-1, 1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Defective {
		t.Error("Jordan block not reported defective")
	}
}

// TestEigenReconstruction: A v = lambda v for random matrices with real
// spectra (built as D + rank-one-ish perturbations keeping disc >= 0).
func TestEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		m := Mat2{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tr := m.Trace()
		if tr*tr-4*m.Det() < 1e-6 {
			continue // skip complex/near-defective
		}
		e, err := EigenDecompose2(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, pair := range []struct {
			l float64
			v Vec2
		}{{e.Lambda1, e.V1}, {e.Lambda2, e.V2}} {
			av := m.MulVec(pair.v)
			lv := pair.v.Scale(pair.l)
			if av.Sub(lv).Norm() > 1e-9*(1+pair.v.Norm()*(1+math.Abs(pair.l))) {
				t.Fatalf("trial %d: A*v != lambda*v (residual %g)", trial, av.Sub(lv).Norm())
			}
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d matrices checked; generator too restrictive", checked)
	}
}

// TestExpm2Properties: exp(A*0) = I and exp(A(s+t)) = exp(As) exp(At).
func TestExpm2Properties(t *testing.T) {
	f := func(a11, a12, a21, a22 float64) bool {
		m := Mat2{math.Mod(a11, 3), math.Mod(a12, 3), math.Mod(a21, 3), math.Mod(a22, 3)}
		tr := m.Trace()
		if tr*tr-4*m.Det() < 1e-3 {
			return true // skip complex spectra
		}
		i, err := Expm2(m, 0)
		if err != nil {
			return true
		}
		if !almostEq(i.A11, 1, 1e-10) || !almostEq(i.A22, 1, 1e-10) ||
			math.Abs(i.A12) > 1e-10 || math.Abs(i.A21) > 1e-10 {
			return false
		}
		s, u := 0.3, 0.5
		es, err1 := Expm2(m, s)
		eu, err2 := Expm2(m, u)
		esu, err3 := Expm2(m, s+u)
		if err1 != nil || err2 != nil || err3 != nil {
			return true
		}
		prod := es.Mul(eu)
		return almostEq(prod.A11, esu.A11, 1e-8) && almostEq(prod.A12, esu.A12, 1e-8) &&
			almostEq(prod.A21, esu.A21, 1e-8) && almostEq(prod.A22, esu.A22, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExpm2Defective(t *testing.T) {
	m := Mat2{-1, 1, 0, -1} // Jordan block
	e, err := Expm2(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// exp(t*J) = e^{-t} [[1, t], [0, 1]] for t = 2.
	w := math.Exp(-2.0)
	if !almostEq(e.A11, w, 1e-12) || !almostEq(e.A12, 2*w, 1e-12) ||
		math.Abs(e.A21) > 1e-12 || !almostEq(e.A22, w, 1e-12) {
		t.Errorf("exp(J*2) = %+v", e)
	}
}
