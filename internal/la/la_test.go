package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("unexpected dims %dx%d", m.Rows, m.Cols)
	}
	m.Set(0, 1, 4)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 6 {
		t.Errorf("At(0,1) = %g, want 6", got)
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 6 {
		t.Error("Clone aliases the original data")
	}
	m.Zero()
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero left entry %d = %g", i, v)
		}
	}
	if s := c.String(); s == "" {
		t.Error("String returned empty")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Error("expected error for non-square factorization")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 1}, {1, 3, 2}, {1, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	// det = 2*(3*2-2*1) - 0 + 1*(1*1-3*1) = 8 - 2 = 6.
	if got := f.Det(); math.Abs(got-6) > 1e-12 {
		t.Errorf("det = %g, want 6", got)
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant => well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MatVec(a, want)
		got, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveIntoValidatesLengths(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SolveInto(make([]float64, 3), make([]float64, 2)); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := f.Solve(make([]float64, 1)); err == nil {
		t.Error("expected rhs-length error")
	}
}

func TestMatVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatVec(NewMatrix(2, 2), []float64{1})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %g, want 0", got)
	}
}

// TestLUPermutationProperty: solving with a permuted identity recovers
// the permutation.
func TestLUPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		perm := rng.Perm(n)
		a := NewMatrix(n, n)
		for i, p := range perm {
			a.Set(i, p, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		// a*x = b  =>  x[perm[i]] = b[i].
		for i, p := range perm {
			if math.Abs(x[p]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
