package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("unexpected dims %dx%d", m.Rows, m.Cols)
	}
	m.Set(0, 1, 4)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 6 {
		t.Errorf("At(0,1) = %g, want 6", got)
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 6 {
		t.Error("Clone aliases the original data")
	}
	m.Zero()
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero left entry %d = %g", i, v)
		}
	}
	if s := c.String(); s == "" {
		t.Error("String returned empty")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Error("expected error for non-square factorization")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 1}, {1, 3, 2}, {1, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	// det = 2*(3*2-2*1) - 0 + 1*(1*1-3*1) = 8 - 2 = 6.
	if got := f.Det(); math.Abs(got-6) > 1e-12 {
		t.Errorf("det = %g, want 6", got)
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant => well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MatVec(a, want)
		got, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFactorIntoReuseBitIdentical: one LU workspace re-factored across
// many random systems of varying size holds exactly the factors, pivots
// and solutions a fresh Factor produces — reuse changes allocation,
// never arithmetic.
func TestFactorIntoReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var reused LU
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8) // grows and shrinks across trials
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := reused.FactorInto(a); err != nil {
			t.Fatalf("trial %d: FactorInto: %v", trial, err)
		}
		fresh, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: Factor: %v", trial, err)
		}
		if reused.n != fresh.n || reused.sign != fresh.sign {
			t.Fatalf("trial %d: n/sign = %d/%d, want %d/%d",
				trial, reused.n, reused.sign, fresh.n, fresh.sign)
		}
		for i := 0; i < n*n; i++ {
			if reused.lu[i] != fresh.lu[i] {
				t.Fatalf("trial %d: lu[%d] = %v, want %v", trial, i, reused.lu[i], fresh.lu[i])
			}
		}
		for i := 0; i < n; i++ {
			if reused.piv[i] != fresh.piv[i] {
				t.Fatalf("trial %d: piv[%d] = %d, want %d", trial, i, reused.piv[i], fresh.piv[i])
			}
		}
		gotX := make([]float64, n)
		if err := reused.SolveInto(gotX, b); err != nil {
			t.Fatalf("trial %d: SolveInto: %v", trial, err)
		}
		wantX, err := fresh.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		for i := range wantX {
			if gotX[i] != wantX[i] {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, gotX[i], wantX[i])
			}
		}
	}
}

// TestFactorSolveInPlaceBitIdentical: the zero-copy and fused
// factor+solve variants produce exactly the factors, pivots and
// solutions of the copying FactorInto + SolveInto path. Matrices mix
// dense and MNA-like sparse patterns (zeros below the diagonal force
// both row swaps and zero multipliers, the paths that could plausibly
// diverge).
func TestFactorSolveInPlaceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var ref, inPlace, fused LU
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		sparse := trial%2 == 1
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sparse && i != j && rng.Float64() < 0.5 {
					continue // leave zero
				}
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := ref.FactorInto(a); err != nil {
			t.Fatalf("trial %d: FactorInto: %v", trial, err)
		}
		wantX := make([]float64, n)
		if err := ref.SolveInto(wantX, b); err != nil {
			t.Fatalf("trial %d: SolveInto: %v", trial, err)
		}

		m1 := a.Clone()
		if err := inPlace.FactorInPlace(m1); err != nil {
			t.Fatalf("trial %d: FactorInPlace: %v", trial, err)
		}
		m2 := a.Clone()
		gotX := make([]float64, n)
		if err := fused.FactorSolveInPlace(m2, gotX, b); err != nil {
			t.Fatalf("trial %d: FactorSolveInPlace: %v", trial, err)
		}

		for _, f := range []*LU{&inPlace, &fused} {
			if f.n != ref.n || f.sign != ref.sign {
				t.Fatalf("trial %d: n/sign = %d/%d, want %d/%d", trial, f.n, f.sign, ref.n, ref.sign)
			}
			for i := 0; i < n*n; i++ {
				if f.lu[i] != ref.lu[i] {
					t.Fatalf("trial %d: lu[%d] = %v, want %v", trial, i, f.lu[i], ref.lu[i])
				}
			}
			for i := 0; i < n; i++ {
				if f.piv[i] != ref.piv[i] {
					t.Fatalf("trial %d: piv[%d] = %d, want %d", trial, i, f.piv[i], ref.piv[i])
				}
			}
		}
		x1 := make([]float64, n)
		if err := inPlace.SolveInto(x1, b); err != nil {
			t.Fatalf("trial %d: SolveInto after FactorInPlace: %v", trial, err)
		}
		for i := range wantX {
			if x1[i] != wantX[i] {
				t.Fatalf("trial %d: in-place x[%d] = %v, want %v", trial, i, x1[i], wantX[i])
			}
			if gotX[i] != wantX[i] {
				t.Fatalf("trial %d: fused x[%d] = %v, want %v", trial, i, gotX[i], wantX[i])
			}
		}
	}
}

// TestFactorSolveInPlaceSingular: the fused path reports singularity
// and invalidates the workspace like the two-step path does.
func TestFactorSolveInPlaceSingular(t *testing.T) {
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, 1)
	bad.Set(0, 1, 2)
	bad.Set(1, 0, 2)
	bad.Set(1, 1, 4)
	var f LU
	x := make([]float64, 2)
	if err := f.FactorSolveInPlace(bad, x, []float64{1, 2}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("Solve succeeded on an invalidated factorization")
	}
	if err := f.FactorSolveInPlace(NewMatrix(2, 3), x, []float64{1, 2}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if err := f.FactorSolveInPlace(NewMatrix(2, 2), x[:1], []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched x length")
	}
}

// TestFactorIntoSingularInvalidates: a failed re-factorization leaves
// the workspace unusable rather than silently serving stale factors.
func TestFactorIntoSingularInvalidates(t *testing.T) {
	good := NewMatrix(2, 2)
	good.Set(0, 0, 2)
	good.Set(1, 1, 3)
	var f LU
	if err := f.FactorInto(good); err != nil {
		t.Fatal(err)
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, 1)
	bad.Set(0, 1, 2)
	bad.Set(1, 0, 2)
	bad.Set(1, 1, 4)
	if err := f.FactorInto(bad); err == nil {
		t.Fatal("expected singular-matrix error")
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("Solve succeeded on an invalidated factorization")
	}
	if err := f.FactorInto(good); err != nil {
		t.Fatalf("re-factor after failure: %v", err)
	}
	x, err := f.Solve([]float64{2, 3})
	if err != nil || x[0] != 1 || x[1] != 1 {
		t.Errorf("recovered solve = %v, %v; want [1 1]", x, err)
	}
	if err := f.FactorInto(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square FactorInto")
	}
}

func TestSolveIntoValidatesLengths(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SolveInto(make([]float64, 3), make([]float64, 2)); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := f.Solve(make([]float64, 1)); err == nil {
		t.Error("expected rhs-length error")
	}
}

func TestMatVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatVec(NewMatrix(2, 2), []float64{1})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %g, want 0", got)
	}
}

// TestLUPermutationProperty: solving with a permuted identity recovers
// the permutation.
func TestLUPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		perm := rng.Perm(n)
		a := NewMatrix(n, n)
		for i, p := range perm {
			a.Set(i, p, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		// a*x = b  =>  x[perm[i]] = b[i].
		for i, p := range perm {
			if math.Abs(x[p]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLUOneByOne pins the degenerate n=1 system on every dense entry
// point: factor-then-solve, the fused in-place path, and the exactly
// singular 1x1 zero matrix.
func TestLUOneByOne(t *testing.T) {
	a := NewMatrix(1, 1)
	a.Set(0, 0, 4)
	x, err := SolveDense(a, []float64{12})
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if x[0] != 3 {
		t.Fatalf("SolveDense x = %g, want 3", x[0])
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if d := f.Det(); d != 4 {
		t.Fatalf("Det = %g, want 4", d)
	}
	var lu LU
	y := make([]float64, 1)
	if err := lu.FactorSolveInPlace(a.Clone(), y, []float64{12}); err != nil {
		t.Fatalf("FactorSolveInPlace: %v", err)
	}
	if y[0] != 3 {
		t.Fatalf("FactorSolveInPlace x = %g, want 3", y[0])
	}
	z := NewMatrix(1, 1)
	if _, err := Factor(z); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor(zero 1x1) error = %v, want ErrSingular", err)
	}
	if err := lu.FactorSolveInPlace(z, y, []float64{1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("FactorSolveInPlace(zero 1x1) error = %v, want ErrSingular", err)
	}
}
