package la

import (
	"fmt"
	"math"
)

// Mat2 is a 2x2 matrix, used by the hybrid model's mode systems.
type Mat2 struct {
	A11, A12 float64
	A21, A22 float64
}

// Vec2 is a 2-vector (V_N, V_O) in the hybrid model.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Norm returns the Euclidean norm of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// MulVec computes m*v.
func (m Mat2) MulVec(v Vec2) Vec2 {
	return Vec2{m.A11*v.X + m.A12*v.Y, m.A21*v.X + m.A22*v.Y}
}

// Mul computes m*n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		m.A11*n.A11 + m.A12*n.A21, m.A11*n.A12 + m.A12*n.A22,
		m.A21*n.A11 + m.A22*n.A21, m.A21*n.A12 + m.A22*n.A22,
	}
}

// Scale returns s*m.
func (m Mat2) Scale(s float64) Mat2 {
	return Mat2{s * m.A11, s * m.A12, s * m.A21, s * m.A22}
}

// AddMat returns m + n.
func (m Mat2) AddMat(n Mat2) Mat2 {
	return Mat2{m.A11 + n.A11, m.A12 + n.A12, m.A21 + n.A21, m.A22 + n.A22}
}

// Det returns the determinant.
func (m Mat2) Det() float64 { return m.A11*m.A22 - m.A12*m.A21 }

// Trace returns the trace.
func (m Mat2) Trace() float64 { return m.A11 + m.A22 }

// Solve solves m*x = b for a nonsingular 2x2 system.
func (m Mat2) Solve(b Vec2) (Vec2, error) {
	d := m.Det()
	if d == 0 {
		return Vec2{}, ErrSingular
	}
	return Vec2{
		(b.X*m.A22 - b.Y*m.A12) / d,
		(m.A11*b.Y - m.A21*b.X) / d,
	}, nil
}

// Eigen2 is the eigen-decomposition of a 2x2 matrix with real eigenvalues.
// The RC mode matrices of the hybrid model always have real eigenvalues
// (they are similar to symmetric matrices via a positive diagonal scaling),
// so complex pairs are reported as an error rather than handled.
type Eigen2 struct {
	// Lambda1, Lambda2 are the eigenvalues, sorted so Lambda1 >= Lambda2
	// (for stable RC systems both are <= 0 and Lambda1 is the slow pole).
	Lambda1, Lambda2 float64
	// V1, V2 are the corresponding eigenvectors (not normalized).
	V1, V2 Vec2
	// Defective reports a repeated eigenvalue without two independent
	// eigenvectors; callers must use the Jordan-form propagator.
	Defective bool
}

// eigenTol is the relative tolerance used to decide whether the
// discriminant of the characteristic polynomial is zero.
const eigenTol = 1e-12

// EigenDecompose2 computes the real eigen-decomposition of m.
// It returns an error if the eigenvalues are complex, which cannot happen
// for the passive RC circuits in this repository.
func EigenDecompose2(m Mat2) (Eigen2, error) {
	tr := m.Trace()
	det := m.Det()
	disc := tr*tr - 4*det
	scale := tr*tr + math.Abs(4*det)
	if disc < 0 {
		if -disc <= eigenTol*scale {
			disc = 0 // numerically repeated eigenvalue
		} else {
			return Eigen2{}, fmt.Errorf("la: complex eigenvalues (tr=%g det=%g disc=%g)", tr, det, disc)
		}
	}
	s := math.Sqrt(disc)
	l1 := (tr + s) / 2
	l2 := (tr - s) / 2
	e := Eigen2{Lambda1: l1, Lambda2: l2}
	if s <= eigenTol*math.Max(math.Abs(l1), 1) {
		// Repeated eigenvalue. If the matrix is already lambda*I it has a
		// full eigenspace; otherwise it is defective.
		offdiag := math.Abs(m.A12) + math.Abs(m.A21) + math.Abs(m.A11-m.A22)
		if offdiag <= eigenTol*(math.Abs(m.A11)+math.Abs(m.A22)+1) {
			e.V1 = Vec2{1, 0}
			e.V2 = Vec2{0, 1}
			return e, nil
		}
		e.Defective = true
		e.V1 = eigenvector(m, l1)
		return e, nil
	}
	e.V1 = eigenvector(m, l1)
	e.V2 = eigenvector(m, l2)
	return e, nil
}

// eigenvector returns a nonzero vector v with (m - lambda*I)v = 0.
func eigenvector(m Mat2, lambda float64) Vec2 {
	// Rows of (m - lambda I) are both orthogonal complements of the
	// eigenvector; pick the numerically larger one.
	r1 := Vec2{m.A11 - lambda, m.A12}
	r2 := Vec2{m.A21, m.A22 - lambda}
	var r Vec2
	if r1.Norm() >= r2.Norm() {
		r = r1
	} else {
		r = r2
	}
	if r.Norm() == 0 {
		return Vec2{1, 0} // m == lambda*I; any vector works
	}
	// v orthogonal to r: (-r.Y, r.X).
	return Vec2{-r.Y, r.X}
}

// Expm2 returns exp(m*t) computed from the eigen-decomposition, handling
// the defective (Jordan block) case. This is the propagator of the
// homogeneous system V' = m V.
func Expm2(m Mat2, t float64) (Mat2, error) {
	e, err := EigenDecompose2(m)
	if err != nil {
		return Mat2{}, err
	}
	if e.Defective {
		// exp(m t) = e^{lambda t} (I + (m - lambda I) t).
		l := e.Lambda1
		n := m.AddMat(Mat2{-l, 0, 0, -l}) // nilpotent part
		elt := math.Exp(l * t)
		return Mat2{1 + n.A11*t, n.A12 * t, n.A21 * t, 1 + n.A22*t}.Scale(elt), nil
	}
	// exp(m t) = P diag(e^{l1 t}, e^{l2 t}) P^{-1}.
	p := Mat2{e.V1.X, e.V2.X, e.V1.Y, e.V2.Y}
	d := p.Det()
	if d == 0 {
		return Mat2{}, ErrSingular
	}
	pinv := Mat2{p.A22 / d, -p.A12 / d, -p.A21 / d, p.A11 / d}
	el1 := math.Exp(e.Lambda1 * t)
	el2 := math.Exp(e.Lambda2 * t)
	mid := Mat2{el1, 0, 0, el2}
	return p.Mul(mid).Mul(pinv), nil
}
