package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hybriddelay/internal/la"
)

// checkBitIdentical runs the blocked FactorSolve and the scalar
// reference on separate clones of a and asserts the contract: the same
// error (if any), and on success bit-identical solutions, LU values
// and hoisted reciprocals.
func checkBitIdentical(t *testing.T, sym *Symbolic, a *la.Matrix, b []float64) {
	t.Helper()
	n := a.Rows
	wb := a.Clone()
	ws := a.Clone()
	xb := make([]float64, n)
	xs := make([]float64, n)
	nb := sym.NewNumeric()
	ns := sym.NewNumeric()
	errB := nb.FactorSolve(wb, xb, b)
	errS := ns.factorSolveScalar(ws, xs, b)
	if !errors.Is(errB, errS) && !errors.Is(errS, errB) {
		t.Fatalf("error mismatch: blocked %v, scalar %v", errB, errS)
	}
	if errB != nil {
		return // partial clobber on failure is allowed to differ
	}
	for i := range xb {
		if math.Float64bits(xb[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("x[%d]: blocked %x (%g), scalar %x (%g)",
				i, math.Float64bits(xb[i]), xb[i], math.Float64bits(xs[i]), xs[i])
		}
	}
	for _, off := range sym.Touched() {
		if math.Float64bits(wb.Data[off]) != math.Float64bits(ws.Data[off]) {
			t.Fatalf("LU[%d]: blocked %g, scalar %g", off, wb.Data[off], ws.Data[off])
		}
	}
	for k := 0; k < n; k++ {
		if math.Float64bits(nb.recip[k]) != math.Float64bits(ns.recip[k]) {
			t.Fatalf("recip[%d]: blocked %g, scalar %g", k, nb.recip[k], ns.recip[k])
		}
	}
}

// TestBlockedMatchesScalarMNA: the blocked kernel is bit-identical to
// the scalar schedule on MNA-shaped systems (banded node blocks plus
// zero-diagonal source branch rows), across repeated refactors with
// drifting values — the exact workload of the Newton inner loop.
func TestBlockedMatchesScalarMNA(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 96} {
		a, pattern := mnaLike(n)
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("n=%d: Analyze: %v", n, err)
		}
		rng := rand.New(rand.NewSource(int64(n) * 7))
		b := make([]float64, n)
		for rep := 0; rep < 8; rep++ {
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			checkBitIdentical(t, sym, a, b)
			// Drift the values (pattern fixed) as Newton iterations do.
			for _, off := range pattern {
				a.Data[off] *= 1 + 0.2*rng.Float64()
			}
		}
	}
}

// TestBlockedMatchesDense cross-checks the blocked kernel against the
// dense partial-pivot reference within tolerance (the blocked-vs-scalar
// tests pin exact bits; this pins overall correctness).
func TestBlockedMatchesDense(t *testing.T) {
	for _, n := range []int{8, 32, 96} {
		a, pattern := mnaLike(n)
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("n=%d: Analyze: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%5) - 2
		}
		var lu la.LU
		want := make([]float64, n)
		if err := lu.FactorSolveInPlace(a.Clone(), want, b); err != nil {
			t.Fatalf("dense reference: %v", err)
		}
		x := make([]float64, n)
		if err := sym.NewNumeric().FactorSolve(a.Clone(), x, b); err != nil {
			t.Fatalf("FactorSolve: %v", err)
		}
		for i := range x {
			if d := math.Abs(x[i] - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: x[%d] = %g, dense %g", n, i, x[i], want[i])
			}
		}
	}
}

// TestSupernodesDetectedDense: a fully dense matrix has identical
// sub-patterns everywhere, so the whole elimination collapses into
// width-capped supernodes.
func TestSupernodesDetectedDense(t *testing.T) {
	n := 40
	a := la.NewMatrix(n, n)
	pattern := make([]int32, 0, n*n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.NormFloat64()
			if i == j {
				v = float64(n) + rng.Float64() // dominant diagonal
			}
			a.Set(i, j, v)
			pattern = append(pattern, int32(i*n+j))
		}
	}
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if sym.MaxSupernodeWidth() != maxSupernodeWidth {
		t.Fatalf("MaxSupernodeWidth = %d, want the cap %d", sym.MaxSupernodeWidth(), maxSupernodeWidth)
	}
	if sym.Supernodes() != 2 { // 40 steps split as 32 + 8
		t.Fatalf("Supernodes = %d, want 2", sym.Supernodes())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	checkBitIdentical(t, sym, a, b)
}

// TestSupernodesOnGateChain: the MNA-shaped generator must yield at
// least some merged columns — the structural motivation for the
// blocked kernel — and the partition must tile the step range exactly.
func TestSupernodesOnGateChain(t *testing.T) {
	a, pattern := mnaLike(96)
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if sym.Supernodes() == 0 {
		t.Fatalf("no supernodes detected on the gate-chain pattern (fill=%d nnz=%d)", sym.Fill(), sym.NNZ())
	}
	// Partition sanity: contiguous, complete, within the width cap.
	if got := sym.snodePtr[0]; got != 0 {
		t.Fatalf("snodePtr[0] = %d", got)
	}
	if got := int(sym.snodePtr[len(sym.snodePtr)-1]); got != sym.N() {
		t.Fatalf("snodePtr end = %d, want %d", got, sym.N())
	}
	for i := 0; i+1 < len(sym.snodePtr); i++ {
		w := int(sym.snodePtr[i+1] - sym.snodePtr[i])
		if w < 1 || w > maxSupernodeWidth {
			t.Fatalf("supernode %d has width %d", i, w)
		}
	}
}

// TestBlockedErrPivotMatchesScalar: when refactor values drift so far
// that a scheduled pivot degrades, the blocked kernel must fail with
// ErrPivot exactly when the scalar schedule does.
func TestBlockedErrPivotMatchesScalar(t *testing.T) {
	n := 16
	a, pattern := mnaLike(n)
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Zero a diagonal entry the static order pivots on early: the
	// refactor hits a zero pivot and must guard, on both paths.
	drift := a.Clone()
	drift.Set(int(sym.rowOf[0]), int(sym.colOf[0]), 0)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	nu := sym.NewNumeric()
	if err := nu.FactorSolve(drift.Clone(), make([]float64, n), b); !errors.Is(err, ErrPivot) {
		t.Fatalf("blocked: got %v, want ErrPivot", err)
	}
	if err := nu.factorSolveScalar(drift.Clone(), make([]float64, n), b); !errors.Is(err, ErrPivot) {
		t.Fatalf("scalar: got %v, want ErrPivot", err)
	}
	checkBitIdentical(t, sym, drift, b)
}

// TestBlockedSignedZeroMultipliers: zero multipliers must be skipped,
// not applied — a -0.0 entry combined with a zero multiplier flips
// sign under `x - (-0)`; this pins the `l != 0` guard in phase B.
func TestBlockedSignedZeroMultipliers(t *testing.T) {
	for _, n := range []int{8, 24} {
		a, pattern := mnaLike(n)
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		// Zero out scattered sub-pivot entries so phase B sees l == 0,
		// and plant negative zeros in trailing positions.
		rng := rand.New(rand.NewSource(3))
		drift := a.Clone()
		for _, off := range pattern {
			switch rng.Intn(4) {
			case 0:
				drift.Data[off] = 0
			case 1:
				drift.Data[off] = math.Copysign(0, -1)
			}
		}
		// Keep the pivots themselves alive.
		for k := 0; k < n; k++ {
			off := int(sym.rowOf[k])*n + int(sym.colOf[k])
			if drift.Data[off] == 0 {
				drift.Data[off] = a.Data[off]
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		checkBitIdentical(t, sym, drift, b)
	}
}

// TestBlockedRandomPatterns: randomized structures through the fuzz
// generator, as a deterministic complement to FuzzSupernodeBlocked.
func TestBlockedRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		raw := make([]byte, 2+16*16+16)
		rng.Read(raw)
		a, pattern, b, ok := decodeSystem(raw)
		if !ok {
			continue
		}
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("trial %d: Analyze: %v", trial, err)
		}
		checkBitIdentical(t, sym, a, b)
	}
}

// FuzzSupernodeBlocked fuzzes the supernode detection and blocked
// kernel: for every generated structure the blocked refactor must be
// bit-for-bit identical to the scalar schedule, both on the pilot
// values and on a deterministic value drift of the same pattern.
func FuzzSupernodeBlocked(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{5,
		255, 1, 1, 1, 1,
		1, 255, 1, 1, 1,
		1, 1, 255, 1, 1,
		1, 1, 1, 255, 1,
		1, 1, 1, 1, 255,
		1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, pattern, b, ok := decodeSystem(data)
		if !ok {
			return
		}
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("Analyze failed on dominant system: %v", err)
		}
		check := func(m *la.Matrix) {
			t.Helper()
			n := m.Rows
			wb, ws := m.Clone(), m.Clone()
			xb, xs := make([]float64, n), make([]float64, n)
			nb, ns := sym.NewNumeric(), sym.NewNumeric()
			errB := nb.FactorSolve(wb, xb, b)
			errS := ns.factorSolveScalar(ws, xs, b)
			if (errB == nil) != (errS == nil) {
				t.Fatalf("error mismatch: blocked %v, scalar %v", errB, errS)
			}
			if errB != nil {
				return
			}
			for i := range xb {
				if math.Float64bits(xb[i]) != math.Float64bits(xs[i]) {
					t.Fatalf("x[%d]: blocked %g, scalar %g", i, xb[i], xs[i])
				}
			}
			for _, off := range sym.Touched() {
				if math.Float64bits(wb.Data[off]) != math.Float64bits(ws.Data[off]) {
					t.Fatalf("LU[%d]: blocked %g, scalar %g", off, wb.Data[off], ws.Data[off])
				}
			}
		}
		check(a)
		// Drift the values off the pilot (possibly creating zero
		// multipliers and degraded pivots) and refactor again.
		drift := a.Clone()
		for i, off := range pattern {
			switch i % 5 {
			case 0:
				drift.Data[off] = 0
			case 1:
				drift.Data[off] *= -1.5
			case 2:
				drift.Data[off] *= 1e-6
			}
		}
		check(drift)
	})
}
