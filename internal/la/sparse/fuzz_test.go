package sparse

import (
	"math"
	"testing"

	"hybriddelay/internal/la"
)

// decodeSystem builds a diagonally dominant system from raw fuzz
// bytes: one byte per cell decides structure and value, and the
// diagonal is reinforced by each row's off-diagonal mass so the
// admissibility and tolerance checks below are meaningful on every
// generated input.
func decodeSystem(data []byte) (*la.Matrix, []int32, []float64, bool) {
	if len(data) < 2 {
		return nil, nil, nil, false
	}
	n := 1 + int(data[0])%12
	data = data[1:]
	need := n*n + n
	if len(data) < need {
		return nil, nil, nil, false
	}
	a := la.NewMatrix(n, n)
	var pattern []int32
	for i := 0; i < n; i++ {
		rowMass := 0.0
		for j := 0; j < n; j++ {
			bb := data[i*n+j]
			if i != j && bb&1 == 0 {
				continue // structurally absent
			}
			v := float64(int8(bb)) / 16
			if i != j {
				a.Set(i, j, v)
				pattern = append(pattern, int32(i*n+j))
				rowMass += math.Abs(v)
			}
		}
		d := float64(int8(data[i*n+i])) / 16
		a.Set(i, i, d+math.Copysign(rowMass+1, d+0.5))
		pattern = append(pattern, int32(i*n+i))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(int8(data[n*n+i])) / 16
	}
	return a, pattern, b, true
}

// FuzzFactorSolve round-trips random sparsity patterns through the
// symbolic and numeric phases and cross-checks the solution against
// the dense partial-pivot reference within tolerance.
func FuzzFactorSolve(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 40, 200})
	f.Add([]byte{7,
		1, 0, 1, 0, 1, 0, 1,
		0, 3, 1, 0, 0, 0, 0,
		1, 1, 9, 1, 0, 0, 1,
		0, 0, 1, 200, 0, 1, 0,
		1, 0, 0, 0, 17, 0, 1,
		0, 0, 0, 1, 0, 33, 1,
		1, 0, 1, 0, 1, 1, 250,
		1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, pattern, b, ok := decodeSystem(data)
		if !ok {
			return
		}
		n := a.Rows
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			// Diagonal dominance should preclude singularity; an error
			// here means the generator and pilot disagree structurally.
			t.Fatalf("Analyze failed on dominant system: %v", err)
		}
		var lu la.LU
		want := make([]float64, n)
		if err := lu.FactorSolveInPlace(a.Clone(), want, b); err != nil {
			t.Fatalf("dense reference failed: %v", err)
		}
		x := make([]float64, n)
		if err := sym.NewNumeric().FactorSolve(a.Clone(), x, b); err != nil {
			t.Fatalf("FactorSolve failed: %v", err)
		}
		for i := range x {
			if d := math.Abs(x[i] - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("x[%d] = %g, dense %g (diff %g)", i, x[i], want[i], d)
			}
		}
	})
}
