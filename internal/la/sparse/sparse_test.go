package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hybriddelay/internal/la"
)

// randomSystem builds an n×n matrix with a random sparsity pattern and
// a dominant diagonal (guaranteeing nonsingularity), returning the
// matrix and its pattern as dense offsets.
func randomSystem(rng *rand.Rand, n int, density float64) (*la.Matrix, []int32) {
	a := la.NewMatrix(n, n)
	var pattern []int32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() < density {
				v := rng.NormFloat64()
				if i == j {
					v += float64(n) + 2 // diagonal dominance
				}
				a.Set(i, j, v)
				pattern = append(pattern, int32(i*n+j))
			}
		}
	}
	return a, pattern
}

// solveDense is the reference: masked copy of a solved by the dense
// partial-pivot kernel.
func solveDense(t *testing.T, a *la.Matrix, b []float64) []float64 {
	t.Helper()
	var lu la.LU
	x := make([]float64, len(b))
	if err := lu.FactorSolveInPlace(a.Clone(), x, b); err != nil {
		t.Fatalf("dense reference solve failed: %v", err)
	}
	return x
}

func TestFactorSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		density := 0.15 + 0.5*rng.Float64()
		a, pattern := randomSystem(rng, n, density)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d): Analyze: %v", trial, n, err)
		}
		want := solveDense(t, a, b)
		nu := sym.NewNumeric()
		x := make([]float64, n)
		work := a.Clone()
		if err := nu.FactorSolve(work, x, b); err != nil {
			t.Fatalf("trial %d (n=%d): FactorSolve: %v", trial, n, err)
		}
		for i := range x {
			if d := math.Abs(x[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d (n=%d): x[%d] = %g, dense %g (diff %g)",
					trial, n, i, x[i], want[i], d)
			}
		}
	}
}

// TestRefactorNewValues exercises the core use case: one Analyze, many
// numeric refactors with different values on the same pattern.
func TestRefactorNewValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	a, pattern := randomSystem(rng, n, 0.4)
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	nu := sym.NewNumeric()
	x := make([]float64, n)
	b := make([]float64, n)
	for round := 0; round < 50; round++ {
		// Perturb the values on the fixed pattern (keeping dominance).
		work := la.NewMatrix(n, n)
		for _, off := range pattern {
			i, j := int(off)/n, int(off)%n
			v := a.At(i, j) * (1 + 0.2*rng.NormFloat64())
			work.Set(i, j, v)
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := solveDense(t, work, b)
		if err := nu.FactorSolve(work, x, b); err != nil {
			t.Fatalf("round %d: FactorSolve: %v", round, err)
		}
		for i := range x {
			if d := math.Abs(x[i] - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("round %d: x[%d] = %g, dense %g", round, i, x[i], want[i])
			}
		}
	}
}

func TestN1System(t *testing.T) {
	a := la.NewMatrix(1, 1)
	a.Set(0, 0, 5)
	sym, err := Analyze(a, []int32{0}, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if sym.N() != 1 || sym.Fill() != 0 || sym.NNZ() != 1 {
		t.Fatalf("n=1 symbolic: N=%d Fill=%d NNZ=%d", sym.N(), sym.Fill(), sym.NNZ())
	}
	x := make([]float64, 1)
	if err := sym.NewNumeric().FactorSolve(a, x, []float64{10}); err != nil {
		t.Fatalf("FactorSolve: %v", err)
	}
	if x[0] != 2 {
		t.Fatalf("x = %g, want 2", x[0])
	}
}

func TestSingularMatrix(t *testing.T) {
	// Numerically singular: rank-1 full 2x2.
	a := la.NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := Analyze(a, []int32{0, 1, 2, 3}, Options{}); !errors.Is(err, la.ErrSingular) {
		t.Fatalf("rank-1 Analyze error = %v, want ErrSingular", err)
	}
	// Structurally singular: an empty column.
	b := la.NewMatrix(2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 0, 2)
	if _, err := Analyze(b, []int32{0, 2}, Options{}); !errors.Is(err, la.ErrSingular) {
		t.Fatalf("empty-column Analyze error = %v, want ErrSingular", err)
	}
}

// TestZeroDiagonalPivoting covers the MNA voltage-source shape: a
// branch row with a structurally zero diagonal, solvable only with
// off-diagonal pivoting.
func TestZeroDiagonalPivoting(t *testing.T) {
	a := la.NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	// (1,1) structurally absent.
	pattern := []int32{0, 1, 2}
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	b := []float64{5, 2}
	want := solveDense(t, a, b)
	x := make([]float64, 2)
	if err := sym.NewNumeric().FactorSolve(a.Clone(), x, b); err != nil {
		t.Fatalf("FactorSolve: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, dense %v", x, want)
		}
	}
}

// TestStaticPivotFallback drives the numeric refactor into the
// small-pivot guard: the pivot chosen for the representative values
// collapses in a later refactor while the rest of its row stays large.
func TestStaticPivotFallback(t *testing.T) {
	a := la.NewMatrix(2, 2)
	a.Set(0, 0, 1e3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	pattern := []int32{0, 1, 2, 3}
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	nu := sym.NewNumeric()
	x := make([]float64, 2)
	if err := nu.FactorSolve(a.Clone(), x, []float64{1, 1}); err != nil {
		t.Fatalf("representative FactorSolve: %v", err)
	}
	// Same pattern, degenerate values under the static order.
	bad := la.NewMatrix(2, 2)
	bad.Set(0, 0, 1e-12)
	bad.Set(0, 1, 1e3)
	bad.Set(1, 0, 1)
	bad.Set(1, 1, 1)
	err = nu.FactorSolve(bad, x, []float64{1, 1})
	if !errors.Is(err, ErrPivot) {
		t.Fatalf("degenerate FactorSolve error = %v, want ErrPivot", err)
	}
	// The dense partial-pivot path (the caller's fallback) handles the
	// same values fine.
	bad2 := la.NewMatrix(2, 2)
	bad2.Set(0, 0, 1e-12)
	bad2.Set(0, 1, 1e3)
	bad2.Set(1, 0, 1)
	bad2.Set(1, 1, 1)
	var lu la.LU
	if err := lu.FactorSolveInPlace(bad2, x, []float64{1, 1}); err != nil {
		t.Fatalf("dense fallback: %v", err)
	}
}

// TestOffPatternGarbageIgnored verifies both contracts that let the
// solver skip full zeroing: Analyze masks off-pattern values, and
// FactorSolve never reads them.
func TestOffPatternGarbageIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	a, pattern := randomSystem(rng, n, 0.3)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := solveDense(t, a, b)

	// Touched = pattern + fill must stay clean (fill slots hold zeros);
	// everything else may carry garbage.
	pre, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	dirty := a.Clone()
	onTouched := make([]bool, n*n)
	for _, off := range pre.Touched() {
		onTouched[off] = true
	}
	for off := range dirty.Data {
		if !onTouched[off] {
			dirty.Data[off] = rng.NormFloat64() * 1e6
		}
	}
	sym, err := Analyze(dirty, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze on dirty matrix: %v", err)
	}
	x := make([]float64, n)
	if err := sym.NewNumeric().FactorSolve(dirty, x, b); err != nil {
		t.Fatalf("FactorSolve on dirty matrix: %v", err)
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dense %g", i, x[i], want[i])
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, pattern := randomSystem(rng, 9, 0.35)
	s1, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	s2, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for k := 0; k < s1.n; k++ {
		if s1.rowOf[k] != s2.rowOf[k] || s1.colOf[k] != s2.colOf[k] {
			t.Fatalf("pivot order differs at step %d: (%d,%d) vs (%d,%d)",
				k, s1.rowOf[k], s1.colOf[k], s2.rowOf[k], s2.colOf[k])
		}
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	if _, err := Analyze(&la.Matrix{Rows: 2, Cols: 3, Data: make([]float64, 6)}, nil, Options{}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	a := la.NewMatrix(2, 2)
	if _, err := Analyze(a, []int32{7}, Options{}); err == nil {
		t.Fatal("out-of-range pattern offset accepted")
	}
}

func TestFactorSolveRejectsSizeMismatch(t *testing.T) {
	a := la.NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	sym, err := Analyze(a, []int32{0, 3}, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	nu := sym.NewNumeric()
	if err := nu.FactorSolve(la.NewMatrix(3, 3), make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("size-mismatched matrix accepted")
	}
	if err := nu.FactorSolve(a, make([]float64, 1), make([]float64, 2)); err == nil {
		t.Fatal("short solution slice accepted")
	}
}

// TestFactorSolveNoAllocs is the contract behind the CI gate: the
// numeric refactor must not allocate.
func TestFactorSolveNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10
	a, pattern := randomSystem(rng, n, 0.3)
	sym, err := Analyze(a, pattern, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	nu := sym.NewNumeric()
	work := a.Clone()
	x := make([]float64, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		copy(work.Data, a.Data)
		if err := nu.FactorSolve(work, x, b); err != nil {
			t.Fatalf("FactorSolve: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FactorSolve allocates: %g allocs/run", allocs)
	}
}
