// Package sparse provides a structurally sparse LU factorization for
// the MNA systems of the analog simulator, split KLU-style into a
// one-time symbolic phase and a cheap, repeatable numeric phase.
//
// The circuit topology — and therefore the nonzero pattern of the
// stamped Jacobian — is fixed for the life of a bench, while its values
// change on every Newton iteration of every timestep. Analyze runs a
// pilot factorization once on a representative matrix: it chooses a
// static row/column pivot order by Markowitz cost (with a relative
// magnitude admissibility threshold, the classical fill-reducing
// heuristic), discovers every fill-in position that elimination will
// create, and flattens the whole elimination into precomputed offset
// schedules. FactorSolve then refactors any matrix with the same
// pattern by replaying that schedule: no pivot search, no pattern
// discovery, no divisions beyond one reciprocal per pivot, no
// allocations, and — because the schedule only visits structural
// positions — O(nnz)-proportional work instead of O(n³).
//
// Storage stays dense (la.Matrix row-major), which the stamping layer
// already produces; only the *work* is sparse. For the tiny-to-medium
// systems here (n ≲ a few hundred) that removes the indirection and
// scatter/gather costs of compressed-column storage while keeping the
// asymptotic win over dense elimination.
//
// Analyze additionally partitions the elimination order into
// supernodes — maximal runs of consecutive steps whose columns share
// one sub-pattern and whose pivot rows share one U structure, which
// the repeated gate-stage blocks of MNA matrices produce in abundance.
// The numeric phase eliminates each supernode with a blocked kernel
// (unrolled rank-k trailing updates, one pass per exterior row instead
// of one per step), bit-identical to the scalar schedule: same pivot
// order, same per-position accumulation order, same guard decisions.
//
// The static pivot order is chosen for the representative values seen
// at Analyze time. If the values later drift so far that a scheduled
// pivot loses all significance against its row (|pivot| below
// RefactorRel times the row maximum), FactorSolve returns ErrPivot
// rather than amplify roundoff; callers fall back to a dense
// partial-pivot solve and re-Analyze on fresher values.
package sparse

import (
	"errors"
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// ErrPivot reports that a statically scheduled pivot became too small
// relative to its row during a numeric refactor. The factorization is
// abandoned mid-sweep (the matrix is partially clobbered); the caller
// should re-stamp, solve densely with partial pivoting, and request a
// fresh Analyze before the next sparse refactor.
var ErrPivot = errors.New("sparse: static pivot below stability threshold")

// Options tunes the symbolic analysis and the numeric stability guard.
// The zero value selects the defaults documented on each field.
type Options struct {
	// PivotRel is the pilot's admissibility threshold: a candidate
	// pivot must have magnitude at least PivotRel times the largest
	// magnitude in its column (among active rows) to be eligible for
	// Markowitz selection. Larger values favour stability over fill
	// reduction. Default 0.1.
	PivotRel float64
	// RefactorRel is the numeric phase's small-pivot guard: a scheduled
	// pivot whose magnitude falls below RefactorRel times the largest
	// magnitude in its (updated) row triggers ErrPivot. Default 1e-10.
	RefactorRel float64
}

func (o *Options) defaults() {
	if o.PivotRel <= 0 {
		o.PivotRel = 0.1
	}
	if o.RefactorRel <= 0 {
		o.RefactorRel = 1e-10
	}
}

// Symbolic is the result of the one-time analysis of a sparsity
// pattern: the static pivot order, the fill-in positions elimination
// will create, and the flattened elimination schedule the numeric
// phase replays. A Symbolic is immutable after Analyze and safe for
// concurrent use; per-solve state lives in Numeric.
type Symbolic struct {
	n           int
	refactorRel float64

	// Pivot order: step k eliminates matrix row rowOf[k] and column
	// colOf[k]. Solving Ax=b, step k's unknown is x[colOf[k]] and its
	// equation is row rowOf[k].
	rowOf, colOf []int32

	// Lower schedule, CSR-flattened by pivot step: the steps (> k)
	// whose rows hold a structural entry in pivot column k and must be
	// updated during step k's elimination.
	lowPtr   []int32
	lowSteps []int32

	// Upper schedule, CSR-flattened by pivot step: the matrix columns
	// (> step k in elimination order) where pivot row rowOf[k] holds a
	// structural entry, i.e. the U structure of the row. upSteps holds
	// the owning pivot step of each column, for the substitution
	// passes.
	upPtr   []int32
	upCols  []int32
	upSteps []int32

	// touched lists every structural position (input pattern plus
	// fill-in) as dense row-major offsets; stamp lists the deduplicated
	// input pattern only. Callers rebuilding a matrix for refactoring
	// must guarantee zeros at touched positions not explicitly stamped
	// — copying a base matrix over the touched offsets does exactly
	// that, because fill positions are never stamped.
	touched []int32
	stamp   []int32

	// Supernode partition of the elimination order: supernode t covers
	// the consecutive steps [snodePtr[t], snodePtr[t+1]). Steps merge
	// when their columns share one sub-pattern below the supernode and
	// their pivot rows share one U structure beyond it — exactly the
	// shape the chained gate stages of MNA matrices produce — which
	// lets the numeric phase eliminate the whole run with dense-block
	// kernels instead of step-at-a-time scatter.
	snodePtr []int32
	snodes   int // supernodes of width >= 2
	maxWidth int // widest supernode (1 when nothing merges, 0 when n == 0)

	fill int
}

// N returns the system size.
func (s *Symbolic) N() int { return s.n }

// Fill returns the number of fill-in positions elimination creates
// beyond the stamped pattern.
func (s *Symbolic) Fill() int { return s.fill }

// NNZ returns the number of structural positions (pattern plus fill).
func (s *Symbolic) NNZ() int { return len(s.touched) }

// Touched returns the dense row-major offsets of every structural
// position (stamped pattern plus fill-in). The slice is owned by the
// Symbolic and must not be modified.
func (s *Symbolic) Touched() []int32 { return s.touched }

// Stamp returns the deduplicated dense offsets of the input pattern.
// The slice is owned by the Symbolic and must not be modified.
func (s *Symbolic) Stamp() []int32 { return s.stamp }

// Supernodes returns the number of multi-column supernodes (width >= 2)
// the analysis detected; the numeric phase eliminates each with the
// blocked kernel instead of the scalar schedule.
func (s *Symbolic) Supernodes() int { return s.snodes }

// MaxSupernodeWidth returns the width of the widest supernode: 1 when
// no columns merge, 0 for an empty system.
func (s *Symbolic) MaxSupernodeWidth() int { return s.maxWidth }

// maxSupernodeWidth caps how many columns one supernode may absorb:
// wide enough to swallow the repeated gate-stage blocks that occur in
// practice, small enough to bound the numeric phase's packed-multiplier
// scratch.
const maxSupernodeWidth = 32

// mergeable reports whether consecutive elimination steps k and k+1 can
// join one supernode: column k's sub-pattern must be column k+1's plus
// the pivot row of step k+1, and pivot row k's U structure must be
// pivot row k+1's plus the pivot column of step k+1. Chaining the
// pairwise test over a run [k0, k1) then guarantees, by induction, that
// every step k in the run has in-supernode targets exactly {k+1 ..
// k1-1}, exterior targets exactly lowSteps[k1-1], and shared U columns
// exactly upCols[k1-1] — the invariants the blocked kernel replays.
func (s *Symbolic) mergeable(k int) bool {
	lowK := s.lowSteps[s.lowPtr[k]:s.lowPtr[k+1]]
	lowK1 := s.lowSteps[s.lowPtr[k+1]:s.lowPtr[k+2]]
	if !minusOne(lowK, lowK1, int32(k+1)) {
		return false
	}
	upK := s.upCols[s.upPtr[k]:s.upPtr[k+1]]
	upK1 := s.upCols[s.upPtr[k+1]:s.upPtr[k+2]]
	return minusOne(upK, upK1, s.colOf[k+1])
}

// minusOne reports whether a is exactly b with the single element drop
// inserted somewhere, preserving the relative order of the common
// elements (both schedules list targets in ascending matrix order, so
// elementwise comparison suffices).
func minusOne(a, b []int32, drop int32) bool {
	if len(a) != len(b)+1 {
		return false
	}
	dropped := false
	j := 0
	for _, v := range a {
		if !dropped && v == drop {
			dropped = true
			continue
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return dropped
}

// Analyze runs the pilot factorization on a representative matrix a,
// restricted to the given sparsity pattern (dense row-major offsets
// into a.Data; duplicates allowed). Values of a outside the pattern
// are ignored, so a matrix carrying stale garbage off-pattern (e.g.
// after an aborted in-place factorization) analyzes correctly. a
// itself is not modified.
//
// The pilot performs a full Markowitz-ordered elimination on a masked
// copy: at each step it picks, among admissible entries (magnitude at
// least PivotRel of the column maximum), the pivot minimizing
// (r-1)(c-1) for r, c the active row/column counts — ties broken by
// larger magnitude, then lowest row and column index, so the order is
// deterministic. Returns la.ErrSingular if no admissible nonzero pivot
// exists at some step.
func Analyze(a *la.Matrix, pattern []int32, opt Options) (*Symbolic, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: cannot analyze non-square %dx%d matrix", a.Rows, a.Cols)
	}
	opt.defaults()
	n := a.Rows
	nn := n * n

	exists := make([]bool, nn)
	for _, off := range pattern {
		if off < 0 || int(off) >= nn {
			return nil, fmt.Errorf("sparse: pattern offset %d outside %dx%d matrix", off, n, n)
		}
		exists[off] = true
	}
	stamp := make([]int32, 0, len(pattern))
	vals := make([]float64, nn)
	for off := 0; off < nn; off++ {
		if exists[off] {
			stamp = append(stamp, int32(off))
			vals[off] = a.Data[off]
		}
	}

	activeRow := make([]bool, n)
	activeCol := make([]bool, n)
	rowCnt := make([]int, n)
	colCnt := make([]int, n)
	for i := 0; i < n; i++ {
		activeRow[i], activeCol[i] = true, true
	}
	for off, ok := range exists {
		if ok {
			rowCnt[off/n]++
			colCnt[off%n]++
		}
	}

	s := &Symbolic{
		n:           n,
		refactorRel: opt.RefactorRel,
		rowOf:       make([]int32, n),
		colOf:       make([]int32, n),
		lowPtr:      make([]int32, n+1),
		upPtr:       make([]int32, n+1),
		stamp:       stamp,
	}
	// Per-step schedules in matrix coordinates; converted to step
	// indices once the full pivot order is known.
	lowRows := make([][]int32, n)
	upCols := make([][]int32, n)
	colMax := make([]float64, n)

	for k := 0; k < n; k++ {
		// Column maxima over the active submatrix, for admissibility.
		for j := 0; j < n; j++ {
			colMax[j] = 0
		}
		for i := 0; i < n; i++ {
			if !activeRow[i] {
				continue
			}
			base := i * n
			for j := 0; j < n; j++ {
				if activeCol[j] && exists[base+j] {
					if v := math.Abs(vals[base+j]); v > colMax[j] {
						colMax[j] = v
					}
				}
			}
		}
		// Markowitz selection among admissible candidates.
		bestI, bestJ := -1, -1
		bestCost := 0
		bestMag := 0.0
		for i := 0; i < n; i++ {
			if !activeRow[i] {
				continue
			}
			base := i * n
			for j := 0; j < n; j++ {
				if !activeCol[j] || !exists[base+j] {
					continue
				}
				v := math.Abs(vals[base+j])
				if v == 0 || v < opt.PivotRel*colMax[j] {
					continue
				}
				cost := (rowCnt[i] - 1) * (colCnt[j] - 1)
				if bestI < 0 || cost < bestCost || (cost == bestCost && v > bestMag) {
					bestI, bestJ, bestCost, bestMag = i, j, cost, v
				}
			}
		}
		if bestI < 0 {
			return nil, fmt.Errorf("sparse: no admissible pivot at elimination step %d: %w", k, la.ErrSingular)
		}
		s.rowOf[k], s.colOf[k] = int32(bestI), int32(bestJ)
		activeRow[bestI], activeCol[bestJ] = false, false
		pbase := bestI * n
		// U structure of the pivot row: active columns it touches.
		for j := 0; j < n; j++ {
			if activeCol[j] && exists[pbase+j] {
				upCols[k] = append(upCols[k], int32(j))
			}
		}
		// Row/column counts shrink as the pivot row and column retire.
		for j := 0; j < n; j++ {
			if activeCol[j] && exists[pbase+j] {
				colCnt[j]--
			}
		}
		piv := vals[pbase+bestJ]
		for i := 0; i < n; i++ {
			if !activeRow[i] || !exists[i*n+bestJ] {
				continue
			}
			rowCnt[i]--
			lowRows[k] = append(lowRows[k], int32(i))
			// Numeric elimination of the pilot values, creating fill.
			l := vals[i*n+bestJ] / piv
			base := i * n
			for _, j32 := range upCols[k] {
				j := int(j32)
				if !exists[base+j] {
					exists[base+j] = true
					s.fill++
					rowCnt[i]++
					colCnt[j]++
				}
				vals[base+j] -= l * vals[pbase+j]
			}
		}
	}

	// Matrix coordinates -> elimination steps.
	stepOfRow := make([]int32, n)
	stepOfCol := make([]int32, n)
	for k := 0; k < n; k++ {
		stepOfRow[s.rowOf[k]] = int32(k)
		stepOfCol[s.colOf[k]] = int32(k)
	}
	nLow, nUp := 0, 0
	for k := 0; k < n; k++ {
		nLow += len(lowRows[k])
		nUp += len(upCols[k])
	}
	s.lowSteps = make([]int32, 0, nLow)
	s.upCols = make([]int32, 0, nUp)
	s.upSteps = make([]int32, 0, nUp)
	for k := 0; k < n; k++ {
		s.lowPtr[k] = int32(len(s.lowSteps))
		for _, r := range lowRows[k] {
			s.lowSteps = append(s.lowSteps, stepOfRow[r])
		}
		s.upPtr[k] = int32(len(s.upCols))
		for _, c := range upCols[k] {
			s.upCols = append(s.upCols, c)
			s.upSteps = append(s.upSteps, stepOfCol[c])
		}
	}
	s.lowPtr[n] = int32(len(s.lowSteps))
	s.upPtr[n] = int32(len(s.upCols))

	s.touched = make([]int32, 0, len(stamp)+s.fill)
	for off := 0; off < nn; off++ {
		if exists[off] {
			s.touched = append(s.touched, int32(off))
		}
	}

	// Supernode partition: greedy maximal runs of pairwise-mergeable
	// steps, width-capped. Runs of length one are singleton supernodes
	// and keep the scalar schedule.
	s.snodePtr = make([]int32, 1, n+1)
	for k := 0; k < n; {
		k1 := k + 1
		for k1 < n && k1-k < maxSupernodeWidth && s.mergeable(k1-1) {
			k1++
		}
		if w := k1 - k; w > s.maxWidth {
			s.maxWidth = w
		}
		if k1-k >= 2 {
			s.snodes++
		}
		s.snodePtr = append(s.snodePtr, int32(k1))
		k = k1
	}
	return s, nil
}

// Numeric holds the per-solver mutable state of the numeric phase: the
// hoisted pivot reciprocals, the permuted solution workspace, and the
// blocked kernel's packed-multiplier scratch. One Numeric serves one
// solver goroutine; create more with NewNumeric for concurrent use of
// the same Symbolic.
type Numeric struct {
	s     *Symbolic
	recip []float64
	xw    []float64
	// Blocked-kernel scratch: the packed nonzero multipliers of one
	// exterior row against one supernode, and their pivot-row bases.
	lv   []float64
	lrow []int
}

// NewNumeric returns a numeric-phase workspace bound to s.
func (s *Symbolic) NewNumeric() *Numeric {
	return &Numeric{
		s:     s,
		recip: make([]float64, s.n),
		xw:    make([]float64, s.n),
		lv:    make([]float64, s.maxWidth),
		lrow:  make([]int, s.maxWidth),
	}
}

// FactorSolve refactors a over the analyzed pattern and solves a·x = b
// in the same sweep, replaying the precomputed elimination schedule
// with the static pivot order. Supernodes eliminate through the blocked
// kernel, singleton steps through the scalar schedule; the two produce
// bit-identical factors, reciprocals and solutions (see stepBlocked for
// the argument). a is modified in place (its structural positions come
// to hold the LU factors); values outside the touched pattern are
// neither read nor written, so off-pattern garbage is harmless. b is
// not modified; x and b must have length n and may alias each other.
// The call performs no allocations.
//
// Each pivot is guarded: if its magnitude falls below RefactorRel
// times the largest magnitude in its updated row, FactorSolve returns
// ErrPivot with a partially clobbered — re-stamp, solve densely, and
// re-Analyze before retrying the sparse path. The failing step is the
// same one the scalar schedule would fail on, though the partial
// clobber left behind may differ.
//
// "Performs no allocations" is enforced statically by hybridlint's
// noalloc analyzer (this annotation) and dynamically by CI's "enforce
// zero-allocation sparse numeric refactor" gate on every size row of
// BenchmarkSparseFactorSolve's -benchmem allocs/op.
//
//hybrid:noalloc
func (nu *Numeric) FactorSolve(a *la.Matrix, x, b []float64) error {
	s := nu.s
	n := s.n
	if a.Rows != n || a.Cols != n {
		return fmt.Errorf("sparse: matrix %dx%d does not match analyzed size %d", a.Rows, a.Cols, n)
	}
	if len(x) != n || len(b) != n {
		return fmt.Errorf("sparse: slice lengths (%d, %d) do not match system size %d", len(x), len(b), n)
	}
	data := a.Data
	xw := nu.xw
	// Gather the RHS into elimination order.
	for k := 0; k < n; k++ {
		xw[k] = b[s.rowOf[k]]
	}
	for t := 0; t < len(s.snodePtr)-1; t++ {
		k0, k1 := int(s.snodePtr[t]), int(s.snodePtr[t+1])
		var err error
		if k1-k0 == 1 {
			err = nu.stepScalar(data, n, k0)
		} else {
			err = nu.stepBlocked(data, n, k0, k1)
		}
		if err != nil {
			return err
		}
	}
	nu.backSolve(data, x)
	return nil
}

// stepScalar replays one singleton elimination step: the scalar
// schedule the pre-supernodal refactor ran for every step, and the
// reference the blocked kernel must match bit-for-bit.
func (nu *Numeric) stepScalar(data []float64, n, k int) error {
	s := nu.s
	xw := nu.xw
	rowK := data[int(s.rowOf[k])*n : int(s.rowOf[k])*n+n]
	pc := int(s.colOf[k])
	up := s.upCols[s.upPtr[k]:s.upPtr[k+1]]
	piv := rowK[pc]
	// Stability guard against the row's current magnitudes.
	rmax := math.Abs(piv)
	for _, c := range up {
		if v := math.Abs(rowK[c]); v > rmax {
			rmax = v
		}
	}
	if piv == 0 || math.Abs(piv) < s.refactorRel*rmax {
		return ErrPivot
	}
	r := 1 / piv
	nu.recip[k] = r
	xk := xw[k]
	for _, si := range s.lowSteps[s.lowPtr[k]:s.lowPtr[k+1]] {
		rowI := data[int(s.rowOf[si])*n : int(s.rowOf[si])*n+n]
		l := rowI[pc] * r
		rowI[pc] = l
		if l != 0 {
			for _, c := range up {
				rowI[c] -= l * rowK[c]
			}
			xw[si] -= l * xk
		}
	}
	return nil
}

// stepBlocked eliminates the supernode covering steps [k0, k1) in two
// phases. Phase A factors the diagonal block: each step runs its exact
// scalar body restricted to the in-supernode target rows (by the
// supernode invariant those are precisely steps k+1 .. k1-1), so every
// guard value, reciprocal, pivot-row entry and permuted-RHS entry a
// later read consumes is bit-identical to the scalar sweep — exterior
// rows never write pivot rows, so deferring them cannot perturb this
// phase. Phase B then processes each exterior row once against the
// whole block: its multipliers are computed sequentially in step order
// (each after the in-block column updates of the previous steps,
// exactly as the scalar schedule interleaves them), zero multipliers
// are skipped just as the scalar `l != 0` test skips them (skipping is
// load-bearing for bit-identity: updating with a zero multiplier could
// still flip a signed zero or propagate a non-finite pivot-row value),
// and the surviving multipliers apply to the shared trailing columns
// as an unrolled rank-k update. Per memory position the update
// sequence is the scalar one — same multiplier values, same pivot-row
// values, same step order, same expression shape (so platforms that
// fuse multiply-subtract fuse both kernels identically) — only the
// interleaving across distinct positions changes, which floating-point
// cannot observe.
//
//hybrid:noalloc
func (nu *Numeric) stepBlocked(data []float64, n, k0, k1 int) error {
	s := nu.s
	xw := nu.xw
	// Phase A: diagonal block.
	for k := k0; k < k1; k++ {
		rowK := data[int(s.rowOf[k])*n : int(s.rowOf[k])*n+n]
		pc := int(s.colOf[k])
		up := s.upCols[s.upPtr[k]:s.upPtr[k+1]]
		piv := rowK[pc]
		rmax := math.Abs(piv)
		for _, c := range up {
			if v := math.Abs(rowK[c]); v > rmax {
				rmax = v
			}
		}
		if piv == 0 || math.Abs(piv) < s.refactorRel*rmax {
			return ErrPivot
		}
		r := 1 / piv
		nu.recip[k] = r
		xk := xw[k]
		for kk := k + 1; kk < k1; kk++ {
			rowI := data[int(s.rowOf[kk])*n : int(s.rowOf[kk])*n+n]
			l := rowI[pc] * r
			rowI[pc] = l
			if l != 0 {
				for _, c := range up {
					rowI[c] -= l * rowK[c]
				}
				xw[kk] -= l * xk
			}
		}
	}
	// Phase B: exterior rows. The supernode invariant makes the last
	// step's schedules the shared ones: its lower targets are exactly
	// the rows below the supernode, its U columns exactly the trailing
	// columns every step in the block updates beyond the block itself.
	ext := s.lowSteps[s.lowPtr[k1-1]:s.lowPtr[k1]]
	shared := s.upCols[s.upPtr[k1-1]:s.upPtr[k1]]
	lv, lrow := nu.lv, nu.lrow
	for _, si := range ext {
		rowI := data[int(s.rowOf[si])*n : int(s.rowOf[si])*n+n]
		na := 0
		for j := k0; j < k1; j++ {
			base := int(s.rowOf[j]) * n
			rowJ := data[base : base+n]
			pc := int(s.colOf[j])
			l := rowI[pc] * nu.recip[j]
			rowI[pc] = l
			if l != 0 {
				for jj := j + 1; jj < k1; jj++ {
					c := int(s.colOf[jj])
					rowI[c] -= l * rowJ[c]
				}
				xw[si] -= l * xw[j]
				lv[na] = l
				lrow[na] = base
				na++
			}
		}
		// Fused trailing update over the shared columns, unrolled in
		// chunks of four. Chunks apply in packing (= step) order, so
		// each position still sees its multipliers in the scalar
		// sequence.
		a := 0
		for ; a+4 <= na; a += 4 {
			l0, l1, l2, l3 := lv[a], lv[a+1], lv[a+2], lv[a+3]
			r0 := data[lrow[a] : lrow[a]+n]
			r1 := data[lrow[a+1] : lrow[a+1]+n]
			r2 := data[lrow[a+2] : lrow[a+2]+n]
			r3 := data[lrow[a+3] : lrow[a+3]+n]
			for _, c := range shared {
				v := rowI[c]
				v -= l0 * r0[c]
				v -= l1 * r1[c]
				v -= l2 * r2[c]
				v -= l3 * r3[c]
				rowI[c] = v
			}
		}
		switch na - a {
		case 3:
			l0, l1, l2 := lv[a], lv[a+1], lv[a+2]
			r0 := data[lrow[a] : lrow[a]+n]
			r1 := data[lrow[a+1] : lrow[a+1]+n]
			r2 := data[lrow[a+2] : lrow[a+2]+n]
			for _, c := range shared {
				v := rowI[c]
				v -= l0 * r0[c]
				v -= l1 * r1[c]
				v -= l2 * r2[c]
				rowI[c] = v
			}
		case 2:
			l0, l1 := lv[a], lv[a+1]
			r0 := data[lrow[a] : lrow[a]+n]
			r1 := data[lrow[a+1] : lrow[a+1]+n]
			for _, c := range shared {
				v := rowI[c]
				v -= l0 * r0[c]
				v -= l1 * r1[c]
				rowI[c] = v
			}
		case 1:
			l0 := lv[a]
			r0 := data[lrow[a] : lrow[a]+n]
			for _, c := range shared {
				rowI[c] -= l0 * r0[c]
			}
		}
	}
	return nil
}

// backSolve runs the back substitution over the U schedule (divisions
// hoisted into the stored reciprocals) and scatters the solution to
// natural unknown order.
func (nu *Numeric) backSolve(data []float64, x []float64) {
	s := nu.s
	n := s.n
	xw := nu.xw
	recip := nu.recip
	for k := n - 1; k >= 0; k-- {
		rowK := data[int(s.rowOf[k])*n : int(s.rowOf[k])*n+n]
		up := s.upCols[s.upPtr[k]:s.upPtr[k+1]]
		us := s.upSteps[s.upPtr[k]:s.upPtr[k+1]]
		sum := xw[k]
		for t, c := range up {
			sum -= rowK[c] * xw[us[t]]
		}
		xw[k] = sum * recip[k]
	}
	for k := 0; k < n; k++ {
		x[s.colOf[k]] = xw[k]
	}
}

// factorSolveScalar is the pre-supernodal refactor, kept verbatim as
// the bit-identity reference: FactorSolve must produce exactly the
// same LU values, reciprocals and solution, and fail on exactly the
// same step. Exercised by the property tests and the supernode fuzz
// target only.
func (nu *Numeric) factorSolveScalar(a *la.Matrix, x, b []float64) error {
	s := nu.s
	n := s.n
	if a.Rows != n || a.Cols != n {
		return fmt.Errorf("sparse: matrix %dx%d does not match analyzed size %d", a.Rows, a.Cols, n)
	}
	if len(x) != n || len(b) != n {
		return fmt.Errorf("sparse: slice lengths (%d, %d) do not match system size %d", len(x), len(b), n)
	}
	data := a.Data
	xw := nu.xw
	for k := 0; k < n; k++ {
		xw[k] = b[s.rowOf[k]]
	}
	for k := 0; k < n; k++ {
		if err := nu.stepScalar(data, n, k); err != nil {
			return err
		}
	}
	nu.backSolve(data, x)
	return nil
}
