package sparse

import (
	"sync"
	"testing"

	"hybriddelay/internal/la"
)

// TestSymbolicCacheSingleflight: many concurrent goroutines requesting
// a handful of distinct keys run exactly one Analyze per key (the miss
// counter counts analyses) and all share the same *Symbolic.
func TestSymbolicCacheSingleflight(t *testing.T) {
	c := NewSymbolicCache(0)
	const workers = 16
	sizes := []int{8, 16, 24, 32}
	mats := make([]*la.Matrix, len(sizes))
	pats := make([][]int32, len(sizes))
	for i, n := range sizes {
		mats[i], pats[i] = mnaLike(n)
	}
	got := make([][]*Symbolic, len(sizes))
	for i := range got {
		got[i] = make([]*Symbolic, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range sizes {
				sym, _, _, err := c.Get("scope", mats[i], pats[i], Options{})
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				got[i][w] = sym
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != int64(len(sizes)) {
		t.Fatalf("Misses = %d, want exactly %d (one Analyze per distinct key)", st.Misses, len(sizes))
	}
	if want := int64(workers*len(sizes)) - st.Misses; st.Hits != want {
		t.Fatalf("Hits = %d, want %d", st.Hits, want)
	}
	if st.Entries != len(sizes) {
		t.Fatalf("Entries = %d, want %d", st.Entries, len(sizes))
	}
	for i := range got {
		for w := 1; w < workers; w++ {
			if got[i][w] != got[i][0] {
				t.Fatalf("key %d: goroutine %d got a different *Symbolic", i, w)
			}
		}
	}
}

// TestSymbolicCacheScopeAndOptionsKey: the same pattern under a
// different scope or different pivot options is a different key — the
// determinism and configurability contracts of the cache.
func TestSymbolicCacheScopeAndOptionsKey(t *testing.T) {
	c := NewSymbolicCache(0)
	a, pat := mnaLike(12)
	s1, _, hit, err := c.Get("op-a", a, pat, Options{})
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	if _, _, hit, _ := c.Get("op-a", a, pat, Options{}); !hit {
		t.Fatal("same scope+options: want a hit")
	}
	s2, _, hit, err := c.Get("op-b", a, pat, Options{})
	if err != nil || hit {
		t.Fatalf("different scope: hit=%v err=%v (want miss)", hit, err)
	}
	if s1 == s2 {
		t.Fatal("different scopes share one Symbolic")
	}
	if _, _, hit, _ := c.Get("op-a", a, pat, Options{PivotRel: 0.25}); hit {
		t.Fatal("different PivotRel: want a miss")
	}
	// The zero Options normalize to the defaults: spelling the defaults
	// out explicitly must land on the same key.
	if _, _, hit, _ := c.Get("op-a", a, pat, Options{PivotRel: 0.1, RefactorRel: 1e-10}); !hit {
		t.Fatal("explicit default options: want a hit on the zero-Options entry")
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("Misses = %d, want 3", st.Misses)
	}
}

// TestSymbolicCacheRefresh: generation-gated re-analysis. Concurrent
// stale holders refreshing with the same old generation run exactly one
// new Analyze; a refresh against an already-replaced generation is a
// hit on the newer entry.
func TestSymbolicCacheRefresh(t *testing.T) {
	c := NewSymbolicCache(0)
	a, pat := mnaLike(16)
	_, gen0, _, err := c.Get("op", a, pat, Options{})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	const workers = 12
	syms := make([]*Symbolic, workers)
	gens := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sym, gen, _, err := c.Refresh("op", a, pat, Options{}, gen0)
			if err != nil {
				t.Errorf("Refresh: %v", err)
				return
			}
			syms[w], gens[w] = sym, gen
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if syms[w] != syms[0] || gens[w] != gens[0] {
			t.Fatalf("refreshers diverged: [%d]=(%p,%d) vs [0]=(%p,%d)", w, syms[w], gens[w], syms[0], gens[0])
		}
	}
	if gens[0] == gen0 {
		t.Fatal("refresh did not advance the generation")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("Misses = %d, want 2 (initial + one shared refresh)", st.Misses)
	}
	// A straggler still holding gen0 refreshes against the replaced
	// entry: hit, no new Analyze.
	sym, gen, hit, err := c.Refresh("op", a, pat, Options{}, gen0)
	if err != nil || !hit || sym != syms[0] || gen != gens[0] {
		t.Fatalf("straggler refresh: sym=%p gen=%d hit=%v err=%v", sym, gen, hit, err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("straggler caused an Analyze: Misses = %d", st.Misses)
	}
}

// TestSymbolicCacheLRU: the completed-entry bound evicts coldest-first
// and evicted keys re-analyze.
func TestSymbolicCacheLRU(t *testing.T) {
	c := NewSymbolicCache(2)
	mats := make([]*la.Matrix, 3)
	pats := make([][]int32, 3)
	for i, n := range []int{8, 12, 16} {
		mats[i], pats[i] = mnaLike(n)
		if _, _, _, err := c.Get("op", mats[i], pats[i], Options{}); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after 3 inserts at limit 2: evictions=%d entries=%d", st.Evictions, st.Entries)
	}
	// Key 0 was coldest and evicted; key 2 must still be warm.
	if _, _, hit, _ := c.Get("op", mats[2], pats[2], Options{}); !hit {
		t.Fatal("most recent key evicted")
	}
	if _, _, hit, _ := c.Get("op", mats[0], pats[0], Options{}); hit {
		t.Fatal("evicted key answered a hit")
	}
}

// TestSymbolicCacheErrorNotCached: a singular pilot's failure is
// returned but not retained, so a later call with viable values
// retries the analysis.
func TestSymbolicCacheErrorNotCached(t *testing.T) {
	c := NewSymbolicCache(0)
	n := 4
	a := la.NewMatrix(n, n)
	pat := []int32{0, 5, 10, 15}
	// All-zero diagonal pattern: no admissible pivot.
	if _, _, _, err := c.Get("op", a, pat, Options{}); err == nil {
		t.Fatal("singular pilot analyzed successfully")
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	if _, _, hit, err := c.Get("op", a, pat, Options{}); err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("entries=%d misses=%d, want 1/2", st.Entries, st.Misses)
	}
}

// TestSymbolicCacheStress is the -race workout: many goroutines, mixed
// topologies and scopes, interleaved staleness refreshes. The counter
// contract holds throughout: one Analyze per distinct key plus exactly
// one per refresh round per key.
func TestSymbolicCacheStress(t *testing.T) {
	c := NewSymbolicCache(0)
	const workers = 24
	sizes := []int{8, 12, 16, 24, 32}
	scopes := []string{"alpha", "beta"}
	mats := make([]*la.Matrix, len(sizes))
	pats := make([][]int32, len(sizes))
	for i, n := range sizes {
		mats[i], pats[i] = mnaLike(n)
	}
	distinct := len(sizes) * len(scopes)

	// Round 1: concurrent cold gets over every (size, scope) pair.
	gens := make([][]uint64, len(scopes))
	for si := range gens {
		gens[si] = make([]uint64, len(sizes))
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				i := (w + r) % len(sizes)
				si := (w + r/3) % len(scopes)
				_, gen, _, err := c.Get(scopes[si], mats[i], pats[i], Options{})
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				mu.Lock()
				gens[si][i] = gen
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != int64(distinct) {
		t.Fatalf("round 1: Misses = %d, want %d", st.Misses, distinct)
	}

	// Round 2: every worker believes every key went stale at its round-1
	// generation; each key must re-analyze exactly once.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := range scopes {
				for i := range sizes {
					if _, _, _, err := c.Refresh(scopes[si], mats[i], pats[i], Options{}, gens[si][i]); err != nil {
						t.Errorf("Refresh: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != int64(2*distinct) {
		t.Fatalf("round 2: Misses = %d, want %d", st.Misses, 2*distinct)
	}
}
