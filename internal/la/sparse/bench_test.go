package sparse

import (
	"math/rand"
	"testing"

	"hybriddelay/internal/la"
)

// mnaLike builds a banded-plus-sources pattern resembling a flattened
// gate chain's MNA Jacobian: node rows coupled to a few neighbours,
// plus voltage-source branch rows with zero diagonals.
func mnaLike(n int) (*la.Matrix, []int32) {
	rng := rand.New(rand.NewSource(int64(n)))
	a := la.NewMatrix(n, n)
	var pattern []int32
	set := func(i, j int, v float64) {
		if a.At(i, j) == 0 {
			pattern = append(pattern, int32(i*n+j))
		}
		a.Add(i, j, v)
	}
	nv := n - n/8 // last n/8 unknowns act as branch currents
	for i := 0; i < nv; i++ {
		set(i, i, 2+rng.Float64())
		for _, d := range []int{1, 3} {
			if j := i + d; j < nv {
				g := 0.3 + rng.Float64()
				set(i, j, -g)
				set(j, i, -g)
				set(i, i, g)
				set(j, j, g)
			}
		}
	}
	for bi := nv; bi < n; bi++ {
		p := (bi - nv) * 2 % nv
		set(p, bi, 1)
		set(bi, p, 1)
	}
	return a, pattern
}

func benchSizes(b *testing.B, run func(b *testing.B, n int)) {
	for _, n := range []int{8, 32, 96} {
		b.Run(map[int]string{8: "n8", 32: "n32", 96: "n96"}[n], func(b *testing.B) {
			run(b, n)
		})
	}
}

// BenchmarkSparseFactorSolve measures the numeric refactor + solve on
// a fixed analyzed pattern; its allocs/op is a hard CI gate (must be
// zero), as the refactor runs on every Newton iteration of every step.
func BenchmarkSparseFactorSolve(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		a, pattern := mnaLike(n)
		sym, err := Analyze(a, pattern, Options{})
		if err != nil {
			b.Fatalf("Analyze: %v", err)
		}
		nu := sym.NewNumeric()
		work := a.Clone()
		x := make([]float64, n)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%7) - 3
		}
		b.ReportMetric(float64(sym.NNZ()), "nnz")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, off := range sym.Touched() {
				work.Data[off] = a.Data[off]
			}
			if err := nu.FactorSolve(work, x, rhs); err != nil {
				b.Fatalf("FactorSolve: %v", err)
			}
		}
	})
}

// BenchmarkDenseFactorSolve is the dense baseline on the same systems,
// including the full-matrix rebuild a dense refactor implies.
func BenchmarkDenseFactorSolve(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		a, _ := mnaLike(n)
		var lu la.LU
		work := a.Clone()
		x := make([]float64, n)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%7) - 3
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work.Data, a.Data)
			if err := lu.FactorSolveInPlace(work, x, rhs); err != nil {
				b.Fatalf("FactorSolveInPlace: %v", err)
			}
		}
	})
}
