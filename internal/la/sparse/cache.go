package sparse

import (
	"container/list"
	"encoding/binary"
	"math"
	"strings"
	"sync"

	"hybriddelay/internal/la"
)

// This file adds the process-wide amortization layer over Analyze:
// where the golden and parametrization caches skip re-simulating and
// re-fitting identical workloads, the SymbolicCache skips re-running
// the Markowitz pilot for identical sparsity structures. Every pooled
// bench clone, batched transient and serve tenant solving the same
// topology at the same operating point shares one immutable *Symbolic
// (documented safe for concurrent use) instead of each paying its own
// symbolic analysis.

// CacheStats reports symbolic-cache effectiveness counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`      // lookups served from a cached or in-flight analysis
	Misses    int64 `json:"misses"`    // lookups that ran Analyze (exactly one Analyze per miss)
	Evictions int64 `json:"evictions"` // completed analyses dropped by the memory bound
	Entries   int   `json:"entries"`   // completed analyses currently stored
}

// Add accumulates counters from another snapshot.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// symEntry is one cache slot; ready is closed once sym/err are set, so
// concurrent requests for the same key wait instead of re-analyzing.
// gen is the cache-unique generation assigned at entry creation —
// strictly increasing, so any generation a caller obtained from a
// completed lookup is older than every entry created afterwards. elem
// is set when the completed entry joins the LRU ring; in-flight and
// failed entries never join it.
type symEntry struct {
	ready chan struct{}
	sym   *Symbolic
	err   error
	gen   uint64
	elem  *list.Element
}

// SymbolicCache memoizes Analyze results by content key: the caller's
// scope string, the system size, the (normalized) Options and the raw
// pattern offsets. It is safe for concurrent use and deduplicates
// in-flight analyses (singleflight): the first requester of a key runs
// the pilot, later ones wait for its result. Failed analyses are not
// cached, so a later call retries.
//
// The scope string keeps pivot orders deterministic: the pilot reads
// the representative matrix's *values*, so two different operating
// points with identical patterns must not race to seed one entry.
// Callers set the scope from whatever identifies the operating point
// (gate kind plus bench parameters, a netlist content key); clones of
// one operating point then share, distinct operating points do not.
//
// Generations make staleness re-analysis race-free: every completed
// lookup returns the entry's generation, and Refresh replaces the
// entry only when it still carries the generation the caller saw —
// when a concurrent solver already refreshed it, the newer entry is
// returned as a hit, so N solvers hitting staleness together run
// exactly one new Analyze.
//
// Memory is bounded with SetLimit: completed analyses form an LRU
// (each weighs one) and the coldest are evicted past the bound.
// In-flight analyses are never evicted, and callers already holding a
// Symbolic keep it even if it is evicted underneath them.
type SymbolicCache struct {
	mu        sync.Mutex
	table     map[string]*symEntry
	limit     int // max completed analyses; 0 = unbounded
	lru       *list.List
	nextGen   uint64
	hits      int64
	misses    int64
	evictions int64
}

// NewSymbolicCache returns an empty cache bounded to limit completed
// analyses (0 or negative = unbounded).
func NewSymbolicCache(limit int) *SymbolicCache {
	if limit < 0 {
		limit = 0
	}
	return &SymbolicCache{table: map[string]*symEntry{}, limit: limit, lru: list.New()}
}

// SetLimit bounds the number of retained analyses; zero (or negative)
// removes the bound. Shrinking evicts immediately, coldest first.
func (c *SymbolicCache) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.evictOverLocked()
	c.mu.Unlock()
}

// evictOverLocked drops analyses from the cold end of the LRU ring
// until the bound is met. Caller holds mu.
func (c *SymbolicCache) evictOverLocked() {
	for c.limit > 0 && c.lru.Len() > c.limit {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		c.lru.Remove(back)
		delete(c.table, key)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *SymbolicCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.lru.Len()}
}

// cacheKey builds the exact content key: no hashing, so distinct
// structures can never collide. The pattern is keyed as given —
// callers derive it deterministically from topology, so identical
// topologies produce identical slices.
func cacheKey(scope string, n int, pattern []int32, opt Options) string {
	opt.defaults()
	var b strings.Builder
	b.Grow(len(scope) + 21 + 4*len(pattern))
	b.WriteString(scope)
	var hdr [21]byte
	binary.LittleEndian.PutUint32(hdr[1:], uint32(n))
	binary.LittleEndian.PutUint64(hdr[5:], math.Float64bits(opt.PivotRel))
	binary.LittleEndian.PutUint64(hdr[13:], math.Float64bits(opt.RefactorRel))
	b.Write(hdr[:])
	var e [4]byte
	for _, off := range pattern {
		binary.LittleEndian.PutUint32(e[:], uint32(off))
		b.Write(e[:])
	}
	return b.String()
}

// Get returns the shared Symbolic for (scope, a's size, pattern, opt),
// analyzing at most once per key: concurrent callers for the same key
// block on the first caller's result. hit reports whether the analysis
// was shared; gen identifies the returned entry for a later Refresh.
func (c *SymbolicCache) Get(scope string, a *la.Matrix, pattern []int32, opt Options) (sym *Symbolic, gen uint64, hit bool, err error) {
	return c.lookup(cacheKey(scope, a.Rows, pattern, opt), a, pattern, opt, 0, false)
}

// Refresh re-analyzes after a staleness signal (ErrPivot): the caller
// passes the generation it obtained the stale Symbolic under. If the
// cache still holds that generation, this caller replaces it with a
// fresh analysis of a's current values; if another solver already
// refreshed the entry, the newer analysis is returned as a hit and no
// new pilot runs.
func (c *SymbolicCache) Refresh(scope string, a *la.Matrix, pattern []int32, opt Options, oldGen uint64) (sym *Symbolic, gen uint64, hit bool, err error) {
	return c.lookup(cacheKey(scope, a.Rows, pattern, opt), a, pattern, opt, oldGen, true)
}

func (c *SymbolicCache) lookup(key string, a *la.Matrix, pattern []int32, opt Options, oldGen uint64, refresh bool) (*Symbolic, uint64, bool, error) {
	for {
		c.mu.Lock()
		if e, ok := c.table[key]; ok && !(refresh && e.gen == oldGen) {
			c.mu.Unlock()
			<-e.ready
			if e.err == nil {
				c.mu.Lock()
				c.hits++
				if cur, ok := c.table[key]; ok && cur == e && e.elem != nil {
					c.lru.MoveToFront(e.elem)
				}
				c.mu.Unlock()
				return e.sym, e.gen, true, nil
			}
			// The leader failed; its entry is already evicted. Retry as
			// (or behind) a new leader.
			continue
		} else if ok {
			// Stale entry this caller is refreshing: unlink it so the
			// replacement does not duplicate its LRU slot.
			if e.elem != nil {
				c.lru.Remove(e.elem)
			}
		}
		e := &symEntry{ready: make(chan struct{})}
		c.nextGen++
		e.gen = c.nextGen
		c.table[key] = e
		c.misses++
		c.mu.Unlock()

		e.sym, e.err = Analyze(a, pattern, opt)
		c.mu.Lock()
		if e.err != nil {
			if c.table[key] == e {
				delete(c.table, key)
			}
		} else if c.table[key] == e {
			e.elem = c.lru.PushFront(key)
			c.evictOverLocked()
		}
		c.mu.Unlock()
		close(e.ready)
		return e.sym, e.gen, false, e.err
	}
}
