// Package la provides the small dense linear-algebra kernels used by the
// analog simulator and the hybrid ODE model: dense LU factorization with
// partial pivoting for the modified-nodal-analysis (MNA) systems, and
// closed-form eigen-decomposition and matrix exponentials for the 2x2
// systems that govern the hybrid NOR model.
//
// The package is deliberately minimal: circuit matrices in this repository
// are tiny (a handful of nodes), so a straightforward O(n^3) LU without
// blocking is both simple and fast.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("la: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("la: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero resets all entries to zero, retaining the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .6g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	buf  []float64 // owned backing storage for lu (FactorInto); FactorInPlace aliases the caller's matrix instead
	piv  []int
	sign int
}

// Factor computes the LU factorization of the square matrix a.
// The input matrix is not modified.
func Factor(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto computes the LU factorization of the square matrix a into
// f, reusing f's packed-LU and pivot buffers when the size matches.
// Repeated factorizations of same-sized systems (the MNA Newton loop)
// therefore allocate nothing after the first call. The input matrix is
// not modified. On error f is left invalid and must be refactored
// before use.
func (f *LU) FactorInto(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: cannot factor non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if cap(f.buf) < n*n {
		f.buf = make([]float64, n*n)
	} else {
		f.buf = f.buf[:n*n]
	}
	copy(f.buf, a.Data)
	f.lu = f.buf
	return f.factor(n)
}

// FactorInPlace factors the square matrix a directly in a's storage,
// which the factorization then aliases: a is destroyed, and the
// factorization is only valid until a's data is next modified. It is
// the zero-copy variant for callers that rebuild a from scratch anyway
// (the Newton loop re-stamps its Jacobian every iteration); pivoting
// and elimination are identical to FactorInto, so the factors are
// bit-for-bit the same. On error f is left invalid and a is clobbered.
func (f *LU) FactorInPlace(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: cannot factor non-square %dx%d matrix", a.Rows, a.Cols)
	}
	f.lu = a.Data
	return f.factor(a.Rows)
}

// FactorSolveInPlace factors a in place (with FactorInPlace semantics:
// a is destroyed and the factorization aliases its storage) and solves
// a*x = b in the same sweep, carrying the right-hand side through the
// elimination. b is not modified; x and b must have length n and may
// not alias. The result is bit-for-bit identical to FactorInPlace
// followed by SolveInto: row swaps move the carried entries exactly as
// the pivot permutation would, and each x[i] receives the forward-
// substitution subtractions l*x[k] for k = 0..i-1 in the same
// ascending order, each x[k] being final by the time it is used (rows
// at or above the elimination front are never swapped again). Fusing
// the passes saves a separate permute + forward-substitution walk per
// solve, which matters in the Newton inner loop.
//
// Allocation-free in the steady state (the pivot workspace grows once
// per size): enforced statically by hybridlint's noalloc analyzer and
// dynamically by CI's BenchmarkSolverNewton -benchmem gate, which
// drives this function every iteration.
//
//hybrid:noalloc
func (f *LU) FactorSolveInPlace(a *Matrix, x, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: cannot factor non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n || len(x) != n {
		return fmt.Errorf("la: slice lengths (%d, %d) do not match system size %d", len(x), len(b), n)
	}
	f.lu = a.Data
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	} else {
		f.piv = f.piv[:n]
	}
	f.n, f.sign = n, 1
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	copy(x, b)
	// Pivot search fused into the elimination pass, exactly as factor().
	p := 0
	max := math.Abs(lu[0])
	for i := 1; i < n; i++ {
		if v := math.Abs(lu[i*n]); v > max {
			max, p = v, i
		}
	}
	for k := 0; k < n; k++ {
		if max == 0 {
			f.n = 0
			return ErrSingular
		}
		if p != k {
			rp, rk := lu[p*n:p*n+n], lu[k*n:k*n+n]
			for j := range rk {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			x[p], x[k] = x[k], x[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		rowK := lu[k*n+k+1 : k*n+n]
		xk := x[k]
		nextP, nextMax := k+1, 0.0
		for i := k + 1; i < n; i++ {
			rowI := lu[i*n+k : i*n+n]
			l := rowI[0] / pivot
			rowI[0] = l
			if l != 0 {
				tail := rowI[1:]
				tail = tail[:len(rowK)]
				for j, rk := range rowK {
					tail[j] -= l * rk
				}
			}
			// Unconditional, matching SolveInto's forward substitution
			// (which does not skip zero multipliers).
			x[i] -= l * xk
			// rowI[1] is this row's entry in column k+1, now final.
			if v := math.Abs(rowI[1]); v > nextMax {
				nextMax, nextP = v, i
			}
		}
		p, max = nextP, nextMax
	}
	// Back substitution, exactly SolveInto's final pass.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu[i*n : i*n+n]
		tail := row[i+1:]
		xt := x[i+1:]
		xt = xt[:len(tail)]
		for j, rv := range tail {
			s -= rv * xt[j]
		}
		d := row[i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// factor runs partial-pivot Gaussian elimination on the packed matrix
// already placed in f.lu.
func (f *LU) factor(n int) error {
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	} else {
		f.piv = f.piv[:n]
	}
	f.n, f.sign = n, 1
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	// Partial pivoting: the largest magnitude in column k among rows
	// k..n-1. The column-k scan for k = 0 seeds it; every later column's
	// scan is fused into the elimination pass below, which walks exactly
	// the candidate rows in the same order with the same strict ">"
	// comparison (first maximum wins), so the pivot sequence is
	// identical to a separate search.
	p := 0
	max := math.Abs(lu[0])
	for i := 1; i < n; i++ {
		if v := math.Abs(lu[i*n]); v > max {
			max, p = v, i
		}
	}
	for k := 0; k < n; k++ {
		if max == 0 {
			f.n = 0
			return ErrSingular
		}
		if p != k {
			rp, rk := lu[p*n:p*n+n], lu[k*n:k*n+n]
			for j := range rk {
				rp[j], rk[j] = rk[j], rp[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		// Slicing the row tails lets the compiler drop the bounds checks
		// in the elimination kernel; the arithmetic (and its order) is
		// exactly the classic in-place update.
		rowK := lu[k*n+k+1 : k*n+n]
		nextP, nextMax := k+1, 0.0
		for i := k + 1; i < n; i++ {
			rowI := lu[i*n+k : i*n+n]
			l := rowI[0] / pivot
			rowI[0] = l
			if l != 0 {
				tail := rowI[1:]
				tail = tail[:len(rowK)]
				for j, rk := range rowK {
					tail[j] -= l * rk
				}
			}
			// rowI[1] is this row's entry in column k+1, now final.
			if v := math.Abs(rowI[1]); v > nextMax {
				nextMax, nextP = v, i
			}
		}
		p, max = nextP, nextMax
	}
	return nil
}

// Solve solves A*x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("la: rhs length %d does not match system size %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A*x = b, writing the solution into x. x and b must have
// length n and may not alias.
func (f *LU) SolveInto(x, b []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("la: slice lengths (%d, %d) do not match system size %d", len(x), len(b), n)
	}
	lu, piv := f.lu, f.piv
	// Apply permutation.
	for i, p := range piv {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu[i*n : i*n+i]
		xj := x[:len(row)]
		for j, l := range row {
			s -= l * xj[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu[i*n : i*n+n]
		tail := row[i+1:]
		xt := x[i+1:]
		xt = xt[:len(tail)]
		for j, rv := range tail {
			s -= rv * xt[j]
		}
		d := row[i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense factors a and solves a*x = b in one call. For repeated solves
// with the same matrix, use Factor once and call Solve.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MatVec computes y = A*x for a dense matrix.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("la: dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum-magnitude entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
