// Package la provides the small dense linear-algebra kernels used by the
// analog simulator and the hybrid ODE model: dense LU factorization with
// partial pivoting for the modified-nodal-analysis (MNA) systems, and
// closed-form eigen-decomposition and matrix exponentials for the 2x2
// systems that govern the hybrid NOR model.
//
// The package is deliberately minimal: circuit matrices in this repository
// are tiny (a handful of nodes), so a straightforward O(n^3) LU without
// blocking is both simple and fast.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("la: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("la: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero resets all entries to zero, retaining the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .6g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int
	sign int
}

// Factor computes the LU factorization of the square matrix a.
// The input matrix is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: cannot factor non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		max := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("la: rhs length %d does not match system size %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A*x = b, writing the solution into x. x and b must have
// length n and may not alias.
func (f *LU) SolveInto(x, b []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("la: slice lengths (%d, %d) do not match system size %d", len(x), len(b), n)
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense factors a and solves a*x = b in one call. For repeated solves
// with the same matrix, use Factor once and call Solve.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MatVec computes y = A*x for a dense matrix.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("la: dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum-magnitude entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
