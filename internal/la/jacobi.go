package la

import (
	"fmt"
	"math"
)

// SymEigen is the eigen-decomposition of a real symmetric matrix:
// S = V * diag(Lambda) * V^T with orthonormal columns in V.
type SymEigen struct {
	Lambda []float64 // eigenvalues
	V      *Matrix   // column k is the eigenvector of Lambda[k]
}

// JacobiEigen computes the eigen-decomposition of a symmetric matrix by
// the cyclic Jacobi rotation method. The input is not modified. The
// method is unconditionally stable and, for the tiny (<= 8x8) RC system
// matrices in this repository, easily fast enough.
func JacobiEigen(s *Matrix, tol float64) (SymEigen, error) {
	if s.Rows != s.Cols {
		return SymEigen{}, fmt.Errorf("la: JacobiEigen needs a square matrix, got %dx%d", s.Rows, s.Cols)
	}
	n := s.Rows
	// Symmetry check (tolerant: inputs come from symmetrized products).
	scale := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scale = math.Max(scale, math.Abs(s.At(i, j)))
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(s.At(i, j)-s.At(j, i)) > 1e-8*(scale+1) {
				return SymEigen{}, fmt.Errorf("la: matrix not symmetric at (%d,%d): %g vs %g",
					i, j, s.At(i, j), s.At(j, i))
			}
		}
	}
	if tol <= 0 {
		tol = 1e-14
	}
	a := s.Clone()
	// Symmetrize exactly to keep rotations consistent.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (a.At(i, j) + a.At(j, i))
			a.Set(i, j, m)
			a.Set(j, i, m)
		}
	}
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	offdiag := func() float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += a.At(i, j) * a.At(i, j)
			}
		}
		return math.Sqrt(sum)
	}
	for sweep := 0; sweep < 100; sweep++ {
		if offdiag() <= tol*(scale+1) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Apply the rotation A <- J^T A J on rows/cols p, q.
				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, c*akp-sn*akq)
					a.Set(k, q, sn*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, c*apk-sn*aqk)
					a.Set(q, k, sn*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+c*vkq)
				}
			}
		}
	}
	out := SymEigen{Lambda: make([]float64, n), V: v}
	for i := 0; i < n; i++ {
		out.Lambda[i] = a.At(i, i)
	}
	return out, nil
}
