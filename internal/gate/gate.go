// Package gate is the gate-abstraction layer of the evaluation
// pipeline: it decouples the Fig. 7 accuracy machinery (internal/eval),
// the digital channels and the CLI from any particular gate topology.
//
// A Gate bundles everything the pipeline needs generically — the boolean
// function, transistor-level golden-bench construction, characteristic
// Charlie-delay measurement, the per-pin inertial baseline and the
// hybrid-model parametrization hooks — so that a new gate is a registry
// entry (Register) rather than a new copy of the pipeline. The paper's
// 2-input NOR (the default), its structural dual NAND2 and the 3-input
// NOR extension are registered in this package.
package gate

import (
	"fmt"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Model names of the Fig. 7 legend — the four delay models every
// registered gate parametrizes through BuildModels and the accuracy
// pipeline scores against the golden reference (both per gate in
// internal/eval and per netlist instance in circuit-level evaluation).
const (
	ModelInertial = "inertial"
	ModelExp      = "exp-channel"
	ModelHM       = "hm"         // hybrid model with pure delay
	ModelHMNoDMin = "hm-no-dmin" // hybrid model without pure delay
)

// ModelNames lists the evaluated models in presentation order.
var ModelNames = []string{ModelInertial, ModelExp, ModelHM, ModelHMNoDMin}

// Gate describes one registered multi-input gate. Implementations are
// stateless values safe for concurrent use; per-run state lives in the
// Bench instances they construct.
type Gate interface {
	// Name is the registry key (e.g. "nor2").
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Arity is the number of gate inputs.
	Arity() int
	// Logic is the gate's zero-delay boolean function over Arity inputs.
	Logic(in []bool) bool
	// NewBench builds a fresh transistor-level golden bench from the
	// shared testbench parameter set. Benches are not safe for
	// concurrent use; build one per worker.
	NewBench(p nor.Params) (Bench, error)
	// Stamp writes the gate's transistor-level subcircuit into a shared
	// circuit, so multi-gate netlists can be flattened into one MNA
	// system: the instance's devices (including its per-stage output
	// load CO) between the given input nodes and a freshly created
	// output node named outName, with internal nodes created under
	// prefix. init holds the instance's logical input values at t=0;
	// the returned Subcircuit carries the created node IDs and the
	// settled initial voltage of every created node in that input state
	// (internal nodes isolated by the input state use the paper's worst
	// case GND). For a gate stamped alone with all-low inputs the
	// resulting circuit is device-for-device identical to its
	// standalone bench.
	Stamp(c *spice.Circuit, prefix, outName string, p nor.Params, vdd spice.NodeID, in []spice.NodeID, init []bool) (Subcircuit, error)
	// BuildModels parametrizes the Fig. 7 model set (per-pin inertial
	// arcs, exp-channel, hybrid model with and without pure delay) from
	// a bench measurement. expDMin is the exp channel's empirical pure
	// delay (paper: 20 ps).
	BuildModels(meas Measurement, supply waveform.Supply, expDMin float64) (Models, error)
}

// Subcircuit reports what one Stamp call added to a shared circuit.
type Subcircuit struct {
	// Out is the created output node.
	Out spice.NodeID
	// Internal lists the created internal nodes in stamp order.
	Internal []spice.NodeID
	// Initial maps every created node (internal and output) to its
	// settled voltage for the instance's t=0 input state.
	Initial map[spice.NodeID]float64
}

// stampArgs validates the common Stamp preconditions.
func stampArgs(g Gate, p nor.Params, in []spice.NodeID, init []bool) error {
	if err := nor.ValidateParams("gate "+g.Name(), p); err != nil {
		return err
	}
	if len(in) != g.Arity() {
		return fmt.Errorf("gate %s: stamp wants %d input nodes, got %d", g.Name(), g.Arity(), len(in))
	}
	if len(init) != g.Arity() {
		return fmt.Errorf("gate %s: stamp wants %d initial input values, got %d", g.Name(), g.Arity(), len(init))
	}
	return nil
}

// Bench is an instantiated transistor-level golden bench of a gate. A
// Bench owns mutable simulator state and must not run two transients at
// once; the evaluation pipeline pools one instance per worker.
type Bench interface {
	// Gate returns the gate this bench instantiates.
	Gate() Gate
	// Params returns the testbench parameters the bench was built from.
	Params() nor.Params
	// Measure runs the characteristic-delay experiments: the six Charlie
	// delays of the pin-(0,1) projection plus the per-pin SIS arcs.
	Measure() (Measurement, error)
	// Golden runs the random input traces through the analog bench and
	// returns the digitized output trace. All inputs must start low (the
	// bench starts settled in the all-low input state).
	Golden(inputs []trace.Trace, until float64) (trace.Trace, error)
}

// Measurement bundles the characteristic measurements of one bench —
// everything Gate.BuildModels needs.
type Measurement struct {
	// Pair holds the gate's six characteristic Charlie delays for the
	// pin-(0,1) projection (any remaining pins held non-controlling), in
	// the gate's own falling/rising orientation.
	Pair hybrid.Characteristic
	// Arcs is the per-pin SIS baseline for the inertial model.
	Arcs inertial.Arcs
}

// Model is one parametrized delay model applied to digital input traces
// — the unit the accuracy pipeline scores against the golden trace.
type Model interface {
	// Apply runs the input traces through the model's channel.
	Apply(inputs []trace.Trace, until float64) (trace.Trace, error)
	// String renders the model's parameters.
	String() string
}

// Models bundles the parametrized delay models under comparison for one
// gate (the Fig. 7 legend).
type Models struct {
	// Gate identifies the gate the models were built for; the pipeline
	// uses its arity and boolean function.
	Gate     Gate
	Inertial inertial.Arcs // per-pin inertial baseline
	Exp      idm.Exp       // single exp channel at the gate output
	HM       Model         // hybrid model with pure delay
	HMNoDMin Model         // hybrid model without pure delay (ablation)
	Supply   waveform.Supply
}

// tailWeights is the residual weighting of the hybrid fits: the paper's
// parametrization visibly favours the SIS tails over the Delta = 0
// points where the model cannot match everything (its delta_rise is
// V_N-invariant in mode (1,1), so rise(-inf) and rise(0) coincide at
// V_N = GND; see Fig. 6): weight the four tails higher so the fit
// resolves the conflict the same way.
var tailWeights = []float64{3, 1, 3, 3, 1, 3}

// buildModels assembles the shared model-set structure: the inertial
// arcs and the exp channel come from the gate's own measurement, the two
// hybrid fits run on the NOR-frame characteristic (each gate maps its
// measurement into the frame FitCharacteristic expects) and are wrapped
// into the gate's channel applier by wrap.
func buildModels(g Gate, meas Measurement, norFrame hybrid.Characteristic,
	supply waveform.Supply, expDMin float64, wrap func(hybrid.Params) Model) (Models, error) {
	m := Models{Gate: g, Supply: supply}
	if len(meas.Arcs) != g.Arity() {
		return m, fmt.Errorf("gate %s: measurement has %d arcs, want %d", g.Name(), len(meas.Arcs), g.Arity())
	}
	if err := meas.Arcs.Validate(); err != nil {
		return m, fmt.Errorf("gate %s: inertial baseline: %w", g.Name(), err)
	}
	m.Inertial = meas.Arcs

	// The exp channel sits at the gate output — it cannot see which
	// input switched, so each direction uses the mean of the pin-(0,1)
	// SIS delays (exactly the deficiency the paper describes for broad
	// pulses) — with the empirical pure delay expDMin.
	riseSIS := 0.5 * (meas.Pair.RiseMinusInf + meas.Pair.RisePlusInf)
	fallSIS := 0.5 * (meas.Pair.FallMinusInf + meas.Pair.FallPlusInf)
	var err error
	if m.Exp, err = idm.ExpFromSIS(riseSIS, fallSIS, expDMin); err != nil {
		return m, fmt.Errorf("gate %s: exp channel: %w", g.Name(), err)
	}
	hm, _, err := hybrid.FitCharacteristic(norFrame, supply, &hybrid.FitOptions{
		DMin: -1, Weights: tailWeights,
	})
	if err != nil {
		return m, fmt.Errorf("gate %s: hybrid fit: %w", g.Name(), err)
	}
	m.HM = wrap(hm)
	hm0, _, err := hybrid.FitCharacteristic(norFrame, supply, &hybrid.FitOptions{
		DMin: 0, Weights: tailWeights,
	})
	if err != nil {
		return m, fmt.Errorf("gate %s: hybrid fit without dmin: %w", g.Name(), err)
	}
	m.HMNoDMin = wrap(hm0)
	return m, nil
}

// toCharacteristic converts the bench measurement struct into the hybrid
// package's target type.
func toCharacteristic(m nor.CharacteristicDelays) hybrid.Characteristic {
	return hybrid.Characteristic{
		FallMinusInf: m.FallMinusInf,
		FallZero:     m.FallZero,
		FallPlusInf:  m.FallPlusInf,
		RiseMinusInf: m.RiseMinusInf,
		RiseZero:     m.RiseZero,
		RisePlusInf:  m.RisePlusInf,
	}
}

// InputSignals converts digital traces into analog bench stimuli: one
// raised-cosine edge train per input plus the transient breakpoints at
// the edge starts. All inputs must start low. It is the one conversion
// convention every golden run shares — the standalone benches and the
// netlist composer drive their input sources through it.
func InputSignals(p nor.Params, inputs []trace.Trace) ([]waveform.Signal, []float64, error) {
	sigs := make([]waveform.Signal, len(inputs))
	var bps []float64
	for i, in := range inputs {
		if in.Initial {
			return nil, nil, fmt.Errorf("gate: golden run requires inputs starting low")
		}
		sig, err := waveform.Edges(in.Transitions(), p.InputRise, 0, p.Supply.VDD)
		if err != nil {
			return nil, nil, fmt.Errorf("gate: input %d: %w", i, err)
		}
		sigs[i] = sig
		for _, e := range in.Events {
			bps = append(bps, e.Time-p.InputRise/2)
		}
	}
	return sigs, bps, nil
}
