package gate

import (
	"fmt"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// NOR2 is the paper's 2-input CMOS NOR — the default gate of the
// pipeline and the golden reference of every figure.
var NOR2 Gate = nor2{}

func init() { Register(NOR2) }

type nor2 struct{}

func (nor2) Name() string         { return "nor2" }
func (nor2) Describe() string     { return "2-input CMOS NOR, the paper's Fig. 1 gate" }
func (nor2) Arity() int           { return 2 }
func (nor2) Logic(in []bool) bool { return !(in[0] || in[1]) }

func (nor2) NewBench(p nor.Params) (Bench, error) {
	b, err := nor.New(p)
	if err != nil {
		return nil, err
	}
	return &NOR2Bench{B: b}, nil
}

// Stamp implements Gate: the Fig. 1 devices between the given input
// nodes and a fresh output node, with the internal node N created first
// (matching the standalone bench's node order). Settled voltages: the
// output follows the NOR logic; N is VDD while the top pMOS conducts
// (A low), tracks the low output while only the lower stack device
// conducts (A high, B low), and takes the paper's worst case GND when
// isolated in mode (1,1).
func (g nor2) Stamp(c *spice.Circuit, prefix, outName string, p nor.Params, vdd spice.NodeID, in []spice.NodeID, init []bool) (Subcircuit, error) {
	if err := stampArgs(g, p, in, init); err != nil {
		return Subcircuit{}, err
	}
	n := c.Node(prefix + "n")
	o := c.Node(outName)
	nor.StampNOR2(c, prefix, p, vdd, in[0], in[1], n, o)
	vN := 0.0
	if !init[0] {
		vN = p.Supply.VDD
	}
	vO := 0.0
	if g.Logic(init) {
		vO = p.Supply.VDD
	}
	return Subcircuit{
		Out:      o,
		Internal: []spice.NodeID{n},
		Initial:  map[spice.NodeID]float64{n: vN, o: vO},
	}, nil
}

func (g nor2) BuildModels(meas Measurement, supply waveform.Supply, expDMin float64) (Models, error) {
	// The pair characteristic is already in the NOR frame the fit
	// expects; the fitted parameters drive the closed-form 2x2 channel.
	return buildModels(g, meas, meas.Pair, supply, expDMin, func(p hybrid.Params) Model {
		return NOR2Model{P: p}
	})
}

// NOR2Arcs maps the NOR pair characteristic onto per-pin arcs: a falling
// output caused by A corresponds to delta_fall(+inf) (A switched first),
// caused by B to delta_fall(-inf); a rising output caused by A
// corresponds to delta_rise(-inf) (A switched last), caused by B to
// delta_rise(+inf).
func NOR2Arcs(c hybrid.Characteristic) inertial.Arcs {
	return inertial.Arcs{
		{Fall: c.FallPlusInf, Rise: c.RiseMinusInf},
		{Fall: c.FallMinusInf, Rise: c.RisePlusInf},
	}
}

// NOR2Bench adapts the transistor-level NOR testbench to the generic
// Bench interface.
type NOR2Bench struct {
	B *nor.Bench
}

// Gate implements Bench.
func (b *NOR2Bench) Gate() Gate { return NOR2 }

// Params implements Bench.
func (b *NOR2Bench) Params() nor.Params { return b.B.P }

// SolverStats exposes the underlying bench's cumulative MNA solver
// counters for traffic reporting.
func (b *NOR2Bench) SolverStats() spice.SolverStats { return b.B.SolverStats() }

// Measure implements Bench: the six characteristic delays (worst-case
// V_N = GND for the rising experiments, as in the paper) plus the SIS
// arc mapping derived from them.
func (b *NOR2Bench) Measure() (Measurement, error) {
	c, err := b.B.Characteristic()
	if err != nil {
		return Measurement{}, err
	}
	pair := toCharacteristic(c)
	return Measurement{Pair: pair, Arcs: NOR2Arcs(pair)}, nil
}

// Golden implements Bench: the analog transient over the input traces,
// digitized at V_th. The bench starts settled in state (0,0) with the
// output and internal node high.
func (b *NOR2Bench) Golden(inputs []trace.Trace, until float64) (trace.Trace, error) {
	if len(inputs) != 2 {
		return trace.Trace{}, fmt.Errorf("gate nor2: want 2 inputs, got %d", len(inputs))
	}
	sigs, bps, err := InputSignals(b.B.P, inputs)
	if err != nil {
		return trace.Trace{}, err
	}
	supply := b.B.P.Supply
	out, err := b.B.RunOutput(sigs[0], sigs[1], until, supply.VDD, supply.VDD, bps)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("gate nor2: golden transient: %w", err)
	}
	return trace.Digitize(out, supply.Vth), nil
}

// NOR2Model applies the paper's closed-form 2-input hybrid NOR channel.
type NOR2Model struct {
	P hybrid.Params
}

// Apply implements Model.
func (m NOR2Model) Apply(in []trace.Trace, until float64) (trace.Trace, error) {
	if len(in) != 2 {
		return trace.Trace{}, fmt.Errorf("gate nor2: model wants 2 inputs, got %d", len(in))
	}
	return hybrid.ApplyNOR(m.P, in[0], in[1], until, m.P.Supply.VDD)
}

// String implements Model.
func (m NOR2Model) String() string { return m.P.String() }
