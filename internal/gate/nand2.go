package gate

import (
	"fmt"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// NAND2 is the 2-input CMOS NAND — the exact structural dual of the
// paper's NOR (parallel pMOS pull-ups, serial nMOS stack). Its hybrid
// model is the mirrored NOR model; its golden bench is the mirrored
// netlist built from the same device parameters.
var NAND2 Gate = nand2{}

func init() { Register(NAND2) }

type nand2 struct{}

func (nand2) Name() string         { return "nand2" }
func (nand2) Describe() string     { return "2-input CMOS NAND, structural dual of the NOR" }
func (nand2) Arity() int           { return 2 }
func (nand2) Logic(in []bool) bool { return !(in[0] && in[1]) }

func (nand2) NewBench(p nor.Params) (Bench, error) {
	b, err := nor.NewNAND(p)
	if err != nil {
		return nil, err
	}
	return &NAND2Bench{B: b}, nil
}

// Stamp implements Gate: the dual NAND devices with the internal stack
// node M created first. Settled voltages: the output follows the NAND
// logic; M is pulled to GND while the bottom nMOS conducts (A high),
// tracks the high output while only the upper stack device conducts
// (A low, B high), and starts discharged (GND) when isolated in state
// (0,0) — matching the standalone bench's golden initial condition.
func (g nand2) Stamp(c *spice.Circuit, prefix, outName string, p nor.Params, vdd spice.NodeID, in []spice.NodeID, init []bool) (Subcircuit, error) {
	if err := stampArgs(g, p, in, init); err != nil {
		return Subcircuit{}, err
	}
	m := c.Node(prefix + "m")
	o := c.Node(outName)
	nor.StampNAND2(c, prefix, p, vdd, in[0], in[1], m, o)
	vM := 0.0
	if !init[0] && init[1] {
		vM = p.Supply.VDD
	}
	vO := 0.0
	if g.Logic(init) {
		vO = p.Supply.VDD
	}
	return Subcircuit{
		Out:      o,
		Internal: []spice.NodeID{m},
		Initial:  map[spice.NodeID]float64{m: vM, o: vO},
	}, nil
}

func (g nand2) BuildModels(meas Measurement, supply waveform.Supply, expDMin float64) (Models, error) {
	// Fit the dual NOR model on the mirrored characteristic (the
	// duality frame change of hybrid.Characteristic.Mirror), then flip
	// it back into the NAND parametrization for the channel.
	return buildModels(g, meas, meas.Pair.Mirror(), supply, expDMin, func(p hybrid.Params) Model {
		return NAND2Model{N: hybrid.NANDFromDual(p)}
	})
}

// NAND2Arcs maps the NAND pair characteristic onto per-pin arcs. NAND
// falling delays are measured from the later rising input (the serial
// stack only discharges once both inputs are high), so delta_fall(-inf)
// is the A-caused arc and delta_fall(+inf) the B-caused one; rising
// delays are measured from the earlier falling input, so
// delta_rise(+inf) is A-caused and delta_rise(-inf) B-caused.
func NAND2Arcs(c hybrid.Characteristic) inertial.Arcs {
	return inertial.Arcs{
		{Fall: c.FallMinusInf, Rise: c.RisePlusInf},
		{Fall: c.FallPlusInf, Rise: c.RiseMinusInf},
	}
}

// NAND2Bench adapts the transistor-level NAND testbench.
type NAND2Bench struct {
	B *nor.NANDBench
}

// Gate implements Bench.
func (b *NAND2Bench) Gate() Gate { return NAND2 }

// Params implements Bench.
func (b *NAND2Bench) Params() nor.Params { return b.B.P }

// SolverStats exposes the underlying bench's cumulative MNA solver
// counters for traffic reporting.
func (b *NAND2Bench) SolverStats() spice.SolverStats { return b.B.SolverStats() }

// Measure implements Bench: the six characteristic NAND delays
// (worst-case V_M = VDD for the falling experiments) plus the SIS arc
// mapping.
func (b *NAND2Bench) Measure() (Measurement, error) {
	c, err := b.B.Characteristic()
	if err != nil {
		return Measurement{}, err
	}
	pair := toCharacteristic(c)
	return Measurement{Pair: pair, Arcs: NAND2Arcs(pair)}, nil
}

// Golden implements Bench. The bench starts settled in state (0,0) with
// the output high; the isolated internal stack node M starts fully
// discharged (V_M = 0), matching the hybrid NAND channel's initial
// state in NAND2Model.Apply.
func (b *NAND2Bench) Golden(inputs []trace.Trace, until float64) (trace.Trace, error) {
	if len(inputs) != 2 {
		return trace.Trace{}, fmt.Errorf("gate nand2: want 2 inputs, got %d", len(inputs))
	}
	sigs, bps, err := InputSignals(b.B.P, inputs)
	if err != nil {
		return trace.Trace{}, err
	}
	supply := b.B.P.Supply
	out, err := b.B.RunOutput(sigs[0], sigs[1], until, 0, supply.VDD, bps)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("gate nand2: golden transient: %w", err)
	}
	return trace.Digitize(out, supply.Vth), nil
}

// NAND2Model applies the duality-derived 2-input hybrid NAND channel.
type NAND2Model struct {
	N hybrid.NANDParams
}

// Apply implements Model. The initial stack-node voltage V_M = 0
// matches the golden bench's initial condition.
func (m NAND2Model) Apply(in []trace.Trace, until float64) (trace.Trace, error) {
	if len(in) != 2 {
		return trace.Trace{}, fmt.Errorf("gate nand2: model wants 2 inputs, got %d", len(in))
	}
	return hybrid.ApplyNAND(m.N, in[0], in[1], until, 0)
}

// String implements Model.
func (m NAND2Model) String() string { return m.N.String() }
