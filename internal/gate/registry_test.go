package gate

import (
	"reflect"
	"strings"
	"testing"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"nand2", "nor2", "nor3"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		g, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if g.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, g.Name())
		}
	}
	if _, ok := Lookup("xor7"); ok {
		t.Error("Lookup of unregistered gate succeeded")
	}
	if Default().Name() != "nor2" {
		t.Errorf("Default() = %q, want nor2", Default().Name())
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(nor2{})
}

func TestGateArityAndLogic(t *testing.T) {
	cases := []struct {
		gate Gate
		ar   int
		// allLow is the output for all-low inputs, oneHigh with only
		// input 0 high, allHigh with every input high.
		allLow, oneHigh, allHigh bool
	}{
		{NOR2, 2, true, false, false},
		{NAND2, 2, true, true, false},
		{NOR3, 3, true, false, false},
	}
	for _, c := range cases {
		if c.gate.Arity() != c.ar {
			t.Errorf("%s arity = %d, want %d", c.gate.Name(), c.gate.Arity(), c.ar)
		}
		low := make([]bool, c.ar)
		one := make([]bool, c.ar)
		one[0] = true
		high := make([]bool, c.ar)
		for i := range high {
			high[i] = true
		}
		if got := c.gate.Logic(low); got != c.allLow {
			t.Errorf("%s(all low) = %v, want %v", c.gate.Name(), got, c.allLow)
		}
		if got := c.gate.Logic(one); got != c.oneHigh {
			t.Errorf("%s(one high) = %v, want %v", c.gate.Name(), got, c.oneHigh)
		}
		if got := c.gate.Logic(high); got != c.allHigh {
			t.Errorf("%s(all high) = %v, want %v", c.gate.Name(), got, c.allHigh)
		}
	}
}

func TestBenchConstructionAndIdentity(t *testing.T) {
	p := nor.DefaultParams()
	for _, name := range Names() {
		g, _ := Lookup(name)
		b, err := g.NewBench(p)
		if err != nil {
			t.Fatalf("%s: NewBench: %v", name, err)
		}
		if b.Gate().Name() != name {
			t.Errorf("%s: bench reports gate %q", name, b.Gate().Name())
		}
		if b.Params() != p {
			t.Errorf("%s: bench params differ from input", name)
		}
		// High initial inputs are rejected before any transient runs.
		high := make([]trace.Trace, g.Arity())
		high[0] = trace.Trace{Initial: true}
		if _, err := b.Golden(high, 1e-9); err == nil {
			t.Errorf("%s: golden run accepted a high initial input", name)
		}
		// Wrong input counts are rejected.
		if _, err := b.Golden(make([]trace.Trace, g.Arity()+1), 1e-9); err == nil {
			t.Errorf("%s: golden run accepted %d inputs", name, g.Arity()+1)
		}
	}
}

func TestNOR2ArcsMapping(t *testing.T) {
	c := charFromSlice([]float64{1, 2, 3, 4, 5, 6})
	arcs := NOR2Arcs(c)
	// NOR: fall measured from the first rising input, rise from the last
	// falling one.
	if arcs[0].Fall != 3 || arcs[0].Rise != 4 || arcs[1].Fall != 1 || arcs[1].Rise != 6 {
		t.Errorf("NOR2 arc mapping wrong: %+v", arcs)
	}
	nand := NAND2Arcs(c)
	// NAND: fall measured from the last rising input, rise from the
	// first falling one.
	if nand[0].Fall != 1 || nand[0].Rise != 6 || nand[1].Fall != 3 || nand[1].Rise != 4 {
		t.Errorf("NAND2 arc mapping wrong: %+v", nand)
	}
}

func TestMirrorFrameChange(t *testing.T) {
	c := charFromSlice([]float64{1, 2, 3, 4, 5, 6})
	m := c.Mirror()
	if m.FallMinusInf != 4 || m.FallZero != 5 || m.FallPlusInf != 6 ||
		m.RiseMinusInf != 1 || m.RiseZero != 2 || m.RisePlusInf != 3 {
		t.Errorf("mirror wrong: %+v", m)
	}
	if mm := m.Mirror(); mm != c {
		t.Errorf("mirror is not an involution: %+v", mm)
	}
}

func TestBuildModelsRejectsBadMeasurement(t *testing.T) {
	supply := waveform.DefaultSupply()
	// Arity mismatch.
	meas := Measurement{
		Pair: charFromSlice([]float64{30e-12, 25e-12, 30e-12, 55e-12, 55e-12, 55e-12}),
		Arcs: NOR2Arcs(charFromSlice([]float64{30e-12, 25e-12, 30e-12, 55e-12, 55e-12, 55e-12})),
	}
	if _, err := NOR3.BuildModels(meas, supply, 20e-12); err == nil {
		t.Error("3-input gate accepted a 2-arc measurement")
	}
	// Negative arc.
	meas.Arcs[0].Fall = -1
	if _, err := NOR2.BuildModels(meas, supply, 20e-12); err == nil {
		t.Error("negative arc accepted")
	}
}

// TestModelArityErrors: the 2-input model appliers reject wrong input
// counts with an error, matching the 3-input behaviour.
func TestModelArityErrors(t *testing.T) {
	nor2m := NOR2Model{P: hybrid.TableI()}
	if _, err := nor2m.Apply([]trace.Trace{{}}, 1e-9); err == nil {
		t.Error("nor2 model accepted 1 input")
	}
	nandm := NAND2Model{N: hybrid.NANDFromDual(hybrid.TableI())}
	if _, err := nandm.Apply(nil, 1e-9); err == nil {
		t.Error("nand2 model accepted 0 inputs")
	}
	nor3m := NOR3Model{P: hybrid.NOR3FromNOR2(hybrid.TableI())}
	if _, err := nor3m.Apply([]trace.Trace{{}, {}}, 1e-9); err == nil {
		t.Error("nor3 model accepted 2 inputs")
	}
}

func TestFind(t *testing.T) {
	g, err := Find("")
	if err != nil || g.Name() != Default().Name() {
		t.Errorf("Find(\"\") = %v, %v; want the default gate", g, err)
	}
	for _, name := range Names() {
		g, err := Find(name)
		if err != nil || g.Name() != name {
			t.Errorf("Find(%q) = %v, %v", name, g, err)
		}
	}
	_, err = Find("xor7")
	if err == nil {
		t.Fatal("unknown gate accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-gate error %q does not list %q", err, name)
		}
	}
}
