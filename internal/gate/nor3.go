package gate

import (
	"fmt"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// NOR3 is the 3-input CMOS NOR extension: a three-deep pMOS stack with
// two internal nodes and three parallel pull-downs — the "multi-input
// gate" direction of the paper's title beyond the 2-input case it
// evaluates. Its hybrid model is the generalized switch-level RC gate
// (hybrid.SwitchGate) extrapolated from a 2-input fit of the bench's
// pin-(0,1) projection.
var NOR3 Gate = nor3{}

func init() { Register(NOR3) }

// farPin is the input separation that parks the third pin far away from
// the pin-(0,1) projection experiments: one SIS separation beyond the
// pair's ±SISFar MIS window, so its switch neither overlaps the window
// nor the measured output transition, while keeping the dead transient
// tail after the measurement short.
const farPin = 2 * nor.SISFar

type nor3 struct{}

func (nor3) Name() string         { return "nor3" }
func (nor3) Describe() string     { return "3-input CMOS NOR extension (three-deep pMOS stack)" }
func (nor3) Arity() int           { return 3 }
func (nor3) Logic(in []bool) bool { return !(in[0] || in[1] || in[2]) }

func (nor3) NewBench(p nor.Params) (Bench, error) {
	b, err := nor.NewNOR3(p)
	if err != nil {
		return nil, err
	}
	return &NOR3Bench{B: b}, nil
}

// Stamp implements Gate: the three-deep stack with internal nodes N1
// and N2 created first. Settled voltages follow the stack conduction
// from the top: N1 is VDD while A is low, N2 is VDD while A and B are
// both low; any node cut off from VDD ends at GND (either pulled low
// through the conducting lower stack onto the low output, or isolated
// at the paper's worst case).
func (g nor3) Stamp(c *spice.Circuit, prefix, outName string, p nor.Params, vdd spice.NodeID, in []spice.NodeID, init []bool) (Subcircuit, error) {
	if err := stampArgs(g, p, in, init); err != nil {
		return Subcircuit{}, err
	}
	n1 := c.Node(prefix + "n1")
	n2 := c.Node(prefix + "n2")
	o := c.Node(outName)
	nor.StampNOR3(c, prefix, p, vdd, in[0], in[1], in[2], n1, n2, o)
	vdd0 := p.Supply.VDD
	vN1, vN2, vO := 0.0, 0.0, 0.0
	if !init[0] {
		vN1 = vdd0
		if !init[1] {
			vN2 = vdd0
		}
	}
	if g.Logic(init) {
		vO = vdd0
	}
	return Subcircuit{
		Out:      o,
		Internal: []spice.NodeID{n1, n2},
		Initial:  map[spice.NodeID]float64{n1: vN1, n2: vN2, o: vO},
	}, nil
}

func (g nor3) BuildModels(meas Measurement, supply waveform.Supply, expDMin float64) (Models, error) {
	// The pair projection is NOR-framed, so the 2-input fit applies
	// directly — but its R2 lumps the two lower stack devices (T2 plus
	// the always-on T3 of the held-low pin C), so the 3-stack model
	// splits it across them, keeping the total path resistance the fit
	// actually measured. The result drives the generalized switch-level
	// channel.
	return buildModels(g, meas, meas.Pair, supply, expDMin, func(p hybrid.Params) Model {
		return NOR3Model{P: hybrid.NOR3Params{
			RP1: p.R1, RP2: p.R2 / 2, RP3: p.R2 / 2,
			RN1: p.R3, RN2: p.R4, RN3: p.R4,
			CN1: p.CN, CN2: p.CN, CO: p.CO,
			Supply: p.Supply,
			DMin:   p.DMin,
		}}
	})
}

// NOR3Bench adapts the transistor-level 3-input NOR testbench.
type NOR3Bench struct {
	B *nor.NOR3Bench
}

// Gate implements Bench.
func (b *NOR3Bench) Gate() Gate { return NOR3 }

// Params implements Bench.
func (b *NOR3Bench) Params() nor.Params { return b.B.P }

// SolverStats exposes the underlying bench's cumulative MNA solver
// counters for traffic reporting.
func (b *NOR3Bench) SolverStats() spice.SolverStats { return b.B.SolverStats() }

// Measure implements Bench. The pair characteristic probes pins A and B
// with pin C parked far away (rising far later in the falling
// experiments, falling far earlier in the rising ones, so the measured
// output transition is a pure A/B event); the per-pin arcs add the two
// C-caused SIS delays the projection cannot see. Rising experiments use
// the paper's worst-case internal fill V = GND.
func (b *NOR3Bench) Measure() (Measurement, error) {
	var m Measurement
	far := nor.SISFar
	type probe struct {
		dst    *float64
		dB, dC float64
		rise   bool
	}
	probes := []probe{
		{&m.Pair.FallMinusInf, -far, farPin, false},
		{&m.Pair.FallZero, 0, farPin, false},
		{&m.Pair.FallPlusInf, far, farPin, false},
		{&m.Pair.RiseMinusInf, -far, -farPin, true},
		{&m.Pair.RiseZero, 0, -farPin, true},
		{&m.Pair.RisePlusInf, far, -farPin, true},
	}
	for _, p := range probes {
		var err error
		if p.rise {
			*p.dst, err = b.B.RisingDelay3(p.dB, p.dC, 0)
		} else {
			*p.dst, err = b.B.FallingDelay3(p.dB, p.dC)
		}
		if err != nil {
			return Measurement{}, fmt.Errorf("gate nor3: pair characteristic: %w", err)
		}
	}
	// Pins 0 and 1 reuse the pair mapping; pin 2 gets dedicated SIS
	// probes (C switching isolated: first for falls, last for rises).
	arcs := NOR2Arcs(m.Pair)
	cFall, err := b.B.FallingDelay3(0, -far)
	if err != nil {
		return Measurement{}, fmt.Errorf("gate nor3: pin C fall arc: %w", err)
	}
	cRise, err := b.B.RisingDelay3(-far, far, 0)
	if err != nil {
		return Measurement{}, fmt.Errorf("gate nor3: pin C rise arc: %w", err)
	}
	m.Arcs = append(arcs, inertial.PinArcs{Fall: cFall, Rise: cRise})
	return m, nil
}

// Golden implements Bench. The bench starts settled in state (0,0,0):
// output and both internal stack nodes high.
func (b *NOR3Bench) Golden(inputs []trace.Trace, until float64) (trace.Trace, error) {
	if len(inputs) != 3 {
		return trace.Trace{}, fmt.Errorf("gate nor3: want 3 inputs, got %d", len(inputs))
	}
	sigs, bps, err := InputSignals(b.B.P, inputs)
	if err != nil {
		return trace.Trace{}, err
	}
	supply := b.B.P.Supply
	vdd := supply.VDD
	o, err := b.B.Run(sigs[0], sigs[1], sigs[2], until, vdd, vdd, vdd, bps)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("gate nor3: golden transient: %w", err)
	}
	return trace.Digitize(o, supply.Vth), nil
}

// NOR3Model applies the generalized switch-level hybrid channel of the
// 3-input NOR.
type NOR3Model struct {
	P hybrid.NOR3Params
}

// Apply implements Model. Internal nodes isolated by the initial input
// state are filled with the paper's worst case GND (irrelevant for
// all-low starts, where the pMOS stack drives every node).
func (m NOR3Model) Apply(in []trace.Trace, until float64) (trace.Trace, error) {
	return hybrid.ApplyGate(m.P.Gate(), in, until, 0)
}

// String implements Model.
func (m NOR3Model) String() string { return m.P.String() }
