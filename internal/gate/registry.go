package gate

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry maps gate names to their implementations. Gates register in
// init functions; lookups happen from many goroutines.
var registry = struct {
	mu    sync.RWMutex
	gates map[string]Gate
}{gates: map[string]Gate{}}

// Register adds a gate under its Name. It panics on an empty name or a
// duplicate registration — both are programming errors.
func Register(g Gate) {
	name := g.Name()
	if name == "" {
		panic("gate: Register with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.gates[name]; dup {
		panic(fmt.Sprintf("gate: duplicate registration of %q", name))
	}
	registry.gates[name] = g
}

// Lookup returns the gate registered under name.
func Lookup(name string) (Gate, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	g, ok := registry.gates[name]
	return g, ok
}

// Find resolves name against the registry, treating the empty string as
// the default gate. Unknown names error with the registered names, so
// callers surface a uniform, actionable message.
func Find(name string) (Gate, error) {
	if name == "" {
		return Default(), nil
	}
	g, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown gate %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return g, nil
}

// Names lists the registered gate names in sorted order.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.gates))
	for name := range registry.gates {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the paper's gate, the 2-input NOR.
func Default() Gate { return NOR2 }
