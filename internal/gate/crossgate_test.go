package gate

import (
	"math"
	"testing"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

func charFromSlice(v []float64) hybrid.Characteristic {
	return hybrid.Characteristic{
		FallMinusInf: v[0], FallZero: v[1], FallPlusInf: v[2],
		RiseMinusInf: v[3], RiseZero: v[4], RisePlusInf: v[5],
	}
}

// testBenchParams uses the coarser integrator step of the other analog
// tests (delay error well below the effects asserted here).
func testBenchParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// TestCrossGateInvariants measures every registered gate through the
// generic pipeline and asserts the structural predictions of the paper's
// analysis: all characteristic and per-pin SIS delays are positive and
// finite, and the serial-stack output direction is slower than the
// parallel one (the NOR's pMOS stack slows the rise, the NAND's mirrored
// nMOS stack slows the fall, and the three-deep NOR3 stack is slower
// than the two-deep NOR2 stack).
func TestCrossGateInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("analog characteristic measurements in -short mode")
	}
	p := testBenchParams()
	meas := map[string]Measurement{}
	for _, name := range Names() {
		g, _ := Lookup(name)
		b, err := g.NewBench(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := b.Measure()
		if err != nil {
			t.Fatalf("%s: Measure: %v", name, err)
		}
		meas[name] = m

		for i, d := range m.Pair.AsSlice() {
			if !(d > 0) || math.IsInf(d, 0) {
				t.Errorf("%s: pair characteristic[%d] = %g, want positive finite", name, i, d)
			}
		}
		if len(m.Arcs) != g.Arity() {
			t.Fatalf("%s: %d arcs for arity %d", name, len(m.Arcs), g.Arity())
		}
		for pin, a := range m.Arcs {
			if !(a.Fall > 0) || math.IsInf(a.Fall, 0) || !(a.Rise > 0) || math.IsInf(a.Rise, 0) {
				t.Errorf("%s: pin %d arcs %+v, want positive finite", name, pin, a)
			}
		}
	}

	// Mean SIS delay of the serial-stack direction vs the parallel one.
	stackVsParallel := func(m Measurement, stackIsRise bool) (stack, par float64) {
		rise := 0.5 * (m.Pair.RiseMinusInf + m.Pair.RisePlusInf)
		fall := 0.5 * (m.Pair.FallMinusInf + m.Pair.FallPlusInf)
		if stackIsRise {
			return rise, fall
		}
		return fall, rise
	}
	if s, par := stackVsParallel(meas["nor2"], true); s <= par {
		t.Errorf("nor2: stack rise %g <= parallel fall %g", s, par)
	}
	if s, par := stackVsParallel(meas["nor3"], true); s <= par {
		t.Errorf("nor3: stack rise %g <= parallel fall %g", s, par)
	}
	// The NAND mirrors: its serial nMOS stack drives the falling output.
	if s, par := stackVsParallel(meas["nand2"], false); s <= par {
		t.Errorf("nand2: stack fall %g <= parallel rise %g", s, par)
	}
	// Deeper stack, slower serial direction: NOR3's pair projection goes
	// through three stacked pMOS, NOR2's through two.
	nor3Rise := 0.5 * (meas["nor3"].Pair.RiseMinusInf + meas["nor3"].Pair.RisePlusInf)
	nor2Rise := 0.5 * (meas["nor2"].Pair.RiseMinusInf + meas["nor2"].Pair.RisePlusInf)
	if nor3Rise <= nor2Rise {
		t.Errorf("nor3 stack rise %g <= nor2 stack rise %g", nor3Rise, nor2Rise)
	}
	// The pin-C arcs of the NOR3 sit in the same ballpark as the pair
	// pins: within a factor of three of pin B's arcs.
	cb := meas["nor3"].Arcs[2]
	bb := meas["nor3"].Arcs[1]
	if cb.Fall > 3*bb.Fall || cb.Rise > 3*bb.Rise || 3*cb.Fall < bb.Fall || 3*cb.Rise < bb.Rise {
		t.Errorf("nor3 pin C arcs %+v out of range of pin B arcs %+v", cb, bb)
	}
}

// TestCrossGateModels builds the full model set for every registered
// gate from its own measurement, drives golden bench and hybrid models
// with a deterministic multi-edge stimulus, and checks that every
// produced trace is well-formed and settles to the gate's boolean value
// of the final input state.
func TestCrossGateModels(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	p := testBenchParams()
	for _, name := range Names() {
		g, _ := Lookup(name)
		b, err := g.NewBench(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		meas, err := b.Measure()
		if err != nil {
			t.Fatalf("%s: Measure: %v", name, err)
		}
		models, err := g.BuildModels(meas, p.Supply, 20e-12)
		if err != nil {
			t.Fatalf("%s: BuildModels: %v", name, err)
		}
		if models.Gate.Name() != name {
			t.Errorf("%s: models tagged with gate %q", name, models.Gate.Name())
		}

		// Stimulus: every input pulses high once, staggered by 150 ps,
		// ending with all inputs low again.
		inputs := make([]trace.Trace, g.Arity())
		finals := make([]bool, g.Arity())
		for i := range inputs {
			t0 := 400e-12 + float64(i)*150e-12
			inputs[i] = trace.New(false, []trace.Event{
				{Time: t0, Value: true},
				{Time: t0 + 500e-12, Value: false},
			})
		}
		until := 2.5e-9
		want := g.Logic(finals)

		golden, err := b.Golden(inputs, until)
		if err != nil {
			t.Fatalf("%s: golden run: %v", name, err)
		}
		outs := map[string]trace.Trace{
			"golden":   golden,
			"inertial": models.Inertial.Apply(g.Logic, inputs...),
		}
		if outs["hm"], err = models.HM.Apply(inputs, until); err != nil {
			t.Fatalf("%s: hm apply: %v", name, err)
		}
		if outs["hm0"], err = models.HMNoDMin.Apply(inputs, until); err != nil {
			t.Fatalf("%s: hm0 apply: %v", name, err)
		}
		for label, tr := range outs {
			if err := tr.Validate(); err != nil {
				t.Errorf("%s/%s: invalid trace: %v", name, label, err)
			}
			if tr.Final() != want {
				t.Errorf("%s/%s: settles to %v, want %v", name, label, tr.Final(), want)
			}
		}
	}
}
