// Package idm implements involution delay model (IDM) channels
// [Függer et al. 2020], in particular the exponential channel
// ("Exp-Channel") the paper uses to represent the IDM in its accuracy
// comparison (§VI), and the SumExp channel mentioned as the previously
// most complex Involution Tool channel.
//
// An IDM channel is characterized by delay functions delta_up/down(T),
// where T is the previous-output-to-input delay; faithfulness requires
// the negative involution property
//
//	-delta_up(-delta_down(T)) = T   and   -delta_down(-delta_up(T)) = T.
//
// The exp channel arises from a first-order analog model: after a pure
// delay dmin, the output drives exponentially toward the rail with time
// constant tau_up (tau_down), and delays are threshold-to-threshold
// times. Solving the threshold crossings yields
//
//	delta_up(T)   = dmin + tau_up   * ln(2 - e^{-(T + dmin)/tau_down})
//	delta_down(T) = dmin + tau_down * ln(2 - e^{-(T + dmin)/tau_up})
//
// which satisfies the involution property by construction.
package idm

import (
	"fmt"
	"math"
)

// Exp is the exponential involution channel.
type Exp struct {
	TauUp   float64 // rising trajectory time constant [s]
	TauDown float64 // falling trajectory time constant [s]
	DMin    float64 // pure delay [s]
}

// NewExp validates and constructs an exp channel.
func NewExp(tauUp, tauDown, dmin float64) (Exp, error) {
	if tauUp <= 0 || tauDown <= 0 {
		return Exp{}, fmt.Errorf("idm: time constants must be positive (up=%g, down=%g)", tauUp, tauDown)
	}
	if dmin < 0 {
		return Exp{}, fmt.Errorf("idm: negative pure delay %g", dmin)
	}
	return Exp{TauUp: tauUp, TauDown: tauDown, DMin: dmin}, nil
}

// ExpFromSIS builds the channel from target single-input-switching
// delays: delta_up(inf) = dUpInf and delta_down(inf) = dDownInf, with the
// given pure delay (the paper determines dmin = 20 ps empirically). The
// time constants follow from delta(inf) = dmin + tau ln 2.
func ExpFromSIS(dUpInf, dDownInf, dmin float64) (Exp, error) {
	if dUpInf <= dmin || dDownInf <= dmin {
		return Exp{}, fmt.Errorf("idm: SIS delays (%g, %g) must exceed the pure delay %g", dUpInf, dDownInf, dmin)
	}
	return NewExp((dUpInf-dmin)/math.Ln2, (dDownInf-dmin)/math.Ln2, dmin)
}

// DelayUp implements dtsim.DelayFunc.
func (e Exp) DelayUp(T float64) float64 {
	return e.DMin + e.TauUp*logArg(T, e.DMin, e.TauDown)
}

// DelayDown implements dtsim.DelayFunc.
func (e Exp) DelayDown(T float64) float64 {
	return e.DMin + e.TauDown*logArg(T, e.DMin, e.TauUp)
}

// logArg evaluates ln(2 - e^{-(T+dmin)/tauPrev}) with domain clamping:
// for T at or below the domain boundary -dmin - tauPrev ln 2 the channel
// delay tends to -inf, meaning the pulse cannot be transmitted at all;
// we return -inf and let the cancellation rule annihilate the pulse.
func logArg(T, dmin, tauPrev float64) float64 {
	arg := 2 - math.Exp(-(T+dmin)/tauPrev)
	if arg <= 0 {
		return math.Inf(-1)
	}
	return math.Log(arg)
}

// DelayUpInf returns delta_up(inf) = dmin + tau_up ln 2.
func (e Exp) DelayUpInf() float64 { return e.DMin + e.TauUp*math.Ln2 }

// DelayDownInf returns delta_down(inf) = dmin + tau_down ln 2.
func (e Exp) DelayDownInf() float64 { return e.DMin + e.TauDown*math.Ln2 }

// SumExp is a channel whose switching waveform is a weighted sum of two
// exponentials (the "SumExp-Channel" of the Involution Tool, whose VHDL
// implementation required numeric inversion of the trajectory). The
// rising output waveform after the pure delay is
//
//	V(t) = 1 - (w e^{-t/tau1} + (1-w) e^{-t/tau2}) * (1 - V0)
//
// normalized to [0, 1] with threshold 1/2; falling is symmetric. Because
// the trajectory is not analytically invertible, threshold crossings are
// found by monotone bisection, mirroring the original implementation.
type SumExp struct {
	Tau1, Tau2 float64 // the two time constants [s]
	W          float64 // weight of tau1 in (0, 1]
	DMin       float64 // pure delay [s]
}

// NewSumExp validates and constructs a SumExp channel.
func NewSumExp(tau1, tau2, w, dmin float64) (SumExp, error) {
	if tau1 <= 0 || tau2 <= 0 {
		return SumExp{}, fmt.Errorf("idm: time constants must be positive (%g, %g)", tau1, tau2)
	}
	if w <= 0 || w > 1 {
		return SumExp{}, fmt.Errorf("idm: weight %g outside (0, 1]", w)
	}
	if dmin < 0 {
		return SumExp{}, fmt.Errorf("idm: negative pure delay %g", dmin)
	}
	return SumExp{Tau1: tau1, Tau2: tau2, W: w, DMin: dmin}, nil
}

// decay evaluates the normalized remaining distance to the rail,
// w e^{-t/tau1} + (1-w) e^{-t/tau2}, a strictly decreasing function.
func (s SumExp) decay(t float64) float64 {
	return s.W*math.Exp(-t/s.Tau1) + (1-s.W)*math.Exp(-t/s.Tau2)
}

// invertDecay solves decay(t) = y for t >= 0 by bisection (y in (0, 1]).
func (s SumExp) invertDecay(y float64) float64 {
	if y >= 1 {
		return 0
	}
	lo, hi := 0.0, math.Max(s.Tau1, s.Tau2)
	for s.decay(hi) > y {
		hi *= 2
		if hi > 1e6*(s.Tau1+s.Tau2) {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if hi-lo <= 1e-18 {
			return mid
		}
		if s.decay(mid) > y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// DelayUp implements dtsim.DelayFunc. The previous falling trajectory
// determines the voltage V0 at which the rising drive starts; the delay
// is dmin plus the time for the rising trajectory to recross 1/2.
func (s SumExp) DelayUp(T float64) float64 {
	return s.delay(T)
}

// DelayDown implements dtsim.DelayFunc (the channel is symmetric).
func (s SumExp) DelayDown(T float64) float64 {
	return s.delay(T)
}

func (s SumExp) delay(T float64) float64 {
	// Previous trajectory: passed 1/2 at its own threshold instant and
	// decays; at the switch instant (T + dmin later) the remaining
	// distance is (1/2) * decay(T + dmin) from the departed rail, so the
	// distance to the target rail is 1 - (1/2) decay(T + dmin).
	tEff := T + s.DMin
	var start float64
	if tEff < 0 {
		// The input arrived before the previous output crossing: walk the
		// previous trajectory backward (it is still above threshold).
		// Solve decay(t*) continuation; for tEff < 0 the previous output
		// had not yet reached 1/2, distance > 1/2.
		start = 1 - 0.5*s.decayExtended(tEff)
	} else {
		start = 1 - 0.5*s.decay(tEff)
	}
	if start <= 0.5 {
		return math.Inf(-1) // pulse cannot be transmitted
	}
	// Rising from V0 = 1 - start toward 1: remaining distance start
	// shrinks by factor decay(u); crossing 1/2 when start*decay(u) = 1/2.
	u := s.invertDecay(0.5 / start)
	return s.DMin + u
}

// decayExtended extends the decay function to negative times by linear
// extrapolation of its logarithm (the dominant time constant), keeping
// the delay function continuous at the domain boundary.
func (s SumExp) decayExtended(t float64) float64 {
	if t >= 0 {
		return s.decay(t)
	}
	tau := math.Max(s.Tau1, s.Tau2)
	return math.Exp(-t / tau) // > 1 for t < 0
}

// Involution checks: see idm_test.go for the property tests pinning
// -delta_up(-delta_down(T)) = T on Exp channels.
