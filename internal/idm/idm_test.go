package idm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewExpValidation(t *testing.T) {
	if _, err := NewExp(0, 1, 0); err == nil {
		t.Error("expected error for zero tau")
	}
	if _, err := NewExp(1, -1, 0); err == nil {
		t.Error("expected error for negative tau")
	}
	if _, err := NewExp(1, 1, -1); err == nil {
		t.Error("expected error for negative dmin")
	}
}

func TestExpSISLimits(t *testing.T) {
	e, err := ExpFromSIS(60e-12, 35e-12, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.DelayUpInf()-60e-12) > 1e-20 {
		t.Errorf("delta_up(inf) = %g, want 60 ps", e.DelayUpInf())
	}
	if math.Abs(e.DelayDownInf()-35e-12) > 1e-20 {
		t.Errorf("delta_down(inf) = %g, want 35 ps", e.DelayDownInf())
	}
	// delta(T) approaches delta(inf) for large T.
	if d := e.DelayUp(1e-6); math.Abs(d-e.DelayUpInf()) > 1e-15 {
		t.Errorf("delta_up at large T = %g, want %g", d, e.DelayUpInf())
	}
}

func TestExpFromSISValidation(t *testing.T) {
	if _, err := ExpFromSIS(10e-12, 35e-12, 20e-12); err == nil {
		t.Error("expected error: SIS delay below pure delay")
	}
}

// TestExpInvolutionProperty pins the defining IDM property
// -delta_up(-delta_down(T)) = T and its dual, for random channels and
// arguments across the whole domain.
func TestExpInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewExp(
			(1+9*rng.Float64())*1e-12*10,
			(1+9*rng.Float64())*1e-12*10,
			rng.Float64()*20e-12,
		)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			// T ranges over the channel domain: delta must stay finite.
			// Keep T within a few time constants: for T >> tau the term
			// e^{-T/tau} underflows against the constant 2 and the
			// involution is no longer numerically invertible (the delay
			// has saturated at delta(inf) to machine precision).
			T := math.Exp(rng.Float64()*5-2) * 1e-12
			if rng.Intn(2) == 0 {
				T = -T * 0.3 // probe negative T within the domain
			}
			dd := e.DelayDown(T)
			if math.IsInf(dd, 0) {
				continue // outside the domain: pulse annihilates instead
			}
			back := -e.DelayUp(-dd)
			if math.Abs(back-T) > 1e-22+1e-9*math.Abs(T) {
				return false
			}
			du := e.DelayUp(T)
			if math.IsInf(du, 0) {
				continue
			}
			back2 := -e.DelayDown(-du)
			if math.Abs(back2-T) > 1e-22+1e-9*math.Abs(T) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestExpMonotone: delay functions are strictly increasing in T (longer
// recovery -> longer delay) and bounded by delta(inf).
func TestExpMonotone(t *testing.T) {
	e, err := NewExp(50e-12, 30e-12, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for T := -20e-12; T < 500e-12; T += 1e-12 {
		d := e.DelayUp(T)
		if math.IsInf(d, -1) {
			continue
		}
		if d < prev {
			t.Fatalf("delta_up not monotone at T=%g", T)
		}
		if d > e.DelayUpInf()+1e-18 {
			t.Fatalf("delta_up exceeds its limit at T=%g", T)
		}
		prev = d
	}
}

func TestExpDomainBoundary(t *testing.T) {
	e, _ := NewExp(50e-12, 30e-12, 10e-12)
	// Far below the domain the delay is -inf (pulse cannot pass).
	if d := e.DelayUp(-1e-9); !math.IsInf(d, -1) {
		t.Errorf("expected -inf outside the domain, got %g", d)
	}
}

func TestNewSumExpValidation(t *testing.T) {
	if _, err := NewSumExp(0, 1, 0.5, 0); err == nil {
		t.Error("expected error for zero tau1")
	}
	if _, err := NewSumExp(1, 1, 0, 0); err == nil {
		t.Error("expected error for zero weight")
	}
	if _, err := NewSumExp(1, 1, 1.5, 0); err == nil {
		t.Error("expected error for weight > 1")
	}
	if _, err := NewSumExp(1, 1, 0.5, -1); err == nil {
		t.Error("expected error for negative dmin")
	}
}

// TestSumExpReducesToExp: with w = 1 and equal taus the SumExp channel
// coincides with the symmetric Exp channel.
func TestSumExpReducesToExp(t *testing.T) {
	tau := 40e-12
	dmin := 10e-12
	se, err := NewSumExp(tau, tau, 1, dmin)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExp(tau, tau, dmin)
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []float64{0, 5e-12, 20e-12, 100e-12, 1e-9} {
		a := se.DelayUp(T)
		b := ex.DelayUp(T)
		if math.Abs(a-b) > 1e-15 {
			t.Errorf("T=%g: sumexp %g vs exp %g", T, a, b)
		}
	}
}

func TestSumExpMonotone(t *testing.T) {
	se, err := NewSumExp(30e-12, 80e-12, 0.6, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for T := 0.0; T < 400e-12; T += 2e-12 {
		d := se.DelayUp(T)
		if math.IsInf(d, -1) {
			continue
		}
		if d < prev-1e-18 {
			t.Fatalf("sumexp delay not monotone at T=%g (%g < %g)", T, d, prev)
		}
		prev = d
	}
}

func TestSumExpInvertDecay(t *testing.T) {
	se, _ := NewSumExp(30e-12, 80e-12, 0.6, 0)
	for _, y := range []float64{0.9, 0.5, 0.1, 0.01} {
		tm := se.invertDecay(y)
		if got := se.decay(tm); math.Abs(got-y) > 1e-7 {
			t.Errorf("invertDecay(%g): decay(%g) = %g", y, tm, got)
		}
	}
	if se.invertDecay(1.5) != 0 {
		t.Error("invertDecay above 1 should clamp to 0")
	}
}
