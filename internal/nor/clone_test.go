package nor

import (
	"sync"
	"testing"
)

// TestBenchClone: clones share parameters but no simulator state — the
// same delay query on the original and on concurrently running clones
// must agree exactly (run under -race in CI).
func TestBenchClone(t *testing.T) {
	p := DefaultParams()
	p.MaxStep = 8e-12
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}

	const clones = 3
	got := make([]float64, clones)
	errs := make([]error, clones)
	var wg sync.WaitGroup
	for i := 0; i < clones; i++ {
		c, err := b.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if c == b || c.circuit == b.circuit {
			t.Fatal("clone shares the netlist with the original")
		}
		if c.P != b.P {
			t.Fatalf("clone params %+v differ from original %+v", c.P, b.P)
		}
		wg.Add(1)
		go func(i int, c *Bench) {
			defer wg.Done()
			got[i], errs[i] = c.FallingDelay(0)
		}(i, c)
	}
	wg.Wait()
	for i := 0; i < clones; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != want {
			t.Errorf("clone %d delay %g != original %g", i, got[i], want)
		}
	}
}
