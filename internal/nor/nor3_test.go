package nor

import (
	"testing"

	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/waveform"
)

func newNOR3(t *testing.T) *NOR3Bench {
	t.Helper()
	p := DefaultParams()
	p.MaxStep = 8e-12
	b, err := NewNOR3(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNOR3Validation(t *testing.T) {
	p := DefaultParams()
	p.CO = 0
	if _, err := NewNOR3(p); err == nil {
		t.Error("zero CO accepted")
	}
	p = DefaultParams()
	p.Supply = waveform.Supply{}
	if _, err := NewNOR3(p); err == nil {
		t.Error("invalid supply accepted")
	}
	p = DefaultParams()
	p.InputRise = 0
	if _, err := NewNOR3(p); err == nil {
		t.Error("zero rise accepted")
	}
}

// TestNOR3AnalogMISOrdering: the analog 3-input gate shows the
// three-level falling MIS hierarchy the generalized hybrid model
// predicts: all-simultaneous < pairwise < SIS.
func TestNOR3AnalogMISOrdering(t *testing.T) {
	b := newNOR3(t)
	all, err := b.FallingDelay3(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := b.FallingDelay3(0, SISFar)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := b.FallingDelay3(SISFar, 2*SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if !(all < two && two < sis) {
		t.Errorf("analog 3-input MIS ordering broken: all=%.2fps two=%.2fps sis=%.2fps",
			waveform.ToPs(all), waveform.ToPs(two), waveform.ToPs(sis))
	}
	// The three-way dip is deeper than the two-way one.
	dip3 := (all - sis) / sis
	dip2 := (two - sis) / sis
	if !(dip3 < dip2 && dip3 < -0.3) {
		t.Errorf("dips: three-way %.1f%%, two-way %.1f%%", 100*dip3, 100*dip2)
	}
}

// TestNOR3AnalogRisingStack: the three-deep stack slows the rising
// output relative to the 2-input gate, and discharged internal nodes
// (worst case) are slower than precharged ones.
func TestNOR3AnalogRisingStack(t *testing.T) {
	b3 := newNOR3(t)
	p2 := DefaultParams()
	p2.MaxStep = 8e-12
	b2, err := New(p2)
	if err != nil {
		t.Fatal(err)
	}
	rise3, err := b3.RisingDelay3(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rise2, err := b2.RisingDelay(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rise3 <= rise2 {
		t.Errorf("NOR3 rise(0)=%.2fps should exceed NOR2 rise(0)=%.2fps",
			waveform.ToPs(rise3), waveform.ToPs(rise2))
	}
	worst, err := b3.RisingDelay3(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := b3.RisingDelay3(0, 0, b3.P.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if pre >= worst {
		t.Errorf("precharged stack (%.2fps) should be faster than discharged (%.2fps)",
			waveform.ToPs(pre), waveform.ToPs(worst))
	}
}

// TestNOR3ModelTracksAnalog: the generalized switch-level model,
// parametrized by a least-squares-free direct mapping from the 2-input
// fit, tracks the analog 3-input MIS *shape* (ordering and rough dip
// depth), which is the same standard the paper's Fig. 5 holds the
// 2-input model to.
func TestNOR3ModelTracksAnalog(t *testing.T) {
	// This test compares shapes, not absolute ps (the 3-input model is
	// extrapolated, not fitted).
	b := newNOR3(t)
	all, err := b.FallingDelay3(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := b.FallingDelay3(SISFar, 2*SISFar)
	if err != nil {
		t.Fatal(err)
	}
	analogDip := (all - sis) / sis

	// Model: extrapolate from a fit against the 2-input golden bench.
	p2 := DefaultParams()
	p2.MaxStep = 8e-12
	// Reuse the known-good archived characteristic rather than refitting
	// (cheap and deterministic): measured values of the default bench.
	// (See eval tests for the full fit path.)
	_ = p2
	model := hybrid.NOR3FromNOR2(hybrid.TableI())
	mc, err := model.Characteristic3()
	if err != nil {
		t.Fatal(err)
	}
	modelDip := (mc.FallAllZero - mc.FallSIS) / mc.FallSIS
	if analogDip > -0.25 || modelDip > -0.25 {
		t.Errorf("three-way dips too shallow: analog %.1f%%, model %.1f%%", 100*analogDip, 100*modelDip)
	}
	// Both should land in the same broad band (the ideal-switch model
	// overshoots the dip, as in the 2-input case).
	if modelDip < analogDip-0.35 || modelDip > analogDip+0.35 {
		t.Errorf("model dip %.1f%% far from analog dip %.1f%%", 100*modelDip, 100*analogDip)
	}
}
