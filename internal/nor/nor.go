// Package nor builds the transistor-level 2-input CMOS NOR testbench of
// the paper's Fig. 1 on top of the spice package and measures its MIS
// (multiple-input-switching, "Charlie effect") delays. It plays the role
// of the Spectre + FreePDK15 golden reference: Fig. 2 of the paper is a
// product of this package.
//
// Topology (Fig. 1): the pMOS transistors T1 (gate A) and T2 (gate B) are
// stacked in series from VDD through the internal node N to the output O;
// the nMOS transistors T3 (gate A) and T4 (gate B) pull O to ground in
// parallel. C_N loads the internal node, C_O the output.
package nor

import (
	"fmt"
	"math"

	"hybriddelay/internal/spice"
	"hybriddelay/internal/waveform"
)

// Params describes the testbench. The default values are calibrated so
// that the SIS delays land in the paper's ballpark (delta_fall 28-40 ps,
// delta_rise 53-56 ps at VDD = 0.8 V) while keeping the structural MIS
// mechanisms (parallel pull-down, serial pull-up, Miller coupling) intact.
type Params struct {
	Supply waveform.Supply

	// Per-transistor device models following Fig. 1: T1 (pMOS, gate A,
	// VDD->N), T2 (pMOS, gate B, N->O), T3 (nMOS, gate A, O->GND),
	// T4 (nMOS, gate B, O->GND).
	T1, T2, T3, T4 spice.MOSParams

	CN float64 // internal-node capacitance [F]
	CO float64 // output load capacitance [F]

	InputRise float64 // input edge duration (20%-80% spans most of it) [s]

	// Transient accuracy knobs.
	MaxStep float64                 // max integrator step [s]
	LTETol  float64                 // step-control voltage tolerance [V]
	Method  spice.IntegrationMethod // charge integration scheme (default trapezoidal)

	// Solver selects the linear-solver strategy of the golden
	// transients (default spice.DenseExact, the bit-identical path).
	// It is part of the parametrization, so golden traces and fitted
	// operating points computed under different solver modes never
	// share cache or store entries.
	Solver spice.SolverMode

	// SparsePivotRel, when positive, tunes the SparseFast symbolic
	// pilot's pivot admissibility threshold (stability vs fill; see
	// spice.TransientOptions.SparsePivotRel). Zero selects the sparse
	// package default; DenseExact ignores it. Like Solver it is part
	// of the parametrization, and it joins the symbolic cache key, so
	// differently-tuned operating points never share an analysis.
	SparsePivotRel float64
}

// DefaultParams returns the calibrated testbench configuration.
func DefaultParams() Params {
	nmos := spice.MOSParams{
		PMOS:   false,
		VT0:    0.2,
		K:      70e-6,
		Lambda: 0.25,
		Cgs:    0.03e-15,
		Cgd:    0.02e-15,
		Cdb:    0.05e-15,
		Gmin:   1e-12,
	}
	pmos := spice.MOSParams{
		PMOS:   true,
		VT0:    0.2,
		K:      68e-6,
		Lambda: 0.25,
		Cgs:    0.02e-15,
		Cgd:    0.008e-15,
		Cdb:    0.05e-15,
		Gmin:   1e-12,
	}
	// T1 is drawn stronger than T2: this shrinks the spurious
	// delta_rise(-inf) vs delta_rise(+inf) gap the ideal series stack
	// would otherwise exhibit, bringing the rising tails to the ~4-7%
	// separation the paper reports for FreePDK15.
	pmosTop := pmos
	pmosTop.K = 95e-6
	return Params{
		Supply:    waveform.DefaultSupply(),
		T1:        pmosTop,
		T2:        pmos,
		T3:        nmos,
		T4:        nmos,
		CN:        0.03e-15,
		CO:        0.66e-15,
		InputRise: 50e-12,
		MaxStep:   4e-12,
		LTETol:    2e-4,
	}
}

// Bench is an instantiated NOR testbench.
//
// A Bench is not safe for concurrent use: Run swaps the input-source
// signals in place and the underlying spice devices integrate charge
// state across timesteps. Use Clone to give each goroutine its own
// instance.
type Bench struct {
	P Params

	circuit *spice.Circuit
	solver  *spice.Solver
	nodeA   spice.NodeID
	nodeB   spice.NodeID
	nodeN   spice.NodeID
	nodeO   spice.NodeID
	srcA    *spice.VSource
	srcB    *spice.VSource
}

// ValidateParams checks the parameter invariants shared by every bench
// topology built from Params (NOR2, NAND2, NOR3 and netlist-composed
// circuits). kind names the caller in error messages.
func ValidateParams(kind string, p Params) error {
	if !p.Supply.Valid() {
		return fmt.Errorf("%s: invalid supply %+v", kind, p.Supply)
	}
	if p.CN <= 0 || p.CO <= 0 {
		return fmt.Errorf("%s: capacitances must be positive (CN=%g, CO=%g)", kind, p.CN, p.CO)
	}
	if p.InputRise <= 0 {
		return fmt.Errorf("%s: input rise time must be positive", kind)
	}
	if p.SparsePivotRel < 0 || p.SparsePivotRel >= 1 {
		return fmt.Errorf("%s: sparse pivot threshold must be in [0, 1), got %g", kind, p.SparsePivotRel)
	}
	return nil
}

// SymbolicScope derives a solver's symbolic-cache scope from a bench
// kind and its full parameter set. The scope pins the symbolic pilot
// to one operating point: clones and pool instances of the same bench
// share one analysis, while benches differing in any parameter (and
// therefore in representative matrix values) never race to seed each
// other's static pivot order. Params is a pure value type, so the
// rendered form is deterministic and collision-free per kind.
func SymbolicScope(kind string, p Params) string {
	return fmt.Sprintf("%s|%+v", kind, p)
}

// StampNOR2 writes the Fig. 1 NOR devices into c between existing nodes:
// the pMOS stack VDD -> N -> O, the parallel nMOS pull-downs and the
// internal/output load capacitors. Device names carry the given prefix
// so several instances can share one circuit. The standalone bench and
// the netlist composer both stamp through this helper, so the composed
// topology can never drift from the golden-reference one; the device
// order is part of the contract (MNA stamping order affects the
// floating-point sums, and the single-gate composed circuit must stay
// bit-identical to the bench).
func StampNOR2(c *spice.Circuit, prefix string, p Params, vdd, a, b, n, o spice.NodeID) {
	c.AddMOSFET(prefix+"T1", n, a, vdd, p.T1)
	c.AddMOSFET(prefix+"T2", o, b, n, p.T2)
	c.AddMOSFET(prefix+"T3", o, a, spice.Ground, p.T3)
	c.AddMOSFET(prefix+"T4", o, b, spice.Ground, p.T4)
	c.AddCapacitor(prefix+"Cn", n, spice.Ground, p.CN)
	c.AddCapacitor(prefix+"Co", o, spice.Ground, p.CO)
}

// New builds the testbench netlist with placeholder (constant-low) input
// sources; Run substitutes per-experiment stimuli.
func New(p Params) (*Bench, error) {
	if err := ValidateParams("nor", p); err != nil {
		return nil, err
	}
	b := &Bench{P: p}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	b.nodeA = c.Node("a")
	b.nodeB = c.Node("b")
	b.nodeN = c.Node("n")
	b.nodeO = c.Node("o")

	c.AddDCVSource("Vdd", vdd, spice.Ground, p.Supply.VDD)
	b.srcA = c.AddVSource("Va", b.nodeA, spice.Ground, waveform.Constant(0))
	b.srcB = c.AddVSource("Vb", b.nodeB, spice.Ground, waveform.Constant(0))

	StampNOR2(c, "", p, vdd, b.nodeA, b.nodeB, b.nodeN, b.nodeO)

	b.circuit = c
	// One persistent solver per bench: the circuit is validated once here
	// and every Run reuses the same MNA workspace (matrix, RHS, LU)
	// instead of re-allocating it per transient. Results are
	// bit-identical to the per-call solver.
	sv, err := spice.NewSolver(c)
	if err != nil {
		return nil, err
	}
	sv.SetSymbolicScope(SymbolicScope("nor2", p))
	b.solver = sv
	return b, nil
}

// Clone returns an independent bench with identical parameters and a
// freshly built netlist. Params is a pure value type (scalars and value
// structs only), so the clone shares no state with the original; clones
// may run transients concurrently with it.
func (b *Bench) Clone() (*Bench, error) {
	return New(b.P)
}

// Result bundles the waveforms of one transient run.
type Result struct {
	A, B, N, O *waveform.Waveform
	Supply     waveform.Supply
}

// transient runs one solver transient with the bench's step policy,
// recording the given nodes. Record selection only affects capture —
// the integrator's arithmetic (and hence every recorded sample) is
// identical regardless of which nodes are kept.
func (b *Bench) transient(sigA, sigB waveform.Signal, tStop float64, vN0, vO0 float64, breakpoints []float64, record []spice.NodeID) (*spice.TransientResult, error) {
	b.srcA.Signal = sigA
	b.srcB.Signal = sigB
	return b.solver.Transient(spice.TransientOptions{
		TStart:         0,
		TStop:          tStop,
		MaxStep:        b.P.MaxStep,
		LTETol:         b.P.LTETol,
		Method:         b.P.Method,
		Solver:         b.P.Solver,
		SparsePivotRel: b.P.SparsePivotRel,
		Breakpoints:    append([]float64(nil), breakpoints...),
		InitialConditions: map[spice.NodeID]float64{
			b.nodeN: vN0,
			b.nodeO: vO0,
		},
		Record: record,
	})
}

// Run drives the bench with the given input signals over [0, tStop],
// starting from the supplied initial node voltages for N and O (the
// inputs and rails are held by their sources).
func (b *Bench) Run(sigA, sigB waveform.Signal, tStop float64, vN0, vO0 float64, breakpoints []float64) (*Result, error) {
	res, err := b.transient(sigA, sigB, tStop, vN0, vO0, breakpoints,
		[]spice.NodeID{b.nodeA, b.nodeB, b.nodeN, b.nodeO})
	if err != nil {
		return nil, err
	}
	wa, err := res.Waveform(b.nodeA)
	if err != nil {
		return nil, err
	}
	wb, err := res.Waveform(b.nodeB)
	if err != nil {
		return nil, err
	}
	wn, err := res.Waveform(b.nodeN)
	if err != nil {
		return nil, err
	}
	wo, err := res.Waveform(b.nodeO)
	if err != nil {
		return nil, err
	}
	return &Result{A: wa, B: wb, N: wn, O: wo, Supply: b.P.Supply}, nil
}

// RunOutput is Run restricted to the output node: the same transient
// (bit-identical output samples), but only V(O) is captured and built
// into a waveform. The golden evaluation path digitizes nothing but the
// output, and on long random traces the three discarded columns
// dominate the solver's allocations, so this is the hot entry point for
// gate-level golden runs.
func (b *Bench) RunOutput(sigA, sigB waveform.Signal, tStop float64, vN0, vO0 float64, breakpoints []float64) (*waveform.Waveform, error) {
	res, err := b.transient(sigA, sigB, tStop, vN0, vO0, breakpoints, []spice.NodeID{b.nodeO})
	if err != nil {
		return nil, err
	}
	return res.Waveform(b.nodeO)
}

// edgePair builds raised-cosine input signals where input A crosses V_th
// at tA and input B at tB, both with direction `rising`.
func (b *Bench) edgePair(tA, tB float64, rising bool) (waveform.Signal, waveform.Signal) {
	v0, v1 := 0.0, b.P.Supply.VDD
	if !rising {
		v0, v1 = v1, v0
	}
	sa := waveform.RaisedCosineEdge(tA, b.P.InputRise, v0, v1)
	sb := waveform.RaisedCosineEdge(tB, b.P.InputRise, v0, v1)
	return sa, sb
}

// FallingDelay measures the falling-output MIS delay
// delta_fall(Delta) = tO - min(tA, tB) for input separation Delta =
// tB - tA (both inputs rising). The gate starts settled in state (0,0)
// with the output high.
func (b *Bench) FallingDelay(delta float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA := lead
	tB := lead + delta
	if delta < 0 {
		tA = lead - delta
		tB = lead
	}
	first := math.Min(tA, tB)
	last := math.Max(tA, tB)
	tStop := last + 300e-12
	sa, sb := b.edgePair(tA, tB, true)
	res, err := b.Run(sa, sb, tStop, b.P.Supply.VDD, b.P.Supply.VDD,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := res.O.FirstCrossingAfter(first-b.P.InputRise, b.P.Supply.Vth, false)
	if !ok {
		return 0, fmt.Errorf("nor: output never fell (delta=%g)", delta)
	}
	return tO - first, nil
}

// RisingDelay measures the rising-output MIS delay
// delta_rise(Delta) = tO - max(tA, tB) for input separation Delta =
// tB - tA (both inputs falling). The gate starts settled in state (1,1)
// with the output low and the internal node at vN0 (the paper uses the
// worst case vN0 = GND).
func (b *Bench) RisingDelay(delta, vN0 float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA := lead
	tB := lead + delta
	if delta < 0 {
		tA = lead - delta
		tB = lead
	}
	last := math.Max(tA, tB)
	tStop := last + 400e-12
	sa, sb := b.edgePair(tA, tB, false)
	res, err := b.Run(sa, sb, tStop, vN0, 0,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := res.O.FirstCrossingAfter(0, b.P.Supply.Vth, true)
	if !ok {
		return 0, fmt.Errorf("nor: output never rose (delta=%g)", delta)
	}
	return tO - last, nil
}

// FallingWaveforms runs the falling-output experiment and returns the
// waveforms (Fig. 2a).
func (b *Bench) FallingWaveforms(delta float64) (*Result, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA, tB := lead, lead+delta
	if delta < 0 {
		tA, tB = lead-delta, lead
	}
	sa, sb := b.edgePair(tA, tB, true)
	return b.Run(sa, sb, math.Max(tA, tB)+300e-12, b.P.Supply.VDD, b.P.Supply.VDD,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
}

// RisingWaveforms runs the rising-output experiment and returns the
// waveforms (Fig. 2c).
func (b *Bench) RisingWaveforms(delta, vN0 float64) (*Result, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA, tB := lead, lead+delta
	if delta < 0 {
		tA, tB = lead-delta, lead
	}
	sa, sb := b.edgePair(tA, tB, false)
	return b.Run(sa, sb, math.Max(tA, tB)+400e-12, vN0, 0,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
}

// SISFar is the separation used to approximate Delta = +/- infinity,
// matching the paper's 2e-10 s.
const SISFar = 200e-12

// CharacteristicDelays holds the six characteristic Charlie delays used
// for parametrization (paper §V).
type CharacteristicDelays struct {
	FallMinusInf float64 // delta_fall(-inf): B rises long before A
	FallZero     float64 // delta_fall(0)
	FallPlusInf  float64 // delta_fall(+inf): A rises long before B
	RiseMinusInf float64 // delta_rise(-inf): B falls long before A
	RiseZero     float64 // delta_rise(0)
	RisePlusInf  float64 // delta_rise(+inf): A falls long before B
}

// Characteristic measures the six characteristic delays of the bench
// (worst-case vN0 = GND for the rising experiments, as in the paper).
func (b *Bench) Characteristic() (CharacteristicDelays, error) {
	var c CharacteristicDelays
	var err error
	if c.FallMinusInf, err = b.FallingDelay(-SISFar); err != nil {
		return c, err
	}
	if c.FallZero, err = b.FallingDelay(0); err != nil {
		return c, err
	}
	if c.FallPlusInf, err = b.FallingDelay(SISFar); err != nil {
		return c, err
	}
	if c.RiseMinusInf, err = b.RisingDelay(-SISFar, 0); err != nil {
		return c, err
	}
	if c.RiseZero, err = b.RisingDelay(0, 0); err != nil {
		return c, err
	}
	if c.RisePlusInf, err = b.RisingDelay(SISFar, 0); err != nil {
		return c, err
	}
	return c, nil
}

// SweepPoint is one (Delta, delay) sample of a MIS sweep.
type SweepPoint struct {
	Delta float64
	Delay float64
}

// FallingSweep samples delta_fall over the given separations.
func (b *Bench) FallingSweep(deltas []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := b.FallingDelay(d)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}

// RisingSweep samples delta_rise over the given separations with the
// given internal-node initial value.
func (b *Bench) RisingSweep(deltas []float64, vN0 float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := b.RisingDelay(d, vN0)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}

// Circuit exposes the underlying netlist (used by the evaluation pipeline
// to run long random traces through the same golden bench).
func (b *Bench) Circuit() *spice.Circuit { return b.circuit }

// SolverStats returns the persistent solver's cumulative counters over
// every transient this bench has run.
func (b *Bench) SolverStats() spice.SolverStats { return b.solver.Stats() }

// Nodes returns the IDs of (A, B, N, O).
func (b *Bench) Nodes() (a, bb, n, o spice.NodeID) {
	return b.nodeA, b.nodeB, b.nodeN, b.nodeO
}
