package nor

import (
	"fmt"
	"math"

	"hybriddelay/internal/spice"
	"hybriddelay/internal/waveform"
)

// NANDBench is the transistor-level 2-input CMOS NAND testbench: the
// structural dual of the NOR bench (parallel pMOS pull-ups, serial nMOS
// stack with the internal node M). It validates the hybrid package's
// duality-based NAND model against analog truth.
type NANDBench struct {
	P Params // device models are reused; T1..T4 keep their Fig. 1 roles via duality

	circuit *spice.Circuit
	solver  *spice.Solver
	nodeA   spice.NodeID
	nodeB   spice.NodeID
	nodeM   spice.NodeID
	nodeO   spice.NodeID
	srcA    *spice.VSource
	srcB    *spice.VSource
}

// StampNAND2 writes the dual NAND devices into c between existing
// nodes: the serial nMOS stack GND -> M -> O, the parallel pMOS
// pull-ups and the load capacitors, mirroring the NOR topology from the
// same device parameters. Like StampNOR2 it is the single source of the
// topology for both the standalone bench and the netlist composer, and
// the device order is part of the contract.
func StampNAND2(c *spice.Circuit, prefix string, p Params, vdd, a, b, m, o spice.NodeID) {
	flip := func(mp spice.MOSParams) spice.MOSParams {
		mp.PMOS = !mp.PMOS
		return mp
	}
	// Duality: NOR T1 (pMOS A, VDD->N) -> nMOS A, M->GND (stack bottom);
	// NOR T2 (pMOS B, N->O) -> nMOS B, O->M (stack top); NOR T3/T4
	// (nMOS A/B to GND) -> pMOS A/B pull-ups.
	c.AddMOSFET(prefix+"TNA", m, a, spice.Ground, flip(p.T1))
	c.AddMOSFET(prefix+"TNB", o, b, m, flip(p.T2))
	c.AddMOSFET(prefix+"TPA", o, a, vdd, flip(p.T3))
	c.AddMOSFET(prefix+"TPB", o, b, vdd, flip(p.T4))
	c.AddCapacitor(prefix+"Cm", m, spice.Ground, p.CN)
	c.AddCapacitor(prefix+"Co", o, spice.Ground, p.CO)
}

// NewNAND builds the dual testbench from the same parameter set as the
// NOR bench: the NOR's pMOS stack devices (T1, T2) become the NAND's
// nMOS stack and vice versa, with channel polarity flipped and threshold
// magnitudes kept, so the two benches are electrical mirrors.
func NewNAND(p Params) (*NANDBench, error) {
	if err := ValidateParams("nand", p); err != nil {
		return nil, err
	}
	b := &NANDBench{P: p}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	b.nodeA = c.Node("a")
	b.nodeB = c.Node("b")
	b.nodeM = c.Node("m")
	b.nodeO = c.Node("o")

	c.AddDCVSource("Vdd", vdd, spice.Ground, p.Supply.VDD)
	b.srcA = c.AddVSource("Va", b.nodeA, spice.Ground, waveform.Constant(0))
	b.srcB = c.AddVSource("Vb", b.nodeB, spice.Ground, waveform.Constant(0))

	StampNAND2(c, "", p, vdd, b.nodeA, b.nodeB, b.nodeM, b.nodeO)

	b.circuit = c
	// One persistent solver per bench, as in the NOR bench: the MNA
	// workspace (matrix, RHS, LU) is reused across every Run.
	sv, err := spice.NewSolver(c)
	if err != nil {
		return nil, err
	}
	sv.SetSymbolicScope(SymbolicScope("nand2", p))
	b.solver = sv
	return b, nil
}

// SolverStats returns the persistent solver's cumulative counters over
// every transient this bench has run.
func (b *NANDBench) SolverStats() spice.SolverStats { return b.solver.Stats() }

// transient runs one solver transient with the bench's step policy,
// recording the given nodes; record selection does not change the
// computed samples (see Bench.transient).
func (b *NANDBench) transient(sigA, sigB waveform.Signal, tStop float64, vM0, vO0 float64, breakpoints []float64, record []spice.NodeID) (*spice.TransientResult, error) {
	b.srcA.Signal = sigA
	b.srcB.Signal = sigB
	return b.solver.Transient(spice.TransientOptions{
		TStart:         0,
		TStop:          tStop,
		MaxStep:        b.P.MaxStep,
		LTETol:         b.P.LTETol,
		Method:         b.P.Method,
		Solver:         b.P.Solver,
		SparsePivotRel: b.P.SparsePivotRel,
		Breakpoints:    append([]float64(nil), breakpoints...),
		InitialConditions: map[spice.NodeID]float64{
			b.nodeM: vM0,
			b.nodeO: vO0,
		},
		Record: record,
	})
}

// Run drives the NAND bench with the given signals over [0, tStop].
func (b *NANDBench) Run(sigA, sigB waveform.Signal, tStop float64, vM0, vO0 float64, breakpoints []float64) (*Result, error) {
	res, err := b.transient(sigA, sigB, tStop, vM0, vO0, breakpoints,
		[]spice.NodeID{b.nodeA, b.nodeB, b.nodeM, b.nodeO})
	if err != nil {
		return nil, err
	}
	wa, err := res.Waveform(b.nodeA)
	if err != nil {
		return nil, err
	}
	wb, err := res.Waveform(b.nodeB)
	if err != nil {
		return nil, err
	}
	wm, err := res.Waveform(b.nodeM)
	if err != nil {
		return nil, err
	}
	wo, err := res.Waveform(b.nodeO)
	if err != nil {
		return nil, err
	}
	return &Result{A: wa, B: wb, N: wm, O: wo, Supply: b.P.Supply}, nil
}

// RunOutput is Run restricted to the output node: the identical
// transient, capturing only V(O). Hot entry point for golden runs,
// which digitize nothing but the output (see Bench.RunOutput).
func (b *NANDBench) RunOutput(sigA, sigB waveform.Signal, tStop float64, vM0, vO0 float64, breakpoints []float64) (*waveform.Waveform, error) {
	res, err := b.transient(sigA, sigB, tStop, vM0, vO0, breakpoints, []spice.NodeID{b.nodeO})
	if err != nil {
		return nil, err
	}
	return res.Waveform(b.nodeO)
}

// FallingDelay measures the falling-output NAND MIS delay
// delta_fall(Delta) = tO - max(tA, tB) (both inputs rising; the gate
// only switches after both inputs are high). vM0 is the initial internal
// stack-node voltage; VDD is the worst case.
func (b *NANDBench) FallingDelay(delta, vM0 float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA := lead
	tB := lead + delta
	if delta < 0 {
		tA, tB = lead-delta, lead
	}
	last := math.Max(tA, tB)
	tStop := last + 400e-12
	v0, v1 := 0.0, b.P.Supply.VDD
	sa := waveform.RaisedCosineEdge(tA, b.P.InputRise, v0, v1)
	sb := waveform.RaisedCosineEdge(tB, b.P.InputRise, v0, v1)
	res, err := b.Run(sa, sb, tStop, vM0, b.P.Supply.VDD,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := res.O.FirstCrossingAfter(0, b.P.Supply.Vth, false)
	if !ok {
		return 0, fmt.Errorf("nand: output never fell (delta=%g)", delta)
	}
	return tO - last, nil
}

// RisingDelay measures the rising-output NAND MIS delay
// delta_rise(Delta) = tO - min(tA, tB) (both inputs falling; the earlier
// input already charges the output through its pMOS).
func (b *NANDBench) RisingDelay(delta float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	tA := lead
	tB := lead + delta
	if delta < 0 {
		tA, tB = lead-delta, lead
	}
	first := math.Min(tA, tB)
	tStop := math.Max(tA, tB) + 300e-12
	v0, v1 := b.P.Supply.VDD, 0.0
	sa := waveform.RaisedCosineEdge(tA, b.P.InputRise, v0, v1)
	sb := waveform.RaisedCosineEdge(tB, b.P.InputRise, v0, v1)
	// Start settled in (1,1): output low, M at its (1,1) steady state 0.
	res, err := b.Run(sa, sb, tStop, 0, 0,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := res.O.FirstCrossingAfter(first-b.P.InputRise, b.P.Supply.Vth, true)
	if !ok {
		return 0, fmt.Errorf("nand: output never rose (delta=%g)", delta)
	}
	return tO - first, nil
}

// Characteristic measures the six characteristic NAND delays (falling
// with the worst case vM0 = VDD).
func (b *NANDBench) Characteristic() (CharacteristicDelays, error) {
	var c CharacteristicDelays
	var err error
	vdd := b.P.Supply.VDD
	if c.FallMinusInf, err = b.FallingDelay(-SISFar, vdd); err != nil {
		return c, err
	}
	if c.FallZero, err = b.FallingDelay(0, vdd); err != nil {
		return c, err
	}
	if c.FallPlusInf, err = b.FallingDelay(SISFar, vdd); err != nil {
		return c, err
	}
	if c.RiseMinusInf, err = b.RisingDelay(-SISFar); err != nil {
		return c, err
	}
	if c.RiseZero, err = b.RisingDelay(0); err != nil {
		return c, err
	}
	if c.RisePlusInf, err = b.RisingDelay(SISFar); err != nil {
		return c, err
	}
	return c, nil
}
