package nor

import (
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

func newBench(t *testing.T) *Bench {
	t.Helper()
	b, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	p := DefaultParams()
	p.CN = 0
	if _, err := New(p); err == nil {
		t.Error("zero CN accepted")
	}
	p = DefaultParams()
	p.InputRise = 0
	if _, err := New(p); err == nil {
		t.Error("zero rise time accepted")
	}
	p = DefaultParams()
	p.Supply = waveform.Supply{}
	if _, err := New(p); err == nil {
		t.Error("invalid supply accepted")
	}
}

// TestTruthTable: DC behaviour at all four input states (via settled
// transients).
func TestTruthTable(t *testing.T) {
	b := newBench(t)
	vdd := b.P.Supply.VDD
	cases := []struct {
		a, b float64
		high bool
	}{
		{0, 0, true},
		{0, vdd, false},
		{vdd, 0, false},
		{vdd, vdd, false},
	}
	for _, c := range cases {
		res, err := b.Run(waveform.Constant(c.a), waveform.Constant(c.b),
			2e-9, vdd/2, vdd/2, nil)
		if err != nil {
			t.Fatalf("(%g, %g): %v", c.a, c.b, err)
		}
		vo := res.O.At(2e-9)
		if c.high && vo < 0.9*vdd {
			t.Errorf("NOR(%g, %g) settled at %g, want ~VDD", c.a, c.b, vo)
		}
		if !c.high && vo > 0.1*vdd {
			t.Errorf("NOR(%g, %g) settled at %g, want ~0", c.a, c.b, vo)
		}
	}
}

// TestFig2FallingShape pins the qualitative content of Fig. 2b: MIS
// speed-up with minimum at Delta = 0, asymmetric tails with
// fall(+inf) > fall(-inf), and a dip of roughly 30%.
func TestFig2FallingShape(t *testing.T) {
	b := newBench(t)
	c, err := b.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	if !(c.FallZero < c.FallMinusInf && c.FallZero < c.FallPlusInf) {
		t.Errorf("no falling speed-up: %+v", c)
	}
	dip := (c.FallZero - c.FallMinusInf) / c.FallMinusInf
	if dip > -0.2 || dip < -0.5 {
		t.Errorf("falling dip = %.1f%%, expected in [-50%%, -20%%] (paper ~-28%%)", 100*dip)
	}
	if c.FallPlusInf <= c.FallMinusInf {
		t.Errorf("tail asymmetry wrong: fall(+inf)=%g <= fall(-inf)=%g (T2 drag missing)",
			c.FallPlusInf, c.FallMinusInf)
	}
	// Absolute scale: tens of picoseconds like the paper's 15nm library.
	if c.FallZero < 10e-12 || c.FallMinusInf > 80e-12 {
		t.Errorf("falling delays outside the calibrated band: %+v", c)
	}
}

// TestFig2RisingShape pins Fig. 2d: slow-down around Delta = 0 and
// rise(-inf) > rise(+inf) (early A transition precharges node N).
func TestFig2RisingShape(t *testing.T) {
	b := newBench(t)
	c, err := b.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	if !(c.RiseZero > c.RiseMinusInf && c.RiseZero > c.RisePlusInf) {
		t.Errorf("no rising slow-down: %+v", c)
	}
	if c.RiseMinusInf <= c.RisePlusInf {
		t.Errorf("rising tails ordered wrongly: -inf=%g, +inf=%g", c.RiseMinusInf, c.RisePlusInf)
	}
	bump := (c.RiseZero - c.RiseMinusInf) / c.RiseMinusInf
	if bump < 0.01 || bump > 0.25 {
		t.Errorf("rising bump = %.1f%%, expected a few percent (paper ~+2..+8%%)", 100*bump)
	}
	// Rising delays exceed falling ones (serial pull-up), roughly 1.4x.
	if c.RiseMinusInf < 1.1*c.FallMinusInf {
		t.Errorf("rise/fall ratio too small: %g vs %g", c.RiseMinusInf, c.FallMinusInf)
	}
}

// TestFallingWaveformShape reproduces Fig. 2a: the analog output slope
// visibly steepens when the second input arrives.
func TestFallingWaveformShape(t *testing.T) {
	b := newBench(t)
	res, err := b.FallingWaveforms(30e-12)
	if err != nil {
		t.Fatal(err)
	}
	vdd := b.P.Supply.VDD
	if res.O.At(0) < 0.95*vdd {
		t.Error("output must start high")
	}
	end := res.O.End()
	if res.O.At(end) > 0.05*vdd {
		t.Error("output must end low")
	}
	// Inputs cross the threshold 30 ps apart.
	ca, ok := res.A.FirstCrossingAfter(0, b.P.Supply.Vth, true)
	if !ok {
		t.Fatal("input A never crossed")
	}
	cb, ok := res.B.FirstCrossingAfter(0, b.P.Supply.Vth, true)
	if !ok {
		t.Fatal("input B never crossed")
	}
	if math.Abs((cb-ca)-30e-12) > 1e-12 {
		t.Errorf("input separation = %g, want 30 ps", cb-ca)
	}
}

// TestRisingWaveformShape reproduces Fig. 2c: the gate only switches
// after both inputs have fallen.
func TestRisingWaveformShape(t *testing.T) {
	b := newBench(t)
	res, err := b.RisingWaveforms(40e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	vdd := b.P.Supply.VDD
	// Find the later input's crossing and the output crossing.
	cb, ok := res.B.FirstCrossingAfter(0, b.P.Supply.Vth, false)
	if !ok {
		t.Fatal("input B never fell")
	}
	co, ok := res.O.FirstCrossingAfter(0, b.P.Supply.Vth, true)
	if !ok {
		t.Fatal("output never rose")
	}
	if co <= cb {
		t.Error("output rose before the later input fell")
	}
	if res.O.At(res.O.End()) < 0.9*vdd {
		t.Error("output must end high")
	}
}

// TestRisingVNWorstCase: starting with V_N = GND is slower than with
// V_N = VDD (the history effect of §II).
func TestRisingVNWorstCase(t *testing.T) {
	b := newBench(t)
	slow, err := b.RisingDelay(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.RisingDelay(0, b.P.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Errorf("V_N=VDD (%g) should be faster than V_N=GND (%g)", fast, slow)
	}
}

// TestSweepMonotoneTails: delays converge to the SIS values for large
// separations.
func TestSweepMonotoneTails(t *testing.T) {
	b := newBench(t)
	d1, err := b.FallingDelay(150e-12)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.FallingDelay(SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 0.5e-12 {
		t.Errorf("falling tail not converged: %g vs %g", d1, d2)
	}
}

func TestSweepsAPI(t *testing.T) {
	b := newBench(t)
	deltas := []float64{-40e-12, 0, 40e-12}
	fs, err := b.FallingSweep(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatal("sweep length wrong")
	}
	rs, err := b.RisingSweep(deltas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatal("sweep length wrong")
	}
	for _, pt := range append(fs, rs...) {
		if pt.Delay <= 0 || pt.Delay > 200e-12 {
			t.Errorf("implausible delay %g at Delta %g", pt.Delay, pt.Delta)
		}
	}
}

func TestNodesAndCircuit(t *testing.T) {
	b := newBench(t)
	a, bb, n, o := b.Nodes()
	ids := map[int]bool{int(a): true, int(bb): true, int(n): true, int(o): true}
	if len(ids) != 4 {
		t.Error("node IDs not distinct")
	}
	if b.Circuit() == nil {
		t.Error("circuit accessor nil")
	}
	if err := b.Circuit().Validate(); err != nil {
		t.Errorf("bench netlist invalid: %v", err)
	}
}
