package nor

import (
	"fmt"
	"math"

	"hybriddelay/internal/spice"
	"hybriddelay/internal/waveform"
)

// NOR3Bench is the transistor-level 3-input CMOS NOR testbench: a
// three-deep pMOS stack (internal nodes N1, N2) and three parallel nMOS
// pull-downs. It validates the hybrid package's generalized switch-level
// model (NOR3Params) against analog truth — the "multi-input gate"
// direction of the paper's title beyond the 2-input case it evaluates.
type NOR3Bench struct {
	P Params // T1/T2 model the stack devices, T3/T4 the pull-downs

	circuit               *spice.Circuit
	solver                *spice.Solver
	nodeA, nodeB, nodeC   spice.NodeID
	nodeN1, nodeN2, nodeO spice.NodeID
	srcA, srcB, srcC      *spice.VSource
}

// NewNOR3 builds the 3-input bench reusing the 2-input device models:
// T1 for the top stack device, T2 for the two lower ones, T3/T4 for the
// pull-downs (the third pull-down reuses T4).
func NewNOR3(p Params) (*NOR3Bench, error) {
	if err := ValidateParams("nor3", p); err != nil {
		return nil, err
	}
	b := &NOR3Bench{P: p}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	b.nodeA = c.Node("a")
	b.nodeB = c.Node("b")
	b.nodeC = c.Node("c")
	b.nodeN1 = c.Node("n1")
	b.nodeN2 = c.Node("n2")
	b.nodeO = c.Node("o")

	c.AddDCVSource("Vdd", vdd, spice.Ground, p.Supply.VDD)
	b.srcA = c.AddVSource("Va", b.nodeA, spice.Ground, waveform.Constant(0))
	b.srcB = c.AddVSource("Vb", b.nodeB, spice.Ground, waveform.Constant(0))
	b.srcC = c.AddVSource("Vc", b.nodeC, spice.Ground, waveform.Constant(0))

	StampNOR3(c, "", p, vdd, b.nodeA, b.nodeB, b.nodeC, b.nodeN1, b.nodeN2, b.nodeO)

	b.circuit = c
	// One persistent solver per bench, as in the NOR2 bench: the MNA
	// workspace (matrix, RHS, LU) is reused across every Run.
	sv, err := spice.NewSolver(c)
	if err != nil {
		return nil, err
	}
	sv.SetSymbolicScope(SymbolicScope("nor3", p))
	b.solver = sv
	return b, nil
}

// SolverStats returns the persistent solver's cumulative counters over
// every transient this bench has run.
func (b *NOR3Bench) SolverStats() spice.SolverStats { return b.solver.Stats() }

// StampNOR3 writes the 3-input NOR devices into c between existing
// nodes: the three-deep pMOS stack VDD -> N1 -> N2 -> O, the three
// parallel nMOS pull-downs and the load capacitors. Shared by the
// standalone bench and the netlist composer; device order is part of
// the contract (see StampNOR2).
func StampNOR3(c *spice.Circuit, prefix string, p Params, vdd, a, b, cc, n1, n2, o spice.NodeID) {
	c.AddMOSFET(prefix+"T1", n1, a, vdd, p.T1)
	c.AddMOSFET(prefix+"T2", n2, b, n1, p.T2)
	c.AddMOSFET(prefix+"T3", o, cc, n2, p.T2)
	c.AddMOSFET(prefix+"T4", o, a, spice.Ground, p.T3)
	c.AddMOSFET(prefix+"T5", o, b, spice.Ground, p.T4)
	c.AddMOSFET(prefix+"T6", o, cc, spice.Ground, p.T4)
	c.AddCapacitor(prefix+"Cn1", n1, spice.Ground, p.CN)
	c.AddCapacitor(prefix+"Cn2", n2, spice.Ground, p.CN)
	c.AddCapacitor(prefix+"Co", o, spice.Ground, p.CO)
}

// Run drives the bench with the given input signals over [0, tStop]
// from the given initial internal voltages and returns the recorded
// output waveform. It is exported for the gate-generic evaluation
// pipeline, which feeds long random traces through the same bench.
func (b *NOR3Bench) Run(sigA, sigB, sigC waveform.Signal, tStop, vN1, vN2, vO float64, bps []float64) (*waveform.Waveform, error) {
	b.srcA.Signal = sigA
	b.srcB.Signal = sigB
	b.srcC.Signal = sigC
	res, err := b.solver.Transient(spice.TransientOptions{
		TStart:         0,
		TStop:          tStop,
		MaxStep:        b.P.MaxStep,
		LTETol:         b.P.LTETol,
		Method:         b.P.Method,
		Solver:         b.P.Solver,
		SparsePivotRel: b.P.SparsePivotRel,
		Breakpoints:    bps,
		InitialConditions: map[spice.NodeID]float64{
			b.nodeN1: vN1,
			b.nodeN2: vN2,
			b.nodeO:  vO,
		},
		Record: []spice.NodeID{b.nodeO},
	})
	if err != nil {
		return nil, err
	}
	return res.Waveform(b.nodeO)
}

// FallingDelay3 measures the falling-output delay for rising inputs at
// offsets (0, dB, dC) relative to input A, measured from the earliest
// input's threshold crossing.
func (b *NOR3Bench) FallingDelay3(dB, dC float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	t0 := math.Min(0, math.Min(dB, dC))
	tA, tB, tC := lead-t0, lead+dB-t0, lead+dC-t0
	first := math.Min(tA, math.Min(tB, tC))
	last := math.Max(tA, math.Max(tB, tC))
	vdd := b.P.Supply.VDD
	sa := waveform.RaisedCosineEdge(tA, b.P.InputRise, 0, vdd)
	sb := waveform.RaisedCosineEdge(tB, b.P.InputRise, 0, vdd)
	sc := waveform.RaisedCosineEdge(tC, b.P.InputRise, 0, vdd)
	o, err := b.Run(sa, sb, sc, last+400e-12, vdd, vdd, vdd,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2, tC - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := o.FirstCrossingAfter(first-b.P.InputRise, b.P.Supply.Vth, false)
	if !ok {
		return 0, fmt.Errorf("nor3: output never fell (dB=%g dC=%g)", dB, dC)
	}
	return tO - first, nil
}

// RisingDelay3 measures the rising-output delay for falling inputs at
// offsets (0, dB, dC) relative to input A, measured from the latest
// input's crossing; the internal stack nodes start at vInit (worst case
// GND).
func (b *NOR3Bench) RisingDelay3(dB, dC, vInit float64) (float64, error) {
	lead := 20*b.P.InputRise + 60e-12
	t0 := math.Min(0, math.Min(dB, dC))
	tA, tB, tC := lead-t0, lead+dB-t0, lead+dC-t0
	last := math.Max(tA, math.Max(tB, tC))
	vdd := b.P.Supply.VDD
	sa := waveform.RaisedCosineEdge(tA, b.P.InputRise, vdd, 0)
	sb := waveform.RaisedCosineEdge(tB, b.P.InputRise, vdd, 0)
	sc := waveform.RaisedCosineEdge(tC, b.P.InputRise, vdd, 0)
	o, err := b.Run(sa, sb, sc, last+600e-12, vInit, vInit, 0,
		[]float64{tA - b.P.InputRise/2, tB - b.P.InputRise/2, tC - b.P.InputRise/2})
	if err != nil {
		return 0, err
	}
	tO, ok := o.FirstCrossingAfter(0, b.P.Supply.Vth, true)
	if !ok {
		return 0, fmt.Errorf("nor3: output never rose (dB=%g dC=%g)", dB, dC)
	}
	return tO - last, nil
}
