package nor

import (
	"testing"

	"hybriddelay/internal/waveform"
)

// TestSmokeDelays exercises the full analog path end to end and prints
// the characteristic delays; detailed assertions live in nor_test.go.
func TestSmokeDelays(t *testing.T) {
	b, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fall: -inf=%.2fps 0=%.2fps +inf=%.2fps", waveform.ToPs(c.FallMinusInf), waveform.ToPs(c.FallZero), waveform.ToPs(c.FallPlusInf))
	t.Logf("rise: -inf=%.2fps 0=%.2fps +inf=%.2fps", waveform.ToPs(c.RiseMinusInf), waveform.ToPs(c.RiseZero), waveform.ToPs(c.RisePlusInf))
	if c.FallZero >= c.FallMinusInf || c.FallZero >= c.FallPlusInf {
		t.Errorf("expected falling MIS speed-up: %+v", c)
	}
}
