package nor

import (
	"testing"

	"hybriddelay/internal/waveform"
)

func newNAND(t *testing.T) *NANDBench {
	t.Helper()
	p := DefaultParams()
	p.MaxStep = 8e-12
	b, err := NewNAND(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNANDNewValidation(t *testing.T) {
	p := DefaultParams()
	p.CO = 0
	if _, err := NewNAND(p); err == nil {
		t.Error("zero CO accepted")
	}
	p = DefaultParams()
	p.InputRise = -1
	if _, err := NewNAND(p); err == nil {
		t.Error("negative rise accepted")
	}
	p = DefaultParams()
	p.Supply = waveform.Supply{}
	if _, err := NewNAND(p); err == nil {
		t.Error("invalid supply accepted")
	}
}

// TestNANDTruthTable: settled outputs for all four input states.
func TestNANDTruthTable(t *testing.T) {
	b := newNAND(t)
	vdd := b.P.Supply.VDD
	cases := []struct {
		a, bb float64
		high  bool
	}{
		{0, 0, true},
		{0, vdd, true},
		{vdd, 0, true},
		{vdd, vdd, false},
	}
	for _, c := range cases {
		res, err := b.Run(waveform.Constant(c.a), waveform.Constant(c.bb),
			2e-9, vdd/2, vdd/2, nil)
		if err != nil {
			t.Fatalf("(%g, %g): %v", c.a, c.bb, err)
		}
		vo := res.O.At(2e-9)
		if c.high && vo < 0.9*vdd {
			t.Errorf("NAND(%g, %g) settled at %g, want ~VDD", c.a, c.bb, vo)
		}
		if !c.high && vo > 0.1*vdd {
			t.Errorf("NAND(%g, %g) settled at %g, want ~0", c.a, c.bb, vo)
		}
	}
}

// TestNANDMISMirrored: the analog NAND shows the mirrored Charlie
// effects — rising speed-up (parallel pMOS), falling slow-down bump
// (serial nMOS stack with node M).
func TestNANDMISMirrored(t *testing.T) {
	b := newNAND(t)
	c, err := b.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	// Rising output: MIS speed-up.
	if !(c.RiseZero < c.RiseMinusInf && c.RiseZero < c.RisePlusInf) {
		t.Errorf("NAND rising speed-up missing: %+v", c)
	}
	dip := (c.RiseZero - c.RiseMinusInf) / c.RiseMinusInf
	if dip > -0.15 || dip < -0.55 {
		t.Errorf("NAND rising dip = %.1f%%, expected a pronounced speed-up", 100*dip)
	}
	// Falling output: MIS slow-down at Delta = 0 relative to both tails.
	if !(c.FallZero > c.FallMinusInf && c.FallZero > c.FallPlusInf) {
		t.Errorf("NAND falling slow-down missing: %+v", c)
	}
	// The serial stack makes falling slower than rising overall.
	if c.FallMinusInf < c.RiseMinusInf {
		t.Errorf("NAND fall(-inf)=%g should exceed rise(-inf)=%g (stack vs parallel)",
			c.FallMinusInf, c.RiseMinusInf)
	}
}

// TestNANDWorstCaseM: a precharged stack node M slows the falling output
// (the mirror of the paper's V_N worst-case discussion).
func TestNANDWorstCaseM(t *testing.T) {
	b := newNAND(t)
	slow, err := b.FallingDelay(0, b.P.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.FallingDelay(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Errorf("VM=VDD (%g) should be slower than VM=0 (%g)", slow, fast)
	}
}
