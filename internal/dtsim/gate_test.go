package dtsim

import (
	"math"
	"testing"

	"hybriddelay/internal/idm"
	"hybriddelay/internal/trace"
)

func TestNewGateValidation(t *testing.T) {
	out := NewNet("o", false)
	if _, err := NewGate("g", FnInv, nil, out); err == nil {
		t.Error("no inputs accepted")
	}
	if _, err := NewGate("g", nil, []*Net{NewNet("a", false)}, out); err == nil {
		t.Error("nil function accepted")
	}
}

func TestGateFunctions(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]bool) bool
		in   []bool
		want bool
	}{
		{"inv", FnInv, []bool{true}, false},
		{"buf", FnBuf, []bool{true}, true},
		{"nor", FnNOR2, []bool{false, false}, true},
		{"nor", FnNOR2, []bool{true, false}, false},
		{"nand", FnNAND2, []bool{true, true}, false},
		{"nand", FnNAND2, []bool{true, false}, true},
		{"and", FnAND2, []bool{true, true}, true},
		{"or", FnOR2, []bool{false, true}, true},
		{"xor", FnXOR2, []bool{true, true}, false},
	}
	for _, c := range cases {
		if got := c.fn(c.in); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// TestGateZeroTimePropagation: combinational cascades settle within one
// event (no intermediate glitches on the recorded trace).
func TestGateZeroTimePropagation(t *testing.T) {
	sim := NewSimulator()
	a := NewNet("a", false)
	b := NewNet("b", false)
	n1 := NewNet("n1", false)
	n2 := NewNet("n2", false)
	n2.Record()
	if _, err := NewGate("nor", FnNOR2, []*Net{a, b}, n1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGate("inv", FnInv, []*Net{n1}, n2); err != nil {
		t.Fatal(err)
	}
	// Initial: a=b=0 -> n1=1 -> n2=0.
	if n1.Value() != true || n2.Value() != false {
		t.Fatalf("initial values wrong: n1=%v n2=%v", n1.Value(), n2.Value())
	}
	Drive(sim, a, trace.New(false, []trace.Event{{Time: 10, Value: true}}))
	sim.Run(100)
	got := n2.Trace()
	if got.NumEvents() != 1 || !got.Events[0].Value || got.Events[0].Time != 10 {
		t.Errorf("cascade output %+v", got.Events)
	}
}

// TestInverterChainDelayAccumulates: a chain of N inverters, each with a
// symmetric exp channel, delays a single edge by ~N*delta(inf).
func TestInverterChainDelayAccumulates(t *testing.T) {
	const stages = 5
	ch, err := idm.NewExp(20e-12, 20e-12, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator()
	in := NewNet("in", false)
	out, err := InverterChain(sim, in, stages, func(i int, from, to *Net) {
		NewChannel(sim, "ch", from, to, ch)
	})
	if err != nil {
		t.Fatal(err)
	}
	out.Record()
	edge := 1e-9
	Drive(sim, in, trace.New(false, []trace.Event{{Time: edge, Value: true}}))
	if err := sim.Run(5e-9); err != nil {
		t.Fatal(err)
	}
	got := out.Trace()
	if got.NumEvents() != 1 {
		t.Fatalf("chain output %+v", got.Events)
	}
	// Parity: 5 inverters invert; initial out = !...!false.
	if got.Initial != true || got.Events[0].Value != false {
		t.Errorf("chain polarity wrong: %+v", got)
	}
	want := edge + stages*ch.DelayUpInf() // all stages see T = inf on a first edge
	if math.Abs(got.Events[0].Time-want) > 1e-15 {
		t.Errorf("chain delay %g, want %g", got.Events[0].Time-edge, want-edge)
	}
}

// TestInverterChainPulseShrinks: a short pulse through involution
// channels shrinks at every stage and eventually vanishes — the
// short-pulse filtration behaviour the IDM models faithfully.
func TestInverterChainPulseShrinks(t *testing.T) {
	ch, err := idm.NewExp(20e-12, 20e-12, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	run := func(widthPs float64, stages int) int {
		sim := NewSimulator()
		in := NewNet("in", false)
		out, err := InverterChain(sim, in, stages, func(i int, from, to *Net) {
			NewChannel(sim, "ch", from, to, ch)
		})
		if err != nil {
			t.Fatal(err)
		}
		out.Record()
		Drive(sim, in, trace.New(false, []trace.Event{
			{Time: 1e-9, Value: true},
			{Time: 1e-9 + widthPs*1e-12, Value: false},
		}))
		if err := sim.Run(20e-9); err != nil {
			t.Fatal(err)
		}
		return out.Trace().NumEvents()
	}
	// A wide pulse survives 8 stages.
	if got := run(200, 8); got != 2 {
		t.Errorf("wide pulse: %d output events, want 2", got)
	}
	// A marginal pulse dies somewhere down the chain.
	if got := run(16, 8); got != 0 {
		t.Errorf("marginal pulse survived 8 stages: %d events", got)
	}
	// The same marginal pulse survives a single stage (it shrinks, it is
	// not instantly removed — unlike inertial delay).
	if got := run(16, 1); got != 2 {
		t.Errorf("marginal pulse through one stage: %d events, want 2", got)
	}
}

// TestInverterChainValidation: degenerate stage counts error.
func TestInverterChainValidation(t *testing.T) {
	sim := NewSimulator()
	if _, err := InverterChain(sim, NewNet("in", false), 0, func(int, *Net, *Net) {}); err == nil {
		t.Error("zero stages accepted")
	}
}

// TestMixedCircuit: a NOR gate + inverter netlist with channels of
// different types composes correctly.
func TestMixedCircuit(t *testing.T) {
	sim := NewSimulator()
	a := NewNet("a", false)
	b := NewNet("b", false)
	norRaw := NewNet("nor_raw", false)
	norOut := NewNet("nor_out", false)
	invRaw := NewNet("inv_raw", false)
	invOut := NewNet("inv_out", false)
	invOut.Record()

	if _, err := NewGate("nor", FnNOR2, []*Net{a, b}, norRaw); err != nil {
		t.Fatal(err)
	}
	exp, err := idm.NewExp(15e-12, 10e-12, 3e-12)
	if err != nil {
		t.Fatal(err)
	}
	NewChannel(sim, "c1", norRaw, norOut, exp)
	if _, err := NewGate("inv", FnInv, []*Net{norOut}, invRaw); err != nil {
		t.Fatal(err)
	}
	NewChannel(sim, "c2", invRaw, invOut, exp)

	// a=b=0: nor=1, inv=0 initially.
	if invOut.Value() != false {
		t.Fatal("initial state wrong")
	}
	Drive(sim, a, trace.New(false, []trace.Event{{Time: 1e-9, Value: true}}))
	if err := sim.Run(5e-9); err != nil {
		t.Fatal(err)
	}
	got := invOut.Trace()
	if got.NumEvents() != 1 || !got.Events[0].Value {
		t.Fatalf("circuit output %+v", got.Events)
	}
	// Total delay = fall delay of c1 + rise delay of c2 (both at T=inf).
	want := 1e-9 + exp.DelayDownInf() + exp.DelayUpInf()
	if math.Abs(got.Events[0].Time-want) > 1e-15 {
		t.Errorf("total delay %g, want %g", got.Events[0].Time, want)
	}
}
