package dtsim

import "fmt"

// Gate is a zero-time boolean function from input nets to an output net
// (the Involution Tool's circuit model: all delays live in channels, the
// boolean gates themselves are instantaneous). Gates re-evaluate on
// every input change and propagate synchronously, so combinational
// cascades settle within a single event; feedback loops must be broken
// by a channel (which schedules through the event queue).
type Gate struct {
	Name   string
	fn     func([]bool) bool
	inputs []*Net
	out    *Net
	vals   []bool
}

// NewGate wires a boolean function. The output net's initial value is
// set to the function of the inputs' initial values.
func NewGate(name string, fn func([]bool) bool, inputs []*Net, out *Net) (*Gate, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("dtsim: gate %q has no inputs", name)
	}
	if fn == nil {
		return nil, fmt.Errorf("dtsim: gate %q has no function", name)
	}
	g := &Gate{Name: name, fn: fn, inputs: inputs, out: out, vals: make([]bool, len(inputs))}
	for i, in := range inputs {
		g.vals[i] = in.Value()
	}
	out.SetInitial(fn(g.vals))
	for i, in := range inputs {
		i := i
		in.OnChange(func(t float64, v bool) {
			g.vals[i] = v
			g.out.Set(t, g.fn(g.vals))
		})
	}
	return g, nil
}

// Common gate functions.

// FnInv is the inverter function.
func FnInv(v []bool) bool { return !v[0] }

// FnBuf is the buffer (identity) function.
func FnBuf(v []bool) bool { return v[0] }

// FnNOR2 is the 2-input NOR function.
func FnNOR2(v []bool) bool { return !(v[0] || v[1]) }

// FnNAND2 is the 2-input NAND function.
func FnNAND2(v []bool) bool { return !(v[0] && v[1]) }

// FnAND2 is the 2-input AND function.
func FnAND2(v []bool) bool { return v[0] && v[1] }

// FnOR2 is the 2-input OR function.
func FnOR2(v []bool) bool { return v[0] || v[1] }

// FnXOR2 is the 2-input XOR function.
func FnXOR2(v []bool) bool { return v[0] != v[1] }

// InverterChain builds a chain of `stages` inverters, each followed by a
// delay channel built by mkChannel (called with the stage index and the
// nets to connect). It returns the chain's final output net. This is the
// circuit class the Involution Tool's original evaluation used.
func InverterChain(sim *Simulator, in *Net, stages int, mkChannel func(i int, from, to *Net)) (*Net, error) {
	if stages < 1 {
		return nil, fmt.Errorf("dtsim: need at least one stage")
	}
	cur := in
	for i := 0; i < stages; i++ {
		gateOut := NewNet(fmt.Sprintf("inv%d_raw", i), !cur.Value())
		if _, err := NewGate(fmt.Sprintf("inv%d", i), FnInv, []*Net{cur}, gateOut); err != nil {
			return nil, err
		}
		chanOut := NewNet(fmt.Sprintf("inv%d_out", i), gateOut.Value())
		mkChannel(i, gateOut, chanOut)
		cur = chanOut
	}
	return cur, nil
}
