// Package dtsim is an event-driven digital timing simulator: the
// stand-in for the Involution Tool's QuestaSim environment (paper §VI).
//
// A simulation consists of named nets carrying boolean values, sources
// that inject transitions, zero-time boolean gates, and delay channels
// that move transitions in time (with model-specific cancellation
// semantics). Channels are pluggable: the repository ships pure delay,
// inertial delay, involution exp-channels and SumExp channels
// (internal/inertial, internal/idm) and the paper's hybrid 2-input NOR
// channel (internal/hybrid).
package dtsim

import (
	"container/heap"
	"fmt"
	"math"

	"hybriddelay/internal/trace"
)

// EventID identifies a scheduled event for cancellation.
type EventID int64

type schedEvent struct {
	time  float64
	seq   int64 // tie-break: FIFO among equal times
	id    EventID
	fn    func(t float64)
	dead  bool
	index int // heap index
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*schedEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the simulation clock.
type Simulator struct {
	queue   eventHeap
	events  map[EventID]*schedEvent
	nextID  EventID
	nextSeq int64
	now     float64
	started bool
}

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator {
	return &Simulator{events: map[EventID]*schedEvent{}}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Schedule registers fn to run at time t (>= current time). It returns
// an EventID that can be passed to Cancel while the event is pending.
func (s *Simulator) Schedule(t float64, fn func(t float64)) (EventID, error) {
	if s.started && t < s.now {
		return 0, fmt.Errorf("dtsim: cannot schedule at %g before current time %g", t, s.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("dtsim: invalid event time %g", t)
	}
	s.nextID++
	s.nextSeq++
	e := &schedEvent{time: t, seq: s.nextSeq, id: s.nextID, fn: fn}
	heap.Push(&s.queue, e)
	s.events[e.id] = e
	return e.id, nil
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (s *Simulator) Cancel(id EventID) bool {
	e, ok := s.events[id]
	if !ok || e.dead {
		return false
	}
	e.dead = true
	delete(s.events, id)
	return true
}

// Pending reports whether the event is still scheduled.
func (s *Simulator) Pending(id EventID) bool {
	e, ok := s.events[id]
	return ok && !e.dead
}

// Run executes events in time order until the queue is exhausted or the
// next event is after `until`.
func (s *Simulator) Run(until float64) error {
	s.started = true
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			continue
		}
		if e.time > until {
			break
		}
		heap.Pop(&s.queue)
		delete(s.events, e.id)
		if e.time < s.now {
			return fmt.Errorf("dtsim: causality violation: event at %g before clock %g", e.time, s.now)
		}
		s.now = e.time
		e.fn(e.time)
	}
	if s.now < until {
		s.now = until
	}
	return nil
}

// Net is a named boolean signal with change listeners.
type Net struct {
	Name      string
	value     bool
	listeners []func(t float64, v bool)
	rec       *trace.Trace
	recording bool
}

// NewNet returns a net with the given initial value.
func NewNet(name string, initial bool) *Net {
	return &Net{Name: name, value: initial}
}

// Value returns the current logical value.
func (n *Net) Value() bool { return n.value }

// OnChange registers a listener invoked on every value change.
func (n *Net) OnChange(fn func(t float64, v bool)) {
	n.listeners = append(n.listeners, fn)
}

// Record starts capturing the net's transitions into a trace.
func (n *Net) Record() {
	n.rec = &trace.Trace{Initial: n.value}
	n.recording = true
}

// Trace returns the recorded trace (Record must have been called).
func (n *Net) Trace() trace.Trace {
	if n.rec == nil {
		return trace.Trace{Initial: n.value}
	}
	return *n.rec
}

// SetInitial overrides the net's initial value (before simulation)
// without recording a transition event.
func (n *Net) SetInitial(v bool) {
	n.value = v
	if n.rec != nil {
		n.rec.Initial = v
	}
}

// Set drives the net to v at time t, notifying listeners on change.
func (n *Net) Set(t float64, v bool) {
	if v == n.value {
		return
	}
	n.value = v
	if n.recording {
		n.rec.Events = append(n.rec.Events, trace.Event{Time: t, Value: v})
	}
	for _, fn := range n.listeners {
		fn(t, v)
	}
}

// Drive schedules every transition of a trace onto the net (a stimulus
// source). The net's initial value is overwritten to match.
func Drive(sim *Simulator, n *Net, tr trace.Trace) error {
	n.value = tr.Initial
	if n.rec != nil {
		n.rec.Initial = tr.Initial
	}
	for _, e := range tr.Events {
		e := e
		if _, err := sim.Schedule(e.Time, func(t float64) { n.Set(t, e.Value) }); err != nil {
			return err
		}
	}
	return nil
}
