package dtsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/trace"
)

func TestSchedulerOrdering(t *testing.T) {
	sim := NewSimulator()
	var order []int
	for i, tm := range []float64{3, 1, 2} {
		i, tm := i, tm
		if _, err := sim.Schedule(tm, func(float64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("execution order = %v", order)
	}
	if sim.Now() != 10 {
		t.Errorf("clock = %g, want 10", sim.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	sim := NewSimulator()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		sim.Schedule(1, func(float64) { order = append(order, i) })
	}
	sim.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	sim := NewSimulator()
	fired := false
	id, _ := sim.Schedule(1, func(float64) { fired = true })
	if !sim.Pending(id) {
		t.Error("event should be pending")
	}
	if !sim.Cancel(id) {
		t.Error("cancel should succeed")
	}
	if sim.Cancel(id) {
		t.Error("double cancel should report false")
	}
	sim.Run(5)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestScheduleInPast(t *testing.T) {
	sim := NewSimulator()
	sim.Schedule(5, func(float64) {})
	sim.Run(10)
	if _, err := sim.Schedule(1, func(float64) {}); err == nil {
		t.Error("expected error scheduling in the past")
	}
	if _, err := sim.Schedule(math.NaN(), func(float64) {}); err == nil {
		t.Error("expected error for NaN time")
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	sim := NewSimulator()
	fired := false
	sim.Schedule(10, func(float64) { fired = true })
	sim.Run(5)
	if fired {
		t.Error("event beyond until fired")
	}
	sim.Run(20)
	if !fired {
		t.Error("event not fired on second run")
	}
}

func TestNetListeners(t *testing.T) {
	n := NewNet("x", false)
	var got []bool
	n.OnChange(func(_ float64, v bool) { got = append(got, v) })
	n.Set(1, true)
	n.Set(2, true) // no change, no callback
	n.Set(3, false)
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("listener calls = %v", got)
	}
}

func TestNetRecording(t *testing.T) {
	n := NewNet("x", false)
	n.Record()
	n.Set(1, true)
	n.Set(5, false)
	tr := n.Trace()
	if tr.Initial || tr.NumEvents() != 2 {
		t.Errorf("trace = %+v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	n2 := NewNet("y", true)
	if tr := n2.Trace(); !tr.Initial || tr.NumEvents() != 0 {
		t.Error("unrecorded trace should be initial-only")
	}
	n2.SetInitial(false)
	if n2.Value() {
		t.Error("SetInitial did not update the value")
	}
}

func TestDrive(t *testing.T) {
	sim := NewSimulator()
	n := NewNet("in", true)
	n.Record()
	tr := trace.New(false, []trace.Event{{Time: 1, Value: true}, {Time: 2, Value: false}})
	if err := Drive(sim, n, tr); err != nil {
		t.Fatal(err)
	}
	if n.Value() {
		t.Error("Drive should reset the initial value")
	}
	sim.Run(10)
	got := n.Trace()
	if got.NumEvents() != 2 || got.Initial {
		t.Errorf("driven trace = %+v", got)
	}
}

type fixedDelay struct{ up, down float64 }

func (f fixedDelay) DelayUp(float64) float64   { return f.up }
func (f fixedDelay) DelayDown(float64) float64 { return f.down }

func TestChannelBasicDelay(t *testing.T) {
	sim := NewSimulator()
	in := NewNet("in", false)
	out := NewNet("out", false)
	out.Record()
	NewChannel(sim, "ch", in, out, fixedDelay{up: 2, down: 3})
	Drive(sim, in, trace.New(false, []trace.Event{
		{Time: 10, Value: true},
		{Time: 20, Value: false},
	}))
	sim.Run(100)
	got := out.Trace()
	if got.NumEvents() != 2 {
		t.Fatalf("out events = %+v", got.Events)
	}
	if got.Events[0].Time != 12 || got.Events[1].Time != 23 {
		t.Errorf("out times = %g, %g; want 12, 23", got.Events[0].Time, got.Events[1].Time)
	}
}

func TestChannelPulseCancellation(t *testing.T) {
	// Inertial semantics: a 1-wide pulse through a delay-5 channel dies.
	sim := NewSimulator()
	in := NewNet("in", false)
	out := NewNet("out", false)
	out.Record()
	NewChannelWithPolicy(sim, "ch", in, out, fixedDelay{up: 5, down: 5}, PolicyInertial)
	Drive(sim, in, trace.New(false, []trace.Event{
		{Time: 10, Value: true},
		{Time: 11, Value: false},
	}))
	sim.Run(100)
	if got := out.Trace(); got.NumEvents() != 0 {
		t.Errorf("short pulse survived: %+v", got.Events)
	}
}

func TestChannelLongPulseSurvives(t *testing.T) {
	sim := NewSimulator()
	in := NewNet("in", false)
	out := NewNet("out", false)
	out.Record()
	NewChannelWithPolicy(sim, "ch", in, out, fixedDelay{up: 5, down: 5}, PolicyInertial)
	Drive(sim, in, trace.New(false, []trace.Event{
		{Time: 10, Value: true},
		{Time: 20, Value: false},
	}))
	sim.Run(100)
	if got := out.Trace(); got.NumEvents() != 2 {
		t.Errorf("long pulse mangled: %+v", got.Events)
	}
}

// TestApplyDelayMatchesChannel: the offline transformation and the
// event-driven channel agree on random traces and random constant delays.
func TestApplyDelayMatchesChannel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ev []trace.Event
		tm := 0.0
		v := false
		for i := 0; i < 3+rng.Intn(20); i++ {
			tm += 0.2 + rng.ExpFloat64()*4
			v = !v
			ev = append(ev, trace.Event{Time: tm, Value: v})
		}
		in := trace.New(false, ev)
		df := fixedDelay{up: 0.5 + rng.Float64()*4, down: 0.5 + rng.Float64()*4}

		offline := ApplyDelay(in, df)

		sim := NewSimulator()
		nin := NewNet("in", false)
		nout := NewNet("out", false)
		nout.Record()
		NewChannel(sim, "ch", nin, nout, df)
		if err := Drive(sim, nin, in); err != nil {
			return false
		}
		if err := sim.Run(tm + 100); err != nil {
			return false
		}
		online := nout.Trace()

		if offline.NumEvents() != online.NumEvents() {
			return false
		}
		for i := range offline.Events {
			if math.Abs(offline.Events[i].Time-online.Events[i].Time) > 1e-12 ||
				offline.Events[i].Value != online.Events[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestApplyDelayOutputValid: outputs are always well-formed traces.
func TestApplyDelayOutputValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ev []trace.Event
		tm := 0.0
		v := false
		for i := 0; i < rng.Intn(30); i++ {
			tm += 0.1 + rng.ExpFloat64()*2
			v = !v
			ev = append(ev, trace.Event{Time: tm, Value: v})
		}
		in := trace.New(false, ev)
		out := ApplyDelay(in, fixedDelay{up: rng.Float64() * 5, down: rng.Float64() * 5})
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
