// Package inertial provides the classic constant-delay channel models
// used as baselines in the paper's accuracy evaluation (§VI): pure delay
// (constant delay, no filtering) and inertial delay (constant delay,
// pulses shorter than the delay are removed).
//
// Both are expressed as dtsim.DelayFunc values: with a constant delay
// function delta(T) = d, the channel's built-in cancellation rule removes
// exactly the pulses shorter than the delay difference, which reproduces
// inertial behaviour; PureDelay opts out of cancellation by construction
// (its per-direction delays are equal, so ordering is preserved and
// cancellation never triggers for well-formed alternating inputs — a
// pulse is only removed if it has non-positive width).
package inertial

import "fmt"

// Const is a constant (possibly asymmetric) delay function: the inertial
// delay channel of the paper when used with dtsim's cancellation rule.
type Const struct {
	Up   float64 // rising-output delay [s]
	Down float64 // falling-output delay [s]
}

// NewConst validates and builds a constant delay pair.
func NewConst(up, down float64) (Const, error) {
	if up < 0 || down < 0 {
		return Const{}, fmt.Errorf("inertial: negative delay (up=%g, down=%g)", up, down)
	}
	return Const{Up: up, Down: down}, nil
}

// DelayUp implements dtsim.DelayFunc.
func (c Const) DelayUp(float64) float64 { return c.Up }

// DelayDown implements dtsim.DelayFunc.
func (c Const) DelayDown(float64) float64 { return c.Down }

// Symmetric returns a constant delay with equal rise/fall delays.
func Symmetric(d float64) Const { return Const{Up: d, Down: d} }
