package inertial

import (
	"testing"

	"hybriddelay/internal/trace"
)

func nor2Logic(in []bool) bool { return !(in[0] || in[1]) }

// TestArcsValidate rejects malformed arc sets.
func TestArcsValidate(t *testing.T) {
	if err := (Arcs{}).Validate(); err == nil {
		t.Error("empty arcs accepted")
	}
	if err := (Arcs{{Fall: 1, Rise: -1}}).Validate(); err == nil {
		t.Error("negative arc accepted")
	}
	if err := (Arcs{{Fall: 1, Rise: 2}, {Fall: 3, Rise: 4}}).Validate(); err != nil {
		t.Error(err)
	}
}

// TestArcsApplyArityPanics: an arity mismatch is a programming error
// surfaced as a descriptive panic, not an index-out-of-range crash.
func TestArcsApplyArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	two := Arcs{{Fall: 1, Rise: 1}, {Fall: 1, Rise: 1}}
	two.Apply(func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
		trace.Trace{}, trace.Trace{}, trace.Trace{})
}

// TestArcsPinsLegacyBehaviour pins the generic applier to the exact
// output the pre-refactor 2-input NORArcs algorithm produced for a
// mixed causal sequence (A-caused fall while B's rise and A's fall are
// masked, then a B-caused rise), so a regression in the shared
// algorithm cannot hide behind NORArcs delegating to it.
func TestArcsPinsLegacyBehaviour(t *testing.T) {
	n := NORArcs{AFall: 3, ARise: 6, BFall: 2, BRise: 5}
	a := trace.New(false, []trace.Event{{Time: 100, Value: true}, {Time: 200, Value: false}})
	b := trace.New(false, []trace.Event{{Time: 150, Value: true}, {Time: 300, Value: false}})
	want := []trace.Event{{Time: 103, Value: false}, {Time: 305, Value: true}}
	for label, out := range map[string]trace.Trace{
		"generic": n.Arcs().Apply(nor2Logic, a, b),
		"legacy":  n.Apply(a, b),
	} {
		if !out.Initial || out.NumEvents() != len(want) {
			t.Fatalf("%s: got %+v, want events %+v", label, out, want)
		}
		for i := range want {
			if out.Events[i] != want[i] {
				t.Errorf("%s: event %d = %+v, want %+v", label, i, out.Events[i], want[i])
			}
		}
	}
}
