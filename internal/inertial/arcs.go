package inertial

import (
	"fmt"
	"sort"

	"hybriddelay/internal/trace"
)

// NORArcs is a pin-aware inertial delay model of a 2-input NOR gate: the
// delay of an output transition depends on which input caused it, as in
// standard per-arc (NLDM-style) timing. This is the "inertial delay"
// baseline of the paper's Fig. 7: for widely separated input events it
// reproduces the exact SIS delays per arc, while (unlike the hybrid
// channel) it knows nothing about MIS interactions.
type NORArcs struct {
	// AFall is the delay of a falling output caused by input A rising.
	AFall float64
	// ARise is the delay of a rising output caused by input A falling.
	ARise float64
	// BFall is the delay of a falling output caused by input B rising.
	BFall float64
	// BRise is the delay of a rising output caused by input B falling.
	BRise float64
}

// NORArcsFromSIS builds per-arc delays from the characteristic SIS
// delays: a falling output caused by A corresponds to delta_fall(+inf)
// (A switched first), caused by B to delta_fall(-inf); a rising output
// caused by A corresponds to delta_rise(-inf) (A switched last), caused
// by B to delta_rise(+inf).
func NORArcsFromSIS(fallMinusInf, fallPlusInf, riseMinusInf, risePlusInf float64) (NORArcs, error) {
	a := NORArcs{
		AFall: fallPlusInf,
		ARise: riseMinusInf,
		BFall: fallMinusInf,
		BRise: risePlusInf,
	}
	for _, d := range []float64{a.AFall, a.ARise, a.BFall, a.BRise} {
		if d < 0 {
			return NORArcs{}, fmt.Errorf("inertial: negative arc delay in %+v", a)
		}
	}
	return a, nil
}

// Apply transforms two input traces into the NOR output trace with
// per-arc inertial delays and pulse cancellation: an output transition
// scheduled not after the pending opposite transition annihilates with
// it.
func (n NORArcs) Apply(a, b trace.Trace) trace.Trace {
	type tagged struct {
		time float64
		isA  bool
		val  bool
	}
	var events []tagged
	for _, e := range a.Events {
		events = append(events, tagged{e.Time, true, e.Value})
	}
	for _, e := range b.Events {
		events = append(events, tagged{e.Time, false, e.Value})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].time < events[j].time })

	va, vb := a.Initial, b.Initial
	outVal := !(va || vb)
	out := trace.Trace{Initial: outVal}

	type pend struct {
		time  float64
		value bool
	}
	var pending []pend
	flush := func(t float64) {
		for len(pending) > 0 && pending[0].time <= t {
			out.Events = append(out.Events, trace.Event{Time: pending[0].time, Value: pending[0].value})
			outVal = pending[0].value
			pending = pending[1:]
		}
	}
	// cur tracks the zero-time NOR value to detect causal transitions.
	cur := outVal
	for _, e := range events {
		flush(e.time)
		if e.isA {
			va = e.val
		} else {
			vb = e.val
		}
		v := !(va || vb)
		if v == cur {
			continue
		}
		cur = v
		var d float64
		switch {
		case e.isA && !v:
			d = n.AFall
		case e.isA && v:
			d = n.ARise
		case !e.isA && !v:
			d = n.BFall
		default:
			d = n.BRise
		}
		// VHDL inertial semantics: the new transaction replaces any
		// pending one; a transaction restoring the committed value means
		// the pulse was too short to transmit.
		pending = pending[:0]
		if v == outVal {
			continue
		}
		pending = append(pending, pend{e.time + d, v})
	}
	flush(1e300)
	return out
}
