package inertial

import (
	"fmt"
	"math"
	"sort"

	"hybriddelay/internal/trace"
)

// PinArcs holds the two per-pin inertial delays of one gate input: the
// delay of an output transition caused by that pin, per output direction.
type PinArcs struct {
	// Fall is the delay of a falling output caused by this pin switching.
	Fall float64
	// Rise is the delay of a rising output caused by this pin switching.
	Rise float64
}

// Arcs is an arity-generic pin-aware inertial delay model: Arcs[i] holds
// the delays of output transitions caused by input i, as in standard
// per-arc (NLDM-style) timing. This is the "inertial delay" baseline of
// the paper's Fig. 7 generalized to any multi-input gate: for widely
// separated input events it reproduces the exact SIS delays per arc,
// while (unlike the hybrid channel) it knows nothing about MIS
// interactions.
type Arcs []PinArcs

// Validate checks that every arc delay is non-negative and finite.
func (a Arcs) Validate() error {
	if len(a) == 0 {
		return fmt.Errorf("inertial: no arcs")
	}
	for i, p := range a {
		for _, d := range []float64{p.Fall, p.Rise} {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("inertial: invalid arc delay %g on pin %d", d, i)
			}
		}
	}
	return nil
}

// Apply transforms the input traces into the gate's output trace with
// per-arc inertial delays and pulse cancellation: the causing pin of
// each zero-time output change selects the arc, and an output transition
// scheduled not after the pending opposite transition annihilates with
// it (VHDL inertial semantics). logic is the gate's boolean function
// over len(a) inputs; passing a different number of traces is a
// programming error and panics.
func (a Arcs) Apply(logic func([]bool) bool, inputs ...trace.Trace) trace.Trace {
	if len(inputs) != len(a) {
		panic(fmt.Sprintf("inertial: %d input traces for %d arcs", len(inputs), len(a)))
	}
	type tagged struct {
		time float64
		pin  int
		val  bool
	}
	var events []tagged
	for i, in := range inputs {
		for _, e := range in.Events {
			events = append(events, tagged{e.Time, i, e.Value})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].time < events[j].time })

	state := make([]bool, len(inputs))
	for i, in := range inputs {
		state[i] = in.Initial
	}
	outVal := logic(state)
	out := trace.Trace{Initial: outVal}

	type pend struct {
		time  float64
		value bool
	}
	var pending []pend
	flush := func(t float64) {
		for len(pending) > 0 && pending[0].time <= t {
			out.Events = append(out.Events, trace.Event{Time: pending[0].time, Value: pending[0].value})
			outVal = pending[0].value
			pending = pending[1:]
		}
	}
	// cur tracks the zero-time gate value to detect causal transitions.
	cur := outVal
	for _, e := range events {
		flush(e.time)
		state[e.pin] = e.val
		v := logic(state)
		if v == cur {
			continue
		}
		cur = v
		d := a[e.pin].Rise
		if !v {
			d = a[e.pin].Fall
		}
		// VHDL inertial semantics: the new transaction replaces any
		// pending one; a transaction restoring the committed value means
		// the pulse was too short to transmit.
		pending = pending[:0]
		if v == outVal {
			continue
		}
		pending = append(pending, pend{e.time + d, v})
	}
	flush(math.Inf(1))
	return out
}
