package inertial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/trace"
)

func TestNewConst(t *testing.T) {
	c, err := NewConst(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.DelayUp(123) != 2 || c.DelayDown(-5) != 3 {
		t.Error("constant delays wrong")
	}
	if _, err := NewConst(-1, 0); err == nil {
		t.Error("expected error for negative delay")
	}
	s := Symmetric(4)
	if s.Up != 4 || s.Down != 4 {
		t.Error("Symmetric wrong")
	}
}

func TestNORArcsFromSIS(t *testing.T) {
	a, err := NORArcsFromSIS(35e-12, 37e-12, 60e-12, 56e-12)
	if err != nil {
		t.Fatal(err)
	}
	if a.BFall != 35e-12 || a.AFall != 37e-12 || a.ARise != 60e-12 || a.BRise != 56e-12 {
		t.Errorf("arc mapping wrong: %+v", a)
	}
	if _, err := NORArcsFromSIS(-1, 0, 0, 0); err == nil {
		t.Error("expected error for negative arc delay")
	}
}

func mk(initial bool, times ...float64) trace.Trace {
	var ev []trace.Event
	v := initial
	for _, tm := range times {
		v = !v
		ev = append(ev, trace.Event{Time: tm, Value: v})
	}
	return trace.New(initial, ev)
}

func TestNORArcsSIS(t *testing.T) {
	arcs := NORArcs{AFall: 3, ARise: 6, BFall: 2, BRise: 5}
	// Only A switches (B stays low): output falls at tA + AFall, rises at
	// tA2 + ARise.
	a := mk(false, 100, 200)
	b := trace.Trace{Initial: false}
	out := arcs.Apply(a, b)
	if !out.Initial {
		t.Fatal("NOR of (0,0) must start high")
	}
	if out.NumEvents() != 2 {
		t.Fatalf("events = %+v", out.Events)
	}
	if out.Events[0].Time != 103 || out.Events[0].Value {
		t.Errorf("fall event %+v, want 0@103", out.Events[0])
	}
	if out.Events[1].Time != 206 || !out.Events[1].Value {
		t.Errorf("rise event %+v, want 1@206", out.Events[1])
	}
	// Only B switches: B arcs are used.
	out = arcs.Apply(trace.Trace{Initial: false}, mk(false, 100, 200))
	if out.Events[0].Time != 102 || out.Events[1].Time != 205 {
		t.Errorf("B-caused events %+v", out.Events)
	}
}

func TestNORArcsCausality(t *testing.T) {
	arcs := NORArcs{AFall: 3, ARise: 6, BFall: 2, BRise: 5}
	// A rises at 100 (output falls, A-caused). B rises at 150 (no output
	// change). A falls at 200 (no change: B still high). B falls at 300:
	// rising output caused by B.
	a := mk(false, 100, 200)
	b := mk(false, 150, 300)
	out := arcs.Apply(a, b)
	if out.NumEvents() != 2 {
		t.Fatalf("events = %+v", out.Events)
	}
	if out.Events[0].Time != 103 {
		t.Errorf("fall at %g, want 103 (A-caused)", out.Events[0].Time)
	}
	if out.Events[1].Time != 305 {
		t.Errorf("rise at %g, want 305 (B-caused)", out.Events[1].Time)
	}
}

func TestNORArcsPulseFiltering(t *testing.T) {
	arcs := NORArcs{AFall: 10, ARise: 10, BFall: 10, BRise: 10}
	// A 4-wide low pulse on A (B low): the output pulse is shorter than
	// the inertial delay and must vanish... here: A pulses high 100-104,
	// output would fall at 110 and rise at 114; inertial keeps it only if
	// the first transition commits before the second is scheduled. VHDL
	// semantics: at 104 the pending fall@110 is replaced by rise@114,
	// which restores the current (high) value: nothing is emitted.
	a := mk(false, 100, 104)
	out := arcs.Apply(a, trace.Trace{Initial: false})
	if out.NumEvents() != 0 {
		t.Errorf("short pulse survived: %+v", out.Events)
	}
	// A 15-wide pulse commits the first transition before the second
	// event arrives and is transmitted.
	a = mk(false, 100, 115)
	out = arcs.Apply(a, trace.Trace{Initial: false})
	if out.NumEvents() != 2 {
		t.Errorf("long pulse mangled: %+v", out.Events)
	}
}

// TestNORArcsTraceValid: outputs are always well-formed alternating
// traces, for random inputs.
func TestNORArcsTraceValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() trace.Trace {
			var ev []trace.Event
			tm := 0.0
			v := false
			for i := 0; i < rng.Intn(25); i++ {
				tm += 0.5 + rng.ExpFloat64()*10
				v = !v
				ev = append(ev, trace.Event{Time: tm, Value: v})
			}
			return trace.New(false, ev)
		}
		arcs := NORArcs{
			AFall: rng.Float64() * 8, ARise: rng.Float64() * 8,
			BFall: rng.Float64() * 8, BRise: rng.Float64() * 8,
		}
		out := arcs.Apply(gen(), gen())
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestNORArcsSettles: after all inputs settle, the output value is the
// NOR of the final input values.
func TestNORArcsSettles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() trace.Trace {
			var ev []trace.Event
			tm := 0.0
			v := false
			for i := 0; i < rng.Intn(15); i++ {
				tm += 20 + rng.Float64()*50 // widely spaced: no filtering
				v = !v
				ev = append(ev, trace.Event{Time: tm, Value: v})
			}
			return trace.New(false, ev)
		}
		a, b := gen(), gen()
		arcs := NORArcs{AFall: 3, ARise: 6, BFall: 2, BRise: 5}
		out := arcs.Apply(a, b)
		want := !(a.Final() || b.Final())
		return out.Final() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNORArcsMatchesIdealOrdering(t *testing.T) {
	// With zero delays the arcs model equals the zero-time NOR.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() trace.Trace {
			var ev []trace.Event
			tm := 0.0
			v := false
			for i := 0; i < rng.Intn(20); i++ {
				tm += 0.5 + rng.ExpFloat64()*5
				v = !v
				ev = append(ev, trace.Event{Time: tm, Value: v})
			}
			return trace.New(false, ev)
		}
		a, b := gen(), gen()
		out := NORArcs{}.Apply(a, b)
		ideal := trace.NOR2(a, b)
		if out.NumEvents() != ideal.NumEvents() {
			return false
		}
		for i := range out.Events {
			if math.Abs(out.Events[i].Time-ideal.Events[i].Time) > 1e-12 ||
				out.Events[i].Value != ideal.Events[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
