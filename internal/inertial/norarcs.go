package inertial

import (
	"fmt"

	"hybriddelay/internal/trace"
)

// NORArcs is the pin-aware inertial delay model of the 2-input NOR gate,
// kept as a named convenience over the arity-generic Arcs: the delay of
// an output transition depends on which input caused it.
type NORArcs struct {
	// AFall is the delay of a falling output caused by input A rising.
	AFall float64
	// ARise is the delay of a rising output caused by input A falling.
	ARise float64
	// BFall is the delay of a falling output caused by input B rising.
	BFall float64
	// BRise is the delay of a rising output caused by input B falling.
	BRise float64
}

// NORArcsFromSIS builds per-arc delays from the characteristic SIS
// delays: a falling output caused by A corresponds to delta_fall(+inf)
// (A switched first), caused by B to delta_fall(-inf); a rising output
// caused by A corresponds to delta_rise(-inf) (A switched last), caused
// by B to delta_rise(+inf).
func NORArcsFromSIS(fallMinusInf, fallPlusInf, riseMinusInf, risePlusInf float64) (NORArcs, error) {
	a := NORArcs{
		AFall: fallPlusInf,
		ARise: riseMinusInf,
		BFall: fallMinusInf,
		BRise: risePlusInf,
	}
	if err := a.Arcs().Validate(); err != nil {
		return NORArcs{}, fmt.Errorf("inertial: invalid arc delay in %+v", a)
	}
	return a, nil
}

// Arcs converts to the arity-generic per-pin representation (pin 0 = A,
// pin 1 = B).
func (n NORArcs) Arcs() Arcs {
	return Arcs{
		{Fall: n.AFall, Rise: n.ARise},
		{Fall: n.BFall, Rise: n.BRise},
	}
}

// Apply transforms two input traces into the NOR output trace with
// per-arc inertial delays and pulse cancellation.
func (n NORArcs) Apply(a, b trace.Trace) trace.Trace {
	return n.Arcs().Apply(func(in []bool) bool { return !(in[0] || in[1]) }, a, b)
}
