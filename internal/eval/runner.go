package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/pool"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// SeedResult is the outcome of one evaluation unit: one waveform
// configuration run once with one seed, scored against the golden
// reference.
type SeedResult struct {
	Config   gen.Config
	Seed     int64
	Area     map[string]float64 // absolute deviation area per model [s]
	GoldenEv int                // golden output transitions observed
}

// EvaluateSeed runs the pipeline for a single (config, seed) unit:
// generate the random inputs, obtain the digitized golden trace from the
// source, run every delay model and measure the deviation areas. It is
// the building block both the serial Evaluate and the parallel Runner
// are assembled from. The configuration's input count must match the
// model gate's arity.
func EvaluateSeed(golden GoldenSource, m Models, cfg gen.Config, seed int64) (SeedResult, error) {
	return EvaluateSeedContext(context.Background(), golden, m, cfg, seed)
}

// EvaluateSeedContext is EvaluateSeed with cancellation: ctx is checked
// between the unit's stages (trace generation, the golden run, the
// model runs), so a cancelled evaluation stops before its next analog
// transient instead of running the unit to completion.
func EvaluateSeedContext(ctx context.Context, golden GoldenSource, m Models, cfg gen.Config, seed int64) (SeedResult, error) {
	res := SeedResult{Config: cfg, Seed: seed, Area: map[string]float64{}}
	if m.Gate == nil {
		return res, fmt.Errorf("eval: Models.Gate is unset (build models through a registered gate)")
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	inputs, err := gen.Traces(cfg, seed)
	if err != nil {
		return res, err
	}
	if len(inputs) != m.Gate.Arity() {
		return res, fmt.Errorf("eval: gate %s needs %d inputs, config has %d",
			m.Gate.Name(), m.Gate.Arity(), len(inputs))
	}
	until := gen.Horizon(inputs, 600*waveform.Pico)
	g, err := golden.Golden(GoldenRequest{Config: cfg, Seed: seed, Inputs: inputs, Until: until})
	if err != nil {
		return res, fmt.Errorf("eval: seed %d: %w", seed, err)
	}
	res.GoldenEv = g.NumEvents()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	models, err := RunModels(m, inputs, until)
	if err != nil {
		return res, fmt.Errorf("eval: seed %d: %w", seed, err)
	}
	//hybrid:nondet-ok each model writes its own Area[name]; distinct keys, so visit order cannot change the result
	for name, tr := range models {
		res.Area[name] = trace.DeviationArea(g, tr, 0, until)
	}
	return res, nil
}

// MergeSeedResults folds per-seed results into a RunResult. Results are
// summed in the given order, so for a fixed seed order the merged
// floating-point sums are identical no matter how many workers produced
// the parts — this is what makes the parallel runner deterministic.
func MergeSeedResults(cfg gen.Config, parts []SeedResult) RunResult {
	res := RunResult{
		Config:     cfg,
		Seeds:      make([]int64, 0, len(parts)),
		Area:       map[string]float64{},
		Normalized: map[string]float64{},
	}
	for _, p := range parts {
		res.Seeds = append(res.Seeds, p.Seed)
		res.GoldenEv += p.GoldenEv
		//hybrid:nondet-ok one visit per distinct model key per part; parts fold in fixed slice order, so the float sums are reproducible
		for name, a := range p.Area {
			res.Area[name] += a
		}
	}
	base := res.Area[ModelInertial]
	//hybrid:nondet-ok each model writes its own Normalized[name] from a base read before the loop; distinct keys
	for name, a := range res.Area {
		if base <= 0 {
			// No inertial deviation to normalize against: the ratio is
			// undefined, not astronomically large (see RunResult.Normalized).
			res.Normalized[name] = math.NaN()
		} else {
			res.Normalized[name] = a / base
		}
	}
	return res
}

// Progress describes one completed evaluation unit. Completed counts all
// units finished so far (including this one) out of Total; Err is the
// unit's error, if any.
type Progress struct {
	Config    gen.Config
	Seed      int64
	Completed int
	Total     int
	Err       error
}

// Options configures the parallel evaluation runner.
type Options struct {
	// Workers bounds the worker pool. Zero or negative selects
	// runtime.GOMAXPROCS(0); one runs serially on the caller's bench.
	Workers int

	// Cache, when non-nil, memoizes digitized golden traces across
	// units, runs and benches (the gate name and bench parameters are
	// part of the key). Share one cache between calls to skip
	// re-simulating identical (gate, bench, config, seed) golden runs.
	Cache *GoldenCache

	// Progress, when non-nil, is invoked after each completed unit.
	// Calls are serialized; units may complete in any order.
	Progress func(Progress)

	// Batch sets how many consecutive units one worker claims per pool
	// round. When the golden source supports leasing (see Leaser), each
	// claim leases one bench for its whole batch, amortizing the
	// free-list round trip and keeping a warm solver workspace pinned to
	// the worker. Results are bit-identical for every batch size (the
	// merge order is fixed by the unit index, not by scheduling). Zero
	// selects an automatic size (about two claims per worker); one
	// disables batching.
	Batch int
}

// Runner fans evaluation units (config × seed) across a bounded worker
// pool. Each worker obtains private bench instances through the golden
// source, so no simulator state is shared; results are merged in seed
// order, making the output independent of the worker count.
type Runner struct {
	golden   GoldenSource
	models   Models
	workers  int
	batch    int
	progress func(Progress)
}

// batchSize resolves the configured batch size for a run of total
// units: explicit sizes pass through, zero picks roughly two claims per
// worker so the tail stays balanced.
func batchSize(batch, total, workers int) int {
	if batch > 0 {
		return batch
	}
	b := (total + 2*workers - 1) / (2 * workers)
	if b < 1 {
		b = 1
	}
	return b
}

// NewGateRunner builds a runner evaluating the given models against any
// gate bench's golden reference. The bench itself is reused as one of
// the pool's instances; extra workers run on instances built from its
// gate and parameters. opt may be nil for defaults.
func NewGateRunner(bench gate.Bench, m Models, opt *Options) *Runner {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	src := GoldenSource(NewGateBenchSource(bench))
	if o.Cache != nil {
		src = CachedSource{Gate: bench.Gate().Name(), Bench: bench.Params(), Cache: o.Cache, Src: src}
	}
	return &Runner{golden: src, models: m, workers: o.Workers, batch: o.Batch, progress: o.Progress}
}

// NewRunner builds a runner for the default NOR2 golden bench; see
// NewGateRunner for the gate-generic form.
func NewRunner(bench *nor.Bench, m Models, opt *Options) *Runner {
	return NewGateRunner(&gate.NOR2Bench{B: bench}, m, opt)
}

// NewSourceRunner builds a runner over an arbitrary golden source — the
// session engine composes pooled and cached sources itself and hands
// the finished source here. opt.Cache is ignored (a source-level cache
// needs the gate name and bench parameters for its keys; compose a
// CachedSource instead); opt.Workers and opt.Progress apply as in
// NewGateRunner.
func NewSourceRunner(src GoldenSource, m Models, opt *Options) *Runner {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{golden: src, models: m, workers: o.Workers, batch: o.Batch, progress: o.Progress}
}

// Run evaluates every configuration over the given seeds and returns one
// merged RunResult per configuration, in input order. On the first unit
// error the pool stops picking up new units and the error of the
// earliest failed unit (in config-major, seed-minor order) is returned.
func (r *Runner) Run(configs []gen.Config, seeds []int64) ([]RunResult, error) {
	return r.RunContext(context.Background(), configs, seeds)
}

// RunContext is Run with cancellation: once ctx is done no new units
// are claimed, in-flight units stop at their next stage boundary, and
// ctx.Err() is returned (unit errors that occurred before the
// cancellation take precedence).
func (r *Runner) RunContext(ctx context.Context, configs []gen.Config, seeds []int64) ([]RunResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: no seeds supplied")
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("eval: no configurations supplied")
	}
	total := len(configs) * len(seeds)
	parts := make([]SeedResult, total)
	errs := make([]error, total)

	var progressMu sync.Mutex
	completed := 0
	unitDone := func(i int, err error) {
		if r.progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		r.progress(Progress{
			Config: configs[i/len(seeds)], Seed: seeds[i%len(seeds)],
			Completed: completed, Total: total, Err: err,
		})
		progressMu.Unlock()
	}
	// Workers claim batches of consecutive units; a claim leases one
	// bench (when the source supports it) for all of its units. The
	// per-unit results and errors land in index-addressed slots, so
	// batching cannot change what is merged or which error wins.
	batch := batchSize(r.batch, total, r.workers)
	nBatches := (total + batch - 1) / batch
	ctxErr := pool.RunContext(ctx, nBatches, r.workers, func(bi int) error {
		lo := bi * batch
		hi := lo + batch
		if hi > total {
			hi = total
		}
		src := r.golden
		if l, ok := src.(Leaser); ok {
			leased, release, err := l.Lease()
			if err == nil {
				src = leased
				defer release()
			}
			// A failed lease falls back to the shared source: if the
			// bench constructor is broken, the unit's own golden run
			// reproduces the error with full context.
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			parts[i], errs[i] = EvaluateSeedContext(ctx, src, r.models, configs[i/len(seeds)], seeds[i%len(seeds)])
			unitDone(i, errs[i])
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}, nil)
	for _, err := range errs {
		// Context-flavoured unit errors are only collapsed into the
		// run's own ctx.Err(); if this run is live they are real unit
		// failures and must surface.
		if err != nil && !(ctxErr != nil && IsContextErr(err)) {
			return nil, err
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	out := make([]RunResult, len(configs))
	for ci := range configs {
		out[ci] = MergeSeedResults(configs[ci], parts[ci*len(seeds):(ci+1)*len(seeds)])
	}
	return out, nil
}

// IsContextErr reports whether an error is (or wraps) a context
// cancellation. The engines use it to collapse context-flavoured unit
// errors into a cancelled run's single ctx.Err().
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// EvaluateParallel runs the Fig. 7 pipeline for one configuration over
// the given seeds on a bounded worker pool against the default NOR2
// bench. For a fixed seed list the result is bit-identical to the serial
// Evaluate regardless of the worker count; see Options for caching and
// progress reporting, and NewGateRunner for other gates.
func EvaluateParallel(bench *nor.Bench, m Models, cfg gen.Config, seeds []int64, opt *Options) (RunResult, error) {
	res, err := NewRunner(bench, m, opt).Run([]gen.Config{cfg}, seeds)
	if err != nil {
		return RunResult{Config: cfg, Area: map[string]float64{}, Normalized: map[string]float64{}}, err
	}
	return res[0], nil
}
