package eval

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

// stampSource is a synthetic GoldenSource returning a trace whose single
// event time encodes the source's identity, so cache aliasing between
// sources is detectable in the returned data.
type stampSource struct {
	stamp float64
	calls int
}

func (s *stampSource) Golden(GoldenRequest) (trace.Trace, error) {
	s.calls++
	return trace.New(true, []trace.Event{{Time: s.stamp, Value: false}}), nil
}

// TestGoldenCacheKeyIncludesGate: a NOR2 and a NAND2 golden run of the
// same (bench parameters, config, seed) must never collide in a shared
// cache — the regression that motivated adding the gate name to
// GoldenKey (all benches are built from the same nor.Params type, so
// parameters alone cannot distinguish the topologies).
func TestGoldenCacheKeyIncludesGate(t *testing.T) {
	cache := NewGoldenCache()
	params := nor.DefaultParams()
	cfg := testConfig(8)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := GoldenRequest{Config: cfg, Seed: 1, Inputs: inputs, Until: 1e-9}

	norSrc := &stampSource{stamp: 1e-9}
	nandSrc := &stampSource{stamp: 2e-9}
	norCached := CachedSource{Gate: "nor2", Bench: params, Cache: cache, Src: norSrc}
	nandCached := CachedSource{Gate: "nand2", Bench: params, Cache: cache, Src: nandSrc}

	norOut, err := norCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	nandOut, err := nandCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	if norSrc.calls != 1 || nandSrc.calls != 1 {
		t.Fatalf("computed %d/%d times, want 1/1 (gate missing from the key aliases the second gate onto the first)",
			norSrc.calls, nandSrc.calls)
	}
	if norOut.Events[0].Time == nandOut.Events[0].Time {
		t.Fatalf("NOR2 and NAND2 traces collided for the same (config, seed): both %g", norOut.Events[0].Time)
	}
	// Warm lookups keep serving the right gate.
	norOut2, err := norCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	nandOut2, err := nandCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	if norOut2.Events[0].Time != 1e-9 || nandOut2.Events[0].Time != 2e-9 {
		t.Errorf("warm lookups crossed gates: nor=%g nand=%g", norOut2.Events[0].Time, nandOut2.Events[0].Time)
	}
	if st := cache.Stats(); st.Entries != 2 || st.Misses != 2 || st.Hits != 2 {
		t.Errorf("stats %+v, want 2 entries / 2 misses / 2 hits", cache.Stats())
	}
}

// TestGateRunnerDeterministicAcrossWorkers: the runner's merged areas
// are independent of the worker count on a synthetic golden source
// (scheduling only; the analog path is covered by the cross-gate tests).
func TestGateRunnerDeterministicAcrossWorkers(t *testing.T) {
	m := cheapModels(t)
	cfg := testConfig(12)
	seeds := []int64{1, 2, 3, 4}
	src := &countingSource{}
	base, err := (&Runner{golden: src, models: m, workers: 1}).Run([]gen.Config{cfg}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		res, err := (&Runner{golden: src, models: m, workers: workers}).Run([]gen.Config{cfg}, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range base[0].Area {
			if res[0].Area[name] != v {
				t.Errorf("workers=%d: Area[%s] = %g, want %g", workers, name, res[0].Area[name], v)
			}
		}
	}
}

// TestEvaluateSeedRejectsNilGate: a Models literal missing the Gate
// field errors descriptively instead of panicking.
func TestEvaluateSeedRejectsNilGate(t *testing.T) {
	m := cheapModels(t)
	m.Gate = nil
	if _, err := EvaluateSeed(&countingSource{}, m, testConfig(4), 1); err == nil {
		t.Fatal("nil Models.Gate accepted")
	}
}

// keyStampSource returns, for every request, a trace whose single event
// encodes the full identity of the key the request should be filed
// under. Any cache that ever returns a trace for the wrong (gate,
// bench-params, config, seed) key is caught by re-deriving the stamp.
type keyStampSource struct {
	gate  string
	bench nor.Params
}

// stampFor derives a value unique to the (gate, bench, config, seed)
// combination used by the mixed-scenario property test.
func stampFor(gateName string, bench nor.Params, cfg gen.Config, seed int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%g|%g|%s|%d|%d", gateName, bench.Supply.VDD, bench.CO, cfg.Name(), cfg.Transitions, seed)
	return float64(h.Sum64()%1_000_003) * 1e-15
}

func (s keyStampSource) Golden(req GoldenRequest) (trace.Trace, error) {
	return trace.New(true, []trace.Event{{Time: stampFor(s.gate, s.bench, req.Config, req.Seed), Value: false}}), nil
}

// TestGoldenCacheConcurrentMixedScenarios is the sweep-engine property
// test: one cache shared by many concurrent "scenarios" (every
// combination of gate, bench parametrization, config and seed, as a
// grid sweep produces) must never serve a trace computed for a
// different key, and its hit/miss accounting must add up. Run under
// -race in CI.
func TestGoldenCacheConcurrentMixedScenarios(t *testing.T) {
	gates := []string{"nor2", "nand2", "nor3"}
	benches := []nor.Params{nor.DefaultParams(), nor.DefaultParams()}
	benches[1].CO *= 2 // second operating point: same type, scaled load
	configs := []gen.Config{testConfig(4), testConfig(8)}
	seeds := []int64{1, 2, 3}

	cache := NewGoldenCache()
	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*len(gates)*len(benches))
	var hits, misses atomic.Int64
	for r := 0; r < rounds; r++ {
		for _, gateName := range gates {
			for bi := range benches {
				wg.Add(1)
				go func(gateName string, bench nor.Params) {
					defer wg.Done()
					src := CachedSource{Gate: gateName, Bench: bench, Cache: cache,
						Src: keyStampSource{gate: gateName, bench: bench}}
					for _, cfg := range configs {
						for _, seed := range seeds {
							key := GoldenKey{Gate: gateName, Bench: bench, Config: cfg, Seed: seed}
							out, hit, err := cache.GetOrComputeTracked(key, func() (trace.Trace, error) {
								return keyStampSource{gate: gateName, bench: bench}.Golden(GoldenRequest{Config: cfg, Seed: seed})
							})
							if err != nil {
								errCh <- err
								return
							}
							if hit {
								hits.Add(1)
							} else {
								misses.Add(1)
							}
							if want := stampFor(gateName, bench, cfg, seed); out.Events[0].Time != want {
								errCh <- fmt.Errorf("key %+v served stamp %g, want %g — wrong scenario's trace",
									key, out.Events[0].Time, want)
								return
							}
							// The CachedSource path derives the same key.
							out2, err := src.Golden(GoldenRequest{Config: cfg, Seed: seed})
							if err != nil {
								errCh <- err
								return
							}
							if out2.Events[0].Time != out.Events[0].Time {
								errCh <- fmt.Errorf("CachedSource and direct lookup disagree for %+v", key)
								return
							}
						}
					}
				}(gateName, benches[bi])
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	distinct := len(gates) * len(benches) * len(configs) * len(seeds)
	st := cache.Stats()
	if st.Entries != distinct {
		t.Errorf("cache holds %d entries, want %d (one per distinct key)", st.Entries, distinct)
	}
	if st.Misses != int64(distinct) {
		t.Errorf("cache computed %d times, want exactly once per key (%d)", st.Misses, distinct)
	}
	if hits.Load()+misses.Load() != int64(rounds*len(gates)*len(benches)*len(configs)*len(seeds)) {
		t.Errorf("tracked hits (%d) + misses (%d) do not cover every lookup", hits.Load(), misses.Load())
	}
	if misses.Load() != int64(distinct) {
		t.Errorf("tracked misses = %d, want %d", misses.Load(), distinct)
	}
}
