package eval

import (
	"testing"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

// stampSource is a synthetic GoldenSource returning a trace whose single
// event time encodes the source's identity, so cache aliasing between
// sources is detectable in the returned data.
type stampSource struct {
	stamp float64
	calls int
}

func (s *stampSource) Golden(GoldenRequest) (trace.Trace, error) {
	s.calls++
	return trace.New(true, []trace.Event{{Time: s.stamp, Value: false}}), nil
}

// TestGoldenCacheKeyIncludesGate: a NOR2 and a NAND2 golden run of the
// same (bench parameters, config, seed) must never collide in a shared
// cache — the regression that motivated adding the gate name to
// GoldenKey (all benches are built from the same nor.Params type, so
// parameters alone cannot distinguish the topologies).
func TestGoldenCacheKeyIncludesGate(t *testing.T) {
	cache := NewGoldenCache()
	params := nor.DefaultParams()
	cfg := testConfig(8)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := GoldenRequest{Config: cfg, Seed: 1, Inputs: inputs, Until: 1e-9}

	norSrc := &stampSource{stamp: 1e-9}
	nandSrc := &stampSource{stamp: 2e-9}
	norCached := CachedSource{Gate: "nor2", Bench: params, Cache: cache, Src: norSrc}
	nandCached := CachedSource{Gate: "nand2", Bench: params, Cache: cache, Src: nandSrc}

	norOut, err := norCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	nandOut, err := nandCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	if norSrc.calls != 1 || nandSrc.calls != 1 {
		t.Fatalf("computed %d/%d times, want 1/1 (gate missing from the key aliases the second gate onto the first)",
			norSrc.calls, nandSrc.calls)
	}
	if norOut.Events[0].Time == nandOut.Events[0].Time {
		t.Fatalf("NOR2 and NAND2 traces collided for the same (config, seed): both %g", norOut.Events[0].Time)
	}
	// Warm lookups keep serving the right gate.
	norOut2, err := norCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	nandOut2, err := nandCached.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	if norOut2.Events[0].Time != 1e-9 || nandOut2.Events[0].Time != 2e-9 {
		t.Errorf("warm lookups crossed gates: nor=%g nand=%g", norOut2.Events[0].Time, nandOut2.Events[0].Time)
	}
	if st := cache.Stats(); st.Entries != 2 || st.Misses != 2 || st.Hits != 2 {
		t.Errorf("stats %+v, want 2 entries / 2 misses / 2 hits", cache.Stats())
	}
}

// TestGateRunnerDeterministicAcrossWorkers: the runner's merged areas
// are independent of the worker count on a synthetic golden source
// (scheduling only; the analog path is covered by the cross-gate tests).
func TestGateRunnerDeterministicAcrossWorkers(t *testing.T) {
	m := cheapModels(t)
	cfg := testConfig(12)
	seeds := []int64{1, 2, 3, 4}
	src := &countingSource{}
	base, err := (&Runner{golden: src, models: m, workers: 1}).Run([]gen.Config{cfg}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		res, err := (&Runner{golden: src, models: m, workers: workers}).Run([]gen.Config{cfg}, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range base[0].Area {
			if res[0].Area[name] != v {
				t.Errorf("workers=%d: Area[%s] = %g, want %g", workers, name, res[0].Area[name], v)
			}
		}
	}
}

// TestEvaluateSeedRejectsNilGate: a Models literal missing the Gate
// field errors descriptively instead of panicking.
func TestEvaluateSeedRejectsNilGate(t *testing.T) {
	m := cheapModels(t)
	m.Gate = nil
	if _, err := EvaluateSeed(&countingSource{}, m, testConfig(4), 1); err == nil {
		t.Fatal("nil Models.Gate accepted")
	}
}
