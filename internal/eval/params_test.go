package eval

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// fakeGate is a synthetic registry-shaped gate whose preparation chain
// is instant, so cache tests exercise memoization and singleflight
// rather than analog accuracy. benches/measures count the expensive
// calls; failMeasure makes the next Measure fail once.
type fakeGate struct {
	name        string
	benches     atomic.Int64
	measures    atomic.Int64
	failMeasure atomic.Bool
}

func (g *fakeGate) Name() string         { return g.name }
func (g *fakeGate) Describe() string     { return "synthetic test gate" }
func (g *fakeGate) Arity() int           { return 2 }
func (g *fakeGate) Logic(in []bool) bool { return !(in[0] || in[1]) }
func (g *fakeGate) NewBench(p nor.Params) (gate.Bench, error) {
	g.benches.Add(1)
	return &fakeBench{g: g, p: p}, nil
}
func (g *fakeGate) Stamp(c *spice.Circuit, prefix, outName string, p nor.Params, vdd spice.NodeID, in []spice.NodeID, init []bool) (gate.Subcircuit, error) {
	return gate.Subcircuit{}, fmt.Errorf("fake gate has no analog subcircuit")
}
func (g *fakeGate) BuildModels(meas gate.Measurement, supply waveform.Supply, expDMin float64) (gate.Models, error) {
	// Table I parameters instead of a fitted characteristic: the cache
	// tests exercise memoization, not accuracy.
	hm := hybrid.TableI()
	hm0 := hm
	hm0.DMin = 0
	arcs, err := inertial.NORArcsFromSIS(40e-12, 38e-12, 53e-12, 56e-12)
	if err != nil {
		return gate.Models{}, err
	}
	exp, err := idm.ExpFromSIS(54.5e-12, 39e-12, expDMin)
	if err != nil {
		return gate.Models{}, err
	}
	return gate.Models{
		Gate:     g,
		Inertial: arcs.Arcs(),
		Exp:      exp,
		HM:       gate.NOR2Model{P: hm},
		HMNoDMin: gate.NOR2Model{P: hm0},
		Supply:   hm.Supply,
	}, nil
}

type fakeBench struct {
	g *fakeGate
	p nor.Params
}

func (b *fakeBench) Gate() gate.Gate    { return b.g }
func (b *fakeBench) Params() nor.Params { return b.p }
func (b *fakeBench) Measure() (gate.Measurement, error) {
	b.g.measures.Add(1)
	if b.g.failMeasure.CompareAndSwap(true, false) {
		return gate.Measurement{}, fmt.Errorf("synthetic measurement failure")
	}
	return gate.Measurement{}, nil
}
func (b *fakeBench) Golden(inputs []trace.Trace, until float64) (trace.Trace, error) {
	return trace.New(true, nil), nil
}

func TestParamCacheMemoizes(t *testing.T) {
	g := &fakeGate{name: "fake2"}
	cache := NewParamCache()
	ctx := context.Background()
	p1 := nor.DefaultParams()
	p2 := p1
	p2.CO *= 2

	first, err := cache.OperatingPoint(ctx, g, p1, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cache.OperatingPoint(ctx, g, p1, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("repeated lookup did not return the shared operating point")
	}
	if _, err := cache.OperatingPoint(ctx, g, p2, 20e-12); err != nil {
		t.Fatal(err)
	}
	// A different expDMin is a different parametrization.
	if _, err := cache.OperatingPoint(ctx, g, p1, 10e-12); err != nil {
		t.Fatal(err)
	}
	if got := g.measures.Load(); got != 3 {
		t.Errorf("measured %d times, want 3 (one per distinct key)", got)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 1 hit / 3 misses / 3 entries", st)
	}
}

func TestParamCacheSingleflight(t *testing.T) {
	g := &fakeGate{name: "fake2"}
	cache := NewParamCache()
	p := nor.DefaultParams()
	const callers = 16
	pts := make([]*OperatingPoint, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pt, err := cache.OperatingPoint(context.Background(), g, p, 20e-12)
			if err != nil {
				t.Error(err)
				return
			}
			pts[i] = pt
		}(i)
	}
	wg.Wait()
	if got := g.measures.Load(); got != 1 {
		t.Errorf("measured %d times under %d concurrent callers, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if pts[i] != pts[0] {
			t.Fatalf("caller %d got a different operating point", i)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestParamCacheErrorEviction(t *testing.T) {
	g := &fakeGate{name: "fake2"}
	g.failMeasure.Store(true)
	cache := NewParamCache()
	p := nor.DefaultParams()
	if _, err := cache.OperatingPoint(context.Background(), g, p, 20e-12); err == nil {
		t.Fatal("failed preparation did not error")
	}
	// The failure was evicted: the retry prepares again and succeeds.
	pt, err := cache.OperatingPoint(context.Background(), g, p, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if pt == nil || pt.Models.Gate == nil {
		t.Fatal("retry returned no operating point")
	}
	if got := g.measures.Load(); got != 2 {
		t.Errorf("measured %d times, want 2 (failure + retry)", got)
	}
	if st := cache.Stats(); st.Entries != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 entry and no hits", st)
	}
}

func TestParamCacheContextCancelled(t *testing.T) {
	g := &fakeGate{name: "fake2"}
	cache := NewParamCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.OperatingPoint(ctx, g, nor.DefaultParams(), 20e-12); err != context.Canceled {
		t.Fatalf("cancelled preparation returned %v, want context.Canceled", err)
	}
	if got := g.measures.Load(); got != 0 {
		t.Errorf("cancelled preparation still measured %d times", got)
	}
}

func TestPrepareOperatingPointRealGate(t *testing.T) {
	if testing.Short() {
		t.Skip("analog preparation in -short mode")
	}
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	pt, err := PrepareOperatingPoint(context.Background(), gate.NOR2, p, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Models.Gate.Name() != "nor2" {
		t.Errorf("prepared models for %q, want nor2", pt.Models.Gate.Name())
	}
	if pt.Golden == nil || pt.Golden.Gate().Name() != "nor2" {
		t.Error("prepared operating point has no pooled golden source")
	}
}
