package eval

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

// cheapModels builds a model set without touching the analog bench
// (Table I parameters instead of a fitted characteristic), for runner
// tests that exercise scheduling rather than accuracy.
func cheapModels(t *testing.T) Models {
	t.Helper()
	hm := hybrid.TableI()
	hm0 := hm
	hm0.DMin = 0
	arcs, err := inertial.NORArcsFromSIS(40e-12, 38e-12, 53e-12, 56e-12)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := idm.ExpFromSIS(54.5e-12, 39e-12, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	return Models{
		Gate:     gate.NOR2,
		Inertial: arcs.Arcs(),
		Exp:      exp,
		HM:       gate.NOR2Model{P: hm},
		HMNoDMin: gate.NOR2Model{P: hm0},
		Supply:   hm.Supply,
	}
}

// countingSource is a synthetic GoldenSource recording how often it
// computes; failSeed (when non-zero) errors on that seed's first call.
type countingSource struct {
	mu       sync.Mutex
	calls    int
	failSeed int64
	failed   bool
}

func (s *countingSource) Golden(req GoldenRequest) (trace.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if req.Seed == s.failSeed && !s.failed {
		s.failed = true
		return trace.Trace{}, fmt.Errorf("synthetic golden failure")
	}
	// A fixed plausible NOR output: starts high, one falling edge.
	return trace.New(true, []trace.Event{{Time: 1e-9, Value: false}}), nil
}

func (s *countingSource) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func testConfig(transitions int) gen.Config {
	cfg := gen.PaperConfigs()[0]
	cfg.Transitions = transitions
	return cfg
}

func TestGoldenCacheHitMiss(t *testing.T) {
	inner := &countingSource{}
	cache := NewGoldenCache()
	src := CachedSource{Gate: "nor2", Bench: nor.DefaultParams(), Cache: cache, Src: inner}
	cfg := testConfig(4)
	inputs, err := gen.Traces(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := GoldenRequest{Config: cfg, Seed: 1, Inputs: inputs, Until: 1e-9}

	if _, err := src.Golden(req); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Golden(req); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 1 {
		t.Errorf("identical requests computed %d times, want 1", inner.count())
	}
	req2 := req
	req2.Seed = 2
	if _, err := src.Golden(req2); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 2 {
		t.Errorf("distinct seed did not compute (calls=%d)", inner.count())
	}
	// A different bench parametrization must not alias the same seed.
	otherBench := nor.DefaultParams()
	otherBench.CO *= 2
	src2 := CachedSource{Gate: "nor2", Bench: otherBench, Cache: cache, Src: inner}
	if _, err := src2.Golden(req); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 3 {
		t.Errorf("distinct bench params did not compute (calls=%d)", inner.count())
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 {
		t.Errorf("stats %+v, want 1 hit / 3 misses / 3 entries", st)
	}
}

func TestGoldenCacheDoesNotCacheErrors(t *testing.T) {
	inner := &countingSource{failSeed: 7}
	cache := NewGoldenCache()
	src := CachedSource{Gate: "nor2", Bench: nor.DefaultParams(), Cache: cache, Src: inner}
	req := GoldenRequest{Config: testConfig(4), Seed: 7}
	if _, err := src.Golden(req); err == nil {
		t.Fatal("first call should fail")
	}
	if _, err := src.Golden(req); err != nil {
		t.Fatalf("retry after failure should recompute and succeed: %v", err)
	}
	if inner.count() != 2 {
		t.Errorf("error was cached (calls=%d, want 2)", inner.count())
	}
}

func TestRunnerEarlyErrorAndProgress(t *testing.T) {
	m := cheapModels(t)
	src := &countingSource{failSeed: 3}
	r := &Runner{golden: src, models: m, workers: 4}
	var events []Progress
	r.progress = func(p Progress) { events = append(events, p) }
	cfg := testConfig(4)
	_, err := r.Run([]gen.Config{cfg}, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	if err == nil {
		t.Fatal("runner swallowed the unit error")
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	sawErr := false
	for _, p := range events {
		if p.Total != 8 || p.Completed < 1 || p.Completed > 8 {
			t.Errorf("malformed progress event %+v", p)
		}
		if p.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("failing unit never reported through progress")
	}
}

func TestRunnerValidation(t *testing.T) {
	m := cheapModels(t)
	r := &Runner{golden: &countingSource{}, models: m, workers: 2}
	if _, err := r.Run([]gen.Config{testConfig(4)}, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := r.Run(nil, []int64{1}); err == nil {
		t.Error("empty config list accepted")
	}
}

func TestMergeSeedResultsNaNOnZeroBaseline(t *testing.T) {
	cfg := testConfig(4)
	parts := []SeedResult{{
		Config: cfg,
		Seed:   1,
		Area:   map[string]float64{ModelInertial: 0, ModelHM: 1e-12},
	}}
	res := MergeSeedResults(cfg, parts)
	for name, v := range res.Normalized {
		if !math.IsNaN(v) {
			t.Errorf("Normalized[%s] = %g with zero baseline, want NaN", name, v)
		}
	}
}

// TestEvaluateParallelDeterministic: the acceptance property of the
// concurrent engine — identical Area maps for 1, 4 and 8 workers, all
// bit-identical to the serial Evaluate (run under -race in CI).
func TestEvaluateParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	b := evalBench(t)
	m := cheapModels(t)
	cfg := testConfig(40)
	seeds := []int64{1, 2, 3, 4, 5, 6}

	serial, err := Evaluate(b, m, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewGoldenCache()
	for _, workers := range []int{1, 4, 8} {
		res, err := EvaluateParallel(b, m, cfg, seeds, &Options{Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if res.GoldenEv != serial.GoldenEv {
			t.Errorf("workers=%d: golden events %d != serial %d", workers, res.GoldenEv, serial.GoldenEv)
		}
		for _, name := range ModelNames {
			if res.Area[name] != serial.Area[name] {
				t.Errorf("workers=%d: Area[%s] = %g != serial %g",
					workers, name, res.Area[name], serial.Area[name])
			}
			if res.Normalized[name] != serial.Normalized[name] {
				t.Errorf("workers=%d: Normalized[%s] = %g != serial %g",
					workers, name, res.Normalized[name], serial.Normalized[name])
			}
		}
	}
	st := cache.Stats()
	if st.Misses != int64(len(seeds)) {
		t.Errorf("cache misses = %d, want one per seed (%d)", st.Misses, len(seeds))
	}
	if st.Hits != int64(2*len(seeds)) {
		t.Errorf("cache hits = %d, want %d (two warm passes)", st.Hits, 2*len(seeds))
	}
}
