package eval

import (
	"reflect"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/waveform"
)

func TestBatchSize(t *testing.T) {
	cases := []struct {
		batch, total, workers, want int
	}{
		{1, 100, 4, 1},  // explicit sizes pass through
		{7, 100, 4, 7},  //
		{0, 100, 4, 13}, // auto: ~two claims per worker, rounded up
		{0, 8, 4, 1},    // auto never exceeds one claim's worth of need
		{0, 1, 8, 1},    // never below one
		{0, 16, 1, 8},   // serial still batches for lease amortization
		{3, 2, 8, 3},    // oversize explicit batches are allowed
	}
	for _, c := range cases {
		if got := batchSize(c.batch, c.total, c.workers); got != c.want {
			t.Errorf("batchSize(%d, %d, %d) = %d, want %d", c.batch, c.total, c.workers, got, c.want)
		}
	}
}

// TestLeaseDelegation: leases pin one bench while keeping the
// computation identical, and the cache stays in front of a leased
// source so batched units still hit it.
func TestLeaseDelegation(t *testing.T) {
	inner := &countingSource{}
	cache := NewGoldenCache()
	src := CachedSource{Gate: "nor2", Bench: nor.DefaultParams(), Cache: cache, Src: inner}

	leased, release, err := src.Lease()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	req := GoldenRequest{Config: testConfig(8), Seed: 1, Until: 1e-9}
	if _, err := leased.Golden(req); err != nil {
		t.Fatal(err)
	}
	if _, err := leased.Golden(req); err != nil {
		t.Fatal(err)
	}
	if inner.count() != 1 {
		t.Errorf("inner computed %d times under a lease, want 1 (cache in front)", inner.count())
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestBenchSourceLeaseBitIdentical: a leased pooled bench returns the
// same trace as the shared path, and release returns the bench for the
// next lease instead of leaking pool slots.
func TestBenchSourceLeaseBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	b := evalBench(t)
	src := NewBenchSource(b)
	cfg := testConfig(6)
	inputs, err := gen.Traces(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	req := GoldenRequest{
		Config: cfg, Seed: 3, Inputs: inputs,
		Until: gen.Horizon(inputs, 600*waveform.Pico),
	}
	want, err := src.Golden(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		leased, release, err := src.Lease()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		got, err := leased.Golden(req)
		release()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lease %d: trace differs from shared path", i)
		}
	}
}

// TestEvaluateParallelBatchBitIdentical: the acceptance property of
// batched claiming — every batch size (disabled, small, auto,
// oversized) produces Area maps bit-identical to the serial reference
// (run under -race in CI).
func TestEvaluateParallelBatchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	b := evalBench(t)
	m := cheapModels(t)
	cfg := testConfig(24)
	seeds := []int64{1, 2, 3, 4, 5}

	serial, err := Evaluate(b, m, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 0, 9} {
		res, err := EvaluateParallel(b, m, cfg, seeds, &Options{Workers: 4, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if res.GoldenEv != serial.GoldenEv {
			t.Errorf("batch=%d: golden events %d != serial %d", batch, res.GoldenEv, serial.GoldenEv)
		}
		for _, name := range ModelNames {
			if res.Area[name] != serial.Area[name] {
				t.Errorf("batch=%d: Area[%s] = %g != serial %g", batch, name, res.Area[name], serial.Area[name])
			}
			if res.Normalized[name] != serial.Normalized[name] {
				t.Errorf("batch=%d: Normalized[%s] = %g != serial %g",
					batch, name, res.Normalized[name], serial.Normalized[name])
			}
		}
	}
}

// TestEvaluateCircuitBatchBitIdentical: batched circuit evaluation over
// the c17 benchmark netlist matches the unbatched reference exactly on
// every recorded net.
func TestEvaluateCircuitBatchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	nl := netlist.C17("c17")
	m := cheapModels(t)
	nand, ok := gate.Lookup("nand2")
	if !ok {
		t.Fatal("nand2 not registered")
	}
	m.Gate = nand // the Table-I delay params stand in; only determinism matters here
	ms := netlist.ModelSet{"nand2": m}
	p := evalBench(t).P
	cfg := testConfig(8)
	cfg.Inputs = len(nl.Inputs)
	seeds := []int64{1, 2}

	serial, err := EvaluateCircuit(nl, p, ms, cfg, seeds, &Options{Workers: 1, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 3} {
		res, err := EvaluateCircuit(nl, p, ms, cfg, seeds, &Options{Workers: 4, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		for _, net := range serial.Nets {
			if res.GoldenEv[net] != serial.GoldenEv[net] {
				t.Errorf("batch=%d: golden events[%s] = %d != %d",
					batch, net, res.GoldenEv[net], serial.GoldenEv[net])
			}
			for _, model := range ModelNames {
				if res.Area[net][model] != serial.Area[net][model] {
					t.Errorf("batch=%d: Area[%s][%s] = %g != %g",
						batch, net, model, res.Area[net][model], serial.Area[net][model])
				}
			}
		}
		for _, model := range ModelNames {
			if res.TotalNormalized[model] != serial.TotalNormalized[model] {
				t.Errorf("batch=%d: TotalNormalized[%s] = %g != %g",
					batch, model, res.TotalNormalized[model], serial.TotalNormalized[model])
			}
		}
	}
}
