package eval

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/pool"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// This file lifts the Fig. 7 accuracy pipeline from one gate to whole
// circuits: a netlist's composed analog bench produces a golden trace
// per recorded net, every delay model is elaborated over the same
// netlist as a topological dataflow of its offline per-gate appliers,
// and each recorded net is scored by deviation area — the single-gate
// pipeline is the exact one-instance special case (bit-identical, see
// the property test).

// CircuitGoldenSource produces the digitized composed golden traces of
// a netlist run, one per recorded net. Implementations must be safe for
// concurrent use.
type CircuitGoldenSource interface {
	GoldenNets(req GoldenRequest) (map[string]trace.Trace, error)
}

// CircuitBenchSource is a CircuitGoldenSource backed by a pool of
// composed transistor-level benches, one handed to each concurrent
// request (cf. BenchSource for single gates).
type CircuitBenchSource struct {
	nl *netlist.Netlist
	p  nor.Params

	mu   sync.Mutex
	free []*netlist.Bench
}

// NewCircuitBenchSource wraps a composed bench as a concurrency-safe
// golden source; extra instances are cloned on demand.
func NewCircuitBenchSource(b *netlist.Bench) *CircuitBenchSource {
	return &CircuitBenchSource{nl: b.Netlist(), p: b.Params(), free: []*netlist.Bench{b}}
}

func (s *CircuitBenchSource) acquire() (*netlist.Bench, error) {
	s.mu.Lock()
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	return netlist.NewBench(s.nl, s.p)
}

func (s *CircuitBenchSource) release(b *netlist.Bench) {
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

// SolverStats aggregates the solver counters of the pooled composed
// benches; only idle (released) instances are counted, so take the
// snapshot between jobs (cf. BenchSource.SolverStats).
func (s *CircuitBenchSource) SolverStats() spice.SolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st spice.SolverStats
	for _, b := range s.free {
		st.Add(b.SolverStats())
	}
	return st
}

// GoldenNets implements CircuitGoldenSource on a private bench.
func (s *CircuitBenchSource) GoldenNets(req GoldenRequest) (map[string]trace.Trace, error) {
	b, err := s.acquire()
	if err != nil {
		return nil, err
	}
	out, err := b.Golden(req.Inputs, req.Until)
	s.release(b)
	return out, err
}

// CircuitLeaser is the circuit counterpart of Leaser: sources that can
// pin one composed bench to a single goroutine for a batch of
// consecutive units.
type CircuitLeaser interface {
	LeaseCircuit() (CircuitGoldenSource, func(), error)
}

// leasedCircuitBench is a CircuitBenchSource lease: one pinned bench.
type leasedCircuitBench struct {
	b *netlist.Bench
}

// GoldenNets implements CircuitGoldenSource on the pinned bench.
func (l leasedCircuitBench) GoldenNets(req GoldenRequest) (map[string]trace.Trace, error) {
	return l.b.Golden(req.Inputs, req.Until)
}

// LeaseCircuit implements CircuitLeaser by pinning one pooled bench.
func (s *CircuitBenchSource) LeaseCircuit() (CircuitGoldenSource, func(), error) {
	b, err := s.acquire()
	if err != nil {
		return nil, nil, err
	}
	return leasedCircuitBench{b: b}, func() { s.release(b) }, nil
}

// CachedCircuitSource composes a GoldenCache over an inner circuit
// source, keyed by the netlist content key (Gate field carries
// "circuit:" + Netlist.ContentKey()) and the bench parameters — the
// circuit-level counterpart of CachedSource.
type CachedCircuitSource struct {
	Key   string // netlist content key
	Bench nor.Params
	Cache *GoldenCache
	Src   CircuitGoldenSource
}

// CircuitKey builds the cache key of one composed golden run.
func CircuitKey(contentKey string, bench nor.Params, cfg gen.Config, seed int64) GoldenKey {
	return GoldenKey{Gate: "circuit:" + contentKey, Bench: bench, Config: cfg, Seed: seed}
}

// GoldenNets implements CircuitGoldenSource with memoization.
func (s CachedCircuitSource) GoldenNets(req GoldenRequest) (map[string]trace.Trace, error) {
	out, _, err := s.Cache.GetOrComputeSet(CircuitKey(s.Key, s.Bench, req.Config, req.Seed),
		func() (map[string]trace.Trace, error) { return s.Src.GoldenNets(req) })
	return out, err
}

// LeaseCircuit implements CircuitLeaser by leasing the inner source
// when it supports leasing; the cache stays in front.
func (s CachedCircuitSource) LeaseCircuit() (CircuitGoldenSource, func(), error) {
	l, ok := s.Src.(CircuitLeaser)
	if !ok {
		return s, func() {}, nil
	}
	inner, release, err := l.LeaseCircuit()
	if err != nil {
		return nil, nil, err
	}
	leased := s
	leased.Src = inner
	return leased, release, nil
}

// applyInstanceModel runs one instance's inputs through the named delay
// model of its gate's model set — the per-instance unit of the circuit
// dataflow, matching RunModels' per-gate semantics exactly.
func applyInstanceModel(m Models, model string, in []trace.Trace, until float64) (trace.Trace, error) {
	switch model {
	case ModelInertial:
		return m.Inertial.Apply(m.Gate.Logic, in...), nil
	case ModelExp:
		return dtsim.ApplyDelay(trace.Combine(m.Gate.Logic, in...), m.Exp), nil
	case ModelHM:
		return m.HM.Apply(in, until)
	case ModelHMNoDMin:
		return m.HMNoDMin.Apply(in, until)
	}
	return trace.Trace{}, fmt.Errorf("eval: unknown model %q", model)
}

// CircuitSeedResult is the outcome of one circuit evaluation unit: one
// configuration run once with one seed, scored per recorded net.
type CircuitSeedResult struct {
	Config gen.Config
	Seed   int64
	// Nets lists the recorded nets in report order; the maps below are
	// keyed by these names. Iterate Nets (not the maps) wherever
	// floating-point sums must stay deterministic.
	Nets []string
	// Area maps net -> model -> absolute deviation area [s].
	Area map[string]map[string]float64
	// GoldenEv maps net -> golden output transitions observed.
	GoldenEv map[string]int
}

// EvaluateCircuitSeed runs the circuit pipeline for a single
// (config, seed) unit: generate the primary input traces, obtain the
// composed golden traces, elaborate every delay model over the netlist
// in topological order and measure each recorded net's deviation area.
// The configuration's input count must match the netlist's primary
// input count.
func EvaluateCircuitSeed(golden CircuitGoldenSource, nl *netlist.Netlist, ms netlist.ModelSet,
	cfg gen.Config, seed int64) (CircuitSeedResult, error) {
	return EvaluateCircuitSeedContext(context.Background(), golden, nl, ms, cfg, seed)
}

// EvaluateCircuitSeedContext is EvaluateCircuitSeed with cancellation:
// ctx is checked between the unit's stages (trace generation, the
// composed golden run, each model's dataflow walk).
func EvaluateCircuitSeedContext(ctx context.Context, golden CircuitGoldenSource, nl *netlist.Netlist,
	ms netlist.ModelSet, cfg gen.Config, seed int64) (CircuitSeedResult, error) {
	res := CircuitSeedResult{Config: cfg, Seed: seed, Nets: nl.Recorded(),
		Area: map[string]map[string]float64{}, GoldenEv: map[string]int{}}
	if len(nl.Inputs) != cfg.Inputs {
		return res, fmt.Errorf("eval: netlist has %d primary inputs, config has %d", len(nl.Inputs), cfg.Inputs)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	inputs, err := gen.Traces(cfg, seed)
	if err != nil {
		return res, err
	}
	until := gen.Horizon(inputs, 600*waveform.Pico)
	g, err := golden.GoldenNets(GoldenRequest{Config: cfg, Seed: seed, Inputs: inputs, Until: until})
	if err != nil {
		return res, fmt.Errorf("eval: circuit seed %d: %w", seed, err)
	}
	for _, net := range res.Nets {
		if _, ok := g[net]; !ok {
			return res, fmt.Errorf("eval: circuit seed %d: golden source returned no trace for net %q", seed, net)
		}
		res.Area[net] = map[string]float64{}
		res.GoldenEv[net] = g[net].NumEvents()
	}
	for _, model := range ModelNames {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		nets, err := nl.Walk(inputs, func(inst netlist.Instance, gg gate.Gate, in []trace.Trace) (trace.Trace, error) {
			m, err := ms.For(inst)
			if err != nil {
				return trace.Trace{}, err
			}
			return applyInstanceModel(m, model, in, until)
		})
		if err != nil {
			return res, fmt.Errorf("eval: circuit seed %d: model %s: %w", seed, model, err)
		}
		for _, net := range res.Nets {
			res.Area[net][model] = trace.DeviationArea(g[net], nets[net], 0, until)
		}
	}
	return res, nil
}

// CircuitResult aggregates circuit deviation areas over the repetitions
// of one waveform configuration: per-net and circuit-total areas and
// their inertial-normalized ratios (the Fig. 7 bars per net). As in
// RunResult, a normalized entry is NaN when its inertial baseline
// accumulated zero area.
type CircuitResult struct {
	Netlist string
	Config  gen.Config
	Seeds   []int64
	// Nets lists the recorded nets in report order.
	Nets []string
	// Area and Normalized map net -> model.
	Area       map[string]map[string]float64
	Normalized map[string]map[string]float64
	// TotalArea and TotalNormalized sum over the recorded nets.
	TotalArea       map[string]float64
	TotalNormalized map[string]float64
	// GoldenEv maps net -> golden transitions over all seeds.
	GoldenEv map[string]int
	// Solver aggregates the MNA solver counters of the run's composed
	// bench pool (filled by EvaluateCircuitContext; zero when the merge
	// was assembled from parts directly).
	Solver spice.SolverStats
}

// normalizeBy divides per-model areas by the inertial baseline, NaN
// when the baseline is not positive.
func normalizeBy(area map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(area))
	base := area[ModelInertial]
	//hybrid:nondet-ok each model writes its own out[name] from a base read before the loop; distinct keys
	for name, a := range area {
		if base <= 0 {
			out[name] = math.NaN()
		} else {
			out[name] = a / base
		}
	}
	return out
}

// MergeCircuitSeedResults folds per-seed circuit results into a
// CircuitResult. Sums run in the given part order and in recorded-net
// order, so for a fixed seed order the merged floating-point sums are
// identical no matter how many workers produced the parts.
func MergeCircuitSeedResults(nl *netlist.Netlist, cfg gen.Config, parts []CircuitSeedResult) CircuitResult {
	res := CircuitResult{
		Netlist:         nl.Name,
		Config:          cfg,
		Seeds:           make([]int64, 0, len(parts)),
		Nets:            nl.Recorded(),
		Area:            map[string]map[string]float64{},
		Normalized:      map[string]map[string]float64{},
		TotalArea:       map[string]float64{},
		TotalNormalized: map[string]float64{},
		GoldenEv:        map[string]int{},
	}
	for _, net := range res.Nets {
		res.Area[net] = map[string]float64{}
	}
	for _, p := range parts {
		res.Seeds = append(res.Seeds, p.Seed)
		for _, net := range res.Nets {
			res.GoldenEv[net] += p.GoldenEv[net]
			//hybrid:nondet-ok one visit per distinct model key per part; parts and nets fold in fixed slice order, so the float sums are reproducible
			for model, a := range p.Area[net] {
				res.Area[net][model] += a
			}
		}
	}
	for _, net := range res.Nets {
		res.Normalized[net] = normalizeBy(res.Area[net])
		for _, model := range ModelNames {
			res.TotalArea[model] += res.Area[net][model]
		}
	}
	res.TotalNormalized = normalizeBy(res.TotalArea)
	return res
}

// EvaluateCircuit runs the circuit accuracy pipeline for one
// configuration over the given seeds on a bounded worker pool: the
// composed golden bench is pooled per worker, golden trace sets are
// memoized in opt.Cache (when set) under the netlist content key, and
// per-seed results merge in seed order — the result is bit-identical
// regardless of the worker count. opt may be nil for defaults.
func EvaluateCircuit(nl *netlist.Netlist, p nor.Params, ms netlist.ModelSet,
	cfg gen.Config, seeds []int64, opt *Options) (CircuitResult, error) {
	return EvaluateCircuitContext(context.Background(), nl, p, ms, cfg, seeds, opt)
}

// EvaluateCircuitContext is EvaluateCircuit with cancellation: once ctx
// is done no new seed units are claimed, in-flight units stop at their
// next stage boundary, and ctx.Err() is returned (unit errors that
// occurred before the cancellation take precedence).
func EvaluateCircuitContext(ctx context.Context, nl *netlist.Netlist, p nor.Params, ms netlist.ModelSet,
	cfg gen.Config, seeds []int64, opt *Options) (CircuitResult, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	empty := MergeCircuitSeedResults(nl, cfg, nil)
	if len(seeds) == 0 {
		return empty, fmt.Errorf("eval: no seeds supplied")
	}
	bench, err := netlist.NewBench(nl, p)
	if err != nil {
		return empty, err
	}
	benchPool := NewCircuitBenchSource(bench)
	golden := CircuitGoldenSource(benchPool)
	if o.Cache != nil {
		golden = CachedCircuitSource{Key: nl.ContentKey(), Bench: p, Cache: o.Cache, Src: golden}
	}
	parts := make([]CircuitSeedResult, len(seeds))
	errs := make([]error, len(seeds))
	var progressMu sync.Mutex
	completed := 0
	unitDone := func(i int, err error) {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		o.Progress(Progress{Config: cfg, Seed: seeds[i],
			Completed: completed, Total: len(seeds), Err: err})
		progressMu.Unlock()
	}
	// Batched claiming, mirroring Runner.RunContext: one leased bench
	// serves a run of consecutive seeds; results stay index-addressed,
	// so batching cannot change the merge or the winning error.
	batch := batchSize(o.Batch, len(seeds), o.Workers)
	nBatches := (len(seeds) + batch - 1) / batch
	ctxErr := pool.RunContext(ctx, nBatches, o.Workers, func(bi int) error {
		lo := bi * batch
		hi := lo + batch
		if hi > len(seeds) {
			hi = len(seeds)
		}
		src := golden
		if l, ok := src.(CircuitLeaser); ok {
			leased, release, err := l.LeaseCircuit()
			if err == nil {
				src = leased
				defer release()
			}
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			parts[i], errs[i] = EvaluateCircuitSeedContext(ctx, src, nl, ms, cfg, seeds[i])
			unitDone(i, errs[i])
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}, nil)
	for _, err := range errs {
		if err != nil && !(ctxErr != nil && IsContextErr(err)) {
			return empty, err
		}
	}
	if ctxErr != nil {
		return empty, ctxErr
	}
	res := MergeCircuitSeedResults(nl, cfg, parts)
	res.Solver = benchPool.SolverStats()
	return res, nil
}
