package eval

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

// fastNorParams returns the calibrated bench parameters with the
// coarser integrator step the analog test suites use.
func fastNorParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// singleNOR2Netlist wraps one nor2 instance: the circuit pipeline's
// degenerate case that must reproduce the per-gate pipeline exactly.
func singleNOR2Netlist() *netlist.Netlist {
	return &netlist.Netlist{
		Name:   "single-nor2",
		Inputs: []string{"a", "b"},
		Instances: []netlist.Instance{
			{Name: "g", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "o"},
		},
	}
}

// chainNetlist returns the NOR + inverter-chain acceptance circuit.
func chainNetlist(t *testing.T, stages int) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.InverterChain("chain", stages)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestSingleGateCircuitBitIdentical is the property test of the
// netlist refactor: a single-gate netlist's golden trace and accuracy
// scores are bit-identical to the existing per-gate EvaluateBench path
// — same areas, same normalized ratios, same golden event counts.
func TestSingleGateCircuitBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	b := evalBench(t)
	m := cheapModels(t)
	cfg := testConfig(24)
	seeds := []int64{1, 2, 3}

	want, err := EvaluateBench(&gate.NOR2Bench{B: b}, m, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	nl := singleNOR2Netlist()
	got, err := EvaluateCircuit(nl, b.P, netlist.ModelSet{"nor2": m}, cfg, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.GoldenEv == 0 {
		t.Fatal("golden produced no events (weak test)")
	}
	if got.GoldenEv["o"] != want.GoldenEv {
		t.Errorf("golden events = %d, want %d", got.GoldenEv["o"], want.GoldenEv)
	}
	for _, model := range ModelNames {
		if got.Area["o"][model] != want.Area[model] {
			t.Errorf("Area[o][%s] = %g, per-gate pipeline %g", model, got.Area["o"][model], want.Area[model])
		}
		if got.TotalArea[model] != want.Area[model] {
			t.Errorf("TotalArea[%s] = %g, per-gate pipeline %g", model, got.TotalArea[model], want.Area[model])
		}
		if got.Normalized["o"][model] != want.Normalized[model] {
			t.Errorf("Normalized[o][%s] = %g, per-gate pipeline %g",
				model, got.Normalized["o"][model], want.Normalized[model])
		}
	}
}

// TestEvaluateCircuitDeterministicAcrossWorkers: the chain circuit's
// report is bit-identical for 1 and 8 workers (run under -race by CI),
// and a shared cache serves the repeat runs entirely from memory.
func TestEvaluateCircuitDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("analog golden runs in -short mode")
	}
	nl := chainNetlist(t, 2)
	m := cheapModels(t)
	ms := netlist.ModelSet{"nor2": m}
	p := evalBench(t).P
	cfg := testConfig(16)
	seeds := []int64{1, 2, 3, 4}

	cache := NewGoldenCache()
	serial, err := EvaluateCircuit(nl, p, ms, cfg, seeds, &Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != int64(len(seeds)) || st.Hits != 0 {
		t.Errorf("cold cache stats = %+v, want %d misses", st, len(seeds))
	}
	for _, workers := range []int{1, 8} {
		res, err := EvaluateCircuit(nl, p, ms, cfg, seeds, &Options{Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		for _, net := range serial.Nets {
			if res.GoldenEv[net] != serial.GoldenEv[net] {
				t.Errorf("workers=%d: golden events[%s] = %d != %d",
					workers, net, res.GoldenEv[net], serial.GoldenEv[net])
			}
			for _, model := range ModelNames {
				if res.Area[net][model] != serial.Area[net][model] {
					t.Errorf("workers=%d: Area[%s][%s] = %g != %g",
						workers, net, model, res.Area[net][model], serial.Area[net][model])
				}
			}
		}
		for _, model := range ModelNames {
			if res.TotalNormalized[model] != serial.TotalNormalized[model] {
				t.Errorf("workers=%d: TotalNormalized[%s] = %g != %g",
					workers, model, res.TotalNormalized[model], serial.TotalNormalized[model])
			}
		}
	}
	if st := cache.Stats(); st.Hits != int64(2*len(seeds)) {
		t.Errorf("warm cache hits = %d, want %d", st.Hits, 2*len(seeds))
	}
	// The composed golden must differ from any single gate's: the chain
	// scores carry per-net entries for every stage.
	if len(serial.Nets) != 3 {
		t.Errorf("chain recorded %d nets, want 3", len(serial.Nets))
	}
}

// syntheticCircuitSource returns fixed traces without analog work.
type syntheticCircuitSource struct {
	mu    sync.Mutex
	calls int
	nets  []string
}

func (s *syntheticCircuitSource) GoldenNets(req GoldenRequest) (map[string]trace.Trace, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	out := map[string]trace.Trace{}
	for _, net := range s.nets {
		out[net] = trace.New(true, []trace.Event{{Time: 1e-9, Value: false}})
	}
	return out, nil
}

func TestCachedCircuitSourceSingleflight(t *testing.T) {
	inner := &syntheticCircuitSource{nets: []string{"o"}}
	cache := NewGoldenCache()
	src := CachedCircuitSource{Key: "v1|test", Bench: fastNorParams(), Cache: cache, Src: inner}
	req := GoldenRequest{Config: testConfig(8), Seed: 1}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := src.GoldenNets(req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if inner.calls != 1 {
		t.Errorf("inner source computed %d times, want 1 (singleflight)", inner.calls)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 7 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 miss / 7 hits / 1 entry", st)
	}
	// A different seed computes again.
	req.Seed = 2
	if _, err := src.GoldenNets(req); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Errorf("second seed served from cache (%d calls)", inner.calls)
	}
}

func TestGetOrComputeSetDoesNotCacheErrors(t *testing.T) {
	cache := NewGoldenCache()
	key := CircuitKey("v1|x", fastNorParams(), testConfig(8), 1)
	if _, _, err := cache.GetOrComputeSet(key, func() (map[string]trace.Trace, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("error swallowed")
	}
	out, hit, err := cache.GetOrComputeSet(key, func() (map[string]trace.Trace, error) {
		return map[string]trace.Trace{"o": {}}, nil
	})
	if err != nil || hit || out == nil {
		t.Errorf("retry after error: out=%v hit=%v err=%v", out, hit, err)
	}
}

// TestCircuitKeySeparateFromGateKeys: a circuit entry and a plain gate
// entry sharing bench parameters, config and seed never collide — the
// circuit key carries the "circuit:" prefix and lives in its own table.
func TestCircuitKeySeparateFromGateKeys(t *testing.T) {
	cache := NewGoldenCache()
	cfg := testConfig(8)
	p := fastNorParams()
	gateKey := GoldenKey{Gate: "nor2", Bench: p, Config: cfg, Seed: 1}
	if _, err := cache.GetOrCompute(gateKey, func() (trace.Trace, error) {
		return trace.Trace{Initial: true}, nil
	}); err != nil {
		t.Fatal(err)
	}
	out, hit, err := cache.GetOrComputeSet(CircuitKey("v1|single", p, cfg, 1),
		func() (map[string]trace.Trace, error) {
			return map[string]trace.Trace{"o": {Initial: false}}, nil
		})
	if err != nil || hit {
		t.Fatalf("circuit entry hit the gate entry (hit=%v err=%v)", hit, err)
	}
	if out["o"].Initial {
		t.Error("circuit entry returned the gate trace")
	}
	if st := cache.Stats(); st.Entries != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 entries / 2 misses", st)
	}
}

func TestEvaluateCircuitValidation(t *testing.T) {
	nl := singleNOR2Netlist()
	ms := netlist.ModelSet{"nor2": cheapModels(t)}
	p := fastNorParams()
	if _, err := EvaluateCircuit(nl, p, ms, testConfig(8), nil, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	badCfg := testConfig(8)
	badCfg.Inputs = 3
	if _, err := EvaluateCircuit(nl, p, ms, badCfg, []int64{1}, nil); err == nil ||
		!strings.Contains(err.Error(), "primary inputs") {
		t.Errorf("input-count mismatch error = %v", err)
	}
	src := &syntheticCircuitSource{nets: []string{"o"}}
	if _, err := EvaluateCircuitSeed(src, nl, netlist.ModelSet{}, testConfig(8), 1); err == nil ||
		!strings.Contains(err.Error(), "no models") {
		t.Errorf("missing model set error = %v", err)
	}
}

func TestApplyInstanceModelUnknown(t *testing.T) {
	if _, err := applyInstanceModel(cheapModels(t), "bogus", []trace.Trace{{}, {}}, 1e-9); err == nil {
		t.Error("unknown model accepted")
	}
}

// failingCircuitSource errors on every request.
type failingCircuitSource struct{}

func (failingCircuitSource) GoldenNets(GoldenRequest) (map[string]trace.Trace, error) {
	return nil, fmt.Errorf("synthetic golden failure")
}

func TestEvaluateCircuitSeedGoldenError(t *testing.T) {
	nl := singleNOR2Netlist()
	ms := netlist.ModelSet{"nor2": cheapModels(t)}
	_, err := EvaluateCircuitSeed(failingCircuitSource{}, nl, ms, testConfig(8), 1)
	if err == nil || !strings.Contains(err.Error(), "synthetic golden failure") {
		t.Errorf("golden error = %v", err)
	}
	// A golden source missing a recorded net is rejected.
	partial := &syntheticCircuitSource{nets: []string{"not-o"}}
	if _, err := EvaluateCircuitSeed(partial, nl, ms, testConfig(8), 1); err == nil ||
		!strings.Contains(err.Error(), `no trace for net "o"`) {
		t.Errorf("missing-net error = %v", err)
	}
	// Errors pass through the cached wrapper without being cached.
	cache := NewGoldenCache()
	src := CachedCircuitSource{Key: "v1|err", Bench: fastNorParams(), Cache: cache, Src: failingCircuitSource{}}
	if _, err := src.GoldenNets(GoldenRequest{Config: testConfig(8), Seed: 1}); err == nil {
		t.Error("cached wrapper swallowed the error")
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("error was cached: %+v", st)
	}
}

// TestMergeCircuitSeedResultsNaN: a zero inertial baseline yields NaN
// normalized entries, as in the single-gate merge.
func TestMergeCircuitSeedResultsNaN(t *testing.T) {
	nl := singleNOR2Netlist()
	cfg := testConfig(8)
	part := CircuitSeedResult{
		Config: cfg, Seed: 1, Nets: []string{"o"},
		Area:     map[string]map[string]float64{"o": {ModelInertial: 0, ModelHM: 1e-12}},
		GoldenEv: map[string]int{"o": 2},
	}
	res := MergeCircuitSeedResults(nl, cfg, []CircuitSeedResult{part})
	if !math.IsNaN(res.Normalized["o"][ModelHM]) || !math.IsNaN(res.TotalNormalized[ModelHM]) {
		t.Errorf("zero baseline not NaN: %+v", res.Normalized["o"])
	}
	if res.GoldenEv["o"] != 2 {
		t.Errorf("golden events = %d, want 2", res.GoldenEv["o"])
	}
}
