package eval

import (
	"context"
	"testing"

	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
)

// evTrace builds a digitized trace with exactly n transitions, so its
// eviction cost is n+1.
func evTrace(n int) trace.Trace {
	ev := make([]trace.Event, n)
	v := false
	for i := range ev {
		v = !v
		ev[i] = trace.Event{Time: float64(i+1) * 1e-12, Value: v}
	}
	return trace.New(false, ev)
}

func evKey(seed int64) GoldenKey {
	return GoldenKey{Gate: "evict-test", Seed: seed}
}

// TestGoldenCacheEviction: the cost-based LRU must retain recently used
// entries, evict cold ones once over budget, and recompute evicted keys
// on the next lookup.
func TestGoldenCacheEviction(t *testing.T) {
	c := NewGoldenCache()
	c.SetLimit(25) // room for two 11-cost entries, not three

	computes := map[int64]int{}
	get := func(seed int64) {
		t.Helper()
		if _, err := c.GetOrCompute(evKey(seed), func() (trace.Trace, error) {
			computes[seed]++
			return evTrace(10), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	get(1)
	get(2)
	get(1) // touch 1, so 2 is now the coldest
	get(3) // over budget: evicts 2
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after third insert: stats %+v, want 1 eviction / 2 entries", st)
	}
	get(1) // still cached
	if computes[1] != 1 {
		t.Errorf("entry 1 recomputed %d times, want cached after touch", computes[1])
	}
	get(2) // evicted: must recompute
	if computes[2] != 2 {
		t.Errorf("entry 2 computed %d times, want 2 (recomputed after eviction)", computes[2])
	}
}

// TestGoldenCacheEvictionSets: circuit trace sets share the same LRU
// ring and cost accounting as single traces.
func TestGoldenCacheEvictionSets(t *testing.T) {
	c := NewGoldenCache()
	c.SetLimit(30)
	mkSet := func() (map[string]trace.Trace, error) {
		return map[string]trace.Trace{"a": evTrace(10), "b": evTrace(10)}, nil // cost 22
	}
	if _, _, err := c.GetOrComputeSet(evKey(1), mkSet); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrCompute(evKey(2), func() (trace.Trace, error) { return evTrace(10), nil }); err != nil {
		t.Fatal(err)
	}
	// 22 + 11 > 30: the set (older) is evicted.
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 eviction / 1 entry", st)
	}
	recomputed := false
	if _, _, err := c.GetOrComputeSet(evKey(1), func() (map[string]trace.Trace, error) {
		recomputed = true
		return mkSet()
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("evicted set entry was served from cache")
	}
}

// TestGoldenCacheOversizedEntry: an entry larger than the whole budget
// is returned to the caller but not retained.
func TestGoldenCacheOversizedEntry(t *testing.T) {
	c := NewGoldenCache()
	c.SetLimit(5)
	out, err := c.GetOrCompute(evKey(1), func() (trace.Trace, error) { return evTrace(10), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 10 {
		t.Fatalf("caller got %d events, want 10", len(out.Events))
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want the oversized entry evicted immediately", st)
	}
}

// TestGoldenCacheUnboundedByDefault: without SetLimit nothing is ever
// evicted (the historical behaviour).
func TestGoldenCacheUnboundedByDefault(t *testing.T) {
	c := NewGoldenCache()
	for seed := int64(0); seed < 50; seed++ {
		if _, err := c.GetOrCompute(evKey(seed), func() (trace.Trace, error) { return evTrace(100), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Entries != 50 {
		t.Fatalf("stats %+v, want 0 evictions / 50 entries", st)
	}
}

// TestParamCacheEviction: the operating-point LRU retains at most the
// configured number of points and re-prepares evicted ones.
func TestParamCacheEviction(t *testing.T) {
	g := &fakeGate{name: "fake2"}
	c := NewParamCache()
	c.SetLimit(1)
	ctx := context.Background()
	p1 := nor.DefaultParams()
	p2 := p1
	p2.CO *= 2

	if _, err := c.OperatingPoint(ctx, g, p1, 20e-12); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OperatingPoint(ctx, g, p2, 20e-12); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 eviction / 1 entry", st)
	}
	// p1 was evicted: looking it up again re-measures.
	if _, err := c.OperatingPoint(ctx, g, p1, 20e-12); err != nil {
		t.Fatal(err)
	}
	if got := g.measures.Load(); got != 3 {
		t.Errorf("measured %d times, want 3 (p1 re-prepared after eviction)", got)
	}
	// Raising the limit stops the churn.
	c.SetLimit(0)
	if _, err := c.OperatingPoint(ctx, g, p2, 20e-12); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OperatingPoint(ctx, g, p1, 20e-12); err != nil {
		t.Fatal(err)
	}
	if got := g.measures.Load(); got != 4 {
		t.Errorf("measured %d times, want 4 (only the evicted p2 re-prepared)", got)
	}
}
