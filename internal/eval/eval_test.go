package eval

import (
	"math"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// evalBench builds the golden bench with a coarser integrator step for
// test speed (delay error well below the deviation areas measured).
func evalBench(t *testing.T) *nor.Bench {
	t.Helper()
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	b, err := nor.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func measuredTarget(t *testing.T, b *nor.Bench) hybrid.Characteristic {
	t.Helper()
	c, err := MeasureCharacteristic(b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildModels(t *testing.T) {
	b := evalBench(t)
	target := measuredTarget(t, b)
	m, err := BuildModels(target, b.P.Supply, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Inertial arcs carry the SIS delays (pin 0 = A, pin 1 = B).
	if m.Inertial[1].Fall != target.FallMinusInf || m.Inertial[0].Fall != target.FallPlusInf {
		t.Error("inertial arc mapping wrong")
	}
	// Exp channel hits the SIS means at infinity.
	riseSIS := 0.5 * (target.RiseMinusInf + target.RisePlusInf)
	if math.Abs(m.Exp.DelayUpInf()-riseSIS) > 1e-18 {
		t.Errorf("exp delta_up(inf) = %g, want %g", m.Exp.DelayUpInf(), riseSIS)
	}
	if m.Gate.Name() != "nor2" {
		t.Errorf("default models built for gate %q, want nor2", m.Gate.Name())
	}
	// The hybrid fit carries a positive pure delay, the ablation none.
	hm := m.HM.(gate.NOR2Model).P
	hm0 := m.HMNoDMin.(gate.NOR2Model).P
	if hm.DMin <= 0 {
		t.Errorf("HM pure delay = %g, want > 0", hm.DMin)
	}
	if hm0.DMin != 0 {
		t.Errorf("HM ablation pure delay = %g, want 0", hm0.DMin)
	}
	if err := hm.Validate(); err != nil {
		t.Error(err)
	}
	if err := hm0.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGoldenNORRejectsHighInputs(t *testing.T) {
	b := evalBench(t)
	if _, err := GoldenNOR(b, trace.Trace{Initial: true}, trace.Trace{}, 1e-9); err == nil {
		t.Error("high initial input accepted")
	}
}

// TestGoldenNORSingleEdge: an isolated rising edge on A produces a
// falling golden output with the SIS delay.
func TestGoldenNORSingleEdge(t *testing.T) {
	b := evalBench(t)
	a := trace.New(false, []trace.Event{{Time: 1e-9, Value: true}})
	out, err := GoldenNOR(b, a, trace.Trace{Initial: false}, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Initial || out.NumEvents() != 1 || out.Events[0].Value {
		t.Fatalf("golden trace %+v", out.Events)
	}
	delay := out.Events[0].Time - 1e-9
	want := measuredTarget(t, b).FallPlusInf // A-caused SIS fall
	if math.Abs(delay-want) > 1.5e-12 {
		t.Errorf("golden SIS delay %g, want %g", delay, want)
	}
}

// TestEvaluatePipeline runs a reduced Fig. 7 evaluation and checks the
// paper's qualitative claims on every configuration class.
func TestEvaluatePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	b := evalBench(t)
	target := measuredTarget(t, b)
	m, err := BuildModels(target, b.P.Supply, 20e-12)
	if err != nil {
		t.Fatal(err)
	}

	short := gen.PaperConfigs()[0]
	short.Transitions = 120
	resShort, err := Evaluate(b, m, short, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resShort.Normalized[ModelInertial] != 1 {
		t.Error("inertial normalization broken")
	}
	// Short pulses: the hybrid model with pure delay clearly beats the
	// inertial baseline ("less than half", §VI) and the exp-channel.
	if hm := resShort.Normalized[ModelHM]; hm > 0.6 {
		t.Errorf("HM normalized deviation = %.2f for short pulses, want < 0.6", hm)
	}
	if resShort.Normalized[ModelHM] >= resShort.Normalized[ModelExp] {
		t.Errorf("HM (%.2f) should beat exp (%.2f) for short pulses",
			resShort.Normalized[ModelHM], resShort.Normalized[ModelExp])
	}

	broad := gen.PaperConfigs()[2] // 2000/1000 GLOBAL
	broad.Transitions = 120
	resBroad, err := Evaluate(b, m, broad, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Broad pulses: the exp channel is clearly worse than inertial
	// (output-placed channel cannot attribute the causing input), while
	// the hybrid model stays in the inertial ballpark.
	if e := resBroad.Normalized[ModelExp]; e < 1.1 {
		t.Errorf("exp normalized deviation = %.2f for broad pulses, want > 1.1 (paper ~1.6)", e)
	}
	if hm := resBroad.Normalized[ModelHM]; hm > 1.4 {
		t.Errorf("HM normalized deviation = %.2f for broad pulses, want ~1", hm)
	}
	if resShort.GoldenEv == 0 || resBroad.GoldenEv == 0 {
		t.Error("golden runs produced no events")
	}
}

func TestEvaluateValidation(t *testing.T) {
	b := evalBench(t)
	target := measuredTarget(t, b)
	m, err := BuildModels(target, b.P.Supply, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.PaperConfigs()[0]
	if _, err := Evaluate(b, m, cfg, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	cfg.Inputs = 3
	cfg.Transitions = 9
	if _, err := Evaluate(b, m, cfg, []int64{1}); err == nil {
		t.Error("3-input config accepted by the NOR pipeline")
	}
}

// TestRunModelsProducesAllModels: every model name appears with a valid
// trace.
func TestRunModelsProducesAllModels(t *testing.T) {
	b := evalBench(t)
	target := measuredTarget(t, b)
	m, err := BuildModels(target, b.P.Supply, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.PaperConfigs()[0]
	cfg.Transitions = 40
	inputs, err := gen.Traces(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	until := gen.Horizon(inputs, 600*waveform.Pico)
	outs, err := RunModels(m, inputs, until)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ModelNames {
		tr, ok := outs[name]
		if !ok {
			t.Errorf("model %s missing from results", name)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("model %s produced an invalid trace: %v", name, err)
		}
	}
}
