// Package eval implements the accuracy-evaluation pipeline of paper §VI
// (Fig. 7): random input traces are run through the analog golden
// reference (a transistor-level bench) and through each digital delay
// model; the models are scored by the deviation area between their
// output trace and the digitized golden trace, normalized against the
// inertial-delay baseline.
//
// The pipeline is gate-generic: every stage is keyed by a gate.Gate from
// the registry (bench construction, characteristic measurement, model
// parametrization, golden runs), so NOR2 — the paper's gate and the
// default — NAND2 and NOR3 all flow through the same machinery. It is
// decomposed into independent (config, seed) units (EvaluateSeed)
// scheduled either serially (Evaluate, EvaluateBench) or on a bounded
// worker pool (Runner, EvaluateParallel) with deterministic merging:
// results are bit-identical regardless of the worker count. The golden
// reference is abstracted behind GoldenSource, so the analog bench can
// be pooled per worker (BenchSource) and memoized by content key
// (GoldenCache, CachedSource — the gate name is part of the key).
package eval

import (
	"fmt"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Model names used in result maps (Fig. 7 legend); the canonical
// definitions live next to gate.Models in internal/gate.
const (
	ModelInertial = gate.ModelInertial
	ModelExp      = gate.ModelExp
	ModelHM       = gate.ModelHM       // hybrid model with pure delay
	ModelHMNoDMin = gate.ModelHMNoDMin // hybrid model without pure delay
)

// ModelNames lists the evaluated models in presentation order.
var ModelNames = gate.ModelNames

// Models bundles the parametrized delay models under comparison for one
// gate; see gate.Models.
type Models = gate.Models

// BuildModels parametrizes all delay models of the default NOR2 gate
// from its measured characteristic Charlie delays, mirroring §VI:
//
//   - inertial delay: per-arc SIS delays (pin-aware, NLDM-style);
//   - exp-channel: a single channel at the gate output — it cannot see
//     which input switched, so each direction uses the mean of the two
//     SIS delays (exactly the deficiency the paper describes for broad
//     pulses) — with the empirical pure delay expDMin (paper: 20 ps);
//   - hybrid model: least-squares fit with automatic pure delay;
//   - hybrid model without pure delay: least-squares fit forced to
//     DMin = 0 (the ablation of Figs. 7 and 8).
//
// Other gates build the same model set through their registry entry:
// gate.Lookup(name) and Gate.BuildModels on a Bench measurement.
func BuildModels(target hybrid.Characteristic, supply waveform.Supply, expDMin float64) (Models, error) {
	return gate.NOR2.BuildModels(gate.Measurement{
		Pair: target,
		Arcs: gate.NOR2Arcs(target),
	}, supply, expDMin)
}

// MeasureCharacteristic runs the golden NOR bench's characteristic-delay
// measurements and converts them into the hybrid package's target type.
func MeasureCharacteristic(bench *nor.Bench) (hybrid.Characteristic, error) {
	meas, err := (&gate.NOR2Bench{B: bench}).Measure()
	if err != nil {
		return hybrid.Characteristic{}, err
	}
	return meas.Pair, nil
}

// GoldenNOR runs the analog NOR bench over the given input traces and
// returns the digitized output trace. Both inputs must start low (the
// bench starts settled in state (0,0)).
func GoldenNOR(bench *nor.Bench, a, b trace.Trace, until float64) (trace.Trace, error) {
	return (&gate.NOR2Bench{B: bench}).Golden([]trace.Trace{a, b}, until)
}

// RunModels produces each model's output trace for the given inputs.
func RunModels(m Models, inputs []trace.Trace, until float64) (map[string]trace.Trace, error) {
	out := make(map[string]trace.Trace, 4)
	ideal := trace.Combine(m.Gate.Logic, inputs...)
	out[ModelInertial] = m.Inertial.Apply(m.Gate.Logic, inputs...)
	out[ModelExp] = dtsim.ApplyDelay(ideal, m.Exp)
	hm, err := m.HM.Apply(inputs, until)
	if err != nil {
		return nil, fmt.Errorf("eval: hybrid channel: %w", err)
	}
	out[ModelHM] = hm
	hm0, err := m.HMNoDMin.Apply(inputs, until)
	if err != nil {
		return nil, fmt.Errorf("eval: hybrid channel (no dmin): %w", err)
	}
	out[ModelHMNoDMin] = hm0
	return out, nil
}

// RunResult aggregates deviation areas over the repetitions of one
// waveform configuration.
//
// Normalized holds area / inertial area (the Fig. 7 bars). When the
// inertial baseline accumulated zero deviation area — every model output
// is then either perfect or incomparable — the ratio is undefined and
// every Normalized entry is NaN (check with math.IsNaN) rather than a
// misleading ±Inf-scale value.
type RunResult struct {
	Config     gen.Config
	Seeds      []int64
	Area       map[string]float64 // summed absolute deviation area [s]
	Normalized map[string]float64 // area / inertial area (Fig. 7 bars); NaN if the baseline is zero
	GoldenEv   int                // golden output transitions observed
}

// EvaluateBench runs the full pipeline for one configuration over the
// given seeds (repetitions) on any gate bench and aggregates the
// deviation areas. It is the serial composition of the per-seed units;
// the Runner fans the same units across a worker pool with bit-identical
// results.
func EvaluateBench(bench gate.Bench, m Models, cfg gen.Config, seeds []int64) (RunResult, error) {
	if len(seeds) == 0 {
		return RunResult{
			Config:     cfg,
			Area:       map[string]float64{},
			Normalized: map[string]float64{},
		}, fmt.Errorf("eval: no seeds supplied")
	}
	golden := NewGateBenchSource(bench)
	parts := make([]SeedResult, 0, len(seeds))
	for _, seed := range seeds {
		part, err := EvaluateSeed(golden, m, cfg, seed)
		if err != nil {
			return MergeSeedResults(cfg, parts), err
		}
		parts = append(parts, part)
	}
	return MergeSeedResults(cfg, parts), nil
}

// Evaluate runs the pipeline for one configuration on the default NOR2
// golden bench; see EvaluateBench for the gate-generic form.
func Evaluate(bench *nor.Bench, m Models, cfg gen.Config, seeds []int64) (RunResult, error) {
	return EvaluateBench(&gate.NOR2Bench{B: bench}, m, cfg, seeds)
}
