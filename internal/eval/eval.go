// Package eval implements the accuracy-evaluation pipeline of paper §VI
// (Fig. 7): random input traces are run through the analog golden
// reference (the transistor-level NOR bench) and through each digital
// delay model; the models are scored by the deviation area between their
// output trace and the digitized golden trace, normalized against the
// inertial-delay baseline.
//
// The pipeline is decomposed into independent (config, seed) units
// (EvaluateSeed) scheduled either serially (Evaluate) or on a bounded
// worker pool (Runner, EvaluateParallel) with deterministic merging:
// results are bit-identical regardless of the worker count. The golden
// reference is abstracted behind GoldenSource, so the analog bench can
// be pooled per worker (BenchSource) and memoized by content key
// (GoldenCache, CachedSource).
package eval

import (
	"fmt"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Model names used in result maps (Fig. 7 legend).
const (
	ModelInertial = "inertial"
	ModelExp      = "exp-channel"
	ModelHM       = "hm"         // hybrid model with pure delay
	ModelHMNoDMin = "hm-no-dmin" // hybrid model without pure delay
)

// ModelNames lists the evaluated models in presentation order.
var ModelNames = []string{ModelInertial, ModelExp, ModelHM, ModelHMNoDMin}

// Models bundles the parametrized delay models under comparison.
type Models struct {
	Inertial inertial.NORArcs
	Exp      idm.Exp
	HM       hybrid.Params
	HMNoDMin hybrid.Params
	Supply   waveform.Supply
}

// BuildModels parametrizes all delay models from the measured
// characteristic Charlie delays of the golden gate, mirroring §VI:
//
//   - inertial delay: per-arc SIS delays (pin-aware, NLDM-style);
//   - exp-channel: a single channel at the gate output — it cannot see
//     which input switched, so each direction uses the mean of the two
//     SIS delays (exactly the deficiency the paper describes for broad
//     pulses) — with the empirical pure delay expDMin (paper: 20 ps);
//   - hybrid model: least-squares fit with automatic pure delay;
//   - hybrid model without pure delay: least-squares fit forced to
//     DMin = 0 (the ablation of Figs. 7 and 8).
func BuildModels(target hybrid.Characteristic, supply waveform.Supply, expDMin float64) (Models, error) {
	m := Models{Supply: supply}
	var err error

	riseSIS := 0.5 * (target.RiseMinusInf + target.RisePlusInf)
	fallSIS := 0.5 * (target.FallMinusInf + target.FallPlusInf)
	if m.Inertial, err = inertial.NORArcsFromSIS(
		target.FallMinusInf, target.FallPlusInf,
		target.RiseMinusInf, target.RisePlusInf); err != nil {
		return m, fmt.Errorf("eval: inertial baseline: %w", err)
	}
	if m.Exp, err = idm.ExpFromSIS(riseSIS, fallSIS, expDMin); err != nil {
		return m, fmt.Errorf("eval: exp channel: %w", err)
	}
	// The paper's parametrization visibly favours the SIS tails over the
	// Delta = 0 points where the model cannot match everything (its
	// delta_rise is V_N-invariant in mode (1,1), so rise(-inf) and
	// rise(0) coincide at V_N = GND; see Fig. 6): weight the four tails
	// higher so the fit resolves the conflict the same way.
	tailWeighted := []float64{3, 1, 3, 3, 1, 3}
	if m.HM, _, err = hybrid.FitCharacteristic(target, supply, &hybrid.FitOptions{
		DMin: -1, Weights: tailWeighted,
	}); err != nil {
		return m, fmt.Errorf("eval: hybrid fit: %w", err)
	}
	if m.HMNoDMin, _, err = hybrid.FitCharacteristic(target, supply, &hybrid.FitOptions{
		DMin: 0, Weights: tailWeighted,
	}); err != nil {
		return m, fmt.Errorf("eval: hybrid fit without dmin: %w", err)
	}
	return m, nil
}

// MeasureCharacteristic runs the golden bench's characteristic-delay
// measurements and converts them into the hybrid package's target type.
func MeasureCharacteristic(bench *nor.Bench) (hybrid.Characteristic, error) {
	m, err := bench.Characteristic()
	if err != nil {
		return hybrid.Characteristic{}, err
	}
	return hybrid.Characteristic{
		FallMinusInf: m.FallMinusInf,
		FallZero:     m.FallZero,
		FallPlusInf:  m.FallPlusInf,
		RiseMinusInf: m.RiseMinusInf,
		RiseZero:     m.RiseZero,
		RisePlusInf:  m.RisePlusInf,
	}, nil
}

// GoldenNOR runs the analog bench over the given input traces and
// returns the digitized output trace. Both inputs must start low (the
// bench starts settled in state (0,0)).
func GoldenNOR(bench *nor.Bench, a, b trace.Trace, until float64) (trace.Trace, error) {
	if a.Initial || b.Initial {
		return trace.Trace{}, fmt.Errorf("eval: golden run requires inputs starting low")
	}
	supply := bench.P.Supply
	sigA, err := waveform.Edges(a.Transitions(), bench.P.InputRise, 0, supply.VDD)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("eval: input A: %w", err)
	}
	sigB, err := waveform.Edges(b.Transitions(), bench.P.InputRise, 0, supply.VDD)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("eval: input B: %w", err)
	}
	var bps []float64
	for _, e := range a.Events {
		bps = append(bps, e.Time-bench.P.InputRise/2)
	}
	for _, e := range b.Events {
		bps = append(bps, e.Time-bench.P.InputRise/2)
	}
	res, err := bench.Run(sigA, sigB, until, supply.VDD, supply.VDD, bps)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("eval: golden transient: %w", err)
	}
	return trace.Digitize(res.O, supply.Vth), nil
}

// RunModels produces each model's output trace for the given inputs.
func RunModels(m Models, a, b trace.Trace, until float64) (map[string]trace.Trace, error) {
	out := make(map[string]trace.Trace, 4)
	ideal := trace.NOR2(a, b)
	out[ModelInertial] = m.Inertial.Apply(a, b)
	out[ModelExp] = dtsim.ApplyDelay(ideal, m.Exp)
	hm, err := hybrid.ApplyNOR(m.HM, a, b, until, m.Supply.VDD)
	if err != nil {
		return nil, fmt.Errorf("eval: hybrid channel: %w", err)
	}
	out[ModelHM] = hm
	hm0, err := hybrid.ApplyNOR(m.HMNoDMin, a, b, until, m.Supply.VDD)
	if err != nil {
		return nil, fmt.Errorf("eval: hybrid channel (no dmin): %w", err)
	}
	out[ModelHMNoDMin] = hm0
	return out, nil
}

// RunResult aggregates deviation areas over the repetitions of one
// waveform configuration.
//
// Normalized holds area / inertial area (the Fig. 7 bars). When the
// inertial baseline accumulated zero deviation area — every model output
// is then either perfect or incomparable — the ratio is undefined and
// every Normalized entry is NaN (check with math.IsNaN) rather than a
// misleading ±Inf-scale value.
type RunResult struct {
	Config     gen.Config
	Seeds      []int64
	Area       map[string]float64 // summed absolute deviation area [s]
	Normalized map[string]float64 // area / inertial area (Fig. 7 bars); NaN if the baseline is zero
	GoldenEv   int                // golden output transitions observed
}

// Evaluate runs the full pipeline for one configuration over the given
// seeds (repetitions) and aggregates the deviation areas. It is the
// serial composition of the per-seed units; EvaluateParallel fans the
// same units across a worker pool with bit-identical results.
func Evaluate(bench *nor.Bench, m Models, cfg gen.Config, seeds []int64) (RunResult, error) {
	if len(seeds) == 0 {
		return RunResult{
			Config:     cfg,
			Area:       map[string]float64{},
			Normalized: map[string]float64{},
		}, fmt.Errorf("eval: no seeds supplied")
	}
	golden := NewBenchSource(bench)
	parts := make([]SeedResult, 0, len(seeds))
	for _, seed := range seeds {
		part, err := EvaluateSeed(golden, m, cfg, seed)
		if err != nil {
			return MergeSeedResults(cfg, parts), err
		}
		parts = append(parts, part)
	}
	return MergeSeedResults(cfg, parts), nil
}
