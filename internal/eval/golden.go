package eval

import (
	"container/list"
	"sync"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
)

// GoldenRequest identifies one golden-reference run: the waveform
// configuration and seed the inputs were generated from, the generated
// input traces themselves, and the simulation horizon. Config and Seed
// fully determine Inputs and Until (trace generation is deterministic),
// so they can serve as a content key for memoization.
type GoldenRequest struct {
	Config gen.Config
	Seed   int64
	Inputs []trace.Trace
	Until  float64
}

// GoldenSource produces the digitized golden output trace for a request.
// Implementations must be safe for concurrent use; the evaluation runner
// calls Golden from multiple workers.
type GoldenSource interface {
	Golden(req GoldenRequest) (trace.Trace, error)
}

// BenchSource is a GoldenSource backed by a gate's transistor-level
// analog bench. Because a bench owns mutable simulator state
// (input-source signals, device charge state), one instance cannot run
// two transients at once; BenchSource keeps a free list of benches so
// that each concurrent request gets a private instance (extra instances
// are built on demand through the gate's constructor).
type BenchSource struct {
	gate   gate.Gate
	params nor.Params

	mu   sync.Mutex
	free []gate.Bench
}

// NewBenchSource wraps a NOR2 bench as a concurrency-safe golden source;
// see NewGateBenchSource for the gate-generic form.
func NewBenchSource(b *nor.Bench) *BenchSource {
	return NewGateBenchSource(&gate.NOR2Bench{B: b})
}

// NewGateBenchSource wraps any gate bench as a concurrency-safe golden
// source. The given bench seeds the free list; additional instances are
// built on demand from its gate and parameters.
func NewGateBenchSource(b gate.Bench) *BenchSource {
	return &BenchSource{gate: b.Gate(), params: b.Params(), free: []gate.Bench{b}}
}

// Gate returns the gate all bench instances implement.
func (s *BenchSource) Gate() gate.Gate { return s.gate }

// Params returns the bench parameters all instances share.
func (s *BenchSource) Params() nor.Params { return s.params }

func (s *BenchSource) acquire() (gate.Bench, error) {
	s.mu.Lock()
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	return s.gate.NewBench(s.params)
}

func (s *BenchSource) release(b gate.Bench) {
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

// SolverStatser is implemented by benches and golden sources that can
// report cumulative MNA solver counters (factorizations, Newton
// iterations, sparse-mode traffic) for the traffic reports.
type SolverStatser interface {
	SolverStats() spice.SolverStats
}

// SolverStats aggregates the solver counters of the pooled bench
// instances. Only idle (released) instances are counted; between jobs
// the pool is fully idle, so a job-end snapshot sees every transient
// the source ever ran.
func (s *BenchSource) SolverStats() spice.SolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st spice.SolverStats
	for _, b := range s.free {
		if ss, ok := b.(SolverStatser); ok {
			st.Add(ss.SolverStats())
		}
	}
	return st
}

// Golden implements GoldenSource by running the analog transient on a
// private bench instance.
func (s *BenchSource) Golden(req GoldenRequest) (trace.Trace, error) {
	b, err := s.acquire()
	if err != nil {
		return trace.Trace{}, err
	}
	out, err := b.Golden(req.Inputs, req.Until)
	s.release(b)
	return out, err
}

// Leaser is implemented by golden sources that can lease a dedicated
// single-goroutine view for a run of consecutive units (batched
// transients). The leased source must only be used by one goroutine and
// must be released with the returned function when the batch is done.
// Leasing amortizes the per-unit free-list round trip and keeps one
// warm bench (and its solver workspace) pinned to the worker for the
// whole batch; the computed results are identical to the unleased path.
type Leaser interface {
	Lease() (GoldenSource, func(), error)
}

// leasedBench is a BenchSource lease: one pinned bench, no locking.
type leasedBench struct {
	b gate.Bench
}

// Golden implements GoldenSource on the pinned bench.
func (l leasedBench) Golden(req GoldenRequest) (trace.Trace, error) {
	return l.b.Golden(req.Inputs, req.Until)
}

// Lease implements Leaser by pinning one pooled bench until release.
func (s *BenchSource) Lease() (GoldenSource, func(), error) {
	b, err := s.acquire()
	if err != nil {
		return nil, nil, err
	}
	return leasedBench{b: b}, func() { s.release(b) }, nil
}

// GoldenKey is the content key of one golden run: the gate name, the
// bench parameters and the (config, seed) pair the inputs derive from.
// All fields are comparable value types, so keys can index a map
// directly. The gate name is part of the key so traces of different
// gates sharing one parameter set (the benches are all built from
// nor.Params) never collide.
type GoldenKey struct {
	Gate   string
	Bench  nor.Params
	Config gen.Config
	Seed   int64
}

// goldenEntry is one cache slot; ready is closed once out/err are set,
// so concurrent requests for the same key wait instead of recomputing.
// cost and elem are set when the completed entry is admitted to the
// LRU ring; in-flight and failed entries never join it.
type goldenEntry struct {
	ready chan struct{}
	out   trace.Trace
	err   error
	cost  int64
	elem  *list.Element
}

// setEntry is one multi-trace cache slot (a composed circuit run
// producing one digitized trace per recorded net); ready is closed once
// out/err are set.
type setEntry struct {
	ready chan struct{}
	out   map[string]trace.Trace
	err   error
	cost  int64
	elem  *list.Element
}

// lruRef locates one completed entry from the LRU ring: its key and
// which of the two tables (single traces vs circuit trace sets) it
// lives in.
type lruRef struct {
	key GoldenKey
	set bool
}

// traceCost is the eviction cost of one digitized trace: its stored
// transitions, plus one so even an empty trace has positive weight.
func traceCost(tr trace.Trace) int64 { return int64(1 + len(tr.Events)) }

// setCost sums the member traces of a circuit trace set.
func setCost(set map[string]trace.Trace) int64 {
	var c int64
	//hybrid:nondet-ok commutative integer sum; total is independent of visit order
	for _, tr := range set {
		c += traceCost(tr)
	}
	if c == 0 {
		c = 1
	}
	return c
}

// GoldenCache memoizes digitized golden traces by GoldenKey. It is safe
// for concurrent use and deduplicates in-flight computations
// (singleflight): the first requester of a key computes, later ones wait
// for its result. Failed computations are not cached. A cache may be
// shared across runs, gates, benches and worker counts — the gate name
// and bench parameters are part of the key.
//
// Single-gate golden traces (GetOrCompute) and composed circuit trace
// sets (GetOrComputeSet, keyed by a netlist content key in the Gate
// field) live in separate tables of the same cache, so one cache can
// back a whole mixed gate-and-circuit sweep.
//
// Memory can be bounded with SetLimit: completed entries then form a
// cost-based LRU (cost = stored transitions) and the coldest entries
// are evicted once the budget is exceeded. In-flight computations are
// never evicted, and waiters already holding an entry keep their result
// even if it is evicted underneath them.
type GoldenCache struct {
	mu        sync.Mutex
	table     map[GoldenKey]*goldenEntry
	sets      map[GoldenKey]*setEntry
	store     PersistentStore
	limit     int64 // cost budget; 0 = unbounded
	cost      int64 // total cost of completed entries
	lru       *list.List
	hits      int64
	misses    int64
	diskHits  int64
	evictions int64
}

// PersistentStore is the on-disk tier a GoldenCache can mount below its
// in-memory tables (see internal/store for the content-addressed
// implementation). Load/LoadSet return ok=false on a clean miss;
// corrupt or unreadable entries are also reported as misses (the cache
// recomputes and overwrites them). Implementations must be safe for
// concurrent use. Store errors never fail a lookup — the cache treats
// the tier as strictly best-effort.
type PersistentStore interface {
	Load(key GoldenKey) (trace.Trace, bool, error)
	Save(key GoldenKey, tr trace.Trace) error
	LoadSet(key GoldenKey) (map[string]trace.Trace, bool, error)
	SaveSet(key GoldenKey, set map[string]trace.Trace) error
}

// SetStore mounts a persistent read-through/write-behind tier below the
// in-memory cache: misses consult the store before computing, and
// freshly computed traces are saved back. Mount the store before
// handing the cache to workers; nil unmounts.
func (c *GoldenCache) SetStore(p PersistentStore) {
	c.mu.Lock()
	c.store = p
	c.mu.Unlock()
}

// NewGoldenCache returns an empty golden-trace cache.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{table: map[GoldenKey]*goldenEntry{}, sets: map[GoldenKey]*setEntry{}, lru: list.New()}
}

// SetLimit bounds the cache's memory: budget is the total cost the
// completed entries may hold, where one entry costs its stored
// transitions (a circuit trace set sums its member traces). Exceeding
// the budget evicts least-recently-used entries; a zero (or negative)
// budget removes the bound. Shrinking below the current total evicts
// immediately. An entry larger than the whole budget is admitted and
// then evicted right away — callers still get their result, the cache
// just refuses to retain it.
func (c *GoldenCache) SetLimit(budget int64) {
	c.mu.Lock()
	c.limit = budget
	c.evictOverLocked()
	c.mu.Unlock()
}

// admitLocked registers a completed entry in the LRU ring and trims
// over-budget cold entries. Caller holds mu.
func (c *GoldenCache) admitLocked(ref lruRef, cost int64) *list.Element {
	elem := c.lru.PushFront(ref)
	c.cost += cost
	c.evictOverLocked()
	return elem
}

// evictOverLocked drops entries from the cold end of the LRU ring until
// the cost budget is met. Caller holds mu.
func (c *GoldenCache) evictOverLocked() {
	for c.limit > 0 && c.cost > c.limit {
		back := c.lru.Back()
		if back == nil {
			return
		}
		ref := back.Value.(lruRef)
		c.lru.Remove(back)
		if ref.set {
			if e, ok := c.sets[ref.key]; ok {
				c.cost -= e.cost
				delete(c.sets, ref.key)
			}
		} else {
			if e, ok := c.table[ref.key]; ok {
				c.cost -= e.cost
				delete(c.table, ref.key)
			}
		}
		c.evictions++
	}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Hits      int64 // lookups served from a cached or in-flight entry
	Misses    int64 // lookups not served from memory
	DiskHits  int64 // memory misses served from the persistent store tier
	Evictions int64 // completed entries dropped by the memory bound
	Entries   int   // completed entries currently stored
}

// Stats returns a snapshot of the cache counters. Entries counts
// completed single-trace and circuit trace-set entries together.
func (c *GoldenCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	//hybrid:nondet-ok commutative count of completed entries; order-independent
	for _, e := range c.table {
		select {
		case <-e.ready:
			n++
		default:
		}
	}
	//hybrid:nondet-ok commutative count of completed entries; order-independent
	for _, e := range c.sets {
		select {
		case <-e.ready:
			n++
		default:
		}
	}
	return CacheStats{Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits, Evictions: c.evictions, Entries: n}
}

// GetOrCompute returns the cached trace for key, or runs compute exactly
// once per key (concurrent callers for the same key block on the first
// caller's result). Errors are returned to all waiters but evicted, so a
// later call retries; a waiter handed an error counts as neither hit
// nor miss — it was not served a trace and did not compute one.
func (c *GoldenCache) GetOrCompute(key GoldenKey, compute func() (trace.Trace, error)) (trace.Trace, error) {
	out, _, err := c.GetOrComputeTracked(key, compute)
	return out, err
}

// GetOrComputeTracked is GetOrCompute with per-call attribution: hit
// reports whether this lookup was served from a cached or in-flight
// entry (false when it computed, and false for error outcomes). The
// sweep engine uses it to account hit rates per scenario on a cache
// shared across the whole grid.
func (c *GoldenCache) GetOrComputeTracked(key GoldenKey, compute func() (trace.Trace, error)) (trace.Trace, bool, error) {
	c.mu.Lock()
	if e, ok := c.table[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err == nil {
			c.mu.Lock()
			c.hits++
			if cur, ok := c.table[key]; ok && cur == e && e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			return e.out, true, nil
		}
		return e.out, false, e.err
	}
	e := &goldenEntry{ready: make(chan struct{})}
	c.table[key] = e
	c.misses++
	store := c.store
	c.mu.Unlock()

	// Read-through: a populated persistent store serves the miss without
	// any transient solve. Store errors degrade to a computed miss.
	if store != nil {
		if tr, ok, err := store.Load(key); err == nil && ok {
			e.out = tr
			close(e.ready)
			c.mu.Lock()
			c.diskHits++
			e.cost = traceCost(e.out)
			e.elem = c.admitLocked(lruRef{key: key}, e.cost)
			c.mu.Unlock()
			return e.out, true, nil
		}
	}
	e.out, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.table, key)
		c.mu.Unlock()
	} else if store != nil {
		// Write-behind: spill the fresh trace so later processes can
		// warm-start; failures are the store's problem, not this lookup's.
		_ = store.Save(key, e.out)
	}
	close(e.ready)
	if e.err == nil {
		c.mu.Lock()
		e.cost = traceCost(e.out)
		e.elem = c.admitLocked(lruRef{key: key}, e.cost)
		c.mu.Unlock()
	}
	return e.out, false, e.err
}

// GetOrComputeSet is the multi-trace counterpart of
// GetOrComputeTracked for composed circuit golden runs: one transient
// produces the digitized traces of every recorded net, memoized
// together under a single key (conventionally carrying the netlist
// content key in the Gate field). Semantics mirror GetOrComputeTracked:
// singleflight per key, errors returned to all waiters but evicted,
// and per-call hit attribution. The returned map is shared between
// callers and must be treated as read-only.
func (c *GoldenCache) GetOrComputeSet(key GoldenKey, compute func() (map[string]trace.Trace, error)) (map[string]trace.Trace, bool, error) {
	c.mu.Lock()
	if e, ok := c.sets[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err == nil {
			c.mu.Lock()
			c.hits++
			if cur, ok := c.sets[key]; ok && cur == e && e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			return e.out, true, nil
		}
		return e.out, false, e.err
	}
	e := &setEntry{ready: make(chan struct{})}
	c.sets[key] = e
	c.misses++
	store := c.store
	c.mu.Unlock()

	if store != nil {
		if set, ok, err := store.LoadSet(key); err == nil && ok {
			e.out = set
			close(e.ready)
			c.mu.Lock()
			c.diskHits++
			e.cost = setCost(e.out)
			e.elem = c.admitLocked(lruRef{key: key, set: true}, e.cost)
			c.mu.Unlock()
			return e.out, true, nil
		}
	}
	e.out, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.sets, key)
		c.mu.Unlock()
	} else if store != nil {
		_ = store.SaveSet(key, e.out)
	}
	close(e.ready)
	if e.err == nil {
		c.mu.Lock()
		e.cost = setCost(e.out)
		e.elem = c.admitLocked(lruRef{key: key, set: true}, e.cost)
		c.mu.Unlock()
	}
	return e.out, false, e.err
}

// CachedSource composes a GoldenCache over an inner GoldenSource. It
// relies on the GoldenRequest invariant that (Config, Seed) determine
// the inputs, which holds for requests built by the evaluation pipeline.
type CachedSource struct {
	Gate  string     // key component naming the gate topology
	Bench nor.Params // key component identifying the golden reference
	Cache *GoldenCache
	Src   GoldenSource
}

// Golden implements GoldenSource with memoization.
func (s CachedSource) Golden(req GoldenRequest) (trace.Trace, error) {
	key := GoldenKey{Gate: s.Gate, Bench: s.Bench, Config: req.Config, Seed: req.Seed}
	return s.Cache.GetOrCompute(key, func() (trace.Trace, error) {
		return s.Src.Golden(req)
	})
}

// Lease implements Leaser by leasing the inner source when it supports
// leasing; the cache stays in front, so leased units still hit it.
func (s CachedSource) Lease() (GoldenSource, func(), error) {
	l, ok := s.Src.(Leaser)
	if !ok {
		return s, func() {}, nil
	}
	inner, release, err := l.Lease()
	if err != nil {
		return nil, nil, err
	}
	leased := s
	leased.Src = inner
	return leased, release, nil
}
