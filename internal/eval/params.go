package eval

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
)

// This file adds the second memoization layer of the evaluation engine:
// where GoldenCache skips re-simulating identical golden transients,
// ParamCache skips re-preparing identical operating points — the
// Gate.NewBench → Measure → BuildModels chain that every evaluation
// workload runs before its first unit, and by far the most expensive
// per-call fixed cost (a characteristic measurement is a family of
// analog transients plus two least-squares fits). A long-lived Session
// shares one ParamCache across gate evaluations, circuit evaluations
// and sweeps, so repeated workloads at the same operating point never
// re-measure or re-fit.

// ParamKey is the content key of one prepared operating point: the gate
// name, the full bench parameter set the bench is built from, and the
// exp channel's empirical pure delay (the one BuildModels input that is
// not derived from the measurement). All fields are comparable value
// types, so keys index a map directly; distinct operating points (e.g.
// two VDD scales of one gate) always differ in Bench.
type ParamKey struct {
	Gate    string
	Bench   nor.Params
	ExpDMin float64
}

// OperatingPoint is one prepared operating point: the measured
// characteristic turned into the parametrized Fig. 7 model set, plus a
// pooled golden source seeded with the bench the measurement ran on
// (so the construction cost is amortized into the pool too). An
// OperatingPoint is shared between cache users and safe for concurrent
// use: Models is immutable after preparation and BenchSource hands a
// private bench instance to every concurrent golden run.
type OperatingPoint struct {
	Key    ParamKey
	Models gate.Models
	Golden *BenchSource
}

// paramEntry is one cache slot; ready is closed once pt/err are set, so
// concurrent requests for the same key wait instead of re-measuring.
// elem is set when the completed entry joins the LRU ring; in-flight
// and failed entries never join it.
type paramEntry struct {
	ready chan struct{}
	pt    *OperatingPoint
	err   error
	elem  *list.Element
}

// ParamCache memoizes prepared operating points by ParamKey. It is safe
// for concurrent use and deduplicates in-flight preparations
// (singleflight): the first requester of a key measures and fits, later
// ones wait for its result. Failed preparations are not cached, so a
// later call retries. One cache may back any mix of workloads — the
// sweep engine's operating-point preparation, circuit model sets and
// single-gate evaluations all key by (gate, bench params, expDMin).
//
// Memory can be bounded with SetLimit: completed operating points then
// form an LRU (each point weighs one — a point's dominant cost, its
// bench pool and model set, is roughly uniform across keys) and the
// coldest points are evicted once the bound is exceeded. In-flight
// preparations are never evicted, and callers already holding a point
// keep it even if it is evicted underneath them.
type ParamCache struct {
	mu        sync.Mutex
	table     map[ParamKey]*paramEntry
	limit     int // max completed operating points; 0 = unbounded
	lru       *list.List
	hits      int64
	misses    int64
	evictions int64
}

// NewParamCache returns an empty parametrization cache.
func NewParamCache() *ParamCache {
	return &ParamCache{table: map[ParamKey]*paramEntry{}, lru: list.New()}
}

// SetLimit bounds the number of retained operating points; zero (or
// negative) removes the bound. Shrinking evicts immediately, coldest
// first.
func (c *ParamCache) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.evictOverLocked()
	c.mu.Unlock()
}

// evictOverLocked drops operating points from the cold end of the LRU
// ring until the bound is met. Caller holds mu.
func (c *ParamCache) evictOverLocked() {
	for c.limit > 0 && c.lru.Len() > c.limit {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(ParamKey)
		c.lru.Remove(back)
		delete(c.table, key)
		c.evictions++
	}
}

// ParamStats reports parametrization-cache effectiveness counters.
type ParamStats struct {
	Hits      int64 // lookups served from a cached or in-flight operating point
	Misses    int64 // lookups that had to measure and fit
	Evictions int64 // completed operating points dropped by the memory bound
	Entries   int   // completed operating points currently stored
}

// Stats returns a snapshot of the cache counters.
func (c *ParamCache) Stats() ParamStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	//hybrid:nondet-ok commutative count of completed entries; order-independent
	for _, e := range c.table {
		select {
		case <-e.ready:
			n++
		default:
		}
	}
	return ParamStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: n}
}

// SolverStats aggregates the MNA solver counters of every completed
// operating point's bench pool — the measurement transients that
// prepared each point plus every golden run its pool served since.
// Points evicted by the memory bound leave the aggregate.
func (c *ParamCache) SolverStats() spice.SolverStats {
	c.mu.Lock()
	pts := make([]*OperatingPoint, 0, len(c.table))
	//hybrid:nondet-ok collects points for a commutative counter sum (SolverStats.Add); aggregate is order-independent
	for _, e := range c.table {
		select {
		case <-e.ready:
			if e.err == nil {
				pts = append(pts, e.pt)
			}
		default:
		}
	}
	c.mu.Unlock()
	var st spice.SolverStats
	for _, pt := range pts {
		st.Add(pt.Golden.SolverStats())
	}
	return st
}

// OperatingPoint returns the prepared operating point for (g, p,
// expDMin), preparing it at most once per key: concurrent callers for
// the same key block on the first caller's result. Errors are returned
// to all waiters but evicted, so a later call retries; ctx cancels the
// wait (and aborts a preparation before it starts), but never evicts a
// preparation another caller is still waiting on. A waiter whose
// leader was cancelled (the leader's own context, not the waiter's)
// does not inherit that cancellation: it retries the preparation under
// its own context, so concurrent jobs on one session cannot poison
// each other.
func (c *ParamCache) OperatingPoint(ctx context.Context, g gate.Gate, p nor.Params, expDMin float64) (*OperatingPoint, error) {
	key := ParamKey{Gate: g.Name(), Bench: p, ExpDMin: expDMin}
	for {
		c.mu.Lock()
		if e, ok := c.table[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err == nil {
				c.mu.Lock()
				c.hits++
				if cur, ok := c.table[key]; ok && cur == e && e.elem != nil {
					c.lru.MoveToFront(e.elem)
				}
				c.mu.Unlock()
				return e.pt, nil
			}
			if IsContextErr(e.err) {
				// The leader aborted because *its* context ended. The
				// failed entry is already evicted; retry as (or behind)
				// a new leader unless this caller is cancelled too.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, e.err
		}
		e := &paramEntry{ready: make(chan struct{})}
		c.table[key] = e
		c.misses++
		c.mu.Unlock()

		e.pt, e.err = PrepareOperatingPoint(ctx, g, p, expDMin)
		if e.err != nil {
			c.mu.Lock()
			delete(c.table, key)
			c.mu.Unlock()
		}
		close(e.ready)
		if e.err == nil {
			c.mu.Lock()
			e.elem = c.lru.PushFront(key)
			c.evictOverLocked()
			c.mu.Unlock()
		}
		return e.pt, e.err
	}
}

// PrepareOperatingPoint runs the uncached preparation chain for one
// operating point: build a golden bench, measure its characteristic
// delays and parametrize the Fig. 7 model set. ctx aborts between the
// stages; the bench itself seeds the returned source's instance pool.
func PrepareOperatingPoint(ctx context.Context, g gate.Gate, p nor.Params, expDMin float64) (*OperatingPoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bench, err := g.NewBench(p)
	if err != nil {
		return nil, fmt.Errorf("eval: gate %s: bench: %w", g.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	meas, err := bench.Measure()
	if err != nil {
		return nil, fmt.Errorf("eval: gate %s: measure: %w", g.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	models, err := g.BuildModels(meas, p.Supply, expDMin)
	if err != nil {
		return nil, fmt.Errorf("eval: gate %s: models: %w", g.Name(), err)
	}
	return &OperatingPoint{
		Key:    ParamKey{Gate: g.Name(), Bench: p, ExpDMin: expDMin},
		Models: models,
		Golden: NewGateBenchSource(bench),
	}, nil
}
