package spice

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
	"hybriddelay/internal/la/sparse"
)

// SplitStamper is a Device whose stamp separates into a part that is
// constant across the iterations of one Newton solve (StampLinear) and
// a part that depends on the current iterate (StampNonlinear). Calling
// both in order must accumulate exactly what Stamp accumulates. The
// sparse solver freezes the linear parts of all devices into a base
// matrix once per solve and replays only the nonlinear parts per
// iteration.
type SplitStamper interface {
	Device
	StampLinear(ctx *StampContext)
	StampNonlinear(ctx *StampContext)
}

// sparseState is the Solver's workspace for the SparseFast mode: the
// structural stamp pattern, the linear/nonlinear device partition, the
// frozen per-solve linear base, and the symbolic/numeric factorization
// pair. Topology is fixed per solver, so everything but the symbolic
// analysis is built exactly once.
type sparseState struct {
	built bool

	pattern []int32 // dense offsets every device stamp can touch

	linDevs   []Device       // wholly linear: stamped once per solve
	splitDevs []SplitStamper // linear part frozen, nonlinear replayed
	nlDevs    []Device       // unknown devices: re-stamped every iteration

	linG   *la.Matrix // frozen linear-base Jacobian
	linRHS []float64  // frozen linear-base right-hand side

	sym   *sparse.Symbolic
	num   *sparse.Numeric
	gen   uint64 // cache generation sym was obtained under (see Refresh)
	stale bool   // values drifted off the static pivot order: re-analyze

	// denseDirty records that the dense kernel factored ctx.G in place
	// (a pivot fallback here, or a dense-mode Newton solve on the same
	// workspace), leaving LU residue at positions outside the touched
	// set. The touched-only restore in restampSparse is then
	// insufficient: a later dense fallback would consume the residue,
	// and a re-analysis could schedule fill slots on top of it, so the
	// next restamp resets the matrix in full.
	denseDirty bool
}

// sharedSymCache is the process-wide symbolic-factorization cache:
// every solver that does not inject its own cache resolves Analyze
// results through it, so pooled bench clones, batched transients and
// serve tenants working the same topology run one Markowitz pilot per
// process instead of one per solver instance. The limit comfortably
// exceeds the distinct (operating point × topology) pairs a session
// touches; colder analyses are evicted LRU-first.
var sharedSymCache = sparse.NewSymbolicCache(512)

// SharedSymbolicCache returns the process-wide symbolic-factorization
// cache (metrics surfaces and tests).
func SharedSymbolicCache() *sparse.SymbolicCache { return sharedSymCache }

// symbolicCache resolves the cache this solver analyzes through.
func (s *Solver) symbolicCache() *sparse.SymbolicCache {
	if s.symCache != nil {
		return s.symCache
	}
	return sharedSymCache
}

// sparseOptions assembles the sparse analysis options from the
// solver's configuration.
func (s *Solver) sparseOptions() sparse.Options {
	return sparse.Options{PivotRel: s.sparsePivotRel}
}

// resolveSymbolic obtains the symbolic analysis for the solver's
// pattern through the shared cache: a plain lookup on first use, a
// generation-gated Refresh after a staleness signal (so N pooled
// solvers hitting staleness together run one re-analysis — whoever
// wins replaces the shared entry, the rest adopt it as a hit). The
// pilot reads ctx.G's current values.
//
//hybrid:alloc-ok cold path: runs once per topology (or per staleness refresh), never in the per-iteration loop
func (s *Solver) resolveSymbolic() error {
	sp := &s.sp
	cache := s.symbolicCache()
	var (
		sym *sparse.Symbolic
		gen uint64
		hit bool
		err error
	)
	if sp.sym == nil {
		sym, gen, hit, err = cache.Get(s.symScope, s.ctx.G, sp.pattern, s.sparseOptions())
	} else {
		sym, gen, hit, err = cache.Refresh(s.symScope, s.ctx.G, sp.pattern, s.sparseOptions(), sp.gen)
	}
	if err != nil {
		return err
	}
	if hit {
		s.stats.SymbolicHits++
	} else {
		s.stats.SymbolicMisses++
	}
	if sym != sp.sym {
		sp.sym = sym
		sp.num = sym.NewNumeric()
		s.stats.Supernodes += int64(sym.Supernodes())
	}
	sp.gen = gen
	sp.stale = false
	return nil
}

// ensureSparse builds the structural pattern and device partition. The
// pattern is derived from device topology, not stamped values: a
// MOSFET in cutoff stamps numeric zeros at structurally live
// positions, so value-based extraction would under-approximate.
//
//hybrid:alloc-ok one-time topology build, guarded by sp.built; never re-runs in the iteration loop
func (s *Solver) ensureSparse() {
	sp := &s.sp
	if sp.built {
		return
	}
	c := s.c
	n := c.unknowns()
	seen := make([]bool, n*n)
	add := func(i, j int) {
		if i >= 0 && j >= 0 && !seen[i*n+j] {
			seen[i*n+j] = true
			sp.pattern = append(sp.pattern, int32(i*n+j))
		}
	}
	block := func(vars []int) {
		for _, i := range vars {
			for _, j := range vars {
				add(i, j)
			}
		}
	}
	var vars [8]int
	nodeBlock := func(nodes []NodeID) {
		v := vars[:0]
		for _, nd := range nodes {
			v = append(v, nodeVar(nd))
		}
		block(v)
	}
	for _, d := range c.devices {
		switch dev := d.(type) {
		case *MOSFET:
			// Channel partials cover rows {d,s} × cols {d,g,s}; gmin and
			// cgs/cgd/cdb stay inside the {d,g,s} block as well.
			nodeBlock(dev.Nodes())
			sp.splitDevs = append(sp.splitDevs, dev)
		case *Resistor:
			nodeBlock(dev.Nodes())
			sp.linDevs = append(sp.linDevs, dev)
		case *Capacitor:
			nodeBlock(dev.Nodes())
			sp.linDevs = append(sp.linDevs, dev)
		case *VSource:
			ib := c.branchVar(dev.branch)
			ip, im := nodeVar(dev.plus), nodeVar(dev.minus)
			add(ip, ib)
			add(im, ib)
			add(ib, ip)
			add(ib, im)
			sp.linDevs = append(sp.linDevs, dev)
		case *ISource:
			sp.linDevs = append(sp.linDevs, dev) // RHS only
		default:
			// Unknown device: assume it may depend on the iterate and
			// stamps within the block of its declared nodes (the
			// contract of the generic stamp helpers).
			nodeBlock(d.Nodes())
			sp.nlDevs = append(sp.nlDevs, d)
		}
	}
	sp.linG = la.NewMatrix(n, n)
	sp.linRHS = make([]float64, n)
	sp.built = true
}

// restampSparse rebuilds the Jacobian and RHS for the current iterate
// from the frozen linear base: structural positions are copied from
// the base (fill slots are never stamped, so they come back as zeros)
// and only the nonlinear stamps are replayed.
func (s *Solver) restampSparse(v []float64, firstIter bool) {
	sp := &s.sp
	ctx := &s.ctx
	g, rhs := ctx.G, ctx.RHS
	if sp.sym != nil && !sp.denseDirty {
		for _, off := range sp.sym.Touched() {
			g.Data[off] = sp.linG.Data[off]
		}
	} else {
		// No analysis yet, or the dense kernel polluted the workspace:
		// the matrix may hold anything, reset fully. linG is zero
		// outside the pattern, so copying pattern positions restores
		// the complete clean state.
		g.Zero()
		for _, off := range sp.pattern {
			g.Data[off] = sp.linG.Data[off]
		}
		sp.denseDirty = false
	}
	copy(rhs, sp.linRHS)
	ctx.V = v
	ctx.capFresh = firstIter
	for _, d := range sp.splitDevs {
		d.StampNonlinear(ctx)
	}
	for _, d := range sp.nlDevs {
		d.Stamp(ctx)
	}
}

// newtonSparse is the SparseFast Newton iteration for transient steps:
// same damped update and convergence test as the dense reference, but
// the linear device stamps are frozen once per solve and the linear
// system is solved by the static-pivot sparse refactor, falling back
// to the dense partial-pivot kernel (and scheduling a re-analysis)
// when a scheduled pivot degrades.
//
// Allocation-free in the steady state (the one-time topology build and
// cold symbolic resolution are //hybrid:alloc-ok): enforced statically
// by hybridlint's noalloc analyzer and dynamically by CI's -benchmem
// gates on BenchmarkSolverNewton and BenchmarkSparseFactorSolve.
//
//hybrid:noalloc
func (s *Solver) newtonSparse(v []float64, opt NewtonOptions) error {
	opt.defaults()
	s.ensure()
	s.ensureSparse()
	sp := &s.sp
	c := s.c
	n := c.unknowns()
	nv := c.NumNodes() - 1
	ctx := &s.ctx
	s.haveLU = false // any dense LU is invalidated by the solves below
	// Hoist the source evaluation: every iteration of this solve stamps
	// at the same ctx.Time.
	for i, vs := range c.vsources {
		s.srcVals[i] = vs.Signal(ctx.Time)
	}
	ctx.srcVals = s.srcVals

	// Freeze the linear base for this solve. capFresh makes the
	// capacitor companion models recompute geq/ieq for this step's
	// (Dt, Method, state) during the base stamp; the cached values are
	// also what Commit consumes after acceptance, exactly as on the
	// dense path.
	gSave, rhsSave := ctx.G, ctx.RHS
	ctx.G, ctx.RHS = sp.linG, sp.linRHS
	for _, off := range sp.pattern {
		sp.linG.Data[off] = 0
	}
	for i := range sp.linRHS {
		sp.linRHS[i] = 0
	}
	ctx.V = v
	ctx.capFresh = true
	for _, d := range sp.linDevs {
		d.Stamp(ctx)
	}
	for _, d := range sp.splitDevs {
		d.StampLinear(ctx)
	}
	ctx.G, ctx.RHS = gSave, rhsSave

	xNew := s.xNew
	for iter := 0; iter < opt.MaxIter; iter++ {
		s.restampSparse(v, iter == 0)
		if iter > 0 {
			s.stats.LinearReuses++
		}
		if sp.sym == nil || sp.stale {
			if err := s.resolveSymbolic(); err != nil && sp.sym == nil {
				// Nothing to refactor over; only the dense kernel can
				// decide whether this iterate is genuinely singular.
				sp.stale = true
			}
		}
		solved := false
		if sp.sym != nil && !sp.stale {
			if err := sp.num.FactorSolve(ctx.G, xNew, ctx.RHS); err == nil {
				solved = true
				s.stats.Factorizations++
				s.stats.SparseFactorizations++
			} else {
				// Static pivot order no longer stable for these values:
				// re-stamp (the failed refactor clobbered the matrix) and
				// let dense partial pivoting finish this iteration.
				s.stats.SparseFallbacks++
				sp.stale = true
				s.restampSparse(v, iter == 0)
			}
		}
		if !solved {
			// The in-place dense factorization overwrites the whole
			// matrix, including positions outside the touched set.
			sp.denseDirty = true
			if err := s.lu.FactorSolveInPlace(ctx.G, xNew, ctx.RHS); err != nil {
				return fmt.Errorf("spice: MNA matrix singular at t=%g: %w", ctx.Time, err)
			}
			s.stats.Factorizations++
		}
		s.stats.Iterations++
		// Damped update with convergence check on node voltages — the
		// same update as the dense reference.
		maxDelta := 0.0
		maxV := 0.0
		for i := 0; i < n; i++ {
			d := xNew[i] - v[i]
			if i < nv { // voltage unknowns only for damping
				if d > opt.Damping {
					d = opt.Damping
				} else if d < -opt.Damping {
					d = -opt.Damping
				}
			}
			v[i] += d
			if i < nv {
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
				if a := math.Abs(v[i]); a > maxV {
					maxV = a
				}
			}
		}
		if maxDelta <= opt.AbsTol+opt.RelTol*maxV {
			return nil
		}
	}
	return fmt.Errorf("spice: Newton did not converge at t=%g", ctx.Time)
}
