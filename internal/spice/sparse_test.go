package spice

import (
	"fmt"
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

func TestParseSolverMode(t *testing.T) {
	cases := []struct {
		in   string
		want SolverMode
		err  bool
	}{
		{"", DenseExact, false},
		{"dense", DenseExact, false},
		{"dense-exact", DenseExact, false},
		{"sparse", SparseFast, false},
		{"sparse-fast", SparseFast, false},
		{"turbo", DenseExact, true},
	}
	for _, c := range cases {
		got, err := ParseSolverMode(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSolverMode(%q) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.err)
		}
	}
	if DenseExact.String() != "dense-exact" || SparseFast.String() != "sparse-fast" {
		t.Errorf("String(): %q, %q", DenseExact.String(), SparseFast.String())
	}
	if s := SolverMode(9).String(); s != "solver-mode(9)" {
		t.Errorf("unknown mode String() = %q", s)
	}
}

// TestMOSFETSplitStampMatchesStamp: StampNonlinear followed by
// StampLinear must accumulate bit-exactly what Stamp accumulates —
// that equality is what keeps the dense golden path byte-identical
// after the split.
func TestMOSFETSplitStampMatchesStamp(t *testing.T) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	s.ensure()
	n := c.unknowns()
	v := make([]float64, n)
	for i := range v {
		v[i] = 0.1 * float64(i+1)
	}
	stampAll := func(split bool) ([]float64, []float64) {
		ctx := &s.ctx
		ctx.Time, ctx.Dt, ctx.Method, ctx.DC = 1e-9, 1e-12, Trapezoidal, false
		ctx.V = v
		ctx.capFresh = true
		ctx.G.Zero()
		for i := range ctx.RHS {
			ctx.RHS[i] = 0
		}
		for _, d := range c.devices {
			m, ok := d.(*MOSFET)
			if ok && split {
				m.StampNonlinear(ctx)
				m.StampLinear(ctx)
			} else {
				d.Stamp(ctx)
			}
		}
		g := append([]float64(nil), ctx.G.Data...)
		rhs := append([]float64(nil), ctx.RHS...)
		return g, rhs
	}
	gWant, rhsWant := stampAll(false)
	gGot, rhsGot := stampAll(true)
	for i := range gWant {
		if gGot[i] != gWant[i] {
			t.Fatalf("G[%d] = %v via split, %v via Stamp", i, gGot[i], gWant[i])
		}
	}
	for i := range rhsWant {
		if rhsGot[i] != rhsWant[i] {
			t.Fatalf("RHS[%d] = %v via split, %v via Stamp", i, rhsGot[i], rhsWant[i])
		}
	}
}

// runBothModes runs the same transient twice on fresh circuits, once
// per solver mode, and returns the results.
func runBothModes(t *testing.T, build func() (*Circuit, NodeID), opt TransientOptions) (dense, sparse *TransientResult, out NodeID, st SolverStats) {
	t.Helper()
	cd, outD := build()
	rd, err := Transient(cd, opt)
	if err != nil {
		t.Fatalf("dense transient: %v", err)
	}
	cs, outS := build()
	if outS != outD {
		t.Fatal("build is not deterministic")
	}
	sv, err := NewSolver(cs)
	if err != nil {
		t.Fatal(err)
	}
	opt.Solver = SparseFast
	rs, err := sv.Transient(opt)
	if err != nil {
		t.Fatalf("sparse transient: %v", err)
	}
	return rd, rs, outD, sv.Stats()
}

// maxWaveformDeviation samples both runs' waveforms for node n on a
// uniform grid and returns the largest voltage difference.
func maxWaveformDeviation(t *testing.T, a, b *TransientResult, n NodeID, t0, t1 float64) float64 {
	t.Helper()
	wa, err := a.Waveform(n)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.Waveform(n)
	if err != nil {
		t.Fatal(err)
	}
	maxDev := 0.0
	const samples = 400
	for i := 0; i <= samples; i++ {
		tt := t0 + (t1-t0)*float64(i)/samples
		if d := math.Abs(wa.At(tt) - wb.At(tt)); d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}

// TestSparseTransientMatchesDense: the sparse mode must reproduce the
// dense inverter transient to far better than solver tolerance, while
// actually exercising the sparse kernel and the frozen linear base.
func TestSparseTransientMatchesDense(t *testing.T) {
	opt := inverterOptions()
	dense, sparse, out, st := runBothModes(t, inverterCircuit, opt)
	if dev := maxWaveformDeviation(t, dense, sparse, out, opt.TStart, opt.TStop); dev > 1e-6 {
		t.Fatalf("output deviates by %g V between modes", dev)
	}
	if st.SparseFactorizations == 0 {
		t.Fatal("sparse mode never used the sparse kernel")
	}
	if st.LinearReuses == 0 {
		t.Fatal("sparse mode never reused the frozen linear base")
	}
	if st.SparseFallbacks != 0 {
		t.Fatalf("unexpected sparse fallbacks: %d", st.SparseFallbacks)
	}
	if st.Factorizations < st.SparseFactorizations {
		t.Fatalf("counter inconsistency: %d total < %d sparse", st.Factorizations, st.SparseFactorizations)
	}
}

// TestSparseRCMatchesDense covers the wholly linear partition: with no
// nonlinear devices every iteration solves the frozen base directly.
func TestSparseRCMatchesDense(t *testing.T) {
	build := func() (*Circuit, NodeID) {
		c := NewCircuit()
		in := c.Node("in")
		mid := c.Node("mid")
		out := c.Node("out")
		c.AddVSource("V1", in, Ground, waveform.RaisedCosineEdge(1e-9, 1e-9, 0, 1))
		c.AddResistor("R1", in, mid, 1e3)
		c.AddCapacitor("C1", mid, Ground, 1e-12)
		c.AddResistor("R2", mid, out, 2e3)
		c.AddCapacitor("C2", out, Ground, 0.5e-12)
		return c, out
	}
	opt := TransientOptions{
		TStart: 0, TStop: 8e-9,
		MaxStep:     50e-12,
		Breakpoints: []float64{1e-9, 2e-9},
	}
	dense, sparse, out, st := runBothModes(t, build, opt)
	if dev := maxWaveformDeviation(t, dense, sparse, out, opt.TStart, opt.TStop); dev > 1e-9 {
		t.Fatalf("RC output deviates by %g V between modes", dev)
	}
	if st.SparseFactorizations == 0 {
		t.Fatal("sparse kernel unused on RC circuit")
	}
}

// TestSparseSingleUnknown pins the n=1 system end to end: one node,
// current source into an RC load.
func TestSparseSingleUnknown(t *testing.T) {
	build := func() (*Circuit, NodeID) {
		c := NewCircuit()
		out := c.Node("out")
		c.AddISource("I1", out, Ground, 1e-6)
		c.AddResistor("R1", out, Ground, 1e6)
		c.AddCapacitor("C1", out, Ground, 1e-12)
		return c, out
	}
	opt := TransientOptions{TStart: 0, TStop: 5e-6, MaxStep: 50e-9}
	dense, sparse, out, st := runBothModes(t, build, opt)
	if dev := maxWaveformDeviation(t, dense, sparse, out, opt.TStart, opt.TStop); dev > 1e-9 {
		t.Fatalf("n=1 output deviates by %g V between modes", dev)
	}
	if st.SparseFactorizations == 0 {
		t.Fatal("sparse kernel unused on n=1 circuit")
	}
	// Settles to I*R = 1 V.
	w, err := sparse.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	if v := w.At(5e-6); math.Abs(v-1) > 1e-3 {
		t.Fatalf("final voltage %g, want ~1", v)
	}
}

// switchDevice is a programmable conductance block used to break the
// static pivot order between solves: it stamps raw values into the
// {a,b} node block, which is exactly the contract the sparse pattern
// builder assumes for unknown device types.
type switchDevice struct {
	name               string // "" defaults to "SW"
	a, b               NodeID
	gaa, gab, gba, gbb *float64
}

func (d *switchDevice) Name() string {
	if d.name != "" {
		return d.name
	}
	return "SW"
}
func (d *switchDevice) Nodes() []NodeID { return []NodeID{d.a, d.b} }
func (d *switchDevice) Stamp(ctx *StampContext) {
	ia, ib := nodeVar(d.a), nodeVar(d.b)
	ctx.addG(ia, ia, *d.gaa)
	ctx.addG(ia, ib, *d.gab)
	ctx.addG(ib, ia, *d.gba)
	ctx.addG(ib, ib, *d.gbb)
}

// TestSparseStaticPivotFallback drives a transient whose Jacobian
// values collapse under the static pivot order mid-run: the solver
// must detect the small pivot, fall back to the dense kernel for that
// iteration, re-analyze, and still deliver the right answer.
func TestSparseStaticPivotFallback(t *testing.T) {
	gaa, gab, gba, gbb := 1.0, 0.0, 0.0, 1e-3
	build := func() (*Circuit, NodeID) {
		c := NewCircuit()
		a := c.Node("a")
		b := c.Node("b")
		c.AddISource("I1", a, Ground, 1e-3)
		c.AddResistor("Rb", b, Ground, 1e3)
		c.AddCapacitor("Cb", b, Ground, 1e-12)
		c.Add(&switchDevice{a: a, b: b, gaa: &gaa, gab: &gab, gba: &gba, gbb: &gbb})
		return c, a
	}
	c, node := build()
	sv, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	opt := TransientOptions{TStart: 0, TStop: 2e-9, MaxStep: 0.25e-9, Solver: SparseFast}
	if _, err := sv.Transient(opt); err != nil {
		t.Fatalf("first transient: %v", err)
	}
	if sv.Stats().SparseFallbacks != 0 {
		t.Fatalf("unexpected fallback in the benign run: %+v", sv.Stats())
	}
	// Collapse the diagonal the pilot pivoted on while growing the
	// off-diagonals, so the scheduled pivot fails the relative guard
	// while partial pivoting (row swap) stays perfectly conditioned.
	gaa, gab, gba, gbb = 1e-14, 1.0, 1.0, 0
	res, err := sv.Transient(opt)
	if err != nil {
		t.Fatalf("degenerate transient: %v", err)
	}
	st := sv.Stats()
	if st.SparseFallbacks == 0 {
		t.Fatalf("expected a static-pivot fallback, stats %+v", st)
	}
	// Cross-check the degenerate system against the dense reference.
	cd, _ := build()
	want, err := Transient(cd, TransientOptions{TStart: 0, TStop: 2e-9, MaxStep: 0.25e-9})
	if err != nil {
		t.Fatalf("dense reference on degenerate values: %v", err)
	}
	if dev := maxWaveformDeviation(t, want, res, node, 0, 2e-9); dev > 1e-6 {
		t.Fatalf("fallback result deviates by %g V from dense", dev)
	}
}

// TestSparseModeDoesNotLeakIntoDense: a solver that ran sparse once
// must return to bit-identical dense behaviour when asked.
func TestSparseModeDoesNotLeakIntoDense(t *testing.T) {
	ref, _ := inverterCircuit()
	want, err := Transient(ref, inverterOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := inverterCircuit()
	sv, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	optSparse := inverterOptions()
	optSparse.Solver = SparseFast
	if _, err := sv.Transient(optSparse); err != nil {
		t.Fatal(err)
	}
	got, err := sv.Transient(inverterOptions())
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want, "dense after sparse")
}

// TestSparseFallbackOffTouchedGarbage is the promoted PR 7 review
// probe: after a sparse→dense pivot fallback (which runs the dense LU
// over the full matrix and triggers a re-analysis), the next sparse
// restamp must not leave stale dense-factorization values at positions
// outside the symbolic pattern's touched set. Such garbage would be
// invisible to the scheduled sparse refactor (it only reads touched
// offsets) but would be consumed by any later dense fallback — or by a
// re-analyzed pattern whose fill extends past the old touched set —
// silently corrupting the solve. The ring of programmable conductance
// blocks first runs benignly (establishing a pivot order), then flips
// to values that swamp the scheduled pivots and force the fallback.
func TestSparseFallbackOffTouchedGarbage(t *testing.T) {
	g := make([]float64, 16)
	set := func(vals ...float64) { copy(g, vals) }
	build := func() *Circuit {
		c := NewCircuit()
		n := []NodeID{c.Node("n0"), c.Node("n1"), c.Node("n2"), c.Node("n3")}
		for i := 0; i < 4; i++ {
			a, b := n[i], n[(i+1)%4]
			c.Add(&switchDevice{name: fmt.Sprintf("SW%d", i),
				a: a, b: b, gaa: &g[i*4], gab: &g[i*4+1], gba: &g[i*4+2], gbb: &g[i*4+3]})
		}
		for i, nd := range n {
			c.AddResistor(fmt.Sprintf("R%d", i), nd, Ground, 1e3)
			c.AddCapacitor(fmt.Sprintf("C%d", i), nd, Ground, 1e-12)
		}
		c.AddISource("I1", n[0], Ground, 1e-3)
		return c
	}
	// Benign values: diagonally dominant, ring coupling.
	set(1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1)
	sv, err := NewSolver(build())
	if err != nil {
		t.Fatal(err)
	}
	opt := TransientOptions{TStart: 0, TStop: 2e-9, MaxStep: 0.25e-9, Solver: SparseFast}
	if _, err := sv.Transient(opt); err != nil {
		t.Fatalf("benign: %v", err)
	}
	if sv.Stats().SparseFallbacks != 0 {
		t.Fatalf("benign run fell back: %+v", sv.Stats())
	}

	// Degenerate values: huge off-diagonals swamp the scheduled pivots,
	// forcing the dense fallback (and a re-analysis) mid-run.
	set(0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0)
	if _, err := sv.Transient(opt); err != nil {
		t.Logf("degenerate transient error (tolerated; the fallback path is what matters): %v", err)
	}
	st := sv.Stats()
	if st.SparseFallbacks == 0 {
		t.Fatalf("degenerate values did not trigger a fallback, stats %+v", st)
	}

	// Simulate the restamp that precedes any later dense fallback, then
	// scan the workspace matrix for garbage outside the touched set.
	v := make([]float64, len(sv.xNew))
	sv.restampSparse(v, true)
	touched := map[int32]bool{}
	for _, off := range sv.sp.sym.Touched() {
		touched[off] = true
	}
	for off, val := range sv.ctx.G.Data {
		if !touched[int32(off)] && val != 0 {
			t.Errorf("off-touched garbage at dense offset %d: %g survives restampSparse after a dense fallback", off, val)
		}
	}
}
