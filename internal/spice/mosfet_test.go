package spice

import (
	"math"
	"math/rand"
	"testing"
)

func nmosParams() MOSParams {
	return MOSParams{VT0: 0.2, K: 70e-6, Lambda: 0.25}
}

func pmosParams() MOSParams {
	p := nmosParams()
	p.PMOS = true
	return p
}

func TestIdsRegions(t *testing.T) {
	p := nmosParams()
	// Cutoff.
	if i, gm, gds := idsLaw(p, 0.1, 0.5); i != 0 || gm != 0 || gds != 0 {
		t.Errorf("cutoff: got (%g, %g, %g)", i, gm, gds)
	}
	// Saturation: vgs=0.8, vds=0.8 > vov=0.6.
	i, _, _ := idsLaw(p, 0.8, 0.8)
	want := 0.5 * p.K * 0.6 * 0.6 * (1 + p.Lambda*0.8)
	if math.Abs(i-want) > 1e-12 {
		t.Errorf("saturation: i = %g, want %g", i, want)
	}
	// Triode: vgs=0.8, vds=0.1 < vov.
	i, _, _ = idsLaw(p, 0.8, 0.1)
	want = p.K * (0.6*0.1 - 0.005) * (1 + p.Lambda*0.1)
	if math.Abs(i-want) > 1e-12 {
		t.Errorf("triode: i = %g, want %g", i, want)
	}
}

func TestIdsContinuity(t *testing.T) {
	p := nmosParams()
	// C0 and C1 at the triode/saturation boundary.
	vgs := 0.7
	vov := vgs - p.VT0
	iBelow, gmBelow, gdsBelow := idsLaw(p, vgs, vov-1e-9)
	iAbove, gmAbove, gdsAbove := idsLaw(p, vgs, vov+1e-9)
	if math.Abs(iBelow-iAbove) > 1e-12 {
		t.Errorf("current discontinuous at vdsat: %g vs %g", iBelow, iAbove)
	}
	if math.Abs(gmBelow-gmAbove) > 1e-9 {
		t.Errorf("gm discontinuous at vdsat: %g vs %g", gmBelow, gmAbove)
	}
	if math.Abs(gdsBelow-gdsAbove) > 1e-9 {
		t.Errorf("gds discontinuous at vdsat: %g vs %g", gdsBelow, gdsAbove)
	}
	// At the cutoff boundary.
	iOff, _, _ := idsLaw(p, p.VT0-1e-12, 0.5)
	iOn, gmOn, _ := idsLaw(p, p.VT0+1e-9, 0.5)
	if iOff != 0 || iOn > 1e-10 || gmOn > 1e-7 {
		t.Errorf("cutoff boundary rough: iOff=%g iOn=%g gmOn=%g", iOff, iOn, gmOn)
	}
}

// TestEvalDerivatives checks the analytic partials against finite
// differences across all quadrants and polarities.
func TestEvalDerivatives(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, pmos := range []bool{false, true} {
		p := nmosParams()
		p.PMOS = pmos
		m := &MOSFET{name: "t", d: 1, g: 2, s: 3, P: p}
		for trial := 0; trial < 500; trial++ {
			vd := rng.Float64()*1.6 - 0.4
			vg := rng.Float64()*1.6 - 0.4
			vs := rng.Float64()*1.6 - 0.4
			_, gd, gg, gs := m.Eval(vd, vg, vs)
			const h = 1e-7
			ip, _, _, _ := m.Eval(vd+h, vg, vs)
			im, _, _, _ := m.Eval(vd-h, vg, vs)
			ngd := (ip - im) / (2 * h)
			ip, _, _, _ = m.Eval(vd, vg+h, vs)
			im, _, _, _ = m.Eval(vd, vg-h, vs)
			ngg := (ip - im) / (2 * h)
			ip, _, _, _ = m.Eval(vd, vg, vs+h)
			im, _, _, _ = m.Eval(vd, vg, vs-h)
			ngs := (ip - im) / (2 * h)
			scale := 1e-6 + math.Abs(gd) + math.Abs(gg) + math.Abs(gs)
			if math.Abs(gd-ngd) > 1e-3*scale || math.Abs(gg-ngg) > 1e-3*scale || math.Abs(gs-ngs) > 1e-3*scale {
				t.Fatalf("pmos=%v trial %d (vd=%g vg=%g vs=%g): analytic (%g,%g,%g) vs numeric (%g,%g,%g)",
					pmos, trial, vd, vg, vs, gd, gg, gs, ngd, ngg, ngs)
			}
		}
	}
}

// TestEvalSymmetry: swapping drain and source negates the current.
func TestEvalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, pmos := range []bool{false, true} {
		p := nmosParams()
		p.PMOS = pmos
		m := &MOSFET{name: "t", d: 1, g: 2, s: 3, P: p}
		for trial := 0; trial < 200; trial++ {
			vd := rng.Float64()
			vg := rng.Float64()
			vs := rng.Float64()
			i1, _, _, _ := m.Eval(vd, vg, vs)
			i2, _, _, _ := m.Eval(vs, vg, vd)
			if math.Abs(i1+i2) > 1e-15 {
				t.Fatalf("pmos=%v: drain/source symmetry broken: %g vs %g", pmos, i1, i2)
			}
		}
	}
}

// TestEvalPolarity: a pMOS conducts when its gate is low relative to the
// source, mirroring the nMOS.
func TestEvalPolarity(t *testing.T) {
	n := &MOSFET{name: "n", d: 1, g: 2, s: 3, P: nmosParams()}
	p := &MOSFET{name: "p", d: 1, g: 2, s: 3, P: pmosParams()}
	// nMOS: vd=0.8, vg=0.8, vs=0 -> conducting, current into drain > 0.
	iN, _, _, _ := n.Eval(0.8, 0.8, 0)
	if iN <= 0 {
		t.Errorf("nMOS on-current = %g, want > 0", iN)
	}
	// pMOS: source at VDD, gate low, drain low: current flows out of the
	// drain terminal (charging the node): negative by our convention.
	iP, _, _, _ := p.Eval(0, 0, 0.8)
	if iP >= 0 {
		t.Errorf("pMOS on-current = %g, want < 0", iP)
	}
	// Off states.
	if i, _, _, _ := n.Eval(0.8, 0, 0); i != 0 {
		t.Errorf("nMOS off-current = %g", i)
	}
	if i, _, _, _ := p.Eval(0, 0.8, 0.8); i != 0 {
		t.Errorf("pMOS off-current = %g", i)
	}
}

// TestInverterDC: a CMOS inverter built from the devices has the correct
// rail outputs and a transition region near VDD/2.
func TestInverterDC(t *testing.T) {
	build := func(vin float64) float64 {
		c := NewCircuit()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddDCVSource("Vdd", vdd, Ground, 0.8)
		c.AddDCVSource("Vin", in, Ground, vin)
		pp := pmosParams()
		pp.Gmin = 1e-12
		np := nmosParams()
		np.Gmin = 1e-12
		c.AddMOSFET("MP", out, in, vdd, pp)
		c.AddMOSFET("MN", out, in, Ground, np)
		sol, err := OperatingPoint(c, 0, NewtonOptions{})
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		return sol[int(out)-1]
	}
	if v := build(0); v < 0.75 {
		t.Errorf("Vout(0) = %g, want ~VDD", v)
	}
	if v := build(0.8); v > 0.05 {
		t.Errorf("Vout(VDD) = %g, want ~0", v)
	}
	vLow, vMid, vHigh := build(0.3), build(0.4), build(0.5)
	if !(vLow > vMid && vMid > vHigh) {
		t.Errorf("transfer curve not monotone: %g, %g, %g", vLow, vMid, vHigh)
	}
}

// TestInverterTransient: a driven inverter flips its output with a
// plausible delay and full swing.
func TestInverterTransient(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddDCVSource("Vdd", vdd, Ground, 0.8)
	edge := func(tm float64) float64 {
		if tm < 100e-12 {
			return 0
		}
		if tm > 120e-12 {
			return 0.8
		}
		return 0.8 * (tm - 100e-12) / 20e-12
	}
	c.AddVSource("Vin", in, Ground, edge)
	pp := pmosParams()
	np := nmosParams()
	c.AddMOSFET("MP", out, in, vdd, pp)
	c.AddMOSFET("MN", out, in, Ground, np)
	c.AddCapacitor("CL", out, Ground, 0.5e-15)
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 400e-12,
		MaxStep:           2e-12,
		Breakpoints:       []float64{100e-12},
		InitialConditions: map[NodeID]float64{out: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.At(50e-12); math.Abs(got-0.8) > 0.02 {
		t.Errorf("initial output = %g, want 0.8", got)
	}
	if got := w.At(380e-12); got > 0.02 {
		t.Errorf("final output = %g, want ~0", got)
	}
	cr, ok := w.FirstCrossingAfter(0, 0.4, false)
	if !ok {
		t.Fatal("output never fell")
	}
	if cr < 100e-12 || cr > 250e-12 {
		t.Errorf("output crossing at %g ps, expected shortly after the input edge", cr*1e12)
	}
}
