// Package spice implements a compact transient analog circuit simulator:
// modified nodal analysis (MNA) with Newton–Raphson linearisation of
// nonlinear devices and trapezoidal / backward-Euler integration of
// charge storage. It stands in for the Cadence Spectre + FreePDK15 golden
// reference used by the paper: the NOR gate of Fig. 1 is simulated at the
// transistor level (square-law MOSFETs with gate-coupling capacitances)
// to produce the "analog truth" that both the hybrid model and the
// digital channel models are judged against.
//
// The simulator is intentionally small but genuinely general: arbitrary
// node counts, resistors, capacitors, (time-varying) voltage sources,
// current sources and MOSFETs, DC operating-point analysis and adaptive
// transient analysis with breakpoint handling.
package spice

import (
	"fmt"
	"sort"

	"hybriddelay/internal/waveform"
)

// NodeID identifies a circuit node. Ground is always node 0.
type NodeID int

// Ground is the reference node.
const Ground NodeID = 0

// Circuit is a netlist under construction.
//
// A Circuit and its devices are not safe for concurrent use: stateful
// devices (Capacitor, MOSFET) carry charge state across timesteps and
// VSource signals are swapped per experiment, so at most one analysis
// may run on a circuit at a time. Build a separate circuit per
// goroutine (cf. nor.Bench.Clone).
type Circuit struct {
	nodeNames []string // index = NodeID
	nodeIndex map[string]NodeID
	devices   []Device
	vsources  []*VSource // devices needing MNA branch currents, in order
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	c := &Circuit{nodeIndex: map[string]NodeID{"0": Ground, "gnd": Ground}}
	c.nodeNames = []string{"gnd"}
	return c
}

// Node returns the NodeID for name, creating the node on first use.
// The names "0" and "gnd" always refer to ground.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = id
	return id
}

// NodeName returns the name of a node.
func (c *Circuit) NodeName(id NodeID) string {
	if int(id) < len(c.nodeNames) {
		return c.nodeNames[id]
	}
	return fmt.Sprintf("n%d", int(id))
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Devices returns the devices in insertion order.
func (c *Circuit) Devices() []Device { return c.devices }

// Add registers a device with the circuit.
func (c *Circuit) Add(d Device) {
	c.devices = append(c.devices, d)
	if vs, ok := d.(*VSource); ok {
		vs.branch = len(c.vsources)
		c.vsources = append(c.vsources, vs)
	}
}

// AddResistor connects a resistor of r ohms between a and b.
func (c *Circuit) AddResistor(name string, a, b NodeID, r float64) *Resistor {
	d := &Resistor{name: name, a: a, b: b, R: r}
	c.Add(d)
	return d
}

// AddCapacitor connects a capacitor of f farads between a and b.
func (c *Circuit) AddCapacitor(name string, a, b NodeID, f float64) *Capacitor {
	d := &Capacitor{name: name, a: a, b: b, C: f}
	c.Add(d)
	return d
}

// AddVSource connects a voltage source between plus and minus driven by
// the given signal.
func (c *Circuit) AddVSource(name string, plus, minus NodeID, sig waveform.Signal) *VSource {
	d := &VSource{name: name, plus: plus, minus: minus, Signal: sig}
	c.Add(d)
	return d
}

// AddDCVSource connects a constant voltage source.
func (c *Circuit) AddDCVSource(name string, plus, minus NodeID, volts float64) *VSource {
	return c.AddVSource(name, plus, minus, waveform.Constant(volts))
}

// AddISource connects a constant current source pushing amps from minus
// to plus through the external circuit (conventional current into plus).
func (c *Circuit) AddISource(name string, plus, minus NodeID, amps float64) *ISource {
	d := &ISource{name: name, plus: plus, minus: minus, I: amps}
	c.Add(d)
	return d
}

// AddMOSFET connects a MOSFET. For an n-channel device set Params.PMOS to
// false; the body is implicitly tied to the source (no body effect).
func (c *Circuit) AddMOSFET(name string, drain, gate, source NodeID, p MOSParams) *MOSFET {
	d := &MOSFET{name: name, d: drain, g: gate, s: source, P: p}
	c.Add(d)
	return d
}

// unknowns returns the MNA system size: non-ground nodes plus one branch
// current per voltage source.
func (c *Circuit) unknowns() int {
	return (c.NumNodes() - 1) + len(c.vsources)
}

// nodeVar maps a node to its MNA variable index, or -1 for ground.
func nodeVar(n NodeID) int { return int(n) - 1 }

// branchVar maps a voltage-source ordinal to its MNA variable index.
func (c *Circuit) branchVar(branch int) int { return (c.NumNodes() - 1) + branch }

// Validate performs basic sanity checks on the netlist.
func (c *Circuit) Validate() error {
	if len(c.devices) == 0 {
		return fmt.Errorf("spice: empty circuit")
	}
	seen := map[string]bool{}
	for _, d := range c.devices {
		if d.Name() == "" {
			return fmt.Errorf("spice: device with empty name")
		}
		if seen[d.Name()] {
			return fmt.Errorf("spice: duplicate device name %q", d.Name())
		}
		seen[d.Name()] = true
		for _, n := range d.Nodes() {
			if int(n) < 0 || int(n) >= c.NumNodes() {
				return fmt.Errorf("spice: device %q references unknown node %d", d.Name(), int(n))
			}
		}
	}
	return nil
}

// String renders a netlist summary for debugging.
func (c *Circuit) String() string {
	names := make([]string, 0, len(c.devices))
	for _, d := range c.devices {
		nodes := d.Nodes()
		ns := make([]string, len(nodes))
		for i, n := range nodes {
			ns[i] = c.NodeName(n)
		}
		names = append(names, fmt.Sprintf("%s(%v)", d.Name(), ns))
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + "\n"
	}
	return out
}
