package spice

import "testing"

// BenchmarkSolverNewton measures one Newton solve in a warm workspace —
// the transient inner loop. The allocation count here is guarded by CI:
// the whole point of the Solver is that this path does not allocate.
func BenchmarkSolverNewton(b *testing.B) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		b.Fatal(err)
	}
	op, err := s.OperatingPoint(0, NewtonOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s.ctx.Time, s.ctx.Dt, s.ctx.Method, s.ctx.DC = 10e-12, 10e-12, Trapezoidal, false
	v := make([]float64, len(op))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, op)
		if err := s.newton(v, NewtonOptions{}, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverTransient runs the inverter edge in one persistent
// solver — the per-unit cost a warm bench pays.
func BenchmarkSolverTransient(b *testing.B) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		b.Fatal(err)
	}
	opt := inverterOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Transient(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverTransientFresh is the pre-Solver reference: a fresh
// workspace per transient, for the cold/warm comparison in CI's
// BENCH_solver.json.
func BenchmarkSolverTransientFresh(b *testing.B) {
	c, _ := inverterCircuit()
	opt := inverterOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transient(c, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverNewtonSparse is the SparseFast counterpart of
// BenchmarkSolverNewton: one Newton solve in a warm workspace with the
// frozen linear base and the static-pivot sparse refactor. Its
// allocs/op is guarded by CI alongside the dense gate — the sparse
// inner loop must not allocate either (the one-time symbolic analysis
// happens before the timer starts).
func BenchmarkSolverNewtonSparse(b *testing.B) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		b.Fatal(err)
	}
	op, err := s.OperatingPoint(0, NewtonOptions{})
	if err != nil {
		b.Fatal(err)
	}
	s.mode = SparseFast
	s.ctx.Time, s.ctx.Dt, s.ctx.Method, s.ctx.DC = 10e-12, 10e-12, Trapezoidal, false
	v := make([]float64, len(op))
	// Warm-up solve performs the symbolic analysis.
	copy(v, op)
	if err := s.newton(v, NewtonOptions{}, 0, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v, op)
		if err := s.newton(v, NewtonOptions{}, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverTransientSparse runs the inverter edge in SparseFast
// mode in one persistent solver, for the dense-vs-sparse per-unit
// comparison in BENCH_solver.json.
func BenchmarkSolverTransientSparse(b *testing.B) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		b.Fatal(err)
	}
	opt := inverterOptions()
	opt.Solver = SparseFast
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Transient(opt); err != nil {
			b.Fatal(err)
		}
	}
}
