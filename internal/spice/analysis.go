package spice

import (
	"fmt"
	"sort"

	"hybriddelay/internal/waveform"
)

// NewtonOptions controls the nonlinear solver.
type NewtonOptions struct {
	AbsTol  float64 // absolute voltage tolerance [V]; default 1e-9
	RelTol  float64 // relative tolerance; default 1e-6
	MaxIter int     // default 100
	Damping float64 // max Newton update per iteration [V]; default 0.5

	// ModifiedNewton reuses the most recent LU factorization across
	// Newton iterations and transient steps, solving the residual form
	// J_stale·Δ = RHS - G·v and refactoring only when the iteration
	// stops contracting. The converged solution agrees with full Newton
	// within tolerance but is NOT bit-identical, so this is opt-in and
	// never used on the golden path.
	ModifiedNewton bool
	// StallRatio is the per-iteration contraction a stale-Jacobian
	// update must achieve (maxDelta <= StallRatio * previous maxDelta)
	// before the solver refactors; default 0.5.
	StallRatio float64
}

func (o *NewtonOptions) defaults() {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Damping <= 0 {
		o.Damping = 0.5
	}
	if o.StallRatio <= 0 {
		o.StallRatio = 0.5
	}
}

// OperatingPoint computes the DC solution at time t (signals evaluated at
// t, capacitors open). The returned slice holds the MNA unknowns: node
// voltages (ground excluded) followed by voltage-source branch currents.
//
// This is the per-call reference path: it validates the circuit and
// builds a fresh solver workspace every time. Callers that solve the
// same circuit repeatedly should hold a Solver instead.
func OperatingPoint(c *Circuit, t float64, opt NewtonOptions) ([]float64, error) {
	s, err := NewSolver(c)
	if err != nil {
		return nil, err
	}
	return s.OperatingPoint(t, opt)
}

// TransientOptions configures transient analysis.
type TransientOptions struct {
	TStart, TStop float64
	// MaxStep bounds the step size; default (TStop-TStart)/50.
	MaxStep float64
	// MinStep is the smallest step before the run aborts; default
	// MaxStep*1e-9.
	MinStep float64
	// LTETol is the local truncation error tolerance in volts used for
	// step control; default 1e-4 V.
	LTETol float64
	// Method selects the integration scheme; default Trapezoidal with a
	// backward-Euler start after every breakpoint.
	Method IntegrationMethod
	// Breakpoints are times at which the step size is reset (input
	// edges). Entries must be finite; duplicates (within the stepper's
	// arrival tolerance) and entries outside (TStart, TStop) are
	// discarded, so a repeated edge time cannot force a second step-size
	// reset or a pointless backward-Euler restart.
	Breakpoints []float64
	// InitialConditions, if non-nil, sets node voltages at TStart directly
	// (UIC); otherwise a DC operating point at TStart is computed.
	InitialConditions map[NodeID]float64
	// Record lists the nodes whose waveforms are captured; nil = all
	// nodes. Recording Ground is allowed and yields the constant 0 V
	// reference; any other node not in the circuit is rejected.
	Record []NodeID
	Newton NewtonOptions
	// Solver selects the linear-solver strategy for the Newton inner
	// loop. The zero value, DenseExact, is the bit-identical golden
	// path; SparseFast is numerically equivalent but faster on larger
	// systems. See SolverMode.
	Solver SolverMode
	// SparsePivotRel, when positive, overrides the SparseFast symbolic
	// pilot's pivot admissibility threshold (sparse.Options.PivotRel):
	// larger values trade fill reduction for static-pivot stability.
	// Zero selects the sparse package default (0.1). Ignored by
	// DenseExact. The value participates in the symbolic cache key, so
	// differently-tuned solves never share an analysis.
	SparsePivotRel float64
}

// TransientResult holds the captured node waveforms.
type TransientResult struct {
	Times []float64
	nodes map[NodeID][]float64
	names map[NodeID]string
}

// Waveform returns the waveform recorded for node n.
func (r *TransientResult) Waveform(n NodeID) (*waveform.Waveform, error) {
	vs, ok := r.nodes[n]
	if !ok {
		return nil, fmt.Errorf("spice: node %d was not recorded", int(n))
	}
	return waveform.NewWaveform(r.Times, vs)
}

// NodeIDs returns the recorded nodes in ascending order.
func (r *TransientResult) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Transient runs an adaptive-step transient analysis.
//
// This is the per-call reference path: it validates the circuit and
// builds a fresh solver workspace every time. Callers that run many
// transients on the same circuit should hold a Solver, whose results
// are bit-identical.
func Transient(c *Circuit, opt TransientOptions) (*TransientResult, error) {
	s, err := NewSolver(c)
	if err != nil {
		return nil, err
	}
	return s.Transient(opt)
}
