package spice

import (
	"fmt"
	"math"
	"sort"

	"hybriddelay/internal/la"
	"hybriddelay/internal/waveform"
)

// NewtonOptions controls the nonlinear solver.
type NewtonOptions struct {
	AbsTol  float64 // absolute voltage tolerance [V]; default 1e-9
	RelTol  float64 // relative tolerance; default 1e-6
	MaxIter int     // default 100
	Damping float64 // max Newton update per iteration [V]; default 0.5
}

func (o *NewtonOptions) defaults() {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Damping <= 0 {
		o.Damping = 0.5
	}
}

// solveNewton iterates the MNA system at a fixed time/step until the
// update norm is below tolerance. v is used as the starting iterate and
// holds the solution on success.
func solveNewton(c *Circuit, ctx *StampContext, v []float64, opt NewtonOptions) error {
	opt.defaults()
	n := c.unknowns()
	if ctx.G == nil || ctx.G.Rows != n {
		ctx.G = la.NewMatrix(n, n)
	}
	if ctx.RHS == nil || len(ctx.RHS) != n {
		ctx.RHS = make([]float64, n)
	}
	xNew := make([]float64, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		ctx.G.Zero()
		for i := range ctx.RHS {
			ctx.RHS[i] = 0
		}
		ctx.V = v
		for _, d := range c.devices {
			d.Stamp(ctx)
		}
		f, err := la.Factor(ctx.G)
		if err != nil {
			return fmt.Errorf("spice: MNA matrix singular at t=%g: %w", ctx.Time, err)
		}
		if err := f.SolveInto(xNew, ctx.RHS); err != nil {
			return fmt.Errorf("spice: solve failed at t=%g: %w", ctx.Time, err)
		}
		// Damped update with convergence check on node voltages.
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			d := xNew[i] - v[i]
			if i < c.NumNodes()-1 { // voltage unknowns only for damping
				if d > opt.Damping {
					d = opt.Damping
				} else if d < -opt.Damping {
					d = -opt.Damping
				}
			}
			v[i] += d
			if i < c.NumNodes()-1 {
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
			}
		}
		if maxDelta <= opt.AbsTol+opt.RelTol*la.NormInf(v[:c.NumNodes()-1]) {
			return nil
		}
	}
	return fmt.Errorf("spice: Newton did not converge at t=%g", ctx.Time)
}

// OperatingPoint computes the DC solution at time t (signals evaluated at
// t, capacitors open). The returned slice holds the MNA unknowns: node
// voltages (ground excluded) followed by voltage-source branch currents.
func OperatingPoint(c *Circuit, t float64, opt NewtonOptions) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	v := make([]float64, c.unknowns())
	ctx := &StampContext{Time: t, DC: true, circuit: c}
	if err := solveNewton(c, ctx, v, opt); err == nil {
		return v, nil
	}
	// Gmin homotopy: solve with shrinking shunts to ground, carrying the
	// solution from stage to stage, then polish without the shunts.
	for i := range v {
		v[i] = 0
	}
	for _, gmin := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
		ctx := &StampContext{Time: t, DC: true, circuit: c}
		if err := solveWithGmin(c, ctx, v, opt, gmin); err != nil {
			return nil, fmt.Errorf("spice: operating point gmin stage %g failed: %w", gmin, err)
		}
	}
	ctx = &StampContext{Time: t, DC: true, circuit: c}
	if err := solveNewton(c, ctx, v, opt); err != nil {
		return nil, err
	}
	return v, nil
}

// solveWithGmin performs a Newton solve with an extra conductance gmin
// from every node to ground, used as a homotopy stage.
func solveWithGmin(c *Circuit, ctx *StampContext, v []float64, opt NewtonOptions, gmin float64) error {
	opt.defaults()
	n := c.unknowns()
	ctx.G = la.NewMatrix(n, n)
	ctx.RHS = make([]float64, n)
	xNew := make([]float64, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		ctx.G.Zero()
		for i := range ctx.RHS {
			ctx.RHS[i] = 0
		}
		ctx.V = v
		for _, d := range c.devices {
			d.Stamp(ctx)
		}
		for i := 0; i < c.NumNodes()-1; i++ {
			ctx.G.Add(i, i, gmin)
		}
		f, err := la.Factor(ctx.G)
		if err != nil {
			return err
		}
		if err := f.SolveInto(xNew, ctx.RHS); err != nil {
			return err
		}
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			d := xNew[i] - v[i]
			v[i] += d
			if i < c.NumNodes()-1 {
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
			}
		}
		if maxDelta <= opt.AbsTol+opt.RelTol*la.NormInf(v[:c.NumNodes()-1]) {
			return nil
		}
	}
	return fmt.Errorf("spice: gmin stage did not converge")
}

// TransientOptions configures transient analysis.
type TransientOptions struct {
	TStart, TStop float64
	// MaxStep bounds the step size; default (TStop-TStart)/50.
	MaxStep float64
	// MinStep is the smallest step before the run aborts; default
	// MaxStep*1e-9.
	MinStep float64
	// LTETol is the local truncation error tolerance in volts used for
	// step control; default 1e-4 V.
	LTETol float64
	// Method selects the integration scheme; default Trapezoidal with a
	// backward-Euler start after every breakpoint.
	Method IntegrationMethod
	// Breakpoints are times at which the step size is reset (input edges).
	Breakpoints []float64
	// InitialConditions, if non-nil, sets node voltages at TStart directly
	// (UIC); otherwise a DC operating point at TStart is computed.
	InitialConditions map[NodeID]float64
	// Record lists the nodes whose waveforms are captured; nil = all nodes.
	Record []NodeID
	Newton NewtonOptions
}

// TransientResult holds the captured node waveforms.
type TransientResult struct {
	Times []float64
	nodes map[NodeID][]float64
	names map[NodeID]string
}

// Waveform returns the waveform recorded for node n.
func (r *TransientResult) Waveform(n NodeID) (*waveform.Waveform, error) {
	vs, ok := r.nodes[n]
	if !ok {
		return nil, fmt.Errorf("spice: node %d was not recorded", int(n))
	}
	return waveform.NewWaveform(r.Times, vs)
}

// NodeIDs returns the recorded nodes in ascending order.
func (r *TransientResult) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Transient runs an adaptive-step transient analysis.
func Transient(c *Circuit, opt TransientOptions) (*TransientResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.TStop <= opt.TStart {
		return nil, fmt.Errorf("spice: invalid transient window [%g, %g]", opt.TStart, opt.TStop)
	}
	span := opt.TStop - opt.TStart
	if opt.MaxStep <= 0 {
		opt.MaxStep = span / 50
	}
	if opt.MinStep <= 0 {
		opt.MinStep = opt.MaxStep * 1e-9
	}
	if opt.LTETol <= 0 {
		opt.LTETol = 1e-4
	}

	// Initial state.
	var v []float64
	if opt.InitialConditions != nil {
		v = make([]float64, c.unknowns())
		for n, val := range opt.InitialConditions {
			if i := nodeVar(n); i >= 0 {
				v[i] = val
			}
		}
		// Nodes held by voltage sources take the source value at TStart.
		for _, vs := range c.vsources {
			val := vs.Signal(opt.TStart)
			ip, im := nodeVar(vs.plus), nodeVar(vs.minus)
			if ip >= 0 && im < 0 {
				v[ip] = val
			} else if im >= 0 && ip < 0 {
				v[im] = -val
			}
		}
	} else {
		op, err := OperatingPoint(c, opt.TStart, opt.Newton)
		if err != nil {
			return nil, fmt.Errorf("spice: operating point failed: %w", err)
		}
		v = op
	}
	for _, d := range c.devices {
		if s, ok := d.(Stateful); ok {
			s.Init(v)
		}
	}

	// Breakpoint schedule.
	bps := append([]float64(nil), opt.Breakpoints...)
	bps = append(bps, opt.TStop)
	sort.Float64s(bps)

	record := opt.Record
	if record == nil {
		for i := 1; i < c.NumNodes(); i++ {
			record = append(record, NodeID(i))
		}
	}
	res := &TransientResult{
		nodes: map[NodeID][]float64{},
		names: map[NodeID]string{},
	}
	for _, n := range record {
		res.nodes[n] = nil
		res.names[n] = c.NodeName(n)
	}
	capture := func(t float64, sol []float64) {
		res.Times = append(res.Times, t)
		for _, n := range record {
			val := 0.0
			if i := nodeVar(n); i >= 0 {
				val = sol[i]
			}
			res.nodes[n] = append(res.nodes[n], val)
		}
	}
	capture(opt.TStart, v)

	t := opt.TStart
	h := opt.MaxStep / 16
	vPrev := append([]float64(nil), v...)
	justBroke := true // start conservatively with BE
	nextBp := 0
	for t < opt.TStop-1e-24 {
		for nextBp < len(bps) && bps[nextBp] <= t+1e-24 {
			nextBp++
		}
		// Clamp the step to the next breakpoint.
		hTry := math.Min(h, opt.MaxStep)
		if nextBp < len(bps) && t+hTry > bps[nextBp] {
			hTry = bps[nextBp] - t
		}
		if hTry < opt.MinStep {
			hTry = opt.MinStep
		}
		method := opt.Method
		if justBroke {
			method = BackwardEuler
		}

		// Solve the step.
		ctx := &StampContext{Time: t + hTry, Dt: hTry, Method: method, circuit: c}
		copy(v, vPrev)
		err := solveNewton(c, ctx, v, opt.Newton)
		if err != nil {
			if hTry <= opt.MinStep*1.0001 {
				return nil, fmt.Errorf("spice: step failed at minimum step size t=%g: %w", t, err)
			}
			h = hTry / 4
			continue
		}
		// Simple LTE proxy: largest node-voltage change this step; reject
		// steps that move any node too fast to resolve the waveforms.
		maxDv := 0.0
		for i := 0; i < c.NumNodes()-1; i++ {
			if d := math.Abs(v[i] - vPrev[i]); d > maxDv {
				maxDv = d
			}
		}
		limit := 40 * opt.LTETol
		if maxDv > limit && hTry > opt.MinStep*1.0001 {
			h = hTry / 2
			continue
		}

		// Accept.
		ctx.V = v
		for _, d := range c.devices {
			if s, ok := d.(Stateful); ok {
				s.Commit(ctx)
			}
		}
		t += hTry
		copy(vPrev, v)
		capture(t, v)
		justBroke = false
		if nextBp < len(bps) && math.Abs(t-bps[nextBp]) <= 1e-24+1e-12*math.Abs(t) {
			justBroke = true
			h = opt.MaxStep / 64
			continue
		}
		// Grow the step gently when the solution is smooth.
		if maxDv < limit/4 {
			h = hTry * 1.5
		} else {
			h = hTry
		}
	}
	return res, nil
}
