package spice

import (
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

func TestVoltageDivider(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddDCVSource("V1", in, Ground, 10)
	c.AddResistor("R1", in, mid, 1e3)
	c.AddResistor("R2", mid, Ground, 3e3)
	sol, err := OperatingPoint(c, 0, NewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vmid := sol[int(mid)-1]
	if math.Abs(vmid-7.5) > 1e-9 {
		t.Errorf("divider mid = %g V, want 7.5", vmid)
	}
}

func TestVSourceBranchCurrent(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	v := c.AddDCVSource("V1", in, Ground, 5)
	c.AddResistor("R", in, Ground, 1e3)
	sol, err := OperatingPoint(c, 0, NewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 mA flows out of the source's plus terminal into R.
	i := v.Current(c, sol)
	if math.Abs(i+5e-3) > 1e-9 {
		t.Errorf("branch current = %g, want -5e-3 (MNA current into plus)", i)
	}
}

func TestCurrentSource(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddISource("I1", n, Ground, 1e-3)
	c.AddResistor("R", n, Ground, 2e3)
	sol, err := OperatingPoint(c, 0, NewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol[int(n)-1]; math.Abs(got-2) > 1e-9 {
		t.Errorf("node voltage = %g, want 2 (1mA * 2k)", got)
	}
}

func TestValidate(t *testing.T) {
	c := NewCircuit()
	if err := c.Validate(); err == nil {
		t.Error("expected error for empty circuit")
	}
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1e3)
	c.AddResistor("R", n, Ground, 1e3)
	if err := c.Validate(); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestNodeNaming(t *testing.T) {
	c := NewCircuit()
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Error("ground aliases broken")
	}
	a := c.Node("a")
	if c.Node("a") != a {
		t.Error("node lookup not idempotent")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "gnd" {
		t.Error("node names wrong")
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", c.NumNodes())
	}
}

// TestRCDischarge checks the transient integrator against the exact
// exponential solution of an RC discharge.
func TestRCDischarge(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1e3)
	c.AddCapacitor("C", n, Ground, 1e-9) // tau = 1 us
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 5e-6,
		MaxStep:           1e-8,
		InitialConditions: map[NodeID]float64{n: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.5e-6, 1e-6, 2e-6, 4e-6} {
		want := math.Exp(-tm / 1e-6)
		got := w.At(tm)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("V(%g) = %g, want %g", tm, got, want)
		}
	}
}

// TestRCChargeThroughSource: step response V(t) = VDD (1 - e^{-t/RC}).
func TestRCChargeStep(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddDCVSource("V", in, Ground, 2)
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-9)
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 5e-6,
		MaxStep:           1e-8,
		InitialConditions: map[NodeID]float64{out: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{1e-6, 3e-6} {
		want := 2 * (1 - math.Exp(-tm/1e-6))
		if got := w.At(tm); math.Abs(got-want) > 4e-3 {
			t.Errorf("V(%g) = %g, want %g", tm, got, want)
		}
	}
}

// TestCoupledRCAgainstODE cross-validates the MNA integrator against the
// closed-form two-node RC ladder used by the hybrid model (mode (0,0)
// topology): VDD - R1 - N(C_N) - R2 - O(C_O).
func TestCoupledRCAgainstODE(t *testing.T) {
	const (
		vdd = 0.8
		r1  = 37.088e3
		r2  = 44.926e3
		cn  = 59.486e-18
		co  = 617.259e-18
	)
	c := NewCircuit()
	src := c.Node("src")
	n := c.Node("n")
	o := c.Node("o")
	c.AddDCVSource("V", src, Ground, vdd)
	c.AddResistor("R1", src, n, r1)
	c.AddResistor("R2", n, o, r2)
	c.AddCapacitor("CN", n, Ground, cn)
	c.AddCapacitor("CO", o, Ground, co)
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 200e-12,
		MaxStep:           0.05e-12,
		InitialConditions: map[NodeID]float64{n: 0, o: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(o)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form for V_O: mode (0,0) of the hybrid model. Values
	// computed independently below via the analytic two-exponential
	// solution.
	alpha := (co*(r1+r2) - cn*r1) / (2 * co * cn * r1 * r2)
	beta := math.Sqrt((cn*r1+co*(r1+r2))*(cn*r1+co*(r1+r2))-4*co*cn*r1*r2) / (2 * co * cn * r1 * r2)
	gamma := -(cn*r1 + co*(r1+r2)) / (2 * co * cn * r1 * r2)
	l1, l2 := gamma+beta, gamma-beta
	// Coefficients for V_N(0)=V_O(0)=0 in the paper's eigenbasis.
	cnr2 := cn * r2
	c1 := ((0 - vdd) - (0-vdd)*cnr2*(alpha-beta)) / (2 * beta)
	c2 := (0-vdd)*cnr2 - c1
	voExact := func(tm float64) float64 {
		return vdd + c1*(alpha+beta)*math.Exp(l1*tm) + c2*(alpha-beta)*math.Exp(l2*tm)
	}
	for _, tm := range []float64{20e-12, 50e-12, 100e-12, 180e-12} {
		want := voExact(tm)
		got := w.At(tm)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("V_O(%g ps) = %.6f, want %.6f", tm*1e12, got, want)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1e3)
	if _, err := Transient(c, TransientOptions{TStart: 1, TStop: 0}); err == nil {
		t.Error("expected invalid-window error")
	}
}

func TestTransientBreakpoints(t *testing.T) {
	// A pulse source with breakpoints must be resolved accurately.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	edge := waveform.RaisedCosineEdge(50e-9, 10e-9, 0, 1)
	c.AddVSource("V", in, Ground, edge)
	c.AddResistor("R", in, out, 1e3)
	c.AddCapacitor("C", out, Ground, 1e-12) // tau = 1 ns (fast)
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 100e-9,
		MaxStep:           2e-9,
		Breakpoints:       []float64{45e-9},
		InitialConditions: map[NodeID]float64{out: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	// Output follows the (slow) edge closely; at t = 80 ns it is settled.
	if got := w.At(90e-9); math.Abs(got-1) > 1e-2 {
		t.Errorf("settled output = %g, want ~1", got)
	}
	// Threshold crossing within a couple of ns of the input's.
	cr, ok := w.FirstCrossingAfter(0, 0.5, true)
	if !ok {
		t.Fatal("no output crossing")
	}
	if math.Abs(cr-51e-9) > 2e-9 {
		t.Errorf("crossing at %g, want ~51 ns", cr)
	}
}

func TestRecordSubset(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	b := c.Node("b")
	c.AddDCVSource("V", a, Ground, 1)
	c.AddResistor("R", a, b, 1e3)
	c.AddResistor("R2", b, Ground, 1e3)
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 1e-9, MaxStep: 1e-10,
		Record:            []NodeID{b},
		InitialConditions: map[NodeID]float64{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Waveform(b); err != nil {
		t.Errorf("recorded node missing: %v", err)
	}
	if _, err := res.Waveform(a); err == nil {
		t.Error("unrecorded node should error")
	}
	if ids := res.NodeIDs(); len(ids) != 1 || ids[0] != b {
		t.Errorf("NodeIDs = %v", ids)
	}
}
