package spice

import (
	"strings"
	"testing"

	"hybriddelay/internal/waveform"
)

// Failure-injection tests: the solver must fail loudly and descriptively
// on pathological inputs rather than returning garbage.

func TestSingularMNAFails(t *testing.T) {
	// A floating node with only a capacitor has no DC path: the DC
	// operating point is singular and must be reported.
	c := NewCircuit()
	n := c.Node("float")
	c.AddCapacitor("C", n, Ground, 1e-15)
	if _, err := OperatingPoint(c, 0, NewtonOptions{}); err == nil {
		t.Error("singular DC system accepted")
	}
}

func TestShortedSourcesFail(t *testing.T) {
	// Two ideal voltage sources forcing different voltages on the same
	// node produce an inconsistent (singular) MNA system.
	c := NewCircuit()
	n := c.Node("n")
	c.AddDCVSource("V1", n, Ground, 1)
	c.AddDCVSource("V2", n, Ground, 2)
	if _, err := OperatingPoint(c, 0, NewtonOptions{}); err == nil {
		t.Error("contradictory sources accepted")
	}
}

func TestEmptyCircuitFails(t *testing.T) {
	c := NewCircuit()
	if _, err := OperatingPoint(c, 0, NewtonOptions{}); err == nil {
		t.Error("empty circuit accepted")
	}
	if _, err := Transient(c, TransientOptions{TStart: 0, TStop: 1}); err == nil {
		t.Error("empty transient accepted")
	}
}

func TestTransientReportsSourceErrors(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddVSource("V", n, Ground, waveform.Constant(1))
	c.AddResistor("R", n, Ground, 1e3)
	// Inverted window.
	if _, err := Transient(c, TransientOptions{TStart: 1, TStop: 0}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestNewtonToleranceDefaults(t *testing.T) {
	var o NewtonOptions
	o.defaults()
	if o.AbsTol <= 0 || o.RelTol <= 0 || o.MaxIter <= 0 || o.Damping <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestValidateMessages(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddResistor("", n, Ground, 1e3)
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Errorf("expected empty-name error, got %v", err)
	}
}

// TestStiffCircuitConverges: a circuit with 6 decades of time-constant
// spread still integrates (the step controller and BE restart after
// breakpoints must cope with stiffness).
func TestStiffCircuitConverges(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	fast := c.Node("fast")
	slow := c.Node("slow")
	edge := waveform.RaisedCosineEdge(10e-9, 1e-9, 0, 1)
	c.AddVSource("V", in, Ground, edge)
	c.AddResistor("Rf", in, fast, 1e2)
	c.AddCapacitor("Cf", fast, Ground, 1e-15) // tau = 0.1 ps
	c.AddResistor("Rs", in, slow, 1e6)
	c.AddCapacitor("Cs", slow, Ground, 1e-13) // tau = 100 ns
	res, err := Transient(c, TransientOptions{
		TStart: 0, TStop: 500e-9,
		MaxStep:           5e-9,
		Breakpoints:       []float64{9.5e-9},
		InitialConditions: map[NodeID]float64{fast: 0, slow: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := res.Waveform(fast)
	if err != nil {
		t.Fatal(err)
	}
	if v := wf.At(400e-9); v < 0.99 {
		t.Errorf("fast node = %g at 400 ns, want ~1", v)
	}
	ws, err := res.Waveform(slow)
	if err != nil {
		t.Fatal(err)
	}
	// Slow node follows 1 - exp(-(t-10ns)/100ns).
	v := ws.At(110e-9)
	if v < 0.5 || v > 0.75 {
		t.Errorf("slow node = %g at 110 ns, want ~0.63", v)
	}
}

// TestMOSFETConvergenceFromBadGuess: Newton with damping must converge
// for the NOR bench even from an all-zero iterate with rail inputs.
func TestMOSFETConvergenceFromBadGuess(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddDCVSource("Vdd", vdd, Ground, 0.8)
	c.AddDCVSource("Vin", in, Ground, 0.8)
	c.AddMOSFET("MP", out, in, vdd, MOSParams{PMOS: true, VT0: 0.2, K: 70e-6, Lambda: 0.25, Gmin: 1e-12})
	c.AddMOSFET("MN", out, in, Ground, MOSParams{VT0: 0.2, K: 70e-6, Lambda: 0.25, Gmin: 1e-12})
	sol, err := OperatingPoint(c, 0, NewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := sol[int(out)-1]; v > 0.05 {
		t.Errorf("inverter output = %g with high input, want ~0", v)
	}
}
