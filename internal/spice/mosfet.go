package spice

// MOSParams parameterises the square-law MOSFET model. The model is a
// level-1 Shichman–Hodges device with channel-length modulation and fixed
// (linear) gate–source, gate–drain and drain–bulk capacitances. The fixed
// gate capacitances are essential here: the Miller coupling from the
// inputs onto the internal node N and the output O is what produces the
// MIS slow-down for rising NOR outputs (paper §II), so the golden
// reference must include them.
type MOSParams struct {
	PMOS   bool    // channel polarity
	VT0    float64 // threshold voltage magnitude [V]
	K      float64 // transconductance K = mu*Cox*W/L [A/V^2]
	Lambda float64 // channel-length modulation [1/V]
	Cgs    float64 // gate-source capacitance [F]
	Cgd    float64 // gate-drain capacitance [F]
	Cdb    float64 // drain-bulk capacitance to ground [F]
	Gmin   float64 // leakage conductance drain-source for convergence [S]
}

// MOSFET is a three-terminal transistor (bulk tied to source implicitly,
// no body effect).
type MOSFET struct {
	name    string
	d, g, s NodeID
	P       MOSParams

	cgs, cgd, cdb capState
}

// Name returns the device name.
func (m *MOSFET) Name() string { return m.name }

// Nodes returns drain, gate, source.
func (m *MOSFET) Nodes() []NodeID { return []NodeID{m.d, m.g, m.s} }

// idsLaw evaluates the square-law channel current for an nMOS-oriented
// device with vds >= 0, plus its partial derivatives with respect to vgs
// and vds. The model is C1-continuous across the cutoff boundary
// (vgs = VT0) and the triode/saturation boundary (vds = vgs - VT0), which
// keeps the Newton iteration stable.
func idsLaw(p MOSParams, vgs, vds float64) (i, gm, gds float64) {
	vov := vgs - p.VT0
	if vov <= 0 {
		return 0, 0, 0
	}
	lam := 1 + p.Lambda*vds
	if vds < vov {
		// Triode region.
		q := vov*vds - 0.5*vds*vds
		i = p.K * q * lam
		gm = p.K * vds * lam
		gds = p.K*(vov-vds)*lam + p.K*q*p.Lambda
	} else {
		// Saturation.
		q := 0.5 * vov * vov
		i = p.K * q * lam
		gm = p.K * vov * lam
		gds = p.K * q * p.Lambda
	}
	return i, gm, gds
}

// Eval returns the static channel current I flowing into the physical
// drain terminal for node voltages (vd, vg, vs), along with the partial
// derivatives dI/dvd, dI/dvg, dI/dvs. Polarity (pMOS) and reverse biasing
// (vds < 0) are handled by symmetry mappings, so the returned quantities
// are exact for every quadrant.
func (m *MOSFET) Eval(vd, vg, vs float64) (i, gd, gg, gs float64) {
	// Map pMOS onto nMOS by negating all terminal voltages. Under the
	// mapping w = -v the physical current flips sign, while dI/dv =
	// sign(dI_w/dw)*sign(dw/dv) leaves the conductances unchanged.
	sign := 1.0
	wd, wg, ws := vd, vg, vs
	if m.P.PMOS {
		wd, wg, ws = -vd, -vg, -vs
		sign = -1
	}
	// The square-law channel is symmetric: for wd < ws the device conducts
	// with the terminal roles exchanged.
	swapped := false
	ed, es := wd, ws
	if ed < es {
		ed, es = es, ed
		swapped = true
	}
	cur, gm, gds := idsLaw(m.P, wg-es, ed-es)
	// Partials of the effective current with respect to the effective
	// terminal voltages.
	dDeff := gds
	dG := gm
	dSeff := -gm - gds
	// Current into the *physical* drain terminal in the w-frame, and its
	// partials with respect to (wd, wg, ws).
	var iw, dwd, dwg, dws float64
	if !swapped {
		iw, dwd, dwg, dws = cur, dDeff, dG, dSeff
	} else {
		iw, dwd, dwg, dws = -cur, -dSeff, -dG, -dDeff
	}
	return sign * iw, dwd, dwg, dws
}

// Stamp implements Device. The channel current is linearised around the
// iterate,
//
//	I(v) ~= I0 + Gd*(vd-vd0) + Gg*(vg-vg0) + Gs*(vs-vs0),
//
// stamping the partials into the Jacobian and the affine remainder as an
// equivalent current source.
// The stamp is split into StampNonlinear (the iterate-dependent channel
// linearisation) and StampLinear (the iterate-independent leakage and
// parasitic capacitances), called in exactly the historical accumulation
// order so the dense golden path stays bit-identical. The sparse solver
// calls the two halves separately: the linear half is frozen into a base
// matrix once per Newton solve and only the channel is re-stamped per
// iteration.
func (m *MOSFET) Stamp(ctx *StampContext) {
	m.StampNonlinear(ctx)
	m.StampLinear(ctx)
}

// StampNonlinear stamps only the channel linearisation — the part of
// the device that depends on the Newton iterate.
// The body addresses the Jacobian rows directly rather than through the
// generic addG/stampConductance helpers: a transistor stamp is the
// densest accumulation in the Newton inner loop, and hoisting the row
// slices (and the ground checks) once per terminal is worth ~a third of
// the stamping time. Values and per-cell accumulation order are exactly
// the helper sequence's — only writes to distinct cells, which are
// independent float64 sums, are emitted in a different order.
func (m *MOSFET) StampNonlinear(ctx *StampContext) {
	iD, iG, iS := nodeVar(m.d), nodeVar(m.g), nodeVar(m.s)
	V := ctx.V
	var vd, vg, vs float64
	if iD >= 0 {
		vd = V[iD]
	}
	if iG >= 0 {
		vg = V[iG]
	}
	if iS >= 0 {
		vs = V[iS]
	}

	i0, gd, gg, gs := m.Eval(vd, vg, vs)

	data, nc := ctx.G.Data, ctx.G.Cols
	var rowD, rowS []float64
	if iD >= 0 {
		rowD = data[iD*nc : iD*nc+nc]
	}
	if iS >= 0 {
		rowS = data[iS*nc : iS*nc+nc]
	}
	// KCL at drain: +I leaves the node into the device.
	if rowD != nil {
		rowD[iD] += gd
		if iG >= 0 {
			rowD[iG] += gg
		}
		if iS >= 0 {
			rowD[iS] += gs
		}
	}
	// KCL at source: -I.
	if rowS != nil {
		if iD >= 0 {
			rowS[iD] -= gd
		}
		if iG >= 0 {
			rowS[iG] -= gg
		}
		rowS[iS] -= gs
	}
	// Affine remainder as a current leaving the drain, entering the source.
	ieq := i0 - gd*vd - gg*vg - gs*vs
	rhs := ctx.RHS
	if iD >= 0 {
		rhs[iD] -= ieq
	}
	if iS >= 0 {
		rhs[iS] += ieq
	}
}

// StampLinear stamps the iterate-independent part of the device: the
// convergence leakage conductance and the parasitic capacitances'
// companion models. Within one Newton solve these values are constant
// (companion values depend only on Dt, Method and committed state), so
// the sparse solver stamps them once per solve into a frozen base.
func (m *MOSFET) StampLinear(ctx *StampContext) {
	iD, iG, iS := nodeVar(m.d), nodeVar(m.g), nodeVar(m.s)

	// Leakage conductance for convergence robustness.
	if g := m.P.Gmin; g > 0 {
		data, nc := ctx.G.Data, ctx.G.Cols
		if iD >= 0 {
			rowD := data[iD*nc : iD*nc+nc]
			rowD[iD] += g
			if iS >= 0 {
				rowD[iS] -= g
			}
		}
		if iS >= 0 {
			rowS := data[iS*nc : iS*nc+nc]
			rowS[iS] += g
			if iD >= 0 {
				rowS[iD] -= g
			}
		}
	}

	// Parasitic capacitances.
	m.cgs.stampIdx(ctx, iG, iS, m.P.Cgs)
	m.cgd.stampIdx(ctx, iG, iD, m.P.Cgd)
	m.cdb.stampIdx(ctx, iD, -1, m.P.Cdb)
}

// Init implements Stateful.
func (m *MOSFET) Init(v []float64) {
	get := func(n NodeID) float64 {
		if i := nodeVar(n); i >= 0 {
			return v[i]
		}
		return 0
	}
	m.cgs.init(get(m.g) - get(m.s))
	m.cgd.init(get(m.g) - get(m.d))
	m.cdb.init(get(m.d))
}

// Commit implements Stateful.
func (m *MOSFET) Commit(ctx *StampContext) {
	m.cgs.commit(ctx, m.g, m.s)
	m.cgd.commit(ctx, m.g, m.d)
	m.cdb.commit(ctx, m.d, Ground)
}

// DrainCurrent returns the static channel current flowing into the drain
// for the given solved node voltages (used in diagnostics and tests).
func (m *MOSFET) DrainCurrent(c *Circuit, sol []float64) float64 {
	get := func(n NodeID) float64 {
		if i := nodeVar(n); i >= 0 {
			return sol[i]
		}
		return 0
	}
	i, _, _, _ := m.Eval(get(m.d), get(m.g), get(m.s))
	return i
}
