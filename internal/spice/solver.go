package spice

import (
	"fmt"
	"math"
	"sort"

	"hybriddelay/internal/la"
	"hybriddelay/internal/la/sparse"
)

// Solver owns the reusable workspace for MNA analyses on one circuit:
// one StampContext, the Jacobian G, the RHS vector, the Newton iterate
// buffers and the LU factorization workspace. The circuit topology is
// fixed per bench, so the system size never changes and every transient
// step and Newton iteration can run in the same buffers — a fresh
// per-call solver re-allocates all of this on every step.
//
// The circuit is validated once at construction; the topology must not
// change afterwards. A Solver is not safe for concurrent use — build
// one per goroutine (benches already are per-goroutine).
//
// All default-path results are bit-identical to the package-level
// Transient/OperatingPoint reference: buffer reuse changes where
// numbers live, never the arithmetic performed on them.
type Solver struct {
	c   *Circuit
	ctx StampContext

	xNew    []float64 // next Newton iterate
	rtmp    []float64 // residual buffer for modified-Newton solves
	v       []float64 // transient solution vector
	vPrev   []float64 // last accepted transient solution
	srcVals []float64 // hoisted per-solve source values, by branch

	lu     la.LU
	haveLU bool // lu factors a recent Jacobian (modified Newton only)

	mode SolverMode  // linear-solver strategy of the current transient
	sp   sparseState // SparseFast workspace (pattern, base, symbolic)

	// Symbolic-analysis sharing and tuning (SparseFast only): the
	// cache the solver resolves Symbolics through (nil = the
	// process-wide SharedSymbolicCache), the cache scope identifying
	// this solver's operating point, and the pilot's pivot
	// admissibility threshold (0 = the sparse package default).
	symCache       *sparse.SymbolicCache
	symScope       string
	sparsePivotRel float64

	stats SolverStats
}

// SolverStats counts the work a Solver has performed since creation.
type SolverStats struct {
	Steps          int64 // accepted transient steps
	Rejected       int64 // rejected (re-tried) transient steps
	Iterations     int64 // Newton iterations
	Factorizations int64 // LU factorizations (dense and sparse)
	Reused         int64 // iterations solved on a reused (stale) LU

	// SparseFast-mode counters (zero on the dense golden path).
	LinearReuses         int64 // iterations that reused the frozen linear stamp base
	SparseFactorizations int64 // factorizations done by the static-pivot sparse kernel
	SparseFallbacks      int64 // sparse refactors abandoned to the dense kernel
	SymbolicHits         int64 // symbolic analyses served from the shared cache
	SymbolicMisses       int64 // symbolic analyses this solver had to run
	Supernodes           int64 // multi-column supernodes in the adopted symbolics
}

// Add accumulates other into s, for aggregation across solvers.
func (s *SolverStats) Add(other SolverStats) {
	s.Steps += other.Steps
	s.Rejected += other.Rejected
	s.Iterations += other.Iterations
	s.Factorizations += other.Factorizations
	s.Reused += other.Reused
	s.LinearReuses += other.LinearReuses
	s.SparseFactorizations += other.SparseFactorizations
	s.SparseFallbacks += other.SparseFallbacks
	s.SymbolicHits += other.SymbolicHits
	s.SymbolicMisses += other.SymbolicMisses
	s.Supernodes += other.Supernodes
}

// NewSolver validates the circuit and returns a solver bound to it.
func NewSolver(c *Circuit) (*Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{c: c}
	s.ctx.circuit = c
	return s, nil
}

// Stats returns the cumulative work counters.
func (s *Solver) Stats() SolverStats { return s.stats }

// SetSymbolicCache selects the cache SparseFast symbolic analyses
// resolve through; nil (the default) selects the process-wide
// SharedSymbolicCache. Tests inject private caches for isolation.
func (s *Solver) SetSymbolicCache(c *sparse.SymbolicCache) { s.symCache = c }

// SetSymbolicScope sets the symbolic cache scope: a string identifying
// this solver's operating point (gate kind plus bench parameters, a
// netlist content key). Solvers with equal scope, topology and options
// share one symbolic analysis; the pilot factorization reads
// representative *values*, so distinct operating points must use
// distinct scopes to keep their static pivot orders deterministic. An
// empty scope (the default) still shares safely among solvers of
// byte-identical construction.
func (s *Solver) SetSymbolicScope(scope string) { s.symScope = scope }

// ensure sizes the workspace for the circuit's current system size.
func (s *Solver) ensure() {
	n := s.c.unknowns()
	//hybrid:alloc-ok one-time workspace build behind the nil/size guard; cold after the first call per system size
	if s.ctx.G == nil || s.ctx.G.Rows != n {
		s.ctx.G = la.NewMatrix(n, n)
	}
	if len(s.ctx.RHS) != n {
		s.ctx.RHS = make([]float64, n)
	}
	if len(s.xNew) != n {
		s.xNew = make([]float64, n)
	}
	if len(s.rtmp) != n {
		s.rtmp = make([]float64, n)
	}
	if len(s.v) != n {
		s.v = make([]float64, n)
	}
	if len(s.vPrev) != n {
		s.vPrev = make([]float64, n)
	}
	if len(s.srcVals) != len(s.c.vsources) {
		s.srcVals = make([]float64, len(s.c.vsources))
	}
}

// residual computes r = rhs - G·v, the KCL residual of the companion
// system at the current iterate.
func residual(r []float64, g *la.Matrix, v, rhs []float64) {
	n := g.Rows
	for i := 0; i < n; i++ {
		row := g.Data[i*n : i*n+n]
		sum := 0.0
		for j, gij := range row {
			sum += gij * v[j]
		}
		r[i] = rhs[i] - sum
	}
}

// newton iterates the MNA system at the solver's current context until
// the update norm is below tolerance. v is the starting iterate and
// holds the solution on success. gmin, when positive, adds a shunt
// conductance from every node to ground (homotopy stage); gminStage
// additionally selects the undamped iteration and error wording of the
// historical gmin solver, so stage behaviour is bit-identical to the
// per-call reference.
//
// The default path factors the fresh Jacobian every iteration and
// solves G·x = RHS directly — exactly the reference iteration. With
// opt.ModifiedNewton set, the solver instead reuses the most recent LU
// (possibly from a previous step) on the residual form
// J_stale·Δ = RHS - G·v and refactors only when the iteration stalls;
// the converged solution then agrees within tolerance but is NOT
// bit-identical, so modified Newton is opt-in and off on the golden
// path.
//
// This loop is allocation-free in the steady state, enforced twice:
// statically by hybridlint's noalloc analyzer (this annotation), and
// dynamically by CI's "enforce zero-allocation Newton inner loop" gate
// on BenchmarkSolverNewton's -benchmem allocs/op.
//
//hybrid:noalloc
func (s *Solver) newton(v []float64, opt NewtonOptions, gmin float64, gminStage bool) error {
	// The sparse path serves only the transient inner loop: DC
	// operating points and gmin homotopy stages have a different
	// structural pattern (capacitors open, added shunt diagonals) and
	// run once per transient, so they stay on the robust dense path.
	if s.mode == SparseFast && gmin == 0 && !gminStage && !s.ctx.DC && !opt.ModifiedNewton {
		return s.newtonSparse(v, opt)
	}
	// This dense solve factors ctx.G in place, leaving LU residue at
	// positions outside the sparse pattern's touched set; the next
	// sparse restamp must reset the workspace in full (every sparse
	// transient's DC/gmin prelude runs through here).
	s.sp.denseDirty = true
	opt.defaults()
	s.ensure()
	c := s.c
	n := c.unknowns()
	nv := c.NumNodes() - 1
	ctx := &s.ctx
	modified := opt.ModifiedNewton && !gminStage
	// Hoist the source evaluation: every iteration of this solve stamps
	// at the same ctx.Time.
	for i, vs := range c.vsources {
		s.srcVals[i] = vs.Signal(ctx.Time)
	}
	ctx.srcVals = s.srcVals
	xNew := s.xNew
	prevDelta := math.Inf(1)
	for iter := 0; iter < opt.MaxIter; iter++ {
		ctx.capFresh = iter == 0
		ctx.G.Zero()
		rhs := ctx.RHS
		for i := range rhs {
			rhs[i] = 0
		}
		ctx.V = v
		for _, d := range c.devices {
			d.Stamp(ctx)
		}
		if gmin > 0 {
			for i := 0; i < nv; i++ {
				ctx.G.Add(i, i, gmin)
			}
		}
		reused := false
		if modified && s.haveLU {
			residual(s.rtmp, ctx.G, v, rhs)
			if s.lu.SolveInto(xNew, s.rtmp) == nil {
				reused = true
				s.stats.Reused++
				for i := 0; i < n; i++ {
					xNew[i] += v[i]
				}
			} else {
				s.haveLU = false
			}
		}
		if !reused {
			// Default path: fused factor+solve on the Jacobian in place —
			// G is re-stamped from zero next iteration anyway, and carrying
			// the RHS through the elimination folds the permute and forward
			// substitution into the factorization sweep (bit-identical, see
			// la.FactorSolveInPlace). Modified Newton must keep its LU alive
			// across re-stamps (and steps), so it pays for the copying
			// FactorInto plus a separate solve.
			if modified {
				if err := s.lu.FactorInto(ctx.G); err != nil {
					s.haveLU = false
					if gminStage {
						return err
					}
					return fmt.Errorf("spice: MNA matrix singular at t=%g: %w", ctx.Time, err)
				}
				s.stats.Factorizations++
				s.haveLU = true
				if err := s.lu.SolveInto(xNew, rhs); err != nil {
					s.haveLU = false
					if gminStage {
						return err
					}
					return fmt.Errorf("spice: solve failed at t=%g: %w", ctx.Time, err)
				}
			} else {
				if err := s.lu.FactorSolveInPlace(ctx.G, xNew, rhs); err != nil {
					s.haveLU = false
					if gminStage {
						return err
					}
					return fmt.Errorf("spice: MNA matrix singular at t=%g: %w", ctx.Time, err)
				}
				s.stats.Factorizations++
				s.haveLU = false
			}
		}
		s.stats.Iterations++
		// Damped update with convergence check on node voltages. The
		// infinity norm of the updated voltages is accumulated in the same
		// pass (a max over the identical values — order-independent), so
		// the convergence test below needs no extra vector walk.
		maxDelta := 0.0
		maxV := 0.0
		for i := 0; i < n; i++ {
			d := xNew[i] - v[i]
			if !gminStage && i < nv { // voltage unknowns only for damping
				if d > opt.Damping {
					d = opt.Damping
				} else if d < -opt.Damping {
					d = -opt.Damping
				}
			}
			v[i] += d
			if i < nv {
				if a := math.Abs(d); a > maxDelta {
					maxDelta = a
				}
				if a := math.Abs(v[i]); a > maxV {
					maxV = a
				}
			}
		}
		if reused && !(maxDelta <= opt.StallRatio*prevDelta) {
			// The stale-Jacobian update stopped contracting: refactor on
			// the next iteration.
			s.haveLU = false
		}
		prevDelta = maxDelta
		if maxDelta <= opt.AbsTol+opt.RelTol*maxV {
			return nil
		}
	}
	if gminStage {
		return fmt.Errorf("spice: gmin stage did not converge")
	}
	return fmt.Errorf("spice: Newton did not converge at t=%g", ctx.Time)
}

// gminStages is the shrinking-shunt homotopy schedule used when the
// plain operating-point solve fails.
var gminStages = [...]float64{1e-3, 1e-6, 1e-9, 1e-12}

// OperatingPoint computes the DC solution at time t (signals evaluated
// at t, capacitors open) in the solver's reused workspace. The returned
// slice is freshly allocated and owned by the caller; it holds the MNA
// unknowns: node voltages (ground excluded) followed by voltage-source
// branch currents.
func (s *Solver) OperatingPoint(t float64, opt NewtonOptions) ([]float64, error) {
	s.ensure()
	s.haveLU = false // a stale transient Jacobian is useless at DC
	v := make([]float64, s.c.unknowns())
	s.ctx.Time, s.ctx.Dt, s.ctx.Method, s.ctx.DC = t, 0, Trapezoidal, true
	if err := s.newton(v, opt, 0, false); err == nil {
		return v, nil
	}
	// Gmin homotopy: solve with shrinking shunts to ground, carrying the
	// solution from stage to stage, then polish without the shunts.
	for i := range v {
		v[i] = 0
	}
	for _, gmin := range gminStages {
		if err := s.newton(v, opt, gmin, true); err != nil {
			return nil, fmt.Errorf("spice: operating point gmin stage %g failed: %w", gmin, err)
		}
	}
	if err := s.newton(v, opt, 0, false); err != nil {
		return nil, err
	}
	return v, nil
}

// normalizeBreakpoints validates and canonicalizes the breakpoint
// schedule for a transient over (tstart, tstop]: non-finite entries are
// rejected; entries outside the window are dropped (they could only
// force spurious step clamping near the edges); the survivors are
// sorted and deduplicated within the same tolerance the stepper uses to
// detect breakpoint arrival, so one input edge never triggers two
// step-size resets or a wasted backward-Euler restart. tstop itself is
// appended as the final breakpoint.
func normalizeBreakpoints(bps []float64, tstart, tstop float64) ([]float64, error) {
	out := make([]float64, 0, len(bps)+1)
	for _, b := range bps {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("spice: non-finite breakpoint %g", b)
		}
		// The stepper would skip anything this close to (or before) the
		// start, and never reach anything at or past tstop.
		if b <= tstart+1e-24 || b >= tstop {
			continue
		}
		out = append(out, b)
	}
	sort.Float64s(out)
	dst := out[:0]
	for _, b := range out {
		if n := len(dst); n > 0 && b-dst[n-1] <= 1e-24+1e-12*math.Abs(b) {
			continue
		}
		dst = append(dst, b)
	}
	return append(dst, tstop), nil
}

// Transient runs an adaptive-step transient analysis in the solver's
// reused workspace. Results are bit-identical to the package-level
// Transient reference.
func (s *Solver) Transient(opt TransientOptions) (*TransientResult, error) {
	c := s.c
	if opt.TStop <= opt.TStart {
		return nil, fmt.Errorf("spice: invalid transient window [%g, %g]", opt.TStart, opt.TStop)
	}
	s.mode = opt.Solver
	s.sparsePivotRel = opt.SparsePivotRel
	span := opt.TStop - opt.TStart
	if opt.MaxStep <= 0 {
		opt.MaxStep = span / 50
	}
	if opt.MinStep <= 0 {
		opt.MinStep = opt.MaxStep * 1e-9
	}
	if opt.LTETol <= 0 {
		opt.LTETol = 1e-4
	}

	record := opt.Record
	if record == nil {
		for i := 1; i < c.NumNodes(); i++ {
			record = append(record, NodeID(i))
		}
	}
	for _, n := range record {
		// Ground is allowed (recorded as the constant 0 V reference);
		// anything else outside the circuit is a caller bug that used to
		// be recorded silently as zeros (negative IDs) or panic later.
		if int(n) < 0 || int(n) >= c.NumNodes() {
			return nil, fmt.Errorf("spice: transient: cannot record unknown node %d", int(n))
		}
	}

	// Breakpoint schedule.
	bps, err := normalizeBreakpoints(opt.Breakpoints, opt.TStart, opt.TStop)
	if err != nil {
		return nil, err
	}

	// Initial state.
	s.ensure()
	s.haveLU = false
	v := s.v
	if opt.InitialConditions != nil {
		for i := range v {
			v[i] = 0
		}
		//hybrid:nondet-ok each node writes its own v[i]; distinct keys touch distinct indices, so visit order cannot change the result
		for n, val := range opt.InitialConditions {
			if i := nodeVar(n); i >= 0 {
				v[i] = val
			}
		}
		// Nodes held by voltage sources take the source value at TStart.
		for _, vs := range c.vsources {
			val := vs.Signal(opt.TStart)
			ip, im := nodeVar(vs.plus), nodeVar(vs.minus)
			if ip >= 0 && im < 0 {
				v[ip] = val
			} else if im >= 0 && ip < 0 {
				v[im] = -val
			}
		}
	} else {
		op, err := s.OperatingPoint(opt.TStart, opt.Newton)
		if err != nil {
			return nil, fmt.Errorf("spice: operating point failed: %w", err)
		}
		copy(v, op)
	}
	for _, d := range c.devices {
		if st, ok := d.(Stateful); ok {
			st.Init(v)
		}
	}

	// Size the capture buffers for the common case — mostly MaxStep-sized
	// accepted steps plus a short backward-Euler recovery per breakpoint.
	estCap := 2 + int(span/opt.MaxStep) + 16*len(bps)
	if estCap > 1<<20 {
		estCap = 1 << 20
	}
	res := &TransientResult{
		Times: make([]float64, 0, estCap),
		nodes: map[NodeID][]float64{},
		names: map[NodeID]string{},
	}
	// Capture into index-addressed columns — a map assignment per node
	// per accepted step is pure hashing overhead on the hot path; the
	// columns are handed to the result map once, after the loop.
	cols := make([][]float64, len(record))
	recVars := make([]int, len(record))
	for ci, n := range record {
		cols[ci] = make([]float64, 0, estCap)
		recVars[ci] = nodeVar(n)
		res.names[n] = c.NodeName(n)
	}
	capture := func(t float64, sol []float64) {
		res.Times = append(res.Times, t)
		for ci, vi := range recVars {
			val := 0.0
			if vi >= 0 {
				val = sol[vi]
			}
			cols[ci] = append(cols[ci], val)
		}
	}
	capture(opt.TStart, v)

	t := opt.TStart
	h := opt.MaxStep / 16
	vPrev := s.vPrev
	copy(vPrev, v)
	justBroke := true // start conservatively with BE
	nextBp := 0
	ctx := &s.ctx
	ctx.DC = false
	for t < opt.TStop-1e-24 {
		for nextBp < len(bps) && bps[nextBp] <= t+1e-24 {
			nextBp++
		}
		// Clamp the step to the next breakpoint.
		hTry := math.Min(h, opt.MaxStep)
		if nextBp < len(bps) && t+hTry > bps[nextBp] {
			hTry = bps[nextBp] - t
		}
		if hTry < opt.MinStep {
			hTry = opt.MinStep
		}
		method := opt.Method
		if justBroke {
			method = BackwardEuler
		}

		// Solve the step.
		ctx.Time, ctx.Dt, ctx.Method = t+hTry, hTry, method
		copy(v, vPrev)
		err := s.newton(v, opt.Newton, 0, false)
		if err != nil {
			if hTry <= opt.MinStep*1.0001 {
				return nil, fmt.Errorf("spice: step failed at minimum step size t=%g: %w", t, err)
			}
			h = hTry / 4
			s.stats.Rejected++
			continue
		}
		// Simple LTE proxy: largest node-voltage change this step; reject
		// steps that move any node too fast to resolve the waveforms.
		maxDv := 0.0
		for i := 0; i < c.NumNodes()-1; i++ {
			if d := math.Abs(v[i] - vPrev[i]); d > maxDv {
				maxDv = d
			}
		}
		limit := 40 * opt.LTETol
		if maxDv > limit && hTry > opt.MinStep*1.0001 {
			h = hTry / 2
			s.stats.Rejected++
			continue
		}

		// Accept.
		ctx.V = v
		for _, d := range c.devices {
			if st, ok := d.(Stateful); ok {
				st.Commit(ctx)
			}
		}
		t += hTry
		copy(vPrev, v)
		capture(t, v)
		s.stats.Steps++
		justBroke = false
		if nextBp < len(bps) && math.Abs(t-bps[nextBp]) <= 1e-24+1e-12*math.Abs(t) {
			justBroke = true
			h = opt.MaxStep / 64
			continue
		}
		// Grow the step gently when the solution is smooth.
		if maxDv < limit/4 {
			h = hTry * 1.5
		} else {
			h = hTry
		}
	}
	for ci, n := range record {
		res.nodes[n] = cols[ci]
	}
	return res, nil
}
