package spice

import (
	"hybriddelay/internal/la"
	"hybriddelay/internal/waveform"
)

// IntegrationMethod selects the charge integration scheme.
type IntegrationMethod int

const (
	// Trapezoidal is second-order accurate; the default.
	Trapezoidal IntegrationMethod = iota
	// BackwardEuler is first-order, L-stable; used for the first step
	// after a breakpoint to damp trapezoidal ringing.
	BackwardEuler
)

// StampContext carries the state a device needs to stamp itself into the
// MNA system for one Newton iteration.
type StampContext struct {
	G   *la.Matrix // Jacobian / conductance matrix
	RHS []float64  // right-hand side (current) vector
	V   []float64  // current Newton iterate of the unknown vector

	Time   float64           // absolute time of the step being solved
	Dt     float64           // step size (0 during DC analysis)
	Method IntegrationMethod // integration scheme for this step
	DC     bool              // true during operating-point analysis

	circuit *Circuit

	// srcVals, when non-nil, holds every voltage source's signal value at
	// Time, indexed by branch ordinal. The solver fills it once per
	// Newton solve so that source signals (closures with binary searches
	// behind them) are not re-evaluated on every iteration. Signals are
	// pure functions of time, so the hoisted value is identical.
	srcVals []float64

	// capFresh is true on the first Newton iteration of a solve: cap
	// companion models recompute their (Dt, Method, state)-dependent
	// geq/ieq then and replay the cached values on later iterations,
	// which stamp at the same Dt/Method/state by construction.
	capFresh bool
}

// nodeV returns the node voltage in the current iterate (0 for ground).
func (ctx *StampContext) nodeV(n NodeID) float64 {
	i := nodeVar(n)
	if i < 0 {
		return 0
	}
	return ctx.V[i]
}

// addG accumulates a conductance between variables i and j (node indices
// already mapped; negative index = ground, ignored).
func (ctx *StampContext) addG(i, j int, g float64) {
	if i < 0 || j < 0 {
		return
	}
	ctx.G.Add(i, j, g)
}

// addRHS accumulates into the right-hand side.
func (ctx *StampContext) addRHS(i int, v float64) {
	if i < 0 {
		return
	}
	ctx.RHS[i] += v
}

// stampConductance stamps a two-terminal conductance g between nodes a, b.
func (ctx *StampContext) stampConductance(a, b NodeID, g float64) {
	ia, ib := nodeVar(a), nodeVar(b)
	ctx.addG(ia, ia, g)
	ctx.addG(ib, ib, g)
	ctx.addG(ia, ib, -g)
	ctx.addG(ib, ia, -g)
}

// stampCurrent stamps a constant current i flowing from node a to node b
// through the device (i.e. leaving a, entering b).
func (ctx *StampContext) stampCurrent(a, b NodeID, i float64) {
	ctx.addRHS(nodeVar(a), -i)
	ctx.addRHS(nodeVar(b), +i)
}

// Device is an element that can stamp itself into the MNA system.
type Device interface {
	Name() string
	Nodes() []NodeID
	// Stamp adds the device's linearised contribution for the current
	// Newton iterate.
	Stamp(ctx *StampContext)
}

// Stateful devices carry charge state across timesteps.
type Stateful interface {
	Device
	// Init establishes device state from a converged DC solution or
	// user-supplied initial conditions.
	Init(v []float64)
	// Commit updates internal state after a step has been accepted.
	Commit(ctx *StampContext)
}

// ---------------------------------------------------------------------
// Resistor

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	name string
	a, b NodeID
	R    float64
}

// Name returns the device name.
func (r *Resistor) Name() string { return r.name }

// Nodes returns the connected nodes.
func (r *Resistor) Nodes() []NodeID { return []NodeID{r.a, r.b} }

// Stamp implements Device.
func (r *Resistor) Stamp(ctx *StampContext) {
	ctx.stampConductance(r.a, r.b, 1/r.R)
}

// ---------------------------------------------------------------------
// Capacitor

// capState integrates a single capacitance; shared by Capacitor and the
// MOSFET's parasitic capacitances.
type capState struct {
	vPrev float64 // branch voltage at the last accepted step
	iPrev float64 // branch current at the last accepted step

	// Companion-model cache: geq and ieq depend only on (c, Dt, Method)
	// and the committed state, all of which are fixed for the duration
	// of one Newton solve. The solver marks the first iteration of every
	// solve (StampContext.capFresh) and the divisions are done once;
	// later iterations re-accumulate the identical cached values, so the
	// matrix sums are bit-for-bit unchanged.
	geq float64
	ieq float64
}

// stampIdx adds the companion model of a linear capacitance c across
// the node variables (ia, ib) (already mapped; negative = ground); the
// branch current implied by the iterate is geq*v - ieq. It addresses
// the matrix rows directly rather than going through the generic
// addG/stampConductance helpers: cap stamps are the bulk of the Newton
// inner loop's scattered accumulations, and hoisting the row base and
// ground checks is worth ~a third of the stamping time. Per-cell
// accumulation order matches the helper sequence exactly — only writes
// to distinct cells (independent float64 sums) are reordered.
func (s *capState) stampIdx(ctx *StampContext, ia, ib int, c float64) {
	if ctx.DC {
		return // open circuit at DC
	}
	if ctx.capFresh {
		switch ctx.Method {
		case BackwardEuler:
			s.geq = c / ctx.Dt
			s.ieq = s.geq * s.vPrev
		default: // Trapezoidal
			s.geq = 2 * c / ctx.Dt
			s.ieq = s.geq*s.vPrev + s.iPrev
		}
	}
	geq, ieq := s.geq, s.ieq
	data, nc := ctx.G.Data, ctx.G.Cols
	rhs := ctx.RHS
	if ia >= 0 {
		row := data[ia*nc : ia*nc+nc]
		row[ia] += geq
		if ib >= 0 {
			row[ib] -= geq
		}
		rhs[ia] += ieq
	}
	if ib >= 0 {
		row := data[ib*nc : ib*nc+nc]
		row[ib] += geq
		if ia >= 0 {
			row[ia] -= geq
		}
		rhs[ib] -= ieq
	}
}

// commit records the accepted branch voltage/current. A transient
// commit always follows a converged Newton solve at the same (Dt,
// Method, state), so the cached companion values from stampIdx are
// exactly what a recomputation would produce.
func (s *capState) commit(ctx *StampContext, a, b NodeID) {
	v := ctx.nodeV(a) - ctx.nodeV(b)
	if ctx.DC || ctx.Dt == 0 {
		s.vPrev, s.iPrev = v, 0
		return
	}
	s.iPrev = s.geq*v - s.ieq
	s.vPrev = v
}

// init sets the stored voltage and zeroes the current.
func (s *capState) init(v float64) { s.vPrev, s.iPrev = v, 0 }

// Capacitor is a linear two-terminal capacitor.
type Capacitor struct {
	name  string
	a, b  NodeID
	C     float64
	state capState
}

// Name returns the device name.
func (c *Capacitor) Name() string { return c.name }

// Nodes returns the connected nodes.
func (c *Capacitor) Nodes() []NodeID { return []NodeID{c.a, c.b} }

// Stamp implements Device.
func (c *Capacitor) Stamp(ctx *StampContext) {
	c.state.stampIdx(ctx, nodeVar(c.a), nodeVar(c.b), c.C)
}

// Init implements Stateful.
func (c *Capacitor) Init(v []float64) {
	va, vb := 0.0, 0.0
	if i := nodeVar(c.a); i >= 0 {
		va = v[i]
	}
	if i := nodeVar(c.b); i >= 0 {
		vb = v[i]
	}
	c.state.init(va - vb)
}

// Commit implements Stateful.
func (c *Capacitor) Commit(ctx *StampContext) { c.state.commit(ctx, c.a, c.b) }

// ---------------------------------------------------------------------
// Voltage source

// VSource is an ideal voltage source driven by a waveform.Signal. It
// contributes one branch-current unknown to the MNA system.
type VSource struct {
	name        string
	plus, minus NodeID
	Signal      waveform.Signal
	branch      int // ordinal among voltage sources, set by Circuit.Add
}

// Name returns the device name.
func (v *VSource) Name() string { return v.name }

// Nodes returns the connected nodes.
func (v *VSource) Nodes() []NodeID { return []NodeID{v.plus, v.minus} }

// Stamp implements Device.
func (v *VSource) Stamp(ctx *StampContext) {
	ib := ctx.circuit.branchVar(v.branch)
	ip, im := nodeVar(v.plus), nodeVar(v.minus)
	// KCL rows: branch current leaves plus, enters minus.
	ctx.addG(ip, ib, 1)
	ctx.addG(im, ib, -1)
	// Branch row: V(plus) - V(minus) = signal(t).
	ctx.addG(ib, ip, 1)
	ctx.addG(ib, im, -1)
	if ctx.srcVals != nil {
		ctx.addRHS(ib, ctx.srcVals[v.branch])
	} else {
		ctx.addRHS(ib, v.Signal(ctx.Time))
	}
}

// Current returns the branch current of the source in a solution vector.
func (v *VSource) Current(c *Circuit, sol []float64) float64 {
	return sol[c.branchVar(v.branch)]
}

// ---------------------------------------------------------------------
// Current source

// ISource is an ideal constant current source; I flows into the plus
// terminal through the external circuit.
type ISource struct {
	name        string
	plus, minus NodeID
	I           float64
}

// Name returns the device name.
func (s *ISource) Name() string { return s.name }

// Nodes returns the connected nodes.
func (s *ISource) Nodes() []NodeID { return []NodeID{s.plus, s.minus} }

// Stamp implements Device.
func (s *ISource) Stamp(ctx *StampContext) {
	ctx.stampCurrent(s.minus, s.plus, s.I)
}
