package spice

import (
	"math"
	"strings"
	"testing"

	"hybriddelay/internal/waveform"
)

// inverterCircuit builds a CMOS inverter with a raised-cosine input
// edge — a small nonlinear circuit whose transient exercises MOSFET
// stamps, charge state and the adaptive stepper.
func inverterCircuit() (*Circuit, NodeID) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddDCVSource("VDD", vdd, Ground, 0.8)
	c.AddVSource("VIN", in, Ground, waveform.RaisedCosineEdge(2e-9, 1e-9, 0, 0.8))
	pp := pmosParams()
	pp.Cgs, pp.Cgd, pp.Cdb = 0.1e-15, 0.1e-15, 0.2e-15
	np := nmosParams()
	np.Cgs, np.Cgd, np.Cdb = 0.1e-15, 0.1e-15, 0.2e-15
	c.AddMOSFET("MP", out, in, vdd, pp)
	c.AddMOSFET("MN", out, in, Ground, np)
	c.AddCapacitor("CL", out, Ground, 2e-15)
	return c, out
}

func inverterOptions() TransientOptions {
	return TransientOptions{
		TStart: 0, TStop: 6e-9,
		MaxStep:     20e-12,
		Breakpoints: []float64{2e-9, 3e-9},
	}
}

// requireBitIdentical compares two transient results exactly — every
// captured time and every recorded sample must be the same float64.
func requireBitIdentical(t *testing.T, got, want *TransientResult, label string) {
	t.Helper()
	if len(got.Times) != len(want.Times) {
		t.Fatalf("%s: %d captured points, want %d", label, len(got.Times), len(want.Times))
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] {
			t.Fatalf("%s: Times[%d] = %v, want %v", label, i, got.Times[i], want.Times[i])
		}
	}
	if len(got.nodes) != len(want.nodes) {
		t.Fatalf("%s: %d recorded nodes, want %d", label, len(got.nodes), len(want.nodes))
	}
	for n, ws := range want.nodes {
		gs, ok := got.nodes[n]
		if !ok || len(gs) != len(ws) {
			t.Fatalf("%s: node %d: missing or wrong length", label, n)
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("%s: node %d sample %d = %v, want %v", label, n, i, gs[i], ws[i])
			}
		}
	}
}

// TestSolverTransientBitIdentical: the workspace-reusing Solver run
// repeatedly over the same circuit produces results bit-identical to a
// fresh package-level Transient on a fresh circuit — including with a
// gmin-free operating point start and varying step schedules.
func TestSolverTransientBitIdentical(t *testing.T) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	for run, maxStep := range []float64{20e-12, 20e-12, 7e-12} {
		opt := inverterOptions()
		opt.MaxStep = maxStep
		got, err := s.Transient(opt)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		ref, refNode := inverterCircuit()
		want, err := Transient(ref, opt)
		if err != nil {
			t.Fatalf("run %d reference: %v", run, err)
		}
		_ = refNode
		requireBitIdentical(t, got, want, "reused solver")
	}
	st := s.Stats()
	if st.Steps == 0 || st.Iterations == 0 || st.Factorizations == 0 {
		t.Errorf("stats not counting: %+v", st)
	}
	if st.Reused != 0 {
		t.Errorf("default path reused a stale LU %d times; must factor fresh", st.Reused)
	}
}

// TestSolverOperatingPointBitIdentical: repeated operating points in
// the reused workspace match the package-level reference exactly.
func TestSolverOperatingPointBitIdentical(t *testing.T) {
	c, _ := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 1e-9, 4e-9, 1e-9} {
		got, err := s.OperatingPoint(tm, NewtonOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := inverterCircuit()
		want, err := OperatingPoint(ref, tm, NewtonOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("t=%g: %d unknowns, want %d", tm, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("t=%g: unknown %d = %v, want %v", tm, i, got[i], want[i])
			}
		}
	}
}

// TestModifiedNewtonConverges: the opt-in stale-Jacobian iteration
// reuses factorizations and still lands within Newton tolerance of the
// reference transient (it is explicitly NOT bit-identical).
func TestModifiedNewtonConverges(t *testing.T) {
	c, out := inverterCircuit()
	s, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	opt := inverterOptions()
	opt.Newton.ModifiedNewton = true
	got, err := s.Transient(opt)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reused == 0 {
		t.Fatal("modified Newton never reused a factorization")
	}
	if st.Factorizations >= st.Iterations {
		t.Errorf("factorizations (%d) not below iterations (%d)", st.Factorizations, st.Iterations)
	}
	ref, _ := inverterCircuit()
	want, err := Transient(ref, inverterOptions())
	if err != nil {
		t.Fatal(err)
	}
	gw, err := got.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	ww, err := want.Waveform(out)
	if err != nil {
		t.Fatal(err)
	}
	// The stale-Jacobian stepper takes a slightly different step
	// schedule, so compare against the reference at the waveform level
	// within the LTE scale rather than bit-for-bit.
	for _, tm := range []float64{0.5e-9, 2.5e-9, 4e-9, 5.5e-9} {
		if d := math.Abs(gw.At(tm) - ww.At(tm)); d > 1e-4 {
			t.Errorf("V(out, %g) differs from reference by %g", tm, d)
		}
	}
}

func TestNormalizeBreakpoints(t *testing.T) {
	if _, err := normalizeBreakpoints([]float64{1e-9, math.NaN()}, 0, 1e-8); err == nil ||
		!strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN breakpoint: err = %v, want non-finite error", err)
	}
	if _, err := normalizeBreakpoints([]float64{math.Inf(1)}, 0, 1e-8); err == nil {
		t.Error("Inf breakpoint accepted")
	}
	// Out-of-window entries are dropped, duplicates collapse, the
	// survivors come back sorted, and tstop is appended.
	got, err := normalizeBreakpoints([]float64{5e-9, -1e-9, 2e-9, 2e-9, 0, 2e-9 + 1e-24, 1e-8, 7e-9}, 0, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2e-9, 5e-9, 7e-9, 1e-8}
	if len(got) != len(want) {
		t.Fatalf("normalized = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalized = %v, want %v", got, want)
		}
	}
	// Empty schedule still ends at tstop.
	got, err = normalizeBreakpoints(nil, 0, 1e-8)
	if err != nil || len(got) != 1 || got[0] != 1e-8 {
		t.Errorf("empty schedule = %v, %v; want [1e-08]", got, err)
	}
}

// TestTransientRecordValidation: recording ground yields the constant
// 0 V reference; recording a node the circuit does not have is an
// error instead of a silent all-zero waveform.
func TestTransientRecordValidation(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddResistor("R", n, Ground, 1e3)
	c.AddCapacitor("C", n, Ground, 1e-9)
	opt := TransientOptions{
		TStart: 0, TStop: 1e-6, MaxStep: 1e-7,
		InitialConditions: map[NodeID]float64{n: 1},
		Record:            []NodeID{Ground, n},
	}
	res, err := Transient(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(Ground)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 5e-7, 1e-6} {
		if v := w.At(tm); v != 0 {
			t.Errorf("V(ground, %g) = %g, want 0", tm, v)
		}
	}
	for _, bad := range []NodeID{NodeID(99), NodeID(-3)} {
		opt.Record = []NodeID{bad}
		if _, err := Transient(c, opt); err == nil ||
			!strings.Contains(err.Error(), "cannot record unknown node") {
			t.Errorf("Record %d: err = %v, want unknown-node error", bad, err)
		}
	}
	opt.Record = nil
	opt.Breakpoints = []float64{math.NaN()}
	if _, err := Transient(c, opt); err == nil {
		t.Error("non-finite breakpoint accepted by Transient")
	}
}
