package spice

import (
	"fmt"
	"math"
	"testing"
)

// Review scratch: after a sparse->dense pivot fallback, does the solver
// leave dense-LU garbage at positions outside sym.Touched() that a later
// dense fallback (or re-analyzed fill) would consume?
func TestReviewOffTouchedGarbage(t *testing.T) {
	g := make([]float64, 16)
	set := func(vals ...float64) { copy(g, vals) }
	build := func() (*Circuit, []NodeID) {
		c := NewCircuit()
		n := []NodeID{c.Node("n0"), c.Node("n1"), c.Node("n2"), c.Node("n3")}
		for i := 0; i < 4; i++ {
			a, b := n[i], n[(i+1)%4]
			c.Add(&switchDevice{a: a, b: b, gaa: &g[i*4], gab: &g[i*4+1], gba: &g[i*4+2], gbb: &g[i*4+3]})
		}
		for i, nd := range n {
			c.AddResistor(fmt.Sprintf("R%d", i), nd, Ground, 1e3)
			c.AddCapacitor(fmt.Sprintf("C%d", i), nd, Ground, 1e-12)
		}
		c.AddISource("I1", n[0], Ground, 1e-3)
		return c, n
	}
	// Benign values: diagonally dominant, ring coupling.
	set(1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1, 1, 0.1, 0.1, 1)
	c, _ := build()
	sv, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	opt := TransientOptions{TStart: 0, TStop: 2e-9, MaxStep: 0.25e-9, Solver: SparseFast}
	if _, err := sv.Transient(opt); err != nil {
		t.Fatalf("benign: %v", err)
	}
	if sv.Stats().SparseFallbacks != 0 {
		t.Fatalf("benign run fell back: %+v", sv.Stats())
	}
	symBefore := sv.sp.sym
	t.Logf("benign: n=%d nnz=%d fill=%d", symBefore.N(), symBefore.NNZ(), symBefore.Fill())

	// Degenerate values: huge off-diagonals swamp the scheduled pivots.
	set(0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0, 0, 1e9, 1e9, 0)
	if _, err := sv.Transient(opt); err != nil {
		t.Logf("degenerate transient error (itself interesting): %v", err)
	}
	st := sv.Stats()
	t.Logf("stats: %+v", st)
	if st.SparseFallbacks == 0 {
		t.Skip("no fallback triggered; scenario not reached")
	}
	symAfter := sv.sp.sym
	t.Logf("re-analyzed: same sym=%v nnz=%d fill=%d", symAfter == symBefore, symAfter.NNZ(), symAfter.Fill())

	// Did the re-analysis introduce touched positions outside the old
	// touched set (manifestation b)?
	oldTouched := map[int32]bool{}
	for _, off := range symBefore.Touched() {
		oldTouched[off] = true
	}
	newOutside := 0
	for _, off := range symAfter.Touched() {
		if !oldTouched[off] {
			newOutside++
		}
	}
	t.Logf("new-sym touched positions outside old touched set: %d", newOutside)

	// Manifestation a: simulate the restamp that precedes any later dense
	// fallback, then check for garbage outside the current touched set.
	v := make([]float64, len(sv.xNew))
	sv.restampSparse(v, true)
	touched := map[int32]bool{}
	for _, off := range sv.sp.sym.Touched() {
		touched[off] = true
	}
	maxOff := 0.0
	cnt := 0
	for off, val := range sv.ctx.G.Data {
		if !touched[int32(off)] && val != 0 {
			cnt++
			if a := math.Abs(val); a > maxOff {
				maxOff = a
			}
		}
	}
	if cnt > 0 {
		t.Fatalf("CONFIRMED: %d nonzero off-touched entries (max %g) survive restampSparse after a dense fallback; the next dense fallback (and any re-analyzed fill outside the old touched set) solves a corrupted matrix", cnt, maxOff)
	}
	t.Log("no off-touched garbage found")
}
