package spice

import (
	"testing"

	"hybriddelay/internal/la/sparse"
)

// TestSolverSharedSymbolicCache: two solvers over identical circuits
// under the same symbolic scope run one Markowitz pilot between them —
// the second adopts the first's analysis as a hit — while a third
// solver under a different scope (a different operating point) gets
// its own analysis. This is the pooled-bench contract: clones of one
// operating point share a single symbolic factorization per process.
func TestSolverSharedSymbolicCache(t *testing.T) {
	cache := sparse.NewSymbolicCache(0)
	opt := inverterOptions()
	opt.Solver = SparseFast

	run := func(scope string) SolverStats {
		c, _ := inverterCircuit()
		sv, err := NewSolver(c)
		if err != nil {
			t.Fatal(err)
		}
		sv.SetSymbolicCache(cache)
		sv.SetSymbolicScope(scope)
		if _, err := sv.Transient(opt); err != nil {
			t.Fatalf("transient: %v", err)
		}
		return sv.Stats()
	}

	cold := run("op-a")
	if cold.SymbolicMisses != 1 {
		t.Fatalf("cold solver: SymbolicMisses = %d, want 1", cold.SymbolicMisses)
	}

	warm := run("op-a")
	if warm.SymbolicMisses != 0 {
		t.Fatalf("warm solver re-analyzed: SymbolicMisses = %d", warm.SymbolicMisses)
	}
	if warm.SymbolicHits == 0 {
		t.Fatal("warm solver never hit the shared cache")
	}

	other := run("op-b")
	if other.SymbolicMisses != 1 {
		t.Fatalf("different scope shared an analysis: SymbolicMisses = %d", other.SymbolicMisses)
	}

	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("cache ran %d analyses for two distinct scopes", st.Misses)
	}
}

// TestSolverDefaultSymbolicCacheIsShared: a solver with no injected
// cache resolves through the process-wide instance.
func TestSolverDefaultSymbolicCacheIsShared(t *testing.T) {
	c, _ := inverterCircuit()
	sv, err := NewSolver(c)
	if err != nil {
		t.Fatal(err)
	}
	if sv.symbolicCache() != SharedSymbolicCache() {
		t.Fatal("default solver does not use the shared symbolic cache")
	}
	sv.SetSymbolicCache(sparse.NewSymbolicCache(0))
	if sv.symbolicCache() == SharedSymbolicCache() {
		t.Fatal("injected cache ignored")
	}
	sv.SetSymbolicCache(nil)
	if sv.symbolicCache() != SharedSymbolicCache() {
		t.Fatal("nil injection does not restore the shared cache")
	}
}
