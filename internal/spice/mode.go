package spice

import "fmt"

// SolverMode selects the linear-solver strategy used inside the Newton
// loop of a transient analysis.
//
// DenseExact is the reference: every iteration re-stamps the full
// system and runs the fused dense partial-pivot factor+solve. Its
// results are bit-identical across all entry points and form the
// golden contract of this repository.
//
// SparseFast freezes the linear device stamps (resistors, capacitor
// companion models, sources, MOSFET parasitics and leakage) into a
// base matrix once per Newton solve, re-stamps only the nonlinear
// MOSFET channels per iteration, and factors over a precomputed
// structural sparsity pattern with a static pivot order
// (internal/la/sparse). It is numerically equivalent — solutions agree
// to solver tolerance, delays to well under a picosecond — but NOT
// bit-identical, so it is opt-in everywhere. DC operating points and
// gmin homotopy stages always use the dense path (their pattern and
// robustness needs differ); if a statically scheduled pivot degrades,
// an iteration transparently falls back to the dense solve and the
// pattern is re-analyzed.
type SolverMode int

const (
	// DenseExact is the default bit-identical dense path.
	DenseExact SolverMode = iota
	// SparseFast is the opt-in structurally sparse path.
	SparseFast
)

// String returns the canonical flag spelling of the mode.
func (m SolverMode) String() string {
	switch m {
	case DenseExact:
		return "dense-exact"
	case SparseFast:
		return "sparse-fast"
	default:
		return fmt.Sprintf("solver-mode(%d)", int(m))
	}
}

// ParseSolverMode parses a -solver flag value. It accepts the
// canonical spellings and their short forms.
func ParseSolverMode(s string) (SolverMode, error) {
	switch s {
	case "", "dense-exact", "dense":
		return DenseExact, nil
	case "sparse-fast", "sparse":
		return SparseFast, nil
	default:
		return DenseExact, fmt.Errorf("spice: unknown solver mode %q (want dense-exact or sparse-fast)", s)
	}
}
