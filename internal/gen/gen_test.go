package gen

import (
	"math"
	"strings"
	"testing"

	"hybriddelay/internal/waveform"
)

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs, want 4", len(cfgs))
	}
	wantNames := []string{
		"100/50 - LOCAL", "200/100 - LOCAL",
		"2000/1000 - GLOBAL", "5000/5 - GLOBAL",
	}
	for i, c := range cfgs {
		if c.Name() != wantNames[i] {
			t.Errorf("config %d name = %q, want %q", i, c.Name(), wantNames[i])
		}
		if c.Inputs != 2 {
			t.Errorf("config %d inputs = %d", i, c.Inputs)
		}
	}
	if cfgs[3].Transitions != 250 {
		t.Errorf("last config transitions = %d, want 250 (paper)", cfgs[3].Transitions)
	}
	for _, c := range cfgs[:3] {
		if c.Transitions != 500 {
			t.Errorf("config %s transitions = %d, want 500", c.Name(), c.Transitions)
		}
	}
}

func TestTracesDeterministic(t *testing.T) {
	cfg := PaperConfigs()[0]
	a1, err := Traces(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Traces(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i].NumEvents() != a2[i].NumEvents() {
			t.Fatal("generation not deterministic")
		}
		for j := range a1[i].Events {
			if a1[i].Events[j] != a2[i].Events[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	b, err := Traces(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1 {
		if a1[i].NumEvents() != b[i].NumEvents() {
			same = false
			break
		}
	}
	if same && a1[0].NumEvents() > 0 && a1[0].Events[0] == b[0].Events[0] {
		t.Error("different seeds produced identical traces")
	}
}

func TestTracesCountAndValidity(t *testing.T) {
	for _, cfg := range PaperConfigs() {
		trs, err := Traces(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, tr := range trs {
			if err := tr.Validate(); err != nil {
				t.Errorf("%s: invalid trace: %v", cfg.Name(), err)
			}
			if tr.Initial {
				t.Errorf("%s: inputs must start low", cfg.Name())
			}
			total += tr.NumEvents()
		}
		if total != cfg.Transitions {
			t.Errorf("%s: %d transitions generated, want %d", cfg.Name(), total, cfg.Transitions)
		}
	}
}

// TestLocalGapStatistics: LOCAL gaps follow the configured distribution
// (loose bounds; the generator clamps at MinGap).
func TestLocalGapStatistics(t *testing.T) {
	cfg := Config{
		Mu: 100e-12, Sigma: 10e-12, Mode: Local,
		Inputs: 1, Transitions: 4000, Start: 0,
	}
	trs, err := Traces(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := trs[0].Events
	var gaps []float64
	prev := 0.0
	for _, e := range ev {
		gaps = append(gaps, e.Time-prev)
		prev = e.Time
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-100e-12) > 3e-12 {
		t.Errorf("mean gap = %g, want ~100 ps", mean)
	}
	vr := 0.0
	for _, g := range gaps {
		vr += (g - mean) * (g - mean)
	}
	sd := math.Sqrt(vr / float64(len(gaps)))
	if math.Abs(sd-10e-12) > 2e-12 {
		t.Errorf("gap sd = %g, want ~10 ps", sd)
	}
}

// TestGlobalSpreadsAcrossInputs: GLOBAL mode distributes transitions over
// both inputs and keeps per-input traces alternating.
func TestGlobalSpreadsAcrossInputs(t *testing.T) {
	cfg := Config{
		Mu: 100e-12, Sigma: 5e-12, Mode: Global,
		Inputs: 2, Transitions: 400, Start: 0,
	}
	trs, err := Traces(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := trs[0].NumEvents(), trs[1].NumEvents()
	if n0+n1 != 400 {
		t.Fatalf("total events %d", n0+n1)
	}
	if n0 < 120 || n1 < 120 {
		t.Errorf("unbalanced assignment: %d vs %d", n0, n1)
	}
}

// TestGlobalSeparation: in GLOBAL mode, transitions on different inputs
// are separated by at least roughly one gap — close pairs are rare.
func TestGlobalSeparation(t *testing.T) {
	cfg := Config{
		Mu: 2000e-12, Sigma: 1000e-12, Mode: Global,
		Inputs: 2, Transitions: 500, Start: 0,
	}
	trs, err := Traces(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	close := 0
	for _, ea := range trs[0].Events {
		for _, eb := range trs[1].Events {
			if math.Abs(ea.Time-eb.Time) < 100e-12 {
				close++
			}
		}
	}
	if close > 50 {
		t.Errorf("%d close cross-input pairs; GLOBAL should make them unlikely", close)
	}
}

func TestTracesValidation(t *testing.T) {
	if _, err := Traces(Config{Inputs: 0, Transitions: 1, Mu: 1}, 0); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := Traces(Config{Inputs: 1, Transitions: 0, Mu: 1}, 0); err == nil {
		t.Error("zero transitions accepted")
	}
	if _, err := Traces(Config{Inputs: 1, Transitions: 1, Mu: 0}, 0); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := Traces(Config{Inputs: 1, Transitions: 1, Mu: 1, Mode: Mode(99)}, 0); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Mu: 100e-12, Sigma: 50e-12, Mode: Local, Inputs: 2, Transitions: 10, Start: 200e-12}
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string // substring the error must carry; "" = valid
	}{
		{"valid", func(c *Config) {}, ""},
		{"valid zero sigma", func(c *Config) { c.Sigma = 0 }, ""},
		{"valid zero start", func(c *Config) { c.Start = 0 }, ""},
		{"valid explicit min gap", func(c *Config) { c.MinGap = 2e-12 }, ""},
		{"zero inputs", func(c *Config) { c.Inputs = 0 }, "input"},
		{"negative inputs", func(c *Config) { c.Inputs = -3 }, "input"},
		{"zero transitions", func(c *Config) { c.Transitions = 0 }, "transition"},
		{"negative transitions", func(c *Config) { c.Transitions = -1 }, "transition"},
		{"zero mu", func(c *Config) { c.Mu = 0 }, "mu"},
		{"negative mu", func(c *Config) { c.Mu = -100e-12 }, "mu"},
		{"NaN mu", func(c *Config) { c.Mu = nan }, "mu"},
		{"infinite mu", func(c *Config) { c.Mu = inf }, "mu"},
		{"negative sigma", func(c *Config) { c.Sigma = -1e-12 }, "sigma"},
		{"NaN sigma", func(c *Config) { c.Sigma = nan }, "sigma"},
		{"infinite sigma", func(c *Config) { c.Sigma = inf }, "sigma"},
		{"negative start", func(c *Config) { c.Start = -1e-12 }, "start"},
		{"NaN start", func(c *Config) { c.Start = nan }, "start"},
		{"infinite start", func(c *Config) { c.Start = inf }, "start"},
		{"NaN min gap", func(c *Config) { c.MinGap = nan }, "min_gap"},
		{"infinite min gap", func(c *Config) { c.MinGap = inf }, "min_gap"},
		{"unknown mode", func(c *Config) { c.Mode = Mode(7) }, "mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			// Traces must reject exactly what Validate rejects — no
			// silent NaN traces from a bad distribution.
			if _, terr := Traces(cfg, 1); terr == nil {
				t.Errorf("Traces accepted a config Validate rejects")
			}
		})
	}
}

// TestTracesFiniteTimes pins the property the validation exists for:
// every generated transition time is finite and strictly increasing per
// input, for valid configs across both modes.
func TestTracesFiniteTimes(t *testing.T) {
	for _, mode := range []Mode{Local, Global} {
		cfg := Config{Mu: 100e-12, Sigma: 80e-12, Mode: mode, Inputs: 3, Transitions: 60}
		trs, err := Traces(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, tr := range trs {
			last := math.Inf(-1)
			for _, e := range tr.Events {
				if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
					t.Fatalf("%s input %d: non-finite transition time %g", mode, i, e.Time)
				}
				if e.Time <= last {
					t.Fatalf("%s input %d: non-increasing transition time %g after %g", mode, i, e.Time, last)
				}
				last = e.Time
			}
		}
	}
}

func TestHorizon(t *testing.T) {
	cfg := Config{Mu: 100e-12, Sigma: 0, Mode: Local, Inputs: 2, Transitions: 10, Start: 0}
	trs, err := Traces(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := Horizon(trs, 500e-12)
	last := 0.0
	for _, tr := range trs {
		if n := tr.NumEvents(); n > 0 && tr.Events[n-1].Time > last {
			last = tr.Events[n-1].Time
		}
	}
	if math.Abs(h-(last+500e-12)) > 1e-15 {
		t.Errorf("horizon = %g, want %g", h, last+500e-12)
	}
	if got := Horizon(nil, 1e-9); got != 1e-9 {
		t.Errorf("empty horizon = %g", got)
	}
}

func TestModeString(t *testing.T) {
	if Local.String() != "LOCAL" || Global.String() != "GLOBAL" {
		t.Error("mode names wrong")
	}
	_ = waveform.Pico // keep import for the Ps-based name test below
	c := Config{Mu: 100 * waveform.Pico, Sigma: 50 * waveform.Pico, Mode: Local}
	if c.Name() != "100/50 - LOCAL" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestModeTextRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{
		{"LOCAL", Local}, {"local", Local}, {" Local ", Local},
		{"GLOBAL", Global}, {"global", Global},
	} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMode("sideways"); err == nil {
		t.Error("unknown mode name accepted")
	}

	for _, m := range []Mode{Local, Global} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := back.UnmarshalText(b); err != nil || back != m {
			t.Errorf("round trip %v -> %s -> %v (%v)", m, b, back, err)
		}
	}
	if _, err := Mode(9).MarshalText(); err == nil {
		t.Error("invalid mode marshalled")
	}
	var m Mode
	if err := m.UnmarshalText([]byte("nope")); err == nil {
		t.Error("invalid mode text unmarshalled")
	}
}
