// Package gen generates the random input stimuli of the paper's accuracy
// evaluation (§VI): sequences of input transitions whose spacing follows
// a normal distribution, in two flavours:
//
//   - LOCAL:  every input gets its own independent gap sequence
//     (transitions on different inputs frequently fall close together,
//     stressing the MIS regime), and
//   - GLOBAL: a single global gap sequence is generated and each
//     transition is assigned to a random input (concurrent transitions
//     on different inputs become unlikely, stressing the SIS regime).
//
// All generation is deterministic given the seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Mode selects how transition times are distributed over the inputs.
type Mode int

const (
	// Local generates an independent gap sequence per input.
	Local Mode = iota
	// Global generates one gap sequence and assigns transitions to
	// random inputs.
	Global
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Local {
		return "LOCAL"
	}
	return "GLOBAL"
}

// ParseMode resolves a mode name ("local"/"LOCAL", "global"/"GLOBAL").
func ParseMode(s string) (Mode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LOCAL":
		return Local, nil
	case "GLOBAL":
		return Global, nil
	}
	return 0, fmt.Errorf("gen: unknown stimulus mode %q (want LOCAL or GLOBAL)", s)
}

// MarshalText implements encoding.TextMarshaler so sweep-grid JSON files
// can spell modes by name.
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case Local, Global:
		return []byte(m.String()), nil
	}
	return nil, fmt.Errorf("gen: unknown mode %d", int(m))
}

// UnmarshalText implements encoding.TextUnmarshaler (case-insensitive).
func (m *Mode) UnmarshalText(b []byte) error {
	parsed, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Config describes one waveform configuration ("100/50 - LOCAL" etc.).
type Config struct {
	Mu          float64 // mean transition gap [s]
	Sigma       float64 // gap standard deviation [s]
	Mode        Mode
	Inputs      int     // number of inputs (2 for the NOR)
	Transitions int     // total number of transitions to generate
	Start       float64 // time of the first possible transition [s]
	MinGap      float64 // lower clamp for gaps [s]; default 1 ps
}

// Name renders the paper's labels, e.g. "100/50 - LOCAL".
func (c Config) Name() string {
	return fmt.Sprintf("%.0f/%.0f - %s", c.Mu/waveform.Pico, c.Sigma/waveform.Pico, c.Mode)
}

// Validate checks the configuration for use: counts must be positive,
// the gap distribution must be a positive finite mu with a non-negative
// finite sigma, the optional start time and gap clamp must be finite
// and non-negative, and the mode must be known. A config that fails
// validation would otherwise silently generate NaN transition times (a
// non-finite gap poisons every later event) or hang the generator, so
// every entry point validates before generating.
func (c Config) Validate() error {
	if c.Inputs < 1 {
		return fmt.Errorf("gen: need at least one input, have %d", c.Inputs)
	}
	if c.Transitions < 1 {
		return fmt.Errorf("gen: need at least one transition, have %d", c.Transitions)
	}
	if !(c.Mu > 0) || math.IsInf(c.Mu, 0) {
		return fmt.Errorf("gen: mean transition gap must be positive and finite, have mu=%g", c.Mu)
	}
	if c.Sigma < 0 || math.IsNaN(c.Sigma) || math.IsInf(c.Sigma, 0) {
		return fmt.Errorf("gen: gap standard deviation must be non-negative and finite, have sigma=%g", c.Sigma)
	}
	if c.Start < 0 || math.IsNaN(c.Start) || math.IsInf(c.Start, 0) {
		return fmt.Errorf("gen: start time must be non-negative and finite, have start=%g", c.Start)
	}
	if math.IsNaN(c.MinGap) || math.IsInf(c.MinGap, 0) {
		return fmt.Errorf("gen: gap clamp must be finite, have min_gap=%g", c.MinGap)
	}
	if c.Mode != Local && c.Mode != Global {
		return fmt.Errorf("gen: unknown mode %d", int(c.Mode))
	}
	return nil
}

// PaperConfigs returns the four waveform configurations of Fig. 7 for a
// 2-input gate: 100/50 LOCAL, 200/100 LOCAL, 2000/1000 GLOBAL and
// 5000/5 GLOBAL, with 500 transitions each except 250 for the last.
func PaperConfigs() []Config {
	mk := func(mu, sigma float64, mode Mode, n int) Config {
		return Config{
			Mu:          mu * waveform.Pico,
			Sigma:       sigma * waveform.Pico,
			Mode:        mode,
			Inputs:      2,
			Transitions: n,
			Start:       200 * waveform.Pico,
		}
	}
	return []Config{
		mk(100, 50, Local, 500),
		mk(200, 100, Local, 500),
		mk(2000, 1000, Global, 500),
		mk(5000, 5, Global, 250),
	}
}

// Traces generates the per-input digital traces for the configuration.
// All inputs start low.
func Traces(cfg Config, seed int64) ([]trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	minGap := cfg.MinGap
	if minGap <= 0 {
		minGap = waveform.Pico
	}
	rng := rand.New(rand.NewSource(seed))
	gap := func() float64 {
		g := cfg.Mu + cfg.Sigma*rng.NormFloat64()
		if g < minGap {
			g = minGap
		}
		return g
	}
	events := make([][]trace.Event, cfg.Inputs)
	switch cfg.Mode {
	case Local:
		per := cfg.Transitions / cfg.Inputs
		extra := cfg.Transitions % cfg.Inputs
		for i := 0; i < cfg.Inputs; i++ {
			n := per
			if i < extra {
				n++
			}
			t := cfg.Start
			val := false
			for k := 0; k < n; k++ {
				t += gap()
				val = !val
				events[i] = append(events[i], trace.Event{Time: t, Value: val})
			}
		}
	case Global:
		t := cfg.Start
		vals := make([]bool, cfg.Inputs)
		for k := 0; k < cfg.Transitions; k++ {
			t += gap()
			i := rng.Intn(cfg.Inputs)
			vals[i] = !vals[i]
			events[i] = append(events[i], trace.Event{Time: t, Value: vals[i]})
		}
	default:
		return nil, fmt.Errorf("gen: unknown mode %d", int(cfg.Mode))
	}
	out := make([]trace.Trace, cfg.Inputs)
	for i := range events {
		out[i] = trace.New(false, events[i])
	}
	return out, nil
}

// Horizon returns a simulation end time that comfortably covers all
// generated activity plus settling.
func Horizon(traces []trace.Trace, settle float64) float64 {
	end := 0.0
	for _, tr := range traces {
		if n := tr.NumEvents(); n > 0 {
			if t := tr.Events[n-1].Time; t > end {
				end = t
			}
		}
	}
	return end + settle
}
