package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/session"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// LoadOptions configures the load-test harness.
type LoadOptions struct {
	// Clients is the number of concurrent clients, each with its own
	// API key (so the admission gate sees distinct tenants). Default 8.
	Clients int
	// JobsPerClient is how many jobs each client submits sequentially.
	// Default 2.
	JobsPerClient int
	// Specs is the job mix; client c's j-th job uses
	// Specs[(c+j) % len(Specs)]. Empty selects DefaultLoadSpecs().
	Specs []JobSpec
	// Poll is the status poll (and 429 retry) interval. Default 5 ms.
	Poll time.Duration
	// Reference, when non-nil, is a fresh one-shot session the harness
	// replays every distinct spec on, asserting the server's results
	// are byte-identical (canonical JSON, timings and cache counters
	// stripped) to the same jobs run directly — the serving layer must
	// not change a single number.
	Reference *session.Session
}

// LoadReport is the BENCH_serve.json payload.
type LoadReport struct {
	Clients       int     `json:"clients"`
	JobsPerClient int     `json:"jobs_per_client"`
	Jobs          int     `json:"jobs"`        // completed jobs
	Failures      int     `json:"failures"`    // jobs not reaching done
	Retries429    int     `json:"retries_429"` // admission rejections retried
	P50Ms         float64 `json:"p50_ms"`      // submit→done latency percentiles
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	MaxMs         float64 `json:"max_ms"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	WallSeconds   float64 `json:"wall_seconds"`
	Verified      bool    `json:"verified"`       // reference comparison ran
	ByteIdentical bool    `json:"byte_identical"` // and matched exactly
}

// DefaultLoadSpecs is the mixed-tenant job mix: two gate flavours, a
// builtin circuit, and a small sweep grid — the three job kinds a
// multi-tenant characterization server interleaves.
func DefaultLoadSpecs() []JobSpec {
	stim := sweep.Stimulus{Mode: gen.Local, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: 2}
	global := stim
	global.Mode = gen.Global
	return []JobSpec{
		{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{stim}, Seeds: []int64{1, 2}},
		{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{global}, Seeds: []int64{1}},
		{Kind: session.KindCircuit, Circuit: "nor-invchain", Stimuli: []sweep.Stimulus{stim}, Seeds: []int64{1}},
		{Kind: session.KindSweep, Sweep: &sweep.Spec{
			Gates:   []string{"nor2"},
			Stimuli: []sweep.Stimulus{stim, global},
			Seeds:   []int64{1},
		}},
	}
}

// CanonicalResultJSON projects a result onto its deterministic content
// — the accuracy numbers — stripping everything environmental: wall
// times, cache counters, solver traffic. Two evaluations of the same
// job at the same operating point must agree byte for byte under this
// projection, whether they ran through the server or the one-shot CLI.
func CanonicalResultJSON(res *session.Result) ([]byte, error) {
	c := *res
	c.Stats = session.Stats{}
	c.Models = nil // not part of the wire form (interface-typed Gate)
	if c.Sweep != nil {
		rep := *c.Sweep
		rep.Scenarios = append([]sweep.ScenarioResult(nil), rep.Scenarios...)
		rep.ClearTimings()
		rep.Cache = eval.CacheStats{}
		for i := range rep.Scenarios {
			// Per-scenario cache accounting depends on how warm the
			// server already was, not on the job's content.
			rep.Scenarios[i].CacheHits = 0
			rep.Scenarios[i].CacheMisses = 0
			rep.Scenarios[i].HitRate = 0
		}
		c.Sweep = &rep
	}
	if c.Circuit != nil {
		cr := *c.Circuit
		cr.Solver = spice.SolverStats{}
		c.Circuit = &cr
	}
	return json.MarshalIndent(&c, "", "  ")
}

// RunLoad drives the mixed-client load against a running server at
// baseURL and assembles the latency/throughput report. ctx aborts the
// whole run.
func RunLoad(ctx context.Context, baseURL string, opt LoadOptions) (*LoadReport, error) {
	clients := opt.Clients
	if clients <= 0 {
		clients = 8
	}
	perClient := opt.JobsPerClient
	if perClient <= 0 {
		perClient = 2
	}
	specs := opt.Specs
	if len(specs) == 0 {
		specs = DefaultLoadSpecs()
	}
	poll := opt.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}

	type outcome struct {
		latency time.Duration
		retries int
		spec    int
		result  *session.Result
		err     error
	}
	results := make(chan outcome, clients*perClient)
	hc := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			key := fmt.Sprintf("loadgen-%d", c)
			for jn := 0; jn < perClient; jn++ {
				si := (c + jn) % len(specs)
				res, lat, retries, err := runOneJob(ctx, hc, baseURL, key, specs[si], poll)
				results <- outcome{latency: lat, retries: retries, spec: si, result: res, err: err}
			}
		}(c)
	}

	rep := &LoadReport{Clients: clients, JobsPerClient: perClient}
	var (
		lats      []time.Duration
		perSpec   = map[int]*session.Result{}
		totalJobs = clients * perClient
	)
	for i := 0; i < totalJobs; i++ {
		o := <-results
		rep.Retries429 += o.retries
		if o.err != nil {
			rep.Failures++
			continue
		}
		rep.Jobs++
		lats = append(lats, o.latency)
		if perSpec[o.spec] == nil {
			perSpec[o.spec] = o.result
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.JobsPerSec = float64(rep.Jobs) / rep.WallSeconds
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		rep.P50Ms = ms(percentile(lats, 0.50))
		rep.P99Ms = ms(percentile(lats, 0.99))
		rep.MeanMs = ms(sum / time.Duration(len(lats)))
		rep.MaxMs = ms(lats[len(lats)-1])
	}

	if opt.Reference != nil {
		rep.Verified = true
		rep.ByteIdentical = true
		//hybrid:nondet-ok per-spec verification; the verdict is a conjunction over independent comparisons, order cannot change it
		for si, got := range perSpec {
			sjob, err := specs[si].Job()
			if err != nil {
				return nil, fmt.Errorf("loadgen: reference spec %d: %w", si, err)
			}
			want, err := opt.Reference.Evaluate(ctx, sjob)
			if err != nil {
				return nil, fmt.Errorf("loadgen: reference run %d: %w", si, err)
			}
			gotJSON, err := CanonicalResultJSON(got)
			if err != nil {
				return nil, err
			}
			wantJSON, err := CanonicalResultJSON(want)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				rep.ByteIdentical = false
			}
		}
	}
	return rep, nil
}

// percentile reads the p-quantile off a sorted latency slice (nearest
// rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runOneJob submits one spec (retrying 429s), polls to a terminal
// state, and decodes the result. Latency covers submit through
// observed completion.
func runOneJob(ctx context.Context, hc *http.Client, baseURL, key string, spec JobSpec, poll time.Duration) (*session.Result, time.Duration, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, 0, 0, err
	}
	start := time.Now()
	retries := 0
	var id string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, 0, retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", key)
		resp, err := hc.Do(req)
		if err != nil {
			return nil, 0, retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retries++
			select {
			case <-ctx.Done():
				return nil, 0, retries, ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, 0, retries, fmt.Errorf("submit: %s: %s", resp.Status, msg)
		}
		var ack struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil {
			return nil, 0, retries, err
		}
		id = ack.ID
		break
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return nil, 0, retries, err
		}
		req.Header.Set("X-API-Key", key)
		resp, err := hc.Do(req)
		if err != nil {
			return nil, 0, retries, err
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, 0, retries, err
		}
		switch st.State {
		case StateDone:
			return st.Result, time.Since(start), retries, nil
		case StateFailed, StateCancelled:
			return nil, time.Since(start), retries, fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, 0, retries, ctx.Err()
		case <-time.After(poll):
		}
	}
}
