package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hybriddelay/internal/session"
)

// State is a job's lifecycle position in the registry.
type State string

// The job lifecycle. Queued jobs hold an admission backlog slot;
// running jobs hold a concurrency slot; the three terminal states are
// final (a cancelled job stays cancelled even if its last in-flight
// unit completed successfully).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one element of a job's SSE stream: a progress step
// (Kind "progress") or the single terminal marker (Kind "end"). Seq is
// the per-job sequence number, assigned under the registry's
// serialization — because session.Progress delivery is serialized per
// job, Seq increases deterministically with the job's own step order.
type Event struct {
	Seq       int    `json:"seq"`
	Kind      string `json:"kind"` // "progress" or "end"
	Phase     string `json:"phase,omitempty"`
	Scenario  int    `json:"scenario,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Total     int    `json:"total,omitempty"`
	Err       string `json:"err,omitempty"`
	State     State  `json:"state,omitempty"` // terminal events only
}

// Job is one submitted workload tracked by the registry. All mutable
// fields are guarded by mu; events only grows, and waiters are woken
// through the notify channel (closed and replaced on every append).
type Job struct {
	ID     string  `json:"id"`
	Client string  `json:"client"`
	Spec   JobSpec `json:"spec"`

	sjob   session.Job // validated spec conversion, fixed at submit
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	events   []Event
	notify   chan struct{}
	result   *session.Result
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
}

// withProgress returns the job's session.Job with the event publisher
// attached as its Progress callback.
func (j *Job) withProgress() session.Job {
	switch sj := j.sjob.(type) {
	case session.GateJob:
		sj.Progress = j.progress
		return sj
	case session.CircuitJob:
		sj.Progress = j.progress
		return sj
	case session.SweepJob:
		sj.Progress = j.progress
		return sj
	}
	return j.sjob
}

// JobStatus is the wire form of GET /v1/jobs/{id}: the job's identity,
// state, timing, and — once terminal — its result or error.
type JobStatus struct {
	ID        string          `json:"id"`
	Client    string          `json:"client"`
	Kind      session.Kind    `json:"kind"`
	State     State           `json:"state"`
	CreatedAt time.Time       `json:"created_at"`
	StartedAt *time.Time      `json:"started_at,omitempty"`
	EndedAt   *time.Time      `json:"ended_at,omitempty"`
	Events    int             `json:"events"`
	Error     string          `json:"error,omitempty"`
	Result    *session.Result `json:"result,omitempty"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Client: j.Client, Kind: j.Spec.Kind,
		State: j.state, CreatedAt: j.created,
		Events: len(j.events), Error: j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.EndedAt = &t
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal outcome (result or error); ok is false
// while the job is still queued or running.
func (j *Job) Result() (res *session.Result, errMsg string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return nil, "", false
	}
	return j.result, j.errMsg, true
}

// publish appends one event, assigning its sequence number, and wakes
// every waiting subscriber.
func (j *Job) publish(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// EventsSince returns the events with Seq > after, plus a channel that
// is closed when further events arrive. The final event of every job is
// the terminal "end" marker, so a subscriber that has seen it never
// needs to wait again.
func (j *Job) EventsSince(after int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.notify
}

// LogComplete reports whether a subscriber positioned at offset after
// has seen the whole event log and the log is closed (its last event
// is the terminal "end" marker, after which nothing is ever appended).
// Checked under the same lock as publish, so a true result can never
// drop a concurrently published event.
func (j *Job) LogComplete(after int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.events)
	return n > 0 && j.events[n-1].Kind == "end" && after >= n
}

// progress adapts the session's serialized Progress stream onto the
// job's event log.
func (j *Job) progress(p session.Progress) {
	e := Event{
		Kind: "progress", Phase: p.Phase, Scenario: p.Scenario,
		Seed: p.Seed, Completed: p.Completed, Total: p.Total,
	}
	if p.Err != nil {
		e.Err = p.Err.Error()
	}
	j.publish(e)
}

// finish moves the job to its terminal state and publishes the "end"
// marker. The terminal state wins over late transitions: a job
// cancelled while its result was being assembled reports cancelled.
func (j *Job) finish(state State, res *session.Result, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.publish(Event{Kind: "end", State: state, Err: j.errMsg})
}

// Terminal-job retention defaults: a finished job stays queryable for
// DefaultTerminalTTL, and at most DefaultMaxTerminal terminal jobs are
// retained (oldest-finished evicted first). Queued and running jobs
// are never evicted.
const (
	DefaultTerminalTTL = 15 * time.Minute
	DefaultMaxTerminal = 4096
)

// termRec remembers when a job reached its terminal state, in finish
// order, so eviction can trim an expired/over-cap prefix without
// touching job locks.
type termRec struct {
	id string
	at time.Time
}

// Registry is the server's in-memory job table — the /metrics job
// inventory and the status endpoint's source of truth. Queued and
// running jobs live until they finish; terminal jobs are retained for
// a bounded time and count (see SetRetention) and then evicted lazily
// on the next registry access. Eviction only unlinks the job from the
// table: subscribers already holding the *Job keep streaming its
// buffered events (every terminal job's log ends with the "end"
// marker), while new lookups of the evicted id answer not-found.
type Registry struct {
	mu          sync.Mutex
	nextID      int
	jobs        map[string]*Job
	counts      map[State]int
	terminal    []termRec // terminal jobs in finish order
	ttl         time.Duration
	maxTerminal int
	evictions   int64
	now         func() time.Time // injectable clock (tests)
}

// NewRegistry returns an empty job table with default retention.
func NewRegistry() *Registry {
	return &Registry{
		jobs:        map[string]*Job{},
		counts:      map[State]int{},
		ttl:         DefaultTerminalTTL,
		maxTerminal: DefaultMaxTerminal,
		now:         time.Now,
	}
}

// SetRetention configures terminal-job retention. Non-positive values
// select the defaults.
func (r *Registry) SetRetention(ttl time.Duration, maxTerminal int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ttl <= 0 {
		ttl = DefaultTerminalTTL
	}
	if maxTerminal <= 0 {
		maxTerminal = DefaultMaxTerminal
	}
	r.ttl, r.maxTerminal = ttl, maxTerminal
}

// Evictions reports how many terminal jobs retention has dropped.
func (r *Registry) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// evictLocked trims the terminal prefix that is over the count cap or
// past its TTL. Finish times are nondecreasing in r.terminal, so the
// expired set is always a prefix.
func (r *Registry) evictLocked() {
	now := r.now()
	i := 0
	for i < len(r.terminal) && (len(r.terminal)-i > r.maxTerminal || now.Sub(r.terminal[i].at) >= r.ttl) {
		rec := r.terminal[i]
		if j, ok := r.jobs[rec.id]; ok {
			delete(r.jobs, rec.id)
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			r.counts[st]--
			r.evictions++
		}
		i++
	}
	if i > 0 {
		r.terminal = r.terminal[:copy(r.terminal, r.terminal[i:])]
	}
}

// Add registers a new queued job and assigns its id.
func (r *Registry) Add(spec JobSpec, client string, sjob session.Job, ctx context.Context, cancel context.CancelFunc) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", r.nextID),
		Client:  client,
		Spec:    spec,
		sjob:    sjob,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		notify:  make(chan struct{}),
		created: time.Now(),
	}
	r.jobs[j.ID] = j
	r.counts[StateQueued]++
	return j
}

// Remove drops a job that never entered the system (an admission
// rejection after registration). Only queued jobs can be removed.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		delete(r.jobs, id)
		r.counts[StateQueued]--
	}
}

// Get looks a job up by id. Expired terminal jobs are evicted first,
// so an id past its retention window answers not-found.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked()
	j, ok := r.jobs[id]
	return j, ok
}

// transition moves a job between states, keeping the per-state counts.
func (r *Registry) transition(j *Job, apply func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.mu.Lock()
	before := j.state
	j.mu.Unlock()
	apply()
	j.mu.Lock()
	after := j.state
	j.mu.Unlock()
	if before != after {
		r.counts[before]--
		r.counts[after]++
		if after.terminal() {
			r.terminal = append(r.terminal, termRec{id: j.ID, at: r.now()})
			r.evictLocked()
		}
	}
}

// Start marks a queued job running.
func (r *Registry) Start(j *Job) {
	r.transition(j, func() {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateRunning
			j.started = time.Now()
		}
		j.mu.Unlock()
	})
}

// Finish moves a job to a terminal state (see Job.finish).
func (r *Registry) Finish(j *Job, state State, res *session.Result, err error) {
	r.transition(j, func() { j.finish(state, res, err) })
}

// Counts snapshots the per-state job counts (after retention).
func (r *Registry) Counts() map[State]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked()
	out := make(map[State]int, len(r.counts))
	//hybrid:nondet-ok map-to-map copy with distinct keys; the /metrics JSON encoder sorts map keys on output
	for s, n := range r.counts {
		if n != 0 {
			out[s] = n
		}
	}
	return out
}
