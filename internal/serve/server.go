package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"hybriddelay/internal/session"
	"hybriddelay/internal/store"
)

// Options configures a Server.
type Options struct {
	// Session is the evaluation engine every job runs on. Required.
	Session *session.Session

	// Store, when non-nil, is the session's mounted persistent store;
	// the server adds its counters to /metrics. Ownership stays with
	// the caller (Shutdown flushes it through Session.Close but does
	// not close it).
	Store *store.Store

	// MaxActive caps concurrently running jobs; PerClient caps running
	// jobs per client identity; Backlog bounds the admission queue.
	// Non-positive values select the defaults (see NewAdmission).
	MaxActive, PerClient, Backlog int

	// TerminalTTL bounds how long a finished job stays queryable and
	// MaxTerminal caps how many terminal jobs the registry retains
	// (oldest-finished evicted first). Non-positive values select the
	// defaults (see DefaultTerminalTTL, DefaultMaxTerminal). Subscribers
	// already streaming an evicted job's events are unaffected.
	TerminalTTL time.Duration
	MaxTerminal int
}

// Server exposes one session.Session as a multi-tenant HTTP service:
//
//	POST   /v1/jobs             submit a JobSpec, returns {"id": ...}
//	GET    /v1/jobs/{id}        job status; result once done
//	GET    /v1/jobs/{id}/events SSE progress stream (?after=N resumes)
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /metrics             cache/solver/store/admission counters
//
// Clients are identified by the X-API-Key header when present, else by
// the remote address's host part. The admission gate grants each
// client a bounded number of concurrently running jobs over a bounded
// global cap, with a bounded FIFO backlog; overflow is answered 429.
type Server struct {
	sess  *session.Session
	st    *store.Store
	reg   *Registry
	adm   *Admission
	mux   *http.ServeMux
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex // serializes submission vs shutdown
	closed bool
	wg     sync.WaitGroup // in-flight job goroutines
}

// NewServer builds the service around an existing session.
func NewServer(opt Options) (*Server, error) {
	if opt.Session == nil {
		return nil, fmt.Errorf("serve: Options.Session is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	reg.SetRetention(opt.TerminalTTL, opt.MaxTerminal)
	s := &Server{
		sess:       opt.Session,
		st:         opt.Store,
		reg:        reg,
		adm:        NewAdmission(opt.MaxActive, opt.PerClient, opt.Backlog),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the job table (tests and embedding callers).
func (s *Server) Registry() *Registry { return s.reg }

// clientID resolves the submitting client's identity for admission
// accounting: the API key when the request carries one, else the
// remote host.
func clientID(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// jsonError answers a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON answers a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleSubmit validates the spec, registers the job and offers it to
// the admission gate.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	sjob, err := spec.Job()
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	client := clientID(r)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jsonError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := s.reg.Add(spec, client, sjob, ctx, cancel)
	admitted, queued := s.adm.Submit(client, func() { s.startJob(j) })
	s.mu.Unlock()

	if !admitted && !queued {
		s.reg.Remove(j.ID)
		cancel()
		jsonError(w, http.StatusTooManyRequests, "admission backlog full; retry later")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"id": j.ID, "queued": queued})
}

// startJob moves an admitted job onto its own goroutine. Called with
// s.mu held (synchronous admission) or from a finishing job's slot
// release; the wg.Add happens before the releasing job's wg.Done, so
// Shutdown's Wait cannot miss a backlog dispatch.
func (s *Server) startJob(j *Job) {
	s.reg.Start(j)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.adm.Release(j.Client)
		res, err := s.sess.Evaluate(j.ctx, j.withProgress())
		switch {
		case err == nil:
			// The wire form drops the prepared model set: its Gate field
			// is an interface (not JSON round-trippable), and clients
			// consume accuracy rows, not fitted model objects.
			wire := *res
			wire.Models = nil
			s.reg.Finish(j, StateDone, &wire, nil)
		case j.ctx.Err() != nil:
			s.reg.Finish(j, StateCancelled, nil, err)
		default:
			s.reg.Finish(j, StateFailed, nil, err)
		}
	}()
}

// handleStatus answers the job's current status (result once done).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.Status())
}

// handleCancel cancels a queued or running job. Cancelling a queued
// job is immediate; a running job stops claiming units and reaches the
// cancelled state at its next stage boundary. Terminal jobs answer
// 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.State() {
	case StateQueued:
		j.cancel()
		s.reg.Finish(j, StateCancelled, nil, context.Canceled)
	case StateRunning:
		j.cancel()
	default:
		jsonError(w, http.StatusConflict, "job already %s", j.State())
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.Status())
}

// handleEvents streams the job's event log over SSE: buffered events
// replay first (resumable via ?after=<seq>), live events follow, and
// the stream ends after the terminal "end" event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &after); err != nil || after < 0 {
			jsonError(w, http.StatusBadRequest, "invalid after=%q", v)
			return
		}
	}
	sse, ok := newSSEWriter(w)
	if !ok {
		jsonError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	for {
		evs, more := j.EventsSince(after)
		for _, e := range evs {
			if err := sse.Send(e); err != nil {
				return // client went away
			}
			after = e.Seq
			if e.Kind == "end" {
				return
			}
		}
		// If the log is closed and the "end" event is already behind
		// the requested offset, nothing more will ever arrive — close
		// instead of blocking on a dead notify channel. An "end"
		// published between EventsSince and this check flips the held
		// notify channel, so the select below wakes immediately.
		if j.LogComplete(after) {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// Metrics is the GET /metrics payload: the session's cache and solver
// counters, the persistent store's counters when one is mounted, the
// job table and the admission gate.
type Metrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Session       session.Snapshot `json:"session"`
	Store         *store.Stats     `json:"store,omitempty"`
	Jobs          map[State]int    `json:"jobs"`
	JobEvictions  int64            `json:"job_evictions"`
	Admission     AdmissionStats   `json:"admission"`
}

// MetricsSnapshot assembles the /metrics payload (also used by tests
// and the loadgen without going through HTTP).
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Session:       s.sess.Snapshot(),
		Jobs:          s.reg.Counts(),
		JobEvictions:  s.reg.Evictions(),
		Admission:     s.adm.Stats(),
	}
	if s.st != nil {
		st := s.st.Stats()
		m.Store = &st
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.MetricsSnapshot())
}

// Shutdown drains the server: new submissions are refused (503),
// in-flight and backlogged jobs run to completion — unless ctx expires
// first, which aborts them through their job contexts — and the
// session's durable state is flushed (Session.Close), so no queued
// write-behind golden store write is dropped. The HTTP listener is the
// caller's to close (http.Server.Shutdown composes around this).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // abort in-flight jobs at their next stage boundary
		<-done
	}
	s.baseCancel()
	return s.sess.Close()
}
