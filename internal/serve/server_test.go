package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/session"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// fastParams returns coarse-step bench parameters for quick analog
// test runs (the repository-wide test operating point).
func fastParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// newTestServer starts an httptest server around a fast-params session
// and returns both plus a cleanup-registered shutdown.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Session == nil {
		p := fastParams()
		opt.Session = session.New(session.Options{BaseParams: &p})
	}
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := ctxTimeout(t, 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, hs
}

func testStimulus(transitions int) sweep.Stimulus {
	return sweep.Stimulus{Mode: gen.Local, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: transitions}
}

// submit posts a spec and returns the job id (fails the test on any
// non-202 answer).
func submit(t *testing.T, base string, spec JobSpec, key string) string {
	t.Helper()
	id, status, body := trySubmit(t, base, spec, key)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	return id
}

// trySubmit posts a spec and reports whatever came back.
func trySubmit(t *testing.T, base string, spec JobSpec, key string) (id string, status int, body string) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var ack struct {
		ID string `json:"id"`
	}
	json.Unmarshal(buf.Bytes(), &ack)
	return ack.ID, resp.StatusCode, buf.String()
}

// getStatus fetches GET /v1/jobs/{id}.
func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metrics scrapes GET /metrics.
func metrics(t *testing.T, base string) Metrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return m
}

// TestServeGateJobWarmRepeat pins the acceptance criterion: a warm
// server answers a repeated gate job without a single new transient
// solve — the golden cache serves the traces, the parametrization
// cache serves the operating point, and the /metrics solver counters
// stand still.
func TestServeGateJobWarmRepeat(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	_, hs := newTestServer(t, Options{})
	spec := JobSpec{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{testStimulus(2)}, Seeds: []int64{1, 2}}

	id1 := submit(t, hs.URL, spec, "")
	st1 := waitTerminal(t, hs.URL, id1, 120*time.Second)
	if st1.State != StateDone {
		t.Fatalf("cold job ended %s: %s", st1.State, st1.Error)
	}
	cold := metrics(t, hs.URL)
	if cold.Session.Solver.Steps == 0 {
		t.Fatalf("cold run reports no solver steps: %+v", cold.Session.Solver)
	}

	id2 := submit(t, hs.URL, spec, "")
	st2 := waitTerminal(t, hs.URL, id2, 120*time.Second)
	if st2.State != StateDone {
		t.Fatalf("warm job ended %s: %s", st2.State, st2.Error)
	}
	warm := metrics(t, hs.URL)
	if warm.Session.Solver != cold.Session.Solver {
		t.Errorf("warm repeat ran new transient solves:\ncold %+v\nwarm %+v", cold.Session.Solver, warm.Session.Solver)
	}
	if warm.Session.Golden.Hits <= cold.Session.Golden.Hits {
		t.Errorf("warm repeat did not hit the golden cache: cold hits %d, warm hits %d",
			cold.Session.Golden.Hits, warm.Session.Golden.Hits)
	}

	// The two runs' payloads are byte-identical under the canonical
	// projection.
	j1, err := CanonicalResultJSON(st1.Result)
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	j2, err := CanonicalResultJSON(st2.Result)
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("warm repeat changed the result payload")
	}
}

// TestServeSpecValidation exercises the 400 surface.
func TestServeSpecValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("httptest server spins a session in -short mode")
	}
	_, hs := newTestServer(t, Options{})
	cases := []JobSpec{
		{},                                  // no kind
		{Kind: "unknown"},                   // bad kind
		{Kind: session.KindGate},            // no stimuli
		{Kind: session.KindGate, Gate: "x"}, // unknown gate
		{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{{Mode: gen.Local, Mu: -1}}},
		{Kind: session.KindCircuit, Stimuli: []sweep.Stimulus{testStimulus(1)}},                   // no circuit
		{Kind: session.KindCircuit, Circuit: "bogus", Stimuli: []sweep.Stimulus{testStimulus(1)}}, // unknown builtin
		{Kind: session.KindSweep}, // no spec
		{Kind: session.KindSweep, Gate: "nor2", Sweep: &sweep.Spec{Stimuli: []sweep.Stimulus{testStimulus(1)}}}, // stray field
	}
	for i, spec := range cases {
		if _, status, body := trySubmit(t, hs.URL, spec, ""); status != http.StatusBadRequest {
			t.Errorf("case %d: status %d (want 400): %s", i, status, body)
		}
	}
	// Unknown job id surfaces 404 on every per-job endpoint.
	for _, ep := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(hs.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d (want 404)", ep, resp.StatusCode)
		}
	}
}

// TestServeSSEStream verifies the event stream: replayed and live
// events arrive with strictly increasing sequence numbers, progress
// events report monotonically increasing per-phase completion, and the
// stream terminates with the "end" marker.
func TestServeSSEStream(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	_, hs := newTestServer(t, Options{})
	spec := JobSpec{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{testStimulus(2), func() sweep.Stimulus {
		s := testStimulus(2)
		s.Mode = gen.Global
		return s
	}()}, Seeds: []int64{1, 2}}
	id := submit(t, hs.URL, spec, "")

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var (
		events    []Event
		lastByPh  = map[string]int{}
		sawEnd    bool
		lastSeq   int
		decodeErr error
	)
	for line := range sseDataLines(t, resp) {
		var e Event
		if decodeErr = json.Unmarshal([]byte(line), &e); decodeErr != nil {
			t.Fatalf("bad event %q: %v", line, decodeErr)
		}
		events = append(events, e)
		if e.Seq != lastSeq+1 {
			t.Fatalf("sequence jumped from %d to %d", lastSeq, e.Seq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case "progress":
			if e.Completed != lastByPh[e.Phase]+1 {
				t.Errorf("phase %s: completed jumped from %d to %d", e.Phase, lastByPh[e.Phase], e.Completed)
			}
			lastByPh[e.Phase] = e.Completed
		case "end":
			sawEnd = true
			if e.State != StateDone {
				t.Errorf("end state %s", e.State)
			}
		}
	}
	if !sawEnd {
		t.Fatalf("stream ended without terminal event (%d events)", len(events))
	}
	if lastByPh[session.PhaseEval] != 4 {
		t.Errorf("eval units reported %d, want 4", lastByPh[session.PhaseEval])
	}

	// Resumption: ?after=<seq of all but last two> replays only the tail.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", hs.URL, id, lastSeq-2))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer resp2.Body.Close()
	var tail []Event
	for line := range sseDataLines(t, resp2) {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad resumed event: %v", err)
		}
		tail = append(tail, e)
	}
	if len(tail) != 2 || tail[0].Seq != lastSeq-1 || tail[1].Kind != "end" {
		t.Errorf("resume replayed %d events (want the 2-event tail): %+v", len(tail), tail)
	}
}

// sseDataLines yields the data payload of each SSE frame until the
// stream closes.
func sseDataLines(t *testing.T, resp *http.Response) func(func(string) bool) {
	t.Helper()
	return func(yield func(string) bool) {
		buf := make([]byte, 0, 4096)
		chunk := make([]byte, 1024)
		for {
			n, err := resp.Body.Read(chunk)
			buf = append(buf, chunk[:n]...)
			for {
				idx := bytes.Index(buf, []byte("\n\n"))
				if idx < 0 {
					break
				}
				frame := string(buf[:idx])
				buf = buf[idx+2:]
				for _, l := range strings.Split(frame, "\n") {
					if data, ok := strings.CutPrefix(l, "data: "); ok {
						if !yield(data) {
							return
						}
					}
				}
			}
			if err != nil {
				return
			}
		}
	}
}

// TestServeAdmissionQueue drives more long jobs than the gate admits
// at once: the second submission backlogs, the third bounces with 429,
// everything admitted still completes (backlog dispatch), and the
// accounting shows up in /metrics.
func TestServeAdmissionQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	// Serial session + a 64-unit sweep make each job long enough that
	// the whole submission sequence lands while the first is running.
	p := fastParams()
	sess := session.New(session.Options{BaseParams: &p, Workers: 1})
	_, hs := newTestServer(t, Options{Session: sess, MaxActive: 1, PerClient: 1, Backlog: 1})
	stims := make([]sweep.Stimulus, 0, 4)
	for _, tr := range []int{6, 7, 8, 9} {
		stims = append(stims, testStimulus(tr))
	}
	spec := JobSpec{Kind: session.KindSweep, Sweep: &sweep.Spec{
		Gates:     []string{"nor2"},
		Stimuli:   stims,
		SeedCount: 16,
	}}

	idA, statusA, bodyA := trySubmit(t, hs.URL, spec, "tenant-a")
	if statusA != http.StatusAccepted || strings.Contains(bodyA, `"queued":true`) {
		t.Fatalf("first submit: status %d body %s", statusA, bodyA)
	}
	idB, statusB, bodyB := trySubmit(t, hs.URL, spec, "tenant-b")
	if statusB != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", statusB, bodyB)
	}
	if !strings.Contains(bodyB, `"queued":true`) {
		t.Errorf("second submit was not backlogged under MaxActive=1: %s", bodyB)
	}
	if _, statusC, bodyC := trySubmit(t, hs.URL, spec, "tenant-c"); statusC != http.StatusTooManyRequests {
		t.Errorf("third submit: status %d (want 429): %s", statusC, bodyC)
	}

	for _, id := range []string{idA, idB} {
		if st := waitTerminal(t, hs.URL, id, 300*time.Second); st.State != StateDone {
			t.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	m := metrics(t, hs.URL)
	if m.Admission.Admitted != 2 {
		t.Errorf("admitted %d, want 2", m.Admission.Admitted)
	}
	if m.Admission.Rejected == 0 {
		t.Errorf("no rejection recorded: %+v", m.Admission)
	}
	if m.Jobs[StateDone] != 2 {
		t.Errorf("job table: %v, want 2 done", m.Jobs)
	}
}

// TestServeShutdownRefusesAndFlushes verifies the drain path: after
// Shutdown the server answers 503 and the write-behind store has
// landed every golden trace (Session.Close flushed it).
func TestServeShutdownRefusesAndFlushes(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	st := openTestStore(t)
	p := fastParams()
	sess := session.New(session.Options{BaseParams: &p, Store: st})
	srv, err := NewServer(Options{Session: sess, Store: st})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	spec := JobSpec{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{testStimulus(2)}, Seeds: []int64{1}}
	id := submit(t, hs.URL, spec, "")
	if st2 := waitTerminal(t, hs.URL, id, 120*time.Second); st2.State != StateDone {
		t.Fatalf("job ended %s: %s", st2.State, st2.Error)
	}

	ctx, cancel := ctxTimeout(t, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := st.Stats().Writes; w == 0 {
		t.Errorf("no store writes landed after Shutdown; stats %+v", st.Stats())
	}
	if _, status, _ := trySubmit(t, hs.URL, spec, ""); status != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: status %d, want 503", status)
	}
}
