// Package serve turns a session.Session into a long-lived multi-tenant
// HTTP+JSON service: the shape the paper's characterization flow takes
// inside an Involution-Tool-style pipeline, where one golden engine
// serves many model-evaluation clients. One process owns one Session
// (worker budget, golden-trace cache, parametrization cache, optional
// persistent store); clients submit Gate/Circuit/Sweep jobs, stream
// progress over SSE, cancel mid-flight, and scrape cache/solver
// counters — all through the endpoints documented on Server.
package serve

import (
	"fmt"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/session"
	"hybriddelay/internal/sweep"
	"hybriddelay/internal/waveform"
)

// JobSpec is the wire form of one submitted job — the POST /v1/jobs
// request body. Kind selects the flavour; the other fields follow the
// repository's existing JSON conventions (sweep.Stimulus for waveform
// configurations, netlist.Netlist for circuits, sweep.Spec for grids;
// all times in seconds). Bench parameters are deliberately not part of
// the wire format: every job runs at the server's operating point
// (solver mode included), which is what lets the shared caches serve
// all tenants.
type JobSpec struct {
	// Kind is "gate", "circuit" or "sweep".
	Kind session.Kind `json:"kind"`

	// Gate is the registry name for gate jobs ("nor2", "nand2",
	// "nor3"); empty selects the default gate.
	Gate string `json:"gate,omitempty"`

	// Stimuli lists the waveform configurations. Gate jobs evaluate
	// every stimulus as one result row; circuit jobs take exactly one.
	// The input count is derived from the gate's arity (or the
	// netlist's primary inputs), as in the sweep grid.
	Stimuli []sweep.Stimulus `json:"stimuli,omitempty"`

	// Circuit names a builtin netlist (netlist.BuiltinNames) for
	// circuit jobs; Netlist supplies one inline instead. Exactly one of
	// the two.
	Circuit string           `json:"circuit,omitempty"`
	Netlist *netlist.Netlist `json:"netlist,omitempty"`

	// Sweep is the scenario grid for sweep jobs (the `hybridlab sweep
	// -grid` file format).
	Sweep *sweep.Spec `json:"sweep,omitempty"`

	// Seeds lists explicit repetition seeds for gate and circuit jobs;
	// when empty, SeedCount consecutive seeds from BaseSeed are used
	// (defaults: 1 seed from base 1), matching the sweep semantics.
	Seeds     []int64 `json:"seeds,omitempty"`
	SeedCount int     `json:"seed_count,omitempty"`
	BaseSeed  int64   `json:"base_seed,omitempty"`

	// ExpDMin overrides the exp channel's empirical pure delay [s];
	// 0 selects the paper default (20 ps).
	ExpDMin float64 `json:"exp_dmin,omitempty"`
}

// seedList resolves the explicit or generated seed list.
func (js *JobSpec) seedList() []int64 {
	if len(js.Seeds) > 0 {
		return append([]int64(nil), js.Seeds...)
	}
	n := js.SeedCount
	if n <= 0 {
		n = 1
	}
	base := js.BaseSeed
	if base == 0 {
		base = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// configs derives one generator configuration per stimulus for the
// given input count, applying the same defaults as the sweep grid.
func (js *JobSpec) configs(inputs int) ([]gen.Config, error) {
	if len(js.Stimuli) == 0 {
		return nil, fmt.Errorf("serve: %s job needs at least one stimulus", js.Kind)
	}
	out := make([]gen.Config, 0, len(js.Stimuli))
	for i, st := range js.Stimuli {
		if st.Mu <= 0 || st.Sigma < 0 {
			return nil, fmt.Errorf("serve: stimulus %d: invalid gap distribution mu=%g sigma=%g", i, st.Mu, st.Sigma)
		}
		if st.Transitions < 1 {
			return nil, fmt.Errorf("serve: stimulus %d: need at least one transition", i)
		}
		if st.Mode != gen.Local && st.Mode != gen.Global {
			return nil, fmt.Errorf("serve: stimulus %d: unknown mode %d", i, int(st.Mode))
		}
		if st.Start <= 0 {
			st.Start = 200 * waveform.Pico
		}
		out = append(out, gen.Config{
			Mu:          st.Mu,
			Sigma:       st.Sigma,
			Mode:        st.Mode,
			Inputs:      inputs,
			Transitions: st.Transitions,
			Start:       st.Start,
			MinGap:      st.MinGap,
		})
	}
	return out, nil
}

// Job validates the spec and converts it into the session.Job the
// server submits. The returned job carries no Progress callback; the
// server attaches its own event publisher.
func (js *JobSpec) Job() (session.Job, error) {
	switch js.Kind {
	case session.KindGate:
		if js.Circuit != "" || js.Netlist != nil || js.Sweep != nil {
			return nil, fmt.Errorf("serve: gate job carries non-gate fields")
		}
		g, err := gate.Find(js.Gate)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		cfgs, err := js.configs(g.Arity())
		if err != nil {
			return nil, err
		}
		return session.GateJob{
			Gate:    g.Name(),
			Configs: cfgs,
			Seeds:   js.seedList(),
			ExpDMin: js.ExpDMin,
		}, nil
	case session.KindCircuit:
		if js.Gate != "" || js.Sweep != nil {
			return nil, fmt.Errorf("serve: circuit job carries non-circuit fields")
		}
		var nl *netlist.Netlist
		switch {
		case js.Netlist != nil && js.Circuit != "":
			return nil, fmt.Errorf("serve: circuit job sets both circuit and netlist")
		case js.Netlist != nil:
			nl = js.Netlist
		case js.Circuit != "":
			var err error
			if nl, err = netlist.Builtin(js.Circuit); err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
		default:
			return nil, fmt.Errorf("serve: circuit job needs a circuit name or an inline netlist")
		}
		if err := nl.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if len(js.Stimuli) != 1 {
			return nil, fmt.Errorf("serve: circuit job takes exactly one stimulus, got %d", len(js.Stimuli))
		}
		cfgs, err := js.configs(len(nl.Inputs))
		if err != nil {
			return nil, err
		}
		return session.CircuitJob{
			Netlist: nl,
			Config:  cfgs[0],
			Seeds:   js.seedList(),
			ExpDMin: js.ExpDMin,
		}, nil
	case session.KindSweep:
		if js.Gate != "" || js.Circuit != "" || js.Netlist != nil || len(js.Stimuli) != 0 {
			return nil, fmt.Errorf("serve: sweep job carries non-sweep fields")
		}
		if js.Sweep == nil {
			return nil, fmt.Errorf("serve: sweep job needs a sweep spec")
		}
		if _, err := sweep.Expand(*js.Sweep); err != nil {
			return nil, err
		}
		return session.SweepJob{Spec: *js.Sweep}, nil
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q (want gate, circuit or sweep)", js.Kind)
	}
}
