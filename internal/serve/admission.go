package serve

import "sync"

// Admission is the server's two-level concurrency gate: a global cap
// on concurrently running jobs, a per-client running budget (tenant
// fairness — one greedy client cannot monopolize the session's worker
// pool), and a bounded FIFO backlog for jobs that cannot start yet.
// A submission that fits neither a slot nor the backlog is rejected
// (the server turns that into HTTP 429).
type Admission struct {
	mu        sync.Mutex
	maxActive int // global running cap
	perClient int // per-client running cap
	backlogN  int // backlog capacity

	running  int
	byClient map[string]int
	backlog  []*pending

	admitted int64 // jobs ever granted a running slot
	rejected int64 // submissions bounced at the backlog bound
}

// pending is one backlogged submission: the dispatch callback runs on
// the admitting goroutine once a slot frees up.
type pending struct {
	client string
	start  func()
}

// NewAdmission builds the gate. Non-positive values select the
// defaults: 2 running jobs per client, 2×perClient global, backlog 16.
func NewAdmission(maxActive, perClient, backlog int) *Admission {
	if perClient <= 0 {
		perClient = 2
	}
	if maxActive <= 0 {
		maxActive = 2 * perClient
	}
	if backlog <= 0 {
		backlog = 16
	}
	return &Admission{
		maxActive: maxActive,
		perClient: perClient,
		backlogN:  backlog,
		byClient:  map[string]int{},
	}
}

// Submit offers a job for execution. If a running slot is free for the
// client, start is invoked synchronously (before Submit returns) and
// Submit reports (admitted=true, queued=false). Otherwise the job joins
// the backlog (queued=true) and start runs later on whichever goroutine
// releases the unblocking slot. When the backlog is full the submission
// is rejected (both false) and start is never called.
func (a *Admission) Submit(client string, start func()) (admitted, queued bool) {
	a.mu.Lock()
	if a.running < a.maxActive && a.byClient[client] < a.perClient {
		a.running++
		a.byClient[client]++
		a.admitted++
		a.mu.Unlock()
		start()
		return true, false
	}
	if len(a.backlog) >= a.backlogN {
		a.rejected++
		a.mu.Unlock()
		return false, false
	}
	a.backlog = append(a.backlog, &pending{client: client, start: start})
	a.mu.Unlock()
	return false, true
}

// Release returns a finished job's slot and dispatches the first
// backlogged job whose client is under budget (FIFO within
// eligibility, so one over-budget client cannot block the queue head
// for everyone else).
func (a *Admission) Release(client string) {
	a.mu.Lock()
	a.running--
	if a.byClient[client]--; a.byClient[client] == 0 {
		delete(a.byClient, client)
	}
	var next *pending
	if a.running < a.maxActive {
		for i, p := range a.backlog {
			if a.byClient[p.client] < a.perClient {
				next = p
				a.backlog = append(a.backlog[:i], a.backlog[i+1:]...)
				a.running++
				a.byClient[p.client]++
				a.admitted++
				break
			}
		}
	}
	a.mu.Unlock()
	if next != nil {
		next.start()
	}
}

// AdmissionStats is the /metrics picture of the gate.
type AdmissionStats struct {
	Running   int   `json:"running"`
	Backlog   int   `json:"backlog"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	MaxActive int   `json:"max_active"`
	PerClient int   `json:"per_client"`
	BacklogN  int   `json:"backlog_cap"`
}

// Stats snapshots the gate's counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Running: a.running, Backlog: len(a.backlog),
		Admitted: a.admitted, Rejected: a.rejected,
		MaxActive: a.maxActive, PerClient: a.perClient, BacklogN: a.backlogN,
	}
}
