package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hybriddelay/internal/session"
	"hybriddelay/internal/sweep"
)

// addFinished registers a job and drives it straight to the given
// terminal state (no evaluation runs).
func addFinished(t *testing.T, r *Registry, state State) *Job {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	j := r.Add(JobSpec{}, "client", nil, ctx, cancel)
	r.Start(j)
	r.Finish(j, state, nil, nil)
	return j
}

// TestRegistryTerminalTTLEviction: a terminal job past its TTL stops
// resolving by id and leaves the counts; queued/running jobs are never
// evicted; a subscriber already holding the *Job still drains the full
// event log to its "end" marker.
func TestRegistryTerminalTTLEviction(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { return now }
	r.SetRetention(time.Minute, 0)

	done := addFinished(t, r, StateDone)
	runCtx, runCancel := context.WithCancel(context.Background())
	t.Cleanup(runCancel)
	running := r.Add(JobSpec{}, "client", nil, runCtx, runCancel)
	r.Start(running)

	if _, ok := r.Get(done.ID); !ok {
		t.Fatal("fresh terminal job not resolvable")
	}
	now = now.Add(time.Minute)
	if _, ok := r.Get(done.ID); ok {
		t.Fatal("terminal job resolvable past its TTL")
	}
	if _, ok := r.Get(running.ID); !ok {
		t.Fatal("running job evicted by the terminal TTL")
	}
	if got := r.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	counts := r.Counts()
	if counts[StateDone] != 0 || counts[StateRunning] != 1 {
		t.Fatalf("counts after eviction: %v", counts)
	}
	// The held pointer keeps streaming: the buffered log is intact and
	// closes with the terminal marker, so a live SSE subscriber is
	// unaffected by the map eviction.
	evs, _ := done.EventsSince(0)
	if len(evs) == 0 || evs[len(evs)-1].Kind != "end" {
		t.Fatalf("evicted job's event log truncated: %+v", evs)
	}
}

// TestRegistryTerminalCountCap: over the retained-count cap, the
// oldest-finished terminal jobs are evicted first.
func TestRegistryTerminalCountCap(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { now = now.Add(time.Second); return now }
	r.SetRetention(time.Hour, 2)

	jobs := make([]*Job, 5)
	for i := range jobs {
		jobs[i] = addFinished(t, r, StateDone)
	}
	if got := r.Evictions(); got != 3 {
		t.Fatalf("Evictions = %d, want 3", got)
	}
	for _, j := range jobs[:3] {
		if _, ok := r.Get(j.ID); ok {
			t.Fatalf("job %s survived the count cap", j.ID)
		}
	}
	for _, j := range jobs[3:] {
		if _, ok := r.Get(j.ID); !ok {
			t.Fatalf("job %s evicted while within the cap", j.ID)
		}
	}
	if c := r.Counts(); c[StateDone] != 2 {
		t.Fatalf("counts after cap eviction: %v", c)
	}
}

// TestServeEventsAfterEndCloses: an SSE subscription to a terminal job
// whose ?after offset is at or past the "end" event must close
// immediately with an empty replay, not block on a notify channel that
// will never fire again. No evaluation runs — the job is fabricated
// directly in the registry.
func TestServeEventsAfterEndCloses(t *testing.T) {
	srv, hs := newTestServer(t, Options{})
	j := addFinished(t, srv.reg, StateDone)
	evs, _ := j.EventsSince(0)
	if len(evs) == 0 || evs[len(evs)-1].Kind != "end" {
		t.Fatalf("fabricated job log missing end marker: %+v", evs)
	}
	endSeq := evs[len(evs)-1].Seq

	cl := &http.Client{Timeout: 5 * time.Second}
	for _, after := range []int{endSeq, endSeq + 100} {
		resp, err := cl.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", hs.URL, j.ID, after))
		if err != nil {
			t.Fatalf("after=%d: %v", after, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("after=%d: stream did not close: %v", after, err)
		}
		if len(body) != 0 {
			t.Fatalf("after=%d: want empty replay, got %q", after, body)
		}
	}
	// An offset inside the log still replays the tail and terminates at
	// the end marker.
	resp, err := cl.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", hs.URL, j.ID, endSeq-1))
	if err != nil {
		t.Fatalf("tail replay: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("tail replay did not close: %v", err)
	}
	if !strings.Contains(string(body), `"kind":"end"`) {
		t.Fatalf("tail replay missing end event: %q", body)
	}
}

// TestServeEvictedJob404: over HTTP, a finished job answers its status
// until retention expires, then 404s; /metrics reports the eviction.
func TestServeEvictedJob404(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	srv, hs := newTestServer(t, Options{})
	spec := JobSpec{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{testStimulus(1)}, Seeds: []int64{1}}
	id := submit(t, hs.URL, spec, "")
	if st := waitTerminal(t, hs.URL, id, 120*time.Second); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	// Jump the registry clock past the retention window; the next
	// lookup evicts lazily.
	srv.reg.mu.Lock()
	srv.reg.now = func() time.Time { return time.Now().Add(DefaultTerminalTTL + time.Minute) }
	srv.reg.mu.Unlock()

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job answered %d, want 404", resp.StatusCode)
	}
	m := metrics(t, hs.URL)
	if m.JobEvictions != 1 {
		t.Errorf("JobEvictions = %d, want 1", m.JobEvictions)
	}
	if m.Jobs[StateDone] != 0 {
		t.Errorf("evicted job still counted: %v", m.Jobs)
	}
}
