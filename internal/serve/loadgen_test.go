package serve

import (
	"net/http/httptest"
	"testing"
	"time"

	"hybriddelay/internal/session"
)

// TestAdmissionUnit pins the gate's accounting deterministically, with
// no HTTP or timing in the loop.
func TestAdmissionUnit(t *testing.T) {
	a := NewAdmission(2, 1, 1)
	started := map[string]int{}
	start := func(c string) func() { return func() { started[c]++ } }

	if adm, q := a.Submit("a", start("a")); !adm || q {
		t.Fatalf("first a: admitted=%v queued=%v", adm, q)
	}
	// a is at its per-client budget: the second submission queues.
	if adm, q := a.Submit("a", start("a")); adm || !q {
		t.Fatalf("second a: admitted=%v queued=%v", adm, q)
	}
	// Backlog (capacity 1) is full: rejection.
	if adm, q := a.Submit("a", start("a")); adm || q {
		t.Fatalf("third a: admitted=%v queued=%v (want rejection)", adm, q)
	}
	// A different client still fits the global cap.
	if adm, q := a.Submit("b", start("b")); !adm || q {
		t.Fatalf("b: admitted=%v queued=%v", adm, q)
	}
	if started["a"] != 1 || started["b"] != 1 {
		t.Fatalf("started %v", started)
	}
	// Releasing a's slot dispatches its backlogged job.
	a.Release("a")
	if started["a"] != 2 {
		t.Fatalf("backlog not dispatched on release: %v", started)
	}
	st := a.Stats()
	if st.Admitted != 3 || st.Rejected != 1 || st.Running != 2 || st.Backlog != 0 {
		t.Fatalf("stats %+v", st)
	}
	a.Release("a")
	a.Release("b")
	if st := a.Stats(); st.Running != 0 {
		t.Fatalf("running %d after all releases", st.Running)
	}
}

// TestRunLoadMixedClients is the load harness acceptance run: 8
// concurrent clients submit the mixed gate/circuit/sweep job set, the
// report carries latency percentiles and throughput, and every
// server-side result is byte-identical to the same job run directly on
// a fresh one-shot session at the same operating point.
func TestRunLoadMixedClients(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	p := fastParams()
	sess := session.New(session.Options{BaseParams: &p})
	srv, err := NewServer(Options{Session: sess, MaxActive: 4, PerClient: 2, Backlog: 64})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	ref := session.New(session.Options{BaseParams: &p})
	ctx, cancel := ctxTimeout(t, 10*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, hs.URL, LoadOptions{
		Clients:       8,
		JobsPerClient: 1,
		Reference:     ref,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Failures != 0 {
		t.Fatalf("load run had %d failures: %+v", rep.Failures, rep)
	}
	if rep.Jobs != 8 {
		t.Fatalf("completed %d jobs, want 8", rep.Jobs)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.JobsPerSec <= 0 {
		t.Errorf("implausible latency report: %+v", rep)
	}
	if !rep.Verified || !rep.ByteIdentical {
		t.Errorf("server results diverged from one-shot reference: %+v", rep)
	}

	sctx, scancel := ctxTimeout(t, 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}
