package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"hybriddelay/internal/session"
	"hybriddelay/internal/store"
	"hybriddelay/internal/sweep"
)

// ctxTimeout is context.WithTimeout with the background parent (test
// shorthand).
func ctxTimeout(t *testing.T, d time.Duration) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), d)
}

// openTestStore opens a store in a test temp dir and closes it on
// cleanup.
func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestServeCancelMidJob pins the cancellation latency contract: a
// DELETE against a large running sweep job returns promptly, the job
// stops claiming evaluation units (far short of the grid), and reaches
// the cancelled terminal state bounded by in-flight units — not by the
// whole grid.
func TestServeCancelMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	// A single-worker session makes the grid strictly sequential: with
	// 4 stimuli × 16 seeds = 64 evaluation units of several transitions
	// each, the job cannot finish before the cancel lands.
	p := fastParams()
	sess := session.New(session.Options{BaseParams: &p, Workers: 1})
	_, hs := newTestServer(t, Options{Session: sess})
	stims := make([]sweep.Stimulus, 0, 4)
	for _, tr := range []int{6, 7, 8, 9} {
		stims = append(stims, testStimulus(tr))
	}
	spec := JobSpec{Kind: session.KindSweep, Sweep: &sweep.Spec{
		Gates:     []string{"nor2"},
		Stimuli:   stims,
		SeedCount: 16,
	}}
	id := submit(t, hs.URL, spec, "")

	// Wait for the job to be genuinely running (first event published).
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, hs.URL, id)
		if st.State == StateRunning && st.Events > 0 {
			break
		}
		if st.State.terminal() {
			t.Fatalf("job reached %s before cancel", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started producing events")
		}
		time.Sleep(2 * time.Millisecond)
	}

	delStart := time.Now()
	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	delLatency := time.Since(delStart)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d, want 202", resp.StatusCode)
	}
	// The DELETE itself must not wait for the job: it only flips the
	// context.
	if delLatency > 2*time.Second {
		t.Errorf("DELETE took %v — cancellation must not block on the job", delLatency)
	}

	st := waitTerminal(t, hs.URL, id, 60*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("job ended %s (want cancelled): %s", st.State, st.Error)
	}
	// The job stopped claiming units: the grid (32 eval units) must not
	// have run to completion. Count completed eval units off the event
	// log.
	srv := hs.Config.Handler.(*Server)
	j, ok := srv.Registry().Get(id)
	if !ok {
		t.Fatalf("job missing from registry")
	}
	evs, _ := j.EventsSince(0)
	evalDone := 0
	for _, e := range evs {
		if e.Kind == "progress" && e.Phase == session.PhaseEval && e.Err == "" {
			evalDone++
		}
	}
	if evalDone >= 64 {
		t.Errorf("cancelled sweep still completed all %d eval units", evalDone)
	}
}

// TestServeCancelQueuedJob cancels a job that never left the backlog:
// the cancellation is immediate and the backlog slot is recycled.
func TestServeCancelQueuedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("analog evaluation in -short mode")
	}
	_, hs := newTestServer(t, Options{MaxActive: 1, PerClient: 1, Backlog: 4})
	spec := JobSpec{Kind: session.KindGate, Gate: "nor2", Stimuli: []sweep.Stimulus{testStimulus(2)}, Seeds: []int64{1}}
	first := submit(t, hs.URL, spec, "a")
	second := submit(t, hs.URL, spec, "b") // backlogged behind MaxActive=1

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+second, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if st := waitTerminal(t, hs.URL, second, 120*time.Second); st.State != StateCancelled && st.State != StateDone {
		t.Errorf("queued job ended %s", st.State)
	}
	if st := waitTerminal(t, hs.URL, first, 120*time.Second); st.State != StateDone {
		t.Errorf("first job ended %s: %s", st.State, st.Error)
	}
	// A second DELETE against a terminal job answers 409.
	req2, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+first, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("DELETE of done job: status %d, want 409", resp2.StatusCode)
	}
}
