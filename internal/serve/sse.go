package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseWriter encodes Server-Sent Events on a streaming HTTP response.
// Each event carries the per-job sequence number as the SSE id, the
// event kind as the event name, and the JSON-encoded Event as data, so
// a disconnected client can resume with Last-Event-ID semantics by
// re-requesting /events?after=<id>.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEWriter prepares the response for streaming; ok is false when
// the connection cannot flush incrementally (no streaming support).
func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, true
}

// Send writes one event frame and flushes it to the client.
func (s *sseWriter) Send(e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}
