// Package netlist adds the circuit level to the evaluation pipeline: a
// declarative description of multi-gate combinational circuits built
// from registered gates (internal/gate) and wired by named nets, which
// elaborates down both sides of the accuracy study. On the analog side
// the instances are flattened into one transistor-level MNA circuit
// (Bench) producing a composed golden trace per recorded net; on the
// digital side the same description drives either the event-driven
// simulator (Elaborate, with a pluggable per-gate channel policy) or a
// topological dataflow walk over offline delay models (Walk, used by
// the circuit-level scoring in internal/eval).
//
// A netlist is validated structurally — known gates, arity-matched
// connections, single-driver nets, no undriven nets, no combinational
// cycles (established by topological ordering) — and round-trips
// through a small JSON format (Parse / WriteJSON, the `hybridlab
// circuit -netlist` file format).
package netlist

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/trace"
)

// Instance is one gate instantiation: a registered gate wired to named
// nets. The same net may feed several instance inputs (fanout) and an
// instance may list one net on several of its own pins (tied inputs —
// e.g. a NOR2 with both pins on one net acts as an inverter).
type Instance struct {
	// Name is the unique instance identifier (also the prefix of the
	// instance's internal analog nodes).
	Name string `json:"name"`
	// Gate is the registry name ("nor2", "nand2", "nor3"); empty
	// selects the default gate.
	Gate string `json:"gate"`
	// Inputs lists the nets on the gate's input pins, in pin order.
	Inputs []string `json:"inputs"`
	// Output is the net driven by the gate.
	Output string `json:"output"`
}

// Netlist is a combinational multi-gate circuit description.
type Netlist struct {
	// Name labels the circuit in reports and CLI listings.
	Name string `json:"name,omitempty"`
	// Inputs lists the primary input nets in stimulus order: the i-th
	// generated input trace drives the i-th net.
	Inputs []string `json:"inputs"`
	// Outputs lists the recorded nets — the nets scored against the
	// composed golden. Empty defaults to every instance output, in
	// instance order. Only instance-driven nets may be listed.
	Outputs []string `json:"outputs,omitempty"`
	// Instances lists the gate instantiations.
	Instances []Instance `json:"instances"`
}

// gateOf resolves an instance's gate against the registry, reusing the
// registry's uniform unknown-gate error.
func gateOf(inst Instance) (gate.Gate, error) {
	g, err := gate.Find(inst.Gate)
	if err != nil {
		return nil, fmt.Errorf("netlist: instance %q: %w", inst.Name, err)
	}
	return g, nil
}

// Validate checks the structural invariants: non-empty unique names,
// registered gates with matching arities, at most one driver per net,
// no driven primary inputs, no undriven instance inputs, recorded nets
// that exist and are instance-driven, and an acyclic topology.
func (n *Netlist) Validate() error {
	if len(n.Inputs) == 0 {
		return fmt.Errorf("netlist %s: no primary inputs", n.label())
	}
	if len(n.Instances) == 0 {
		return fmt.Errorf("netlist %s: no instances", n.label())
	}
	primary := map[string]bool{}
	for _, name := range n.Inputs {
		if name == "" {
			return fmt.Errorf("netlist %s: empty primary input name", n.label())
		}
		if primary[name] {
			return fmt.Errorf("netlist %s: primary input %q listed twice", n.label(), name)
		}
		primary[name] = true
	}
	seenInst := map[string]bool{}
	driver := map[string]string{} // net -> driving instance
	for _, inst := range n.Instances {
		if inst.Name == "" {
			return fmt.Errorf("netlist %s: instance with empty name", n.label())
		}
		if seenInst[inst.Name] {
			return fmt.Errorf("netlist %s: duplicate instance name %q", n.label(), inst.Name)
		}
		seenInst[inst.Name] = true
		g, err := gateOf(inst)
		if err != nil {
			return err
		}
		if len(inst.Inputs) != g.Arity() {
			return fmt.Errorf("netlist %s: instance %q: gate %s has %d inputs, got %d",
				n.label(), inst.Name, g.Name(), g.Arity(), len(inst.Inputs))
		}
		for _, net := range inst.Inputs {
			if net == "" {
				return fmt.Errorf("netlist %s: instance %q: empty input net name", n.label(), inst.Name)
			}
		}
		if inst.Output == "" {
			return fmt.Errorf("netlist %s: instance %q: empty output net name", n.label(), inst.Name)
		}
		if primary[inst.Output] {
			return fmt.Errorf("netlist %s: instance %q drives primary input net %q",
				n.label(), inst.Name, inst.Output)
		}
		if prev, ok := driver[inst.Output]; ok {
			return fmt.Errorf("netlist %s: net %q driven by both %q and %q",
				n.label(), inst.Output, prev, inst.Name)
		}
		driver[inst.Output] = inst.Name
	}
	for _, inst := range n.Instances {
		for _, net := range inst.Inputs {
			if !primary[net] && driver[net] == "" {
				return fmt.Errorf("netlist %s: instance %q input net %q is undriven",
					n.label(), inst.Name, net)
			}
		}
	}
	seenOut := map[string]bool{}
	for _, net := range n.Outputs {
		if driver[net] == "" {
			return fmt.Errorf("netlist %s: output net %q is not driven by any instance", n.label(), net)
		}
		if seenOut[net] {
			return fmt.Errorf("netlist %s: output net %q listed twice", n.label(), net)
		}
		seenOut[net] = true
	}
	if _, err := n.Order(); err != nil {
		return err
	}
	return nil
}

// label names the netlist in error messages.
func (n *Netlist) label() string {
	if n.Name != "" {
		return fmt.Sprintf("%q", n.Name)
	}
	return "(unnamed)"
}

// Order returns a topological ordering of the instance indices (inputs
// before consumers) or an error naming the instances on a combinational
// cycle. Among simultaneously ready instances declaration order wins,
// so the ordering is deterministic.
func (n *Netlist) Order() ([]int, error) {
	ready := map[string]bool{}
	for _, name := range n.Inputs {
		ready[name] = true
	}
	order := make([]int, 0, len(n.Instances))
	placed := make([]bool, len(n.Instances))
	for len(order) < len(n.Instances) {
		progressed := false
		for i, inst := range n.Instances {
			if placed[i] {
				continue
			}
			ok := true
			for _, net := range inst.Inputs {
				if !ready[net] {
					ok = false
					break
				}
			}
			if ok {
				placed[i] = true
				ready[inst.Output] = true
				order = append(order, i)
				progressed = true
			}
		}
		if !progressed {
			var stuck []string
			for i, inst := range n.Instances {
				if !placed[i] {
					stuck = append(stuck, inst.Name)
				}
			}
			return nil, fmt.Errorf("netlist %s: combinational cycle through instances %s",
				n.label(), strings.Join(stuck, ", "))
		}
	}
	return order, nil
}

// Recorded returns the nets scored against the composed golden: the
// explicit Outputs, or every instance output in instance order.
func (n *Netlist) Recorded() []string {
	if len(n.Outputs) > 0 {
		return append([]string(nil), n.Outputs...)
	}
	out := make([]string, 0, len(n.Instances))
	for _, inst := range n.Instances {
		out = append(out, inst.Output)
	}
	return out
}

// InitialValues returns the settled logical value of every net when all
// primary inputs are low (the starting state of every golden run): the
// zero-delay logic values propagated in topological order.
func (n *Netlist) InitialValues() (map[string]bool, error) {
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	vals := map[string]bool{}
	for _, name := range n.Inputs {
		vals[name] = false
	}
	for _, i := range order {
		inst := n.Instances[i]
		g, err := gateOf(inst)
		if err != nil {
			return nil, err
		}
		in := make([]bool, len(inst.Inputs))
		for k, net := range inst.Inputs {
			in[k] = vals[net]
		}
		vals[inst.Output] = g.Logic(in)
	}
	return vals, nil
}

// ContentKey renders the netlist's structure as a deterministic string
// for memoization: the primary inputs (whose order fixes the stimulus
// assignment), the recorded nets and every instance connection with its
// resolved gate name, in declaration order. The circuit Name is
// deliberately excluded — renaming a circuit must not invalidate cached
// golden traces.
func (n *Netlist) ContentKey() string {
	var sb strings.Builder
	sb.WriteString("v1|in=")
	sb.WriteString(strings.Join(n.Inputs, ","))
	sb.WriteString("|rec=")
	sb.WriteString(strings.Join(n.Recorded(), ","))
	for _, inst := range n.Instances {
		gname := inst.Gate
		if g, err := gateOf(inst); err == nil {
			gname = g.Name()
		}
		fmt.Fprintf(&sb, "|%s=%s(%s)->%s", inst.Name, gname, strings.Join(inst.Inputs, ","), inst.Output)
	}
	return sb.String()
}

// Walk runs the netlist as a dataflow over digital traces: apply is
// called once per instance in topological order with the instance's
// input traces, and its returned trace becomes the instance's output
// net. inputs drives the primary input nets in Netlist.Inputs order.
// The returned map holds every net's trace. This is how the accuracy
// pipeline elaborates a netlist into each offline delay model.
func (n *Netlist) Walk(inputs []trace.Trace,
	apply func(inst Instance, g gate.Gate, in []trace.Trace) (trace.Trace, error)) (map[string]trace.Trace, error) {
	if len(inputs) != len(n.Inputs) {
		return nil, fmt.Errorf("netlist %s: %d primary inputs, got %d traces", n.label(), len(n.Inputs), len(inputs))
	}
	order, err := n.Order()
	if err != nil {
		return nil, err
	}
	nets := make(map[string]trace.Trace, len(n.Inputs)+len(n.Instances))
	for i, name := range n.Inputs {
		nets[name] = inputs[i]
	}
	for _, i := range order {
		inst := n.Instances[i]
		g, err := gateOf(inst)
		if err != nil {
			return nil, err
		}
		in := make([]trace.Trace, len(inst.Inputs))
		for k, net := range inst.Inputs {
			in[k] = nets[net]
		}
		out, err := apply(inst, g, in)
		if err != nil {
			return nil, fmt.Errorf("netlist %s: instance %q: %w", n.label(), inst.Name, err)
		}
		nets[inst.Output] = out
	}
	return nets, nil
}

// Parse decodes and validates the JSON netlist format:
//
//	{
//	  "name": "nor-invchain",
//	  "inputs": ["a", "b"],
//	  "outputs": ["y0", "y3"],
//	  "instances": [
//	    {"name": "nor",  "gate": "nor2", "inputs": ["a", "b"],   "output": "y0"},
//	    {"name": "inv1", "gate": "nor2", "inputs": ["y0", "y0"], "output": "y1"}
//	  ]
//	}
func Parse(r io.Reader) (*Netlist, error) {
	var n Netlist
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("netlist: parsing: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// WriteJSON encodes the netlist in the Parse format (indented,
// deterministic).
func (n *Netlist) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}
