package netlist

import (
	"fmt"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/spice"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Bench is a netlist elaborated into one flat transistor-level MNA
// circuit: every instance's subcircuit is stamped (via Gate.Stamp) into
// a shared spice.Circuit with shared nets, so each stage drives the
// next stage's gate capacitances through its own per-stage output load
// — the composed analog golden reference of circuit-level evaluation.
//
// Like the single-gate benches, a Bench owns mutable simulator state
// (input-source signals, device charge state) and must not run two
// transients at once; use Clone (or the pooling CircuitBenchSource in
// internal/eval) for concurrency.
//
// Construction is deliberately order-preserving: nodes are created as
// supply, then primary inputs in netlist order, then per instance (in
// topological order) internals before output, and devices as the
// supply source, the primary input sources and each instance's stamp.
// For a single-gate netlist this reproduces the standalone bench's MNA
// system variable for variable and device for device, which is what
// makes the composed golden bit-identical to the per-gate pipeline.
type Bench struct {
	nl *Netlist
	p  nor.Params

	circuit   *spice.Circuit
	solver    *spice.Solver
	srcs      []*spice.VSource // one per primary input, in netlist order
	nodes     map[string]spice.NodeID
	init      map[spice.NodeID]float64
	recorded  []string
	recordIDs []spice.NodeID
}

// NewBench validates the netlist and flattens it into a fresh circuit.
func NewBench(nl *Netlist, p nor.Params) (*Bench, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.Order()
	if err != nil {
		return nil, err
	}
	initVals, err := nl.InitialValues()
	if err != nil {
		return nil, err
	}
	b := &Bench{
		nl:    nl,
		p:     p,
		nodes: map[string]spice.NodeID{},
		init:  map[spice.NodeID]float64{},
	}
	c := spice.NewCircuit()
	vdd := c.Node("vdd")
	for _, name := range nl.Inputs {
		b.nodes[name] = c.Node(name)
	}
	c.AddDCVSource("Vdd", vdd, spice.Ground, p.Supply.VDD)
	for _, name := range nl.Inputs {
		// Constant-low placeholder signals, as in the standalone benches;
		// Golden substitutes the per-run stimuli.
		b.srcs = append(b.srcs, c.AddVSource("V."+name, b.nodes[name], spice.Ground, waveform.Constant(0)))
	}
	for _, i := range order {
		inst := nl.Instances[i]
		g, err := gateOf(inst)
		if err != nil {
			return nil, err
		}
		in := make([]spice.NodeID, len(inst.Inputs))
		initIn := make([]bool, len(inst.Inputs))
		for k, net := range inst.Inputs {
			in[k] = b.nodes[net]
			initIn[k] = initVals[net]
		}
		sub, err := g.Stamp(c, inst.Name+".", inst.Output, p, vdd, in, initIn)
		if err != nil {
			return nil, fmt.Errorf("netlist %s: instance %q: %w", nl.label(), inst.Name, err)
		}
		b.nodes[inst.Output] = sub.Out
		//hybrid:nondet-ok map-to-map copy with distinct keys; visit order cannot change the merged contents
		for node, v := range sub.Initial {
			b.init[node] = v
		}
	}
	b.recorded = nl.Recorded()
	for _, net := range b.recorded {
		b.recordIDs = append(b.recordIDs, b.nodes[net])
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist %s: composed circuit: %w", nl.label(), err)
	}
	b.circuit = c
	// One persistent solver per bench: every Golden run reuses the same
	// MNA workspace, with bit-identical results to the per-call solver.
	sv, err := spice.NewSolver(c)
	if err != nil {
		return nil, fmt.Errorf("netlist %s: %w", nl.label(), err)
	}
	sv.SetSymbolicScope(nl.ContentKey() + "|" + nor.SymbolicScope("netlist", p))
	b.solver = sv
	return b, nil
}

// Netlist returns the description the bench was elaborated from.
func (b *Bench) Netlist() *Netlist { return b.nl }

// Params returns the shared testbench parameters.
func (b *Bench) Params() nor.Params { return b.p }

// Circuit exposes the flattened MNA circuit (diagnostics and tests).
func (b *Bench) Circuit() *spice.Circuit { return b.circuit }

// Recorded returns the recorded net names in report order.
func (b *Bench) Recorded() []string { return append([]string(nil), b.recorded...) }

// SolverStats returns the persistent solver's cumulative counters over
// every composed transient this bench has run.
func (b *Bench) SolverStats() spice.SolverStats { return b.solver.Stats() }

// Clone returns an independent bench over the same netlist and
// parameters; clones may run transients concurrently.
func (b *Bench) Clone() (*Bench, error) { return NewBench(b.nl, b.p) }

// Golden runs the composed analog transient over the given primary
// input traces (all starting low, as everywhere in the pipeline) and
// returns the digitized trace of every recorded net. The circuit
// starts in the settled all-low-input state, with internal nodes that
// the state isolates at the paper's worst case GND.
func (b *Bench) Golden(inputs []trace.Trace, until float64) (map[string]trace.Trace, error) {
	if len(inputs) != len(b.nl.Inputs) {
		return nil, fmt.Errorf("netlist %s: %d primary inputs, got %d traces",
			b.nl.label(), len(b.nl.Inputs), len(inputs))
	}
	sigs, bps, err := gate.InputSignals(b.p, inputs)
	if err != nil {
		return nil, fmt.Errorf("netlist %s: %w", b.nl.label(), err)
	}
	for i, src := range b.srcs {
		src.Signal = sigs[i]
	}
	res, err := b.solver.Transient(spice.TransientOptions{
		TStart:            0,
		TStop:             until,
		MaxStep:           b.p.MaxStep,
		LTETol:            b.p.LTETol,
		Method:            b.p.Method,
		Solver:            b.p.Solver,
		SparsePivotRel:    b.p.SparsePivotRel,
		Breakpoints:       bps,
		InitialConditions: b.init,
		Record:            b.recordIDs,
	})
	if err != nil {
		return nil, fmt.Errorf("netlist %s: composed transient: %w", b.nl.label(), err)
	}
	out := make(map[string]trace.Trace, len(b.recorded))
	for i, net := range b.recorded {
		w, err := res.Waveform(b.recordIDs[i])
		if err != nil {
			return nil, fmt.Errorf("netlist %s: net %q: %w", b.nl.label(), net, err)
		}
		out[net] = trace.Digitize(w, b.p.Supply.Vth)
	}
	return out, nil
}
