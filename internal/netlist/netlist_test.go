package netlist

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/trace"
)

// single returns a minimal valid one-gate netlist.
func single() *Netlist {
	return &Netlist{
		Name:   "single",
		Inputs: []string{"a", "b"},
		Instances: []Instance{
			{Name: "g", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "o"},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	for _, nl := range []*Netlist{single(), C17("c17")} {
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: %v", nl.Name, err)
		}
	}
	chain, err := InverterChain("chain", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Netlist)
		want string
	}{
		{"no inputs", func(n *Netlist) { n.Inputs = nil }, "no primary inputs"},
		{"no instances", func(n *Netlist) { n.Instances = nil }, "no instances"},
		{"dup input", func(n *Netlist) { n.Inputs = []string{"a", "a"} }, "listed twice"},
		{"unknown gate", func(n *Netlist) { n.Instances[0].Gate = "xor9" }, "unknown gate"},
		{"arity", func(n *Netlist) { n.Instances[0].Inputs = []string{"a"} }, "has 2 inputs, got 1"},
		{"empty instance name", func(n *Netlist) { n.Instances[0].Name = "" }, "empty name"},
		{"drives primary", func(n *Netlist) { n.Instances[0].Output = "a" }, "drives primary input"},
		{"undriven", func(n *Netlist) { n.Instances[0].Inputs = []string{"a", "x"} }, "undriven"},
		{"bad output", func(n *Netlist) { n.Outputs = []string{"nope"} }, "not driven"},
		{"output is primary", func(n *Netlist) { n.Outputs = []string{"a"} }, "not driven"},
		{
			"dup instance",
			func(n *Netlist) { n.Instances = append(n.Instances, n.Instances[0]) },
			"duplicate instance",
		},
		{
			"multi driver",
			func(n *Netlist) {
				n.Instances = append(n.Instances, Instance{
					Name: "g2", Gate: "nand2", Inputs: []string{"a", "b"}, Output: "o",
				})
			},
			"driven by both",
		},
		{
			"cycle",
			func(n *Netlist) {
				n.Instances = append(n.Instances,
					Instance{Name: "c1", Gate: "nor2", Inputs: []string{"o", "c2o"}, Output: "c1o"},
					Instance{Name: "c2", Gate: "nor2", Inputs: []string{"o", "c1o"}, Output: "c2o"},
				)
			},
			"combinational cycle",
		},
	}
	for _, c := range cases {
		nl := single()
		c.mut(nl)
		err := nl.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestUnknownGateErrorListsRegistry: netlist validation reuses
// gate.Find, so the unknown-gate message lists the registered names —
// the same actionable error as the CLI's -gate flag.
func TestUnknownGateErrorListsRegistry(t *testing.T) {
	nl := single()
	nl.Instances[0].Gate = "xor9"
	err := nl.Validate()
	if err == nil {
		t.Fatal("unknown gate accepted")
	}
	for _, name := range gate.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered gate %q", err, name)
		}
	}
}

func TestOrderTopological(t *testing.T) {
	// Declare consumers before producers: order must still put drivers
	// first.
	nl := &Netlist{
		Name:   "rev",
		Inputs: []string{"a", "b"},
		Instances: []Instance{
			{Name: "late", Gate: "nor2", Inputs: []string{"mid", "mid"}, Output: "out"},
			{Name: "early", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "mid"},
		},
	}
	order, err := nl.Order()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v, want [1 0]", order)
	}
}

func TestInitialValues(t *testing.T) {
	chain, err := InverterChain("chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := chain.InitialValues()
	if err != nil {
		t.Fatal(err)
	}
	// All-low inputs: NOR(0,0)=1, then alternating through the chain.
	want := map[string]bool{"a": false, "b": false, "y0": true, "y1": false, "y2": true}
	for net, v := range want {
		if vals[net] != v {
			t.Errorf("initial %s = %v, want %v", net, vals[net], v)
		}
	}
}

func TestRecordedDefaultsToInstanceOutputs(t *testing.T) {
	chain, err := InverterChain("chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := chain.Recorded()
	want := []string{"y0", "y1", "y2"}
	if len(got) != len(want) {
		t.Fatalf("recorded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recorded = %v, want %v", got, want)
		}
	}
	c17 := C17("c17")
	if rec := c17.Recorded(); len(rec) != 2 || rec[0] != "out22" || rec[1] != "out23" {
		t.Errorf("c17 recorded = %v, want [out22 out23]", rec)
	}
}

func TestContentKeyIgnoresNameOnly(t *testing.T) {
	a := single()
	b := single()
	b.Name = "renamed"
	if a.ContentKey() != b.ContentKey() {
		t.Error("renaming changed the content key")
	}
	c := single()
	c.Instances[0].Inputs = []string{"b", "a"}
	if a.ContentKey() == c.ContentKey() {
		t.Error("swapping pin connections did not change the content key")
	}
	d := single()
	d.Outputs = []string{"o"}
	// Same recorded set (default is the only instance output) -> same key.
	if a.ContentKey() != d.ContentKey() {
		t.Error("explicit identical recorded set changed the content key")
	}
	// The empty gate name resolves to the default gate in the key.
	e := single()
	e.Instances[0].Gate = ""
	if a.ContentKey() != e.ContentKey() {
		t.Error("default-gate spelling changed the content key")
	}
}

func TestParseRoundTrip(t *testing.T) {
	nl := C17("c17")
	var buf bytes.Buffer
	if err := nl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentKey() != nl.ContentKey() || got.Name != nl.Name {
		t.Error("round trip changed the netlist")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"bogus_field": 1}`,
		`{"inputs": ["a"], "instances": []}`,
		`{"inputs": ["a", "b"], "instances": [{"name": "g", "gate": "nope", "inputs": ["a", "b"], "output": "o"}]}`,
	}
	for _, s := range cases {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("parsed invalid netlist %s", s)
		}
	}
}

func TestBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		nl, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("builtin %s: %v", name, err)
		}
		if nl.Name != name {
			t.Errorf("builtin %s named %q", name, nl.Name)
		}
	}
	if _, err := Builtin("nope"); err == nil || !strings.Contains(err.Error(), "c17") {
		t.Errorf("unknown-builtin error %v does not list the available circuits", err)
	}
	if _, err := InverterChain("x", 0); err == nil {
		t.Error("zero-stage chain accepted")
	}
	if _, err := RippleCarryAdder("x", 0); err == nil {
		t.Error("zero-bit adder accepted")
	}
}

// TestRippleCarryAdderLogic verifies the NAND-only decomposition gate
// by gate: over every input combination, topologically evaluating the
// netlist as boolean NANDs reproduces binary addition. Instances are
// emitted in topological order, so a single forward pass suffices.
func TestRippleCarryAdderLogic(t *testing.T) {
	for _, bits := range []int{1, 2, 3} {
		nl, err := RippleCarryAdder(fmt.Sprintf("rca%d", bits), bits)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%d bits: %v", bits, err)
		}
		if got, want := len(nl.Instances), 9*bits; got != want {
			t.Fatalf("%d bits: %d instances, want %d", bits, got, want)
		}
		for mask := 0; mask < 1<<(2*bits+1); mask++ {
			vals := map[string]bool{"cin": mask&1 == 1}
			a, b := 0, 0
			for i := 0; i < bits; i++ {
				ab := mask >> (1 + 2*i) & 1
				bb := mask >> (2 + 2*i) & 1
				a |= ab << i
				b |= bb << i
				vals[fmt.Sprintf("a%d", i)] = ab == 1
				vals[fmt.Sprintf("b%d", i)] = bb == 1
			}
			for _, inst := range nl.Instances {
				x, okx := vals[inst.Inputs[0]]
				y, oky := vals[inst.Inputs[1]]
				if !okx || !oky {
					t.Fatalf("%d bits: instance %s reads an unset net (not topological)", bits, inst.Name)
				}
				vals[inst.Output] = !(x && y)
			}
			sum := a + b + mask&1
			for i := 0; i < bits; i++ {
				if got, want := vals[fmt.Sprintf("s%d", i)], sum>>i&1 == 1; got != want {
					t.Fatalf("%d bits: a=%d b=%d cin=%d: s%d = %v, want %v", bits, a, b, mask&1, i, got, want)
				}
			}
			if got, want := vals["cout"], sum>>bits&1 == 1; got != want {
				t.Fatalf("%d bits: a=%d b=%d cin=%d: cout = %v, want %v", bits, a, b, mask&1, got, want)
			}
		}
	}
}

// TestShippedNetlistFiles: the JSON files under examples/netlists are
// the shipped form of the builtin circuits and must stay in sync.
func TestShippedNetlistFiles(t *testing.T) {
	for _, name := range BuiltinNames() {
		f, err := os.Open("../../examples/netlists/" + name + ".json")
		if err != nil {
			t.Fatalf("shipped netlist missing: %v", err)
		}
		got, err := Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name || got.ContentKey() != want.ContentKey() {
			t.Errorf("%s: shipped file drifted from the builtin", name)
		}
	}
}

func TestWalkZeroDelay(t *testing.T) {
	chain, err := InverterChain("chain", 1)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.New(false, []trace.Event{{Time: 1e-9, Value: true}})
	b := trace.Trace{Initial: false}
	nets, err := chain.Walk([]trace.Trace{a, b}, func(inst Instance, g gate.Gate, in []trace.Trace) (trace.Trace, error) {
		return trace.Combine(g.Logic, in...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// y0 = NOR(a, b) starts high and falls; y1 = inverter of y0.
	if !nets["y0"].Initial || nets["y0"].NumEvents() != 1 {
		t.Errorf("y0 = %+v, want initial high with one event", nets["y0"])
	}
	if nets["y1"].Initial || nets["y1"].NumEvents() != 1 || !nets["y1"].Events[0].Value {
		t.Errorf("y1 = %+v, want initial low with one rising event", nets["y1"])
	}
	if _, err := chain.Walk([]trace.Trace{a}, nil); err == nil {
		t.Error("wrong input count accepted")
	}
	// An apply error surfaces with the instance name.
	_, err = chain.Walk([]trace.Trace{a, b}, func(inst Instance, g gate.Gate, in []trace.Trace) (trace.Trace, error) {
		return trace.Trace{}, fmt.Errorf("boom")
	})
	if err == nil || !strings.Contains(err.Error(), `"nor"`) {
		t.Errorf("apply error = %v, want the failing instance named", err)
	}
}
