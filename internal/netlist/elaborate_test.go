package netlist

import (
	"fmt"
	"strings"
	"testing"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/idm"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/trace"
)

// cheapModelSet builds a nor2 model set from fixed parameters (no
// analog measurement), following the eval test convention.
func cheapModelSet(t *testing.T) ModelSet {
	t.Helper()
	hm := hybrid.TableI()
	hm0 := hm
	hm0.DMin = 0
	arcs, err := inertial.NORArcsFromSIS(40e-12, 38e-12, 53e-12, 56e-12)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := idm.ExpFromSIS(54.5e-12, 39e-12, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	return ModelSet{"nor2": {
		Gate:     gate.NOR2,
		Inertial: arcs.Arcs(),
		Exp:      exp,
		HM:       gate.NOR2Model{P: hm},
		HMNoDMin: gate.NOR2Model{P: hm0},
		Supply:   hm.Supply,
	}}
}

// pulses builds a trace from transition times.
func pulses(times ...float64) trace.Trace {
	ev := make([]trace.Event, 0, len(times))
	v := false
	for _, tm := range times {
		v = !v
		ev = append(ev, trace.Event{Time: tm, Value: v})
	}
	return trace.New(false, ev)
}

// offlineModel applies one named model over the netlist as the eval
// pipeline does: a topological dataflow of the offline appliers.
func offlineModel(t *testing.T, nl *Netlist, ms ModelSet, model string, inputs []trace.Trace, until float64) map[string]trace.Trace {
	t.Helper()
	nets, err := nl.Walk(inputs, func(inst Instance, g gate.Gate, in []trace.Trace) (trace.Trace, error) {
		m, err := ms.For(inst)
		if err != nil {
			return trace.Trace{}, err
		}
		switch model {
		case gate.ModelInertial:
			return m.Inertial.Apply(g.Logic, in...), nil
		case gate.ModelExp:
			return dtsim.ApplyDelay(trace.Combine(g.Logic, in...), m.Exp), nil
		case gate.ModelHM:
			return m.HM.Apply(in, until)
		}
		return trace.Trace{}, fmt.Errorf("unknown model %s", model)
	})
	if err != nil {
		t.Fatal(err)
	}
	return nets
}

// runElaborated drives the event-driven elaboration with the same
// inputs and returns the recorded traces of every net.
func runElaborated(t *testing.T, nl *Netlist, ms ModelSet, model string, inputs []trace.Trace, until float64) map[string]trace.Trace {
	t.Helper()
	sim := dtsim.NewSimulator()
	nets, err := Elaborate(nl, sim, nil, WireModel(ms, model))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		n.Record()
	}
	for i, name := range nl.Inputs {
		if err := dtsim.Drive(sim, nets[name], inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(until); err != nil {
		t.Fatal(err)
	}
	out := map[string]trace.Trace{}
	for name, n := range nets {
		out[name] = n.Trace()
	}
	return out
}

// TestElaborateMatchesOfflineModels: the event-driven elaboration and
// the offline topological dataflow are two realizations of the same
// per-gate channel semantics and must produce identical traces on
// every net, for each standard channel policy.
func TestElaborateMatchesOfflineModels(t *testing.T) {
	chain, err := InverterChain("chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	ms := cheapModelSet(t)
	inputs := []trace.Trace{
		pulses(500e-12, 620e-12, 1500e-12, 1540e-12),
		pulses(520e-12, 900e-12),
	}
	const until = 5e-9
	for _, model := range []string{gate.ModelInertial, gate.ModelExp, gate.ModelHM} {
		offline := offlineModel(t, chain, ms, model, inputs, until)
		live := runElaborated(t, chain, ms, model, inputs, until)
		for _, net := range []string{"y0", "y1", "y2"} {
			a, b := offline[net], live[net]
			if a.Initial != b.Initial || len(a.Events) != len(b.Events) {
				t.Errorf("%s/%s: offline %+v != elaborated %+v", model, net, a, b)
				continue
			}
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					t.Errorf("%s/%s: event %d: offline %+v != elaborated %+v", model, net, i, a.Events[i], b.Events[i])
				}
			}
		}
	}
}

func TestWireModelErrors(t *testing.T) {
	ms := cheapModelSet(t)
	sim := dtsim.NewSimulator()
	// Hybrid channel is only available for nor2 instances.
	c17 := C17("c17")
	nand := gate.NAND2
	err := WireModel(ModelSet{"nand2": {Gate: nand}}, gate.ModelHM)(sim, c17.Instances[0], nand, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "no event-driven channel") {
		t.Errorf("hm wiring of nand2 = %v, want unsupported-channel error", err)
	}
	// Missing model set entry.
	nl := single()
	if _, err := Elaborate(nl, sim, nil, WireModel(ModelSet{}, gate.ModelInertial)); err == nil {
		t.Error("missing model set entry accepted")
	}
	// Unknown model name.
	if _, err := Elaborate(nl, sim, nil, WireModel(ms, "bogus")); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestBuildModelSetValidates(t *testing.T) {
	nl := single()
	nl.Instances[0].Gate = "bogus"
	if _, err := BuildModelSet(nl, fastParams(), 20e-12); err == nil {
		t.Error("invalid netlist accepted")
	}
}
