package netlist

import (
	"testing"

	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// fastParams returns the calibrated bench parameters with the coarser
// integrator step the analog test suites use.
func fastParams() nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return p
}

// tracesFor generates small random stimuli for an n-input circuit.
func tracesFor(t *testing.T, n, transitions int, seed int64) ([]trace.Trace, float64) {
	t.Helper()
	cfg := gen.PaperConfigs()[0]
	cfg.Inputs = n
	cfg.Transitions = transitions
	inputs, err := gen.Traces(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inputs, gen.Horizon(inputs, 600*waveform.Pico)
}

func equalTraces(a, b trace.Trace) bool {
	if a.Initial != b.Initial || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

// TestSingleGateGoldenBitIdentical is the composition anchor: a
// netlist holding one instance of a gate must produce, through the
// flattened composed circuit, the exact trace the standalone bench
// produces — same MNA variables, same device stamps, same integration
// path, bit-identical digitized events.
func TestSingleGateGoldenBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("analog transients in -short mode")
	}
	p := fastParams()
	for _, gname := range []string{"nor2", "nand2", "nor3"} {
		g, err := gate.Find(gname)
		if err != nil {
			t.Fatal(err)
		}
		netNames := []string{"a", "b", "c"}[:g.Arity()]
		nl := &Netlist{
			Name:   "single-" + gname,
			Inputs: netNames,
			Instances: []Instance{
				{Name: "g", Gate: gname, Inputs: netNames, Output: "o"},
			},
		}
		inputs, until := tracesFor(t, g.Arity(), 3*g.Arity(), 7)

		bench, err := g.NewBench(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := bench.Golden(inputs, until)
		if err != nil {
			t.Fatal(err)
		}

		cb, err := NewBench(nl, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cb.Golden(inputs, until)
		if err != nil {
			t.Fatal(err)
		}
		if want.NumEvents() == 0 {
			t.Errorf("%s: golden trace has no events (weak test)", gname)
		}
		if !equalTraces(got["o"], want) {
			t.Errorf("%s: composed golden differs from standalone bench:\n got %+v\nwant %+v",
				gname, got["o"], want)
		}
	}
}

// TestComposedChainGolden runs a NOR feeding two inverters through the
// flattened circuit and sanity-checks the per-net digitized traces.
func TestComposedChainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("analog transients in -short mode")
	}
	chain, err := InverterChain("chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBench(chain, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	inputs, until := tracesFor(t, 2, 6, 3)
	out, err := b.Golden(inputs, until)
	if err != nil {
		t.Fatal(err)
	}
	// Initial values follow the settled logic state (a=b=0).
	if !out["y0"].Initial || out["y1"].Initial || !out["y2"].Initial {
		t.Errorf("initial values y0=%v y1=%v y2=%v, want true/false/true",
			out["y0"].Initial, out["y1"].Initial, out["y2"].Initial)
	}
	// Activity at the NOR must propagate down the chain (inverters
	// cannot create activity from nothing, and a driven chain toggles).
	if out["y0"].NumEvents() == 0 {
		t.Error("NOR output never switched")
	}
	if out["y2"].NumEvents() == 0 {
		t.Error("chain output never switched")
	}
	if out["y1"].NumEvents() < out["y2"].NumEvents() {
		t.Errorf("stage activity grows down the chain: y1=%d events, y2=%d",
			out["y1"].NumEvents(), out["y2"].NumEvents())
	}
	// Clone runs independently and reproduces the same traces.
	cl, err := b.Clone()
	if err != nil {
		t.Fatal(err)
	}
	again, err := cl.Golden(inputs, until)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range chain.Recorded() {
		if !equalTraces(out[net], again[net]) {
			t.Errorf("clone diverged on net %s", net)
		}
	}
}

func TestBenchAccessors(t *testing.T) {
	nl := single()
	p := fastParams()
	b, err := NewBench(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Netlist() != nl {
		t.Error("Netlist() lost the description")
	}
	if b.Params() != p {
		t.Error("Params() changed")
	}
	if b.Circuit() == nil || b.Circuit().NumNodes() < 5 {
		t.Errorf("composed circuit too small: %v nodes", b.Circuit().NumNodes())
	}
	if rec := b.Recorded(); len(rec) != 1 || rec[0] != "o" {
		t.Errorf("Recorded() = %v, want [o]", rec)
	}
}

func TestBuildModelSet(t *testing.T) {
	if testing.Short() {
		t.Skip("gate measurement in -short mode")
	}
	chain, err := InverterChain("chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three nor2 instances -> one measured model set entry.
	ms, err := BuildModelSet(chain, fastParams(), 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("model set has %d entries, want 1 (deduped nor2)", len(ms))
	}
	m, err := ms.For(chain.Instances[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Gate.Name() != "nor2" {
		t.Errorf("models built for %q", m.Gate.Name())
	}
	if err := m.Inertial.Validate(); err != nil {
		t.Errorf("measured inertial arcs invalid: %v", err)
	}
	if m.Exp.TauUp <= 0 || m.Exp.TauDown <= 0 {
		t.Errorf("measured exp channel invalid: %+v", m.Exp)
	}
}

func TestBenchValidation(t *testing.T) {
	nl := single()
	bad := fastParams()
	bad.CO = 0
	if _, err := NewBench(nl, bad); err == nil {
		t.Error("invalid params accepted")
	}
	nl.Instances[0].Gate = "bogus"
	if _, err := NewBench(nl, fastParams()); err == nil {
		t.Error("invalid netlist accepted")
	}
	b, err := NewBench(single(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Golden([]trace.Trace{{}}, 1e-9); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := b.Golden([]trace.Trace{{Initial: true}, {}}, 1e-9); err == nil {
		t.Error("high initial input accepted")
	}
}
