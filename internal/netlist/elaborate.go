package netlist

import (
	"fmt"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/hybrid"
	"hybriddelay/internal/inertial"
	"hybriddelay/internal/nor"
)

// ModelSet maps resolved registry gate names to their parametrized
// Fig. 7 model sets — one entry per distinct gate a netlist uses. It
// feeds both the offline circuit scoring (internal/eval) and the
// event-driven elaboration (WireModel).
type ModelSet map[string]gate.Models

// For returns the model set of an instance's (resolved) gate.
func (ms ModelSet) For(inst Instance) (gate.Models, error) {
	g, err := gateOf(inst)
	if err != nil {
		return gate.Models{}, err
	}
	m, ok := ms[g.Name()]
	if !ok {
		return gate.Models{}, fmt.Errorf("netlist: no models for gate %s (instance %q)", g.Name(), inst.Name)
	}
	return m, nil
}

// BuildModelSet measures and parametrizes every distinct gate the
// netlist uses at the given operating point: one bench construction,
// characteristic measurement and model fit per gate (the expensive
// analog step — share the result across evaluations of the same
// operating point). expDMin is the exp channel's empirical pure delay.
func BuildModelSet(nl *Netlist, p nor.Params, expDMin float64) (ModelSet, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	ms := ModelSet{}
	for _, inst := range nl.Instances {
		g, err := gateOf(inst)
		if err != nil {
			return nil, err
		}
		if _, ok := ms[g.Name()]; ok {
			continue
		}
		bench, err := g.NewBench(p)
		if err != nil {
			return nil, fmt.Errorf("netlist %s: gate %s: bench: %w", nl.label(), g.Name(), err)
		}
		meas, err := bench.Measure()
		if err != nil {
			return nil, fmt.Errorf("netlist %s: gate %s: measure: %w", nl.label(), g.Name(), err)
		}
		m, err := g.BuildModels(meas, p.Supply, expDMin)
		if err != nil {
			return nil, fmt.Errorf("netlist %s: gate %s: models: %w", nl.label(), g.Name(), err)
		}
		ms[g.Name()] = m
	}
	return ms, nil
}

// ChannelBuilder realizes one instance's delay behaviour in the
// event-driven simulator: wire the instance's input nets to its output
// net (creating intermediate nets and channels as needed) and establish
// the output net's initial value. It is the pluggable per-gate channel
// policy of the digital elaboration — WireModel provides the standard
// policies (hybrid channel, IDM exp-channel, inertial), and callers may
// pass any closure for custom per-instance wiring.
type ChannelBuilder func(sim *dtsim.Simulator, inst Instance, g gate.Gate, in []*dtsim.Net, out *dtsim.Net) error

// Elaborate builds the netlist into the event-driven simulator: one
// dtsim.Net per net (primary inputs initialized from initial, missing
// entries default to low) and one wire call per instance in
// topological order, so every builder sees its input nets' settled
// initial values. The returned map holds every net.
func Elaborate(nl *Netlist, sim *dtsim.Simulator, initial map[string]bool, wire ChannelBuilder) (map[string]*dtsim.Net, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.Order()
	if err != nil {
		return nil, err
	}
	nets := make(map[string]*dtsim.Net, len(nl.Inputs)+len(nl.Instances))
	for _, name := range nl.Inputs {
		nets[name] = dtsim.NewNet(name, initial[name])
	}
	for _, i := range order {
		inst := nl.Instances[i]
		g, err := gateOf(inst)
		if err != nil {
			return nil, err
		}
		in := make([]*dtsim.Net, len(inst.Inputs))
		for k, net := range inst.Inputs {
			in[k] = nets[net]
		}
		out := dtsim.NewNet(inst.Output, false)
		if err := wire(sim, inst, g, in, out); err != nil {
			return nil, fmt.Errorf("netlist %s: instance %q: %w", nl.label(), inst.Name, err)
		}
		nets[inst.Output] = out
	}
	return nets, nil
}

// WireModel returns the standard channel policy realizing one named
// delay model (gate.ModelInertial, gate.ModelExp, gate.ModelHM or
// gate.ModelHMNoDMin) from a model set:
//
//   - inertial: a pin-aware event-driven inertial gate (the
//     event-driven counterpart of inertial.Arcs.Apply);
//   - exp-channel: a zero-time boolean gate followed by the gate's IDM
//     exp channel with involution cancellation;
//   - hm / hm-no-dmin: the paper's stateful 2-input hybrid channel
//     (available for nor2 instances, whose hybrid model has an
//     event-driven form; other gates' switch-level models are applied
//     offline through the eval pipeline instead).
func WireModel(ms ModelSet, model string) ChannelBuilder {
	return func(sim *dtsim.Simulator, inst Instance, g gate.Gate, in []*dtsim.Net, out *dtsim.Net) error {
		m, err := ms.For(inst)
		if err != nil {
			return err
		}
		switch model {
		case gate.ModelInertial:
			return newArcsGate(sim, inst.Name, m.Inertial, g.Logic, in, out)
		case gate.ModelExp:
			raw := dtsim.NewNet(inst.Name+".raw", false)
			if _, err := dtsim.NewGate(inst.Name, g.Logic, in, raw); err != nil {
				return err
			}
			dtsim.NewChannelWithPolicy(sim, inst.Name+".ch", raw, out, m.Exp, dtsim.PolicyInvolution)
			return nil
		case gate.ModelHM, gate.ModelHMNoDMin:
			hm := m.HM
			if model == gate.ModelHMNoDMin {
				hm = m.HMNoDMin
			}
			nm, ok := hm.(gate.NOR2Model)
			if !ok {
				return fmt.Errorf("netlist: model %s has no event-driven channel for gate %s (supported: nor2)",
					model, g.Name())
			}
			// The same V_N initial fill the offline NOR2Model.Apply uses.
			_, err := hybrid.NewChannel(sim, nm.P, in[0], in[1], out, nm.P.Supply.VDD)
			return err
		}
		return fmt.Errorf("netlist: unknown model %q", model)
	}
}

// arcsGate is the event-driven counterpart of inertial.Arcs.Apply: a
// zero-time boolean gate whose output transitions are deferred by the
// causing pin's arc delay under VHDL inertial cancellation (a new
// transaction replaces the pending one; a transaction restoring the
// committed value kills the pulse).
type arcsGate struct {
	sim   *dtsim.Simulator
	name  string
	arcs  inertial.Arcs
	logic func([]bool) bool
	out   *dtsim.Net

	vals []bool
	cur  bool // zero-time gate value

	pendingID  dtsim.EventID
	hasPending bool
	pendValue  bool
}

// newArcsGate wires the gate and sets the output net's initial value to
// the logic of the inputs' initial values.
func newArcsGate(sim *dtsim.Simulator, name string, arcs inertial.Arcs, logic func([]bool) bool, in []*dtsim.Net, out *dtsim.Net) error {
	if err := arcs.Validate(); err != nil {
		return err
	}
	if len(in) != len(arcs) {
		return fmt.Errorf("netlist: %d input nets for %d arcs", len(in), len(arcs))
	}
	g := &arcsGate{sim: sim, name: name, arcs: arcs, logic: logic, out: out, vals: make([]bool, len(in))}
	for i, n := range in {
		g.vals[i] = n.Value()
	}
	g.cur = logic(g.vals)
	out.SetInitial(g.cur)
	for i, n := range in {
		i := i
		n.OnChange(func(t float64, v bool) { g.onInput(t, i, v) })
	}
	return nil
}

func (g *arcsGate) onInput(t float64, pin int, v bool) {
	g.vals[pin] = v
	nv := g.logic(g.vals)
	if nv == g.cur {
		return
	}
	g.cur = nv
	if g.hasPending {
		g.sim.Cancel(g.pendingID)
		g.hasPending = false
	}
	if nv == g.out.Value() {
		// The replaced transaction restored the committed value: the
		// pulse was too short to transmit.
		return
	}
	d := g.arcs[pin].Rise
	if !nv {
		d = g.arcs[pin].Fall
	}
	id, err := g.sim.Schedule(t+d, func(ft float64) {
		g.hasPending = false
		g.out.Set(ft, g.pendValue)
	})
	if err != nil {
		panic(fmt.Sprintf("netlist: inertial gate %s: %v", g.name, err))
	}
	g.pendingID = id
	g.hasPending = true
	g.pendValue = nv
}
