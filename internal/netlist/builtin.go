package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// InverterChain builds the acceptance circuit of the paper-style MIS
// study lifted to circuits: a 2-input NOR front-end feeding a chain of
// tied-input NOR2 inverters. MIS-induced glitches born at the NOR
// either die inside the chain or propagate to its end, so the per-net
// accuracy report shows how each delay model's error transforms stage
// by stage. stages is the number of inverters (>= 1).
func InverterChain(name string, stages int) (*Netlist, error) {
	if stages < 1 {
		return nil, fmt.Errorf("netlist: inverter chain needs at least one stage, got %d", stages)
	}
	n := &Netlist{Name: name, Inputs: []string{"a", "b"}}
	n.Instances = append(n.Instances, Instance{
		Name: "nor", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "y0",
	})
	for i := 1; i <= stages; i++ {
		prev := fmt.Sprintf("y%d", i-1)
		n.Instances = append(n.Instances, Instance{
			Name:   fmt.Sprintf("inv%d", i),
			Gate:   "nor2",
			Inputs: []string{prev, prev},
			Output: fmt.Sprintf("y%d", i),
		})
	}
	return n, nil
}

// C17 builds the ISCAS-85 c17 benchmark: six 2-input NANDs over five
// primary inputs with two primary outputs. Its reconvergent fanout
// (n11 feeds both g16 and g19, n16 feeds both outputs) makes it the
// smallest standard circuit where per-net model errors interact, which
// is why it is the repository's reconvergent example.
func C17(name string) *Netlist {
	nand := func(inst, a, b, out string) Instance {
		return Instance{Name: inst, Gate: "nand2", Inputs: []string{a, b}, Output: out}
	}
	return &Netlist{
		Name:    name,
		Inputs:  []string{"in1", "in2", "in3", "in6", "in7"},
		Outputs: []string{"out22", "out23"},
		Instances: []Instance{
			nand("g10", "in1", "in3", "n10"),
			nand("g11", "in3", "in6", "n11"),
			nand("g16", "in2", "n11", "n16"),
			nand("g19", "n11", "in7", "n19"),
			nand("g22", "n10", "n16", "out22"),
			nand("g23", "n16", "n19", "out23"),
		},
	}
}

// RippleCarryAdder builds an N-bit ripple-carry adder out of NAND2
// gates only (nine per full-adder bit: a four-NAND XOR for a^b, the
// second XOR against the incoming carry for the sum, and the
// carry-out NAND merging the two generate terms). Primary inputs are
// a0..a(n-1), b0..b(n-1) and cin; recorded outputs are the sum bits
// s0..s(n-1) and the final cout. The carry chain makes the critical
// path grow linearly with the width, so wider instances (rca16 is in
// the ISCAS-85 c432 size class at 144 gates) exercise deep
// reconvergent propagation that c17 cannot.
func RippleCarryAdder(name string, bits int) (*Netlist, error) {
	if bits < 1 {
		return nil, fmt.Errorf("netlist: ripple-carry adder needs at least one bit, got %d", bits)
	}
	n := &Netlist{Name: name, Inputs: []string{"cin"}}
	for i := 0; i < bits; i++ {
		n.Inputs = append(n.Inputs, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	nand := func(inst, a, b, out string) {
		n.Instances = append(n.Instances, Instance{
			Name: inst, Gate: "nand2", Inputs: []string{a, b}, Output: out,
		})
	}
	carry := "cin"
	for i := 0; i < bits; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		p := fmt.Sprintf("fa%d_", i)
		sum := fmt.Sprintf("s%d", i)
		carryOut := "cout"
		if i < bits-1 {
			carryOut = fmt.Sprintf("c%d", i+1)
		}
		// Half sum x = a XOR b via the four-NAND construction.
		nand(p+"g1", a, b, p+"n1")
		nand(p+"g2", a, p+"n1", p+"n2")
		nand(p+"g3", b, p+"n1", p+"n3")
		nand(p+"g4", p+"n2", p+"n3", p+"x")
		// Full sum = x XOR carry-in; n4 doubles as the propagate term.
		nand(p+"g5", p+"x", carry, p+"n4")
		nand(p+"g6", p+"x", p+"n4", p+"n5")
		nand(p+"g7", carry, p+"n4", p+"n6")
		nand(p+"g8", p+"n5", p+"n6", sum)
		// cout = a·b + x·cin, both terms already available inverted.
		nand(p+"g9", p+"n1", p+"n4", carryOut)
		n.Outputs = append(n.Outputs, sum)
		carry = carryOut
	}
	n.Outputs = append(n.Outputs, "cout")
	return n, nil
}

// builtins maps the named example circuits shipped with the CLI.
var builtins = map[string]func() (*Netlist, error){
	"nor-invchain": func() (*Netlist, error) { return InverterChain("nor-invchain", 3) },
	"c17":          func() (*Netlist, error) { return C17("c17"), nil },
	"rca2":         func() (*Netlist, error) { return RippleCarryAdder("rca2", 2) },
	"rca4":         func() (*Netlist, error) { return RippleCarryAdder("rca4", 4) },
	"rca8":         func() (*Netlist, error) { return RippleCarryAdder("rca8", 8) },
	"rca16":        func() (*Netlist, error) { return RippleCarryAdder("rca16", 16) },
}

// BuiltinNames lists the shipped example circuits in sorted order.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns a shipped example circuit by name; unknown names
// error with the available names.
func Builtin(name string) (*Netlist, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown builtin circuit %q (available: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return mk()
}
