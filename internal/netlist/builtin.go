package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// InverterChain builds the acceptance circuit of the paper-style MIS
// study lifted to circuits: a 2-input NOR front-end feeding a chain of
// tied-input NOR2 inverters. MIS-induced glitches born at the NOR
// either die inside the chain or propagate to its end, so the per-net
// accuracy report shows how each delay model's error transforms stage
// by stage. stages is the number of inverters (>= 1).
func InverterChain(name string, stages int) (*Netlist, error) {
	if stages < 1 {
		return nil, fmt.Errorf("netlist: inverter chain needs at least one stage, got %d", stages)
	}
	n := &Netlist{Name: name, Inputs: []string{"a", "b"}}
	n.Instances = append(n.Instances, Instance{
		Name: "nor", Gate: "nor2", Inputs: []string{"a", "b"}, Output: "y0",
	})
	for i := 1; i <= stages; i++ {
		prev := fmt.Sprintf("y%d", i-1)
		n.Instances = append(n.Instances, Instance{
			Name:   fmt.Sprintf("inv%d", i),
			Gate:   "nor2",
			Inputs: []string{prev, prev},
			Output: fmt.Sprintf("y%d", i),
		})
	}
	return n, nil
}

// C17 builds the ISCAS-85 c17 benchmark: six 2-input NANDs over five
// primary inputs with two primary outputs. Its reconvergent fanout
// (n11 feeds both g16 and g19, n16 feeds both outputs) makes it the
// smallest standard circuit where per-net model errors interact, which
// is why it is the repository's reconvergent example.
func C17(name string) *Netlist {
	nand := func(inst, a, b, out string) Instance {
		return Instance{Name: inst, Gate: "nand2", Inputs: []string{a, b}, Output: out}
	}
	return &Netlist{
		Name:    name,
		Inputs:  []string{"in1", "in2", "in3", "in6", "in7"},
		Outputs: []string{"out22", "out23"},
		Instances: []Instance{
			nand("g10", "in1", "in3", "n10"),
			nand("g11", "in3", "in6", "n11"),
			nand("g16", "in2", "n11", "n16"),
			nand("g19", "n11", "in7", "n19"),
			nand("g22", "n10", "n16", "out22"),
			nand("g23", "n16", "n19", "out23"),
		},
	}
}

// builtins maps the named example circuits shipped with the CLI.
var builtins = map[string]func() (*Netlist, error){
	"nor-invchain": func() (*Netlist, error) { return InverterChain("nor-invchain", 3) },
	"c17":          func() (*Netlist, error) { return C17("c17"), nil },
}

// BuiltinNames lists the shipped example circuits in sorted order.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns a shipped example circuit by name; unknown names
// error with the available names.
func Builtin(name string) (*Netlist, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown builtin circuit %q (available: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return mk()
}
