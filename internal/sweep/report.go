package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hybriddelay/internal/eval"
)

// Ratio is a normalized deviation-area ratio that survives JSON: an
// undefined ratio (zero inertial baseline, stored as NaN) encodes as
// null instead of breaking the encoder, and decodes back to NaN.
type Ratio float64

// IsDefined reports whether the ratio has a defined value.
func (r Ratio) IsDefined() bool { return !math.IsNaN(float64(r)) }

// MarshalJSON implements json.Marshaler.
func (r Ratio) MarshalJSON() ([]byte, error) {
	if !r.IsDefined() {
		return []byte("null"), nil
	}
	return json.Marshal(float64(r))
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Ratio) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*r = Ratio(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*r = Ratio(v)
	return nil
}

// csv renders the ratio for the CSV encoder ("NaN" when undefined).
func (r Ratio) csv() string {
	if !r.IsDefined() {
		return "NaN"
	}
	return strconv.FormatFloat(float64(r), 'g', -1, 64)
}

// ScenarioResult is one report row: the scenario's grid coordinates and
// its aggregated accuracy, cache and timing statistics.
type ScenarioResult struct {
	Index       int     `json:"index"`
	Gate        string  `json:"gate"`
	VDDScale    float64 `json:"vdd_scale"`
	LoadScale   float64 `json:"load_scale"`
	Mode        string  `json:"mode"`
	MuPs        float64 `json:"mu_ps"`
	SigmaPs     float64 `json:"sigma_ps"`
	Transitions int     `json:"transitions"`
	Seeds       int     `json:"seeds"`

	// Normalized holds area / inertial area per model (the Fig. 7
	// bars); null/NaN when the inertial baseline is zero.
	Normalized map[string]Ratio `json:"normalized"`

	GoldenEvents int `json:"golden_events"`

	// WorstSeed is the repetition with the largest hybrid-model
	// deviation area (WorstSeedArea, in seconds).
	WorstSeed     int64   `json:"worst_seed"`
	WorstSeedArea float64 `json:"worst_seed_hm_area"`

	// Cache accounting for this scenario's golden lookups against the
	// sweep-wide shared cache.
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`

	// WallSeconds sums the scenario's unit evaluation times (CPU-side
	// wall time; cleared by ClearTimings for deterministic comparison).
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is the outcome of one sweep: per-scenario rows in grid order
// plus grid-wide totals. A report deliberately carries no run metadata
// that depends on the worker count — after ClearTimings, two runs of
// the same spec (with equally warm caches) encode byte-identically no
// matter how they were scheduled.
type Report struct {
	Seeds       []int64          `json:"seeds"`
	ModelNames  []string         `json:"model_names"`
	Scenarios   []ScenarioResult `json:"scenarios"`
	TotalUnits  int              `json:"total_units"`
	Cache       eval.CacheStats  `json:"cache"`
	WallSeconds float64          `json:"wall_seconds"`
}

// ClearTimings zeroes every wall-time field, leaving only the
// deterministic content. Two sweeps of the same spec compare equal
// after ClearTimings regardless of worker count or machine load.
func (r *Report) ClearTimings() {
	r.WallSeconds = 0
	for i := range r.Scenarios {
		r.Scenarios[i].WallSeconds = 0
	}
}

// WriteJSON encodes the report as indented JSON. The encoding is
// deterministic: struct fields keep declaration order and map keys are
// sorted by encoding/json.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVHeader lists the CSV columns in emission order. Per-model
// normalized ratios expand into one norm_<model> column each, in the
// report's model order.
func (r *Report) CSVHeader() []string {
	cols := []string{
		"index", "gate", "vdd_scale", "load_scale", "mode",
		"mu_ps", "sigma_ps", "transitions", "seeds",
	}
	for _, name := range r.ModelNames {
		cols = append(cols, "norm_"+name)
	}
	return append(cols,
		"golden_events", "worst_seed", "worst_seed_hm_area_ps",
		"cache_hits", "cache_misses", "hit_rate", "wall_ms")
}

// WriteCSV encodes the per-scenario rows as CSV with the CSVHeader
// columns. Like WriteJSON it is deterministic for a fixed report.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(r.CSVHeader(), ",")); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Scenarios {
		cols := []string{
			strconv.Itoa(s.Index), s.Gate, g(s.VDDScale), g(s.LoadScale), s.Mode,
			g(s.MuPs), g(s.SigmaPs), strconv.Itoa(s.Transitions), strconv.Itoa(s.Seeds),
		}
		for _, name := range r.ModelNames {
			ratio, ok := s.Normalized[name]
			if !ok {
				ratio = Ratio(math.NaN())
			}
			cols = append(cols, ratio.csv())
		}
		cols = append(cols,
			strconv.Itoa(s.GoldenEvents),
			strconv.FormatInt(s.WorstSeed, 10),
			g(s.WorstSeedArea/1e-12),
			strconv.FormatInt(s.CacheHits, 10),
			strconv.FormatInt(s.CacheMisses, 10),
			g(s.HitRate),
			g(s.WallSeconds*1e3),
		)
		// Fields in this report never contain commas or quotes, so
		// plain joining stays valid CSV and byte-stable.
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ParseSpec decodes a sweep grid file (the `hybridlab sweep -grid`
// format): a JSON Spec with times in seconds and modes by name, e.g.
//
//	{
//	  "gates": ["nor2", "nand2"],
//	  "vdd_scale": [1.0, 0.9],
//	  "stimuli": [
//	    {"mode": "LOCAL",  "mu": 100e-12, "sigma": 50e-12, "transitions": 500},
//	    {"mode": "GLOBAL", "mu": 2000e-12, "sigma": 1000e-12, "transitions": 500}
//	  ],
//	  "seed_count": 5
//	}
func ParseSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("sweep: parsing grid spec: %w", err)
	}
	return spec, nil
}
