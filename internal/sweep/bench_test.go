package sweep

// Wall-time trajectory of the sweep engine over a representative grid
// (2 gates × 2 VDD points × 2 stimulus flavours, 2 seeds): the serial
// and pooled schedules of the same unit list, plus the warm-cache
// steady state where every golden transient is served from memory.

import (
	"runtime"
	"testing"
	"time"

	"hybriddelay/internal/eval"
)

func benchSpec() Spec {
	return testSpec(12)
}

func BenchmarkRunSweep(b *testing.B) {
	workers := map[string]int{"serial": 1, "pooled": runtime.GOMAXPROCS(0)}
	for _, name := range []string{"serial", "pooled"} {
		b.Run(name, func(b *testing.B) {
			spec := benchSpec()
			b.ResetTimer()
			start := time.Now()
			var units int
			for i := 0; i < b.N; i++ {
				rep, err := RunSweep(spec, &Options{Workers: workers[name]})
				if err != nil {
					b.Fatal(err)
				}
				units = rep.TotalUnits
			}
			perIter := time.Since(start).Seconds() / float64(b.N)
			b.StopTimer()
			b.ReportMetric(float64(units)/perIter, "units_per_s")
			b.ReportMetric(float64(workers[name]), "workers")
		})
	}
}

func BenchmarkRunSweepCached(b *testing.B) {
	spec := benchSpec()
	cache := eval.NewGoldenCache()
	if _, err := RunSweep(spec, &Options{Cache: cache}); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(spec, &Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
	perIter := time.Since(start).Seconds() / float64(b.N)
	b.StopTimer()
	st := cache.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
	b.ReportMetric(perIter*1e3, "ms_per_sweep")
}
