// Package sweep turns the single-operating-point accuracy study of
// paper §VI (Fig. 7) into a scenario-exploration engine: a declarative
// grid of scenario axes — gate topology (single gates and whole
// netlist circuits), supply-voltage scaling, output load scaling,
// stimulus configuration and seed count — expands into individual
// scenarios, which are evaluated through the gate-generic pipeline of
// internal/eval on one shared bounded worker pool. Circuit scenarios
// run the circuit-level pipeline (composed analog golden, per-net
// scoring summed into the report row) and share their member gates'
// measured operating points with the gate axis.
//
// The engine reuses the existing evaluation machinery end to end: each
// scenario's operating point is prepared with Gate.NewBench / Measure /
// BuildModels, each (scenario, seed) unit runs eval.EvaluateSeed, and
// golden traces are memoized in a single eval.GoldenCache shared across
// the whole grid. Cache keys incorporate the scenario's bench
// parameters (the scaled supply and load are part of nor.Params), so
// distinct operating points never collide even though they share one
// cache. Results are merged deterministically in grid order: for a
// fixed spec the Report — including its JSON and CSV encodings — is
// bit-identical regardless of the worker count.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gate"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/netlist"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/pool"
	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// Stimulus is one point on the stimulus axis: a waveform-generation
// configuration without the input count (which each gate supplies from
// its arity). Times are seconds, as everywhere in the repository.
type Stimulus struct {
	Mode        gen.Mode `json:"mode"`              // LOCAL or GLOBAL
	Mu          float64  `json:"mu"`                // mean transition gap [s]
	Sigma       float64  `json:"sigma"`             // gap standard deviation [s]
	Transitions int      `json:"transitions"`       // transitions per run
	Start       float64  `json:"start,omitempty"`   // first-transition time [s]; default 200 ps
	MinGap      float64  `json:"min_gap,omitempty"` // lower gap clamp [s]; default 1 ps
}

// Name renders the paper-style label, e.g. "100/50 - LOCAL".
func (s Stimulus) Name() string {
	return fmt.Sprintf("%.0f/%.0f - %s", s.Mu/waveform.Pico, s.Sigma/waveform.Pico, s.Mode)
}

// Spec is the declarative scenario grid. The expanded grid is the cross
// product Gates × VDDScale × LoadScale × Stimuli, each evaluated over
// the same seed list; empty scale axes default to {1} and an empty seed
// list defaults to SeedCount consecutive seeds from BaseSeed.
//
// A Spec round-trips through JSON (the `hybridlab sweep -grid` file
// format); the bench base parameters are programmatic only and default
// to the calibrated testbench.
type Spec struct {
	// Gates lists registry names ("nor2", "nand2", "nor3"). Empty
	// defaults to the default gate unless Circuits are given.
	Gates []string `json:"gates,omitempty"`

	// Circuits lists multi-gate netlists swept as circuit-level
	// scenarios alongside the single gates: each circuit crosses the
	// same VDD/load/stimulus axes (the stimulus drives the circuit's
	// primary inputs), is scored through the composed analog golden,
	// and reports the deviation areas summed over its recorded nets
	// (per-net detail is available through eval.EvaluateCircuit). Every
	// circuit needs a unique name; its report rows appear under
	// "circuit:<name>".
	Circuits []netlist.Netlist `json:"circuits,omitempty"`

	// VDDScale lists supply-voltage scale factors applied to both VDD
	// and the logic threshold of the base bench supply (the threshold
	// stays at its relative position). Empty defaults to {1}.
	VDDScale []float64 `json:"vdd_scale,omitempty"`

	// LoadScale lists output-load scale factors applied to the bench's
	// output capacitance CO. Empty defaults to {1}.
	LoadScale []float64 `json:"load_scale,omitempty"`

	// Stimuli lists the waveform configurations to cross with the
	// operating points. Required.
	Stimuli []Stimulus `json:"stimuli"`

	// Seeds is the explicit seed list evaluated per scenario. When
	// empty, SeedCount consecutive seeds starting at BaseSeed are used
	// (defaults: 1 seed from base 1).
	Seeds     []int64 `json:"seeds,omitempty"`
	SeedCount int     `json:"seed_count,omitempty"`
	BaseSeed  int64   `json:"base_seed,omitempty"`

	// ExpDMin is the exp channel's empirical pure delay; default 20 ps.
	ExpDMin float64 `json:"exp_dmin,omitempty"`

	// Bench overrides the base testbench parameters the scale axes are
	// applied to; nil selects nor.DefaultParams().
	Bench *nor.Params `json:"-"`
}

// Scenario is one expanded grid point: a gate — or a whole circuit —
// at one operating point under one stimulus configuration.
type Scenario struct {
	Index     int        // position in grid order
	Gate      string     // registry name, or "circuit:<name>" for circuit rows
	VDDScale  float64    // applied supply scale
	LoadScale float64    // applied output-load scale
	Stimulus  Stimulus   // stimulus-axis point
	Params    nor.Params // fully scaled bench parameters
	Config    gen.Config // derived generator configuration (Inputs = arity)

	// Circuit is the swept netlist for circuit rows, nil for gate rows.
	Circuit *netlist.Netlist
}

// Name renders a compact scenario label for progress and reports.
func (s Scenario) Name() string {
	return fmt.Sprintf("%s vdd=%.2f load=%.2f %s", s.Gate, s.VDDScale, s.LoadScale, s.Stimulus.Name())
}

// SeedList resolves the spec's effective seeds: the explicit Seeds
// list, or SeedCount consecutive seeds from BaseSeed (defaults: one
// seed from base 1).
func (s Spec) SeedList() []int64 {
	if len(s.Seeds) > 0 {
		return append([]int64(nil), s.Seeds...)
	}
	count := s.SeedCount
	if count <= 0 {
		count = 1
	}
	base := s.BaseSeed
	if base == 0 {
		base = 1
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// expDMin resolves the exp channel's pure delay.
func (s Spec) expDMin() float64 {
	if s.ExpDMin > 0 {
		return s.ExpDMin
	}
	return 20 * waveform.Pico
}

// baseParams resolves the base bench parameters.
func (s Spec) baseParams() nor.Params {
	if s.Bench != nil {
		return *s.Bench
	}
	return nor.DefaultParams()
}

// scaleParams applies one operating point's scale factors to the base
// bench parameters: the supply (VDD and threshold together, keeping the
// discretization point at the same relative level) and the output load.
func scaleParams(base nor.Params, vddScale, loadScale float64) nor.Params {
	p := base
	p.Supply.VDD *= vddScale
	p.Supply.Vth *= vddScale
	p.CO *= loadScale
	return p
}

// Expand validates the spec and expands it into scenarios in grid order
// (gate-major, then VDD scale, load scale and stimulus; circuit rows
// follow the gate rows in the same axis order).
func Expand(spec Spec) ([]Scenario, error) {
	gates := spec.Gates
	if len(gates) == 0 && len(spec.Circuits) == 0 {
		gates = []string{gate.Default().Name()}
	}
	seenCirc := map[string]bool{}
	for i := range spec.Circuits {
		nl := &spec.Circuits[i]
		if nl.Name == "" {
			return nil, fmt.Errorf("sweep: circuit %d needs a name", i)
		}
		if seenCirc[nl.Name] {
			return nil, fmt.Errorf("sweep: circuit %q listed twice", nl.Name)
		}
		seenCirc[nl.Name] = true
		if err := nl.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	arities := make(map[string]int, len(gates))
	seen := map[string]bool{}
	for _, name := range gates {
		if seen[name] {
			return nil, fmt.Errorf("sweep: gate %q listed twice", name)
		}
		seen[name] = true
		g, err := gate.Find(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		arities[name] = g.Arity()
	}
	vdds := spec.VDDScale
	if len(vdds) == 0 {
		vdds = []float64{1}
	}
	loads := spec.LoadScale
	if len(loads) == 0 {
		loads = []float64{1}
	}
	// Duplicate axis values would expand into scenarios with identical
	// golden-cache keys; their singleflighted lookups would then be
	// attributed to whichever scenario ran first, making the per-scenario
	// hit/miss columns depend on scheduling — so duplicates are rejected
	// on every axis, not just gates.
	seenVDD := map[float64]bool{}
	for _, v := range vdds {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sweep: invalid VDD scale %g", v)
		}
		if seenVDD[v] {
			return nil, fmt.Errorf("sweep: VDD scale %g listed twice", v)
		}
		seenVDD[v] = true
	}
	seenLoad := map[float64]bool{}
	for _, l := range loads {
		if !(l > 0) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("sweep: invalid load scale %g", l)
		}
		if seenLoad[l] {
			return nil, fmt.Errorf("sweep: load scale %g listed twice", l)
		}
		seenLoad[l] = true
	}
	if len(spec.Stimuli) == 0 {
		return nil, fmt.Errorf("sweep: no stimuli supplied")
	}
	seenStim := map[Stimulus]bool{}
	for i, st := range spec.Stimuli {
		if st.Mu <= 0 || st.Sigma < 0 {
			return nil, fmt.Errorf("sweep: stimulus %d: invalid gap distribution mu=%g sigma=%g", i, st.Mu, st.Sigma)
		}
		if st.Transitions < 1 {
			return nil, fmt.Errorf("sweep: stimulus %d: need at least one transition", i)
		}
		if st.Mode != gen.Local && st.Mode != gen.Global {
			return nil, fmt.Errorf("sweep: stimulus %d: unknown mode %d", i, int(st.Mode))
		}
		if seenStim[st] {
			return nil, fmt.Errorf("sweep: stimulus %d (%s, %d transitions) listed twice", i, st.Name(), st.Transitions)
		}
		seenStim[st] = true
	}
	seenSeed := map[int64]bool{}
	for _, s := range spec.SeedList() {
		if seenSeed[s] {
			return nil, fmt.Errorf("sweep: seed %d listed twice", s)
		}
		seenSeed[s] = true
	}
	base := spec.baseParams()
	out := make([]Scenario, 0, (len(gates)+len(spec.Circuits))*len(vdds)*len(loads)*len(spec.Stimuli))
	add := func(label string, inputs int, circuit *netlist.Netlist) {
		for _, vdd := range vdds {
			for _, load := range loads {
				for _, st := range spec.Stimuli {
					stim := st
					if stim.Start <= 0 {
						stim.Start = 200 * waveform.Pico
					}
					out = append(out, Scenario{
						Index:     len(out),
						Gate:      label,
						VDDScale:  vdd,
						LoadScale: load,
						Stimulus:  stim,
						Params:    scaleParams(base, vdd, load),
						Circuit:   circuit,
						Config: gen.Config{
							Mu:          stim.Mu,
							Sigma:       stim.Sigma,
							Mode:        stim.Mode,
							Inputs:      inputs,
							Transitions: stim.Transitions,
							Start:       stim.Start,
							MinGap:      stim.MinGap,
						},
					})
				}
			}
		}
	}
	for _, name := range gates {
		add(name, arities[name], nil)
	}
	for i := range spec.Circuits {
		nl := &spec.Circuits[i]
		add("circuit:"+nl.Name, len(nl.Inputs), nl)
	}
	return out, nil
}

// Phase names reported through Progress.
const (
	PhasePrepare = "prepare" // operating-point preparation (bench, measurement, fits)
	PhaseEval    = "eval"    // (scenario, seed) evaluation units
)

// Progress describes one completed step of a running sweep.
type Progress struct {
	Phase     string // PhasePrepare or PhaseEval
	Scenario  int    // scenario index (eval phase; -1 during prepare)
	Seed      int64  // seed of the completed unit (eval phase)
	Completed int    // steps of this phase finished so far
	Total     int    // total steps of this phase
	Err       error  // the step's error, if any
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the single worker pool shared by every scenario
	// (both the prepare and the evaluation phase). Zero or negative
	// selects runtime.GOMAXPROCS(0).
	Workers int

	// Cache, when non-nil, memoizes golden traces across the whole grid
	// (and across RunSweep calls). When nil, RunSweep creates a private
	// cache so hit rates are still reported.
	Cache *eval.GoldenCache

	// Params, when non-nil, memoizes prepared operating points (bench
	// construction, characteristic measurement, model fits) across
	// RunSweep calls — a sweep revisiting an operating point a previous
	// sweep (or gate/circuit evaluation through the same session)
	// already measured skips the whole preparation phase for it. When
	// nil, RunSweep prepares privately; within one call each unique
	// operating point is prepared only once either way.
	Params *eval.ParamCache

	// Progress, when non-nil, is invoked after each completed step.
	// Calls are serialized; steps may complete in any order.
	Progress func(Progress)
}

// opKey identifies one operating point: everything that determines the
// bench and model preparation, but not the stimulus.
type opKey struct {
	gate      string
	vddScale  float64
	loadScale float64
}

// opPoint carries one prepared operating point.
type opPoint struct {
	key    opKey
	params nor.Params
	models eval.Models
	golden *eval.BenchSource
}

// adopt copies a prepared (possibly cache-shared) operating point into
// the sweep-local slot.
func (pt *opPoint) adopt(op *eval.OperatingPoint) {
	pt.models = op.Models
	pt.golden = op.Golden
}

// circuitKey identifies one circuit operating point.
type circuitKey struct {
	circuit   string
	vddScale  float64
	loadScale float64
}

// circuitPoint carries one prepared circuit operating point: the
// pooled composed bench and the per-gate model set assembled from the
// already-prepared single-gate operating points.
type circuitPoint struct {
	params nor.Params
	models netlist.ModelSet
	golden *eval.CircuitBenchSource
}

// memberGates lists the distinct resolved gate names a netlist uses,
// in instance order.
func memberGates(nl *netlist.Netlist) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, inst := range nl.Instances {
		g, err := gate.Find(inst.Gate)
		if err != nil {
			return nil, err
		}
		if !seen[g.Name()] {
			seen[g.Name()] = true
			out = append(out, g.Name())
		}
	}
	return out, nil
}

// trackedSource adapts one scenario's golden lookups onto the shared
// cache, attributing hits and misses to the scenario.
type trackedSource struct {
	gate   string
	bench  nor.Params
	cache  *eval.GoldenCache
	src    eval.GoldenSource
	hits   *atomic.Int64
	misses *atomic.Int64
}

// Golden implements eval.GoldenSource.
func (s trackedSource) Golden(req eval.GoldenRequest) (trace.Trace, error) {
	key := eval.GoldenKey{Gate: s.gate, Bench: s.bench, Config: req.Config, Seed: req.Seed}
	out, hit, err := s.cache.GetOrComputeTracked(key, func() (trace.Trace, error) {
		return s.src.Golden(req)
	})
	if err == nil {
		if hit {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
	}
	return out, err
}

// Lease implements eval.Leaser by leasing the underlying bench pool
// when it supports leasing, so batched sweep units pin one warm bench;
// tracking and the shared cache stay in front.
func (s trackedSource) Lease() (eval.GoldenSource, func(), error) {
	l, ok := s.src.(eval.Leaser)
	if !ok {
		return s, func() {}, nil
	}
	inner, release, err := l.Lease()
	if err != nil {
		return nil, nil, err
	}
	leased := s
	leased.src = inner
	return leased, release, nil
}

// trackedCircuitSource is the circuit counterpart of trackedSource:
// composed golden trace sets looked up in the shared cache under the
// netlist content key, with per-scenario hit attribution.
type trackedCircuitSource struct {
	key    string // netlist content key
	bench  nor.Params
	cache  *eval.GoldenCache
	src    eval.CircuitGoldenSource
	hits   *atomic.Int64
	misses *atomic.Int64
}

// GoldenNets implements eval.CircuitGoldenSource.
func (s trackedCircuitSource) GoldenNets(req eval.GoldenRequest) (map[string]trace.Trace, error) {
	out, hit, err := s.cache.GetOrComputeSet(eval.CircuitKey(s.key, s.bench, req.Config, req.Seed),
		func() (map[string]trace.Trace, error) { return s.src.GoldenNets(req) })
	if err == nil {
		if hit {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
	}
	return out, err
}

// LeaseCircuit implements eval.CircuitLeaser; see trackedSource.Lease.
func (s trackedCircuitSource) LeaseCircuit() (eval.CircuitGoldenSource, func(), error) {
	l, ok := s.src.(eval.CircuitLeaser)
	if !ok {
		return s, func() {}, nil
	}
	inner, release, err := l.LeaseCircuit()
	if err != nil {
		return nil, nil, err
	}
	leased := s
	leased.src = inner
	return leased, release, nil
}

// circuitToSeedResult folds a per-net circuit unit result into the flat
// per-model shape the sweep report aggregates: areas and golden events
// summed over the recorded nets, in net and model order (deterministic
// floating-point sums).
func circuitToSeedResult(cr eval.CircuitSeedResult) eval.SeedResult {
	out := eval.SeedResult{Config: cr.Config, Seed: cr.Seed, Area: map[string]float64{}}
	for _, net := range cr.Nets {
		out.GoldenEv += cr.GoldenEv[net]
		for _, model := range eval.ModelNames {
			out.Area[model] += cr.Area[net][model]
		}
	}
	return out
}

// RunSweep expands the spec and evaluates every scenario. All scenarios
// share one bounded worker pool and one golden-trace cache; per-scenario
// results are merged in seed order and reported in grid order, so the
// report is independent of the worker count. On the first failing step
// the pool stops picking up new work and the error of the earliest
// failed step (grid-major, seed-minor) is returned.
func RunSweep(spec Spec, opt *Options) (*Report, error) {
	return RunSweepContext(context.Background(), spec, opt)
}

// RunSweepContext is RunSweep with cancellation: once ctx is done no
// new preparation or evaluation units are claimed, in-flight units stop
// at their next stage boundary, and ctx.Err() is returned.
func RunSweepContext(ctx context.Context, spec Spec, opt *Options) (*Report, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Cache == nil {
		o.Cache = eval.NewGoldenCache()
	}
	if o.Params == nil {
		o.Params = eval.NewParamCache()
	}
	scenarios, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	seeds := spec.SeedList()
	start := time.Now()

	points, err := preparePoints(ctx, scenarios, spec.expDMin(), o)
	if err != nil {
		return nil, err
	}
	cpoints, err := prepareCircuitPoints(scenarios, points)
	if err != nil {
		return nil, err
	}

	// One flat unit list over the whole grid: scenario-major (grid
	// order), seed-minor — exactly the eval runner's schedule, lifted
	// over scenarios so every scenario shares the same worker budget.
	total := len(scenarios) * len(seeds)
	parts := make([]eval.SeedResult, total)
	errs := make([]error, total)
	scenarioHits := make([]atomic.Int64, len(scenarios))
	scenarioMisses := make([]atomic.Int64, len(scenarios))
	scenarioNanos := make([]atomic.Int64, len(scenarios))
	sources := make([]eval.GoldenSource, len(scenarios))
	csources := make([]eval.CircuitGoldenSource, len(scenarios))
	for i, sc := range scenarios {
		if sc.Circuit != nil {
			cp := cpoints[circuitKey{sc.Circuit.Name, sc.VDDScale, sc.LoadScale}]
			csources[i] = trackedCircuitSource{
				key:    sc.Circuit.ContentKey(),
				bench:  cp.params,
				cache:  o.Cache,
				src:    cp.golden,
				hits:   &scenarioHits[i],
				misses: &scenarioMisses[i],
			}
			continue
		}
		pt := points[opKey{sc.Gate, sc.VDDScale, sc.LoadScale}]
		sources[i] = trackedSource{
			gate:   sc.Gate,
			bench:  pt.params,
			cache:  o.Cache,
			src:    pt.golden,
			hits:   &scenarioHits[i],
			misses: &scenarioMisses[i],
		}
	}

	var progressMu sync.Mutex
	completed := 0
	unitDone := func(i int, err error) {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		o.Progress(Progress{
			Phase: PhaseEval, Scenario: i / len(seeds), Seed: seeds[i%len(seeds)],
			Completed: completed, Total: total, Err: err,
		})
		progressMu.Unlock()
	}
	// Workers claim batches of consecutive units; within a batch, runs
	// of units sharing a scenario lease one bench (see eval.Leaser), so
	// the seed-minor schedule keeps a warm solver workspace pinned per
	// scenario. Results stay index-addressed, so batching cannot change
	// the merge or the winning error.
	batch := (total + 2*o.Workers - 1) / (2 * o.Workers)
	if batch < 1 {
		batch = 1
	}
	nBatches := (total + batch - 1) / batch
	ctxErr := pool.RunContext(ctx, nBatches, o.Workers, func(bi int) error {
		lo := bi * batch
		hi := lo + batch
		if hi > total {
			hi = total
		}
		var (
			leaseSi      = -1
			leaseRelease func()
			leaseSrc     eval.GoldenSource
			leaseCSrc    eval.CircuitGoldenSource
		)
		defer func() {
			if leaseRelease != nil {
				leaseRelease()
			}
		}()
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			si := i / len(seeds)
			sc := scenarios[si]
			if si != leaseSi {
				if leaseRelease != nil {
					leaseRelease()
					leaseRelease = nil
				}
				leaseSi = si
				if sc.Circuit != nil {
					leaseCSrc = csources[si]
					if l, ok := leaseCSrc.(eval.CircuitLeaser); ok {
						if leased, release, err := l.LeaseCircuit(); err == nil {
							leaseCSrc, leaseRelease = leased, release
						}
					}
				} else {
					leaseSrc = sources[si]
					if l, ok := leaseSrc.(eval.Leaser); ok {
						if leased, release, err := l.Lease(); err == nil {
							leaseSrc, leaseRelease = leased, release
						}
					}
				}
			}
			unitStart := time.Now()
			if sc.Circuit != nil {
				cp := cpoints[circuitKey{sc.Circuit.Name, sc.VDDScale, sc.LoadScale}]
				var cres eval.CircuitSeedResult
				cres, errs[i] = eval.EvaluateCircuitSeedContext(ctx, leaseCSrc, sc.Circuit, cp.models, sc.Config, seeds[i%len(seeds)])
				parts[i] = circuitToSeedResult(cres)
			} else {
				parts[i], errs[i] = eval.EvaluateSeedContext(ctx, leaseSrc, points[opKey{sc.Gate, sc.VDDScale, sc.LoadScale}].models, sc.Config, seeds[i%len(seeds)])
			}
			scenarioNanos[si].Add(time.Since(unitStart).Nanoseconds())
			unitDone(i, errs[i])
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}, nil)
	for i, err := range errs {
		if err != nil && !(ctxErr != nil && eval.IsContextErr(err)) {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i/len(seeds), scenarios[i/len(seeds)].Name(), err)
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	rep := &Report{
		Seeds:      seeds,
		ModelNames: append([]string(nil), eval.ModelNames...),
		Scenarios:  make([]ScenarioResult, len(scenarios)),
		TotalUnits: total,
	}
	for si, sc := range scenarios {
		merged := eval.MergeSeedResults(sc.Config, parts[si*len(seeds):(si+1)*len(seeds)])
		rep.Scenarios[si] = buildScenarioResult(sc, merged, parts[si*len(seeds):(si+1)*len(seeds)],
			scenarioHits[si].Load(), scenarioMisses[si].Load(), scenarioNanos[si].Load())
	}
	rep.Cache = o.Cache.Stats()
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// preparePoints resolves each unique operating point (gate, VDD scale,
// load scale) once — bench construction, characteristic measurement and
// model fitting, served from the options' parametrization cache when an
// earlier run already prepared the point — on the shared worker budget.
// Circuit scenarios contribute the operating points of their member
// gates, so a circuit sharing a gate with the gate axis (or with
// another circuit) measures and fits that gate only once.
func preparePoints(ctx context.Context, scenarios []Scenario, expDMin float64, o Options) (map[opKey]*opPoint, error) {
	points := map[opKey]*opPoint{}
	var order []opKey
	add := func(gname string, sc Scenario) {
		key := opKey{gname, sc.VDDScale, sc.LoadScale}
		if _, ok := points[key]; !ok {
			points[key] = &opPoint{key: key, params: sc.Params}
			order = append(order, key)
		}
	}
	for _, sc := range scenarios {
		if sc.Circuit != nil {
			members, err := memberGates(sc.Circuit)
			if err != nil {
				return nil, fmt.Errorf("sweep: circuit %q: %w", sc.Circuit.Name, err)
			}
			for _, gname := range members {
				add(gname, sc)
			}
			continue
		}
		add(sc.Gate, sc)
	}
	errs := make([]error, len(order))
	var onDone func(i, completed int, err error)
	if o.Progress != nil {
		onDone = func(i, completed int, err error) {
			o.Progress(Progress{
				Phase: PhasePrepare, Scenario: -1,
				Completed: completed, Total: len(order), Err: err,
			})
		}
	}
	ctxErr := pool.RunContext(ctx, len(order), o.Workers, func(i int) error {
		errs[i] = preparePoint(ctx, points[order[i]], expDMin, o.Params)
		return errs[i]
	}, onDone)
	for i, err := range errs {
		// Only collapse context-flavoured errors into this run's own
		// cancellation; a live run must surface them as real failures
		// (an unprepared point would otherwise flow into evaluation).
		if err != nil && !(ctxErr != nil && eval.IsContextErr(err)) {
			k := order[i]
			return nil, fmt.Errorf("sweep: operating point %s vdd=%.2f load=%.2f: %w", k.gate, k.vddScale, k.loadScale, err)
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return points, nil
}

// preparePoint resolves one operating point through the parametrization
// cache: the measurement and fits run at most once per (gate, scaled
// bench parameters, expDMin) — concurrent preparations of the same
// point, and later sweeps through the same cache, share the result.
func preparePoint(ctx context.Context, pt *opPoint, expDMin float64, cache *eval.ParamCache) error {
	g, err := gate.Find(pt.key.gate)
	if err != nil {
		return err
	}
	op, err := cache.OperatingPoint(ctx, g, pt.params, expDMin)
	if err != nil {
		return err
	}
	pt.adopt(op)
	return nil
}

// prepareCircuitPoints flattens each unique circuit operating point
// (circuit, VDD scale, load scale) into a pooled composed bench and
// assembles its per-gate model set from the prepared single-gate
// points. Flattening is pure netlist work (no analog runs), so it
// stays serial.
func prepareCircuitPoints(scenarios []Scenario, points map[opKey]*opPoint) (map[circuitKey]*circuitPoint, error) {
	cpoints := map[circuitKey]*circuitPoint{}
	for _, sc := range scenarios {
		if sc.Circuit == nil {
			continue
		}
		key := circuitKey{sc.Circuit.Name, sc.VDDScale, sc.LoadScale}
		if _, ok := cpoints[key]; ok {
			continue
		}
		members, err := memberGates(sc.Circuit)
		if err != nil {
			return nil, fmt.Errorf("sweep: circuit %q: %w", sc.Circuit.Name, err)
		}
		models := netlist.ModelSet{}
		for _, gname := range members {
			models[gname] = points[opKey{gname, sc.VDDScale, sc.LoadScale}].models
		}
		bench, err := netlist.NewBench(sc.Circuit, sc.Params)
		if err != nil {
			return nil, fmt.Errorf("sweep: circuit %q vdd=%.2f load=%.2f: %w",
				sc.Circuit.Name, sc.VDDScale, sc.LoadScale, err)
		}
		cpoints[key] = &circuitPoint{
			params: sc.Params,
			models: models,
			golden: eval.NewCircuitBenchSource(bench),
		}
	}
	return cpoints, nil
}

// buildScenarioResult folds one scenario's merged and per-seed results
// into the report row.
func buildScenarioResult(sc Scenario, merged eval.RunResult, parts []eval.SeedResult, hits, misses, nanos int64) ScenarioResult {
	res := ScenarioResult{
		Index:        sc.Index,
		Gate:         sc.Gate,
		VDDScale:     sc.VDDScale,
		LoadScale:    sc.LoadScale,
		Mode:         sc.Stimulus.Mode.String(),
		MuPs:         sc.Stimulus.Mu / waveform.Pico,
		SigmaPs:      sc.Stimulus.Sigma / waveform.Pico,
		Transitions:  sc.Stimulus.Transitions,
		Seeds:        len(parts),
		Normalized:   map[string]Ratio{},
		GoldenEvents: merged.GoldenEv,
		CacheHits:    hits,
		CacheMisses:  misses,
		WallSeconds:  float64(nanos) / 1e9,
	}
	//hybrid:nondet-ok map-to-map copy with distinct keys; the report JSON/CSV encoders emit models in sorted/declared order
	for name, v := range merged.Normalized {
		res.Normalized[name] = Ratio(v)
	}
	if lookups := hits + misses; lookups > 0 {
		res.HitRate = float64(hits) / float64(lookups)
	}
	// Worst-case seed: the repetition with the largest hybrid-model
	// deviation area (absolute, so a zero inertial baseline cannot make
	// the ranking undefined). Ties keep the earliest seed.
	for i, p := range parts {
		area := p.Area[eval.ModelHM]
		if i == 0 || area > res.WorstSeedArea {
			res.WorstSeed = p.Seed
			res.WorstSeedArea = area
		}
	}
	return res
}
