package sweep

import (
	"bytes"
	"strings"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/netlist"
)

// circuitSpec crosses one gate and one circuit over the stimulus axis.
func circuitSpec(transitions int) Spec {
	return Spec{
		Gates:    []string{"nor2"},
		Circuits: []netlist.Netlist{*mustChain(2)},
		Stimuli:  testStimuli(transitions)[:1],
		Seeds:    []int64{1, 2},
		Bench:    fastBench(),
	}
}

func mustChain(stages int) *netlist.Netlist {
	nl, err := netlist.InverterChain("chain", stages)
	if err != nil {
		panic(err)
	}
	return nl
}

func TestExpandCircuitAxis(t *testing.T) {
	spec := circuitSpec(10)
	scenarios, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("expanded %d scenarios, want 2 (one gate + one circuit)", len(scenarios))
	}
	if scenarios[0].Circuit != nil || scenarios[0].Gate != "nor2" {
		t.Errorf("scenario 0 = %+v, want the gate row first", scenarios[0])
	}
	if scenarios[1].Circuit == nil || scenarios[1].Gate != "circuit:chain" {
		t.Errorf("scenario 1 = %+v, want the circuit row", scenarios[1])
	}
	if got := scenarios[1].Config.Inputs; got != 2 {
		t.Errorf("circuit stimulus inputs = %d, want the netlist's primary input count 2", got)
	}

	// Circuits-only spec: no default gate is injected.
	only := spec
	only.Gates = nil
	scenarios, err = Expand(only)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Circuit == nil {
		t.Errorf("circuits-only spec expanded to %+v, want one circuit row", scenarios)
	}
}

func TestExpandCircuitValidation(t *testing.T) {
	bad := circuitSpec(10)
	bad.Circuits[0].Name = ""
	if _, err := Expand(bad); err == nil || !strings.Contains(err.Error(), "needs a name") {
		t.Errorf("unnamed circuit error = %v", err)
	}
	dup := circuitSpec(10)
	dup.Circuits = append(dup.Circuits, dup.Circuits[0])
	if _, err := Expand(dup); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate circuit error = %v", err)
	}
	cyc := circuitSpec(10)
	cyc.Circuits[0].Instances[1].Inputs = []string{"y2", "y2"}
	if _, err := Expand(cyc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cyclic circuit error = %v", err)
	}
	unknown := circuitSpec(10)
	unknown.Circuits[0].Instances[0].Gate = "bogus"
	if _, err := Expand(unknown); err == nil || !strings.Contains(err.Error(), "unknown gate") {
		t.Errorf("unknown member gate error = %v", err)
	}
}

// TestRunSweepCircuitAxis runs a mixed gate + circuit grid and checks
// the circuit rows aggregate per-net scores, share the gate axis'
// prepared operating points, and stay deterministic across worker
// counts (byte-identical reports, also under -race).
func TestRunSweepCircuitAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := circuitSpec(10)
	cache := eval.NewGoldenCache()
	baseline, err := RunSweep(spec, &Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Scenarios) != 2 {
		t.Fatalf("report has %d rows, want 2", len(baseline.Scenarios))
	}
	row := baseline.Scenarios[1]
	if row.Gate != "circuit:chain" {
		t.Fatalf("circuit row gate = %q", row.Gate)
	}
	if row.GoldenEvents == 0 {
		t.Error("circuit row saw no golden events")
	}
	if row.CacheMisses != int64(len(spec.Seeds)) || row.CacheHits != 0 {
		t.Errorf("cold circuit row cache stats = %d hits / %d misses, want 0/%d",
			row.CacheHits, row.CacheMisses, len(spec.Seeds))
	}
	for _, model := range baseline.ModelNames {
		if _, ok := row.Normalized[model]; !ok {
			t.Errorf("circuit row missing normalized entry for %s", model)
		}
	}

	baseline.ClearTimings()
	var want bytes.Buffer
	if err := baseline.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	rerun, err := RunSweep(spec, &Options{Workers: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rerun.ClearTimings()
	// The rerun is fully warm: scenario hit counters replace the cold
	// run's misses, so compare rows field by field instead of bytes.
	for i := range baseline.Scenarios {
		a, b := baseline.Scenarios[i], rerun.Scenarios[i]
		if a.GoldenEvents != b.GoldenEvents || a.WorstSeed != b.WorstSeed ||
			a.WorstSeedArea != b.WorstSeedArea {
			t.Errorf("row %d differs across worker counts: %+v vs %+v", i, a, b)
		}
		for _, model := range baseline.ModelNames {
			if a.Normalized[model] != b.Normalized[model] {
				t.Errorf("row %d: normalized[%s] %v vs %v", i, model, a.Normalized[model], b.Normalized[model])
			}
		}
	}
	if rr := rerun.Scenarios[1]; rr.CacheHits != int64(len(spec.Seeds)) || rr.CacheMisses != 0 {
		t.Errorf("warm circuit row cache stats = %d hits / %d misses, want %d/0",
			rr.CacheHits, rr.CacheMisses, len(spec.Seeds))
	}
}

// TestRunSweepCircuitSharesGatePoints: a circuit whose member gate is
// also on the gate axis reuses the measured operating point — the
// run's prepare phase reports exactly one point.
func TestRunSweepCircuitSharesGatePoints(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := circuitSpec(8)
	prepared := 0
	_, err := RunSweep(spec, &Options{Workers: 2, Progress: func(p Progress) {
		if p.Phase == PhasePrepare && p.Completed == p.Total {
			prepared = p.Total
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The chain uses only nor2, which the gate axis already prepares.
	if prepared != 1 {
		t.Errorf("prepared %d operating points, want 1 (shared nor2)", prepared)
	}
}

func TestParseSpecWithCircuits(t *testing.T) {
	js := `{
	  "circuits": [{
	    "name": "mini",
	    "inputs": ["a", "b"],
	    "instances": [
	      {"name": "g", "gate": "nor2", "inputs": ["a", "b"], "output": "o"}
	    ]
	  }],
	  "stimuli": [{"mode": "LOCAL", "mu": 2e-10, "sigma": 1e-10, "transitions": 10}],
	  "seed_count": 2
	}`
	spec, err := ParseSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].Gate != "circuit:mini" {
		t.Errorf("scenarios = %+v, want one circuit:mini row", scenarios)
	}
}
