package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
	"hybriddelay/internal/nor"
	"hybriddelay/internal/waveform"
)

// testStimuli returns a two-flavour stimulus axis small enough for
// analog test runs.
func testStimuli(transitions int) []Stimulus {
	return []Stimulus{
		{Mode: gen.Local, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: transitions},
		{Mode: gen.Global, Mu: 200 * waveform.Pico, Sigma: 100 * waveform.Pico, Transitions: transitions},
	}
}

// fastBench returns coarse-step bench parameters for quick analog runs.
func fastBench() *nor.Params {
	p := nor.DefaultParams()
	p.MaxStep = 8e-12
	return &p
}

// testSpec is the acceptance grid: 2 gates × 2 VDD points × 2 stimulus
// flavours over 2 seeds (8 scenarios, 16 units).
func testSpec(transitions int) Spec {
	return Spec{
		Gates:    []string{"nor2", "nand2"},
		VDDScale: []float64{1, 0.92},
		Stimuli:  testStimuli(transitions),
		Seeds:    []int64{1, 2},
		Bench:    fastBench(),
	}
}

func TestExpandGridOrder(t *testing.T) {
	spec := Spec{
		Gates:     []string{"nor2", "nor3"},
		VDDScale:  []float64{1, 0.9},
		LoadScale: []float64{1, 2},
		Stimuli:   testStimuli(10),
		Bench:     fastBench(),
	}
	scenarios, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2*2*2*2 {
		t.Fatalf("expanded %d scenarios, want 16", len(scenarios))
	}
	base := spec.baseParams()
	for i, sc := range scenarios {
		if sc.Index != i {
			t.Errorf("scenario %d has Index %d", i, sc.Index)
		}
		wantInputs := 2
		if sc.Gate == "nor3" {
			wantInputs = 3
		}
		if sc.Config.Inputs != wantInputs {
			t.Errorf("scenario %d (%s): Config.Inputs = %d, want %d", i, sc.Gate, sc.Config.Inputs, wantInputs)
		}
		if got, want := sc.Params.Supply.VDD, base.Supply.VDD*sc.VDDScale; got != want {
			t.Errorf("scenario %d: VDD = %g, want %g", i, got, want)
		}
		if got, want := sc.Params.Supply.Vth, base.Supply.Vth*sc.VDDScale; got != want {
			t.Errorf("scenario %d: Vth = %g, want %g", i, got, want)
		}
		if got, want := sc.Params.CO, base.CO*sc.LoadScale; got != want {
			t.Errorf("scenario %d: CO = %g, want %g", i, got, want)
		}
		if sc.Config.Start != 200*waveform.Pico {
			t.Errorf("scenario %d: Start = %g, want 200 ps default", i, sc.Config.Start)
		}
	}
	// Grid order: gate-major, then VDD, load, stimulus.
	if scenarios[0].Gate != "nor2" || scenarios[8].Gate != "nor3" {
		t.Errorf("gate-major order violated: %q then %q", scenarios[0].Gate, scenarios[8].Gate)
	}
	if scenarios[0].VDDScale != 1 || scenarios[4].VDDScale != 0.9 {
		t.Errorf("VDD order violated: %g then %g", scenarios[0].VDDScale, scenarios[4].VDDScale)
	}
	if scenarios[0].LoadScale != 1 || scenarios[2].LoadScale != 2 {
		t.Errorf("load order violated: %g then %g", scenarios[0].LoadScale, scenarios[2].LoadScale)
	}
	if scenarios[0].Stimulus.Mode != gen.Local || scenarios[1].Stimulus.Mode != gen.Global {
		t.Error("stimulus order violated")
	}
}

func TestExpandValidation(t *testing.T) {
	valid := func() Spec { return testSpec(10) }
	cases := []struct {
		name    string
		mutate  func(*Spec)
		errPart string
	}{
		{"unknown gate", func(s *Spec) { s.Gates = []string{"xor7"} }, "unknown gate"},
		{"duplicate gate", func(s *Spec) { s.Gates = []string{"nor2", "nor2"} }, "listed twice"},
		{"zero vdd scale", func(s *Spec) { s.VDDScale = []float64{0} }, "VDD scale"},
		{"negative vdd scale", func(s *Spec) { s.VDDScale = []float64{-1} }, "VDD scale"},
		{"nan vdd scale", func(s *Spec) { s.VDDScale = []float64{nan()} }, "VDD scale"},
		{"zero load scale", func(s *Spec) { s.LoadScale = []float64{0} }, "load scale"},
		{"no stimuli", func(s *Spec) { s.Stimuli = nil }, "no stimuli"},
		{"bad mu", func(s *Spec) { s.Stimuli[0].Mu = 0 }, "gap distribution"},
		{"negative sigma", func(s *Spec) { s.Stimuli[0].Sigma = -1e-12 }, "gap distribution"},
		{"no transitions", func(s *Spec) { s.Stimuli[0].Transitions = 0 }, "transition"},
		{"bad mode", func(s *Spec) { s.Stimuli[0].Mode = gen.Mode(7) }, "unknown mode"},
		// Duplicate axis values would alias golden-cache keys across
		// scenarios and make per-scenario hit accounting depend on
		// scheduling — rejected on every axis.
		{"duplicate vdd scale", func(s *Spec) { s.VDDScale = []float64{1, 1} }, "listed twice"},
		{"duplicate load scale", func(s *Spec) { s.LoadScale = []float64{2, 2} }, "listed twice"},
		{"duplicate stimulus", func(s *Spec) { s.Stimuli = append(s.Stimuli, s.Stimuli[0]) }, "listed twice"},
		{"duplicate seed", func(s *Spec) { s.Seeds = []int64{1, 2, 1} }, "listed twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.mutate(&spec)
			_, err := Expand(spec)
			if err == nil {
				t.Fatalf("Expand accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
	// Defaults: empty gate/scale axes are filled in.
	scenarios, err := Expand(Spec{Stimuli: testStimuli(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("default axes expanded to %d scenarios, want 2", len(scenarios))
	}
	if scenarios[0].Gate != "nor2" || scenarios[0].VDDScale != 1 || scenarios[0].LoadScale != 1 {
		t.Errorf("default scenario = %+v", scenarios[0])
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestSpecSeedList(t *testing.T) {
	if got := (Spec{Seeds: []int64{7, 9}}).SeedList(); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("explicit seeds: %v", got)
	}
	if got := (Spec{}).SeedList(); len(got) != 1 || got[0] != 1 {
		t.Errorf("default seeds: %v", got)
	}
	if got := (Spec{SeedCount: 3, BaseSeed: 10}).SeedList(); len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Errorf("counted seeds: %v", got)
	}
}

// TestRunSweepDeterministicAcrossWorkers is the acceptance property of
// the sweep engine: over a 3-axis grid (2 gates × 2 VDD points × 2
// stimulus flavours), the report — including its JSON and CSV encodings
// — is byte-identical for 1 and 8 workers (run under -race in CI).
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := testSpec(12)
	encode := func(workers int) (string, string) {
		t.Helper()
		rep, err := RunSweep(spec, &Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rep.ClearTimings()
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := encode(1)
	j8, c8 := encode(8)
	if j1 != j8 {
		t.Errorf("JSON reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("CSV reports differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", c1, c8)
	}
	// The encodings carry the per-scenario cache-accounting columns.
	if !strings.Contains(c1, "cache_hits") || !strings.Contains(j1, "\"hit_rate\"") {
		t.Error("report encodings lost the cache-accounting fields")
	}
}

// TestRunSweepOperatingPointsNeverCollide is the cross-scenario cache
// regression test: every scenario differs from every other in at least
// one axis that is part of the golden cache key (bench parameters or
// stimulus configuration), so a sweep-wide shared cache must compute
// every unit exactly once — a false hit would mean two operating
// points aliased onto one key and one of them was served the wrong
// gate's (or wrong voltage's) golden trace. Before the cache key
// incorporated the bench parameters, the VDD=1.0 and VDD=0.92 rows of
// this grid collided and this test failed.
func TestRunSweepOperatingPointsNeverCollide(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := testSpec(10)
	cache := eval.NewGoldenCache()
	rep, err := RunSweep(spec, &Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.TotalUnits
	if st := cache.Stats(); st.Hits != 0 || st.Misses != int64(total) || st.Entries != total {
		t.Errorf("shared cache stats %+v over distinct operating points, want 0 hits / %d misses / %d entries",
			st, total, total)
	}
	for _, sc := range rep.Scenarios {
		if sc.CacheHits != 0 || sc.CacheMisses != int64(sc.Seeds) {
			t.Errorf("scenario %d (%s vdd=%g): hits=%d misses=%d, want 0/%d — an operating point aliased another's traces",
				sc.Index, sc.Gate, sc.VDDScale, sc.CacheHits, sc.CacheMisses, sc.Seeds)
		}
		if sc.HitRate != 0 {
			t.Errorf("scenario %d: hit rate %g on a cold cache", sc.Index, sc.HitRate)
		}
	}
	// The same grid differs between operating points: the scaled supply
	// must actually change the golden reference, not just the key.
	base, scaled := rep.Scenarios[0], rep.Scenarios[2]
	if base.Gate != scaled.Gate || base.Mode != scaled.Mode || base.VDDScale == scaled.VDDScale {
		t.Fatalf("grid order changed: %+v vs %+v", base, scaled)
	}
	if base.WorstSeedArea == scaled.WorstSeedArea && base.GoldenEvents == scaled.GoldenEvents &&
		base.Normalized["hm"] == scaled.Normalized["hm"] {
		t.Error("VDD scaling left every observable identical — operating point not applied to the bench")
	}
}

// TestRunSweepSharedCacheHitRate: re-running a sweep against the same
// shared cache serves every golden trace from memory and reports full
// per-scenario hit rates, with identical accuracy numbers.
func TestRunSweepSharedCacheHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := Spec{
		Gates:    []string{"nor2"},
		VDDScale: []float64{1, 0.95},
		Stimuli:  testStimuli(10),
		Seeds:    []int64{1, 2},
		Bench:    fastBench(),
	}
	cache := eval.NewGoldenCache()
	cold, err := RunSweep(spec, &Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunSweep(spec, &Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range warm.Scenarios {
		if sc.HitRate != 1 || sc.CacheMisses != 0 || sc.CacheHits != int64(sc.Seeds) {
			t.Errorf("warm scenario %d: hits=%d misses=%d rate=%g, want all hits", i, sc.CacheHits, sc.CacheMisses, sc.HitRate)
		}
		for name, v := range sc.Normalized {
			if cold.Scenarios[i].Normalized[name] != v {
				t.Errorf("warm scenario %d: Normalized[%s] = %v != cold %v", i, name, v, cold.Scenarios[i].Normalized[name])
			}
		}
		if sc.WorstSeed != cold.Scenarios[i].WorstSeed || sc.WorstSeedArea != cold.Scenarios[i].WorstSeedArea {
			t.Errorf("warm scenario %d: worst seed %d/%g != cold %d/%g", i,
				sc.WorstSeed, sc.WorstSeedArea, cold.Scenarios[i].WorstSeed, cold.Scenarios[i].WorstSeedArea)
		}
	}
}

// TestRunSweepPrepareError: an unusable operating point fails the sweep
// with a descriptive error instead of hanging the pool.
func TestRunSweepPrepareError(t *testing.T) {
	spec := Spec{
		Stimuli: testStimuli(4),
		Bench:   &nor.Params{}, // zero-value params: invalid supply
	}
	_, err := RunSweep(spec, &Options{Workers: 2})
	if err == nil {
		t.Fatal("sweep with an invalid bench succeeded")
	}
	if !strings.Contains(err.Error(), "operating point") {
		t.Errorf("error %q does not identify the failing operating point", err)
	}
}

// TestRunSweepWorstSeed: the reported worst seed is the per-seed
// maximum of the hybrid model's deviation area.
func TestRunSweepWorstSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := Spec{
		Gates:   []string{"nor2"},
		Stimuli: testStimuli(10)[:1],
		Seeds:   []int64{1, 2, 3},
		Bench:   fastBench(),
	}
	rep, err := RunSweep(spec, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc := rep.Scenarios[0]
	found := false
	for _, s := range spec.Seeds {
		if s == sc.WorstSeed {
			found = true
		}
	}
	if !found {
		t.Errorf("worst seed %d not in the evaluated seed list %v", sc.WorstSeed, spec.Seeds)
	}
	if sc.WorstSeedArea < 0 {
		t.Errorf("negative worst-seed area %g", sc.WorstSeedArea)
	}
	if sc.GoldenEvents <= 0 {
		t.Errorf("no golden events observed")
	}
}

// TestRunSweepParamCacheReuse: two sweeps of the same spec through one
// shared parametrization cache prepare each operating point exactly
// once — the warm run re-fits nothing and still produces a
// byte-identical report.
func TestRunSweepParamCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("analog sweep in -short mode")
	}
	spec := testSpec(10)
	params := eval.NewParamCache()
	encode := func() string {
		t.Helper()
		// Each run gets a private golden cache (as a cold caller would),
		// so the reports stay comparable; only the parametrization cache
		// is shared across the calls.
		rep, err := RunSweep(spec, &Options{Workers: 4, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		rep.ClearTimings()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cold := encode()
	st := params.Stats()
	points := st.Entries
	if points == 0 || st.Misses != int64(points) {
		t.Fatalf("cold run stats %+v, want one miss per operating point", st)
	}
	warm := encode()
	st = params.Stats()
	if st.Misses != int64(points) {
		t.Errorf("warm run re-prepared: %d misses, want still %d", st.Misses, points)
	}
	if st.Hits < int64(points) {
		t.Errorf("warm run hit %d times, want at least %d (one per operating point)", st.Hits, points)
	}
	if cold != warm {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

// TestRunSweepContextCancelled: a cancelled context aborts the sweep
// before (or during) its first phase and reports the cancellation, not
// a unit failure.
func TestRunSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweepContext(ctx, testSpec(4), &Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}
