package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hybriddelay/internal/eval"
	"hybriddelay/internal/gen"
)

func TestRatioJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   Ratio
		want string
	}{
		{Ratio(0.5), "0.5"},
		{Ratio(1), "1"},
		{Ratio(math.NaN()), "null"},
	}
	for _, tc := range cases {
		b, err := json.Marshal(tc.in)
		if err != nil {
			t.Fatalf("marshal %v: %v", tc.in, err)
		}
		if string(b) != tc.want {
			t.Errorf("marshal %v = %s, want %s", tc.in, b, tc.want)
		}
		var back Ratio
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if tc.in.IsDefined() != back.IsDefined() {
			t.Errorf("round trip changed definedness: %v -> %v", tc.in, back)
		}
		if tc.in.IsDefined() && back != tc.in {
			t.Errorf("round trip %v -> %v", tc.in, back)
		}
	}
}

// sampleReport builds a small synthetic report covering the encoders'
// edge cases (undefined ratio, missing model entry).
func sampleReport() *Report {
	return &Report{
		Seeds:      []int64{1, 2},
		ModelNames: []string{"inertial", "hm", "ghost"},
		Scenarios: []ScenarioResult{
			{
				Index: 0, Gate: "nor2", VDDScale: 1, LoadScale: 1,
				Mode: "LOCAL", MuPs: 100, SigmaPs: 50, Transitions: 24, Seeds: 2,
				Normalized:   map[string]Ratio{"inertial": 1, "hm": Ratio(0.25)},
				GoldenEvents: 12, WorstSeed: 2, WorstSeedArea: 3e-12,
				CacheHits: 1, CacheMisses: 1, HitRate: 0.5, WallSeconds: 1.25,
			},
			{
				Index: 1, Gate: "nand2", VDDScale: 0.9, LoadScale: 2,
				Mode: "GLOBAL", MuPs: 2000, SigmaPs: 1000, Transitions: 24, Seeds: 2,
				Normalized:   map[string]Ratio{"inertial": Ratio(math.NaN()), "hm": Ratio(math.NaN())},
				GoldenEvents: 0, WorstSeed: 1, WorstSeedArea: 0,
				CacheHits: 0, CacheMisses: 2, HitRate: 0, WallSeconds: 0.5,
			},
		},
		TotalUnits:  4,
		Cache:       eval.CacheStats{Hits: 1, Misses: 3, Entries: 3},
		WallSeconds: 2.5,
	}
}

func TestWriteJSONHandlesUndefinedRatios(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with NaN ratios: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if got := back.Scenarios[1].Normalized["hm"]; got.IsDefined() {
		t.Errorf("undefined ratio decoded as %v, want NaN", got)
	}
	if got := back.Scenarios[0].Normalized["hm"]; float64(got) != 0.25 {
		t.Errorf("defined ratio decoded as %v, want 0.25", got)
	}
}

func TestWriteCSVShape(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(rep.Scenarios) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(rep.Scenarios))
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Errorf("row has %d fields, header has %d: %s", got, len(header), line)
		}
	}
	if !strings.Contains(lines[0], "norm_hm") || !strings.Contains(lines[0], "norm_ghost") {
		t.Errorf("header missing model columns: %s", lines[0])
	}
	// The ghost model has no entries: its column renders NaN, not a crash.
	if !strings.Contains(lines[1], "NaN") {
		t.Errorf("missing-model column not rendered as NaN: %s", lines[1])
	}
	if !strings.Contains(lines[1], "1250") {
		t.Errorf("wall_ms column missing (1.25 s = 1250 ms): %s", lines[1])
	}
}

func TestClearTimings(t *testing.T) {
	rep := sampleReport()
	rep.ClearTimings()
	if rep.WallSeconds != 0 {
		t.Error("report wall time not cleared")
	}
	for i, sc := range rep.Scenarios {
		if sc.WallSeconds != 0 {
			t.Errorf("scenario %d wall time not cleared", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	in := `{
		"gates": ["nor2", "nand2"],
		"vdd_scale": [1.0, 0.9],
		"stimuli": [
			{"mode": "local", "mu": 100e-12, "sigma": 50e-12, "transitions": 40},
			{"mode": "GLOBAL", "mu": 2000e-12, "sigma": 1000e-12, "transitions": 40}
		],
		"seed_count": 3
	}`
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Gates) != 2 || len(spec.VDDScale) != 2 || len(spec.Stimuli) != 2 {
		t.Fatalf("parsed spec %+v", spec)
	}
	if spec.Stimuli[0].Mode != gen.Local || spec.Stimuli[1].Mode != gen.Global {
		t.Errorf("modes parsed as %v/%v", spec.Stimuli[0].Mode, spec.Stimuli[1].Mode)
	}
	if spec.Stimuli[0].Mu != 100e-12 {
		t.Errorf("mu parsed as %g", spec.Stimuli[0].Mu)
	}
	if got := spec.SeedList(); len(got) != 3 || got[0] != 1 {
		t.Errorf("seed list %v", got)
	}

	if _, err := ParseSpec(strings.NewReader(`{"stimuli": [{"mode": "sideways"}]}`)); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := ParseSpec(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
