package ode

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// LinearN solves the n-dimensional constant-coefficient system
//
//	C V'(t) = -G V(t) + u
//
// that a switch-level RC gate model produces: C is the diagonal vector
// of node capacitances (all > 0), G is the symmetric positive
// semi-definite conductance matrix and u the source-current injection.
// Writing A = -C^{-1} G, the similarity transform S = C^{1/2} A C^{-1/2}
// is symmetric, so the spectrum is real and an orthonormal eigenbasis
// exists — the n-dimensional generalization of the paper's 2x2 modes.
type LinearN struct {
	C []float64  // node capacitances [F]
	G *la.Matrix // conductance matrix [S]
	U []float64  // current injection [A]
}

// Dim returns the system dimension.
func (s LinearN) Dim() int { return len(s.C) }

// SolutionN is a closed-form solution of a LinearN initial-value
// problem, represented in the symmetrized eigenbasis: every eigenmode is
// an independent scalar ODE w' = lambda w + f with exact solution.
type SolutionN struct {
	n      int
	lambda []float64 // eigenvalues of A (shared with S)
	basis  *la.Matrix
	sqrtC  []float64
	w0     []float64 // initial value in eigencoordinates
	f      []float64 // forcing in eigencoordinates
}

// Solve constructs the closed-form solution with initial value v0.
func (s LinearN) Solve(v0 []float64) (*SolutionN, error) {
	n := s.Dim()
	if n == 0 {
		return nil, fmt.Errorf("ode: empty system")
	}
	if s.G.Rows != n || s.G.Cols != n || len(s.U) != n || len(v0) != n {
		return nil, fmt.Errorf("ode: dimension mismatch (C=%d, G=%dx%d, U=%d, v0=%d)",
			n, s.G.Rows, s.G.Cols, len(s.U), len(v0))
	}
	sqrtC := make([]float64, n)
	for i, c := range s.C {
		if c <= 0 {
			return nil, fmt.Errorf("ode: non-positive capacitance C[%d] = %g", i, c)
		}
		sqrtC[i] = math.Sqrt(c)
	}
	// S = -C^{-1/2} G C^{-1/2} (symmetric).
	sym := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sym.Set(i, j, -s.G.At(i, j)/(sqrtC[i]*sqrtC[j]))
		}
	}
	eig, err := la.JacobiEigen(sym, 0)
	if err != nil {
		return nil, fmt.Errorf("ode: eigen decomposition failed: %w", err)
	}
	// Eigencoordinates: w = U^T C^{1/2} v,  f = U^T C^{-1/2} u.
	w0 := make([]float64, n)
	f := make([]float64, n)
	for k := 0; k < n; k++ {
		sw, sf := 0.0, 0.0
		for i := 0; i < n; i++ {
			sw += eig.V.At(i, k) * sqrtC[i] * v0[i]
			sf += eig.V.At(i, k) * s.U[i] / sqrtC[i]
		}
		w0[k] = sw
		f[k] = sf
	}
	return &SolutionN{
		n:      n,
		lambda: eig.Lambda,
		basis:  eig.V,
		sqrtC:  sqrtC,
		w0:     w0,
		f:      f,
	}, nil
}

// At evaluates V(t) into a fresh slice.
func (sol *SolutionN) At(t float64) []float64 {
	out := make([]float64, sol.n)
	sol.AtInto(out, t)
	return out
}

// AtInto evaluates V(t) into dst (len n).
func (sol *SolutionN) AtInto(dst []float64, t float64) {
	n := sol.n
	// w_k(t) = w0_k e^{l t} + f_k phi(l, t); v = C^{-1/2} U w.
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
	for k := 0; k < n; k++ {
		l := sol.lambda[k]
		wk := sol.w0[k]*math.Exp(l*t) + sol.f[k]*phi(l, t)
		for i := 0; i < n; i++ {
			dst[i] += sol.basis.At(i, k) * wk / sol.sqrtC[i]
		}
	}
}

// Component evaluates a single state component at time t (cheaper than
// At when only the output voltage matters).
func (sol *SolutionN) Component(i int, t float64) float64 {
	v := 0.0
	// Same summation order and per-term scaling as AtInto, so the two
	// evaluations agree bit for bit.
	for k := 0; k < sol.n; k++ {
		l := sol.lambda[k]
		wk := sol.w0[k]*math.Exp(l*t) + sol.f[k]*phi(l, t)
		v += sol.basis.At(i, k) * wk / sol.sqrtC[i]
	}
	return v
}

// SlowestTimeConstant returns 1/|lambda| of the slowest nonzero pole, or
// +Inf if all modes are neutral.
func (sol *SolutionN) SlowestTimeConstant() float64 {
	minMag := math.Inf(1)
	for _, l := range sol.lambda {
		if m := math.Abs(l); m > 1e-30 && m < minMag {
			minMag = m
		}
	}
	if math.IsInf(minMag, 1) {
		return math.Inf(1)
	}
	return 1 / minMag
}

// RK4N integrates C v' = -G v + u numerically (cross-validation).
func (s LinearN) RK4N(v0 []float64, T float64, steps int) []float64 {
	if steps < 1 {
		steps = 1
	}
	n := s.Dim()
	h := T / float64(steps)
	deriv := func(v []float64) []float64 {
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			acc := s.U[i]
			for j := 0; j < n; j++ {
				acc -= s.G.At(i, j) * v[j]
			}
			d[i] = acc / s.C[i]
		}
		return d
	}
	v := append([]float64(nil), v0...)
	tmp := make([]float64, n)
	axpy := func(dst, a []float64, scale float64) []float64 {
		for i := range dst {
			tmp[i] = dst[i] + scale*a[i]
		}
		return append([]float64(nil), tmp...)
	}
	for s := 0; s < steps; s++ {
		k1 := deriv(v)
		k2 := deriv(axpy(v, k1, h/2))
		k3 := deriv(axpy(v, k2, h/2))
		k4 := deriv(axpy(v, k3, h))
		for i := 0; i < n; i++ {
			v[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	return v
}
