package ode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/la"
)

// rcSystem builds a random stable 2x2 RC-like system (real negative
// eigenvalues guaranteed by similarity to a symmetric matrix).
func rcSystem(rng *rand.Rand) Linear2 {
	g1 := 0.5 + rng.Float64()
	g2 := 0.5 + rng.Float64()
	gc := rng.Float64()
	c1 := 0.5 + rng.Float64()
	c2 := 0.5 + rng.Float64()
	// Conductance-matrix form: A = -C^{-1} G with G symmetric PSD.
	a := la.Mat2{
		A11: -(g1 + gc) / c1, A12: gc / c1,
		A21: gc / c2, A22: -(g2 + gc) / c2,
	}
	return Linear2{A: a, G: la.Vec2{X: rng.Float64() / c1, Y: rng.Float64() / c2}}
}

func TestSolveMatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		sys := rcSystem(rng)
		v0 := la.Vec2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		sol, err := sys.Solve(v0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		T := 3 * rng.Float64()
		want := sys.RK4(v0, T, 4000)
		got := sol.At(T)
		if got.Sub(want).Norm() > 1e-6*(1+want.Norm()) {
			t.Fatalf("trial %d: analytic %v vs RK4 %v", trial, got, want)
		}
	}
}

func TestSolveInitialValue(t *testing.T) {
	f := func(x, y float64) bool {
		rng := rand.New(rand.NewSource(int64(math.Float64bits(x) ^ math.Float64bits(y))))
		sys := rcSystem(rng)
		v0 := la.Vec2{X: math.Mod(x, 10), Y: math.Mod(y, 10)}
		sol, err := sys.Solve(v0)
		if err != nil {
			return false
		}
		return sol.At(0).Sub(v0).Norm() < 1e-9*(1+v0.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveSingularMode11(t *testing.T) {
	// Mode (1,1) shape: VN frozen, VO decaying, g = 0.
	sys := Linear2{A: la.Mat2{A11: 0, A12: 0, A21: 0, A22: -2}}
	v0 := la.Vec2{X: 0.35, Y: 0.8}
	sol, err := sys.Solve(v0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 0.1, 1, 5} {
		v := sol.At(tm)
		if math.Abs(v.X-0.35) > 1e-12 {
			t.Errorf("VN at %g = %g, want frozen 0.35", tm, v.X)
		}
		want := 0.8 * math.Exp(-2*tm)
		if math.Abs(v.Y-want) > 1e-12 {
			t.Errorf("VO at %g = %g, want %g", tm, v.Y, want)
		}
	}
}

func TestSolveSingularWithForcing(t *testing.T) {
	// Zero eigenvalue with forcing: x' = 1 (linear growth), y' = -y + 1.
	sys := Linear2{A: la.Mat2{A11: 0, A12: 0, A21: 0, A22: -1}, G: la.Vec2{X: 1, Y: 1}}
	sol, err := sys.Solve(la.Vec2{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	v := sol.At(2)
	if math.Abs(v.X-2) > 1e-9 {
		t.Errorf("x(2) = %g, want 2 (linear growth)", v.X)
	}
	want := 1 - math.Exp(-2.0)
	if math.Abs(v.Y-want) > 1e-9 {
		t.Errorf("y(2) = %g, want %g", v.Y, want)
	}
	if _, ok := sol.SteadyState(); ok {
		t.Error("diverging system reported a steady state")
	}
}

func TestSteadyState(t *testing.T) {
	sys := Linear2{A: la.Mat2{A11: -1, A12: 0, A21: 0, A22: -2}, G: la.Vec2{X: 3, Y: 4}}
	sol, err := sys.Solve(la.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := sol.SteadyState()
	if !ok {
		t.Fatal("expected a steady state")
	}
	if math.Abs(ss.X-3) > 1e-12 || math.Abs(ss.Y-2) > 1e-12 {
		t.Errorf("steady state = %v, want (3, 2)", ss)
	}
	// The trajectory approaches it.
	v := sol.At(50)
	if v.Sub(ss).Norm() > 1e-9 {
		t.Errorf("trajectory at t=50 (%v) far from steady state (%v)", v, ss)
	}
}

func TestDerivativeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		sys := rcSystem(rng)
		v0 := la.Vec2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		sol, err := sys.Solve(v0)
		if err != nil {
			t.Fatal(err)
		}
		tm := rng.Float64() * 2
		// Finite-difference check.
		h := 1e-7
		num := sol.At(tm + h).Sub(sol.At(tm - h)).Scale(1 / (2 * h))
		ana := sol.Derivative(tm)
		if num.Sub(ana).Norm() > 1e-5*(1+ana.Norm()) {
			t.Fatalf("trial %d: derivative mismatch %v vs %v", trial, ana, num)
		}
	}
}

func TestSlowestTimeConstant(t *testing.T) {
	sys := Linear2{A: la.Mat2{A11: -0.5, A12: 0, A21: 0, A22: -4}}
	sol, err := sys.Solve(la.Vec2{X: 1, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.SlowestTimeConstant(); math.Abs(got-2) > 1e-12 {
		t.Errorf("slowest tau = %g, want 2", got)
	}
	// Mode (1,1)-like singular system: slowest finite pole is reported.
	sys2 := Linear2{A: la.Mat2{A22: -2}}
	sol2, err := sys2.Solve(la.Vec2{X: 1, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol2.SlowestTimeConstant(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("slowest tau = %g, want 0.5", got)
	}
}

func TestContinuityAcrossRestart(t *testing.T) {
	// Solving from sol.At(t1) and evaluating at t2-t1 equals sol.At(t2):
	// the semigroup property the hybrid trajectory machinery relies on.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		sys := rcSystem(rng)
		v0 := la.Vec2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		sol, err := sys.Solve(v0)
		if err != nil {
			t.Fatal(err)
		}
		t1 := rng.Float64()
		t2 := t1 + rng.Float64()
		mid := sol.At(t1)
		sol2, err := sys.Solve(mid)
		if err != nil {
			t.Fatal(err)
		}
		a := sol.At(t2)
		b := sol2.At(t2 - t1)
		if a.Sub(b).Norm() > 1e-9*(1+a.Norm()) {
			t.Fatalf("trial %d: semigroup violated: %v vs %v", trial, a, b)
		}
	}
}

func TestRK4ZeroSteps(t *testing.T) {
	sys := Linear2{A: la.Mat2{A11: -1, A22: -1}}
	v := sys.RK4(la.Vec2{X: 1, Y: 1}, 1, 0) // n < 1 clamps to 1
	if math.IsNaN(v.X) || math.IsNaN(v.Y) {
		t.Error("RK4 produced NaN with clamped step count")
	}
}
