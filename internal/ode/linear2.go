// Package ode solves the constant-coefficient linear ODE systems
//
//	V'(t) = A V(t) + g
//
// that govern the hybrid NOR model's four modes (paper §III). For 2x2
// systems the solution is computed in closed form from the
// eigen-decomposition of A; degenerate cases (singular A, repeated
// eigenvalues) are handled explicitly because they occur in practice:
// mode (1,1) isolates node N, which makes A singular.
//
// A numeric RK4 integrator is included for cross-validating the analytic
// path in tests.
package ode

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// Linear2 is a 2-dimensional linear time-invariant system V' = A V + g.
type Linear2 struct {
	A la.Mat2
	G la.Vec2
}

// Solution2 is a closed-form solution of a Linear2 initial-value problem.
// It evaluates V(t) for t >= 0 with V(0) = the initial value supplied to
// Solve.
type Solution2 struct {
	// kind discriminates the evaluation formula.
	kind solKind

	// Diagonalizable path: V(t) = vp + c1*v1*exp(l1 t) + c2*v2*exp(l2 t).
	l1, l2 float64
	v1, v2 la.Vec2
	c1, c2 float64
	vp     la.Vec2 // particular (steady-state) solution; zero for kindSingular

	// Singular-A path keeps the full matrices for the variation-of-
	// constants formula evaluated with the 2x2 propagator.
	sys Linear2
	v0  la.Vec2

	// Defective path: V(t) = vp + e^{l t}[(I + N t)(V0 - vp)].
	nil2 la.Mat2
}

type solKind int

const (
	kindDiagonal  solKind = iota // A nonsingular, two eigenvectors
	kindDefective                // repeated eigenvalue, Jordan block
	kindSingular                 // A singular: integrate g through the propagator
)

// Solve constructs the closed-form solution with initial value v0 at t=0.
func (s Linear2) Solve(v0 la.Vec2) (*Solution2, error) {
	eig, err := la.EigenDecompose2(s.A)
	if err != nil {
		return nil, err
	}
	det := s.A.Det()
	// Singular A (one or both eigenvalues zero): the steady state does not
	// exist in general. Handle via the propagator formula
	//   V(t) = e^{At} v0 + Int_0^t e^{A(t-s)} g ds,
	// which for our circuits reduces to per-eigenvector integration.
	if math.Abs(det) <= 1e-30*math.Max(s.A.Trace()*s.A.Trace(), 1e-300) || det == 0 {
		return solveSingular(s, v0, eig)
	}
	vp, err := s.A.Solve(la.Vec2{X: -s.G.X, Y: -s.G.Y})
	if err != nil {
		return solveSingular(s, v0, eig)
	}
	w := v0.Sub(vp)
	if eig.Defective {
		l := eig.Lambda1
		n := s.A.AddMat(la.Mat2{A11: -l, A22: -l})
		return &Solution2{kind: kindDefective, l1: l, vp: vp, nil2: n, v0: v0, sys: s}, nil
	}
	// Expand w in the eigenbasis: w = c1 v1 + c2 v2.
	p := la.Mat2{A11: eig.V1.X, A12: eig.V2.X, A21: eig.V1.Y, A22: eig.V2.Y}
	c, err := p.Solve(w)
	if err != nil {
		return nil, fmt.Errorf("ode: eigenvector matrix singular: %w", err)
	}
	return &Solution2{
		kind: kindDiagonal,
		l1:   eig.Lambda1, l2: eig.Lambda2,
		v1: eig.V1, v2: eig.V2,
		c1: c.X, c2: c.Y,
		vp: vp, sys: s, v0: v0,
	}, nil
}

// solveSingular handles singular A. In the hybrid model this is mode
// (1,1): V_N' = 0 and V_O decays exponentially, with g = 0. We support the
// general case with g constant by splitting along eigenvectors: for a zero
// eigenvalue the response grows linearly (c + g_par*t), for a nonzero one
// it is the usual exponential relaxation.
func solveSingular(s Linear2, v0 la.Vec2, eig la.Eigen2) (*Solution2, error) {
	if eig.Defective {
		return nil, fmt.Errorf("ode: defective singular system not supported (A=%+v)", s.A)
	}
	p := la.Mat2{A11: eig.V1.X, A12: eig.V2.X, A21: eig.V1.Y, A22: eig.V2.Y}
	if p.Det() == 0 {
		return nil, fmt.Errorf("ode: eigenvector matrix singular for A=%+v", s.A)
	}
	c0, err := p.Solve(v0)
	if err != nil {
		return nil, err
	}
	gc, err := p.Solve(s.G)
	if err != nil {
		return nil, err
	}
	return &Solution2{
		kind: kindSingular,
		l1:   eig.Lambda1, l2: eig.Lambda2,
		v1: eig.V1, v2: eig.V2,
		c1: c0.X, c2: c0.Y,
		vp:  la.Vec2{X: gc.X, Y: gc.Y}, // per-mode forcing coefficients
		sys: s, v0: v0,
	}, nil
}

// At evaluates V(t).
func (sol *Solution2) At(t float64) la.Vec2 {
	switch sol.kind {
	case kindDiagonal:
		e1 := math.Exp(sol.l1 * t)
		e2 := math.Exp(sol.l2 * t)
		return sol.vp.
			Add(sol.v1.Scale(sol.c1 * e1)).
			Add(sol.v2.Scale(sol.c2 * e2))
	case kindDefective:
		// V(t) = vp + e^{l t} (I + N t)(v0 - vp).
		w := sol.v0.Sub(sol.vp)
		nw := sol.nil2.MulVec(w)
		el := math.Exp(sol.l1 * t)
		return sol.vp.Add(w.Add(nw.Scale(t)).Scale(el))
	case kindSingular:
		// Per-eigenmode: x_i(t) = c_i e^{l_i t} + g_i * phi(l_i, t), where
		// phi(l, t) = (e^{l t} - 1)/l, extended continuously to phi(0,t)=t.
		x1 := sol.c1*math.Exp(sol.l1*t) + sol.vp.X*phi(sol.l1, t)
		x2 := sol.c2*math.Exp(sol.l2*t) + sol.vp.Y*phi(sol.l2, t)
		return sol.v1.Scale(x1).Add(sol.v2.Scale(x2))
	}
	panic("ode: unknown solution kind")
}

// Derivative evaluates V'(t) = A V(t) + g.
func (sol *Solution2) Derivative(t float64) la.Vec2 {
	v := sol.At(t)
	return sol.sys.A.MulVec(v).Add(sol.sys.G)
}

// phi computes (e^{l t} - 1)/l with a series fallback near l*t == 0.
func phi(l, t float64) float64 {
	x := l * t
	if math.Abs(x) < 1e-6 {
		// (e^x - 1)/l = t (1 + x/2 + x^2/6 + ...)
		return t * (1 + x/2 + x*x/6)
	}
	return (math.Exp(x) - 1) / l
}

// SlowestTimeConstant returns the magnitude of the slowest stable pole's
// time constant 1/|lambda|, or +Inf when an eigenvalue is (numerically)
// zero. It is used to size scan windows for threshold-crossing searches.
func (sol *Solution2) SlowestTimeConstant() float64 {
	minMag := math.Inf(1)
	for _, l := range []float64{sol.l1, sol.l2} {
		if m := math.Abs(l); m > 1e-30 && m < minMag {
			minMag = m
		}
	}
	if math.IsInf(minMag, 1) {
		return math.Inf(1)
	}
	return 1 / minMag
}

// SteadyState returns the t -> infinity limit of the solution when it
// exists (all eigenvalues strictly negative, or zero-eigenvalue modes with
// zero forcing). ok is false when the trajectory grows without bound or a
// neutral mode keeps its initial value forever (mode (1,1)'s V_N): in that
// case the returned value holds the limit with neutral modes frozen.
func (sol *Solution2) SteadyState() (la.Vec2, bool) {
	switch sol.kind {
	case kindDiagonal:
		if sol.l1 < 0 && sol.l2 < 0 {
			return sol.vp, true
		}
		return sol.vp, false
	case kindDefective:
		if sol.l1 < 0 {
			return sol.vp, true
		}
		return sol.vp, false
	case kindSingular:
		// Neutral modes (l == 0) with zero forcing stay at c_i; with
		// nonzero forcing they diverge.
		x1, ok1 := modeLimit(sol.l1, sol.c1, sol.vp.X)
		x2, ok2 := modeLimit(sol.l2, sol.c2, sol.vp.Y)
		return sol.v1.Scale(x1).Add(sol.v2.Scale(x2)), ok1 && ok2
	}
	return la.Vec2{}, false
}

func modeLimit(l, c, g float64) (float64, bool) {
	switch {
	case l < 0:
		return -g / l, true
	case l == 0 && g == 0:
		return c, false // frozen, not a true global steady state
	default:
		return math.Inf(1), false
	}
}

// RK4 integrates V' = A V + g numerically from v0 over [0, T] with n
// steps, returning the final state. It exists to cross-validate the
// closed-form solution in tests.
func (s Linear2) RK4(v0 la.Vec2, T float64, n int) la.Vec2 {
	if n < 1 {
		n = 1
	}
	h := T / float64(n)
	f := func(v la.Vec2) la.Vec2 { return s.A.MulVec(v).Add(s.G) }
	v := v0
	for i := 0; i < n; i++ {
		k1 := f(v)
		k2 := f(v.Add(k1.Scale(h / 2)))
		k3 := f(v.Add(k2.Scale(h / 2)))
		k4 := f(v.Add(k3.Scale(h)))
		v = v.Add(k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(h / 6))
	}
	return v
}
