package ode

import (
	"math"
	"math/rand"
	"testing"

	"hybriddelay/internal/la"
)

// randomRC builds a random n-node RC ladder-ish network.
func randomRC(rng *rand.Rand, n int) LinearN {
	c := make([]float64, n)
	for i := range c {
		c[i] = 0.2 + rng.Float64()
	}
	g := la.NewMatrix(n, n)
	u := make([]float64, n)
	// Random branches between nodes and to the rails.
	for k := 0; k < 2*n; k++ {
		gc := 0.2 + rng.Float64()
		i := rng.Intn(n)
		j := rng.Intn(n + 2)
		switch {
		case j < n && j != i:
			g.Add(i, i, gc)
			g.Add(j, j, gc)
			g.Add(i, j, -gc)
			g.Add(j, i, -gc)
		case j == n: // to VDD
			g.Add(i, i, gc)
			u[i] += gc * 0.8
		default: // to GND
			g.Add(i, i, gc)
		}
	}
	return LinearN{C: c, G: g, U: u}
}

func TestLinearNMatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		sys := randomRC(rng, n)
		v0 := make([]float64, n)
		for i := range v0 {
			v0[i] = rng.Float64()
		}
		sol, err := sys.Solve(v0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		T := 0.5 + 2*rng.Float64()
		want := sys.RK4N(v0, T, 4000)
		got := sol.At(T)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d node %d: analytic %g vs RK4 %g", trial, i, got[i], want[i])
			}
		}
		// Initial value.
		at0 := sol.At(0)
		for i := range v0 {
			if math.Abs(at0[i]-v0[i]) > 1e-9 {
				t.Fatalf("trial %d: initial value broken", trial)
			}
		}
		// Component agrees with At.
		for i := 0; i < n; i++ {
			if math.Abs(sol.Component(i, T)-got[i]) > 1e-12*(1+math.Abs(got[i])) {
				t.Fatalf("trial %d: Component(%d) mismatch", trial, i)
			}
		}
	}
}

func TestLinearNIsolatedNode(t *testing.T) {
	// Node 0 isolated (no branches), node 1 discharging: the neutral
	// mode must hold its initial value exactly.
	g := la.NewMatrix(2, 2)
	g.Set(1, 1, 1.0)
	sys := LinearN{C: []float64{1, 1}, G: g, U: []float64{0, 0}}
	sol, err := sys.Solve([]float64{0.37, 1})
	if err != nil {
		t.Fatal(err)
	}
	v := sol.At(50)
	if math.Abs(v[0]-0.37) > 1e-12 {
		t.Errorf("isolated node drifted to %g", v[0])
	}
	if math.Abs(v[1]) > 1e-9 {
		t.Errorf("driven node did not settle: %g", v[1])
	}
}

func TestLinearNValidation(t *testing.T) {
	g := la.NewMatrix(2, 2)
	if _, err := (LinearN{C: []float64{1, -1}, G: g, U: []float64{0, 0}}).Solve([]float64{0, 0}); err == nil {
		t.Error("negative capacitance accepted")
	}
	if _, err := (LinearN{C: []float64{1}, G: g, U: []float64{0}}).Solve([]float64{0}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := (LinearN{}).Solve(nil); err == nil {
		t.Error("empty system accepted")
	}
}

func TestLinearNSlowestTimeConstant(t *testing.T) {
	g := la.NewMatrix(2, 2)
	g.Set(0, 0, 0.5) // tau = 2 with C=1
	g.Set(1, 1, 4)   // tau = 0.25
	sys := LinearN{C: []float64{1, 1}, G: g, U: []float64{0, 0}}
	sol, err := sys.Solve([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.SlowestTimeConstant(); math.Abs(got-2) > 1e-9 {
		t.Errorf("slowest tau = %g, want 2", got)
	}
}
