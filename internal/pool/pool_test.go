package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryUnit(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		done := make([]atomic.Int64, 20)
		var callbacks atomic.Int64
		lastCompleted := 0
		Run(len(done), workers, func(i int) error {
			done[i].Add(1)
			return nil
		}, func(i, completed int, err error) {
			callbacks.Add(1)
			if completed != lastCompleted+1 {
				t.Errorf("workers=%d: completion count jumped %d -> %d", workers, lastCompleted, completed)
			}
			lastCompleted = completed
			if err != nil {
				t.Errorf("workers=%d: unexpected unit error %v", workers, err)
			}
		})
		for i := range done {
			if n := done[i].Load(); n != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, n)
			}
		}
		if callbacks.Load() != int64(len(done)) {
			t.Errorf("workers=%d: %d callbacks for %d units", workers, callbacks.Load(), len(done))
		}
	}
}

func TestRunStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	sawErr := false
	Run(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return fmt.Errorf("unit 3 failed")
		}
		return nil
	}, func(i, completed int, err error) {
		if err != nil {
			sawErr = true
		}
	})
	if !sawErr {
		t.Error("error never surfaced through onDone")
	}
	// Serial: exactly units 0..3 run, nothing after the failure.
	if ran.Load() != 4 {
		t.Errorf("%d units ran after a serial failure at index 3, want 4", ran.Load())
	}
}

func TestRunEmptyAndNilCallback(t *testing.T) {
	Run(0, 4, func(i int) error { t.Fatal("fn called for empty total"); return nil }, nil)
	var ran atomic.Int64
	Run(5, 2, func(i int) error { ran.Add(1); return nil }, nil) // nil onDone is fine
	if ran.Load() != 5 {
		t.Errorf("%d units ran, want 5", ran.Load())
	}
}

func TestRunContextCancellation(t *testing.T) {
	// Pre-cancelled: no unit is ever claimed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := RunContext(ctx, 100, 4, func(i int) error { ran.Add(1); return nil }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d units ran under a pre-cancelled context, want 0", ran.Load())
	}

	// Cancelled mid-run: claimed units finish, no new units claimed
	// afterwards, and the context error is reported.
	ctx, cancel = context.WithCancel(context.Background())
	ran.Store(0)
	err = RunContext(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 || n < 5 {
		t.Errorf("%d units ran after mid-run cancellation, want a handful (claimed ones finish, rest skipped)", n)
	}

	// Background context: identical to Run, nil error.
	ran.Store(0)
	if err := RunContext(context.Background(), 7, 3, func(i int) error { ran.Add(1); return nil }, nil); err != nil {
		t.Fatalf("uncancelled RunContext returned %v", err)
	}
	if ran.Load() != 7 {
		t.Errorf("%d units ran, want 7", ran.Load())
	}
}
