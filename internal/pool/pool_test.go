package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryUnit(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		done := make([]atomic.Int64, 20)
		var callbacks atomic.Int64
		lastCompleted := 0
		Run(len(done), workers, func(i int) error {
			done[i].Add(1)
			return nil
		}, func(i, completed int, err error) {
			callbacks.Add(1)
			if completed != lastCompleted+1 {
				t.Errorf("workers=%d: completion count jumped %d -> %d", workers, lastCompleted, completed)
			}
			lastCompleted = completed
			if err != nil {
				t.Errorf("workers=%d: unexpected unit error %v", workers, err)
			}
		})
		for i := range done {
			if n := done[i].Load(); n != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, n)
			}
		}
		if callbacks.Load() != int64(len(done)) {
			t.Errorf("workers=%d: %d callbacks for %d units", workers, callbacks.Load(), len(done))
		}
	}
}

func TestRunStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	sawErr := false
	Run(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return fmt.Errorf("unit 3 failed")
		}
		return nil
	}, func(i, completed int, err error) {
		if err != nil {
			sawErr = true
		}
	})
	if !sawErr {
		t.Error("error never surfaced through onDone")
	}
	// Serial: exactly units 0..3 run, nothing after the failure.
	if ran.Load() != 4 {
		t.Errorf("%d units ran after a serial failure at index 3, want 4", ran.Load())
	}
}

func TestRunEmptyAndNilCallback(t *testing.T) {
	Run(0, 4, func(i int) error { t.Fatal("fn called for empty total"); return nil }, nil)
	var ran atomic.Int64
	Run(5, 2, func(i int) error { ran.Add(1); return nil }, nil) // nil onDone is fine
	if ran.Load() != 5 {
		t.Errorf("%d units ran, want 5", ran.Load())
	}
}
