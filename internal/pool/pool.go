// Package pool provides the bounded work-claiming loop shared by the
// evaluation runner, the sweep engine and the session engine: a fixed
// set of indexed units fanned across a capped number of goroutines,
// with early stop on the first error or context cancellation and
// serialized completion callbacks.
package pool

import (
	"context"
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, total) on min(workers, total)
// goroutines (at least one). Units are claimed in index order but may
// complete in any order; after the first unit returns an error no new
// units are claimed (units already claimed still finish). onDone, when
// non-nil, is invoked after each completed unit with the unit's index,
// the in-order completion count and the unit's error; calls are
// serialized. Run returns when every claimed unit has finished.
func Run(total, workers int, fn func(i int) error, onDone func(i, completed int, err error)) {
	RunContext(context.Background(), total, workers, fn, onDone)
}

// RunContext is Run with cancellation: once ctx is done, no new units
// are claimed (units already claimed still finish, so shared state
// stays consistent) and ctx.Err() is returned. A nil error means every
// unit was claimed; individual unit errors are reported through fn's
// return value and onDone, exactly as in Run.
func RunContext(ctx context.Context, total, workers int, fn func(i int) error, onDone func(i, completed int, err error)) error {
	if total <= 0 {
		return ctx.Err()
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		mu        sync.Mutex
		completed int
		wg        sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= total || stop.Load() {
					return
				}
				err := fn(i)
				if err != nil {
					stop.Store(true)
				}
				if onDone != nil {
					mu.Lock()
					completed++
					onDone(i, completed, err)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
