package roots

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBisectKnownRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	r, err := Bisect(f, 0, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt2) > 1e-12 {
		t.Errorf("root = %.15g, want sqrt(2)", r)
	}
}

func TestBisectEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 0); err != nil || r != 0 {
		t.Errorf("expected exact endpoint root, got %g, %v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 0); err != nil || r != 0 {
		t.Errorf("expected exact endpoint root, got %g, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 0); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := Brent(c.f, c.a, c.b, 1e-15)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r-c.want) > 1e-9 {
				t.Errorf("root = %.15g, want %.15g", r, c.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 0); !errors.Is(err, ErrNoBracket) {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

// TestBrentMatchesBisect: on random monotone exponential-sum functions
// (the shape the hybrid model produces) both solvers find the same root.
func TestBrentMatchesBisect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := 0.5 + rng.Float64()
		b := 0.1 + rng.Float64()
		l1 := -(0.5 + rng.Float64())
		l2 := -(2 + rng.Float64())
		level := 0.3 * (a + b)
		f := func(x float64) float64 { return a*math.Exp(l1*x) + b*math.Exp(l2*x) - level }
		// f(0) = a + b - level > 0; f decays to -level < 0.
		rBrent, err := Brent(f, 0, 50, 1e-15)
		if err != nil {
			t.Fatalf("trial %d: brent: %v", trial, err)
		}
		rBisect, err := Bisect(f, 0, 50, 1e-13)
		if err != nil {
			t.Fatalf("trial %d: bisect: %v", trial, err)
		}
		if math.Abs(rBrent-rBisect) > 1e-9 {
			t.Fatalf("trial %d: brent %.12g vs bisect %.12g", trial, rBrent, rBisect)
		}
	}
}

func TestExpandBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 10 }
	lo, hi, err := ExpandBracket(f, 0, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(lo) < 0 && f(hi) > 0) {
		t.Errorf("bracket [%g, %g] does not straddle the root", lo, hi)
	}
	if _, _, err := ExpandBracket(func(float64) float64 { return 1 }, 0, 1, 100); err == nil {
		t.Error("expected failure for sign-definite function")
	}
	if _, _, err := ExpandBracket(f, 1, 0, 100); err == nil {
		t.Error("expected failure for inverted interval")
	}
}

func TestFirstCrossing(t *testing.T) {
	// sin crosses 0.5 first at pi/6.
	tm, ok := FirstCrossing(math.Sin, 0.5, 0, 10, 500)
	if !ok {
		t.Fatal("no crossing found")
	}
	if math.Abs(tm-math.Pi/6) > 1e-9 {
		t.Errorf("first crossing at %g, want %g", tm, math.Pi/6)
	}
	// No crossing of level 2.
	if _, ok := FirstCrossing(math.Sin, 2, 0, 10, 100); ok {
		t.Error("found a crossing that cannot exist")
	}
	// Crossing exactly at start.
	if tm, ok := FirstCrossing(math.Sin, 0, 0, 1, 10); !ok || tm != 0 {
		t.Errorf("expected crossing at start, got %g ok=%v", tm, ok)
	}
}

// TestFirstCrossingOrdering: the returned crossing is never later than
// any other crossing in the window.
func TestFirstCrossingOrdering(t *testing.T) {
	f := func(phase float64) bool {
		p := math.Mod(math.Abs(phase), 3)
		g := func(x float64) float64 { return math.Sin(x + p) }
		tm, ok := FirstCrossing(g, 0.25, 0, 12, 600)
		if !ok {
			return true
		}
		// Scan densely: no earlier sign change of g-0.25 may exist.
		prev := g(0) - 0.25
		for i := 1; i < 4000; i++ {
			x := 12 * float64(i) / 4000
			if x >= tm-1e-6 {
				break
			}
			v := g(x) - 0.25
			if prev != 0 && v != 0 && math.Signbit(prev) != math.Signbit(v) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
