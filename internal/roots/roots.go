// Package roots provides scalar root finding used throughout the
// repository: bisection, Brent's method, and bracket expansion. The hybrid
// delay model reduces every gate-delay query to "when does the output
// trajectory cross V_th", which is a root of a sum of exponentials; Brent's
// method solves these to machine precision in a handful of iterations.
package roots

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when the supplied interval does not bracket a
// sign change.
var ErrNoBracket = errors.New("roots: interval does not bracket a root")

// ErrMaxIter is returned when the iteration limit is exceeded.
var ErrMaxIter = errors.New("roots: maximum iterations exceeded")

// DefaultTol is the default absolute tolerance on the root location.
// Delay quantities in this repository are O(1e-11) seconds, so 1e-18 s is
// far below any physically meaningful resolution.
const DefaultTol = 1e-18

// DefaultMaxIter bounds the iteration count of the solvers.
const DefaultMaxIter = 200

// Bisect finds a root of f in [a, b] with f(a) and f(b) of opposite sign.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 4*DefaultMaxIter; i++ {
		m := 0.5 * (a + b)
		if b-a <= tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation with bisection fallback). f(a) and f(b) must
// have opposite signs.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	d := b - a
	e := d
	for i := 0; i < DefaultMaxIter; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		eps := 2*math.Nextafter(math.Abs(b), math.Inf(1)) - 2*math.Abs(b)
		tol1 := eps + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation (secant if a == c).
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return b, ErrMaxIter
}

// ExpandBracket grows [a, b] geometrically away from a until f changes
// sign or the interval exceeds limit. It returns a bracketing interval.
func ExpandBracket(f func(float64) float64, a, b, limit float64) (float64, float64, error) {
	if b <= a {
		return 0, 0, fmt.Errorf("roots: invalid initial interval [%g, %g]", a, b)
	}
	fa := f(a)
	if fa == 0 {
		return a, a, nil
	}
	lo, hi := a, b
	for i := 0; i < 128; i++ {
		fb := f(hi)
		if fb == 0 || math.Signbit(fa) != math.Signbit(fb) {
			return lo, hi, nil
		}
		w := hi - a
		lo = hi
		fa = fb
		hi = a + 2*w
		if hi-a > limit {
			return 0, 0, fmt.Errorf("%w: no sign change in [%g, %g]", ErrNoBracket, a, a+limit)
		}
	}
	return 0, 0, ErrNoBracket
}

// FirstCrossing returns the earliest t in [t0, t1] with f(t) = level,
// scanning with nScan samples to isolate the first sign change and then
// polishing with Brent. It returns ok=false if no crossing exists in the
// interval.
func FirstCrossing(f func(float64) float64, level, t0, t1 float64, nScan int) (float64, bool) {
	if nScan < 2 {
		nScan = 64
	}
	g := func(t float64) float64 { return f(t) - level }
	prevT := t0
	prevV := g(t0)
	if prevV == 0 {
		return t0, true
	}
	for i := 1; i <= nScan; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(nScan)
		v := g(t)
		if v == 0 {
			return t, true
		}
		if math.Signbit(v) != math.Signbit(prevV) {
			r, err := Brent(g, prevT, t, 0)
			if err != nil {
				return 0, false
			}
			return r, true
		}
		prevT, prevV = t, v
	}
	return 0, false
}
