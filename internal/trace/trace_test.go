package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/waveform"
)

func mkTrace(initial bool, times ...float64) Trace {
	var ev []Event
	v := initial
	for _, t := range times {
		v = !v
		ev = append(ev, Event{Time: t, Value: v})
	}
	return New(initial, ev)
}

func TestNewNormalizes(t *testing.T) {
	tr := New(false, []Event{
		{Time: 2, Value: true},
		{Time: 1, Value: true}, // out of order; after sort this one leads
		{Time: 3, Value: true}, // redundant (no change)
		{Time: 4, Value: false},
	})
	if err := tr.Validate(); err != nil {
		t.Fatalf("normalized trace invalid: %v", err)
	}
	if tr.NumEvents() != 2 {
		t.Errorf("got %d events, want 2 (dedup + sort)", tr.NumEvents())
	}
}

func TestAtAndFinal(t *testing.T) {
	tr := mkTrace(false, 10, 20, 30)
	cases := []struct {
		tm   float64
		want bool
	}{{5, false}, {10, true}, {15, true}, {20, false}, {25, false}, {30, true}, {99, true}}
	for _, c := range cases {
		if got := tr.At(c.tm); got != c.want {
			t.Errorf("At(%g) = %v, want %v", c.tm, got, c.want)
		}
	}
	if !tr.Final() {
		t.Error("Final wrong")
	}
	empty := Trace{Initial: true}
	if !empty.At(5) || !empty.Final() {
		t.Error("empty trace handling wrong")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := Trace{Initial: false, Events: []Event{{Time: 1, Value: false}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected non-alternating error")
	}
	bad2 := Trace{Initial: false, Events: []Event{{Time: 2, Value: true}, {Time: 1, Value: false}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected ordering error")
	}
}

func TestDigitize(t *testing.T) {
	w, err := waveform.NewWaveform(
		[]float64{0, 1, 2, 3, 4},
		[]float64{0, 1, 0, 1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	tr := Digitize(w, 0.5)
	if tr.Initial {
		t.Error("initial should be low")
	}
	if tr.NumEvents() != 4 {
		t.Fatalf("got %d events, want 4", tr.NumEvents())
	}
	wantTimes := []float64{0.5, 1.5, 2.5, 3.5}
	for i, e := range tr.Events {
		if math.Abs(e.Time-wantTimes[i]) > 1e-12 {
			t.Errorf("event %d at %g, want %g", i, e.Time, wantTimes[i])
		}
	}
}

func TestDeviationAreaIdentical(t *testing.T) {
	tr := mkTrace(false, 10, 20, 30)
	if a := DeviationArea(tr, tr, 0, 100); a != 0 {
		t.Errorf("self deviation = %g, want 0", a)
	}
}

func TestDeviationAreaShift(t *testing.T) {
	a := mkTrace(false, 10, 20)
	b := a.Shift(3)
	// Disagreement during [10,13) and [20,23): total 6.
	if got := DeviationArea(a, b, 0, 100); math.Abs(got-6) > 1e-12 {
		t.Errorf("deviation = %g, want 6", got)
	}
}

func TestDeviationAreaComplement(t *testing.T) {
	a := mkTrace(false, 10, 20)
	b := a.Invert()
	if got := DeviationArea(a, b, 0, 50); math.Abs(got-50) > 1e-12 {
		t.Errorf("deviation vs complement = %g, want full window 50", got)
	}
}

func TestDeviationAreaWindow(t *testing.T) {
	a := mkTrace(false, 10)
	b := mkTrace(false, 30)
	// Disagree on [10, 30); window [15, 25] sees 10.
	if got := DeviationArea(a, b, 15, 25); math.Abs(got-10) > 1e-12 {
		t.Errorf("deviation = %g, want 10", got)
	}
	if got := DeviationArea(a, b, 25, 15); got != 0 {
		t.Errorf("inverted window = %g, want 0", got)
	}
}

// Deviation area is a pseudometric: symmetric and triangle inequality.
func TestDeviationAreaMetricProperties(t *testing.T) {
	gen := func(rng *rand.Rand) Trace {
		n := rng.Intn(8)
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Float64() * 100
		}
		var ev []Event
		v := rng.Intn(2) == 0
		init := v
		// sort via New's normalization; alternate explicitly
		for _, tm := range times {
			v = !v
			ev = append(ev, Event{Time: tm, Value: v})
		}
		tr := New(init, ev)
		return tr
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab := DeviationArea(a, b, 0, 100)
		dba := DeviationArea(b, a, 0, 100)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		dac := DeviationArea(a, c, 0, 100)
		dcb := DeviationArea(c, b, 0, 100)
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClipShiftInvert(t *testing.T) {
	tr := mkTrace(false, 10, 20, 30)
	c := tr.Clip(15, 25)
	if !c.Initial {
		t.Error("clip initial should be the value at 15 (true)")
	}
	if c.NumEvents() != 1 || c.Events[0].Time != 20 {
		t.Errorf("clip events wrong: %+v", c.Events)
	}
	s := tr.Shift(5)
	if s.Events[0].Time != 15 {
		t.Error("shift wrong")
	}
	inv := tr.Invert()
	if err := inv.Validate(); err != nil {
		t.Errorf("inverted trace invalid: %v", err)
	}
	if inv.At(15) != !tr.At(15) {
		t.Error("invert wrong")
	}
}

func TestCombineAndNOR2(t *testing.T) {
	a := mkTrace(false, 10, 40)
	b := mkTrace(false, 20, 30)
	nor := NOR2(a, b)
	// NOR truth: high iff both low. Initially true; falls at 10 (a up);
	// a stays up till 40, b pulses 20-30 inside: output rises again at 40.
	if !nor.Initial {
		t.Error("NOR initial should be true")
	}
	if nor.NumEvents() != 2 {
		t.Fatalf("NOR events = %+v", nor.Events)
	}
	if nor.Events[0].Time != 10 || nor.Events[0].Value {
		t.Errorf("first NOR event %+v", nor.Events[0])
	}
	if nor.Events[1].Time != 40 || !nor.Events[1].Value {
		t.Errorf("second NOR event %+v", nor.Events[1])
	}
}

func TestCombineSimultaneous(t *testing.T) {
	// Both inputs toggle at the same instant: only the net effect shows.
	a := mkTrace(false, 10)
	b := mkTrace(true, 10)
	xor := Combine(func(v []bool) bool { return v[0] != v[1] }, a, b)
	// XOR is true before (F,T) and true after (T,F): no event at all.
	if xor.NumEvents() != 0 {
		t.Errorf("XOR events = %+v, want none", xor.Events)
	}
}

func TestFromTransitions(t *testing.T) {
	tr := FromTransitions(false, []waveform.Transition{
		{Time: 1, Rising: true}, {Time: 2, Rising: false},
	})
	if tr.NumEvents() != 2 || !tr.Events[0].Value || tr.Events[1].Value {
		t.Errorf("FromTransitions wrong: %+v", tr.Events)
	}
	back := tr.Transitions()
	if len(back) != 2 || !back[0].Rising || back[1].Rising {
		t.Errorf("Transitions round-trip wrong: %+v", back)
	}
}
