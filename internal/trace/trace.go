// Package trace represents digital signal traces (sequences of boolean
// transitions) and the deviation-area metric the paper uses to score
// delay models against the analog golden reference (§VI).
package trace

import (
	"fmt"
	"math"
	"sort"

	"hybriddelay/internal/waveform"
)

// Event is one transition: the signal assumes Value at Time.
type Event struct {
	Time  float64
	Value bool
}

// Trace is a digital signal: an initial value and a sorted sequence of
// alternating transitions.
type Trace struct {
	Initial bool
	Events  []Event
}

// New builds a normalized trace from an initial value and transition
// events: events are sorted, redundant events (no value change) dropped.
func New(initial bool, events []Event) Trace {
	ev := append([]Event(nil), events...)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Time < ev[j].Time })
	out := Trace{Initial: initial}
	cur := initial
	for _, e := range ev {
		if e.Value == cur {
			continue
		}
		out.Events = append(out.Events, e)
		cur = e.Value
	}
	return out
}

// FromTransitions builds a trace from threshold-crossing transitions
// (rising = value becomes true).
func FromTransitions(initial bool, ts []waveform.Transition) Trace {
	ev := make([]Event, len(ts))
	for i, t := range ts {
		ev[i] = Event{Time: t.Time, Value: t.Rising}
	}
	return New(initial, ev)
}

// Digitize converts an analog waveform into a digital trace by
// thresholding at vth, exactly as the Involution Tool digitizes SPICE
// traces.
func Digitize(w *waveform.Waveform, vth float64) Trace {
	initial := w.Values[0] > vth
	crossings := w.Crossings(vth)
	ts := make([]Event, len(crossings))
	for i, c := range crossings {
		ts[i] = Event{Time: c.Time, Value: c.Rising}
	}
	return New(initial, ts)
}

// Validate checks the sorted/alternating invariants.
func (t Trace) Validate() error {
	cur := t.Initial
	last := math.Inf(-1)
	for i, e := range t.Events {
		if e.Time < last {
			return fmt.Errorf("trace: event %d out of order (%g after %g)", i, e.Time, last)
		}
		if e.Value == cur {
			return fmt.Errorf("trace: event %d does not change the value", i)
		}
		cur = e.Value
		last = e.Time
	}
	return nil
}

// At returns the signal value at time tm (events take effect at their
// own timestamp).
func (t Trace) At(tm float64) bool {
	// Find the last event with Time <= tm.
	i := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].Time > tm })
	if i == 0 {
		return t.Initial
	}
	return t.Events[i-1].Value
}

// Final returns the value after all events.
func (t Trace) Final() bool {
	if len(t.Events) == 0 {
		return t.Initial
	}
	return t.Events[len(t.Events)-1].Value
}

// NumEvents returns the number of transitions.
func (t Trace) NumEvents() int { return len(t.Events) }

// Transitions converts the events to waveform transitions.
func (t Trace) Transitions() []waveform.Transition {
	out := make([]waveform.Transition, len(t.Events))
	for i, e := range t.Events {
		out[i] = waveform.Transition{Time: e.Time, Rising: e.Value}
	}
	return out
}

// Clip restricts the trace to [t0, t1], resampling the initial value.
func (t Trace) Clip(t0, t1 float64) Trace {
	out := Trace{Initial: t.At(t0)}
	for _, e := range t.Events {
		if e.Time > t0 && e.Time <= t1 {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Invert returns the logical complement of the trace.
func (t Trace) Invert() Trace {
	out := Trace{Initial: !t.Initial, Events: make([]Event, len(t.Events))}
	for i, e := range t.Events {
		out.Events[i] = Event{Time: e.Time, Value: !e.Value}
	}
	return out
}

// Shift returns the trace delayed by d.
func (t Trace) Shift(d float64) Trace {
	out := Trace{Initial: t.Initial, Events: make([]Event, len(t.Events))}
	for i, e := range t.Events {
		out.Events[i] = Event{Time: e.Time + d, Value: e.Value}
	}
	return out
}

// DeviationArea computes the paper's accuracy metric: the total time
// during [t0, t1] in which the two traces disagree (the absolute area
// between the two 0/1 signals).
func DeviationArea(a, b Trace, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	type edge struct {
		time float64
		isA  bool
		val  bool
	}
	var edges []edge
	for _, e := range a.Events {
		if e.Time > t0 && e.Time < t1 {
			edges = append(edges, edge{e.Time, true, e.Value})
		}
	}
	for _, e := range b.Events {
		if e.Time > t0 && e.Time < t1 {
			edges = append(edges, edge{e.Time, false, e.Value})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].time < edges[j].time })
	va, vb := a.At(t0), b.At(t0)
	prev := t0
	area := 0.0
	for _, e := range edges {
		if va != vb {
			area += e.time - prev
		}
		prev = e.time
		if e.isA {
			va = e.val
		} else {
			vb = e.val
		}
	}
	if va != vb {
		area += t1 - prev
	}
	return area
}

// Logic combinators (zero-delay boolean algebra on traces), used to build
// reference gate outputs and in tests.

// Combine merges n traces through a boolean function, producing the
// zero-delay output trace.
func Combine(f func([]bool) bool, inputs ...Trace) Trace {
	vals := make([]bool, len(inputs))
	for i, in := range inputs {
		vals[i] = in.Initial
	}
	out := Trace{Initial: f(vals)}
	type tagged struct {
		time float64
		idx  int
		val  bool
	}
	var all []tagged
	for i, in := range inputs {
		for _, e := range in.Events {
			all = append(all, tagged{e.Time, i, e.Value})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].time < all[j].time })
	cur := out.Initial
	for k := 0; k < len(all); {
		// Apply all simultaneous events before re-evaluating.
		t := all[k].time
		for k < len(all) && all[k].time == t {
			vals[all[k].idx] = all[k].val
			k++
		}
		if v := f(vals); v != cur {
			out.Events = append(out.Events, Event{Time: t, Value: v})
			cur = v
		}
	}
	return out
}

// NOR2 returns the zero-delay NOR of two traces.
func NOR2(a, b Trace) Trace {
	return Combine(func(v []bool) bool { return !(v[0] || v[1]) }, a, b)
}
