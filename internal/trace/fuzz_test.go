package trace

// Fuzz target for the digitization boundary between the analog and
// digital worlds: arbitrary sample vectors either fail waveform
// validation with an error (non-monotonic timestamps, NaN/Inf samples)
// or digitize into a trace that satisfies every Trace invariant. No
// input may panic.

import (
	"encoding/binary"
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

func fuzzFloats(raw []byte, max int) []float64 {
	var out []float64
	for i := 0; i+8 <= len(raw) && len(out) < max; i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
	}
	return out
}

func FuzzDigitize(f *testing.F) {
	add := func(vth float64, vals ...float64) {
		raw := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		f.Add(raw, vth)
	}
	add(0.4, 0, 1e-12, 2e-12, 3e-12, 0.8, 0.8, 0.0, 0.8) // one dip
	add(0.4, 0, 1e-12, 0.0, 0.8)                         // single crossing
	add(0.4, 1e-12, 0, 0.8, 0.0)                         // non-monotonic times
	add(0.4, 0, 1e-12, math.NaN(), 0.8)                  // NaN sample
	add(0.4, 0, math.Inf(1), 0.8, 0.0)                   // Inf time
	add(math.NaN(), 0, 1e-12, 0.0, 0.8)                  // NaN threshold
	f.Fuzz(func(t *testing.T, raw []byte, vth float64) {
		vals := fuzzFloats(raw, 64)
		n := len(vals) / 2
		w, err := waveform.NewWaveform(vals[:n], vals[n:2*n])
		if err != nil {
			return // malformed samples must error, never panic
		}
		tr := Digitize(w, vth)
		if err := tr.Validate(); err != nil {
			t.Fatalf("digitized trace violates invariants: %v", err)
		}
		prev := math.Inf(-1)
		for i, e := range tr.Events {
			if math.IsNaN(e.Time) {
				t.Fatalf("event %d at NaN time", i)
			}
			if e.Time < w.Start() || e.Time > w.End() {
				t.Fatalf("event %d at %g outside the record [%g, %g]", i, e.Time, w.Start(), w.End())
			}
			if e.Time < prev {
				t.Fatalf("event %d out of order", i)
			}
			prev = e.Time
		}
		// The initial value matches the first sample's side of the
		// threshold, and re-digitizing is stable.
		if got, want := tr.Initial, w.Values[0] > vth; got != want {
			t.Fatalf("initial value %v, want %v (first sample %g vs vth %g)", got, want, w.Values[0], vth)
		}
		again := Digitize(w, vth)
		if again.Initial != tr.Initial || len(again.Events) != len(tr.Events) {
			t.Fatal("digitization is not deterministic")
		}
	})
}
