package fit

// Table-driven convergence tests for the numeric substrate behind the
// Table I parametrization: bracket handling of the scalar minimisers,
// Nelder–Mead on standard test surfaces, and residual bounds of the
// Levenberg–Marquardt solver. fit is the package every hybrid fit rests
// on, so its convergence contracts are pinned explicitly.

import (
	"math"
	"testing"
)

func TestBrentMinTable(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name    string
		f       func(float64) float64
		a, b    float64
		tol     float64
		wantX   float64
		xTol    float64
		wantErr bool
	}{
		{"quadratic", func(x float64) float64 { return (x - 2) * (x - 2) }, 0, 5, 1e-10, 2, 1e-6, false},
		{"quartic flat bottom", func(x float64) float64 { return math.Pow(x-1, 4) }, -2, 4, 1e-10, 1, 1e-2, false},
		{"abs kink", func(x float64) float64 { return math.Abs(x - 0.75) }, -3, 3, 1e-10, 0.75, 1e-6, false},
		{"cosine", math.Cos, 2, 5, 1e-12, math.Pi, 1e-6, false},
		// Minimum at the lower boundary (off zero: Brent's tolerance is
		// relative in x, so it cannot terminate onto x = 0 itself).
		{"boundary minimum", func(x float64) float64 { return x }, 1, 2, 1e-10, 1, 1e-4, false},
		{"exp well", func(x float64) float64 { return math.Exp(x) - 2*x }, -1, 3, 1e-12, math.Log(2), 1e-6, false},
		// Bracket failures: empty, inverted, degenerate and non-finite
		// intervals must error instead of iterating on garbage.
		{"inverted bracket", math.Cos, 5, 2, 1e-10, 0, 0, true},
		{"degenerate bracket", math.Cos, 2, 2, 1e-10, 0, 0, true},
		{"nan lower bound", math.Cos, math.NaN(), 2, 1e-10, 0, 0, true},
		{"nan upper bound", math.Cos, 2, math.NaN(), 1e-10, 0, 0, true},
		{"infinite bracket", math.Cos, -inf, inf, 1e-10, 0, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := BrentMin(tc.f, tc.a, tc.b, tc.tol)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("BrentMin accepted bracket [%g, %g]", tc.a, tc.b)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.X-tc.wantX) > tc.xTol {
				t.Errorf("minimiser %g, want %g ± %g", res.X, tc.wantX, tc.xTol)
			}
			if res.Evals < 1 || res.Evals > 500 {
				t.Errorf("implausible evaluation count %d", res.Evals)
			}
			// GoldenSection must agree on the same unimodal surface.
			g, err := GoldenSection(tc.f, tc.a, tc.b, tc.tol)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(g.X-tc.wantX) > math.Max(tc.xTol, 1e-4) {
				t.Errorf("golden section minimiser %g, want %g", g.X, tc.wantX)
			}
		})
	}
	// The same bracket validation guards GoldenSection.
	for _, bad := range [][2]float64{{5, 2}, {math.NaN(), 1}, {0, math.Inf(1)}} {
		if _, err := GoldenSection(math.Cos, bad[0], bad[1], 1e-10); err == nil {
			t.Errorf("GoldenSection accepted bracket %v", bad)
		}
	}
}

func TestNelderMeadTable(t *testing.T) {
	cases := []struct {
		name  string
		f     func([]float64) float64
		x0    []float64
		want  []float64
		xTol  float64
		opt   *NelderMeadOptions
		maxRe int
	}{
		{
			name: "sphere 3d",
			f: func(x []float64) float64 {
				s := 0.0
				for _, v := range x {
					s += v * v
				}
				return s
			},
			x0: []float64{3, -2, 1}, want: []float64{0, 0, 0}, xTol: 1e-3, maxRe: 2,
		},
		{
			name: "booth",
			f: func(x []float64) float64 {
				a := x[0] + 2*x[1] - 7
				b := 2*x[0] + x[1] - 5
				return a*a + b*b
			},
			x0: []float64{0, 0}, want: []float64{1, 3}, xTol: 1e-3, maxRe: 2,
		},
		{
			name: "beale",
			f: func(x []float64) float64 {
				a := 1.5 - x[0] + x[0]*x[1]
				b := 2.25 - x[0] + x[0]*x[1]*x[1]
				c := 2.625 - x[0] + x[0]*x[1]*x[1]*x[1]
				return a*a + b*b + c*c
			},
			x0: []float64{1, 1}, want: []float64{3, 0.5}, xTol: 1e-2,
			opt: &NelderMeadOptions{MaxEvals: 20000}, maxRe: 6,
		},
		{
			name: "rosenbrock valley",
			f: func(x []float64) float64 {
				a := 1 - x[0]
				b := x[1] - x[0]*x[0]
				return a*a + 100*b*b
			},
			x0: []float64{-1.2, 1}, want: []float64{1, 1}, xTol: 1e-2,
			opt: &NelderMeadOptions{MaxEvals: 20000}, maxRe: 6,
		},
		{
			name: "shifted anisotropic quadratic",
			f: func(x []float64) float64 {
				return (x[0]-4)*(x[0]-4) + 100*(x[1]+2)*(x[1]+2) + 0.01*(x[2]-1)*(x[2]-1)
			},
			x0: []float64{0, 0, 0}, want: []float64{4, -2, 1}, xTol: 5e-2,
			opt: &NelderMeadOptions{MaxEvals: 40000}, maxRe: 6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Restarted(tc.f, tc.x0, tc.opt, tc.maxRe, 1e-12)
			if err != nil && !res.Converged {
				t.Logf("optimizer reported %v (F=%g)", err, res.F)
			}
			for i := range tc.want {
				if math.Abs(res.X[i]-tc.want[i]) > tc.xTol {
					t.Errorf("x[%d] = %g, want %g ± %g (F=%g after %d evals)",
						i, res.X[i], tc.want[i], tc.xTol, res.F, res.Evals)
				}
			}
		})
	}
}

func TestLevenbergMarquardtResidualBounds(t *testing.T) {
	cases := []struct {
		name    string
		resid   ResidualFunc
		x0      []float64
		want    []float64
		xTol    float64
		maxCost float64
	}{
		{
			name: "exact line",
			resid: func(p []float64) []float64 {
				xs := []float64{0, 1, 2, 3}
				out := make([]float64, len(xs))
				for i, x := range xs {
					out[i] = p[0]*x + p[1] - (3*x - 1)
				}
				return out
			},
			x0: []float64{0, 0}, want: []float64{3, -1}, xTol: 1e-6, maxCost: 1e-12,
		},
		{
			name: "rational decay",
			resid: func(p []float64) []float64 {
				out := make([]float64, 10)
				for i := range out {
					x := float64(i) * 0.5
					out[i] = p[0]/(1+p[1]*x) - 2/(1+0.3*x)
				}
				return out
			},
			x0: []float64{1, 1}, want: []float64{2, 0.3}, xTol: 1e-4, maxCost: 1e-10,
		},
		{
			name: "overdetermined sine fit",
			resid: func(p []float64) []float64 {
				out := make([]float64, 25)
				for i := range out {
					x := float64(i) * 0.25
					out[i] = p[0]*math.Sin(p[1]*x) - 1.5*math.Sin(0.8*x)
				}
				return out
			},
			x0: []float64{1, 1}, want: []float64{1.5, 0.8}, xTol: 1e-4, maxCost: 1e-10,
		},
		{
			name: "residual plateau keeps best point",
			resid: func(p []float64) []float64 {
				// Flat beyond |p| > 3: the solver must settle at the
				// interior optimum, not wander the plateau.
				v := p[0]
				if v > 3 {
					v = 3
				}
				return []float64{v - 2}
			},
			x0: []float64{0}, want: []float64{2}, xTol: 1e-5, maxCost: 1e-10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := LevenbergMarquardt(tc.resid, tc.x0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Error("solver did not report convergence")
			}
			for i := range tc.want {
				if math.Abs(res.X[i]-tc.want[i]) > tc.xTol {
					t.Errorf("x[%d] = %g, want %g ± %g", i, res.X[i], tc.want[i], tc.xTol)
				}
			}
			if res.Cost > tc.maxCost {
				t.Errorf("cost %g exceeds residual bound %g", res.Cost, tc.maxCost)
			}
			// The reported cost is consistent with the residuals at X.
			r := tc.resid(res.X)
			sum := 0.0
			for _, v := range r {
				sum += v * v
			}
			if math.Abs(0.5*sum-res.Cost) > 1e-12+1e-6*res.Cost {
				t.Errorf("reported cost %g inconsistent with residuals (%g)", res.Cost, 0.5*sum)
			}
		})
	}
}
