package fit

import (
	"fmt"
	"math"
)

// golden is the golden ratio section constant (3 - sqrt(5))/2.
const golden = 0.3819660112501051

// MinimizeScalarResult reports the outcome of 1-D minimisation.
type MinimizeScalarResult struct {
	X     float64 // minimiser
	F     float64 // value at X
	Evals int
}

// validBracket rejects empty or non-finite minimisation intervals —
// NaN endpoints would otherwise slip past an ordering test (every
// comparison with NaN is false) and poison the whole iteration.
func validBracket(a, b float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) || b <= a {
		return fmt.Errorf("fit: invalid interval [%g, %g]", a, b)
	}
	return nil
}

// GoldenSection minimises f on [a, b] by golden-section search to the
// given absolute x tolerance.
func GoldenSection(f func(float64) float64, a, b, tol float64) (MinimizeScalarResult, error) {
	if err := validBracket(a, b); err != nil {
		return MinimizeScalarResult{}, err
	}
	if tol <= 0 {
		tol = 1e-12 * math.Max(math.Abs(a), math.Abs(b))
		if tol == 0 {
			tol = 1e-18
		}
	}
	x1 := a + golden*(b-a)
	x2 := b - golden*(b-a)
	f1, f2 := f(x1), f(x2)
	evals := 2
	for b-a > tol && evals < 500 {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = a + golden*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = b - golden*(b-a)
			f2 = f(x2)
		}
		evals++
	}
	if f1 < f2 {
		return MinimizeScalarResult{X: x1, F: f1, Evals: evals}, nil
	}
	return MinimizeScalarResult{X: x2, F: f2, Evals: evals}, nil
}

// BrentMin minimises f on [a, b] using Brent's parabolic-interpolation
// method (the algorithm behind MATLAB's fminbnd, which the paper used to
// validate its closed-form Charlie delay expressions).
func BrentMin(f func(float64) float64, a, b, tol float64) (MinimizeScalarResult, error) {
	if err := validBracket(a, b); err != nil {
		return MinimizeScalarResult{}, err
	}
	if tol <= 0 {
		tol = 1e-12
	}
	const cgold = golden
	const zeps = 1e-300
	var d, e float64
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	evals := 1
	for iter := 0; iter < 200; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + zeps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			return MinimizeScalarResult{X: x, F: fx, Evals: evals}, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Trial parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		evals++
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return MinimizeScalarResult{X: x, F: fx, Evals: evals}, ErrMaxEval
}
