package fit

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// ResidualFunc maps parameters to a residual vector. Least-squares solvers
// minimise 0.5 * sum(r_i^2).
type ResidualFunc func(params []float64) []float64

// LeastSquaresOptions configures LevenbergMarquardt.
type LeastSquaresOptions struct {
	// TolG terminates when the gradient infinity norm falls below TolG.
	// Default 1e-14.
	TolG float64
	// TolRel terminates when the relative cost decrease in a step falls
	// below TolRel. Default 1e-12.
	TolRel float64
	// MaxIter bounds outer iterations. Default 200.
	MaxIter int
	// InitialLambda is the starting damping factor. Default 1e-3.
	InitialLambda float64
	// Scale holds per-parameter magnitudes used for the finite-difference
	// Jacobian steps. If nil, |x_i| (or 1) is used.
	Scale []float64
}

// LeastSquaresResult reports the outcome of a least-squares fit.
type LeastSquaresResult struct {
	X         []float64
	Cost      float64 // 0.5 * ||r||^2 at X
	Iters     int
	Evals     int
	Converged bool
}

// LevenbergMarquardt minimises 0.5*||r(x)||^2 with a damped Gauss–Newton
// iteration and a numerically differenced Jacobian. It is the workhorse
// behind the Table I parametrization.
func LevenbergMarquardt(r ResidualFunc, x0 []float64, opt *LeastSquaresOptions) (LeastSquaresResult, error) {
	n := len(x0)
	if n == 0 {
		return LeastSquaresResult{}, fmt.Errorf("fit: empty starting point")
	}
	o := LeastSquaresOptions{}
	if opt != nil {
		o = *opt
	}
	if o.TolG <= 0 {
		o.TolG = 1e-14
	}
	if o.TolRel <= 0 {
		o.TolRel = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.InitialLambda <= 0 {
		o.InitialLambda = 1e-3
	}

	x := append([]float64(nil), x0...)
	evals := 0
	resid := func(p []float64) []float64 {
		evals++
		out := r(p)
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				out[i] = 1e150
			}
		}
		return out
	}
	res := resid(x)
	m := len(res)
	if m == 0 {
		return LeastSquaresResult{}, fmt.Errorf("fit: residual function returned no residuals")
	}
	cost := 0.5 * dot(res, res)
	lambda := o.InitialLambda

	jac := la.NewMatrix(m, n)
	for iter := 0; iter < o.MaxIter; iter++ {
		// Numeric Jacobian (forward differences).
		for j := 0; j < n; j++ {
			scale := math.Abs(x[j])
			if o.Scale != nil && o.Scale[j] > 0 {
				scale = o.Scale[j]
			}
			if scale == 0 {
				scale = 1
			}
			h := 1e-7 * scale
			xj := x[j]
			x[j] = xj + h
			rp := resid(x)
			x[j] = xj
			for i := 0; i < m; i++ {
				jac.Set(i, j, (rp[i]-res[i])/h)
			}
		}
		// Gradient g = J^T r and normal matrix JtJ.
		g := make([]float64, n)
		jtj := la.NewMatrix(n, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				jij := jac.At(i, j)
				g[j] += jij * res[i]
				for k := j; k < n; k++ {
					jtj.Add(j, k, jij*jac.At(i, k))
				}
			}
		}
		for j := 0; j < n; j++ {
			for k := 0; k < j; k++ {
				jtj.Set(j, k, jtj.At(k, j))
			}
		}
		if la.NormInf(g) < o.TolG {
			return LeastSquaresResult{X: x, Cost: cost, Iters: iter, Evals: evals, Converged: true}, nil
		}

		// Try damped steps, adapting lambda until the cost decreases.
		improved := false
		for try := 0; try < 40; try++ {
			a := jtj.Clone()
			for j := 0; j < n; j++ {
				a.Add(j, j, lambda*math.Max(jtj.At(j, j), 1e-300))
			}
			negG := make([]float64, n)
			for j := range g {
				negG[j] = -g[j]
			}
			step, err := la.SolveDense(a, negG)
			if err != nil {
				lambda *= 10
				continue
			}
			xNew := make([]float64, n)
			for j := range x {
				xNew[j] = x[j] + step[j]
			}
			resNew := resid(xNew)
			costNew := 0.5 * dot(resNew, resNew)
			if costNew < cost {
				relDrop := (cost - costNew) / math.Max(cost, 1e-300)
				x, res, cost = xNew, resNew, costNew
				lambda = math.Max(lambda/3, 1e-12)
				improved = true
				if relDrop < o.TolRel {
					return LeastSquaresResult{X: x, Cost: cost, Iters: iter + 1, Evals: evals, Converged: true}, nil
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			// Damping saturated: we are at a (possibly flat) minimum.
			return LeastSquaresResult{X: x, Cost: cost, Iters: iter, Evals: evals, Converged: true}, nil
		}
	}
	return LeastSquaresResult{X: x, Cost: cost, Iters: o.MaxIter, Evals: evals}, ErrMaxEval
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
