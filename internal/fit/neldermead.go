// Package fit provides the numerical optimisation substrate used to
// parametrize the hybrid delay model: Nelder–Mead simplex minimisation,
// Brent/golden-section line minimisation, and damped Gauss–Newton
// (Levenberg–Marquardt) nonlinear least squares with numeric Jacobians.
//
// The paper calibrates R1..R4, C_N and C_O with MATLAB's optimisation
// toolbox (least-squares fitting plus fminbnd); Go has no comparable
// stdlib facility, so this package rebuilds the required algorithms from
// scratch on top of the standard library.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrMaxEval is returned when an optimiser exhausts its evaluation budget
// before reaching its convergence tolerance.
var ErrMaxEval = errors.New("fit: maximum function evaluations exceeded")

// Result reports the outcome of a minimisation.
type Result struct {
	X         []float64 // minimiser
	F         float64   // objective value at X
	Evals     int       // number of objective evaluations
	Converged bool      // true if the tolerance was met
}

// NelderMeadOptions configures the simplex minimiser.
type NelderMeadOptions struct {
	// InitialStep is the per-coordinate size of the starting simplex.
	// If nil, 5% of each coordinate magnitude (or 1e-4) is used.
	InitialStep []float64
	// TolF terminates when the simplex function-value spread falls below
	// TolF * (|f_best| + |f_worst| + tiny). Default 1e-12.
	TolF float64
	// TolX terminates when the simplex diameter falls below TolX. Default 0
	// (disabled).
	TolX float64
	// MaxEvals bounds objective evaluations. Default 200 * dim^2.
	MaxEvals int
}

// NelderMead minimises f starting from x0 using the Nelder–Mead downhill
// simplex method with standard (1, 2, 0.5, 0.5) coefficients and adaptive
// shrinking.
func NelderMead(f func([]float64) float64, x0 []float64, opt *NelderMeadOptions) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("fit: empty starting point")
	}
	o := NelderMeadOptions{}
	if opt != nil {
		o = *opt
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 200 * n * n
		if o.MaxEvals < 2000 {
			o.MaxEvals = 2000
		}
	}
	step := o.InitialStep
	if step == nil {
		step = make([]float64, n)
		for i, v := range x0 {
			s := 0.05 * math.Abs(v)
			if s == 0 {
				s = 1e-4
			}
			step[i] = s
		}
	}

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			v = math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus one perturbed point per axis.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), eval(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += step[i]
		simplex[i+1] = vertex{x, eval(x)}
	}

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	for evals < o.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		best, worst := simplex[0], simplex[n]

		// Convergence tests.
		spread := math.Abs(worst.f - best.f)
		if spread <= o.TolF*(math.Abs(best.f)+math.Abs(worst.f)+1e-300) {
			return Result{X: best.x, F: best.f, Evals: evals, Converged: true}, nil
		}
		if o.TolX > 0 {
			diam := 0.0
			for i := 1; i <= n; i++ {
				d := 0.0
				for j := 0; j < n; j++ {
					d += (simplex[i].x[j] - best.x[j]) * (simplex[i].x[j] - best.x[j])
				}
				diam = math.Max(diam, math.Sqrt(d))
			}
			if diam <= o.TolX {
				return Result{X: best.x, F: best.f, Evals: evals, Converged: true}, nil
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += simplex[i].x[j]
			}
			centroid[j] = s / float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr := eval(xr)
		switch {
		case fr < best.f:
			// Expansion.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(simplex[n].x, xe)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, xr)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, xr)
			simplex[n].f = fr
		default:
			// Contraction (outside if the reflected point improved on the
			// worst vertex, inside otherwise).
			if fr < worst.f {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + 0.5*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				copy(simplex[n].x, xc)
				simplex[n].f = fc
			} else {
				// Shrink towards the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Evals: evals}, ErrMaxEval
}

// Restarted runs NelderMead and restarts it from the incumbent minimiser
// until the objective stops improving by more than relImprove, up to
// maxRestarts rounds. Nelder–Mead can stagnate on narrow valleys; cheap
// restarts with a fresh simplex are the standard remedy.
func Restarted(f func([]float64) float64, x0 []float64, opt *NelderMeadOptions, maxRestarts int, relImprove float64) (Result, error) {
	if maxRestarts < 1 {
		maxRestarts = 1
	}
	if relImprove <= 0 {
		relImprove = 1e-9
	}
	best, err := NelderMead(f, x0, opt)
	total := best.Evals
	for r := 1; r < maxRestarts; r++ {
		next, nerr := NelderMead(f, best.X, opt)
		total += next.Evals
		improved := best.F-next.F > relImprove*(math.Abs(best.F)+1e-300)
		if next.F < best.F {
			best = next
			err = nerr
		}
		if !improved {
			break
		}
	}
	best.Evals = total
	return best, err
}
