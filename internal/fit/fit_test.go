package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("minimiser = %v, want (3, -1)", res.X)
	}
	if !res.Converged {
		t.Error("expected convergence")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Restarted(f, []float64{-1.2, 1}, &NelderMeadOptions{MaxEvals: 20000}, 6, 1e-12)
	if err != nil && !res.Converged {
		t.Logf("optimizer reported %v (F=%g)", err, res.F)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("minimiser = %v, want (1, 1)", res.X)
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, nil); err == nil {
		t.Error("expected error for empty start")
	}
}

func TestNelderMeadNaNObjective(t *testing.T) {
	// NaN regions must not derail the simplex.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res, err := Restarted(f, []float64{1}, nil, 4, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 0.1 {
		t.Errorf("minimiser = %v, want ~2", res.X)
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.5) * (x - 1.5) }
	res, err := GoldenSection(f, 0, 4, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-1.5) > 1e-8 {
		t.Errorf("minimiser = %g, want 1.5", res.X)
	}
	if _, err := GoldenSection(f, 4, 0, 0); err == nil {
		t.Error("expected invalid-interval error")
	}
}

func TestBrentMin(t *testing.T) {
	// Minimise a shifted cosine: min at pi within [2, 5].
	res, err := BrentMin(math.Cos, 2, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-math.Pi) > 1e-6 {
		t.Errorf("minimiser = %g, want pi", res.X)
	}
	if math.Abs(res.F+1) > 1e-10 {
		t.Errorf("minimum = %g, want -1", res.F)
	}
	if _, err := BrentMin(math.Cos, 5, 2, 0); err == nil {
		t.Error("expected invalid-interval error")
	}
}

func TestBrentMinMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := rng.Float64()*8 - 4
		f := func(x float64) float64 { return (x-c)*(x-c) + 0.5*math.Abs(x-c) }
		b, err := BrentMin(f, -6, 6, 1e-10)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g, err := GoldenSection(f, -6, 6, 1e-10)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(b.X-g.X) > 1e-6 {
			t.Fatalf("trial %d: brent %g vs golden %g (true %g)", trial, b.X, g.X, c)
		}
	}
}

func TestLevenbergMarquardtLinear(t *testing.T) {
	// Fit y = a x + b to exact data.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // a=2, b=1
	r := func(p []float64) []float64 {
		out := make([]float64, len(xs))
		for i := range xs {
			out[i] = p[0]*xs[i] + p[1] - ys[i]
		}
		return out
	}
	res, err := LevenbergMarquardt(r, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Errorf("fit = %v, want (2, 1)", res.X)
	}
	if res.Cost > 1e-12 {
		t.Errorf("cost = %g, want ~0", res.Cost)
	}
}

func TestLevenbergMarquardtExponential(t *testing.T) {
	// Fit y = A exp(-k x): a nonlinear problem like the RC fitting.
	trueA, trueK := 2.5, 0.7
	var xs, ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i) * 0.3
		xs = append(xs, x)
		ys = append(ys, trueA*math.Exp(-trueK*x))
	}
	r := func(p []float64) []float64 {
		out := make([]float64, len(xs))
		for i := range xs {
			out[i] = p[0]*math.Exp(-p[1]*xs[i]) - ys[i]
		}
		return out
	}
	res, err := LevenbergMarquardt(r, []float64{1, 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-trueA) > 1e-5 || math.Abs(res.X[1]-trueK) > 1e-5 {
		t.Errorf("fit = %v, want (%g, %g)", res.X, trueA, trueK)
	}
}

func TestLevenbergMarquardtOverdetermined(t *testing.T) {
	// Noisy overdetermined system still converges to the LSQ optimum.
	rng := rand.New(rand.NewSource(5))
	trueP := []float64{1.5, -0.5}
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, trueP[0]*x+trueP[1]+0.01*rng.NormFloat64())
	}
	r := func(p []float64) []float64 {
		out := make([]float64, len(xs))
		for i := range xs {
			out[i] = p[0]*xs[i] + p[1] - ys[i]
		}
		return out
	}
	res, err := LevenbergMarquardt(r, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-trueP[0]) > 0.05 || math.Abs(res.X[1]-trueP[1]) > 0.05 {
		t.Errorf("fit = %v, want approx %v", res.X, trueP)
	}
}

func TestLevenbergMarquardtValidation(t *testing.T) {
	if _, err := LevenbergMarquardt(func(p []float64) []float64 { return nil }, []float64{1}, nil); err == nil {
		t.Error("expected error for empty residuals")
	}
	if _, err := LevenbergMarquardt(func(p []float64) []float64 { return p }, nil, nil); err == nil {
		t.Error("expected error for empty start")
	}
}

func TestLevenbergMarquardtNonFiniteResiduals(t *testing.T) {
	// Residuals returning Inf in part of the domain must not crash.
	r := func(p []float64) []float64 {
		if p[0] > 5 {
			return []float64{math.Inf(1)}
		}
		return []float64{p[0] - 2}
	}
	res, err := LevenbergMarquardt(r, []float64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("fit = %v, want 2", res.X)
	}
}
