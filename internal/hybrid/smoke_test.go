package hybrid

import (
	"testing"

	"hybriddelay/internal/waveform"
)

// TestSmokeTableI prints the characteristic delays of the Table I
// parametrization; tight assertions live in the dedicated test files.
func TestSmokeTableI(t *testing.T) {
	p := TableI()
	c, err := p.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exact : fall %.2f %.2f %.2f | rise %.2f %.2f %.2f [ps]",
		waveform.ToPs(c.FallMinusInf), waveform.ToPs(c.FallZero), waveform.ToPs(c.FallPlusInf),
		waveform.ToPs(c.RiseMinusInf), waveform.ToPs(c.RiseZero), waveform.ToPs(c.RisePlusInf))
	f, err := p.CharlieCharacteristic()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("charlie: fall %.2f %.2f %.2f | rise %.2f %.2f %.2f [ps]",
		waveform.ToPs(f.FallMinusInf), waveform.ToPs(f.FallZero), waveform.ToPs(f.FallPlusInf),
		waveform.ToPs(f.RiseMinusInf), waveform.ToPs(f.RiseZero), waveform.ToPs(f.RisePlusInf))
}
