package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/la"
	"hybriddelay/internal/ode"
	"hybriddelay/internal/trace"
)

// Channel is the paper's 2-input hybrid NOR delay channel for digital
// timing simulation (§VI): a stateful channel that listens to both input
// nets, advances the continuous state (V_N, V_O) along the closed-form
// mode trajectories, switches modes at pure-delay-shifted input threshold
// crossings, and emits an output transition whenever the resulting V_O
// trajectory crosses V_th.
//
// Unlike single-input single-output involution channels, this channel
// sees which input switched and in which temporal relation to the other
// input — which is exactly what lets it reproduce MIS effects.
//
// Because the pure delay DMin defers each mode switch, the channel's
// continuous future is known DMin ahead of the simulation clock. It is
// kept as a piecewise trajectory (a list of segments), so threshold
// crossings that fall inside the deferred window survive later input
// events — an input event only changes the trajectory *after* its own
// effective switch time.
type Channel struct {
	P   Params
	sim *dtsim.Simulator
	a   *dtsim.Net
	b   *dtsim.Net
	out *dtsim.Net

	// segs is the piecewise future of the continuous state: segs[i] is
	// active on [segs[i].start, segs[i+1].start), the last segment
	// extends to infinity. Invariant: segs[0].start <= sim.Now() after
	// every event, and the list is sorted.
	segs []futureSeg

	pendingID  dtsim.EventID
	hasPending bool
}

type futureSeg struct {
	start float64
	mode  Mode
	sol   *ode.Solution2 // local time: t - start
}

// NewChannel wires a hybrid NOR channel between two input nets and an
// output net. The initial continuous state is the current mode's steady
// state, with V_N = vn0 in mode (1,1) where the steady state leaves V_N
// free.
func NewChannel(sim *dtsim.Simulator, p Params, a, b, out *dtsim.Net, vn0 float64) (*Channel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{P: p, sim: sim, a: a, b: b, out: out}
	mode := ModeOf(a.Value(), b.Value())
	state := p.steadyState(mode, vn0)
	sol, err := p.System(mode).Solve(state)
	if err != nil {
		return nil, err
	}
	ch.segs = []futureSeg{{start: sim.Now(), mode: mode, sol: sol}}
	out.SetInitial(state.Y > p.Supply.Vth)

	a.OnChange(func(t float64, _ bool) { ch.onInput(t) })
	b.OnChange(func(t float64, _ bool) { ch.onInput(t) })
	return ch, nil
}

// steadyState returns the settled (V_N, V_O) of a mode; vn0 fills the
// V_N degree of freedom in mode (1,1).
func (p Params) steadyState(m Mode, vn0 float64) la.Vec2 {
	switch m {
	case Mode00:
		return la.Vec2{X: p.Supply.VDD, Y: p.Supply.VDD}
	case Mode01:
		return la.Vec2{X: p.Supply.VDD, Y: 0}
	case Mode10:
		return la.Vec2{X: 0, Y: 0}
	default: // Mode11
		return la.Vec2{X: vn0, Y: 0}
	}
}

// StateAt evaluates the channel's continuous state at absolute time t
// (within the currently known future).
func (ch *Channel) StateAt(t float64) la.Vec2 {
	i := ch.segIndex(t)
	local := t - ch.segs[i].start
	if local < 0 {
		local = 0
	}
	return ch.segs[i].sol.At(local)
}

// ModeAt returns the scheduled mode at absolute time t.
func (ch *Channel) ModeAt(t float64) Mode {
	return ch.segs[ch.segIndex(t)].mode
}

func (ch *Channel) segIndex(t float64) int {
	i := len(ch.segs) - 1
	for i > 0 && ch.segs[i].start > t {
		i--
	}
	return i
}

// onInput handles an input transition at simulation time t. The pure
// delay DMin defers the mode switch to t + DMin; the trajectory before
// that instant is unaffected.
func (ch *Channel) onInput(t float64) {
	tEff := t + ch.P.DMin
	i := ch.segIndex(tEff)
	state := ch.segs[i].sol.At(tEff - ch.segs[i].start)
	mode := ModeOf(ch.a.Value(), ch.b.Value())
	sol, err := ch.P.System(mode).Solve(state)
	if err != nil {
		panic(fmt.Sprintf("hybrid: mode %v solve failed: %v", mode, err))
	}
	// Truncate any previously scheduled future after tEff and append the
	// new segment.
	ch.segs = append(ch.segs[:i+1], futureSeg{start: tEff, mode: mode, sol: sol})
	ch.prune(t)
	ch.reschedule()
}

// prune drops segments that ended before now, keeping the active one.
func (ch *Channel) prune(now float64) {
	for len(ch.segs) >= 2 && ch.segs[1].start <= now {
		ch.segs = ch.segs[1:]
	}
}

// reschedule recomputes the next output threshold crossing across the
// whole known future and (re)schedules the output event.
func (ch *Channel) reschedule() {
	if ch.hasPending {
		ch.sim.Cancel(ch.pendingID)
		ch.hasPending = false
	}
	now := ch.sim.Now()
	rising := !ch.out.Value()
	tCross, ok := ch.nextCrossing(ch.P.Supply.Vth, rising, now)
	if !ok {
		return
	}
	id, err := ch.sim.Schedule(tCross, ch.fire)
	if err != nil {
		panic(fmt.Sprintf("hybrid: schedule failed: %v", err))
	}
	ch.pendingID = id
	ch.hasPending = true
}

// nextCrossing finds the first V_th crossing in the given direction at
// absolute time >= after, scanning every future segment.
func (ch *Channel) nextCrossing(level float64, rising bool, after float64) (float64, bool) {
	for i, seg := range ch.segs {
		var end float64
		if i+1 < len(ch.segs) {
			end = ch.segs[i+1].start
		} else {
			tau := seg.sol.SlowestTimeConstant()
			if math.IsInf(tau, 1) {
				tau = 1e-9
			}
			end = math.Max(seg.start, after) + 60*tau
		}
		if end <= after {
			continue
		}
		t0 := math.Max(seg.start, after)
		if t, ok := firstDirectionalCrossing(func(t float64) float64 {
			return seg.sol.At(t - seg.start).Y
		}, level, rising, t0, end); ok {
			return t, true
		}
	}
	return 0, false
}

// fire emits the pending output transition and looks for a follow-up
// crossing (a segment's two-exponential V_O can cross the threshold at
// most twice, and later segments may cross again).
func (ch *Channel) fire(t float64) {
	ch.hasPending = false
	ch.out.Set(t, !ch.out.Value())
	ch.prune(t)
	ch.reschedule()
}

// ApplyNOR runs the channel offline over two input traces and returns
// the output trace, simulating until all activity has settled. This is
// the bulk-evaluation entry point used by the accuracy pipeline.
func ApplyNOR(p Params, a, b trace.Trace, until float64, vn0 float64) (trace.Trace, error) {
	sim := dtsim.NewSimulator()
	na := dtsim.NewNet("a", a.Initial)
	nb := dtsim.NewNet("b", b.Initial)
	no := dtsim.NewNet("o", false)
	no.Record()
	if _, err := NewChannel(sim, p, na, nb, no, vn0); err != nil {
		return trace.Trace{}, err
	}
	if err := dtsim.Drive(sim, na, a); err != nil {
		return trace.Trace{}, err
	}
	if err := dtsim.Drive(sim, nb, b); err != nil {
		return trace.Trace{}, err
	}
	if err := sim.Run(until); err != nil {
		return trace.Trace{}, err
	}
	return no.Trace(), nil
}
