package hybrid

import (
	"math"
	"testing"
)

func tableINOR3() NOR3Params {
	return NOR3FromNOR2(TableI())
}

func TestNOR3Validate(t *testing.T) {
	p := tableINOR3()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
	bad := p
	bad.CN2 = -1
	if err := bad.Validate(); err == nil {
		t.Error("invalid NOR3 params accepted")
	}
}

// TestNOR3FallingSpeedUpStronger: the defining 3-input MIS prediction —
// three simultaneous rising inputs discharge through three parallel
// pull-downs, so the Delta=0 speed-up exceeds the pairwise one, which
// exceeds the SIS delay... i.e. delays order
// all-simultaneous < two-simultaneous < single-input.
func TestNOR3FallingSpeedUpStronger(t *testing.T) {
	p := tableINOR3()
	c, err := p.Characteristic3()
	if err != nil {
		t.Fatal(err)
	}
	if !(c.FallAllZero < c.FallTwoZero && c.FallTwoZero < c.FallSIS) {
		t.Errorf("3-input falling ordering broken: all=%g two=%g sis=%g",
			c.FallAllZero, c.FallTwoZero, c.FallSIS)
	}
	// The three-way speed-up approaches the ideal 1/3 (plus pure delay).
	idealAll := p.DMin + math.Ln2*p.CO/(1/p.RN1+1/p.RN2+1/p.RN3)
	if math.Abs(c.FallAllZero-idealAll) > 1e-15 {
		t.Errorf("all-zero fall = %g, closed form %g", c.FallAllZero, idealAll)
	}
}

// TestNOR3RisingStackPenalty: with a three-deep stack the rising delay
// grows, and the worst separation (stack-top input last, internal nodes
// discharged) is the slowest.
func TestNOR3RisingStackPenalty(t *testing.T) {
	p3 := tableINOR3()
	c3, err := p3.Characteristic3()
	if err != nil {
		t.Fatal(err)
	}
	p2 := TableI()
	c2, err := p2.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	// Three-deep stack is slower than the two-deep one at Delta = 0.
	if c3.RiseAllZero <= c2.RiseZero {
		t.Errorf("NOR3 rise(0) = %g should exceed NOR2 rise(0) = %g",
			c3.RiseAllZero, c2.RiseZero)
	}
	// Precharged path (A first) is at least as fast as A-last.
	if c3.RiseWorstSep < c3.RiseSIS-1e-15 {
		t.Errorf("rise worst-sep %g should be >= rise SIS %g", c3.RiseWorstSep, c3.RiseSIS)
	}
}

// TestNOR3ReducesToNOR2: pinning input C at logic 0 permanently must
// reproduce the 2-input NOR exactly (the extra stack device is fully
// conducting, in series with T2's resistance).
func TestNOR3ReducesToNOR2(t *testing.T) {
	p2 := TableI()
	// Build a NOR3 whose lower stack halves R2 across two devices and
	// whose third pull-down never conducts (input C stays 0).
	p3 := NOR3Params{
		RP1: p2.R1, RP2: p2.R2 / 2, RP3: p2.R2 / 2,
		RN1: p2.R3, RN2: p2.R4, RN3: 1e9, // RN3 unused: C stays low
		CN1: p2.CN, CN2: 1e-21, // negligible mid-stack cap
		CO:     p2.CO,
		Supply: p2.Supply,
		DMin:   p2.DMin,
	}
	for _, dd := range []float64{-40e-12, 0, 40e-12} {
		d3, err := p3.FallingDelay3(dd, 1e-6 /* C never rises within the window */)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := p2.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(d3-d2) / d2; rel > 5e-3 {
			t.Errorf("Delta=%g: NOR3-with-C-low fall %g vs NOR2 %g (rel %.2e)", dd, d3, d2, rel)
		}
	}
}

// TestNOR3DelaySurface: the falling delay is continuous in both
// separations and minimal at the origin.
func TestNOR3DelaySurface(t *testing.T) {
	p := tableINOR3()
	base, err := p.FallingDelay3(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := base
	for _, d := range []float64{5e-12, 15e-12, 30e-12, 60e-12, 120e-12} {
		v, err := p.FallingDelay3(d, d)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-15 {
			t.Errorf("diagonal fall delay not increasing at %g", d)
		}
		prev = v
	}
	// Asymmetric arrivals are between the extremes.
	mid, err := p.FallingDelay3(30e-12, 60e-12)
	if err != nil {
		t.Fatal(err)
	}
	sis, err := p.FallingDelay3(SISFar, 2*SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid > base && mid < sis+1e-15) {
		t.Errorf("mixed-arrival delay %g outside (%g, %g)", mid, base, sis)
	}
}
