package hybrid

import (
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

// TestFitRecoversTableI: fitting against the Table I model's own
// characteristic delays (with its CO pinned and DMin given) must
// reproduce those delays essentially exactly — the fit problem has an
// exact solution.
func TestFitRecoversTableI(t *testing.T) {
	p := TableI()
	target, err := p.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	fitted, rep, err := FitCharacteristic(target, p.Supply, &FitOptions{
		DMin: p.DMin,
		CO:   p.CO,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Achieved.AsSlice()
	want := target.AsSlice()
	// The rising -inf/0 pair coincides in the model, so an exact match is
	// attainable on all six targets.
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / want[i]; rel > 2e-3 {
			t.Errorf("target %d: achieved %.4f ps vs target %.4f ps (rel %.2e)",
				i, waveform.ToPs(got[i]), waveform.ToPs(want[i]), rel)
		}
	}
	if err := fitted.Validate(); err != nil {
		t.Errorf("fitted parameters invalid: %v", err)
	}
	// The falling-side products are identified: CO*R4 and CO*R3||R4 are
	// pinned by the exact equations (8) and (9).
	if rel := math.Abs(fitted.R4-p.R4) / p.R4; rel > 1e-2 {
		t.Errorf("R4 = %g, want %g (identified by eq (9))", fitted.R4, p.R4)
	}
	if rel := math.Abs(fitted.R3-p.R3) / p.R3; rel > 1e-2 {
		t.Errorf("R3 = %g, want %g (identified by eq (8))", fitted.R3, p.R3)
	}
}

func TestAutoDMin(t *testing.T) {
	c := Characteristic{FallMinusInf: 38e-12, FallZero: 28e-12}
	// d = 2*28 - 38 = 18 ps: exactly the paper's delta_min for its
	// measured ratio 38/28.
	if got := AutoDMin(c); math.Abs(got-18e-12) > 1e-18 {
		t.Errorf("AutoDMin = %g, want 18 ps", got)
	}
	// Ratio already >= 2: no pure delay needed.
	c2 := Characteristic{FallMinusInf: 60e-12, FallZero: 28e-12}
	if got := AutoDMin(c2); got != 0 {
		t.Errorf("AutoDMin = %g, want 0", got)
	}
}

func TestFitValidation(t *testing.T) {
	sup := waveform.DefaultSupply()
	// Target below the pure delay is impossible.
	bad := Characteristic{
		FallMinusInf: 10e-12, FallZero: 10e-12, FallPlusInf: 10e-12,
		RiseMinusInf: 10e-12, RiseZero: 10e-12, RisePlusInf: 10e-12,
	}
	if _, _, err := FitCharacteristic(bad, sup, &FitOptions{DMin: 20e-12}); err == nil {
		t.Error("expected error for targets below the pure delay")
	}
	good := Characteristic{
		FallMinusInf: 38e-12, FallZero: 28e-12, FallPlusInf: 39e-12,
		RiseMinusInf: 55e-12, RiseZero: 56e-12, RisePlusInf: 53e-12,
	}
	if _, _, err := FitCharacteristic(good, sup, &FitOptions{Weights: []float64{1, 2}}); err == nil {
		t.Error("expected error for wrong weight count")
	}
}

// TestFitPaperTargets: fitting the paper's measured SPICE values (Fig. 2)
// with the auto pure delay lands close on the falling side and resolves
// the rising conflict by compromise, exactly as §V describes.
func TestFitPaperTargets(t *testing.T) {
	target := Characteristic{
		FallMinusInf: 38e-12, FallZero: 28e-12, FallPlusInf: 40e-12,
		RiseMinusInf: 55.6e-12, RiseZero: 56.8e-12, RisePlusInf: 53.4e-12,
	}
	sup := waveform.DefaultSupply()
	p, rep, err := FitCharacteristic(target, sup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DMin-18e-12) > 0.5e-12 {
		t.Errorf("auto DMin = %.2f ps, want ~18 ps (paper)", waveform.ToPs(rep.DMin))
	}
	a := rep.Achieved
	for i, pair := range [][2]float64{
		{a.FallMinusInf, target.FallMinusInf},
		{a.FallZero, target.FallZero},
		{a.FallPlusInf, target.FallPlusInf},
	} {
		if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > 0.02 {
			t.Errorf("falling target %d off by %.1f%%", i, 100*rel)
		}
	}
	// The rising tails land within a few percent (the model trades
	// rise(-inf) against rise(0), which coincide at VN=GND).
	if rel := math.Abs(a.RisePlusInf-target.RisePlusInf) / target.RisePlusInf; rel > 0.05 {
		t.Errorf("rise(+inf) off by %.1f%%", 100*rel)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fitted params invalid: %v", err)
	}
	// Parameters land in the same decade as Table I (sanity against
	// degenerate fits).
	if p.R4 < 10e3 || p.R4 > 200e3 {
		t.Errorf("R4 = %g outside plausible range", p.R4)
	}
}

// TestFitNoDMinBounded: the forced DMin = 0 ablation cannot reach its
// targets, but the soft bounds must keep the parameters physical.
func TestFitNoDMinBounded(t *testing.T) {
	target := Characteristic{
		FallMinusInf: 35e-12, FallZero: 22.7e-12, FallPlusInf: 37e-12,
		RiseMinusInf: 60e-12, RiseZero: 63e-12, RisePlusInf: 56e-12,
	}
	p, rep, err := FitCharacteristic(target, waveform.DefaultSupply(), &FitOptions{DMin: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.R1 < 100 || p.R2 < 100 || p.R3 < 100 || p.R4 < 100 {
		t.Errorf("degenerate resistance in no-dmin fit: %s", p)
	}
	if p.CN < p.CO/1e4/2 {
		t.Errorf("degenerate CN in no-dmin fit: %s", p)
	}
	if rep.DMin != 0 {
		t.Error("DMin not honored")
	}
	// The fit cost must be clearly nonzero: the targets are infeasible
	// without a pure delay (the §IV impossibility).
	if rep.Cost < 1e-6 {
		t.Errorf("no-dmin fit cost suspiciously low: %g", rep.Cost)
	}
}

// TestFitGaugeFreedom: pinning CO at a different value yields the same
// characteristic delays (only the products matter).
func TestFitGaugeFreedom(t *testing.T) {
	target := Characteristic{
		FallMinusInf: 38e-12, FallZero: 28e-12, FallPlusInf: 40e-12,
		RiseMinusInf: 55.6e-12, RiseZero: 56.8e-12, RisePlusInf: 53.4e-12,
	}
	sup := waveform.DefaultSupply()
	_, repA, err := FitCharacteristic(target, sup, &FitOptions{DMin: -1, CO: 617.259e-18})
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := FitCharacteristic(target, sup, &FitOptions{DMin: -1, CO: 300e-18})
	if err != nil {
		t.Fatal(err)
	}
	a := repA.Achieved.AsSlice()
	b := repB.Achieved.AsSlice()
	for i := range a {
		if rel := math.Abs(a[i]-b[i]) / a[i]; rel > 0.02 {
			t.Errorf("achieved delay %d differs across gauge: %.4g vs %.4g", i, a[i], b[i])
		}
	}
}
