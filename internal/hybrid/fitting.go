package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/fit"
	"hybriddelay/internal/waveform"
)

// This file implements the parametrization procedure of paper §V:
// determine (R1..R4, CN, CO) and the pure delay delta_min so that the
// model's characteristic Charlie delays match measured values (from the
// analog golden reference).
//
// Two structural facts shape the procedure, both derived in the paper:
//
//  1. Only five products matter — CN*R1, CN*R2, CO*R2, CO*R3, CO*R4 —
//     so one capacitance can be fixed arbitrarily (we pin CO and fit
//     R1..R4 and CN), removing the gauge freedom.
//
//  2. Without a pure delay the falling targets are unreachable whenever
//     delta_fall(-inf)/delta_fall(0) deviates too much from
//     (R3+R4)/R3 ~= 2; delta_min shifts both so the ratio becomes ~2
//     (the paper picks delta_min = 18 ps this way).

// FitOptions configures FitCharacteristic.
type FitOptions struct {
	// DMin fixes the pure delay. If negative, it is chosen automatically
	// so that the shifted falling ratio is exactly 2 (paper §IV):
	// dmin = 2*delta_fall(0) - delta_fall(-inf), clamped at >= 0.
	DMin float64
	// CO pins the output capacitance (gauge fixing). Default: the
	// Table I value 617.259 aF.
	CO float64
	// Weights scales the six residuals (same order as
	// Characteristic.AsSlice); nil = all ones.
	Weights []float64
	// MaxIter bounds the Levenberg-Marquardt iterations.
	MaxIter int
}

// FitReport describes the outcome of a parametrization.
type FitReport struct {
	Target    Characteristic // what was asked for
	Achieved  Characteristic // what the fitted model delivers
	DMin      float64        // pure delay used
	Cost      float64        // final 0.5*||residual||^2 (relative units)
	Converged bool
	Evals     int
}

// AutoDMin returns the pure delay that makes the falling-delay ratio
// fittable: (FallMinusInf - d) / (FallZero - d) = 2, i.e.
// d = 2*FallZero - FallMinusInf (clamped to >= 0).
func AutoDMin(target Characteristic) float64 {
	d := 2*target.FallZero - target.FallMinusInf
	if d < 0 {
		return 0
	}
	return d
}

// FitCharacteristic calibrates model parameters against measured
// characteristic Charlie delays (paper §V / Table I). The rising targets
// are matched with the worst-case V_N = GND convention the paper uses.
func FitCharacteristic(target Characteristic, supply waveform.Supply, opt *FitOptions) (Params, FitReport, error) {
	o := FitOptions{DMin: -1}
	if opt != nil {
		o = *opt
	}
	if o.CO <= 0 {
		o.CO = 617.259e-18
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 120
	}
	dmin := o.DMin
	if dmin < 0 {
		dmin = AutoDMin(target)
	}
	weights := o.Weights
	if weights == nil {
		weights = []float64{1, 1, 1, 1, 1, 1}
	}
	if len(weights) != 6 {
		return Params{}, FitReport{}, fmt.Errorf("hybrid: want 6 weights, got %d", len(weights))
	}
	for _, v := range target.AsSlice() {
		if v <= dmin {
			return Params{}, FitReport{}, fmt.Errorf("hybrid: target delay %g not above pure delay %g", v, dmin)
		}
	}

	guess := initialGuess(target, supply, o.CO, dmin)

	// Fit x = log(R1, R2, R3, R4, CN) for positivity.
	x0 := []float64{
		math.Log(guess.R1), math.Log(guess.R2), math.Log(guess.R3),
		math.Log(guess.R4), math.Log(guess.CN),
	}
	build := func(x []float64) Params {
		return Params{
			R1: math.Exp(x[0]), R2: math.Exp(x[1]), R3: math.Exp(x[2]), R4: math.Exp(x[3]),
			CN: math.Exp(x[4]), CO: o.CO,
			Supply: supply, DMin: dmin,
		}
	}
	targetSlice := target.AsSlice()
	// Soft log-space bounds keep ill-posed fits (e.g. the forced
	// DMin = 0 ablation, which cannot reach its targets) from collapsing
	// a resistance or capacitance to zero or infinity.
	loR, hiR := math.Log(100.0), math.Log(10e6)
	loC, hiC := math.Log(o.CO/1e4), math.Log(o.CO*10)
	bound := func(x, lo, hi float64) float64 {
		switch {
		case x < lo:
			return lo - x
		case x > hi:
			return x - hi
		default:
			return 0
		}
	}
	resid := func(x []float64) []float64 {
		p := build(x)
		out := make([]float64, 11)
		c, err := p.Characteristic()
		if err != nil {
			for i := 0; i < 6; i++ {
				out[i] = 1e6
			}
		} else {
			got := c.AsSlice()
			for i := 0; i < 6; i++ {
				out[i] = weights[i] * (got[i] - targetSlice[i]) / targetSlice[i]
			}
		}
		for i := 0; i < 4; i++ {
			out[6+i] = 0.3 * bound(x[i], loR, hiR)
		}
		out[10] = 0.3 * bound(x[4], loC, hiC)
		return out
	}
	res, err := fit.LevenbergMarquardt(resid, x0, &fit.LeastSquaresOptions{
		MaxIter: o.MaxIter,
		Scale:   []float64{1, 1, 1, 1, 1},
	})
	if err != nil && !res.Converged {
		// Polish with Nelder-Mead as a fallback; LM can stall on the
		// flat CN direction the paper describes.
		nm, nmErr := fit.Restarted(func(x []float64) float64 {
			r := resid(x)
			s := 0.0
			for _, v := range r {
				s += v * v
			}
			return 0.5 * s
		}, res.X, nil, 3, 1e-10)
		if nmErr == nil && nm.F < res.Cost {
			res.X = nm.X
			res.Cost = nm.F
			res.Converged = nm.Converged
		}
	}
	p := build(res.X)
	achieved, err := p.Characteristic()
	if err != nil {
		return p, FitReport{}, fmt.Errorf("hybrid: fitted model is degenerate: %w", err)
	}
	report := FitReport{
		Target:    target,
		Achieved:  achieved,
		DMin:      dmin,
		Cost:      res.Cost,
		Converged: res.Converged,
		Evals:     res.Evals,
	}
	return p, report, nil
}

// initialGuess inverts the exact falling formulas (8)-(9) for R3 and R4
// and seeds the remaining parameters from the rising targets with
// single-pole estimates.
func initialGuess(target Characteristic, supply waveform.Supply, co, dmin float64) Params {
	ln2 := -math.Log(supply.Vth / supply.VDD)
	r4 := (target.FallMinusInf - dmin) / (ln2 * co)
	// (8): z = ln2*CO*R3*R4/(R3+R4)  =>  R3 = 1/(ln2*CO/z - 1/R4).
	z := target.FallZero - dmin
	den := ln2*co/z - 1/r4
	r3 := r4
	if den > 0 {
		r3 = 1 / den
	}
	// Rising: the (0,0) charge path is roughly a single pole with
	// tau ~= CO*(R1+R2); delta_rise(0) - dmin ~= ln2 * CO * (R1+R2).
	r12 := (target.RiseZero - dmin) / (ln2 * co)
	r1 := r12 / 2
	r2 := r12 / 2
	if r1 <= 0 {
		r1, r2 = r3, r3
	}
	return Params{
		R1: r1, R2: r2, R3: r3, R4: r4,
		CN: co / 10, CO: co,
		Supply: supply, DMin: dmin,
	}
}
