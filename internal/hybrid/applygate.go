package hybrid

import (
	"fmt"
	"sort"

	"hybriddelay/internal/trace"
)

// ApplyGate runs n digital input traces offline through the generalized
// switch-level hybrid channel of a SwitchGate and returns the output
// trace — the n-input counterpart of ApplyNOR used by the gate-generic
// accuracy pipeline.
//
// Semantics mirror the 2-input Channel: every input event switches the
// RC mode a pure delay DMin later, the continuous node state is carried
// across mode switches, and the output toggles at each V_th crossing of
// the resulting piecewise trajectory. Because the whole input schedule
// is known up front, the trajectory is solved once and the alternating
// crossings are read off it directly. isolatedFill fills internal nodes
// left floating by the initial input state (the worst-case history value
// of the paper's V_N discussion).
func ApplyGate(g SwitchGate, inputs []trace.Trace, until float64, isolatedFill float64) (trace.Trace, error) {
	if len(inputs) != g.NumInputs {
		return trace.Trace{}, fmt.Errorf("hybrid: gate %s wants %d inputs, got %d", g.Name, g.NumInputs, len(inputs))
	}
	type ev struct {
		t   float64
		pin int
		val bool
	}
	var evs []ev
	state := make([]bool, g.NumInputs)
	for i, in := range inputs {
		state[i] = in.Initial
		for _, e := range in.Events {
			if e.Time < 0 {
				return trace.Trace{}, fmt.Errorf("hybrid: gate %s: input %d event before t=0", g.Name, i)
			}
			evs = append(evs, ev{e.Time, i, e.Value})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	clone := func(s []bool) []bool { return append([]bool(nil), s...) }
	phases := []PhaseN{{Start: 0, Inputs: clone(state)}}
	for _, e := range evs {
		state[e.pin] = e.val
		phases = append(phases, PhaseN{Start: e.t + g.DMin, Inputs: clone(state)})
	}

	v0, err := g.SteadyState(phases[0].Inputs, isolatedFill)
	if err != nil {
		return trace.Trace{}, err
	}
	tr, err := g.NewTrajectory(v0, phases)
	if err != nil {
		return trace.Trace{}, err
	}
	out := trace.Trace{Initial: v0[g.OutNode] > g.Supply.Vth}
	cur := out.Initial
	after := 0.0
	for {
		t, ok := tr.FirstOutputCrossing(g.Supply.Vth, !cur, after)
		if !ok || t > until {
			break
		}
		cur = !cur
		out.Events = append(out.Events, trace.Event{Time: t, Value: cur})
		after = t
	}
	return out, nil
}
