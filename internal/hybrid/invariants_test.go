package hybrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/la"
	"hybriddelay/internal/waveform"
)

// Physical-invariant property tests: a passive RC network driven by
// sources inside the rails must keep every node voltage inside the rail
// hull at all times, and trajectories must relax monotonically in energy.

// randomParams draws a plausible random NOR parametrization.
func randomParams(rng *rand.Rand) Params {
	return Params{
		R1:     (5 + 195*rng.Float64()) * 1e3,
		R2:     (5 + 195*rng.Float64()) * 1e3,
		R3:     (5 + 195*rng.Float64()) * 1e3,
		R4:     (5 + 195*rng.Float64()) * 1e3,
		CN:     (5 + 195*rng.Float64()) * 1e-18,
		CO:     (100 + 900*rng.Float64()) * 1e-18,
		Supply: waveform.DefaultSupply(),
		DMin:   rng.Float64() * 20e-12,
	}
}

// TestTrajectoryStaysInRails: for any mode schedule and any initial
// state within [0, VDD], the trajectory never leaves [0, VDD] (the
// ideal-switch model has no coupling capacitors, so no overshoot can
// occur — this is exactly why it misses part of the Charlie effect).
func TestTrajectoryStaysInRails(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		modes := []Mode{Mode00, Mode01, Mode10, Mode11}
		var phases []Phase
		tm := 0.0
		for i := 0; i < 1+rng.Intn(6); i++ {
			phases = append(phases, Phase{Start: tm, Mode: modes[rng.Intn(4)]})
			tm += rng.Float64() * 100e-12
		}
		v0 := la.Vec2{X: rng.Float64() * 0.8, Y: rng.Float64() * 0.8}
		tr, err := p.NewTrajectory(v0, phases)
		if err != nil {
			return false
		}
		for i := 0; i <= 300; i++ {
			tt := (tm + 200e-12) * float64(i) / 300
			v := tr.At(tt)
			if v.X < -1e-9 || v.X > 0.8+1e-9 || v.Y < -1e-9 || v.Y > 0.8+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSwitchGateStaysInRails: the same invariant for random multi-node
// switch-level gates (the generalized machinery).
func TestSwitchGateStaysInRails(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(4)
		nInputs := 1 + rng.Intn(3)
		caps := make([]float64, nNodes)
		for i := range caps {
			caps[i] = (5 + 500*rng.Float64()) * 1e-18
		}
		var branches []SwitchBranch
		for k := 0; k < nNodes+2+rng.Intn(4); k++ {
			from := rng.Intn(nNodes)
			toChoices := []int{rng.Intn(nNodes), int(RailVDD), int(RailGND)}
			to := toChoices[rng.Intn(3)]
			if to == from {
				to = int(RailGND)
			}
			branches = append(branches, SwitchBranch{
				From: from, To: to,
				R:          (5 + 195*rng.Float64()) * 1e3,
				Input:      rng.Intn(nInputs),
				OnWhenHigh: rng.Intn(2) == 0,
			})
		}
		g := SwitchGate{
			Name:      "rand",
			NumInputs: nInputs,
			Caps:      caps,
			Branches:  branches,
			OutNode:   nNodes - 1,
			Logic:     func(in []bool) bool { return in[0] },
			Supply:    waveform.DefaultSupply(),
		}
		if err := g.Validate(); err != nil {
			return false
		}
		var phases []PhaseN
		tm := 0.0
		for i := 0; i < 1+rng.Intn(4); i++ {
			in := make([]bool, nInputs)
			for j := range in {
				in[j] = rng.Intn(2) == 0
			}
			phases = append(phases, PhaseN{Start: tm, Inputs: in})
			tm += rng.Float64() * 100e-12
		}
		v0 := make([]float64, nNodes)
		for i := range v0 {
			v0[i] = rng.Float64() * 0.8
		}
		tr, err := g.NewTrajectory(v0, phases)
		if err != nil {
			return false
		}
		for i := 0; i <= 200; i++ {
			tt := (tm + 200e-12) * float64(i) / 200
			for _, v := range tr.At(tt) {
				if v < -1e-6 || v > 0.8+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDelayPositive: every well-posed delay query returns a positive
// value not below the pure delay.
func TestDelayPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		dd := (rng.Float64()*2 - 1) * 150e-12
		d, err := p.FallingDelay(dd)
		if err != nil || d < p.DMin {
			return false
		}
		r, err := p.RisingDelayFrom(dd, rng.Float64()*0.8)
		if err != nil || r < p.DMin {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFallingBoundedByParallelAndSingle: for any parameters,
// delta_fall(0) is bounded below by the ideal parallel discharge and
// delta_fall(+-inf) by the respective single discharges — tight sanity
// bounds from the closed forms.
func TestFallingBoundedByParallelAndSingle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		d0, err := p.FallingDelay(0)
		if err != nil {
			return false
		}
		want := p.CharlieFallZero()
		if math.Abs(d0-want) > 1e-15+1e-9*want {
			return false
		}
		dm, err := p.FallingDelay(-SISFar)
		if err != nil {
			return false
		}
		return math.Abs(dm-p.CharlieFallMinusInf()) < 1e-15+1e-9*dm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestNANDDualityProperty: the duality holds for random parameter sets,
// not just Table I.
func TestNANDDualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		n := NANDFromDual(p)
		dd := (rng.Float64()*2 - 1) * 100e-12
		a, err1 := n.RisingDelay(dd)
		b, err2 := p.FallingDelay(dd)
		if err1 != nil || err2 != nil {
			return false
		}
		if a != b {
			return false
		}
		vm := rng.Float64() * 0.8
		c, err1 := n.FallingDelay(dd, vm)
		d, err2 := p.RisingDelayFrom(dd, 0.8-vm)
		if err1 != nil || err2 != nil {
			return false
		}
		return c == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
