package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// This file implements the characteristic Charlie delay formulas of
// paper §V, equations (8)-(12).
//
// Equations (8) and (9) are exact and implemented literally.
//
// Equations (10)-(12) are first-order Taylor expansions of the
// closed-form output trajectory around an expansion point w: the printed
// formulas all share the structure
//
//	d ~= ( Vth - sum_i c_i v_i e^{lambda_i w} (1 - lambda_i w) )
//	     / ( sum_i c_i v_i lambda_i e^{lambda_i w} )
//
// which is exactly t = w + (Vth - V_O(w)) / V_O'(w). The preprint fixes
// w = 1e-10 s (2e-10 s for eq. 11), but with the Table I parameters the
// trajectories settle long before 100 ps, so a first-order expansion
// there extrapolates into the settled tail and is useless; the footnoted
// O(t^2) error claim only holds when |lambda| * w << 1. We therefore keep
// the paper's algebraic structure and coefficients but choose w as the
// slow-mode crossing estimate (fast eigenmode dropped), which makes the
// one-step expansion accurate to O((t - w)^2) as intended. EXPERIMENTS.md
// records the accuracy of both variants; the literal printed w is also
// available via the *AtW functions for comparison.

// CharlieFallZero returns the exact delta_fall(0) of equation (8):
//
//	delta(0) = -ln(1/2) / (1/(CO R3) + 1/(CO R4))
//
// i.e. the V_th crossing of the parallel discharge in mode (1,1). The
// pure delay DMin is included, consistent with FallingDelay.
func (p Params) CharlieFallZero() float64 {
	return -math.Log(p.Supply.Vth/p.Supply.VDD)/(1/(p.CO*p.R3)+1/(p.CO*p.R4)) + p.DMin
}

// CharlieFallMinusInf returns the exact delta_fall(-inf) of equation (9):
//
//	delta(-inf) = -ln(1/2) * CO * R4
//
// the single-transistor discharge through R4 in mode (0,1), with DMin
// included.
func (p Params) CharlieFallMinusInf() float64 {
	return -math.Log(p.Supply.Vth/p.Supply.VDD)*p.CO*p.R4 + p.DMin
}

// PaperW10 and PaperW20 are the expansion points printed in the paper.
const (
	PaperW10 = 1e-10 // w in equations (10) and (12)
	PaperW20 = 2e-10 // w in equation (11)
)

// twoExp is the paper-style closed form V(t) = vp + c1*e1*exp(l1 t) +
// c2*e2*exp(l2 t) of an output trajectory, with e_i the V_O components
// (alpha +/- beta) of the eigenvectors.
type twoExp struct {
	vp     float64 // particular/steady-state V_O
	c1, c2 float64
	e1, e2 float64 // eigenvector V_O components (alpha+beta, alpha-beta)
	l1, l2 float64
}

func (f twoExp) at(t float64) float64 {
	return f.vp + f.c1*f.e1*math.Exp(f.l1*t) + f.c2*f.e2*math.Exp(f.l2*t)
}

func (f twoExp) deriv(t float64) float64 {
	return f.c1*f.e1*f.l1*math.Exp(f.l1*t) + f.c2*f.e2*f.l2*math.Exp(f.l2*t)
}

// taylorStep is the shared structure of equations (10)-(12): one
// first-order expansion of the trajectory around w, solved for the V_th
// crossing.
func (f twoExp) taylorStep(level, w float64) (float64, error) {
	slope := f.deriv(w)
	if slope == 0 {
		return 0, fmt.Errorf("hybrid: zero output slope at expansion point w=%g", w)
	}
	return w + (level-f.at(w))/slope, nil
}

// slowEstimate solves for the crossing using only the slow eigenmode
// (|l1| < |l2| is guaranteed by the constructors below), giving the
// principled expansion point for taylorStep.
func (f twoExp) slowEstimate(level float64) (float64, error) {
	num := (level - f.vp) / (f.c1 * f.e1)
	if num <= 0 {
		return 0, fmt.Errorf("hybrid: slow-mode estimate undefined (ratio %g)", num)
	}
	return math.Log(num) / f.l1, nil
}

// fall10TwoExp builds the paper's mode (1,0) trajectory started from
// (V_N, V_O) = (VDD, VDD), with the printed coefficients
//
//	c2 = (VDD/2) [ (alpha+beta) CN R2 - 1 ] / beta,
//	c1 = VDD CN R2 - c2
//
// (the paper's 0.6 is VDD/2 for the supply its constants were typeset
// with; we keep it symbolic).
func (p Params) fall10TwoExp() twoExp {
	co := p.Coefficients10()
	vdd := p.Supply.VDD
	c2 := vdd * ((co.Alpha+co.Beta)*p.CN*p.R2 - 1) / (2 * co.Beta)
	c1 := vdd*p.CN*p.R2 - c2
	return twoExp{
		vp: 0,
		c1: c1, c2: c2,
		e1: co.Alpha + co.Beta, e2: co.Alpha - co.Beta,
		l1: co.Lambda1, l2: co.Lambda2,
	}
}

// rise00TwoExp builds the mode (0,0) trajectory in the paper's eigenbasis
// from the state (vn0, vo0) at local time zero.
func (p Params) rise00TwoExp(vn0, vo0 float64) twoExp {
	co := p.Coefficients00()
	vdd := p.Supply.VDD
	// c1 + c2 = (vn0 - VDD) CN R2;  c1 e1 + c2 e2 = vo0 - VDD.
	cnr2 := p.CN * p.R2
	c1 := ((vo0 - vdd) - (vn0-vdd)*cnr2*(co.Alpha-co.Beta)) / (2 * co.Beta)
	c2 := (vn0-vdd)*cnr2 - c1
	return twoExp{
		vp: vdd,
		c1: c1, c2: c2,
		e1: co.Alpha + co.Beta, e2: co.Alpha - co.Beta,
		l1: co.Lambda1, l2: co.Lambda2,
	}
}

// CharlieFallPlusInf returns the equation (10) approximation of
// delta_fall(+inf): one Taylor step on the mode (1,0) trajectory, with
// the expansion point chosen by the slow-mode estimate. DMin included.
func (p Params) CharlieFallPlusInf() (float64, error) {
	f := p.fall10TwoExp()
	w, err := f.slowEstimate(p.Supply.Vth)
	if err != nil {
		return 0, err
	}
	d, err := f.taylorStep(p.Supply.Vth, w)
	if err != nil {
		return 0, err
	}
	return d + p.DMin, nil
}

// CharlieFallPlusInfAtW evaluates equation (10) literally at the supplied
// expansion point (use PaperW10 for the printed variant). DMin included.
func (p Params) CharlieFallPlusInfAtW(w float64) (float64, error) {
	d, err := p.fall10TwoExp().taylorStep(p.Supply.Vth, w)
	if err != nil {
		return 0, err
	}
	return d + p.DMin, nil
}

// VN01 returns V_N^{(0,1)}(Delta) = VDD + (X - VDD) e^{-Delta/(CN R1)},
// the internal-node voltage after spending Delta >= 0 in mode (0,1)
// starting from X (paper §V).
func (p Params) VN01(delta, x float64) float64 {
	return p.Supply.VDD + (x-p.Supply.VDD)*math.Exp(-delta/(p.CN*p.R1))
}

// riseSwitchState returns the (V_N, V_O) state at the moment the gate
// enters mode (0,0) in the rising experiment with separation delta and
// initial V_N = x: after |delta| in mode (0,1) (delta >= 0) or mode (1,0)
// (delta < 0).
func (p Params) riseSwitchState(delta, x float64) (la.Vec2, error) {
	ts := math.Abs(delta)
	mode := Mode01
	if delta < 0 {
		mode = Mode10
	}
	sol, err := p.System(mode).Solve(la.Vec2{X: x, Y: 0})
	if err != nil {
		return la.Vec2{}, err
	}
	return sol.At(ts), nil
}

// CharlieRise returns the equation (11)/(12) approximation of
// delta_rise(delta) for initial V_N voltage x: one Taylor step on the
// closed-form mode (0,0) trajectory, expansion point from the slow-mode
// estimate. DMin included.
func (p Params) CharlieRise(delta, x float64) (float64, error) {
	v, err := p.riseSwitchState(delta, x)
	if err != nil {
		return 0, err
	}
	f := p.rise00TwoExp(v.X, v.Y)
	w, err := f.slowEstimate(p.Supply.Vth)
	if err != nil {
		return 0, err
	}
	d, err := f.taylorStep(p.Supply.Vth, w)
	if err != nil {
		return 0, err
	}
	return d + p.DMin, nil
}

// CharlieRiseAtW evaluates the equation (11)/(12) structure literally at
// the supplied local expansion point (the paper prints w = 2e-10 s of
// absolute time for delta >= 0 and 1e-10 s for delta < 0). DMin included.
func (p Params) CharlieRiseAtW(delta, x, w float64) (float64, error) {
	v, err := p.riseSwitchState(delta, x)
	if err != nil {
		return 0, err
	}
	d, err := p.rise00TwoExp(v.X, v.Y).taylorStep(p.Supply.Vth, w)
	if err != nil {
		return 0, err
	}
	return d + p.DMin, nil
}

// CharlieCharacteristic assembles all six characteristic delays from the
// closed-form expressions (8)-(12) (V_N = GND for the rising cases),
// mirroring Characteristic, which uses the exact crossing solver.
func (p Params) CharlieCharacteristic() (Characteristic, error) {
	var c Characteristic
	var err error
	c.FallMinusInf = p.CharlieFallMinusInf()
	c.FallZero = p.CharlieFallZero()
	if c.FallPlusInf, err = p.CharlieFallPlusInf(); err != nil {
		return c, err
	}
	if c.RiseMinusInf, err = p.CharlieRise(-SISFar, 0); err != nil {
		return c, err
	}
	if c.RiseZero, err = p.CharlieRise(0, 0); err != nil {
		return c, err
	}
	if c.RisePlusInf, err = p.CharlieRise(SISFar, 0); err != nil {
		return c, err
	}
	return c, nil
}
