package hybrid

import (
	"fmt"

	"hybriddelay/internal/la"
	"hybriddelay/internal/ode"
)

// Mode identifies one of the four input states (A, B) of the NOR gate.
type Mode int

// The four modes, named by the logical input values (A, B).
const (
	Mode00 Mode = iota // A=0, B=0: pMOS stack conducts, output charges
	Mode01             // A=0, B=1: N charges via R1, O discharges via R4
	Mode10             // A=1, B=0: N follows O via R2, O discharges via R3
	Mode11             // A=1, B=1: O discharges via R3 || R4, N isolated
)

// ModeOf returns the mode for logical input values a and b.
func ModeOf(a, b bool) Mode {
	switch {
	case !a && !b:
		return Mode00
	case !a && b:
		return Mode01
	case a && !b:
		return Mode10
	default:
		return Mode11
	}
}

// Inputs returns the logical input values of the mode.
func (m Mode) Inputs() (a, b bool) {
	switch m {
	case Mode00:
		return false, false
	case Mode01:
		return false, true
	case Mode10:
		return true, false
	default:
		return true, true
	}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	a, b := m.Inputs()
	f := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("(%d,%d)", f(a), f(b))
}

// System returns the linear ODE system V' = A V + g of the mode, with
// V = (V_N, V_O), exactly as derived in paper §III.B-E.
func (p Params) System(m Mode) ode.Linear2 {
	switch m {
	case Mode11:
		// CN VN' = 0;  CO VO' = -VO (1/R3 + 1/R4).
		return ode.Linear2{
			A: la.Mat2{
				A11: 0, A12: 0,
				A21: 0, A22: -(1/(p.CO*p.R3) + 1/(p.CO*p.R4)),
			},
		}
	case Mode10:
		// CN VN' = -(VN - VO)/R2;
		// CO VO' = -VO/R3 + (VN - VO)/R2.
		return ode.Linear2{
			A: la.Mat2{
				A11: -1 / (p.CN * p.R2), A12: 1 / (p.CN * p.R2),
				A21: 1 / (p.CO * p.R2), A22: -(1/(p.CO*p.R2) + 1/(p.CO*p.R3)),
			},
		}
	case Mode01:
		// CN VN' = (VDD - VN)/R1;  CO VO' = -VO/R4.
		return ode.Linear2{
			A: la.Mat2{
				A11: -1 / (p.CN * p.R1), A12: 0,
				A21: 0, A22: -1 / (p.CO * p.R4),
			},
			G: la.Vec2{X: p.Supply.VDD / (p.CN * p.R1)},
		}
	case Mode00:
		// CN VN' = (VDD - VN)/R1 - (VN - VO)/R2;
		// CO VO' = (VN - VO)/R2.
		return ode.Linear2{
			A: la.Mat2{
				A11: -(1/(p.CN*p.R1) + 1/(p.CN*p.R2)), A12: 1 / (p.CN * p.R2),
				A21: 1 / (p.CO * p.R2), A22: -1 / (p.CO * p.R2),
			},
			G: la.Vec2{X: p.Supply.VDD / (p.CN * p.R1)},
		}
	}
	panic(fmt.Sprintf("hybrid: unknown mode %d", int(m)))
}

// ModeCoefficients holds the closed-form quantities the paper derives for
// the two coupled modes: alpha, beta and the eigenvalues lambda1/2 of the
// 2x2 system matrix, in the eigenvector normalization
// v_{1,2} = (1/(CN*R2), alpha +/- beta) used throughout §III and §V.
type ModeCoefficients struct {
	Alpha, Beta      float64
	Gamma            float64 // only defined for mode (0,0): lambda = gamma +/- beta
	Lambda1, Lambda2 float64
}

// Coefficients10 returns (alpha, beta, lambda_1,2) of mode (1,0) as given
// by paper equations (1)-(3).
func (p Params) Coefficients10() ModeCoefficients {
	alpha := (p.CO*p.R3 - p.CN*(p.R2+p.R3)) / (2 * p.CO * p.CN * p.R2 * p.R3)
	disc := (p.CO*p.R3+p.CN*(p.R2+p.R3))*(p.CO*p.R3+p.CN*(p.R2+p.R3)) - 4*p.CO*p.CN*p.R2*p.R3
	beta := sqrtChecked(disc) / (2 * p.CO * p.CN * p.R2 * p.R3)
	base := -(p.CO*p.R3 + p.CN*(p.R2+p.R3)) / (2 * p.CO * p.CN * p.R2 * p.R3)
	return ModeCoefficients{
		Alpha:   alpha,
		Beta:    beta,
		Lambda1: base + beta,
		Lambda2: base - beta,
	}
}

// Coefficients00 returns (alpha, beta, gamma, lambda_1,2) of mode (0,0)
// as given by paper equations (4)-(7).
func (p Params) Coefficients00() ModeCoefficients {
	alpha := (p.CO*(p.R1+p.R2) - p.CN*p.R1) / (2 * p.CO * p.CN * p.R1 * p.R2)
	disc := (p.CN*p.R1+p.CO*(p.R1+p.R2))*(p.CN*p.R1+p.CO*(p.R1+p.R2)) - 4*p.CO*p.CN*p.R1*p.R2
	beta := sqrtChecked(disc) / (2 * p.CO * p.CN * p.R1 * p.R2)
	gamma := -(p.CN*p.R1 + p.CO*(p.R1+p.R2)) / (2 * p.CO * p.CN * p.R1 * p.R2)
	return ModeCoefficients{
		Alpha:   alpha,
		Beta:    beta,
		Gamma:   gamma,
		Lambda1: gamma + beta,
		Lambda2: gamma - beta,
	}
}

func sqrtChecked(x float64) float64 {
	if x < 0 {
		panic(fmt.Sprintf("hybrid: negative discriminant %g (RC systems always have real poles)", x))
	}
	return sqrt(x)
}
