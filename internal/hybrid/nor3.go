package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/waveform"
)

// NOR2SwitchGate expresses the paper's 2-input NOR model as a generic
// SwitchGate: node 0 is the internal node N, node 1 the output O. It is
// used to cross-validate the n-dimensional machinery against the
// specialised closed-form 2x2 implementation.
func NOR2SwitchGate(p Params) SwitchGate {
	return SwitchGate{
		Name:      "nor2",
		NumInputs: 2,
		Caps:      []float64{p.CN, p.CO},
		Branches: []SwitchBranch{
			{From: int(RailVDD), To: 0, R: p.R1, Input: 0, OnWhenHigh: false}, // T1
			{From: 0, To: 1, R: p.R2, Input: 1, OnWhenHigh: false},            // T2
			{From: 1, To: int(RailGND), R: p.R3, Input: 0, OnWhenHigh: true},  // T3
			{From: 1, To: int(RailGND), R: p.R4, Input: 1, OnWhenHigh: true},  // T4
		},
		OutNode: 1,
		Logic:   func(in []bool) bool { return !(in[0] || in[1]) },
		Supply:  p.Supply,
		DMin:    p.DMin,
	}
}

// NOR3Params parameterises the 3-input NOR extension: a three-deep pMOS
// stack with two internal nodes N1 (below T1) and N2 (below T2), and
// three parallel nMOS pull-downs.
type NOR3Params struct {
	RP1, RP2, RP3 float64 // stack resistances VDD->N1->N2->O (gates A, B, C)
	RN1, RN2, RN3 float64 // parallel pull-downs O->GND (gates A, B, C)
	CN1, CN2      float64 // internal node capacitances
	CO            float64 // output capacitance

	Supply waveform.Supply
	DMin   float64
}

// NOR3FromNOR2 extrapolates a 3-input parametrization from a fitted
// 2-input model: stack devices reuse the pMOS resistances, pull-downs
// the nMOS ones, and the second internal node gets the same capacitance
// as the first.
func NOR3FromNOR2(p Params) NOR3Params {
	return NOR3Params{
		RP1: p.R1, RP2: p.R2, RP3: p.R2,
		RN1: p.R3, RN2: p.R4, RN3: p.R4,
		CN1: p.CN, CN2: p.CN, CO: p.CO,
		Supply: p.Supply,
		DMin:   p.DMin,
	}
}

// Gate builds the SwitchGate: nodes (0, 1, 2) = (N1, N2, O).
func (p NOR3Params) Gate() SwitchGate {
	return SwitchGate{
		Name:      "nor3",
		NumInputs: 3,
		Caps:      []float64{p.CN1, p.CN2, p.CO},
		Branches: []SwitchBranch{
			{From: int(RailVDD), To: 0, R: p.RP1, Input: 0, OnWhenHigh: false},
			{From: 0, To: 1, R: p.RP2, Input: 1, OnWhenHigh: false},
			{From: 1, To: 2, R: p.RP3, Input: 2, OnWhenHigh: false},
			{From: 2, To: int(RailGND), R: p.RN1, Input: 0, OnWhenHigh: true},
			{From: 2, To: int(RailGND), R: p.RN2, Input: 1, OnWhenHigh: true},
			{From: 2, To: int(RailGND), R: p.RN3, Input: 2, OnWhenHigh: true},
		},
		OutNode: 2,
		Logic:   func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
		Supply:  p.Supply,
		DMin:    p.DMin,
	}
}

// Validate checks plausibility.
func (p NOR3Params) Validate() error { return p.Gate().Validate() }

// FallingDelay3 computes the falling-output MIS delay of the 3-input
// NOR for rising inputs at offsets (0, dB, dC) relative to input A
// (negative offsets put that input first). The delay is measured from
// the earliest rising input, matching the 2-input convention.
func (p NOR3Params) FallingDelay3(dB, dC float64) (float64, error) {
	g := p.Gate()
	// Order the three switch instants.
	t0 := math.Min(0, math.Min(dB, dC))
	times := []float64{0 - t0, dB - t0, dC - t0} // shifted so earliest = 0
	phases := risingSchedule3(times)
	return g.GateDelay(phases, p.Supply.VDD, 0)
}

// RisingDelay3 computes the rising-output MIS delay for falling inputs
// at offsets (0, dB, dC) relative to input A, measured from the latest
// falling input. vInit fills the isolated internal nodes in the initial
// all-high state (GND is the worst case).
func (p NOR3Params) RisingDelay3(dB, dC, vInit float64) (float64, error) {
	g := p.Gate()
	t0 := math.Min(0, math.Min(dB, dC))
	times := []float64{0 - t0, dB - t0, dC - t0}
	phases := fallingSchedule3(times)
	last := math.Max(times[0], math.Max(times[1], times[2]))
	return g.GateDelay(phases, vInit, last)
}

// risingSchedule3 builds the phase list for inputs rising at the given
// times (all initially low).
func risingSchedule3(times []float64) []PhaseN {
	return schedule3(times, false)
}

// fallingSchedule3 builds the phase list for inputs falling at the given
// times (all initially high).
func fallingSchedule3(times []float64) []PhaseN {
	return schedule3(times, true)
}

func schedule3(times []float64, initiallyHigh bool) []PhaseN {
	type ev struct {
		t   float64
		idx int
	}
	evs := []ev{{times[0], 0}, {times[1], 1}, {times[2], 2}}
	// Insertion sort by time (3 elements).
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].t < evs[j-1].t; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	state := []bool{initiallyHigh, initiallyHigh, initiallyHigh}
	phases := []PhaseN{{Start: evs[0].t - 1e-12, Inputs: append([]bool(nil), state...)}}
	// Tiny negative lead keeps phase 0 as the settled pre-state.
	for _, e := range evs {
		state[e.idx] = !initiallyHigh
		phases = append(phases, PhaseN{Start: e.t, Inputs: append([]bool(nil), state...)})
	}
	return phases
}

// Characteristic3 summarizes the 3-input MIS behaviour: the falling
// delays for all-simultaneous, pairwise-simultaneous and fully separated
// input arrivals, plus the corresponding rising delays.
type Characteristic3 struct {
	FallAllZero  float64 // all three inputs rise together
	FallTwoZero  float64 // A and B together, C far later
	FallSIS      float64 // A alone (others far later)
	RiseAllZero  float64 // all three fall together
	RiseSIS      float64 // C falls last, far after A and B
	RiseWorstSep float64 // stack order worst case: A last
}

// Characteristic3 measures the summary delays (worst-case internal
// fills).
func (p NOR3Params) Characteristic3() (Characteristic3, error) {
	var c Characteristic3
	var err error
	if c.FallAllZero, err = p.FallingDelay3(0, 0); err != nil {
		return c, err
	}
	if c.FallTwoZero, err = p.FallingDelay3(0, SISFar); err != nil {
		return c, err
	}
	if c.FallSIS, err = p.FallingDelay3(SISFar, 2*SISFar); err != nil {
		return c, err
	}
	if c.RiseAllZero, err = p.RisingDelay3(0, 0, 0); err != nil {
		return c, err
	}
	if c.RiseSIS, err = p.RisingDelay3(-SISFar, 0, 0); err != nil {
		return c, err
	}
	// A last: dB = dC = -SISFar means B and C fell long before A.
	if c.RiseWorstSep, err = p.RisingDelay3(-SISFar, -SISFar, 0); err != nil {
		return c, err
	}
	return c, nil
}

// String renders the parameters.
func (p NOR3Params) String() string {
	return fmt.Sprintf("RP=%.1f/%.1f/%.1fkΩ RN=%.1f/%.1f/%.1fkΩ CN1=%.1faF CN2=%.1faF CO=%.1faF δmin=%.1fps",
		p.RP1/1e3, p.RP2/1e3, p.RP3/1e3, p.RN1/1e3, p.RN2/1e3, p.RN3/1e3,
		p.CN1/1e-18, p.CN2/1e-18, p.CO/1e-18, p.DMin/1e-12)
}
