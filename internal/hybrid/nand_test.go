package hybrid

import (
	"math"
	"testing"

	"hybriddelay/internal/trace"
)

// tableINAND is the NAND dual of the Table I NOR parametrization.
func tableINAND() NANDParams {
	return NANDFromDual(TableI())
}

func TestNANDDualRoundTrip(t *testing.T) {
	n := tableINAND()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	back := NANDFromDual(n.Dual())
	if back != n {
		t.Errorf("dual round trip changed parameters: %+v vs %+v", back, n)
	}
	if n.String() == "" {
		t.Error("empty String()")
	}
	bad := n
	bad.CM = -1
	if err := bad.Validate(); err == nil {
		t.Error("invalid NAND params accepted")
	}
}

// TestNANDDualityExact: every NAND delay equals the mirrored NOR delay —
// the model-level duality is exact by construction and pinned here.
func TestNANDDualityExact(t *testing.T) {
	nor := TableI()
	nand := NANDFromDual(nor)
	for _, dd := range []float64{-SISFar, -40e-12, 0, 40e-12, SISFar} {
		// NAND rising (parallel pMOS) <-> NOR falling (parallel nMOS).
		nr, err := nand.RisingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := nor.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		if nr != nf {
			t.Errorf("Delta=%g: NAND rise %g != NOR fall %g", dd, nr, nf)
		}
		// NAND falling with VM=x <-> NOR rising with VN=VDD-x.
		for _, vm := range []float64{0, 0.4, 0.8} {
			a, err := nand.FallingDelay(dd, vm)
			if err != nil {
				t.Fatal(err)
			}
			b, err := nor.RisingDelayFrom(dd, 0.8-vm)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("Delta=%g VM=%g: NAND fall %g != dual NOR rise %g", dd, vm, a, b)
			}
		}
	}
}

// TestNANDMISDirections: the NAND's MIS effects mirror the NOR's —
// rising speed-up (parallel pull-up), falling slow-down with worst-case
// M history.
func TestNANDMISDirections(t *testing.T) {
	n := tableINAND()
	c, err := n.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	// Rising: speed-up at Delta = 0.
	if !(c.RiseZero < c.RiseMinusInf && c.RiseZero < c.RisePlusInf) {
		t.Errorf("NAND rising speed-up missing: %+v", c)
	}
	// Falling: worst-case M makes Delta=0 at least as slow as one tail
	// (flat for Delta <= 0, mirroring Fig. 6 at VN=GND).
	if c.FallZero < c.FallMinusInf-1e-15 {
		t.Errorf("NAND falling slow-down missing: %+v", c)
	}
	// Falling is slower than rising for the Table I dual (the serial
	// stack discharges through two resistors).
	if c.FallZero < c.RiseZero {
		t.Errorf("NAND fall(0)=%g should exceed rise(0)=%g", c.FallZero, c.RiseZero)
	}
}

// TestNANDSweepsAndCharacteristic: sweep APIs work and agree with the
// pointwise queries.
func TestNANDSweeps(t *testing.T) {
	n := tableINAND()
	deltas := []float64{-50e-12, 0, 50e-12}
	fs, err := n.FallingSweep(deltas, n.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := n.RisingSweep(deltas)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		want, err := n.FallingDelay(d, n.Supply.VDD)
		if err != nil {
			t.Fatal(err)
		}
		if fs[i].Delay != want {
			t.Errorf("falling sweep mismatch at %g", d)
		}
		want, err = n.RisingDelay(d)
		if err != nil {
			t.Fatal(err)
		}
		if rs[i].Delay != want {
			t.Errorf("rising sweep mismatch at %g", d)
		}
	}
}

// TestApplyNANDTruth: the NAND channel computes NAND logic with
// plausible delays and well-formed traces.
func TestApplyNANDTruth(t *testing.T) {
	n := tableINAND()
	// Both inputs rise together: output falls after the MIS fall delay.
	a := trace.New(false, []trace.Event{{Time: 500e-12, Value: true}})
	b := trace.New(false, []trace.Event{{Time: 500e-12, Value: true}})
	out, err := ApplyNAND(n, a, b, 3e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Initial {
		t.Fatal("NAND of (0,0) must start high")
	}
	if out.NumEvents() != 1 || out.Events[0].Value {
		t.Fatalf("output %+v", out.Events)
	}
	want, err := n.FallingDelay(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Events[0].Time - 500e-12
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("channel fall delay %g, want %g", got, want)
	}
	// Only one input rises: no output change.
	out, err = ApplyNAND(n, a, trace.Trace{Initial: false}, 3e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEvents() != 0 {
		t.Errorf("single input rose but NAND switched: %+v", out.Events)
	}
}

// TestApplyNANDValid: random stimuli produce valid traces that settle to
// the NAND of the final values.
func TestApplyNANDSettles(t *testing.T) {
	n := tableINAND()
	a := trace.New(false, []trace.Event{
		{Time: 400e-12, Value: true},
		{Time: 900e-12, Value: false},
		{Time: 1400e-12, Value: true},
	})
	b := trace.New(false, []trace.Event{
		{Time: 420e-12, Value: true},
		{Time: 1000e-12, Value: false},
	})
	out, err := ApplyNAND(n, a, b, 20e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	want := !(a.Final() && b.Final())
	if out.Final() != want {
		t.Errorf("NAND settled at %v, want %v", out.Final(), want)
	}
}
