package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
)

// VNInitial enumerates the internal-node initial values studied for the
// rising-output experiments (paper Fig. 6). Since mode (1,1) never
// changes V_N, the value it held when the gate last entered (1,1) is part
// of the gate's hidden state; the paper examines GND (worst case, used
// for parametrization), VDD/2 and VDD.
type VNInitial int

// The three studied initial values of V_N in mode (1,1).
const (
	VNGround VNInitial = iota // V_N = GND (paper's worst case)
	VNHalf                    // V_N = VDD/2
	VNSupply                  // V_N = VDD
)

// Voltage resolves the initial value against the supply.
func (v VNInitial) Voltage(s Params) float64 {
	switch v {
	case VNGround:
		return 0
	case VNHalf:
		return s.Supply.VDD / 2
	case VNSupply:
		return s.Supply.VDD
	}
	panic(fmt.Sprintf("hybrid: unknown VNInitial %d", int(v)))
}

// String implements fmt.Stringer.
func (v VNInitial) String() string {
	switch v {
	case VNGround:
		return "GND"
	case VNHalf:
		return "VDD/2"
	case VNSupply:
		return "VDD"
	}
	return fmt.Sprintf("VNInitial(%d)", int(v))
}

// FallingDelay computes the falling-output MIS delay delta_fall(Delta) =
// tO - min(tA, tB) + delta_min for input separation Delta = tB - tA
// (both inputs rising, paper §IV case 1-2).
//
// The gate starts settled in mode (0,0) (V_N = V_O = VDD). At t = 0 the
// earlier input rises: A for Delta >= 0 (mode (1,0)), B for Delta < 0
// (mode (0,1)). At t = |Delta| the later input rises and the gate enters
// mode (1,1). The delay is the first downward V_th crossing of V_O, which
// may occur before or after the second switch.
func (p Params) FallingDelay(delta float64) (float64, error) {
	ts := math.Abs(delta)
	first := Mode10
	if delta < 0 {
		first = Mode01
	}
	v0 := la.Vec2{X: p.Supply.VDD, Y: p.Supply.VDD}
	tr, err := p.NewTrajectory(v0, []Phase{
		{Start: 0, Mode: first},
		{Start: ts, Mode: Mode11},
	})
	if err != nil {
		return 0, err
	}
	tO, ok := tr.FirstOutputCrossing(p.Supply.Vth, false, 0)
	if !ok {
		return 0, fmt.Errorf("hybrid: output never falls (delta=%g)", delta)
	}
	return tO + p.DMin, nil
}

// RisingDelay computes the rising-output MIS delay delta_rise(Delta) =
// tO - max(tA, tB) + delta_min for input separation Delta = tB - tA
// (both inputs falling, paper §IV).
//
// The gate starts settled in mode (1,1) with V_O = GND and V_N at the
// supplied initial value (see VNInitial). At t = 0 the earlier input
// falls: A for Delta >= 0 (mode (0,1)), B for Delta < 0 (mode (1,0)).
// At t = |Delta| the later input falls and the gate enters mode (0,0).
// The delay is the first upward V_th crossing of V_O minus |Delta|.
func (p Params) RisingDelay(delta float64, vn VNInitial) (float64, error) {
	return p.RisingDelayFrom(delta, vn.Voltage(p))
}

// RisingDelayFrom is RisingDelay with an arbitrary initial V_N voltage.
func (p Params) RisingDelayFrom(delta float64, vn0 float64) (float64, error) {
	ts := math.Abs(delta)
	first := Mode01
	if delta < 0 {
		first = Mode10
	}
	v0 := la.Vec2{X: vn0, Y: 0}
	tr, err := p.NewTrajectory(v0, []Phase{
		{Start: 0, Mode: first},
		{Start: ts, Mode: Mode00},
	})
	if err != nil {
		return 0, err
	}
	tO, ok := tr.FirstOutputCrossing(p.Supply.Vth, true, 0)
	if !ok {
		return 0, fmt.Errorf("hybrid: output never rises (delta=%g, vn0=%g)", delta, vn0)
	}
	return tO - ts + p.DMin, nil
}

// SISFar is the input separation used to stand in for Delta = +/-
// infinity, matching the paper's 2e-10 s.
const SISFar = 200e-12

// Characteristic holds the six characteristic Charlie delays of §V.
type Characteristic struct {
	FallMinusInf float64 // delta_fall(-inf)
	FallZero     float64 // delta_fall(0)
	FallPlusInf  float64 // delta_fall(+inf)
	RiseMinusInf float64 // delta_rise(-inf)
	RiseZero     float64 // delta_rise(0)
	RisePlusInf  float64 // delta_rise(+inf)
}

// Characteristic computes the six characteristic delays of the model by
// exact trajectory evaluation, using V_N = GND for the rising cases as
// the paper does for parametrization.
func (p Params) Characteristic() (Characteristic, error) {
	var c Characteristic
	var err error
	if c.FallMinusInf, err = p.FallingDelay(-SISFar); err != nil {
		return c, err
	}
	if c.FallZero, err = p.FallingDelay(0); err != nil {
		return c, err
	}
	if c.FallPlusInf, err = p.FallingDelay(SISFar); err != nil {
		return c, err
	}
	if c.RiseMinusInf, err = p.RisingDelay(-SISFar, VNGround); err != nil {
		return c, err
	}
	if c.RiseZero, err = p.RisingDelay(0, VNGround); err != nil {
		return c, err
	}
	if c.RisePlusInf, err = p.RisingDelay(SISFar, VNGround); err != nil {
		return c, err
	}
	return c, nil
}

// AsSlice returns the six delays in a fixed order (fall -inf, 0, +inf,
// rise -inf, 0, +inf), convenient for residual construction.
func (c Characteristic) AsSlice() []float64 {
	return []float64{
		c.FallMinusInf, c.FallZero, c.FallPlusInf,
		c.RiseMinusInf, c.RiseZero, c.RisePlusInf,
	}
}

// SweepPoint is one (Delta, delay) sample of a model MIS sweep.
type SweepPoint struct {
	Delta float64
	Delay float64
}

// FallingSweep samples delta_fall over the given separations (Fig. 5).
func (p Params) FallingSweep(deltas []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := p.FallingDelay(d)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}

// RisingSweep samples delta_rise over the given separations for a given
// V_N initial value (Fig. 6).
func (p Params) RisingSweep(deltas []float64, vn VNInitial) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := p.RisingDelay(d, vn)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}
