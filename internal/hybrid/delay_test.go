package hybrid

import (
	"math"
	"testing"

	"hybriddelay/internal/waveform"
)

// Golden characteristic delays of the Table I parametrization, computed
// by the exact trajectory solver and cross-checked against the paper's
// Fig. 5/6 (fall ~38.9/28.0/39.1 ps, rise ~55.0/55.0/52.7 ps — compare
// the paper's SPICE values 38/28/40 and 55.6/56.8/53.4).
const (
	goldFallMinusInf = 38.86e-12
	goldFallZero     = 28.03e-12
	goldFallPlusInf  = 39.08e-12
	goldRiseMinusInf = 55.00e-12
	goldRiseZero     = 55.00e-12
	goldRisePlusInf  = 52.74e-12
)

func TestTableICharacteristic(t *testing.T) {
	p := TableI()
	c, err := p.Characteristic()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		got, want float64
	}{
		{"fall(-inf)", c.FallMinusInf, goldFallMinusInf},
		{"fall(0)", c.FallZero, goldFallZero},
		{"fall(+inf)", c.FallPlusInf, goldFallPlusInf},
		{"rise(-inf)", c.RiseMinusInf, goldRiseMinusInf},
		{"rise(0)", c.RiseZero, goldRiseZero},
		{"rise(+inf)", c.RisePlusInf, goldRisePlusInf},
	}
	for _, cse := range cases {
		if math.Abs(cse.got-cse.want) > 0.02e-12 {
			t.Errorf("%s = %.3f ps, want %.3f ps", cse.name, waveform.ToPs(cse.got), waveform.ToPs(cse.want))
		}
	}
}

// TestFallingSpeedUp: the MIS speed-up of §II/Fig. 5 — delta_fall is
// minimal at Delta = 0 and increases monotonically toward both tails.
func TestFallingSpeedUp(t *testing.T) {
	p := TableI()
	d0, err := p.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	prevPos, prevNeg := d0, d0
	for dd := 5e-12; dd <= 100e-12; dd += 5e-12 {
		dp, err := p.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := p.FallingDelay(-dd)
		if err != nil {
			t.Fatal(err)
		}
		if dp < prevPos-1e-16 {
			t.Errorf("delta_fall not increasing at Delta=%g", dd)
		}
		if dn < prevNeg-1e-16 {
			t.Errorf("delta_fall not increasing at Delta=-%g", dd)
		}
		prevPos, prevNeg = dp, dn
	}
	// The speed-up magnitude: the paper's Table I model gives
	// (38.86-28.03)/38.86 ~ 28%.
	cm, _ := p.FallingDelay(-SISFar)
	rel := (cm - d0) / cm
	if rel < 0.2 || rel > 0.35 {
		t.Errorf("speed-up = %.1f%%, expected 20-35%%", 100*rel)
	}
}

// TestFallingTailAsymmetry: delta_fall(+inf) > delta_fall(-inf) because
// mode (1,0) also drains C_N through R2 (the T2 connection, §II).
func TestFallingTailAsymmetry(t *testing.T) {
	p := TableI()
	cm, err := p.FallingDelay(-SISFar)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.FallingDelay(SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if cp <= cm {
		t.Errorf("fall(+inf)=%g should exceed fall(-inf)=%g", cp, cm)
	}
}

// TestRisingVNInvariance: with V_N = GND the model's rising delay is
// exactly flat for Delta <= 0 — the deficiency the paper reports in
// Fig. 6 (mode (1,1) cannot change V_N, and from V_N = GND mode (1,0)
// keeps the state at the origin).
func TestRisingVNInvariance(t *testing.T) {
	p := TableI()
	base, err := p.RisingDelay(0, VNGround)
	if err != nil {
		t.Fatal(err)
	}
	for _, dd := range []float64{-5e-12, -20e-12, -60e-12, -150e-12} {
		d, err := p.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-base) > 1e-15 {
			t.Errorf("delta_rise(%g) = %g differs from delta_rise(0) = %g at VN=GND", dd, d, base)
		}
	}
}

// TestRisingPrecharge: for Delta > 0 the internal node precharges in
// mode (0,1), so the delay decreases monotonically toward rise(+inf).
func TestRisingPrecharge(t *testing.T) {
	p := TableI()
	prev := math.Inf(1)
	for _, dd := range []float64{0, 10e-12, 30e-12, 60e-12, 120e-12, SISFar} {
		d, err := p.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-16 {
			t.Errorf("delta_rise not decreasing at Delta=%g (%g > %g)", dd, d, prev)
		}
		prev = d
	}
}

// TestRisingVNVariants: a higher initial V_N can only shorten the rising
// delay (less charge to supply through R1), matching Fig. 6's ordering
// for Delta < 0.
func TestRisingVNVariants(t *testing.T) {
	p := TableI()
	for _, dd := range []float64{-60e-12, -20e-12, 0} {
		dg, err := p.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		dh, err := p.RisingDelay(dd, VNHalf)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := p.RisingDelay(dd, VNSupply)
		if err != nil {
			t.Fatal(err)
		}
		if !(dv <= dh+1e-16 && dh <= dg+1e-16) {
			t.Errorf("Delta=%g: VN ordering violated: GND %g, VDD/2 %g, VDD %g", dd, dg, dh, dv)
		}
	}
}

// TestDMinShift: the pure delay shifts every delay by exactly DMin.
func TestDMinShift(t *testing.T) {
	p := TableI()
	q := p.WithoutDMin()
	for _, dd := range []float64{-40e-12, 0, 25e-12} {
		a, err := p.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		b, err := q.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b-p.DMin) > 1e-18 {
			t.Errorf("fall(%g): DMin shift broken: %g vs %g", dd, a, b)
		}
		ar, err := p.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		br, err := q.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ar-br-p.DMin) > 1e-18 {
			t.Errorf("rise(%g): DMin shift broken", dd)
		}
	}
}

// TestDelayContinuityInDelta: delta(Delta) is continuous — small changes
// in the separation change the delay smoothly (needed for a sane delay
// model; discontinuities would make timing analysis unstable).
func TestDelayContinuityInDelta(t *testing.T) {
	p := TableI()
	prevF := math.NaN()
	prevR := math.NaN()
	const step = 1e-12
	for dd := -80e-12; dd <= 80e-12; dd += step {
		f, err := p.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.RisingDelay(dd, VNGround)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(prevF) {
			if math.Abs(f-prevF) > 2e-12 {
				t.Fatalf("delta_fall jumps by %g at Delta=%g", f-prevF, dd)
			}
			if math.Abs(r-prevR) > 2e-12 {
				t.Fatalf("delta_rise jumps by %g at Delta=%g", r-prevR, dd)
			}
		}
		prevF, prevR = f, r
	}
}

// TestFallingTailsSaturate: beyond the SIS horizon the delay no longer
// depends on Delta (the crossing happens before the second transition).
func TestFallingTailsSaturate(t *testing.T) {
	p := TableI()
	a, err := p.FallingDelay(SISFar)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.FallingDelay(2 * SISFar)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-16 {
		t.Errorf("falling tail not saturated: %g vs %g", a, b)
	}
}

func TestSweeps(t *testing.T) {
	p := TableI()
	deltas := []float64{-60e-12, -30e-12, 0, 30e-12, 60e-12}
	fs, err := p.FallingSweep(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != len(deltas) {
		t.Fatal("falling sweep size wrong")
	}
	for i, pt := range fs {
		if pt.Delta != deltas[i] {
			t.Error("sweep deltas mangled")
		}
		if pt.Delay <= 0 {
			t.Error("non-positive delay in sweep")
		}
	}
	rs, err := p.RisingSweep(deltas, VNGround)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(deltas) {
		t.Fatal("rising sweep size wrong")
	}
}

func TestVNInitialVoltage(t *testing.T) {
	p := TableI()
	if VNGround.Voltage(p) != 0 {
		t.Error("GND voltage wrong")
	}
	if VNHalf.Voltage(p) != p.Supply.VDD/2 {
		t.Error("VDD/2 voltage wrong")
	}
	if VNSupply.Voltage(p) != p.Supply.VDD {
		t.Error("VDD voltage wrong")
	}
	if VNGround.String() != "GND" || VNHalf.String() != "VDD/2" || VNSupply.String() != "VDD" {
		t.Error("VNInitial names wrong")
	}
}
