package hybrid

import (
	"math"
	"testing"
)

// TestNOR2SwitchGateMatchesClosedForm is the keystone cross-validation:
// the generic n-dimensional switch-level machinery must reproduce the
// specialised 2x2 implementation of the paper's NOR exactly (well below
// a femtosecond).
func TestNOR2SwitchGateMatchesClosedForm(t *testing.T) {
	p := TableI()
	g := NOR2SwitchGate(p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, dd := range []float64{-SISFar, -40e-12, -10e-12, 0, 10e-12, 40e-12, SISFar} {
		// Falling: inputs rise; A at 0, B at dd (shift so earliest = 0).
		t0 := math.Min(0, dd)
		phases := []PhaseN{
			{Start: -1e-12 + 0*t0, Inputs: []bool{false, false}},
		}
		times := []float64{0 - t0, dd - t0}
		if times[0] <= times[1] {
			phases = append(phases,
				PhaseN{Start: times[0], Inputs: []bool{true, false}},
				PhaseN{Start: times[1], Inputs: []bool{true, true}})
		} else {
			phases = append(phases,
				PhaseN{Start: times[1], Inputs: []bool{false, true}},
				PhaseN{Start: times[0], Inputs: []bool{true, true}})
		}
		phases[0].Start = math.Min(times[0], times[1]) - 1e-12
		got, err := g.GateDelay(phases, p.Supply.VDD, 0)
		if err != nil {
			t.Fatalf("Delta=%g: %v", dd, err)
		}
		want, err := p.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-16 {
			t.Errorf("Delta=%g: switch-gate fall %.6g, closed form %.6g", dd, got, want)
		}
	}
	// Rising with the three V_N fills.
	for _, vn := range []float64{0, 0.4, 0.8} {
		for _, dd := range []float64{-60e-12, 0, 60e-12} {
			t0 := math.Min(0, dd)
			times := []float64{0 - t0, dd - t0}
			var phases []PhaseN
			if times[0] <= times[1] {
				phases = []PhaseN{
					{Start: math.Min(times[0], times[1]) - 1e-12, Inputs: []bool{true, true}},
					{Start: times[0], Inputs: []bool{false, true}},
					{Start: times[1], Inputs: []bool{false, false}},
				}
			} else {
				phases = []PhaseN{
					{Start: math.Min(times[0], times[1]) - 1e-12, Inputs: []bool{true, true}},
					{Start: times[1], Inputs: []bool{true, false}},
					{Start: times[0], Inputs: []bool{false, false}},
				}
			}
			last := math.Max(times[0], times[1])
			got, err := g.GateDelay(phases, vn, last)
			if err != nil {
				t.Fatalf("vn=%g Delta=%g: %v", vn, dd, err)
			}
			want, err := p.RisingDelayFrom(dd, vn)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-16 {
				t.Errorf("vn=%g Delta=%g: switch-gate rise %.6g, closed form %.6g", vn, dd, got, want)
			}
		}
	}
}

func TestSwitchGateValidation(t *testing.T) {
	p := TableI()
	good := NOR2SwitchGate(p)
	bad := good
	bad.Caps = []float64{p.CN, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero cap accepted")
	}
	bad = good
	bad.OutNode = 5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range output accepted")
	}
	bad = good
	bad.Logic = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing logic accepted")
	}
	bad = good
	bad.Branches = append([]SwitchBranch(nil), good.Branches...)
	bad.Branches[0].Input = 7
	if err := bad.Validate(); err == nil {
		t.Error("bad branch input accepted")
	}
	bad = good
	bad.Branches = append([]SwitchBranch(nil), good.Branches...)
	bad.Branches[0].R = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero branch resistance accepted")
	}
}

// TestSwitchGateSteadyStates: mode steady states of the NOR2 switch
// gate match the specialised model's.
func TestSwitchGateSteadyStates(t *testing.T) {
	p := TableI()
	g := NOR2SwitchGate(p)
	vdd := p.Supply.VDD
	cases := []struct {
		in   []bool
		fill float64
		want []float64
	}{
		{[]bool{false, false}, 0, []float64{vdd, vdd}},
		{[]bool{false, true}, 0, []float64{vdd, 0}},
		{[]bool{true, false}, 0, []float64{0, 0}},
		{[]bool{true, true}, 0.3, []float64{0.3, 0}}, // N isolated keeps the fill
	}
	for _, c := range cases {
		got, err := g.SteadyState(c.in, c.fill)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-6 {
				t.Errorf("inputs %v: node %d settles at %g, want %g", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestTrajectoryNContinuity: state continuity across switches for the
// 3-node gate.
func TestTrajectoryNContinuity(t *testing.T) {
	p3 := NOR3FromNOR2(TableI())
	g := p3.Gate()
	phases := []PhaseN{
		{Start: 0, Inputs: []bool{false, false, false}},
		{Start: 20e-12, Inputs: []bool{true, false, false}},
		{Start: 45e-12, Inputs: []bool{true, true, false}},
		{Start: 70e-12, Inputs: []bool{true, true, true}},
	}
	v0 := []float64{0.8, 0.8, 0.8}
	tr, err := g.NewTrajectory(v0, phases)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range phases[1:] {
		before := tr.At(ph.Start - 1e-18)
		after := tr.At(ph.Start + 1e-18)
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-6 {
				t.Errorf("node %d jumps at %g: %g -> %g", i, ph.Start, before[i], after[i])
			}
		}
	}
	if tr.VOut(0) != tr.At(0)[2] {
		t.Error("VOut inconsistent with At")
	}
}
