package hybrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/la"
)

func TestTrajectoryValidation(t *testing.T) {
	p := TableI()
	if _, err := p.NewTrajectory(la.Vec2{}, nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := p.NewTrajectory(la.Vec2{}, []Phase{
		{Start: 10e-12, Mode: Mode00}, {Start: 5e-12, Mode: Mode11},
	}); err == nil {
		t.Error("unsorted schedule accepted")
	}
	bad := p
	bad.R1 = -1
	if _, err := bad.NewTrajectory(la.Vec2{}, []Phase{{Mode: Mode00}}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestTrajectoryContinuity: the state is continuous across mode
// switches — the defining property of the hybrid model.
func TestTrajectoryContinuity(t *testing.T) {
	p := TableI()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		modes := []Mode{Mode00, Mode01, Mode10, Mode11}
		var phases []Phase
		tm := 0.0
		for i := 0; i < 2+rng.Intn(5); i++ {
			phases = append(phases, Phase{Start: tm, Mode: modes[rng.Intn(4)]})
			tm += (5 + rng.Float64()*60) * 1e-12
		}
		v0 := la.Vec2{X: rng.Float64() * 0.8, Y: rng.Float64() * 0.8}
		tr, err := p.NewTrajectory(v0, phases)
		if err != nil {
			return false
		}
		for _, ph := range phases[1:] {
			eps := 1e-18
			before := tr.At(ph.Start - eps)
			after := tr.At(ph.Start + eps)
			if before.Sub(after).Norm() > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrajectoryMatchesRK4: piecewise analytic solution equals numeric
// integration of the same switched system.
func TestTrajectoryMatchesRK4(t *testing.T) {
	p := TableI()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		modes := []Mode{Mode00, Mode01, Mode10, Mode11}
		var phases []Phase
		tm := 0.0
		for i := 0; i < 3; i++ {
			phases = append(phases, Phase{Start: tm, Mode: modes[rng.Intn(4)]})
			tm += (10 + rng.Float64()*40) * 1e-12
		}
		v0 := la.Vec2{X: rng.Float64() * 0.8, Y: rng.Float64() * 0.8}
		tr, err := p.NewTrajectory(v0, phases)
		if err != nil {
			t.Fatal(err)
		}
		// Numeric reference: RK4 through each phase.
		state := v0
		for i, ph := range phases {
			end := tm + 50e-12
			if i+1 < len(phases) {
				end = phases[i+1].Start
			}
			state = p.System(ph.Mode).RK4(state, end-ph.Start, 6000)
		}
		got := tr.At(tm + 50e-12)
		if got.Sub(state).Norm() > 1e-4 {
			t.Fatalf("trial %d: analytic %v vs RK4 %v", trial, got, state)
		}
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	p := TableI()
	tr, err := p.NewTrajectory(la.Vec2{X: 0.8, Y: 0.8}, []Phase{
		{Start: 0, Mode: Mode10},
		{Start: 30e-12, Mode: Mode11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Start() != 0 {
		t.Error("Start wrong")
	}
	if tr.ModeAt(10e-12) != Mode10 || tr.ModeAt(40e-12) != Mode11 {
		t.Error("ModeAt wrong")
	}
	if got := tr.VO(0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("VO(0) = %g", got)
	}
	if got := tr.VN(0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("VN(0) = %g", got)
	}
	// Before the first phase the state clamps to the initial value.
	if got := tr.VO(-5e-12); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("VO before start = %g", got)
	}
	times, vn, vo := tr.Sample(0, 100e-12, 50)
	if len(times) != 51 || len(vn) != 51 || len(vo) != 51 {
		t.Error("Sample sizes wrong")
	}
}

// TestFig4TrajectoryShapes reproduces the qualitative content of paper
// Fig. 4: the output discharge of system (1,1) is much steeper than that
// of (1,0) and (0,1); system (0,0) charges both nodes to VDD; (1,1)
// freezes V_N.
func TestFig4TrajectoryShapes(t *testing.T) {
	p := TableI()
	vdd := p.Supply.VDD

	solve := func(m Mode, v0 la.Vec2) *Trajectory {
		tr, err := p.NewTrajectory(v0, []Phase{{Start: 0, Mode: m}})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Initial values as in Fig. 4.
	tr11 := solve(Mode11, la.Vec2{X: vdd / 2, Y: vdd})
	tr10 := solve(Mode10, la.Vec2{X: vdd, Y: vdd})
	tr01 := solve(Mode01, la.Vec2{X: vdd, Y: vdd})
	tr00 := solve(Mode00, la.Vec2{X: 0, Y: 0})

	at := 20e-12
	// (1,1) discharges the output fastest (parallel paths).
	if !(tr11.VO(at) < tr10.VO(at) && tr11.VO(at) < tr01.VO(at)) {
		t.Errorf("(1,1) not steepest: %g vs %g, %g", tr11.VO(at), tr10.VO(at), tr01.VO(at))
	}
	// (1,1) keeps V_N frozen.
	if math.Abs(tr11.VN(100e-12)-vdd/2) > 1e-12 {
		t.Error("(1,1) changed V_N")
	}
	// (0,0) charges both nodes toward VDD, V_N leading V_O.
	if !(tr00.VN(at) > tr00.VO(at)) {
		t.Errorf("(0,0): V_N (%g) should lead V_O (%g)", tr00.VN(at), tr00.VO(at))
	}
	if tr00.VO(500e-12) < 0.99*vdd {
		t.Error("(0,0) did not charge the output")
	}
	// (0,1) recharges N to VDD while draining O.
	if tr01.VN(500e-12) < 0.99*vdd || tr01.VO(500e-12) > 0.01*vdd {
		t.Error("(0,1) end state wrong")
	}
	// (1,0) drains both nodes (N follows O through R2).
	if tr10.VN(1e-9) > 0.01*vdd || tr10.VO(1e-9) > 0.01*vdd {
		t.Error("(1,0) end state wrong")
	}
}

func TestFirstOutputCrossing(t *testing.T) {
	p := TableI()
	vdd := p.Supply.VDD
	// Pure (1,1) discharge from VDD crosses Vth at ln2 * CO*(R3||R4).
	tr, err := p.NewTrajectory(la.Vec2{X: vdd, Y: vdd}, []Phase{{Start: 0, Mode: Mode11}})
	if err != nil {
		t.Fatal(err)
	}
	tc, ok := tr.FirstOutputCrossing(p.Supply.Vth, false, 0)
	if !ok {
		t.Fatal("no crossing")
	}
	want := math.Ln2 * p.CO * (p.R3 * p.R4 / (p.R3 + p.R4))
	if math.Abs(tc-want) > 1e-15+1e-9*want {
		t.Errorf("crossing at %g, want %g", tc, want)
	}
	// No rising crossing exists on a pure discharge.
	if _, ok := tr.FirstOutputCrossing(p.Supply.Vth, true, 0); ok {
		t.Error("found impossible rising crossing")
	}
	// Crossing strictly after `after`.
	if _, ok := tr.FirstOutputCrossing(p.Supply.Vth, false, want+1e-12); ok {
		t.Error("crossing search ignored the after parameter")
	}
}

// TestCrossingMonotoneInLevel: lower thresholds are crossed later on a
// falling trajectory.
func TestCrossingMonotoneInLevel(t *testing.T) {
	p := TableI()
	vdd := p.Supply.VDD
	tr, err := p.NewTrajectory(la.Vec2{X: vdd, Y: vdd}, []Phase{{Start: 0, Mode: Mode10}})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for level := 0.7 * vdd; level > 0.1*vdd; level -= 0.05 * vdd {
		tc, ok := tr.FirstOutputCrossing(level, false, 0)
		if !ok {
			t.Fatalf("no crossing for level %g", level)
		}
		if tc <= prev {
			t.Fatalf("crossing times not monotone in level at %g", level)
		}
		prev = tc
	}
}
