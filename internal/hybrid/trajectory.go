package hybrid

import (
	"fmt"
	"math"
	"sort"

	"hybriddelay/internal/la"
	"hybriddelay/internal/ode"
	"hybriddelay/internal/roots"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Phase is one leg of a mode schedule: the gate is in Mode from Start
// until the next phase's Start (the final phase extends to infinity).
type Phase struct {
	Start float64
	Mode  Mode
}

// Trajectory is the piecewise closed-form solution of a mode schedule.
// The state vector is carried continuously across mode switches, exactly
// as the hybrid automaton of the paper prescribes.
type Trajectory struct {
	segs []segment
}

type segment struct {
	start float64 // absolute start time
	end   float64 // absolute end time (+Inf for the last segment)
	mode  Mode
	sol   *ode.Solution2 // local time: t - start
}

// NewTrajectory solves the schedule starting from state v0 = (V_N, V_O)
// at the first phase's start time. Phases must be sorted by Start.
func (p Params) NewTrajectory(v0 la.Vec2, phases []Phase) (*Trajectory, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("hybrid: empty mode schedule")
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Start < phases[i-1].Start {
			return nil, fmt.Errorf("hybrid: phases not sorted at index %d", i)
		}
	}
	tr := &Trajectory{}
	state := v0
	for i, ph := range phases {
		end := math.Inf(1)
		if i+1 < len(phases) {
			end = phases[i+1].Start
		}
		sol, err := p.System(ph.Mode).Solve(state)
		if err != nil {
			return nil, fmt.Errorf("hybrid: solving mode %v: %w", ph.Mode, err)
		}
		tr.segs = append(tr.segs, segment{start: ph.Start, end: end, mode: ph.Mode, sol: sol})
		if !math.IsInf(end, 1) {
			state = sol.At(end - ph.Start) // continuity across the switch
		}
	}
	return tr, nil
}

// Start returns the trajectory's first defined time.
func (tr *Trajectory) Start() float64 { return tr.segs[0].start }

// At evaluates the state (V_N, V_O) at absolute time t (clamped to the
// trajectory start).
func (tr *Trajectory) At(t float64) la.Vec2 {
	seg := tr.segs[tr.segmentIndex(t)]
	local := t - seg.start
	if local < 0 {
		local = 0
	}
	return seg.sol.At(local)
}

// VO evaluates the output voltage at absolute time t.
func (tr *Trajectory) VO(t float64) float64 { return tr.At(t).Y }

// VN evaluates the internal node voltage at absolute time t.
func (tr *Trajectory) VN(t float64) float64 { return tr.At(t).X }

// ModeAt returns the active mode at time t.
func (tr *Trajectory) ModeAt(t float64) Mode {
	return tr.segs[tr.segmentIndex(t)].mode
}

func (tr *Trajectory) segmentIndex(t float64) int {
	i := sort.Search(len(tr.segs), func(i int) bool { return tr.segs[i].start > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// crossScanDensity is the number of scan points per segment used to
// isolate the first threshold crossing before Brent polishing. The output
// trajectory within a segment is a sum of at most two exponentials plus a
// constant, so it has at most two extrema; a modest scan is ample.
const crossScanDensity = 256

// FirstOutputCrossing returns the earliest time t >= after at which V_O
// crosses level in the requested direction. ok is false if the trajectory
// never crosses.
func (tr *Trajectory) FirstOutputCrossing(level float64, rising bool, after float64) (float64, bool) {
	for _, seg := range tr.segs {
		if seg.end <= after {
			continue
		}
		t0 := math.Max(seg.start, after)
		t1 := seg.end
		if math.IsInf(t1, 1) {
			// Size the window by the slowest pole; if the steady state
			// never reaches the level, only a finite excursion could cross.
			tau := seg.sol.SlowestTimeConstant()
			if math.IsInf(tau, 1) {
				tau = 1e-9 // all-neutral system: fixed 1 ns window
			}
			t1 = t0 + 60*tau
		}
		if t, ok := firstDirectionalCrossing(func(t float64) float64 {
			return seg.sol.At(t - seg.start).Y
		}, level, rising, t0, t1); ok {
			return t, true
		}
	}
	return 0, false
}

// firstDirectionalCrossing finds the earliest crossing of level with the
// requested slope sign in [t0, t1].
func firstDirectionalCrossing(f func(float64) float64, level float64, rising bool, t0, t1 float64) (float64, bool) {
	if t1 <= t0 {
		return 0, false
	}
	g := func(t float64) float64 { return f(t) - level }
	prevT := t0
	prevV := g(t0)
	for i := 1; i <= crossScanDensity; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(crossScanDensity)
		v := g(t)
		crossed := (prevV < 0 && v >= 0 && rising) || (prevV > 0 && v <= 0 && !rising)
		if crossed {
			if v == 0 {
				return t, true
			}
			r, err := roots.Brent(g, prevT, t, 0)
			if err != nil {
				return 0, false
			}
			return r, true
		}
		prevT, prevV = t, v
	}
	return 0, false
}

// Sample evaluates the trajectory on a uniform grid (used to render
// Fig. 4-style trajectory plots and for cross-validation against the
// analog simulator).
func (tr *Trajectory) Sample(t0, t1 float64, n int) (times []float64, vn []float64, vo []float64) {
	if n < 1 {
		n = 1
	}
	times = make([]float64, n+1)
	vn = make([]float64, n+1)
	vo = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n)
		v := tr.At(t)
		times[i] = t
		vn[i] = v.X
		vo[i] = v.Y
	}
	return times, vn, vo
}
