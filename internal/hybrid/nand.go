package hybrid

import (
	"fmt"

	"hybriddelay/internal/trace"
	"hybriddelay/internal/waveform"
)

// This file extends the paper's model to the 2-input CMOS NAND gate —
// the generalization the paper's conclusion points to. No new analysis
// is needed: the NAND is the exact structural dual of the NOR. Mapping
// every voltage through V -> VDD - V exchanges VDD and GND and turns
// each pMOS into an nMOS at the mirrored position:
//
//	NOR  T1 (pMOS, gate A, VDD->N)  <->  NAND nMOS, gate A, M->GND
//	NOR  T2 (pMOS, gate B, N->O)    <->  NAND nMOS, gate B, O->M
//	NOR  T3 (nMOS, gate A, O->GND)  <->  NAND pMOS, gate A, VDD->O
//	NOR  T4 (nMOS, gate B, O->GND)  <->  NAND pMOS, gate B, VDD->O
//
// so the NAND's internal node M sits in the *nMOS* stack and the MIS
// effects mirror: the falling NAND output (both inputs rising, serial
// discharge) shows the slow-down with the M-history dependence, the
// rising output (parallel pMOS) shows the speed-up. Every NAND delay
// query below is answered by the dual NOR model on mirrored state —
// which also means the closed-form Charlie machinery transfers verbatim.

// NANDParams parameterises the hybrid NAND model. Resistor names follow
// the NAND's own topology.
type NANDParams struct {
	RPA float64 // pMOS pull-up driven by input A (VDD -> O) [Ohm]
	RPB float64 // pMOS pull-up driven by input B (VDD -> O) [Ohm]
	RNB float64 // stack nMOS driven by input B (O -> M) [Ohm]
	RNA float64 // stack nMOS driven by input A (M -> GND) [Ohm]
	CM  float64 // internal stack-node capacitance [F]
	CO  float64 // output capacitance [F]

	Supply waveform.Supply
	DMin   float64 // pure delay [s]
}

// Dual returns the NOR parameter set whose mirrored dynamics are exactly
// this NAND's dynamics.
func (n NANDParams) Dual() Params {
	return Params{
		R1: n.RNA, R2: n.RNB, R3: n.RPA, R4: n.RPB,
		CN: n.CM, CO: n.CO,
		Supply: n.Supply,
		DMin:   n.DMin,
	}
}

// NANDFromDual builds the NAND parameter set dual to a NOR model —
// useful to reuse a Table I style calibration on the mirrored gate.
func NANDFromDual(p Params) NANDParams {
	return NANDParams{
		RPA: p.R3, RPB: p.R4, RNB: p.R2, RNA: p.R1,
		CM: p.CN, CO: p.CO,
		Supply: p.Supply,
		DMin:   p.DMin,
	}
}

// Validate checks physical plausibility.
func (n NANDParams) Validate() error {
	if err := n.Dual().Validate(); err != nil {
		return fmt.Errorf("nand: %w", err)
	}
	return nil
}

// String renders the parameters.
func (n NANDParams) String() string {
	return fmt.Sprintf(
		"RPA=%.3fkΩ RPB=%.3fkΩ RNB=%.3fkΩ RNA=%.3fkΩ CM=%.3faF CO=%.3faF δmin=%.1fps",
		n.RPA/1e3, n.RPB/1e3, n.RNB/1e3, n.RNA/1e3, n.CM/1e-18, n.CO/1e-18, n.DMin/1e-12)
}

// mirrorVoltage maps a NAND node voltage into the dual NOR frame.
func (n NANDParams) mirrorVoltage(v float64) float64 { return n.Supply.VDD - v }

// FallingDelay computes the falling-output NAND MIS delay for input
// separation Delta = tB - tA (both inputs rising): the gate starts
// settled in input state (0,0) with the output high and discharges
// through the serial nMOS stack, so the delay is measured from the
// *later* input and exhibits the MIS slow-down. vm0 is the initial
// voltage of the internal stack node M — state (0,0) isolates M, so its
// value is history the model cannot know (the dual of the paper's V_N
// discussion); the worst case is VM = VDD.
func (n NANDParams) FallingDelay(delta float64, vm0 float64) (float64, error) {
	// Dual: NOR rising delay with V_N = VDD - V_M.
	return n.Dual().RisingDelayFrom(delta, n.mirrorVoltage(vm0))
}

// RisingDelay computes the rising-output NAND MIS delay for input
// separation Delta = tB - tA (both inputs falling): the parallel pMOS
// pull the output up, the delay is measured from the *earlier* input and
// exhibits the MIS speed-up.
func (n NANDParams) RisingDelay(delta float64) (float64, error) {
	return n.Dual().FallingDelay(delta)
}

// Mirror exchanges the falling and rising delay triples index-wise —
// the NAND/NOR duality frame change under V -> VDD - V. It is its own
// inverse, so it converts in both directions (NOR-frame to NAND-frame
// and back).
func (c Characteristic) Mirror() Characteristic {
	return Characteristic{
		FallMinusInf: c.RiseMinusInf,
		FallZero:     c.RiseZero,
		FallPlusInf:  c.RisePlusInf,
		RiseMinusInf: c.FallMinusInf,
		RiseZero:     c.FallZero,
		RisePlusInf:  c.FallPlusInf,
	}
}

// Characteristic computes the six characteristic Charlie delays of the
// NAND (worst-case V_M = VDD for the falling cases): the mirrored dual
// NOR characteristic.
func (n NANDParams) Characteristic() (Characteristic, error) {
	dual, err := n.Dual().Characteristic()
	if err != nil {
		return Characteristic{}, err
	}
	return dual.Mirror(), nil
}

// FallingSweep samples the falling NAND delays over the separations.
func (n NANDParams) FallingSweep(deltas []float64, vm0 float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := n.FallingDelay(d, vm0)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}

// RisingSweep samples the rising NAND delays over the separations.
func (n NANDParams) RisingSweep(deltas []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		v, err := n.RisingDelay(d)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Delta: d, Delay: v})
	}
	return out, nil
}

// ApplyNAND runs two digital input traces through the hybrid NAND
// channel: by duality, the dual NOR channel driven with inverted inputs
// produces the inverted output with identical timing. vm0 is the initial
// internal stack-node voltage.
func ApplyNAND(n NANDParams, a, b trace.Trace, until float64, vm0 float64) (trace.Trace, error) {
	out, err := ApplyNOR(n.Dual(), a.Invert(), b.Invert(), until, n.mirrorVoltage(vm0))
	if err != nil {
		return trace.Trace{}, err
	}
	return out.Invert(), nil
}
