// Package hybrid implements the paper's primary contribution: the
// four-mode hybrid ODE delay model of a 2-input CMOS NOR gate.
//
// Each input state (A, B) in {0,1}^2 selects a first-order RC circuit
// (paper Fig. 3) obtained by replacing the transistors of Fig. 1 with
// ideal switches: a conducting transistor becomes a fixed resistor
// (R1..R4 for T1..T4), a blocking one an open circuit. The state vector
// V = (V_N, V_O) then obeys V' = A V + g with mode-dependent (A, g), and
// the gate delay is the time at which V_O crosses V_th = VDD/2.
//
// The package provides
//   - the mode systems and their closed-form trajectories (§III),
//   - piecewise (mode-schedule) simulation with continuity across
//     switches and exact threshold-crossing extraction,
//   - the MIS delay functions delta_fall(Delta), delta_rise(Delta) with
//     the pure delay delta_min (§IV),
//   - the characteristic Charlie delay formulas (8)-(12) (§V),
//   - least-squares parametrization from measured characteristic delays
//     (§V, Table I), and
//   - a 2-input delay channel for the digital timing simulator (§VI).
package hybrid

import (
	"fmt"

	"hybriddelay/internal/waveform"
)

// Params holds the model parameters: the switch-level resistances of the
// four transistors, the two capacitances, the supply, and the pure delay
// delta_min that defers mode switches after input threshold crossings.
type Params struct {
	R1 float64 // T1 on-resistance (pMOS, VDD -> N) [Ohm]
	R2 float64 // T2 on-resistance (pMOS, N -> O) [Ohm]
	R3 float64 // T3 on-resistance (nMOS, O -> GND) [Ohm]
	R4 float64 // T4 on-resistance (nMOS, O -> GND) [Ohm]
	CN float64 // internal node capacitance [F]
	CO float64 // output capacitance [F]

	Supply waveform.Supply

	// DMin is the pure delay [s] added to every input-to-output delay;
	// the paper needs delta_min = 18 ps to make the characteristic delay
	// ratios attainable by any (R, C) choice (§IV).
	DMin float64
}

// TableI returns the paper's empirically fitted parameter values
// (Table I) with the pure delay delta_min = 18 ps at the 15nm supply.
func TableI() Params {
	return Params{
		R1:     37.088e3,
		R2:     44.926e3,
		R3:     45.150e3,
		R4:     48.761e3,
		CN:     59.486e-18,
		CO:     617.259e-18,
		Supply: waveform.DefaultSupply(),
		DMin:   18e-12,
	}
}

// Validate checks physical plausibility.
func (p Params) Validate() error {
	if p.R1 <= 0 || p.R2 <= 0 || p.R3 <= 0 || p.R4 <= 0 {
		return fmt.Errorf("hybrid: resistances must be positive: %+v", p)
	}
	if p.CN <= 0 || p.CO <= 0 {
		return fmt.Errorf("hybrid: capacitances must be positive: CN=%g CO=%g", p.CN, p.CO)
	}
	if !p.Supply.Valid() {
		return fmt.Errorf("hybrid: invalid supply %+v", p.Supply)
	}
	if p.DMin < 0 {
		return fmt.Errorf("hybrid: negative pure delay %g", p.DMin)
	}
	return nil
}

// WithoutDMin returns a copy of p with the pure delay removed (used by
// the Fig. 7/8 ablations comparing the model with and without delta_min).
func (p Params) WithoutDMin() Params {
	q := p
	q.DMin = 0
	return q
}

// String renders the parameters in the units of Table I.
func (p Params) String() string {
	return fmt.Sprintf(
		"R1=%.3fkΩ R2=%.3fkΩ R3=%.3fkΩ R4=%.3fkΩ CN=%.3faF CO=%.3faF δmin=%.1fps",
		p.R1/1e3, p.R2/1e3, p.R3/1e3, p.R4/1e3, p.CN/1e-18, p.CO/1e-18, p.DMin/1e-12)
}
