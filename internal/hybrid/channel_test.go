package hybrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddelay/internal/dtsim"
	"hybriddelay/internal/trace"
)

// lead is a settling prefix before the first stimulus event.
const lead = 500e-12

// TestChannelMatchesFallingDelay: for isolated rising input pairs the
// channel's output fall time reproduces FallingDelay(Delta) exactly.
func TestChannelMatchesFallingDelay(t *testing.T) {
	p := TableI()
	for _, dd := range []float64{-120e-12, -40e-12, -5e-12, 0, 5e-12, 40e-12, 120e-12} {
		tA := lead
		tB := lead + dd
		if dd < 0 {
			tA, tB = lead-dd, lead
		}
		a := trace.New(false, []trace.Event{{Time: tA, Value: true}})
		b := trace.New(false, []trace.Event{{Time: tB, Value: true}})
		out, err := ApplyNOR(p, a, b, 3e-9, p.Supply.VDD)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Initial || out.NumEvents() != 1 || out.Events[0].Value {
			t.Fatalf("Delta=%g: output trace %+v", dd, out.Events)
		}
		want, err := p.FallingDelay(dd)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Events[0].Time - math.Min(tA, tB)
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("Delta=%g: channel delay %g, FallingDelay %g", dd, got, want)
		}
	}
}

// TestChannelMatchesRisingDelay: isolated falling input pairs starting
// from mode (1,1) with a prescribed V_N reproduce RisingDelay.
func TestChannelMatchesRisingDelay(t *testing.T) {
	p := TableI()
	for _, vn := range []float64{0, p.Supply.VDD / 2, p.Supply.VDD} {
		for _, dd := range []float64{-120e-12, -30e-12, 0, 30e-12, 120e-12} {
			tA := lead
			tB := lead + dd
			if dd < 0 {
				tA, tB = lead-dd, lead
			}
			a := trace.New(true, []trace.Event{{Time: tA, Value: false}})
			b := trace.New(true, []trace.Event{{Time: tB, Value: false}})
			out, err := ApplyNOR(p, a, b, 3e-9, vn)
			if err != nil {
				t.Fatal(err)
			}
			if out.Initial || out.NumEvents() != 1 || !out.Events[0].Value {
				t.Fatalf("vn=%g Delta=%g: output trace %+v", vn, dd, out.Events)
			}
			want, err := p.RisingDelayFrom(dd, vn)
			if err != nil {
				t.Fatal(err)
			}
			got := out.Events[0].Time - math.Max(tA, tB)
			if math.Abs(got-want) > 1e-15 {
				t.Errorf("vn=%g Delta=%g: channel delay %g, RisingDelay %g", vn, dd, got, want)
			}
		}
	}
}

// TestChannelOutputAlwaysValid: random stimuli never produce malformed
// output traces (sorted, alternating).
func TestChannelOutputAlwaysValid(t *testing.T) {
	p := TableI()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() trace.Trace {
			var ev []trace.Event
			tm := lead
			v := false
			for i := 0; i < rng.Intn(25); i++ {
				tm += (10 + rng.ExpFloat64()*120) * 1e-12
				v = !v
				ev = append(ev, trace.Event{Time: tm, Value: v})
			}
			return trace.New(false, ev)
		}
		a, b := gen(), gen()
		out, err := ApplyNOR(p, a, b, 20e-9, p.Supply.VDD)
		if err != nil {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestChannelSettles: after inputs settle, the digital output value
// equals the NOR of the final input values (long settle window).
func TestChannelSettles(t *testing.T) {
	p := TableI()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() trace.Trace {
			var ev []trace.Event
			tm := lead
			v := false
			for i := 0; i < rng.Intn(12); i++ {
				tm += (150 + rng.Float64()*300) * 1e-12 // wide spacing
				v = !v
				ev = append(ev, trace.Event{Time: tm, Value: v})
			}
			return trace.New(false, ev)
		}
		a, b := gen(), gen()
		out, err := ApplyNOR(p, a, b, 40e-9, p.Supply.VDD)
		if err != nil {
			return false
		}
		want := !(a.Final() || b.Final())
		return out.Final() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestChannelShortPulseFiltered: an input pulse much shorter than the
// gate delay leaves no output transition (the trajectory never reaches
// the threshold).
func TestChannelShortPulseFiltered(t *testing.T) {
	p := TableI()
	a := trace.New(false, []trace.Event{
		{Time: lead, Value: true},
		{Time: lead + 5e-12, Value: false},
	})
	out, err := ApplyNOR(p, a, trace.Trace{Initial: false}, 5e-9, p.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEvents() != 0 {
		t.Errorf("5 ps pulse produced output events: %+v", out.Events)
	}
}

// TestChannelLongPulseTransmitted: a pulse much longer than the delay
// passes with two transitions.
func TestChannelLongPulseTransmitted(t *testing.T) {
	p := TableI()
	a := trace.New(false, []trace.Event{
		{Time: lead, Value: true},
		{Time: lead + 500e-12, Value: false},
	})
	out, err := ApplyNOR(p, a, trace.Trace{Initial: false}, 5e-9, p.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEvents() != 2 {
		t.Fatalf("long pulse produced %+v", out.Events)
	}
	if out.Events[0].Value || !out.Events[1].Value {
		t.Error("pulse polarity wrong")
	}
}

// TestChannelVNHistory: the channel carries V_N across mode (1,1)
// periods. If the gate passed through (0,0) before entering (1,1), V_N
// is VDD and the next rising output is faster than from the worst case.
func TestChannelVNHistory(t *testing.T) {
	p := TableI()
	// Cycle: (0,0) -> both rise at t1 -> (1,1) -> both fall at t2.
	t1, t2 := lead, lead+600e-12
	a := trace.New(false, []trace.Event{{Time: t1, Value: true}, {Time: t2, Value: false}})
	b := trace.New(false, []trace.Event{{Time: t1, Value: true}, {Time: t2, Value: false}})
	out, err := ApplyNOR(p, a, b, 5e-9, 0 /* vn0 irrelevant: gate starts in (0,0) */)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEvents() != 2 {
		t.Fatalf("events: %+v", out.Events)
	}
	riseDelay := out.Events[1].Time - t2
	fromVDD, err := p.RisingDelayFrom(0, p.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	fromGND, err := p.RisingDelayFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(riseDelay-fromVDD) > 1e-15 {
		t.Errorf("rise delay %g, want %g (V_N = VDD carried from (0,0) history)", riseDelay, fromVDD)
	}
	if math.Abs(riseDelay-fromGND) < 1e-15 {
		t.Error("channel ignored the V_N history")
	}
}

// TestChannelDeferredCrossingSurvives is the regression test for the
// pure-delay window bug: a threshold crossing scheduled inside
// [now, now+DMin) must survive a later input event (the event only
// changes the trajectory after its own effective time).
func TestChannelDeferredCrossingSurvives(t *testing.T) {
	p := TableI() // DMin = 18 ps
	// Both inputs high; B falls, then A falls; output rises; B rises
	// again just before the (deferred) crossing would be cancelled.
	a := trace.New(true, []trace.Event{{Time: 865.9e-12, Value: false}, {Time: 973.8e-12, Value: true}})
	b := trace.New(true, []trace.Event{{Time: 794.9e-12, Value: false}, {Time: 952.6e-12, Value: true}})
	out, err := ApplyNOR(p, a, b, 3e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The output must both rise and fall back: the pulse is wide enough.
	if out.NumEvents() != 2 {
		t.Fatalf("expected rise+fall, got %+v", out.Events)
	}
	if !out.Events[0].Value || out.Events[1].Value {
		t.Errorf("polarities wrong: %+v", out.Events)
	}
}

// TestChannelSimultaneousEdges: both inputs switching at the identical
// timestamp behave like Delta = 0.
func TestChannelSimultaneousEdges(t *testing.T) {
	p := TableI()
	a := trace.New(false, []trace.Event{{Time: lead, Value: true}})
	b := trace.New(false, []trace.Event{{Time: lead, Value: true}})
	out, err := ApplyNOR(p, a, b, 3e-9, p.Supply.VDD)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.FallingDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEvents() != 1 {
		t.Fatalf("events: %+v", out.Events)
	}
	if got := out.Events[0].Time - lead; math.Abs(got-want) > 1e-15 {
		t.Errorf("simultaneous delay %g, want %g", got, want)
	}
}

// TestChannelStateAccessors: StateAt/ModeAt reflect the scheduled future.
func TestChannelStateAccessors(t *testing.T) {
	p := TableI()
	sim := dtsim.NewSimulator()
	na := dtsim.NewNet("a", false)
	nb := dtsim.NewNet("b", false)
	no := dtsim.NewNet("o", false)
	ch, err := NewChannel(sim, p, na, nb, no, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ModeAt(0) != Mode00 {
		t.Errorf("initial mode %v", ch.ModeAt(0))
	}
	st := ch.StateAt(0)
	if math.Abs(st.X-p.Supply.VDD) > 1e-12 || math.Abs(st.Y-p.Supply.VDD) > 1e-12 {
		t.Errorf("initial state %v", st)
	}
	if !no.Value() {
		t.Error("NOR of (0,0) must start high")
	}
}

// TestApplyNORRejectsInvalidParams: validation propagates.
func TestApplyNORRejectsInvalidParams(t *testing.T) {
	p := TableI()
	p.R3 = -1
	if _, err := ApplyNOR(p, trace.Trace{}, trace.Trace{}, 1e-9, 0); err == nil {
		t.Error("invalid params accepted")
	}
}
