package hybrid

import (
	"fmt"
	"math"

	"hybriddelay/internal/la"
	"hybriddelay/internal/ode"
	"hybriddelay/internal/waveform"
)

// This file generalizes the paper's construction from the 2-input NOR to
// arbitrary switch-level RC gate topologies with any number of internal
// nodes — the "multi-input gate" premise of the paper's title and the
// generalization its conclusion calls for. A SwitchGate is a resistive
// network whose branches are gated by the logical input values; each
// input state selects a linear RC system C V' = -G V + u, solved in
// closed form by ode.LinearN, with the state carried continuously across
// input-induced mode switches exactly as in the 2x2 model.

// Rail identifies the fixed-potential terminals of a switch branch.
type Rail int

// Branch endpoints can be internal nodes (>= 0) or one of the rails.
const (
	RailVDD Rail = -1 // supply rail
	RailGND Rail = -2 // ground rail
)

// SwitchBranch is one transistor abstracted as an ideal switch in series
// with its on-resistance.
type SwitchBranch struct {
	// From and To are node indices (>= 0) or rails (RailVDD/RailGND cast
	// to int).
	From, To int
	R        float64 // on-resistance [Ohm]
	// Input is the gate input (0-based) controlling the switch.
	Input int
	// OnWhenHigh is true for an nMOS-like switch (conducts when the
	// input is logically 1) and false for a pMOS-like one.
	OnWhenHigh bool
}

// SwitchGate is a generic switch-level RC gate model.
type SwitchGate struct {
	Name      string
	NumInputs int
	// Caps lists the node capacitances; node len(Caps)-1 by convention
	// may be anything, the output is identified by OutNode.
	Caps     []float64
	Branches []SwitchBranch
	OutNode  int
	// Logic is the gate's boolean function, used to determine the
	// expected output direction after a mode switch.
	Logic func(inputs []bool) bool

	Supply waveform.Supply
	DMin   float64 // pure delay [s]
}

// Validate checks structural plausibility.
func (g SwitchGate) Validate() error {
	if g.NumInputs < 1 {
		return fmt.Errorf("switchgate %s: need at least one input", g.Name)
	}
	if len(g.Caps) == 0 {
		return fmt.Errorf("switchgate %s: need at least one node", g.Name)
	}
	for i, c := range g.Caps {
		if c <= 0 {
			return fmt.Errorf("switchgate %s: non-positive capacitance at node %d", g.Name, i)
		}
	}
	if g.OutNode < 0 || g.OutNode >= len(g.Caps) {
		return fmt.Errorf("switchgate %s: output node %d out of range", g.Name, g.OutNode)
	}
	if g.Logic == nil {
		return fmt.Errorf("switchgate %s: missing logic function", g.Name)
	}
	if !g.Supply.Valid() {
		return fmt.Errorf("switchgate %s: invalid supply", g.Name)
	}
	if g.DMin < 0 {
		return fmt.Errorf("switchgate %s: negative pure delay", g.Name)
	}
	for bi, b := range g.Branches {
		if b.R <= 0 {
			return fmt.Errorf("switchgate %s: branch %d has non-positive resistance", g.Name, bi)
		}
		for _, end := range []int{b.From, b.To} {
			if end >= len(g.Caps) || (end < 0 && end != int(RailVDD) && end != int(RailGND)) {
				return fmt.Errorf("switchgate %s: branch %d endpoint %d invalid", g.Name, bi, end)
			}
		}
		if b.Input < 0 || b.Input >= g.NumInputs {
			return fmt.Errorf("switchgate %s: branch %d input %d out of range", g.Name, bi, b.Input)
		}
	}
	return nil
}

// System assembles the RC system of the input state: conducting branches
// stamp their conductance; branches to VDD also inject current.
func (g SwitchGate) System(inputs []bool) (ode.LinearN, error) {
	if len(inputs) != g.NumInputs {
		return ode.LinearN{}, fmt.Errorf("switchgate %s: want %d inputs, got %d", g.Name, g.NumInputs, len(inputs))
	}
	n := len(g.Caps)
	cond := la.NewMatrix(n, n)
	u := make([]float64, n)
	for _, b := range g.Branches {
		if inputs[b.Input] != b.OnWhenHigh {
			continue // switch open
		}
		gc := 1 / b.R
		stamp := func(i, j int) {
			// i internal node; j internal node or rail.
			cond.Add(i, i, gc)
			switch {
			case j >= 0:
				cond.Add(i, j, -gc)
			case j == int(RailVDD):
				u[i] += gc * g.Supply.VDD
			} // GND contributes nothing to u
		}
		if b.From >= 0 {
			stamp(b.From, b.To)
		}
		if b.To >= 0 {
			stamp(b.To, b.From)
		}
	}
	return ode.LinearN{C: append([]float64(nil), g.Caps...), G: cond, U: u}, nil
}

// PhaseN is one leg of an input schedule for the generic gate.
type PhaseN struct {
	Start  float64
	Inputs []bool
}

// TrajectoryN is the piecewise closed-form solution over a schedule.
type TrajectoryN struct {
	gate SwitchGate
	segs []segN
}

type segN struct {
	start  float64
	end    float64
	inputs []bool
	sol    *ode.SolutionN
}

// NewTrajectory solves the schedule starting from node voltages v0 at
// the first phase's start.
func (g SwitchGate) NewTrajectory(v0 []float64, phases []PhaseN) (*TrajectoryN, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("switchgate %s: empty schedule", g.Name)
	}
	if len(v0) != len(g.Caps) {
		return nil, fmt.Errorf("switchgate %s: initial state has %d entries, want %d", g.Name, len(v0), len(g.Caps))
	}
	tr := &TrajectoryN{gate: g}
	state := append([]float64(nil), v0...)
	for i, ph := range phases {
		if i > 0 && ph.Start < phases[i-1].Start {
			return nil, fmt.Errorf("switchgate %s: phases not sorted", g.Name)
		}
		sys, err := g.System(ph.Inputs)
		if err != nil {
			return nil, err
		}
		sol, err := sys.Solve(state)
		if err != nil {
			return nil, err
		}
		end := math.Inf(1)
		if i+1 < len(phases) {
			end = phases[i+1].Start
		}
		tr.segs = append(tr.segs, segN{start: ph.Start, end: end, inputs: ph.Inputs, sol: sol})
		if !math.IsInf(end, 1) {
			state = sol.At(end - ph.Start)
		}
	}
	return tr, nil
}

// At evaluates the full state at absolute time t.
func (tr *TrajectoryN) At(t float64) []float64 {
	seg := tr.segs[tr.segIndex(t)]
	local := t - seg.start
	if local < 0 {
		local = 0
	}
	return seg.sol.At(local)
}

// VOut evaluates the output voltage at absolute time t.
func (tr *TrajectoryN) VOut(t float64) float64 {
	seg := tr.segs[tr.segIndex(t)]
	local := t - seg.start
	if local < 0 {
		local = 0
	}
	return seg.sol.Component(tr.gate.OutNode, local)
}

func (tr *TrajectoryN) segIndex(t float64) int {
	i := len(tr.segs) - 1
	for i > 0 && tr.segs[i].start > t {
		i--
	}
	return i
}

// FirstOutputCrossing returns the earliest time >= after at which the
// output crosses level in the requested direction.
func (tr *TrajectoryN) FirstOutputCrossing(level float64, rising bool, after float64) (float64, bool) {
	for _, seg := range tr.segs {
		if seg.end <= after {
			continue
		}
		t0 := math.Max(seg.start, after)
		t1 := seg.end
		if math.IsInf(t1, 1) {
			tau := seg.sol.SlowestTimeConstant()
			if math.IsInf(tau, 1) {
				tau = 1e-9
			}
			t1 = t0 + 60*tau
		}
		if t, ok := firstDirectionalCrossing(func(t float64) float64 {
			return seg.sol.Component(tr.gate.OutNode, t-seg.start)
		}, level, rising, t0, t1); ok {
			return t, true
		}
	}
	return 0, false
}

// SteadyState returns the settled node voltages of an input state, with
// isolated (neutral) nodes held at the provided fill value.
func (g SwitchGate) SteadyState(inputs []bool, isolatedFill float64) ([]float64, error) {
	sys, err := g.System(inputs)
	if err != nil {
		return nil, err
	}
	// Start every node at the fill value and relax for a long time: the
	// driven modes settle, neutral ones keep the fill.
	v0 := make([]float64, len(g.Caps))
	for i := range v0 {
		v0[i] = isolatedFill
	}
	sol, err := sys.Solve(v0)
	if err != nil {
		return nil, err
	}
	tau := sol.SlowestTimeConstant()
	if math.IsInf(tau, 1) {
		return v0, nil
	}
	return sol.At(80 * tau), nil
}

// GateDelay computes the input-to-output delay of a transition schedule:
// the gate starts settled in the first phase's input state (isolated
// nodes at fill0), walks the schedule, and the delay is the first output
// threshold crossing toward the final state's logic value, measured from
// measureFrom, plus the pure delay.
func (g SwitchGate) GateDelay(phases []PhaseN, fill0, measureFrom float64) (float64, error) {
	if len(phases) < 2 {
		return 0, fmt.Errorf("switchgate %s: need at least two phases", g.Name)
	}
	v0, err := g.SteadyState(phases[0].Inputs, fill0)
	if err != nil {
		return 0, err
	}
	tr, err := g.NewTrajectory(v0, phases)
	if err != nil {
		return 0, err
	}
	startVal := g.Logic(phases[0].Inputs)
	finalVal := g.Logic(phases[len(phases)-1].Inputs)
	if startVal == finalVal {
		return 0, fmt.Errorf("switchgate %s: schedule does not toggle the output", g.Name)
	}
	tO, ok := tr.FirstOutputCrossing(g.Supply.Vth, finalVal, phases[0].Start)
	if !ok {
		return 0, fmt.Errorf("switchgate %s: output never crossed", g.Name)
	}
	return tO - measureFrom + g.DMin, nil
}
