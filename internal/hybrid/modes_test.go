package hybrid

import (
	"math"
	"testing"

	"hybriddelay/internal/la"
)

func TestModeOfRoundTrip(t *testing.T) {
	for _, m := range []Mode{Mode00, Mode01, Mode10, Mode11} {
		a, b := m.Inputs()
		if ModeOf(a, b) != m {
			t.Errorf("mode %v round trip failed", m)
		}
	}
	if Mode10.String() != "(1,0)" || Mode01.String() != "(0,1)" {
		t.Error("mode names wrong")
	}
}

// TestSystemMatrices pins every mode's (A, g) against the paper's §III
// derivations, element by element, for the Table I parameters.
func TestSystemMatrices(t *testing.T) {
	p := TableI()
	vdd := p.Supply.VDD

	s11 := p.System(Mode11)
	if s11.A.A11 != 0 || s11.A.A12 != 0 || s11.A.A21 != 0 {
		t.Error("mode (1,1): V_N must be isolated")
	}
	want := -(1/(p.CO*p.R3) + 1/(p.CO*p.R4))
	if math.Abs(s11.A.A22-want) > 1e-6*math.Abs(want) {
		t.Errorf("mode (1,1) A22 = %g, want %g", s11.A.A22, want)
	}
	if s11.G != (la.Vec2{}) {
		t.Error("mode (1,1) must be homogeneous")
	}

	s10 := p.System(Mode10)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"(1,0) A11", s10.A.A11, -1 / (p.CN * p.R2)},
		{"(1,0) A12", s10.A.A12, 1 / (p.CN * p.R2)},
		{"(1,0) A21", s10.A.A21, 1 / (p.CO * p.R2)},
		{"(1,0) A22", s10.A.A22, -(1/(p.CO*p.R2) + 1/(p.CO*p.R3))},
	}
	s01 := p.System(Mode01)
	checks = append(checks,
		struct {
			name      string
			got, want float64
		}{"(0,1) A11", s01.A.A11, -1 / (p.CN * p.R1)},
		struct {
			name      string
			got, want float64
		}{"(0,1) A22", s01.A.A22, -1 / (p.CO * p.R4)},
		struct {
			name      string
			got, want float64
		}{"(0,1) gN", s01.G.X, vdd / (p.CN * p.R1)},
	)
	s00 := p.System(Mode00)
	checks = append(checks,
		struct {
			name      string
			got, want float64
		}{"(0,0) A11", s00.A.A11, -(1/(p.CN*p.R1) + 1/(p.CN*p.R2))},
		struct {
			name      string
			got, want float64
		}{"(0,0) A12", s00.A.A12, 1 / (p.CN * p.R2)},
		struct {
			name      string
			got, want float64
		}{"(0,0) A21", s00.A.A21, 1 / (p.CO * p.R2)},
		struct {
			name      string
			got, want float64
		}{"(0,0) A22", s00.A.A22, -1 / (p.CO * p.R2)},
		struct {
			name      string
			got, want float64
		}{"(0,0) gN", s00.G.X, vdd / (p.CN * p.R1)},
	)
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if s01.A.A12 != 0 || s01.A.A21 != 0 {
		t.Error("mode (0,1) must be decoupled")
	}
}

// TestCoefficients10MatchEigen: the paper's alpha/beta/lambda formulas
// (1)-(3) agree with the numeric eigen-decomposition of the mode matrix.
func TestCoefficients10MatchEigen(t *testing.T) {
	p := TableI()
	co := p.Coefficients10()
	eig, err := la.EigenDecompose2(p.System(Mode10).A)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(co.Lambda1-eig.Lambda1) > 1e-6*math.Abs(eig.Lambda1) {
		t.Errorf("lambda1 = %g, eigen %g", co.Lambda1, eig.Lambda1)
	}
	if math.Abs(co.Lambda2-eig.Lambda2) > 1e-6*math.Abs(eig.Lambda2) {
		t.Errorf("lambda2 = %g, eigen %g", co.Lambda2, eig.Lambda2)
	}
	// Paper eigenbasis: lambda_{1,2} = alpha +/- beta - 1/(CN R2).
	if got := co.Alpha + co.Beta - 1/(p.CN*p.R2); math.Abs(got-co.Lambda1) > 1e-6*math.Abs(co.Lambda1) {
		t.Errorf("lambda1 from alpha+beta = %g, want %g", got, co.Lambda1)
	}
	if got := co.Alpha - co.Beta - 1/(p.CN*p.R2); math.Abs(got-co.Lambda2) > 1e-6*math.Abs(co.Lambda2) {
		t.Errorf("lambda2 from alpha-beta = %g, want %g", got, co.Lambda2)
	}
	// Eigenvector check: A * (1/(CN R2), alpha+beta) = lambda1 * v.
	v := la.Vec2{X: 1 / (p.CN * p.R2), Y: co.Alpha + co.Beta}
	av := p.System(Mode10).A.MulVec(v)
	lv := v.Scale(co.Lambda1)
	if av.Sub(lv).Norm() > 1e-6*lv.Norm() {
		t.Errorf("paper eigenvector relation violated: %v vs %v", av, lv)
	}
}

// TestCoefficients00MatchEigen: formulas (4)-(7).
func TestCoefficients00MatchEigen(t *testing.T) {
	p := TableI()
	co := p.Coefficients00()
	eig, err := la.EigenDecompose2(p.System(Mode00).A)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(co.Lambda1-eig.Lambda1) > 1e-6*math.Abs(eig.Lambda1) {
		t.Errorf("lambda1 = %g, eigen %g", co.Lambda1, eig.Lambda1)
	}
	if math.Abs(co.Lambda2-eig.Lambda2) > 1e-6*math.Abs(eig.Lambda2) {
		t.Errorf("lambda2 = %g, eigen %g", co.Lambda2, eig.Lambda2)
	}
	// lambda = gamma +/- beta by (7).
	if math.Abs(co.Gamma+co.Beta-co.Lambda1) > 1e-9*math.Abs(co.Lambda1) {
		t.Error("lambda1 != gamma + beta")
	}
	v := la.Vec2{X: 1 / (p.CN * p.R2), Y: co.Alpha + co.Beta}
	av := p.System(Mode00).A.MulVec(v)
	lv := v.Scale(co.Lambda1)
	if av.Sub(lv).Norm() > 1e-6*lv.Norm() {
		t.Errorf("paper eigenvector relation violated: %v vs %v", av, lv)
	}
}

func TestValidate(t *testing.T) {
	good := TableI()
	if err := good.Validate(); err != nil {
		t.Errorf("Table I invalid: %v", err)
	}
	bad := good
	bad.R2 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero resistance accepted")
	}
	bad = good
	bad.CN = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative capacitance accepted")
	}
	bad = good
	bad.DMin = -1e-12
	if err := bad.Validate(); err == nil {
		t.Error("negative pure delay accepted")
	}
	bad = good
	bad.Supply.Vth = 1
	if err := bad.Validate(); err == nil {
		t.Error("threshold above VDD accepted")
	}
}

func TestWithoutDMin(t *testing.T) {
	p := TableI()
	q := p.WithoutDMin()
	if q.DMin != 0 || p.DMin == 0 {
		t.Error("WithoutDMin wrong")
	}
	if q.R1 != p.R1 || q.CO != p.CO {
		t.Error("WithoutDMin changed other fields")
	}
}

func TestParamsString(t *testing.T) {
	s := TableI().String()
	if s == "" {
		t.Error("empty String()")
	}
}

// TestSteadyStates: every mode's steady state is physically right.
func TestSteadyStates(t *testing.T) {
	p := TableI()
	vdd := p.Supply.VDD
	cases := []struct {
		mode Mode
		want la.Vec2
	}{
		{Mode00, la.Vec2{X: vdd, Y: vdd}},
		{Mode01, la.Vec2{X: vdd, Y: 0}},
		{Mode10, la.Vec2{X: 0, Y: 0}},
	}
	for _, c := range cases {
		sol, err := p.System(c.mode).Solve(la.Vec2{X: vdd / 3, Y: vdd / 2})
		if err != nil {
			t.Fatalf("mode %v: %v", c.mode, err)
		}
		got := sol.At(1e-6) // far past all time constants
		if got.Sub(c.want).Norm() > 1e-6 {
			t.Errorf("mode %v settles at %v, want %v", c.mode, got, c.want)
		}
	}
	// Mode (1,1): V_O drains, V_N frozen at its initial value.
	sol, err := p.System(Mode11).Solve(la.Vec2{X: 0.123, Y: vdd})
	if err != nil {
		t.Fatal(err)
	}
	got := sol.At(1e-6)
	if math.Abs(got.X-0.123) > 1e-12 || math.Abs(got.Y) > 1e-6 {
		t.Errorf("mode (1,1) settles at %v, want (0.123, 0)", got)
	}
}
